// ACSM + churn: the paper's Appendix C arbitrary-cluster-size model combined
// with Assumption 3's node dynamics. Builds a random-cluster tree, prints
// its shape (the paper's Fig 1, textually), and runs training with 20% of
// devices offline in every round — the quorum machinery keeps rounds
// completing as long as each cluster retains live members.
//
//	go run ./examples/acsm_churn
package main

import (
	"fmt"
	"log"

	"abdhfl"
	"abdhfl/internal/core"
)

func main() {
	scenario := abdhfl.Scenario{
		Topology:          abdhfl.TopologyACSM,
		ACSMDevices:       48,
		ACSMMinCluster:    3,
		ACSMMaxCluster:    6,
		TopNodes:          4,
		Attack:            abdhfl.AttackType1,
		MaliciousFraction: 0.2,
		Rounds:            20,
		SamplesPerClient:  100,
		EvalEvery:         5,
	}.WithDefaults()

	materials, err := abdhfl.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Arbitrary Cluster Size Model tree (Appendix C):")
	fmt.Print(materials.Tree.Summary())
	fmt.Println()

	// Stable run vs 20% per-round churn on the same materials.
	stable, err := materials.RunHFL(1)
	if err != nil {
		log.Fatal(err)
	}
	churnCfg := materials.CoreConfig(1)
	churnCfg.Churn = core.ChurnModel{OfflineProb: 0.2}
	churned, err := core.RunHFL(churnCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final accuracy, stable membership:   %.1f%%\n", 100*stable.FinalAccuracy)
	fmt.Printf("final accuracy, 20%% per-round churn: %.1f%%\n", 100*churned.FinalAccuracy)
	fmt.Printf("(both with 20%% Type I poisoning on a random-cluster tree)\n")
}
