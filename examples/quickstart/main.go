// Quickstart: run a small ABD-HFL experiment end to end with the public API.
//
// Builds the paper's 3-level / 64-client topology on the synthetic digits
// workload, poisons 30% of the clients with the Type I label-flip attack,
// and trains with MultiKrum partial aggregation and a validation-voting top
// level — then prints the convergence curve and final accuracy next to the
// vanilla star-topology baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"abdhfl"
)

func main() {
	scenario := abdhfl.Scenario{
		Attack:            abdhfl.AttackType1, // flip all labels to 9
		MaliciousFraction: 0.30,
		Rounds:            30,
		SamplesPerClient:  150,
		EvalEvery:         5,
	}.WithDefaults()

	fmt.Printf("ABD-HFL quickstart: %d clients, %s malicious, attack=%s\n",
		scenario.Clients(), pct(scenario.MaliciousFraction), scenario.Attack)
	fmt.Printf("theoretical bottom-level tolerance (Theorem 2): %s\n\n",
		pct(abdhfl.TheoreticalBound(scenario)))

	materials, err := abdhfl.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}

	hfl, err := materials.RunHFL(1)
	if err != nil {
		log.Fatal(err)
	}
	vanilla, err := materials.RunVanilla(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  ABD-HFL accuracy")
	for _, p := range hfl.Curve {
		fmt.Printf("%5d  %s\n", p.Round, pct(p.Accuracy))
	}
	fmt.Printf("\nfinal accuracy: ABD-HFL %s vs vanilla FL %s\n",
		pct(hfl.FinalAccuracy), pct(vanilla.FinalAccuracy))
	fmt.Printf("ABD-HFL communication: %d model transfers, %d scalar messages\n",
		hfl.Comm.ModelTransfers, hfl.Comm.ScalarMessages)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
