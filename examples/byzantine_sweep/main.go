// Byzantine sweep: reproduce the shape of the paper's Table V on a laptop
// scale — sweep the malicious proportion across the Theorem 2 bound and
// watch vanilla FL collapse while ABD-HFL holds.
//
//	go run ./examples/byzantine_sweep
package main

import (
	"fmt"
	"log"

	"abdhfl"
)

func main() {
	fractions := []float64{0, 0.25, 0.50, 0.578, 0.65}
	bound := abdhfl.TheoreticalBound(abdhfl.Scenario{})
	fmt.Printf("Sweeping Type I label-flip poisoning across the %s tolerance bound\n\n", pct(bound))
	fmt.Println("malicious  ABD-HFL  vanilla FL (both with MultiKrum; ABD-HFL adds the voting top)")

	for _, frac := range fractions {
		scenario := abdhfl.Scenario{
			Attack:            abdhfl.AttackType1,
			MaliciousFraction: frac,
			Rounds:            25,
			SamplesPerClient:  120,
			EvalEvery:         25,
		}.WithDefaults()
		if frac == 0 {
			scenario.Attack = abdhfl.AttackNone
		}
		materials, err := abdhfl.Build(scenario)
		if err != nil {
			log.Fatal(err)
		}
		hfl, err := materials.RunHFL(1)
		if err != nil {
			log.Fatal(err)
		}
		vanilla, err := materials.RunVanilla(1)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if frac > bound {
			marker = "  <- beyond the theoretical bound"
		}
		fmt.Printf("%8s   %-7s  %-7s%s\n", pct(frac), pct(hfl.FinalAccuracy), pct(vanilla.FinalAccuracy), marker)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
