// Byzantine sweep: reproduce the shape of the paper's Table V on a laptop
// scale — sweep the malicious proportion across the Theorem 2 bound and
// watch vanilla FL collapse while ABD-HFL holds. Each ABD-HFL run also
// audits its Byzantine filters: every aggregation's kept/discarded
// contributor ids are scored against the known attacker placement, giving
// per-level filter precision and recall.
//
//	go run ./examples/byzantine_sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"abdhfl"
	"abdhfl/internal/experiments"
)

func main() {
	fractions := []float64{0, 0.25, 0.50, 0.578, 0.65}
	bound := abdhfl.TheoreticalBound(abdhfl.Scenario{})
	fmt.Printf("Sweeping Type I label-flip poisoning across the %s tolerance bound\n\n", pct(bound))
	fmt.Println("malicious  ABD-HFL  vanilla FL  filter precision/recall per level (top..bottom)")

	for _, frac := range fractions {
		scenario := abdhfl.Scenario{
			Attack:            abdhfl.AttackType1,
			MaliciousFraction: frac,
			Rounds:            25,
			SamplesPerClient:  120,
			EvalEvery:         25,
		}.WithDefaults()
		if frac == 0 {
			scenario.Attack = abdhfl.AttackNone
		}
		materials, err := abdhfl.Build(scenario)
		if err != nil {
			log.Fatal(err)
		}
		scorer := experiments.NewFilterScorer(materials.Tree, materials.Byzantine)
		materials.OnFilter = scorer.Observe
		hfl, err := materials.RunHFL(1)
		if err != nil {
			log.Fatal(err)
		}
		materials.OnFilter = nil // the flat vanilla baseline has no per-level filters to audit
		vanilla, err := materials.RunVanilla(1)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if frac > bound {
			marker = "  <- beyond the theoretical bound"
		}
		fmt.Printf("%8s   %-7s  %-10s  %s%s\n",
			pct(frac), pct(hfl.FinalAccuracy), pct(vanilla.FinalAccuracy), filterSummary(scorer), marker)
	}
	fmt.Println("\nPrecision = flagged updates that were really malicious; recall = malicious")
	fmt.Println("updates flagged. Both are 1 when nothing (malicious) reached that level.")
}

// filterSummary renders one run's per-level audit as "L0 p=… r=… | L1 …".
func filterSummary(scorer *experiments.FilterScorer) string {
	parts := make([]string, 0, len(scorer.Levels))
	for _, ls := range scorer.Levels {
		parts = append(parts, fmt.Sprintf("L%d p=%s r=%s", ls.Level, pct(ls.Precision()), pct(ls.Recall())))
	}
	return strings.Join(parts, " | ")
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
