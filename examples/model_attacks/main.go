// Model-update attacks: the Table I attacks that corrupt parameter vectors
// rather than training data — sign flip, Gaussian noise, A-Little-Is-Enough
// and Inner-Product Manipulation — each run end-to-end against the default
// MultiKrum + voting stack with scattered attackers, next to the undefended
// plain-mean vanilla baseline.
//
//	go run ./examples/model_attacks
package main

import (
	"fmt"
	"log"

	"abdhfl"
)

func main() {
	attacks := []abdhfl.Attack{abdhfl.AttackSignFlip, abdhfl.AttackNoise, abdhfl.AttackALE, abdhfl.AttackIPM}
	fmt.Println("Model-update attacks at 25% Byzantine (scattered), 15 rounds")
	fmt.Println()
	fmt.Printf("%-12s %-22s %-22s\n", "attack", "ABD-HFL (multi-krum)", "vanilla FL (mean)")

	for _, atk := range attacks {
		scenario := abdhfl.Scenario{
			Attack:            atk,
			MaliciousFraction: 0.25,
			Placement:         abdhfl.PlaceRandom,
			Rounds:            15,
			SamplesPerClient:  100,
			EvalEvery:         15,
		}.WithDefaults()
		materials, err := abdhfl.Build(scenario)
		if err != nil {
			log.Fatal(err)
		}
		hfl, err := materials.RunHFL(1)
		if err != nil {
			log.Fatal(err)
		}

		// Undefended baseline: same attackers, central mean aggregation.
		meanScenario := scenario
		meanScenario.Aggregator = "mean"
		meanMaterials, err := abdhfl.Build(meanScenario)
		if err != nil {
			log.Fatal(err)
		}
		vanilla, err := meanMaterials.RunVanilla(1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-22s %-22s\n", atk,
			fmt.Sprintf("%.1f%%", 100*hfl.FinalAccuracy),
			fmt.Sprintf("%.1f%%", 100*vanilla.FinalAccuracy))
	}
	fmt.Println()
	fmt.Println("Attacks are applied to update deltas with omniscient knowledge of the")
	fmt.Println("honest population (mean/std), per the Byzantine-FL literature.")
}
