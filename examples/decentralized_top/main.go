// Decentralized top level: ABD-HFL's answer to the single point of failure.
//
// This example compares the three consensus-based aggregation protocols at
// the leaderless top level — validation voting (the paper's Appendix D-B),
// committee consensus, and coordinate-wise Byzantine approximate agreement —
// on the same poisoned workload, and also shows the consensus package used
// directly on a set of proposals containing a poisoned model.
//
//	go run ./examples/decentralized_top
package main

import (
	"fmt"
	"log"

	"abdhfl"
	"abdhfl/internal/consensus"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

func main() {
	fmt.Println("== End-to-end: three CBA protocols at the top level ==")
	for _, proto := range []string{"voting", "committee", "approx-agreement"} {
		scenario := abdhfl.Scenario{
			Attack:            abdhfl.AttackType1,
			MaliciousFraction: 0.25,
			TopProtocol:       proto,
			Rounds:            20,
			SamplesPerClient:  100,
			EvalEvery:         20,
		}.WithDefaults()
		res, err := abdhfl.Run(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top=%-17s final accuracy %.1f%%  (excluded %d proposals, %d scalar msgs)\n",
			proto, 100*res.FinalAccuracy, res.ExcludedByConsensus, res.Comm.ScalarMessages)
	}

	fmt.Println("\n== Direct use: voting over four proposals, one poisoned ==")
	good := tensor.Fill(tensor.NewVector(8), 1)
	proposals := []tensor.Vector{good.Clone(), good.Clone(), good.Clone(),
		tensor.Fill(tensor.NewVector(8), -40)}
	ctx := &consensus.Context{
		Members: 4,
		Validator: func(_ int, model tensor.Vector) float64 {
			return 1 / (1 + tensor.Distance(model, good))
		},
		Rand: rng.New(1),
	}
	agreed, stats, err := consensus.Voting{}.Agree(ctx, proposals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  excluded proposals: %v (rounds=%d, messages=%d)\n", stats.Excluded, stats.Rounds, stats.Messages)
	fmt.Printf("  agreed model distance from truth: %.4f\n", tensor.Distance(agreed, good))
}
