// Async pipeline: the paper's pipeline learning workflow in action.
//
// Runs the asynchronous engine twice on the same workload — once with the
// flag level at the top (ℓF = 0, no pipelining: devices wait for the global
// model) and once with the flag level one tier down (ℓF = 1: devices restart
// from their subtree's partial model while the top is still aggregating,
// merging the stale global with the correction factor of Eq. 1) — and prints
// the efficiency indicator ν, virtual wall-clock, and accuracy of both.
//
//	go run ./examples/async_pipeline
package main

import (
	"fmt"
	"log"

	"abdhfl"
	"abdhfl/internal/pipeline"
)

func main() {
	scenario := abdhfl.Scenario{
		Rounds:           20,
		SamplesPerClient: 100,
		EvalEvery:        5,
	}.WithDefaults()
	materials, err := abdhfl.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}

	timing := pipeline.DefaultTiming()
	for _, flagLevel := range []int{0, 1} {
		res, err := materials.RunPipeline(1, flagLevel, timing)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flag level %d:\n", flagLevel)
		fmt.Printf("  mean efficiency nu      %.3f\n", res.MeanNu)
		fmt.Printf("  virtual duration        %.0f ms for %d rounds\n", float64(res.Duration), scenario.Rounds)
		fmt.Printf("  correction-factor merges %d\n", res.MergedGlobals)
		fmt.Printf("  final accuracy          %.1f%%\n\n", 100*res.FinalAccuracy)
	}

	fmt.Println("per-round phase breakdown at flag level 1:")
	res, err := materials.RunPipeline(1, 1, timing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round   wait σ_w   hidden σ_p+σ_g   total σ     ν")
	for _, t := range res.Timings {
		if t.Round >= 6 {
			break
		}
		fmt.Printf("%5d   %8.1f   %14.1f   %7.1f   %.3f\n",
			t.Round, t.SigmaW, t.SigmaP+t.SigmaG, t.Sigma, t.Nu)
	}
}
