// Async pipeline: the paper's pipeline learning workflow in action.
//
// Runs the asynchronous engine twice on the same workload — once with the
// flag level at the top (ℓF = 0, no pipelining: devices wait for the global
// model) and once with the flag level one tier down (ℓF = 1: devices restart
// from their subtree's partial model while the top is still aggregating,
// merging the stale global with the correction factor of Eq. 1) — and prints
// the efficiency indicator ν, virtual wall-clock, and accuracy of both.
//
// The engine also feeds the telemetry registry; the run closes with the
// registry's own view of the same statistics (per-phase σ means, staleness,
// merges) — what a Prometheus scrape of -telemetry-addr would report.
//
//	go run ./examples/async_pipeline
package main

import (
	"fmt"
	"log"

	"abdhfl"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/telemetry"
)

func main() {
	scenario := abdhfl.Scenario{
		Rounds:           20,
		SamplesPerClient: 100,
		EvalEvery:        5,
	}.WithDefaults()
	materials, err := abdhfl.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}
	reg := telemetry.New()
	materials.Telemetry = reg

	timing := pipeline.DefaultTiming()
	for _, flagLevel := range []int{0, 1} {
		res, err := materials.RunPipeline(1, flagLevel, timing)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flag level %d:\n", flagLevel)
		fmt.Printf("  mean efficiency nu      %.3f\n", res.MeanNu)
		fmt.Printf("  virtual duration        %.0f ms for %d rounds\n", float64(res.Duration), scenario.Rounds)
		fmt.Printf("  correction-factor merges %d\n", res.MergedGlobals)
		fmt.Printf("  final accuracy          %.1f%%\n\n", 100*res.FinalAccuracy)
	}

	fmt.Println("per-round phase breakdown at flag level 1:")
	res, err := materials.RunPipeline(1, 1, timing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round   wait σ_w   hidden σ_p+σ_g   total σ     ν")
	for _, t := range res.Timings {
		if t.Round >= 6 {
			break
		}
		fmt.Printf("%5d   %8.1f   %14.1f   %7.1f   %.3f\n",
			t.Round, t.SigmaW, t.SigmaP+t.SigmaG, t.Sigma, t.Nu)
	}

	snap := reg.Snapshot()
	fmt.Println("\ntelemetry round stats (registry view, aggregated over all three runs):")
	fmt.Printf("  rounds completed        %d\n", snap.Counters[`abdhfl_rounds_total{engine="pipeline"}`])
	fmt.Printf("  correction-factor merges %d\n", snap.Counters["abdhfl_pipeline_merged_globals_total"])
	for _, phase := range []string{"wait", "partial", "global", "total"} {
		name := fmt.Sprintf("abdhfl_pipeline_sigma_vms{phase=%q}", phase)
		fmt.Printf("  mean σ %-8s         %.1f vms\n", phase, histMean(snap.Histograms[name]))
	}
	fmt.Printf("  mean staleness          %.1f vms\n", histMean(snap.Histograms["abdhfl_pipeline_staleness_vms"]))
	fmt.Printf("  mean ν                  %.3f\n", histMean(snap.Histograms["abdhfl_pipeline_nu"]))
}

// histMean is a histogram's mean observation (0 when empty).
func histMean(h telemetry.HistogramValue) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
