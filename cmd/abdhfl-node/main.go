// Command abdhfl-node hosts one ABD-HFL protocol role — a device, a
// cluster leader, or the root — as an OS process speaking the frame
// protocol over TCP, so a shell-spawned cluster of processes runs the
// same learning run the in-process engines run, over real sockets:
//
//	abdhfl-node -scenario scenario.json -cluster cluster.json -id 0
//	abdhfl-node -scenario scenario.json -cluster cluster.json -id 6 \
//	    -plan faults.json -result result.json
//
// Every process is handed the same scenario JSON (see abdhfl.Scenario)
// and the same cluster file, a JSON object mapping node id to listen
// address:
//
//	{"0": "127.0.0.1:7400", "1": "127.0.0.1:7401", ..., "6": "127.0.0.1:7406"}
//
// Ids 0..NumDevices-1 are tree devices; id NumDevices is the root. All
// materials (data shards, tree, rules) are derived deterministically from
// the scenario, so no further coordination is needed — outbound
// connections dial lazily with retry, making process start order
// irrelevant. The root process writes the run result (curve, final
// model, σ-accounting, filter audit) as JSON when -result is given; any
// process writes its wire stats to -stats. A fault plan JSON
// (internal/fault.Plan) applies transport faults to the quorum-protected
// upward path and availability faults to devices, identically in every
// process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"abdhfl"
	"abdhfl/internal/fault"
	"abdhfl/internal/node"
	"abdhfl/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "abdhfl-node: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (required)")
	clusterPath := flag.String("cluster", "", "cluster JSON file: node id -> listen address (required)")
	id := flag.Int("id", -1, "this node's id: 0..devices-1, or devices for the root (required)")
	listen := flag.String("listen", "", "listen address override (default: this id's cluster entry)")
	planPath := flag.String("plan", "", "fault plan JSON file (optional)")
	seed := flag.Uint64("seed", 0, "run seed override (default: scenario seed)")
	stall := flag.Duration("stall", 5*time.Second, "base per-hop collect deadline")
	globalWait := flag.Duration("global-wait", 0, "max wait for the disseminated global model (default: (depth+2)*stall)")
	resultPath := flag.String("result", "", "write the engine result JSON here (the learning run on the root)")
	statsPath := flag.String("stats", "", "write this node's wire stats JSON here")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	if *scenarioPath == "" || *clusterPath == "" || *id < 0 {
		flag.Usage()
		return fmt.Errorf("-scenario, -cluster and -id are required")
	}

	s, err := abdhfl.LoadScenario(*scenarioPath)
	if err != nil {
		return err
	}
	s = s.WithDefaults()
	if *seed != 0 {
		s.Seed = *seed
	}
	m, err := abdhfl.Build(s)
	if err != nil {
		return err
	}

	book, listenAddr, err := loadCluster(*clusterPath, *id)
	if err != nil {
		return err
	}
	if *listen != "" {
		listenAddr = *listen
	}
	if listenAddr == "" {
		return fmt.Errorf("cluster file has no entry for id %d and no -listen given", *id)
	}

	var plan *fault.Plan
	if *planPath != "" {
		plan = &fault.Plan{}
		raw, err := os.ReadFile(*planPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, plan); err != nil {
			return fmt.Errorf("fault plan %s: %w", *planPath, err)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "abdhfl-node[%d]: %s\n", *id, fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = nil
	}

	ep, err := transport.ListenTCP(transport.Config{
		Self:       transport.NodeID(*id),
		Plan:       plan,
		FaultKinds: node.FaultableKinds(),
		Registry:   m.Telemetry,
		Tracer:     m.Trace,
	}, listenAddr, book)
	if err != nil {
		return err
	}
	defer ep.Close()

	eng, err := node.New(node.Config{
		Materials:  m,
		Seed:       s.Seed,
		ID:         transport.NodeID(*id),
		Endpoint:   ep,
		Plan:       plan,
		StallAfter: *stall,
		GlobalWait: *globalWait,
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	res, err := eng.Run()
	if err != nil {
		return err
	}

	// Keep serving relay/shutdown traffic briefly: a node done with its
	// rounds may still owe delivery to a slower sibling's subtree, and the
	// endpoint Close drains outbound queues bounded by its linger.
	if *resultPath != "" {
		if err := writeJSON(*resultPath, res); err != nil {
			return err
		}
	}
	if *statsPath != "" {
		if err := writeJSON(*statsPath, ep.Stats()); err != nil {
			return err
		}
	}
	if logf != nil {
		logf("done: %d rounds, %d stalls, final accuracy %.4f", s.Rounds, res.Stalls, res.FinalAccuracy)
	}
	return nil
}

// loadCluster parses the id→address book and returns it in transport form
// plus this node's own listen address.
func loadCluster(path string, self int) (map[transport.NodeID]string, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var entries map[string]string
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, "", fmt.Errorf("cluster file %s: %w", path, err)
	}
	book := make(map[transport.NodeID]string, len(entries))
	listen := ""
	for key, addr := range entries {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, "", fmt.Errorf("cluster file %s: bad node id %q", path, key)
		}
		if id == self {
			listen = addr
			continue
		}
		book[transport.NodeID(id)] = addr
	}
	return book, listen, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
