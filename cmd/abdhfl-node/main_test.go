package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"abdhfl"
	"abdhfl/internal/fault"
	"abdhfl/internal/node"
)

// TestClusterSmoke is the end-to-end multi-process check: it builds the
// abdhfl-node binary, spawns a real 7-process cluster (1 root, 2 leaders,
// 4 plain devices) on loopback TCP with a fault plan active, and asserts
// the root completes all global rounds, writes a coherent result, and
// every process exits cleanly. Skipped under -short (it compiles and runs
// OS processes).
func TestClusterSmoke(t *testing.T) {
	runClusterSmoke(t, "voting")
}

// TestClusterSmokeABA repeats the 7-process run with the randomized
// common-coin ABA deciding at the root, so the proposal/ballot exchange
// (frame kinds 4 and 5) crosses real process and socket boundaries while
// the drop+duplicate plan is chewing on exactly those kinds.
func TestClusterSmokeABA(t *testing.T) {
	runClusterSmoke(t, "aba")
}

func runClusterSmoke(t *testing.T, topProtocol string) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "abdhfl-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Levels 2, ClusterSize 3, TopNodes 2: devices 0-5 in two bottom
	// clusters led by 0 and 3, root id 6 — seven processes.
	s := abdhfl.Scenario{
		Levels: 2, ClusterSize: 3, TopNodes: 2,
		Rounds: 3, LocalIters: 1, BatchSize: 8, LearningRate: 0.05,
		SamplesPerClient: 16, TestSamples: 40, ValidationSamples: 24,
		Aggregator: "multi-krum", TopProtocol: topProtocol,
		Codec:     "delta-int8", // codec in the path: WireBytes accounting is live
		EvalEvery: 1, Seed: 11, Workers: 1,
	}.WithDefaults()
	const procs = 7

	scenarioPath := filepath.Join(dir, "scenario.json")
	sf, err := os.Create(scenarioPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := abdhfl.WriteScenario(sf, s); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// Reserve one loopback port per process by binding and releasing.
	cluster := make(map[string]string, procs)
	for id := 0; id < procs; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cluster[fmt.Sprint(id)] = ln.Addr().String()
		ln.Close()
	}
	clusterPath := writeJSONFile(t, dir, "cluster.json", cluster)

	// An active fault plan: drops and duplicates on the uplink, so the run
	// exercises dupe suppression and stall-and-continue across real
	// process boundaries, not just the happy path.
	planPath := writeJSONFile(t, dir, "plan.json", fault.Plan{
		Seed: 5, Drop: 0.1, Duplicate: 0.2,
	})

	resultPath := filepath.Join(dir, "result.json")
	statsPath := filepath.Join(dir, "stats.json")
	type proc struct {
		id     int
		cmd    *exec.Cmd
		stderr bytes.Buffer
		err    error
	}
	ps := make([]*proc, procs)
	for id := 0; id < procs; id++ {
		args := []string{
			"-scenario", scenarioPath, "-cluster", clusterPath, "-plan", planPath,
			"-id", fmt.Sprint(id), "-stall", "1s", "-q",
		}
		if id == procs-1 {
			args = append(args, "-result", resultPath, "-stats", statsPath)
		}
		p := &proc{id: id, cmd: exec.Command(bin, args...)}
		p.cmd.Stderr = &p.stderr
		ps[id] = p
	}
	var wg sync.WaitGroup
	for _, p := range ps {
		if err := p.cmd.Start(); err != nil {
			t.Fatalf("start node %d: %v", p.id, err)
		}
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			p.err = p.cmd.Wait()
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		for _, p := range ps {
			p.cmd.Process.Kill()
		}
		<-done
		for _, p := range ps {
			t.Logf("node %d stderr:\n%s", p.id, p.stderr.String())
		}
		t.Fatal("cluster did not finish within 120s")
	}
	for _, p := range ps {
		if p.err != nil {
			t.Errorf("node %d exited with %v:\n%s", p.id, p.err, p.stderr.String())
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	raw, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatalf("root wrote no result: %v", err)
	}
	var res node.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if len(res.Curve) != s.Rounds {
		t.Errorf("curve has %d points, want %d rounds", len(res.Curve), s.Rounds)
	}
	if len(res.FinalParams) == 0 {
		t.Error("result carries no final model")
	}
	if res.FinalAccuracy <= 0 || res.FinalAccuracy > 1 {
		t.Errorf("final accuracy %v out of range", res.FinalAccuracy)
	}
	if res.Comm.ModelTransfers == 0 || res.Comm.WireBytes == 0 {
		t.Errorf("σ-accounting empty: %+v", res.Comm)
	}
	if len(res.Audit) == 0 {
		t.Error("no filter audit reassembled at the root")
	}

	var stats map[string]int64
	statsRaw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("root wrote no stats: %v", err)
	}
	if err := json.Unmarshal(statsRaw, &stats); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if stats["frames_sent"] == 0 || stats["frames_delivered"] == 0 {
		t.Errorf("root wire counters empty: %v", stats)
	}
}

func writeJSONFile(t *testing.T, dir, name string, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
