// Command abdhfl-codec runs the update-codec matrix: every registered codec
// (bit-exact identity, int8 quantization, top-k sparsification, delta
// against the last global) crossed with aggregation schemes and data
// attacks, all on the asynchronous pipeline engine over a bandwidth-limited
// network. Per cell it reports final accuracy, the codec's compression
// ratio, wire kilobytes per round, the simulated round latency the byte
// rate induces, and the bottom-level filter precision/recall against the
// known Byzantine placement — so one table answers what compression costs
// in robustness and buys in bandwidth.
//
// Every number is a pure function of -seed: running the command twice
// produces byte-identical output (results_codec_matrix.txt).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abdhfl/internal/experiments"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		levels  = flag.Int("levels", 3, "tree depth")
		m       = flag.Int("m", 4, "cluster size")
		top     = flag.Int("top", 4, "top-level node count")
		rounds  = flag.Int("rounds", 15, "global rounds")
		samples = flag.Int("samples", 60, "samples per client")
		seed    = flag.Uint64("seed", 1, "seed for data, schedule, and placement")
		flagLvl = flag.Int("flag", 1, "flag level ℓ_F for all runs")
		mal     = flag.Float64("malicious", 0.25, "poisoned-device fraction in attacked cells")
		rate    = flag.Float64("rate", 1500, "link bandwidth in wire bytes per virtual ms")
		overhd  = flag.Float64("overhead", 0.5, "fixed per-message overhead in virtual ms")
		codecs  = flag.String("codecs", "", "comma-separated codec names (default: full registry)")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()

	var names []string
	if *codecs != "" {
		for _, tok := range strings.Split(*codecs, ",") {
			names = append(names, strings.TrimSpace(tok))
		}
	}
	fmt.Printf("Codec matrix — codec x scheme x attack, %d rounds, flag level %d, %.0f%% poisoned, %.0f B/vms, seed %d\n\n",
		*rounds, *flagLvl, *mal*100, *rate, *seed)
	results, err := experiments.RunCodecMatrix(experiments.CodecMatrixOptions{
		Levels:      *levels,
		ClusterSize: *m,
		TopNodes:    *top,
		Rounds:      *rounds,
		Samples:     *samples,
		Seed:        *seed,
		FlagLevel:   *flagLvl,
		Malicious:   *mal,
		RateBytes:   *rate,
		PerMessage:  *overhd,
		Codecs:      names,
		Telemetry:   telemetry.MaybeServe(*taddr),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.CodecMatrixTable(results).Render())
	fmt.Println("\nIdentity is the uncompressed baseline: its rows reproduce the plain")
	fmt.Println("pipeline results bit-for-bit, so every other codec's accuracy delta is")
	fmt.Println("pure information loss. The byte-rate model converts compression ratio")
	fmt.Println("into round latency: at this link rate, transfer time is one component")
	fmt.Println("of the round alongside local training, so a ~7x smaller wire format")
	fmt.Println("shortens the simulated round without collapsing it. Filter")
	fmt.Println("precision/recall shows whether quantization or sparsification blurs the")
	fmt.Println("geometry the robust rules rely on to separate poisoned updates from")
	fmt.Println("honest ones.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-codec:", err)
	os.Exit(1)
}
