// Command abdhfl-pipeline studies the asynchronous pipeline learning
// workflow (the paper's Fig 2 and Eq. 3):
//
//   - default / -timeline: one run's per-round phase breakdown
//     (σ_w, σ_p, σ_g, σ, ν) plus accuracy and virtual duration;
//   - -sweep: the flag-level x delay-case sweep behind Table VIII — for each
//     of the four delay regimes (big/small partial-aggregation τ' crossed
//     with big/small global-aggregation τ_g) it reports the efficiency
//     indicator ν at every admissible flag level.
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl"
	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		levels  = flag.Int("levels", 4, "tree depth (more levels = more flag choices)")
		m       = flag.Int("m", 3, "cluster size")
		top     = flag.Int("top", 3, "top-level node count")
		rounds  = flag.Int("rounds", 20, "global rounds")
		samples = flag.Int("samples", 80, "samples per client")
		flagLvl = flag.Int("flag", 1, "flag level for the timeline run")
		sweep   = flag.Bool("sweep", false, "run the flag-level x delay-case sweep (Table VIII)")
		trade   = flag.Bool("tradeoff", false, "run the efficiency/accuracy trade-off per flag level (§III-D2)")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()
	reg := telemetry.MaybeServe(*taddr)

	base := abdhfl.Scenario{
		Levels: *levels, ClusterSize: *m, TopNodes: *top,
		Rounds: *rounds, SamplesPerClient: *samples,
		TestSamples: 600, ValidationSamples: 400, EvalEvery: 5,
	}.WithDefaults()
	mat, err := abdhfl.Build(base)
	if err != nil {
		fatal(err)
	}
	mat.Telemetry = reg

	if *sweep {
		runSweep(base, reg)
		return
	}
	if *trade {
		runTradeoff(base, reg)
		return
	}
	runTimeline(mat, *flagLvl)
}

func runTimeline(mat *abdhfl.Materials, flagLevel int) {
	res, err := mat.RunPipeline(1, flagLevel, pipeline.DefaultTiming())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Pipeline workflow timeline — flag level %d (tree depth %d)\n\n", flagLevel, mat.Tree.Depth())
	table := metrics.Table{Header: []string{"round", "σ_w", "σ_p", "σ_g", "σ", "ν"}}
	for _, t := range res.Timings {
		table.AddRow(
			fmt.Sprint(t.Round),
			fmt.Sprintf("%.1f", t.SigmaW),
			fmt.Sprintf("%.1f", t.SigmaP),
			fmt.Sprintf("%.1f", t.SigmaG),
			fmt.Sprintf("%.1f", t.Sigma),
			fmt.Sprintf("%.3f", t.Nu),
		)
	}
	fmt.Print(table.Render())
	fmt.Println()
	fmt.Print(pipeline.RenderTimeline(res.Timings, 60))
	fmt.Printf("\nmean ν = %.3f   virtual duration = %.1f ms   merges = %d   final accuracy = %s\n",
		res.MeanNu, float64(res.Duration), res.MergedGlobals, metrics.Pct(res.FinalAccuracy))
	fmt.Printf("network: %d messages, %d model-volume units, %d dropped, %d duplicated, %d to unregistered nodes\n",
		res.Network.Messages, res.Network.Volume,
		res.Network.Dropped, res.Network.Duplicated, res.Network.DroppedUnregistered)
}

func runSweep(s abdhfl.Scenario, reg *telemetry.Registry) {
	rows, err := experiments.RunFlagSweep(experiments.FlagSweepOptions{
		Levels:      s.Levels,
		ClusterSize: s.ClusterSize,
		TopNodes:    s.TopNodes,
		Rounds:      s.Rounds,
		Samples:     s.SamplesPerClient,
		Telemetry:   reg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Flag-level sweep (Eq. 3 / Table VIII) — depth %d, %d rounds\n\n", s.Levels, s.Rounds)
	fmt.Print(experiments.FlagSweepTable(rows).Render())
	fmt.Println("\nν = (σ_p+σ_g)/σ: the fraction of the first-upload-to-global window")
	fmt.Println("spent training rather than waiting. Deeper flag levels trade staleness")
	fmt.Println("(more correction-factor reliance) for higher ν, as in Appendix E.")
}

func runTradeoff(s abdhfl.Scenario, reg *telemetry.Registry) {
	rows, err := experiments.RunTradeoff(experiments.TradeoffOptions{
		Levels:      s.Levels,
		ClusterSize: s.ClusterSize,
		TopNodes:    s.TopNodes,
		Rounds:      s.Rounds,
		Samples:     s.SamplesPerClient,
		Telemetry:   reg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Flag-level trade-off (\u00a7III-D2) \u2014 %d rounds at every flag level\n\n", s.Rounds)
	fmt.Print(experiments.TradeoffTable(rows).Render())
	fmt.Println("\nDeeper flag levels raise \u03bd and shorten the virtual wall-clock but pay")
	fmt.Println("model staleness: accuracy at the fixed round budget drops — the paper's")
	fmt.Println("motivation for treating the flag level as a task-dependent tunable.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-pipeline:", err)
	os.Exit(1)
}
