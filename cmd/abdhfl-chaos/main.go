// Command abdhfl-chaos runs the fault-injection resilience matrix: every
// aggregation scheme crossed with a ladder of fault intensities (message
// loss, duplication, reordering, mid-run crashes, transient churn), all on
// the asynchronous pipeline engine with quorum-φ collection and Algorithm
// 4's timeout branch absorbing the failures. Per cell it reports final
// accuracy, rounds completed, rounds-to-converge, the pipeline-efficiency
// indicator ν, and the degradation tallies (sub-quorum closes, abandoned
// collections, dropped and duplicated messages).
//
// Every number is a pure function of -seed: running the command twice
// produces byte-identical output, which is what makes chaos results
// reportable and diffable (results_chaos.txt).
//
// With -consensus the command runs the agreement-latency matrix instead:
// the common-coin randomized ABA against validation-voting on identical
// workloads across the same fault-intensity ladder, reporting termination
// rounds, virtual agreement latency, message counts, and decision
// equivalence (results_consensus_latency.txt). The same determinism
// contract holds, for every -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abdhfl/internal/experiments"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
)

func main() {
	var (
		levels  = flag.Int("levels", 3, "tree depth")
		m       = flag.Int("m", 4, "cluster size")
		top     = flag.Int("top", 4, "top-level node count")
		rounds  = flag.Int("rounds", 20, "global rounds")
		samples = flag.Int("samples", 80, "samples per client")
		seed    = flag.Uint64("seed", 1, "seed for data, schedule, and fault plans")
		flagLvl = flag.Int("flag", 1, "flag level ℓ_F for all runs")
		quorum  = flag.Float64("quorum", 0.75, "collection quorum φ")
		mal     = flag.Float64("malicious", 0.25, "Type I poisoning fraction under the faults (0 for a clean population)")
		rates   = flag.String("rates", "0,0.1,0.2,0.3", "comma-separated fault intensities")

		consensusMode = flag.Bool("consensus", false,
			"run the agreement-latency matrix (randomized ABA vs validation-voting) instead of the resilience matrix")
		members   = flag.Int("members", 7, "consensus members per instance (with -consensus)")
		dim       = flag.Int("dim", 32, "proposal vector dimension (with -consensus)")
		instances = flag.Int("instances", 24, "consensus instances per cell (with -consensus)")
		workers   = flag.Int("workers", 0, "validator fan-out; results are identical for every value (with -consensus)")

		taddr = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
		traceJSONL = flag.String("trace-jsonl", "",
			"record causal spans across every cell's run and write the merged stream as JSON Lines to this file")
		traceCap = flag.Int("trace-cap", 0, "retained span bound (0 = default)")
	)
	flag.Parse()

	var faultRates []float64
	for _, tok := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -rates entry %q: %w", tok, err))
		}
		faultRates = append(faultRates, r)
	}

	malicious := *mal
	if malicious == 0 {
		malicious = -1 // ChaosOptions: negative selects a clean population
	}
	if *consensusMode {
		runConsensus(*members, *dim, *instances, *seed, *workers, malicious, faultRates)
		return
	}
	fmt.Printf("Chaos matrix — fault rate x scheme, %d rounds, quorum %.2f, flag level %d, %.0f%% poisoned, seed %d\n\n",
		*rounds, *quorum, *flagLvl, *mal*100, *seed)
	var tracer *trace.Tracer
	if *traceJSONL != "" {
		tracer = trace.NewTracer(8, *traceCap)
	}
	results, err := experiments.RunChaos(experiments.ChaosOptions{
		Levels:      *levels,
		ClusterSize: *m,
		TopNodes:    *top,
		Rounds:      *rounds,
		Samples:     *samples,
		Seed:        *seed,
		FlagLevel:   *flagLvl,
		Quorum:      *quorum,
		Malicious:   malicious,
		FaultRates:  faultRates,
		Telemetry:   telemetry.MaybeServe(*taddr),
		Trace:       tracer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.ChaosTable(results).Render())
	fmt.Println("\nAt rate 0 every scheme completes all rounds at full quorum, so the rows")
	fmt.Println("isolate pure aggregation robustness against the poisoned fraction. As the")
	fmt.Println("rate rises, sub-quorum closes and abandoned collections absorb the injected")
	fmt.Println("loss, crashes, and churn: runs keep terminating and rounds — not models —")
	fmt.Println("are what degrade. Accuracy need not fall monotonically with the rate,")
	fmt.Println("because transport loss also thins the poisoned uploads and dropped global")
	fmt.Println("broadcasts reduce the correction-factor drag of Eq. (1).")
	if tracer != nil {
		if w := trace.DroppedWarning("span tracer", tracer.Dropped()); w != "" {
			fmt.Println()
			fmt.Println(w)
		}
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %d spans written to %s\n", tracer.Len(), *traceJSONL)
	}
}

// runConsensus prints the agreement-latency matrix: both consensus
// protocols on the same per-instance workloads at every fault rate.
func runConsensus(members, dim, instances int, seed uint64, workers int, malicious float64, faultRates []float64) {
	fmt.Printf("Agreement latency — randomized ABA vs validation-voting, n=%d, %d instances/cell, seed %d\n\n",
		members, instances, seed)
	results, err := experiments.RunConsensusLatency(experiments.ConsensusLatencyOptions{
		Members:    members,
		Dim:        dim,
		Instances:  instances,
		Seed:       seed,
		Workers:    workers,
		Malicious:  malicious,
		FaultRates: faultRates,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.ConsensusLatencyTable(results).Render())
	fmt.Println("\nVoting always takes its two synchronous rounds, but a synchronous round")
	fmt.Println("ends when the slowest message lands — and with crashed members it ends at")
	fmt.Println("the stall deadline, so its latency column tracks the timeout, not the")
	fmt.Println("network. The randomized ABA pays more rounds and far more (tiny, binary)")
	fmt.Println("messages, yet each round advances at quorum speed: n-f responses suffice,")
	fmt.Println("so crashed members and heavy tails cost nothing until the fault budget f")
	fmt.Println("is spent. The match column pins the equivalence the chaostest sweeps rely")
	fmt.Println("on: at every fault rate both protocols keep the same proposal set.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-chaos:", err)
	os.Exit(1)
}
