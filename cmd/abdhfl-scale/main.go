// Command abdhfl-scale sweeps the million-device scale engine over a
// depth × fan-out × γ matrix and prints one row per cell: final-round model
// error, bottom-level filter precision/recall, trainer activations and
// materialized buffers (the lazy-state footprint), event counts, the sharded
// queue's peak occupancy, and the σ_w/σ_g timing aggregates.
//
// Every cell simulates the full device population on the sharded event
// engine with cohort-batched training, so a 100k-device deployment costs
// roughly a second of wall clock per round. All table cells are pure
// functions of -seed: running the command twice produces byte-identical
// output (results_scale_matrix.txt is the committed reference artifact).
//
//	abdhfl-scale                                   # 100k devices, γ ∈ {0, .1, .2, .3}
//	abdhfl-scale -devices 1000000 -gammas 0,0.2    # a million devices
//	abdhfl-scale -depths 3,4 -fanouts 8,16         # topology shapes
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		devices = flag.Int("devices", 100_000, "minimum device count per cell (top width is derived)")
		depths  = flag.String("depths", "3", "comma-separated tree depths")
		fanouts = flag.String("fanouts", "8", "comma-separated cluster sizes m")
		gammas  = flag.String("gammas", "0,0.1,0.2,0.3", "comma-separated Byzantine device fractions")
		cohort  = flag.Int("cohort", 4, "trainers sampled per bottom cluster per round")
		rounds  = flag.Int("rounds", 5, "global rounds per cell")
		dim     = flag.Int("dim", 16, "synthetic update dimension")
		rule    = flag.String("rule", "median", "aggregation rule at every level")
		shards  = flag.Int("shards", 8, "simnet event-queue shards")
		workers = flag.Int("workers", 4, "simnet queue fold workers")
		seed    = flag.Uint64("seed", 1, "seed for topology, Byzantine placement, and updates")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()

	depthList, err := parseInts(*depths)
	if err != nil {
		fatal(fmt.Errorf("bad -depths: %w", err))
	}
	fanoutList, err := parseInts(*fanouts)
	if err != nil {
		fatal(fmt.Errorf("bad -fanouts: %w", err))
	}
	gammaList, err := parseFloats(*gammas)
	if err != nil {
		fatal(fmt.Errorf("bad -gammas: %w", err))
	}
	reg := telemetry.MaybeServe(*taddr)

	fmt.Printf("Scale matrix — depth x fan-out x gamma, >=%d devices per cell, cohort %d, %d rounds, rule %s, seed %d\n",
		*devices, *cohort, *rounds, *rule, *seed)
	fmt.Printf("sharded event engine: %d shards, %d fold workers; lazy device state; deterministic per cell\n\n",
		*shards, *workers)

	table := metrics.Table{Header: experiments.ScaleTableHeader()}
	var totalDevices, totalEvents, maxPeakQueue int
	var totalVolume int64
	var totalRate float64
	cells := 0
	for _, d := range depthList {
		for _, m := range fanoutList {
			for _, g := range gammaList {
				res, err := experiments.RunScale(experiments.ScaleOptions{
					Depth:     d,
					Fanout:    m,
					Devices:   *devices,
					Gamma:     g,
					Cohort:    *cohort,
					Rounds:    *rounds,
					Dim:       *dim,
					Rule:      *rule,
					Shards:    *shards,
					Workers:   *workers,
					Seed:      *seed,
					Telemetry: reg,
				})
				if err != nil {
					fatal(fmt.Errorf("depth %d m %d gamma %.2f: %w", d, m, g, err))
				}
				table.AddRow(res.Row()...)
				totalDevices += res.Devices
				totalEvents += res.Events
				totalVolume += res.Net.Volume
				if res.Net.PeakQueue > maxPeakQueue {
					maxPeakQueue = res.Net.PeakQueue
				}
				totalRate += res.DevicesPerSec
				cells++
			}
		}
	}
	fmt.Print(table.Render())
	// Deterministic run totals stay on stdout so they land in the artifact;
	// volume is in simnet's abstract payload units (the synthetic update dim).
	fmt.Printf("\nevent engine: peak queue %d pending events (max over cells), %d total payload volume\n",
		maxPeakQueue, totalVolume)
	// The throughput summary goes to stderr: it is wall-clock dependent and
	// must not land in the diffable artifact.
	fmt.Fprintf(os.Stderr, "\n%d cells, %d simulated devices, %d events, mean %.0f devices/sec\n",
		cells, totalDevices, totalEvents, totalRate/float64(cells))
	fmt.Println("\nEach row simulates the full population; only the sampled cohort trains and")
	fmt.Println("materializes an update buffer (compare the buffers column against devices).")
	fmt.Println("rel_err is the final global model's relative error against the synthetic")
	fmt.Println("ground-truth gradient: robust rules hold it near the gamma=0 noise floor")
	fmt.Println("until the Byzantine fraction approaches the rule's tolerance bound, and the")
	fmt.Println("bottom precision/recall columns show the filter identifying the poisoned")
	fmt.Println("cohort members it actually saw.")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-scale:", err)
	os.Exit(1)
}
