// Command abdhfl-sim runs a single ABD-HFL experiment described entirely by
// flags — the general-purpose front end to the library. It prints the
// convergence curve, the final accuracy next to the vanilla baseline, the
// communication counters, and (with -engine pipeline or -engine realtime)
// the asynchronous workflow's efficiency statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl"
	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/realtime"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
)

func main() {
	var (
		levels    = flag.Int("levels", 3, "tree depth (levels)")
		m         = flag.Int("m", 4, "cluster size")
		top       = flag.Int("top", 4, "top-level node count")
		dist      = flag.String("dist", "iid", "data distribution: iid | noniid | dirichlet")
		atk       = flag.String("attack", "none", "attack: none | type1 | type2 | backdoor | signflip | noise | ale | ipm")
		mal       = flag.Float64("malicious", 0, "malicious proportion [0,1]")
		placement = flag.String("placement", "prefix", "placement: prefix | random | adversarial")
		rounds    = flag.Int("rounds", 40, "global rounds")
		samples   = flag.Int("samples", 150, "samples per client")
		agg       = flag.String("aggregator", "multi-krum", "intermediate BRA rule")
		proto     = flag.String("protocol", "voting", "top-level CBA protocol ('' = BRA top)")
		scheme    = flag.Int("scheme", 0, "Table III scheme override (1-4, 0 = explicit rules)")
		quorum    = flag.Float64("quorum", 1, "collection quorum φ")
		codecName = flag.String("codec", "", "update codec: identity | int8 | topk | delta | delta-<inner> ('' = uncompressed)")
		cohort    = flag.Int("cohort", 0, "devices sampled to train per bottom cluster per round (0 = everyone)")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		engine    = flag.String("engine", "rounds", "engine: rounds | pipeline | realtime")
		flagLvl   = flag.Int("flaglevel", 1, "flag level for async engines")
		baseline  = flag.Bool("baseline", true, "also run the vanilla FL baseline (rounds engine only)")
		listRules = flag.Bool("list", false, "list available aggregators and protocols, then exit")
		config    = flag.String("config", "", "load the scenario from a JSON file (flags are ignored except -engine/-flaglevel/-baseline)")
		showTree  = flag.Bool("tree", false, "print the tree structure (with Byzantine devices marked) before running")
		taddr     = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
		traceJSONL  = flag.String("trace-jsonl", "", "record causal spans and write the merged stream as JSON Lines to this file")
		traceChrome = flag.String("trace-chrome", "", "record causal spans and write Chrome trace-event JSON (Perfetto-loadable) to this file")
		traceShards = flag.Int("trace-shards", 8, "tracer shard count (contention knob; never changes output)")
		traceCap    = flag.Int("trace-cap", 0, "retained span bound (0 = default)")
	)
	flag.Parse()
	if *listRules {
		fmt.Println("aggregators:", aggregate.Names())
		fmt.Println("protocols:  ", consensus.Names())
		return
	}

	s := abdhfl.Scenario{
		Levels: *levels, ClusterSize: *m, TopNodes: *top,
		Distribution:      abdhfl.Distribution(*dist),
		Attack:            abdhfl.Attack(*atk),
		MaliciousFraction: *mal,
		Placement:         abdhfl.Placement(*placement),
		Rounds:            *rounds,
		SamplesPerClient:  *samples,
		Aggregator:        *agg,
		TopProtocol:       *proto,
		Scheme:            *scheme,
		Quorum:            *quorum,
		Codec:             *codecName,
		Cohort:            *cohort,
		Seed:              *seed,
		EvalEvery:         5,
	}.WithDefaults()
	if *config != "" {
		loaded, err := abdhfl.LoadScenario(*config)
		if err != nil {
			fatal(err)
		}
		s = loaded.WithDefaults()
	}

	mat, err := abdhfl.Build(s)
	if err != nil {
		fatal(err)
	}
	mat.Telemetry = telemetry.MaybeServe(*taddr)
	var tracer *trace.Tracer
	if *traceJSONL != "" || *traceChrome != "" {
		tracer = trace.NewTracer(*traceShards, *traceCap)
		if mat.Telemetry != nil {
			tracer.DroppedCounter = mat.Telemetry.Counter("abdhfl_trace_dropped_total")
		}
		mat.Trace = tracer
	}
	if *showTree {
		fmt.Print(mat.Tree.Summary())
		fmt.Println()
		fmt.Print(mat.Tree.Render(mat.Byzantine))
		fmt.Println()
	}
	fmt.Printf("ABD-HFL simulation: %d clients (%d levels, m=%d, top=%d), %s, attack=%s at %s\n",
		s.Clients(), s.Levels, s.ClusterSize, s.TopNodes, s.Distribution, s.Attack, metrics.Pct(s.MaliciousFraction))
	fmt.Printf("rules: partial=%s global=%s engine=%s\n\n", mat.PartialRule.Name(), mat.GlobalRule.Name(), *engine)

	switch *engine {
	case "rounds":
		runRounds(mat, s, *baseline)
	case "pipeline":
		runPipeline(mat, *flagLvl)
	case "realtime":
		runRealtime(mat, *flagLvl)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	exportTrace(tracer, *traceJSONL, *traceChrome)
}

// exportTrace writes the recorded span stream to the requested files and
// surfaces capacity overflow on the summary.
func exportTrace(tracer *trace.Tracer, jsonl, chrome string) {
	if tracer == nil {
		return
	}
	if w := trace.DroppedWarning("span tracer", tracer.Dropped()); w != "" {
		fmt.Println(w)
	}
	if jsonl != "" {
		f, err := os.Create(jsonl)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d spans written to %s\n", tracer.Len(), jsonl)
	}
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: Chrome trace written to %s (load in ui.perfetto.dev)\n", chrome)
	}
}

func runRounds(mat *abdhfl.Materials, s abdhfl.Scenario, baseline bool) {
	res, err := mat.RunHFL(s.Seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("round  accuracy  loss")
	for _, p := range res.Curve {
		fmt.Printf("%5d  %-8s  %.4f\n", p.Round, metrics.Pct(p.Accuracy), p.Loss)
	}
	fmt.Printf("\nfinal accuracy: %s\n", metrics.Pct(res.FinalAccuracy))
	fmt.Printf("communication: %d model transfers, %d scalar messages\n",
		res.Comm.ModelTransfers, res.Comm.ScalarMessages)
	if res.Comm.WireBytes > 0 {
		fmt.Printf("wire traffic: %d encoded bytes (codec %s)\n", res.Comm.WireBytes, s.Codec)
	}
	if res.ExcludedByConsensus > 0 {
		fmt.Printf("top-level consensus excluded %d partial models\n", res.ExcludedByConsensus)
	}
	if baseline {
		van, err := mat.RunVanilla(s.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("vanilla FL baseline: %s (%d model transfers)\n",
			metrics.Pct(van.FinalAccuracy), van.Comm.ModelTransfers)
	}
}

func runPipeline(mat *abdhfl.Materials, flagLevel int) {
	res, err := mat.RunPipeline(mat.Scenario.Seed, flagLevel, pipeline.DefaultTiming())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline engine, flag level %d\n", flagLevel)
	fmt.Printf("final accuracy  %s\n", metrics.Pct(res.FinalAccuracy))
	fmt.Printf("mean nu         %.3f\n", res.MeanNu)
	fmt.Printf("virtual time    %.0f ms\n", float64(res.Duration))
	fmt.Printf("merges          %d\n", res.MergedGlobals)
	fmt.Printf("network         %d msgs / %d volume / %d dropped / %d dup / %d unregistered\n",
		res.Network.Messages, res.Network.Volume,
		res.Network.Dropped, res.Network.Duplicated, res.Network.DroppedUnregistered)
	fmt.Printf("peak queue      %d pending events\n", res.Network.PeakQueue)
	if res.WireBytes > 0 {
		fmt.Printf("wire traffic    %d encoded bytes (codec %s)\n", res.WireBytes, mat.Scenario.Codec)
	}
}

func runRealtime(mat *abdhfl.Materials, flagLevel int) {
	bra, err := aggregate.ByName(mat.Scenario.Aggregator)
	if err != nil {
		fatal(err)
	}
	voting := consensus.Voting{}
	res, err := realtime.Run(realtime.Config{
		Tree:             mat.Tree,
		Rounds:           mat.Scenario.Rounds,
		FlagLevel:        flagLevel,
		Quorum:           mat.Scenario.Quorum,
		Local:            mat.Local,
		PartialBRA:       bra,
		TopVoting:        &voting,
		ClientData:       mat.Shards,
		TestData:         mat.TestData,
		ValidationShards: mat.ValidationShards,
		Seed:             mat.Scenario.Seed,
		Codec:            mat.Codec,
		Telemetry:        mat.Telemetry,
		Trace:            mat.Trace,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("realtime engine (goroutine-per-node), flag level %d\n", flagLevel)
	fmt.Printf("final accuracy  %s\n", metrics.Pct(res.FinalAccuracy))
	fmt.Printf("wall time       %v\n", res.WallTime)
	fmt.Printf("goroutines      %d\n", res.Goroutines)
	fmt.Printf("merges          %d\n", res.Merges)
	if res.WireBytes > 0 {
		fmt.Printf("wire traffic    %d encoded bytes (codec %s)\n", res.WireBytes, mat.Scenario.Codec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-sim:", err)
	os.Exit(1)
}
