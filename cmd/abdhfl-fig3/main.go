// Command abdhfl-fig3 regenerates the paper's Figure 3: convergence curves
// (test accuracy per global round, mean with a 95% confidence band over
// repeated runs) of ABD-HFL vs vanilla FL for the data-poisoning scenarios.
// One CSV file is written per (distribution, attack, proportion, system)
// series, named like fig3_iid_type1_50_abdhfl.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 60, "global training rounds (paper: 200)")
		repeats  = flag.Int("repeats", 3, "repeated runs per curve (paper: 5)")
		samples  = flag.Int("samples", 200, "training samples per client")
		outDir   = flag.String("out", "fig3_out", "directory for the CSV series")
		dist     = flag.String("dist", "iid,noniid", "distributions to sweep")
		attacks  = flag.String("attacks", "type1,type2", "attacks to sweep")
		fracsArg = flag.String("fractions", "0.30,0.50,0.65", "malicious proportions to sweep")
		quick    = flag.Bool("quick", false, "smoke-scale pass")
		taddr    = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()
	if *quick {
		*rounds, *repeats, *samples = 10, 1, 80
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	var fractions []float64
	for _, fs := range strings.Split(*fracsArg, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(fs), 64)
		if err != nil {
			fatal(err)
		}
		fractions = append(fractions, f)
	}

	series, err := experiments.RunFig3(experiments.Fig3Options{
		Rounds:    *rounds,
		Repeats:   *repeats,
		Samples:   *samples,
		Dists:     strings.Split(*dist, ","),
		Attacks:   strings.Split(*attacks, ","),
		Fractions: fractions,
		Telemetry: telemetry.MaybeServe(*taddr),
	})
	if err != nil {
		fatal(err)
	}
	for _, s := range series {
		file := filepath.Join(*outDir, s.Key()+".csv")
		f, err := os.Create(file)
		if err != nil {
			fatal(err)
		}
		if err := s.Series.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-48s final=%s\n", file, metrics.Pct(s.Series.Final().Mean))
	}
	fmt.Println("done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-fig3:", err)
	os.Exit(1)
}
