// Command abdhfl-bounds prints and verifies the paper's Byzantine-tolerance
// theory: the Theorem 2 per-level bounds for ECSM trees (including the
// §V-A 57.8125% headline number), explicit bound-attaining adversarial
// placements checked against ideal per-level filtering, and — with -acsm —
// the Theorem 3 ψ-based bound on random arbitrary-cluster-size trees.
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
)

func main() {
	var (
		gamma1 = flag.Float64("gamma1", 0.25, "top-level tolerance γ1")
		gamma2 = flag.Float64("gamma2", 0.25, "per-cluster tolerance γ2")
		m      = flag.Int("m", 4, "ECSM cluster size")
		top    = flag.Int("top", 4, "top-level node count")
		depths = flag.Int("depths", 5, "maximum tree depth to tabulate")
		acsm   = flag.Bool("acsm", false, "also verify the ACSM ψ bound on random trees")
		seed   = flag.Uint64("seed", 1, "random seed for -acsm trees")
	)
	flag.Parse()
	acsmTrees := 0
	if *acsm {
		acsmTrees = 5
	}
	rep, err := experiments.RunBounds(experiments.BoundsOptions{
		Gamma1: *gamma1, Gamma2: *gamma2,
		ClusterSize: *m, TopNodes: *top,
		MaxDepth: *depths, ACSMTrees: acsmTrees, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abdhfl-bounds:", err)
		os.Exit(1)
	}

	fmt.Printf("Theorem 2 — maximum Byzantine proportion tolerated at the bottom level\n")
	fmt.Printf("γ1=%s γ2=%s, ECSM cluster size %d, %d top nodes\n\n",
		metrics.Pct(*gamma1), metrics.Pct(*gamma2), *m, *top)
	fmt.Print(rep.ECSMTable().Render())
	if len(rep.ECSM) >= 2 {
		fmt.Printf("\nThe paper's §V-A setting (depth 3): bound = %s\n", metrics.Pct(rep.ECSM[1].Bound))
	}

	fmt.Println("\nCorollary 2 — per-level tolerated proportion (depth from top):")
	for l, p := range rep.PerLevel {
		fmt.Printf("  level %d: %s\n", l, metrics.Pct(p))
	}

	if len(rep.ACSM) > 0 {
		fmt.Println("\nTheorem 3 — ACSM bound 1-(1-γ2)ψ on random arbitrary-size trees:")
		fmt.Print(rep.ACSMTable().Render())
	}
}
