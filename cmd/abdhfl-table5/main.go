// Command abdhfl-table5 regenerates the paper's Table V: final global-model
// test accuracy of ABD-HFL vs vanilla FL under Type I / Type II data
// poisoning, for IID and non-IID client data, across malicious proportions
// 0% .. 65% (including the 57.8% theoretical bound of §V-A).
//
// The full sweep is 4 scenario families x 9 proportions x 2 systems x
// -repeats runs. With the defaults it finishes in minutes on a laptop; use
// -quick for a smoke-scale pass or raise -rounds/-repeats to approach the
// paper's 200x5 setting.
//
// With -audit the command instead scores every aggregation's kept/discarded
// contributor ids against the ground-truth attacker placement and reports
// per-level filter precision/recall for the same attack families.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 60, "global training rounds per run (paper: 200)")
		repeats  = flag.Int("repeats", 3, "repeated runs per cell (paper: 5)")
		samples  = flag.Int("samples", 200, "training samples per client (paper: 937 MNIST samples)")
		quick    = flag.Bool("quick", false, "smoke-scale pass (few rounds, 1 repeat)")
		csvPath  = flag.String("csv", "", "also write the table as CSV to this path")
		audit    = flag.Bool("audit", false, "report per-level filter precision/recall instead of accuracy")
		auditMal = flag.Float64("audit-malicious", 0.30, "malicious proportion for -audit runs")
		taddr    = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
		fracsArg = flag.String("fractions", "0,0.05,0.10,0.20,0.30,0.40,0.50,0.578,0.65",
			"comma-separated malicious proportions")
	)
	flag.Parse()
	if *quick {
		*rounds, *repeats, *samples = 15, 1, 80
	}
	reg := telemetry.MaybeServe(*taddr)
	if *audit {
		runAudit(*rounds, *samples, *auditMal, *csvPath, reg)
		return
	}
	fractions, err := parseFractions(*fracsArg)
	if err != nil {
		fatal(err)
	}

	opts := experiments.Table5Options{
		Telemetry: reg,
		Rounds:    *rounds,
		Repeats:   *repeats,
		Samples:   *samples,
		Fractions: fractions,
		Progress: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}
	fmt.Printf("Table V — final test accuracy (rounds=%d repeats=%d samples/client=%d)\n",
		*rounds, *repeats, *samples)
	res, err := experiments.RunTable5(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Theorem 2 bound for the 3-level γ1=γ2=25%% tree: %s\n\n", metrics.Pct(res.Bound))
	table := res.Table()
	fmt.Print(table.Render())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := table.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}

func runAudit(rounds, samples int, frac float64, csvPath string, reg *telemetry.Registry) {
	fmt.Printf("Filter audit — per-level precision/recall vs ground truth (rounds=%d samples/client=%d malicious=%s)\n",
		rounds, samples, metrics.Pct(frac))
	res, err := experiments.RunFilterAudit(experiments.FilterAuditOptions{
		Rounds:    rounds,
		Samples:   samples,
		Frac:      frac,
		Telemetry: reg,
		Progress: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Theorem 2 bound for the 3-level γ1=γ2=25%% tree: %s\n\n", metrics.Pct(res.Bound))
	table := res.Table()
	fmt.Print(table.Render())
	fmt.Println("\nPrecision = flagged updates that were really malicious; recall = malicious")
	fmt.Println("updates the filter acted against. Level 0 is the top (CBA) level; clipped")
	fmt.Println("contributors count as flagged.")
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := table.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", csvPath)
	}
}

func parseFractions(arg string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(arg, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q: %w", part, err)
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("fraction %v out of [0,1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-table5:", err)
	os.Exit(1)
}
