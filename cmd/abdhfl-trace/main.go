// Command abdhfl-trace runs one traced pipeline-engine execution and walks
// its causal span DAG into per-round critical paths: for every formed global
// round, the chain of work the round actually waited on — straggler device
// training, the slowest message hop, per-level aggregation windows, global
// formation — with a per-phase latency breakdown.
//
// The span stream is deterministic: the same flags produce byte-identical
// output (and byte-identical -jsonl / -chrome exports) for every -workers
// value and every -trace-shards value, which is what makes the committed
// results_trace_paths.txt diffable. The -chrome export is Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing for a visual timeline of the asynchronous rounds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abdhfl/internal/experiments"
	"abdhfl/internal/trace"
)

func main() {
	var (
		levels  = flag.Int("levels", 3, "tree depth")
		m       = flag.Int("m", 4, "cluster size")
		top     = flag.Int("top", 4, "top-level node count")
		rounds  = flag.Int("rounds", 10, "global rounds")
		samples = flag.Int("samples", 80, "samples per client")
		seed    = flag.Uint64("seed", 1, "seed for data, attack placement, and schedule")
		flagLvl = flag.Int("flag", 1, "flag level ℓ_F")
		quorum  = flag.Float64("quorum", 0.75, "collection quorum φ")
		mal     = flag.Float64("malicious", 0.25, "Type I poisoning fraction (0 for a clean population)")
		workers = flag.Int("workers", 0, "worker-pool bound (0 = GOMAXPROCS); traced output is identical for every value")
		shards  = flag.Int("trace-shards", 8, "tracer shard count (contention knob; never changes output)")
		cap     = flag.Int("trace-cap", 0, "retained span bound (0 = default)")
		jsonl   = flag.String("jsonl", "", "write the merged span stream as JSON Lines to this file")
		chrome  = flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	)
	flag.Parse()

	malicious := *mal
	if malicious == 0 {
		malicious = -1 // TraceOptions: negative selects a clean population
	}
	rep, err := experiments.RunTracePaths(experiments.TraceOptions{
		Levels:      *levels,
		ClusterSize: *m,
		TopNodes:    *top,
		Rounds:      *rounds,
		Samples:     *samples,
		Seed:        *seed,
		FlagLevel:   *flagLvl,
		Quorum:      *quorum,
		Malicious:   malicious,
		Workers:     *workers,
		Shards:      *shards,
		Cap:         *cap,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Critical paths — pipeline engine, %d rounds, quorum %.2f, flag level %d, %.0f%% poisoned, seed %d\n",
		*rounds, *quorum, *flagLvl, *mal*100, *seed)
	fmt.Printf("%d spans recorded, %d rounds completed, final accuracy %.3f\n\n",
		rep.Spans, rep.CompletedRounds, rep.FinalAccuracy)
	fmt.Print(rep.Render())
	fmt.Println("\nEach row is the chain of work its round actually waited on: total")
	fmt.Println("end-to-end latency split into straggler training, message transit,")
	fmt.Println("per-level aggregation (including the collect window), and global")
	fmt.Println("formation, with the slowest hop and the straggler device named.")
	if w := trace.DroppedWarning("span tracer", rep.Dropped); w != "" {
		fmt.Println()
		fmt.Println(w)
	}

	if *jsonl != "" {
		if err := writeTo(*jsonl, rep.Tracer.WriteJSONL); err != nil {
			fatal(err)
		}
		fmt.Printf("\nspan stream written to %s\n", *jsonl)
	}
	if *chrome != "" {
		if err := writeTo(*chrome, rep.Tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("\nChrome trace written to %s (load in ui.perfetto.dev)\n", *chrome)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-trace:", err)
	os.Exit(1)
}
