// Command abdhfl-attacks exercises the attack and defence taxonomies of the
// paper's Tables I and II: every model-update attack (sign flip, noise, ALE,
// IPM) is run against every Byzantine-robust aggregation rule at a fixed
// Byzantine fraction, and the post-aggregation error relative to the honest
// mean is reported — small error means the rule defends against that attack.
// With -e2e the matrix is instead evaluated end-to-end (final accuracy of a
// short federated run per attack/defence pair).
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		n       = flag.Int("n", 16, "population size")
		dim     = flag.Int("dim", 500, "update dimension")
		byzFrac = flag.Float64("byz", 0.25, "Byzantine fraction")
		trials  = flag.Int("trials", 5, "random trials per cell")
		e2e     = flag.Bool("e2e", false, "end-to-end accuracy matrix instead of aggregation error")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()
	if *e2e {
		cells, err := experiments.RunE2EMatrix(experiments.E2EOptions{
			Malicious: *byzFrac,
			Telemetry: telemetry.MaybeServe(*taddr),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("End-to-end attack x defence matrix — final accuracy after 12 rounds, %s Byzantine\n\n",
			metrics.Pct(*byzFrac))
		fmt.Print(experiments.E2ETable(cells).Render())
		fmt.Println("\nData poisoners sit at prefix ids (paper's placement); model attackers are")
		fmt.Println("scattered — concentrating them into whole clusters defeats per-cluster filtering.")
		return
	}
	cells, err := experiments.RunAggregationMatrix(experiments.MatrixOptions{
		N: *n, Dim: *dim, ByzFrac: *byzFrac, Trials: *trials,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Table I/II matrix — aggregation error vs honest mean (n=%d, byz=%s, %d trials)\n\n",
		*n, metrics.Pct(*byzFrac), *trials)
	fmt.Print(experiments.MatrixTable(cells).Render())
	fmt.Println("\nRows are defences, columns attacks; entries are mean distance from the")
	fmt.Println("honest average (lower = better defence; 'mean' is the undefended baseline).")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-attacks:", err)
	os.Exit(1)
}
