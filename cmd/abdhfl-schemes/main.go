// Command abdhfl-schemes compares the four Byzantine-resistance scheme
// combinations of the paper's Table III on the same workload and reports,
// per scheme, the final accuracy (robustness) and the measured communication
// cost — putting numbers behind the qualitative Table IV.
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl/internal/experiments"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 25, "global rounds")
		samples = flag.Int("samples", 120, "samples per client")
		mal     = flag.Float64("malicious", 0.40, "malicious proportion (Type I poisoning)")
		dist    = flag.String("dist", "iid", "data distribution")
		agg     = flag.String("aggregator", "multi-krum", "BRA building block")
		proto   = flag.String("protocol", "voting", "CBA building block")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:9090); empty disables")
	)
	flag.Parse()

	fmt.Printf("Scheme comparison (Table III/IV) — %s, Type I poisoning at %s, %d rounds\n\n",
		*dist, metrics.Pct(*mal), *rounds)
	results, err := experiments.RunSchemes(experiments.SchemesOptions{
		Rounds:     *rounds,
		Samples:    *samples,
		Malicious:  *mal,
		Dist:       *dist,
		Aggregator: *agg,
		Protocol:   *proto,
		Telemetry:  telemetry.MaybeServe(*taddr),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abdhfl-schemes:", err)
		os.Exit(1)
	}
	table := experiments.SchemesTable(results)
	fmt.Print(table.Render())
	fmt.Println("\nExpected shape (Table IV): schemes with CBA levels pay more communication;")
	fmt.Println("scheme 3 (all-BRA) is the cheapest; CBA tops buy robustness at the bound.")
}
