// Command abdhfl-model trains a global model with ABD-HFL and manages model
// checkpoints in the library's binary format:
//
//	abdhfl-model -train -o global.abd          # run a scenario, save the model
//	abdhfl-model -inspect global.abd           # print shape and norm
//	abdhfl-model -eval global.abd -samples 500 # accuracy on a fresh test set
package main

import (
	"flag"
	"fmt"
	"os"

	"abdhfl"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
)

func main() {
	var (
		train   = flag.Bool("train", false, "run a federated training scenario and save the final global model")
		inspect = flag.String("inspect", "", "print shape/statistics of a saved model")
		eval    = flag.String("eval", "", "evaluate a saved model on a fresh synthetic test set")
		out     = flag.String("o", "global.abd", "output path for -train")
		rounds  = flag.Int("rounds", 30, "training rounds for -train")
		samples = flag.Int("samples", 500, "test samples for -eval")
		mal     = flag.Float64("malicious", 0, "malicious proportion for -train (Type I)")
		seed    = flag.Uint64("seed", 1, "seed")
		taddr   = flag.String("telemetry-addr", "",
			"serve Prometheus /metrics, expvar, and pprof on this address during -train; empty disables")
	)
	flag.Parse()

	switch {
	case *train:
		doTrain(*out, *rounds, *mal, *seed, telemetry.MaybeServe(*taddr))
	case *inspect != "":
		doInspect(*inspect)
	case *eval != "":
		doEval(*eval, *samples, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doTrain(out string, rounds int, mal float64, seed uint64, reg *telemetry.Registry) {
	s := abdhfl.Scenario{
		Rounds:            rounds,
		SamplesPerClient:  150,
		MaliciousFraction: mal,
		Seed:              seed,
		EvalEvery:         rounds,
	}
	if mal > 0 {
		s.Attack = abdhfl.AttackType1
	}
	mat, err := abdhfl.Build(s.WithDefaults())
	if err != nil {
		fatal(err)
	}
	mat.Telemetry = reg
	res, err := mat.RunHFL(seed)
	if err != nil {
		fatal(err)
	}
	m := nn.New(rng.New(1), dataset.Dim, 32, dataset.NumClasses)
	m.SetParams(res.FinalParams)
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := m.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %d rounds, final accuracy %.1f%%, model saved to %s\n",
		rounds, 100*res.FinalAccuracy, out)
}

func loadModel(path string) *nn.Model {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := nn.ReadModel(f)
	if err != nil {
		fatal(err)
	}
	return m
}

func doInspect(path string) {
	m := loadModel(path)
	fmt.Printf("layers:      %v\n", m.Sizes)
	fmt.Printf("parameters:  %d\n", m.NumParams())
	fmt.Printf("param norm:  %.4f\n", tensor.Norm2(m.Params()))
}

func doEval(path string, samples int, seed uint64) {
	m := loadModel(path)
	if len(m.Sizes) == 0 || m.Sizes[0] != dataset.Dim {
		fatal(fmt.Errorf("model input width %d does not match dataset dim %d", m.Sizes[0], dataset.Dim))
	}
	test := dataset.Generate(rng.New(seed).Derive("test"), samples, dataset.DefaultGen())
	fmt.Printf("accuracy on %d fresh samples: %.1f%%\n", samples, 100*nn.Accuracy(m, test))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abdhfl-model:", err)
	os.Exit(1)
}
