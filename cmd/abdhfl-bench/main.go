// Command abdhfl-bench runs the repository's tier-1 benchmarks through
// `go test -bench` and writes the parsed results as JSON, so performance
// regressions can be tracked run-over-run (the repository keeps the numbers
// for each optimisation PR in BENCH_<n>.json at the repo root).
//
//	abdhfl-bench                         # Table5 cells + Fig3 + kernels + telemetry tax + 100k-device scale + codecs
//	abdhfl-bench -bench '.' -count 3     # everything, three samples each
//	abdhfl-bench -pkg ./internal/aggregate -bench AggregateRules
//	abdhfl-bench -bench TelemetryOverhead -count 5   # telemetry-overhead arms only
//	abdhfl-bench -o BENCH_1.json         # write to a file
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark line of `go test -bench -benchmem` output. Custom
// metrics reported via b.ReportMetric (e.g. the scale engine's "devices/sec")
// land in Extra keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file format: the environment lines go test prints plus every
// parsed benchmark result.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Args    []string `json:"args"`
	Results []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", "Table5Cell|Fig3Convergence|AggregateRules|TelemetryOverhead|TraceOverhead|ScaleDevicesPerSec|ShardedQueue|CodecThroughput|TransportThroughput", "go test -bench regexp")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".,./internal/aggregate,./internal/codec,./internal/experiments,./internal/simnet,./internal/transport", "comma-separated packages to benchmark")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	pkgs := strings.Split(*pkg, ",")
	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-benchmem",
		"-count", strconv.Itoa(*count),
	}
	var report Report
	for _, p := range pkgs {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		cmd := exec.Command("go", append(args, p)...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abdhfl-bench: go %s %s: %v\n", strings.Join(args, " "), p, err)
			os.Exit(1)
		}
		merge(&report, parse(raw))
	}
	report.Args = append(args, pkgs...)
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "abdhfl-bench: no benchmark lines matched")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "abdhfl-bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "abdhfl-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(report.Results), *out)
}

// merge folds one package's parsed report into the combined one. Environment
// headers are identical across packages, so the first non-empty value wins;
// the top-level Pkg field accumulates every benchmarked package.
func merge(dst *Report, src Report) {
	if dst.Goos == "" {
		dst.Goos = src.Goos
	}
	if dst.Goarch == "" {
		dst.Goarch = src.Goarch
	}
	if dst.CPU == "" {
		dst.CPU = src.CPU
	}
	if src.Pkg != "" {
		if dst.Pkg == "" {
			dst.Pkg = src.Pkg
		} else {
			dst.Pkg += "," + src.Pkg
		}
	}
	for _, r := range src.Results {
		r.Pkg = src.Pkg
		dst.Results = append(dst.Results, r)
	}
}

// parse extracts environment headers and Benchmark… result lines from go test
// benchmark output.
func parse(raw []byte) Report {
	var rep Report
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep
}

// parseLine parses one result line, e.g.
//
//	BenchmarkTable5Cell/iid-multikrum/abdhfl  3  260948884 ns/op  73207978 B/op  494907 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, r.NsPerOp != 0
}
