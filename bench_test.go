// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each exercising the exact code path the corresponding cmd/
// tool uses to regenerate it (at reduced round counts — benchmarks measure
// cost per experiment unit; the cmd tools produce the full numbers).
package abdhfl

import (
	"fmt"

	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/core"
	"abdhfl/internal/dataset"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// benchScenario is a reduced paper-shape scenario reused by the benches.
func benchScenario(overrides func(*Scenario)) Scenario {
	s := Scenario{
		Rounds:            5,
		SamplesPerClient:  100,
		TestSamples:       400,
		ValidationSamples: 300,
		EvalEvery:         5,
	}
	if overrides != nil {
		overrides(&s)
	}
	return s.WithDefaults()
}

// BenchmarkTable1Attacks measures the data-poisoning attacks of Table I
// applied to one client shard.
func BenchmarkTable1Attacks(b *testing.B) {
	r := rng.New(1)
	base := dataset.Generate(r, 937, dataset.DefaultGen())
	attacks := []attack.DataPoison{
		attack.LabelFlipAll{Target: 9},
		attack.LabelFlipRandom{},
		attack.FeatureNoise{Stddev: 1},
		attack.DefaultBackdoor(),
	}
	for _, a := range attacks {
		b.Run(a.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := base.Clone()
				b.StartTimer()
				a.Poison(r, d)
			}
		})
	}
}

// BenchmarkTable2Defenses measures every Byzantine-robust rule of Table II
// aggregating a 16-member population with 25% sign-flipping members at the
// paper's model dimension.
func BenchmarkTable2Defenses(b *testing.B) {
	r := rng.New(1)
	const n, dim = 16, 2410 // 64-32-10 MLP parameter count
	honest := make([]tensor.Vector, n*3/4)
	for i := range honest {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = 1 + 0.2*r.NormFloat64()
		}
		honest[i] = v
	}
	mean, std := attack.PopulationStats(honest)
	updates := append([]tensor.Vector{}, honest...)
	for len(updates) < n {
		updates = append(updates, (attack.SignFlip{Scale: 3}).Apply(r, honest[0], mean, std))
	}
	for _, name := range aggregate.Names() {
		rule, err := aggregate.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rule.Aggregate(updates); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Schemes measures one full ABD-HFL run per Table III scheme
// (64 clients, 40% Type I poisoning).
func BenchmarkTable3Schemes(b *testing.B) {
	for scheme := 1; scheme <= 4; scheme++ {
		s := benchScenario(func(s *Scenario) {
			s.Scheme = scheme
			s.Attack = AttackType1
			s.MaliciousFraction = 0.40
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(core.Scheme(scheme).String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.RunHFL(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5Cell measures one Table V cell: an ABD-HFL run and a
// vanilla run under 50% Type I poisoning (the collapse point), IID/MultiKrum
// and non-IID/Median families.
func BenchmarkTable5Cell(b *testing.B) {
	families := []struct {
		name string
		dist Distribution
		agg  string
	}{
		{"iid-multikrum", DistIID, "multi-krum"},
		{"noniid-median", DistNonIID, "median"},
	}
	for _, fam := range families {
		s := benchScenario(func(s *Scenario) {
			s.Distribution = fam.dist
			s.Aggregator = fam.agg
			s.Attack = AttackType1
			s.MaliciousFraction = 0.50
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fam.name+"/abdhfl", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.RunHFL(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fam.name+"/vanilla", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.RunVanilla(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead runs the same attacked round engine with the
// telemetry registry detached (off) and attached together with a filter-audit
// callback (on). Comparing the two arms quantifies the instrumentation tax on
// the training hot path; the budget is <=2% (ISSUE 3 acceptance).
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		s := benchScenario(func(s *Scenario) {
			s.Attack = AttackType1
			s.MaliciousFraction = 0.25
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			m.Telemetry = telemetry.New()
			m.OnFilter = func(telemetry.FilterDecision) {}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.RunHFL(uint64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkTraceOverhead runs the same attacked round engine with the span
// tracer detached (off) and attached (on). A nil tracer is a single pointer
// check on every emission site, so the disabled arm must cost 0%; the
// enabled arm records every round/phase/train/aggregate/global span plus the
// per-aggregation filter audit and must stay within the <=2% budget
// (ISSUE 8 acceptance).
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		s := benchScenario(func(s *Scenario) {
			s.Attack = AttackType1
			s.MaliciousFraction = 0.25
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if attach {
				m.Trace = trace.NewTracer(8, 0)
			}
			if _, err := m.RunHFL(uint64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkFig2Pipeline measures one asynchronous pipeline run (the workflow
// of Fig 2) on the paper-shape tree.
func BenchmarkFig2Pipeline(b *testing.B) {
	s := benchScenario(nil)
	m, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := m.RunPipeline(uint64(i+1), 1, pipeline.DefaultTiming()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Convergence measures a per-round-evaluated run — the unit of
// one Fig 3 curve (one repeat).
func BenchmarkFig3Convergence(b *testing.B) {
	s := benchScenario(func(s *Scenario) {
		s.Attack = AttackType1
		s.MaliciousFraction = 0.50
		s.EvalEvery = 1
	})
	m, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := m.RunHFL(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq3FlagLevelSweep measures the flag-level sweep unit behind the
// efficiency-indicator study (Eq. 3 / Table VIII): one pipeline run per
// admissible flag level on a 4-level tree.
func BenchmarkEq3FlagLevelSweep(b *testing.B) {
	s := benchScenario(func(s *Scenario) {
		s.Levels, s.ClusterSize, s.TopNodes = 4, 3, 3
		s.Rounds = 4
	})
	m, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for fl := 0; fl <= m.Tree.Bottom()-1; fl++ {
			if _, err := m.RunPipeline(uint64(i+1), fl, pipeline.DefaultTiming()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTheorem2Bound measures the tolerance-theory verification unit:
// bound computation, bound-attaining placement, and ideal-filtering check on
// a 5-level, 1024-device tree.
func BenchmarkTheorem2Bound(b *testing.B) {
	tree, err := topology.NewECSM(5, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tol := topology.Tolerance{Gamma1: 0.25, Gamma2: 0.25}
	for i := 0; i < b.N; i++ {
		placement := tol.AdversarialPlacement(tree)
		if !tol.SurvivesFiltering(tree, placement) {
			b.Fatal("bound-attaining placement rejected")
		}
	}
}

// BenchmarkAblationDepth measures the cost of one run as the tree deepens at
// a fixed bottom population shape — the design-choice ablation behind
// Corollary 3 (deeper trees tolerate more but add aggregation stages).
func BenchmarkAblationDepth(b *testing.B) {
	shapes := []struct {
		name           string
		levels, m, top int
	}{
		{"depth2-16dev", 2, 4, 4},
		{"depth3-64dev", 3, 4, 4},
		{"depth4-256dev", 4, 4, 4},
	}
	for _, sh := range shapes {
		s := benchScenario(func(s *Scenario) {
			s.Levels, s.ClusterSize, s.TopNodes = sh.levels, sh.m, sh.top
			s.Rounds = 2
			s.SamplesPerClient = 40
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sh.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.RunHFL(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClusterSize measures one run across cluster sizes at a
// comparable device count — the m-ary branching design choice.
func BenchmarkAblationClusterSize(b *testing.B) {
	shapes := []struct {
		name           string
		levels, m, top int
	}{
		{"m2", 4, 2, 8}, // 8 top nodes, binary branching: 64 devices
		{"m4", 3, 4, 4},
		{"m8", 2, 8, 8},
	}
	for _, sh := range shapes {
		s := benchScenario(func(s *Scenario) {
			s.Levels, s.ClusterSize, s.TopNodes = sh.levels, sh.m, sh.top
			s.Rounds = 2
			s.SamplesPerClient = 40
		})
		m, err := Build(s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s-%ddev", sh.name, m.Tree.NumDevices()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.RunHFL(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopologiesUnderAttack compares one hierarchical run against the
// star and gossip baselines on the same poisoned workload — the paradigm
// comparison of the paper's introduction.
func BenchmarkTopologiesUnderAttack(b *testing.B) {
	s := benchScenario(func(s *Scenario) {
		s.Attack = AttackType1
		s.MaliciousFraction = 0.25
		s.Rounds = 2
	})
	m, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree-abdhfl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.RunHFL(uint64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("star-vanilla", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.RunVanilla(uint64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gossip", func(b *testing.B) {
		agg, err := aggregate.ByName(s.Aggregator)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := core.RunGossip(core.GossipConfig{
				Rounds:     2,
				Local:      m.Local,
				Aggregator: agg,
				ClientData: m.Shards,
				TestData:   m.TestData,
				Byzantine:  m.Byzantine,
				Seed:       uint64(i + 1),
				EvalEvery:  2,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
