package nn

import (
	"abdhfl/internal/dataset"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// TrainConfig controls local SGD training.
type TrainConfig struct {
	LearningRate float64
	BatchSize    int
	Iterations   int // number of minibatch SGD steps (the paper's T)
	// Momentum is the classical momentum coefficient (0 = plain SGD).
	Momentum float64
	// WeightDecay is the L2 regularisation coefficient added to gradients.
	WeightDecay float64
}

// DefaultTrain is the local-training configuration used by the experiments:
// the paper's 5 local iterations with a conventional minibatch size.
func DefaultTrain() TrainConfig {
	return TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 5}
}

// SGD performs cfg.Iterations minibatch SGD steps on m over d, sampling
// batches from r. It returns the mean loss across all processed samples.
// When d has fewer samples than the batch size, the whole dataset is used as
// one batch. It allocates a transient workspace per call; workers that train
// many devices should hold a Workspace and use SGDWS.
func SGD(m *Model, d *dataset.Dataset, cfg TrainConfig, r *rng.RNG) float64 {
	return SGDWS(m, NewWorkspace(m), d, cfg, r)
}

// SGDWS is SGD with caller-provided scratch: gradient and momentum
// accumulators live in ws, so a worker looping over devices performs the
// whole optimisation without allocating. It produces bit-identical results
// to SGD.
func SGDWS(m *Model, ws *Workspace, d *dataset.Dataset, cfg TrainConfig, r *rng.RNG) float64 {
	if d.Len() == 0 {
		return 0
	}
	batch := cfg.BatchSize
	if batch > d.Len() {
		batch = d.Len()
	}
	g := ws.gradsFor(m)
	var vel *Grads
	if cfg.Momentum > 0 {
		vel = ws.velFor(m)
	}
	totalLoss := 0.0
	samples := 0
	for it := 0; it < cfg.Iterations; it++ {
		g.Zero()
		for b := 0; b < batch; b++ {
			i := r.Intn(d.Len())
			totalLoss += m.BackwardWS(ws, g, d.X[i], d.Y[i])
			samples++
		}
		if cfg.WeightDecay > 0 {
			// L2 regularisation: grad += wd * batch * params (scaled so the
			// per-sample averaging in Step leaves wd*params).
			s := cfg.WeightDecay * float64(batch)
			for l := range g.Weights {
				tensor.Axpy(tensor.Vector(g.Weights[l].Data), s, tensor.Vector(m.Weights[l].Data))
				tensor.Axpy(g.Biases[l], s, m.Biases[l])
			}
		}
		if vel != nil {
			// Classical momentum: v <- mu*v + g; step with v.
			for l := range vel.Weights {
				tensor.Scale(tensor.Vector(vel.Weights[l].Data), cfg.Momentum, tensor.Vector(vel.Weights[l].Data))
				tensor.Axpy(tensor.Vector(vel.Weights[l].Data), 1, tensor.Vector(g.Weights[l].Data))
				tensor.Scale(vel.Biases[l], cfg.Momentum, vel.Biases[l])
				tensor.Axpy(vel.Biases[l], 1, g.Biases[l])
			}
			m.Step(vel, cfg.LearningRate, batch)
		} else {
			m.Step(g, cfg.LearningRate, batch)
		}
	}
	if samples == 0 {
		return 0
	}
	return totalLoss / float64(samples)
}
