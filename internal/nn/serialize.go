package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"abdhfl/internal/tensor"
)

// The binary model format: a magic tag, the layer-size vector, then the flat
// parameter vector as little-endian float64s. It is the on-disk / on-wire
// representation for checkpointing global models and shipping them between
// out-of-process components.

var magic = [4]byte{'A', 'B', 'D', '1'}

// WriteTo serialises the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(len(m.Sizes))); err != nil {
		return n, err
	}
	for _, s := range m.Sizes {
		if err := write(uint32(s)); err != nil {
			return n, err
		}
	}
	params := m.Params()
	if err := write(uint64(len(params))); err != nil {
		return n, err
	}
	if err := write([]float64(params)); err != nil {
		return n, err
	}
	return n, nil
}

// ReadModel deserialises a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	var tag [4]byte
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if tag != magic {
		return nil, errors.New("nn: not an ABD-HFL model stream")
	}
	var nSizes uint32
	if err := binary.Read(r, binary.LittleEndian, &nSizes); err != nil {
		return nil, err
	}
	if nSizes < 2 || nSizes > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nSizes)
	}
	sizes := make([]int, nSizes)
	for i := range sizes {
		var s uint32
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, err
		}
		if s == 0 || s > 1<<20 {
			return nil, fmt.Errorf("nn: implausible layer width %d", s)
		}
		sizes[i] = int(s)
	}
	var nParams uint64
	if err := binary.Read(r, binary.LittleEndian, &nParams); err != nil {
		return nil, err
	}
	// Compute the implied parameter count BEFORE allocating anything, and
	// bound it: a corrupt header must not drive a multi-GB allocation.
	const maxParams = 1 << 26
	implied := 0
	for l := 0; l < len(sizes)-1; l++ {
		implied += sizes[l+1]*sizes[l] + sizes[l+1]
		if implied > maxParams {
			return nil, fmt.Errorf("nn: implausible model size (> %d parameters)", maxParams)
		}
	}
	if nParams != uint64(implied) {
		return nil, fmt.Errorf("nn: parameter count %d does not match shape (want %d)", nParams, implied)
	}
	m := &Model{Sizes: sizes}
	for l := 0; l < len(sizes)-1; l++ {
		m.Weights = append(m.Weights, tensor.NewMatrix(sizes[l+1], sizes[l]))
		m.Biases = append(m.Biases, tensor.NewVector(sizes[l+1]))
	}
	params := make([]float64, nParams)
	if err := binary.Read(r, binary.LittleEndian, params); err != nil {
		return nil, err
	}
	for _, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, errors.New("nn: model stream contains non-finite parameters")
		}
	}
	m.SetParams(params)
	return m, nil
}
