// Package nn is a from-scratch neural-network substrate: a multilayer
// perceptron with ReLU hidden activations and a softmax cross-entropy head,
// trained by minibatch SGD. It replaces the paper's PyTorch-style DNN — the
// evaluation only needs a small feed-forward classifier whose parameters can
// be flattened to a vector for federated aggregation.
package nn

import (
	"fmt"
	"math"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// Model is a feed-forward network with len(Sizes)-1 dense layers. Hidden
// layers use ReLU; the final layer feeds a softmax cross-entropy loss.
type Model struct {
	Sizes   []int // layer widths, input first
	Weights []*tensor.Matrix
	Biases  []tensor.Vector
}

// New constructs a model with the given layer sizes and He-initialised
// weights drawn from r. It panics on fewer than two layers.
func New(r *rng.RNG, sizes ...int) *Model {
	m := NewShaped(sizes...)
	for l := range m.Weights {
		w := m.Weights[l]
		std := math.Sqrt(2 / float64(w.Cols))
		for i := range w.Data {
			w.Data[i] = std * r.NormFloat64()
		}
	}
	return m
}

// NewShaped constructs a zero-initialised model of the given layer sizes —
// the right constructor for evaluation shells whose parameters are about to
// be overwritten by SetParams, where He initialisation would only burn RNG
// draws. It panics on fewer than two layers.
func NewShaped(sizes ...int) *Model {
	if len(sizes) < 2 {
		panic("nn: model needs at least input and output layers")
	}
	m := &Model{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		m.Weights = append(m.Weights, tensor.NewMatrix(out, in))
		m.Biases = append(m.Biases, tensor.NewVector(out))
	}
	return m
}

// Layers returns the number of dense layers.
func (m *Model) Layers() int { return len(m.Weights) }

// NumParams returns the total number of trainable parameters.
func (m *Model) NumParams() int {
	n := 0
	for l := range m.Weights {
		n += len(m.Weights[l].Data) + len(m.Biases[l])
	}
	return n
}

// Clone returns a deep copy of m.
func (m *Model) Clone() *Model {
	c := &Model{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.Weights {
		c.Weights = append(c.Weights, m.Weights[l].Clone())
		c.Biases = append(c.Biases, m.Biases[l].Clone())
	}
	return c
}

// Params flattens all weights and biases into a single vector, layer by
// layer (weights row-major, then biases). The layout is the wire format used
// by every aggregation rule.
func (m *Model) Params() tensor.Vector {
	return m.ParamsInto(nil)
}

// ParamsInto flattens all parameters into dst, growing it only when dst is
// too small, and returns the (possibly reallocated) buffer. Passing the
// previous round's buffer back in makes repeated parameter extraction
// allocation-free.
func (m *Model) ParamsInto(dst tensor.Vector) tensor.Vector {
	n := m.NumParams()
	if cap(dst) < n {
		dst = make(tensor.Vector, n)
	}
	dst = dst[:n]
	pos := 0
	for l := range m.Weights {
		pos += copy(dst[pos:], m.Weights[l].Data)
		pos += copy(dst[pos:], m.Biases[l])
	}
	return dst
}

// SetParams loads a flat parameter vector produced by Params. It panics on a
// length mismatch.
func (m *Model) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("nn: SetParams length %d, want %d", len(p), m.NumParams()))
	}
	pos := 0
	for l := range m.Weights {
		n := copy(m.Weights[l].Data, p[pos:pos+len(m.Weights[l].Data)])
		pos += n
		n = copy(m.Biases[l], p[pos:pos+len(m.Biases[l])])
		pos += n
	}
}

// Forward computes the class logits for input x. It allocates a transient
// workspace per call; hot paths should hold a Workspace and use ForwardWS.
func (m *Model) Forward(x tensor.Vector) tensor.Vector {
	return m.ForwardWS(NewWorkspace(m), x)
}

// Predict returns the argmax class for input x.
func (m *Model) Predict(x tensor.Vector) int { return tensor.ArgMax(m.Forward(x)) }

func relu(v tensor.Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Softmax writes the softmax of logits into dst (dst may alias logits) using
// the max-subtraction trick for numerical stability.
func Softmax(dst, logits tensor.Vector) tensor.Vector {
	maxL := logits[0]
	for _, x := range logits[1:] {
		if x > maxL {
			maxL = x
		}
	}
	sum := 0.0
	for i, x := range logits {
		e := math.Exp(x - maxL)
		dst[i] = e
		sum += e
	}
	tensor.Scale(dst, 1/sum, dst)
	return dst
}

// Grads holds per-layer parameter gradients with the same shapes as a model.
type Grads struct {
	Weights []*tensor.Matrix
	Biases  []tensor.Vector
}

// NewGrads returns zeroed gradients shaped like m.
func NewGrads(m *Model) *Grads {
	g := &Grads{}
	for l := range m.Weights {
		g.Weights = append(g.Weights, tensor.NewMatrix(m.Weights[l].Rows, m.Weights[l].Cols))
		g.Biases = append(g.Biases, tensor.NewVector(len(m.Biases[l])))
	}
	return g
}

// Zero resets all gradient entries.
func (g *Grads) Zero() {
	for l := range g.Weights {
		g.Weights[l].Zero()
		tensor.Fill(g.Biases[l], 0)
	}
}

// Backward accumulates into g the gradient of the softmax cross-entropy loss
// for sample (x, label) and returns the sample loss. The caller is
// responsible for averaging (gradients accumulate raw sums). It allocates a
// transient workspace per call; hot paths should hold a Workspace and use
// BackwardWS.
func (m *Model) Backward(g *Grads, x tensor.Vector, label int) float64 {
	return m.BackwardWS(NewWorkspace(m), g, x, label)
}

// Step applies one SGD update: params -= lr/batch * grads.
func (m *Model) Step(g *Grads, lr float64, batch int) {
	if batch <= 0 {
		panic("nn: Step with non-positive batch size")
	}
	s := -lr / float64(batch)
	for l := range m.Weights {
		tensor.Axpy(tensor.Vector(m.Weights[l].Data), s, tensor.Vector(g.Weights[l].Data))
		tensor.Axpy(m.Biases[l], s, g.Biases[l])
	}
}
