// Package nn is a from-scratch neural-network substrate: a multilayer
// perceptron with ReLU hidden activations and a softmax cross-entropy head,
// trained by minibatch SGD. It replaces the paper's PyTorch-style DNN — the
// evaluation only needs a small feed-forward classifier whose parameters can
// be flattened to a vector for federated aggregation.
package nn

import (
	"fmt"
	"math"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// Model is a feed-forward network with len(Sizes)-1 dense layers. Hidden
// layers use ReLU; the final layer feeds a softmax cross-entropy loss.
type Model struct {
	Sizes   []int // layer widths, input first
	Weights []*tensor.Matrix
	Biases  []tensor.Vector
}

// New constructs a model with the given layer sizes and He-initialised
// weights drawn from r. It panics on fewer than two layers.
func New(r *rng.RNG, sizes ...int) *Model {
	if len(sizes) < 2 {
		panic("nn: model needs at least input and output layers")
	}
	m := &Model{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := tensor.NewMatrix(out, in)
		std := math.Sqrt(2 / float64(in))
		for i := range w.Data {
			w.Data[i] = std * r.NormFloat64()
		}
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, tensor.NewVector(out))
	}
	return m
}

// Layers returns the number of dense layers.
func (m *Model) Layers() int { return len(m.Weights) }

// NumParams returns the total number of trainable parameters.
func (m *Model) NumParams() int {
	n := 0
	for l := range m.Weights {
		n += len(m.Weights[l].Data) + len(m.Biases[l])
	}
	return n
}

// Clone returns a deep copy of m.
func (m *Model) Clone() *Model {
	c := &Model{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.Weights {
		c.Weights = append(c.Weights, m.Weights[l].Clone())
		c.Biases = append(c.Biases, m.Biases[l].Clone())
	}
	return c
}

// Params flattens all weights and biases into a single vector, layer by
// layer (weights row-major, then biases). The layout is the wire format used
// by every aggregation rule.
func (m *Model) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	for l := range m.Weights {
		p = append(p, m.Weights[l].Data...)
		p = append(p, m.Biases[l]...)
	}
	return p
}

// SetParams loads a flat parameter vector produced by Params. It panics on a
// length mismatch.
func (m *Model) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("nn: SetParams length %d, want %d", len(p), m.NumParams()))
	}
	pos := 0
	for l := range m.Weights {
		n := copy(m.Weights[l].Data, p[pos:pos+len(m.Weights[l].Data)])
		pos += n
		n = copy(m.Biases[l], p[pos:pos+len(m.Biases[l])])
		pos += n
	}
}

// Forward computes the class logits for input x.
func (m *Model) Forward(x tensor.Vector) tensor.Vector {
	act := x
	for l := range m.Weights {
		z := tensor.NewVector(m.Sizes[l+1])
		tensor.MatVec(z, m.Weights[l], act)
		tensor.Add(z, z, m.Biases[l])
		if l < len(m.Weights)-1 {
			relu(z)
		}
		act = z
	}
	return act
}

// Predict returns the argmax class for input x.
func (m *Model) Predict(x tensor.Vector) int { return tensor.ArgMax(m.Forward(x)) }

func relu(v tensor.Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Softmax writes the softmax of logits into dst (dst may alias logits) using
// the max-subtraction trick for numerical stability.
func Softmax(dst, logits tensor.Vector) tensor.Vector {
	maxL := logits[0]
	for _, x := range logits[1:] {
		if x > maxL {
			maxL = x
		}
	}
	sum := 0.0
	for i, x := range logits {
		e := math.Exp(x - maxL)
		dst[i] = e
		sum += e
	}
	tensor.Scale(dst, 1/sum, dst)
	return dst
}

// Grads holds per-layer parameter gradients with the same shapes as a model.
type Grads struct {
	Weights []*tensor.Matrix
	Biases  []tensor.Vector
}

// NewGrads returns zeroed gradients shaped like m.
func NewGrads(m *Model) *Grads {
	g := &Grads{}
	for l := range m.Weights {
		g.Weights = append(g.Weights, tensor.NewMatrix(m.Weights[l].Rows, m.Weights[l].Cols))
		g.Biases = append(g.Biases, tensor.NewVector(len(m.Biases[l])))
	}
	return g
}

// Zero resets all gradient entries.
func (g *Grads) Zero() {
	for l := range g.Weights {
		g.Weights[l].Zero()
		tensor.Fill(g.Biases[l], 0)
	}
}

// Backward accumulates into g the gradient of the softmax cross-entropy loss
// for sample (x, label) and returns the sample loss. The caller is
// responsible for averaging (gradients accumulate raw sums).
func (m *Model) Backward(g *Grads, x tensor.Vector, label int) float64 {
	L := m.Layers()
	// Forward pass, caching pre-activation inputs of every layer.
	acts := make([]tensor.Vector, L+1)
	acts[0] = x
	for l := 0; l < L; l++ {
		z := tensor.NewVector(m.Sizes[l+1])
		tensor.MatVec(z, m.Weights[l], acts[l])
		tensor.Add(z, z, m.Biases[l])
		if l < L-1 {
			relu(z)
		}
		acts[l+1] = z
	}
	// Softmax + cross entropy: delta = p - onehot(label).
	out := acts[L]
	probs := tensor.NewVector(len(out))
	Softmax(probs, out)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	delta := probs
	delta[label] -= 1
	// Backward pass.
	for l := L - 1; l >= 0; l-- {
		tensor.AddOuter(g.Weights[l], 1, delta, acts[l])
		tensor.Axpy(g.Biases[l], 1, delta)
		if l == 0 {
			break
		}
		prev := tensor.NewVector(m.Sizes[l])
		tensor.MatTVec(prev, m.Weights[l], delta)
		// ReLU derivative: zero where the activation was clamped.
		for i, a := range acts[l] {
			if a <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return loss
}

// Step applies one SGD update: params -= lr/batch * grads.
func (m *Model) Step(g *Grads, lr float64, batch int) {
	if batch <= 0 {
		panic("nn: Step with non-positive batch size")
	}
	s := -lr / float64(batch)
	for l := range m.Weights {
		tensor.Axpy(tensor.Vector(m.Weights[l].Data), s, tensor.Vector(g.Weights[l].Data))
		tensor.Axpy(m.Biases[l], s, g.Biases[l])
	}
}
