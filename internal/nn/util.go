package nn

import "math"

func ln(x float64) float64 { return math.Log(x) }
