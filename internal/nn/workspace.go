package nn

import (
	"fmt"
	"sync"

	"abdhfl/internal/tensor"
)

// Workspace holds the scratch buffers one evaluation/training thread needs to
// run forward and backward passes without per-call allocation: layer
// activations, backprop deltas, the softmax probability vector, and (lazily)
// gradient and momentum accumulators. A warm Workspace makes ForwardWS,
// BackwardWS, and the *WS evaluation helpers allocation-free, which is what
// keeps the simulator's inner loops off the garbage collector.
//
// A Workspace is NOT safe for concurrent use; give each goroutine its own
// (see EvalPool) and reuse it across calls.
type Workspace struct {
	sizes []int
	// acts[l] is layer l's activation; acts[0] aliases the current input and
	// is cleared after each pass so the workspace never pins caller data.
	acts []tensor.Vector
	// deltas[l] is the backprop error scratch entering layer l (1 <= l < L).
	deltas []tensor.Vector
	probs  tensor.Vector
	grads  *Grads
	vel    *Grads
}

// NewWorkspace returns a workspace shaped for m. It can be reused for any
// model with identical layer sizes.
func NewWorkspace(m *Model) *Workspace {
	L := m.Layers()
	w := &Workspace{
		sizes:  append([]int(nil), m.Sizes...),
		acts:   make([]tensor.Vector, L+1),
		deltas: make([]tensor.Vector, L),
		probs:  tensor.NewVector(m.Sizes[L]),
	}
	for l := 0; l < L; l++ {
		w.acts[l+1] = tensor.NewVector(m.Sizes[l+1])
		if l >= 1 {
			w.deltas[l] = tensor.NewVector(m.Sizes[l])
		}
	}
	return w
}

// checkModel panics when m's shape does not match the workspace.
func (w *Workspace) checkModel(m *Model) {
	if len(m.Sizes) != len(w.sizes) {
		panic(fmt.Sprintf("nn: workspace shaped %v used with model %v", w.sizes, m.Sizes))
	}
	for i, s := range m.Sizes {
		if w.sizes[i] != s {
			panic(fmt.Sprintf("nn: workspace shaped %v used with model %v", w.sizes, m.Sizes))
		}
	}
}

// gradsFor returns the workspace's gradient accumulator, allocating it on
// first use. The contents are whatever the previous user left; callers zero
// it (SGD does so every iteration).
func (w *Workspace) gradsFor(m *Model) *Grads {
	if w.grads == nil {
		w.grads = NewGrads(m)
	}
	return w.grads
}

// velFor returns the workspace's momentum accumulator zeroed for a fresh
// optimisation run, allocating it on first use.
func (w *Workspace) velFor(m *Model) *Grads {
	if w.vel == nil {
		w.vel = NewGrads(m)
		return w.vel
	}
	w.vel.Zero()
	return w.vel
}

// ForwardWS computes the class logits for input x using ws as scratch. The
// returned vector is owned by ws and valid until its next use.
func (m *Model) ForwardWS(ws *Workspace, x tensor.Vector) tensor.Vector {
	ws.checkModel(m)
	act := x
	for l := range m.Weights {
		z := ws.acts[l+1]
		tensor.MatVec(z, m.Weights[l], act)
		tensor.Add(z, z, m.Biases[l])
		if l < len(m.Weights)-1 {
			relu(z)
		}
		act = z
	}
	return act
}

// PredictWS returns the argmax class for input x using ws as scratch.
func (m *Model) PredictWS(ws *Workspace, x tensor.Vector) int {
	return tensor.ArgMax(m.ForwardWS(ws, x))
}

// BackwardWS accumulates into g the gradient of the softmax cross-entropy
// loss for sample (x, label) using ws as scratch, and returns the sample
// loss. It is Backward without the per-layer allocations.
func (m *Model) BackwardWS(ws *Workspace, g *Grads, x tensor.Vector, label int) float64 {
	ws.checkModel(m)
	L := m.Layers()
	// Forward pass, caching post-activation outputs of every layer.
	ws.acts[0] = x
	for l := 0; l < L; l++ {
		z := ws.acts[l+1]
		tensor.MatVec(z, m.Weights[l], ws.acts[l])
		tensor.Add(z, z, m.Biases[l])
		if l < L-1 {
			relu(z)
		}
	}
	// Softmax + cross entropy: delta = p - onehot(label).
	out := ws.acts[L]
	probs := ws.probs
	Softmax(probs, out)
	loss := -ln(max64(probs[label], 1e-12))
	delta := probs
	delta[label] -= 1
	// Backward pass.
	for l := L - 1; l >= 0; l-- {
		tensor.AddOuter(g.Weights[l], 1, delta, ws.acts[l])
		tensor.Axpy(g.Biases[l], 1, delta)
		if l == 0 {
			break
		}
		prev := ws.deltas[l]
		tensor.MatTVec(prev, m.Weights[l], delta)
		// ReLU derivative: zero where the activation was clamped.
		for i, a := range ws.acts[l] {
			if a <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	ws.acts[0] = nil
	return loss
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// EvalScratch bundles a reusable evaluation model with a matching workspace —
// everything a validator needs to score a flat parameter vector without
// allocating.
type EvalScratch struct {
	Model *Model
	WS    *Workspace
}

// EvalPool is a concurrency-safe cache of EvalScratch values of one model
// shape. Consensus validators score n×n (member, proposal) pairs per round;
// building a fresh He-initialised model per call — immediately overwritten by
// SetParams — was the simulator's single largest allocation source. A pool
// amortises the model and workspace across calls and across goroutines.
type EvalPool struct {
	pool sync.Pool
}

// NewEvalPool returns a pool producing models with the given layer sizes.
func NewEvalPool(sizes ...int) *EvalPool {
	shape := append([]int(nil), sizes...)
	p := &EvalPool{}
	p.pool.New = func() any {
		m := NewShaped(shape...)
		return &EvalScratch{Model: m, WS: NewWorkspace(m)}
	}
	return p
}

// Get returns a scratch with undefined parameter contents; callers SetParams
// before use and Put it back when done.
func (p *EvalPool) Get() *EvalScratch { return p.pool.Get().(*EvalScratch) }

// Put returns s to the pool.
func (p *EvalPool) Put(s *EvalScratch) { p.pool.Put(s) }
