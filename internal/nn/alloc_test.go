package nn

import (
	"testing"

	"abdhfl/internal/dataset"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// The workspace contract: with a warm Workspace the training and evaluation
// hot paths perform zero allocations per operation. These are regression
// tests — the seed implementation allocated per layer per sample (several
// hundred thousand allocs per simulated run), so any reappearing allocation
// here is a performance bug.

func allocModel() (*Model, *Workspace, *dataset.Dataset) {
	m := New(rng.New(1), dataset.Dim, 32, dataset.NumClasses)
	ws := NewWorkspace(m)
	d := dataset.Generate(rng.New(2), 64, dataset.DefaultGen())
	return m, ws, d
}

func TestForwardWSAllocationFree(t *testing.T) {
	m, ws, d := allocModel()
	m.ForwardWS(ws, d.X[0]) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		m.ForwardWS(ws, d.X[0])
	})
	if allocs > 0 {
		t.Fatalf("ForwardWS allocates %.1f objects/op with a warm workspace, want 0", allocs)
	}
}

func TestBackwardStepAllocationFree(t *testing.T) {
	m, ws, d := allocModel()
	g := NewGrads(m)
	m.BackwardWS(ws, g, d.X[0], d.Y[0]) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		g.Zero()
		m.BackwardWS(ws, g, d.X[0], d.Y[0])
		m.Step(g, 0.1, 1)
	})
	if allocs > 0 {
		t.Fatalf("Backward+Step allocates %.1f objects/op with a warm workspace, want 0", allocs)
	}
}

func TestAccuracyWSAllocationFree(t *testing.T) {
	m, ws, d := allocModel()
	AccuracyWS(m, ws, d) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		AccuracyWS(m, ws, d)
	})
	if allocs > 0 {
		t.Fatalf("AccuracyWS allocates %.1f objects/op with a warm workspace, want 0", allocs)
	}
}

func TestEvaluateWSAllocationFree(t *testing.T) {
	m, ws, d := allocModel()
	EvaluateWS(m, ws, d) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		EvaluateWS(m, ws, d)
	})
	if allocs > 0 {
		t.Fatalf("EvaluateWS allocates %.1f objects/op with a warm workspace, want 0", allocs)
	}
}

func TestSGDWSSteadyStateAllocationFree(t *testing.T) {
	m, ws, d := allocModel()
	cfg := TrainConfig{LearningRate: 0.1, BatchSize: 8, Iterations: 2}
	r := rng.New(3)
	SGDWS(m, ws, d, cfg, r) // warm up (lazily allocates the grad accumulator)
	allocs := testing.AllocsPerRun(10, func() {
		SGDWS(m, ws, d, cfg, r)
	})
	if allocs > 0 {
		t.Fatalf("SGDWS allocates %.1f objects/op with a warm workspace, want 0", allocs)
	}
}

func TestParamsIntoReusesBuffer(t *testing.T) {
	m, _, _ := allocModel()
	buf := m.ParamsInto(nil)
	allocs := testing.AllocsPerRun(50, func() {
		buf = m.ParamsInto(buf)
	})
	if allocs > 0 {
		t.Fatalf("ParamsInto allocates %.1f objects/op with a right-sized buffer, want 0", allocs)
	}
	if got, want := len(buf), m.NumParams(); got != want {
		t.Fatalf("ParamsInto length %d, want %d", got, want)
	}
}

// The WS fast paths must be bit-identical to the allocating reference paths.

func TestWorkspacePathsMatchReference(t *testing.T) {
	m, ws, d := allocModel()
	x := d.X[0]
	ref := m.Forward(x)
	got := m.ForwardWS(ws, x)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("ForwardWS[%d] = %v, Forward = %v", i, got[i], ref[i])
		}
	}

	g1, g2 := NewGrads(m), NewGrads(m)
	l1 := m.Backward(g1, x, d.Y[0])
	l2 := m.BackwardWS(ws, g2, x, d.Y[0])
	if l1 != l2 {
		t.Fatalf("BackwardWS loss %v, Backward %v", l2, l1)
	}
	for l := range g1.Weights {
		for i := range g1.Weights[l].Data {
			if g1.Weights[l].Data[i] != g2.Weights[l].Data[i] {
				t.Fatalf("layer %d weight grad %d differs", l, i)
			}
		}
		for i := range g1.Biases[l] {
			if g1.Biases[l][i] != g2.Biases[l][i] {
				t.Fatalf("layer %d bias grad %d differs", l, i)
			}
		}
	}
}

func TestSGDWSMatchesSGD(t *testing.T) {
	d := dataset.Generate(rng.New(2), 64, dataset.DefaultGen())
	cfg := TrainConfig{LearningRate: 0.1, BatchSize: 8, Iterations: 3, Momentum: 0.9, WeightDecay: 1e-4}
	m1 := New(rng.New(1), dataset.Dim, 16, dataset.NumClasses)
	m2 := m1.Clone()
	l1 := SGD(m1, d, cfg, rng.New(5))
	l2 := SGDWS(m2, NewWorkspace(m2), d, cfg, rng.New(5))
	if l1 != l2 {
		t.Fatalf("SGDWS mean loss %v, SGD %v", l2, l1)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d differs after SGD: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// Parallel evaluation must be bit-identical for every worker count,
// including the serial case.

func TestEvalWorkerCountInvariance(t *testing.T) {
	m := New(rng.New(1), dataset.Dim, 32, dataset.NumClasses)
	// Enough samples to span several chunks so the parallel path is real.
	d := dataset.Generate(rng.New(2), 3*evalChunkSize+17, dataset.DefaultGen())
	refAcc := AccuracyWorkers(m, d, 1)
	refLoss := LossWorkers(m, d, 1)
	refEvalAcc, refEvalLoss := Evaluate(m, d, 1)
	for _, workers := range []int{2, 3, 8} {
		if acc := AccuracyWorkers(m, d, workers); acc != refAcc {
			t.Fatalf("Accuracy with %d workers = %v, serial = %v", workers, acc, refAcc)
		}
		if loss := LossWorkers(m, d, workers); loss != refLoss {
			t.Fatalf("Loss with %d workers = %v, serial = %v", workers, loss, refLoss)
		}
		acc, loss := Evaluate(m, d, workers)
		if acc != refEvalAcc || loss != refEvalLoss {
			t.Fatalf("Evaluate with %d workers = (%v, %v), serial = (%v, %v)",
				workers, acc, loss, refEvalAcc, refEvalLoss)
		}
	}
	// The combined kernel must agree with the separate kernels on accuracy
	// and loss values.
	if refEvalAcc != refAcc {
		t.Fatalf("Evaluate acc %v != Accuracy %v", refEvalAcc, refAcc)
	}
	if refEvalLoss != refLoss {
		t.Fatalf("Evaluate loss %v != Loss %v", refEvalLoss, refLoss)
	}
}

func TestNewShapedMatchesSetParams(t *testing.T) {
	src := New(rng.New(9), dataset.Dim, 16, dataset.NumClasses)
	shell := NewShaped(dataset.Dim, 16, dataset.NumClasses)
	shell.SetParams(src.Params())
	x := tensor.NewVector(dataset.Dim)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	a, b := src.Forward(x), shell.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("NewShaped+SetParams logit %d = %v, want %v", i, b[i], a[i])
		}
	}
}
