package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"abdhfl/internal/dataset"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

func TestNewShapes(t *testing.T) {
	m := New(rng.New(1), 64, 32, 10)
	if m.Layers() != 2 {
		t.Fatalf("layers = %d", m.Layers())
	}
	if m.Weights[0].Rows != 32 || m.Weights[0].Cols != 64 {
		t.Fatalf("W0 shape %dx%d", m.Weights[0].Rows, m.Weights[0].Cols)
	}
	if m.Weights[1].Rows != 10 || m.Weights[1].Cols != 32 {
		t.Fatalf("W1 shape %dx%d", m.Weights[1].Rows, m.Weights[1].Cols)
	}
	want := 64*32 + 32 + 32*10 + 10
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m := New(rng.New(2), 8, 6, 4)
	p := m.Params()
	if len(p) != m.NumParams() {
		t.Fatalf("Params len = %d", len(p))
	}
	m2 := New(rng.New(99), 8, 6, 4)
	m2.SetParams(p)
	p2 := m2.Params()
	for i := range p {
		if p[i] != p2[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	// Outputs must also match.
	x := tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round-tripped model output differs")
		}
	}
}

func TestSetParamsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(rng.New(1), 4, 2).SetParams(tensor.NewVector(3))
}

func TestSoftmaxSumsToOne(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		logits := tensor.NewVector(10)
		for i := range logits {
			logits[i] = r.NormFloat64() * 10
		}
		p := Softmax(tensor.NewVector(10), logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	p := Softmax(tensor.NewVector(3), tensor.Vector{1000, 1001, 999})
	if !tensor.AllFinite(p) {
		t.Fatal("softmax overflowed")
	}
	if tensor.ArgMax(p) != 1 {
		t.Fatal("softmax argmax wrong")
	}
}

func TestBackwardGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network.
	r := rng.New(5)
	m := New(r, 4, 3, 2)
	x := tensor.Vector{0.5, -0.2, 0.8, 0.1}
	label := 1

	g := NewGrads(m)
	m.Backward(g, x, label)
	analytic := flattenGrads(m, g)

	const eps = 1e-6
	p := m.Params()
	for i := 0; i < len(p); i += 3 { // sample every third parameter for speed
		orig := p[i]
		p[i] = orig + eps
		m.SetParams(p)
		lp := sampleLoss(m, x, label)
		p[i] = orig - eps
		m.SetParams(p)
		lm := sampleLoss(m, x, label)
		p[i] = orig
		m.SetParams(p)
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad mismatch at %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}

func flattenGrads(m *Model, g *Grads) tensor.Vector {
	out := make(tensor.Vector, 0, m.NumParams())
	for l := range g.Weights {
		out = append(out, g.Weights[l].Data...)
		out = append(out, g.Biases[l]...)
	}
	return out
}

func sampleLoss(m *Model, x tensor.Vector, label int) float64 {
	logits := m.Forward(x)
	probs := Softmax(tensor.NewVector(len(logits)), logits)
	return -math.Log(math.Max(probs[label], 1e-12))
}

func TestStepMovesAgainstGradient(t *testing.T) {
	r := rng.New(6)
	m := New(r, 4, 3, 2)
	x := tensor.Vector{1, 0, -1, 0.5}
	before := sampleLoss(m, x, 0)
	for i := 0; i < 20; i++ {
		g := NewGrads(m)
		m.Backward(g, x, 0)
		m.Step(g, 0.5, 1)
	}
	after := sampleLoss(m, x, 0)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(rng.New(7), 4, 2)
	c := m.Clone()
	c.Weights[0].Data[0] = 42
	if m.Weights[0].Data[0] == 42 {
		t.Fatal("Clone shares weights")
	}
}

func TestSGDLearnsSeparableTask(t *testing.T) {
	// Train on the synthetic digits and expect clearly-above-chance accuracy
	// after modest training.
	r := rng.New(8)
	gen := dataset.DefaultGen()
	train := dataset.Generate(r.Derive("train"), 2000, gen)
	test := dataset.Generate(r.Derive("test"), 1000, gen)
	m := New(r.Derive("init"), dataset.Dim, 32, dataset.NumClasses)
	cfg := TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 300}
	SGD(m, train, cfg, r.Derive("sgd"))
	acc := Accuracy(m, test)
	if acc < 0.6 {
		t.Fatalf("accuracy after training = %v, want > 0.6", acc)
	}
}

func TestSGDEmptyDataset(t *testing.T) {
	m := New(rng.New(9), 4, 2)
	loss := SGD(m, &dataset.Dataset{}, DefaultTrain(), rng.New(1))
	if loss != 0 {
		t.Fatalf("loss on empty dataset = %v", loss)
	}
}

func TestSGDSmallDatasetBatchClamp(t *testing.T) {
	r := rng.New(10)
	d := dataset.Generate(r, 5, dataset.DefaultGen())
	m := New(r, dataset.Dim, 8, dataset.NumClasses)
	// BatchSize 32 > 5 samples must not panic.
	SGD(m, d, TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 3}, r)
}

func TestAccuracyBounds(t *testing.T) {
	r := rng.New(11)
	d := dataset.Generate(r, 100, dataset.DefaultGen())
	m := New(r, dataset.Dim, 8, dataset.NumClasses)
	acc := Accuracy(m, d)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
	if Accuracy(m, &dataset.Dataset{}) != 0 {
		t.Fatal("accuracy on empty dataset should be 0")
	}
}

func TestLossDecreasesWithTraining(t *testing.T) {
	r := rng.New(12)
	d := dataset.Generate(r.Derive("d"), 500, dataset.DefaultGen())
	m := New(r.Derive("m"), dataset.Dim, 16, dataset.NumClasses)
	before := Loss(m, d)
	SGD(m, d, TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 100}, r.Derive("t"))
	after := Loss(m, d)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func BenchmarkBackward(b *testing.B) {
	r := rng.New(1)
	m := New(r, dataset.Dim, 32, dataset.NumClasses)
	x := dataset.Sample(r, 3, dataset.DefaultGen())
	g := NewGrads(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Backward(g, x, 3)
	}
}

func BenchmarkLocalRound(b *testing.B) {
	// One client's local training round at the paper's settings.
	r := rng.New(1)
	d := dataset.Generate(r, 937, dataset.DefaultGen())
	m := New(r, dataset.Dim, 32, dataset.NumClasses)
	cfg := DefaultTrain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SGD(m, d, cfg, r)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	r := rng.New(51)
	m := New(r, dataset.Dim, 16, dataset.NumClasses)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	if len(p1) != len(p2) {
		t.Fatal("param count changed")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d differs", i)
		}
	}
	// Same predictions.
	x := dataset.Sample(r, 5, dataset.DefaultGen())
	if m.Predict(x) != m2.Predict(x) {
		t.Fatal("round-tripped model predicts differently")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("not a model at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadModelRejectsTruncated(t *testing.T) {
	m := New(rng.New(52), 4, 3, 2)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadModel(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadModelRejectsNaN(t *testing.T) {
	m := New(rng.New(53), 4, 2)
	m.Weights[0].Data[0] = math.NaN()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("NaN parameters accepted")
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	r := rng.New(54)
	d := dataset.Generate(r.Derive("d"), 800, dataset.DefaultGen())
	run := func(momentum float64) float64 {
		m := New(rng.New(55), dataset.Dim, 16, dataset.NumClasses)
		cfg := TrainConfig{LearningRate: 0.05, BatchSize: 32, Iterations: 120, Momentum: momentum}
		SGD(m, d, cfg, rng.New(56))
		return Loss(m, d)
	}
	plain := run(0)
	fast := run(0.9)
	if fast >= plain {
		t.Fatalf("momentum loss %v not below plain %v", fast, plain)
	}
}

func TestWeightDecayShrinksNorm(t *testing.T) {
	r := rng.New(57)
	d := dataset.Generate(r.Derive("d"), 400, dataset.DefaultGen())
	norm := func(wd float64) float64 {
		m := New(rng.New(58), dataset.Dim, 16, dataset.NumClasses)
		cfg := TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 200, WeightDecay: wd}
		SGD(m, d, cfg, rng.New(59))
		return tensor.Norm2(m.Params())
	}
	if norm(0.01) >= norm(0) {
		t.Fatal("weight decay did not shrink the parameter norm")
	}
}

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	r := rng.New(71)
	m := New(r, dataset.Dim, 32, dataset.NumClasses)
	params := m.Params()
	q := Quantize(params, 0)
	deq, err := q.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	if len(deq) != len(params) {
		t.Fatal("length changed")
	}
	relErr := tensor.Distance(params, deq) / tensor.Norm2(params)
	if relErr > 0.01 {
		t.Fatalf("relative error = %v, want < 1%%", relErr)
	}
	// A quantized model must predict (almost) like the original.
	m2 := New(rng.New(1), dataset.Dim, 32, dataset.NumClasses)
	m2.SetParams(deq)
	test := dataset.Generate(r.Derive("test"), 300, dataset.DefaultGen())
	agree := 0
	for i := range test.X {
		if m.Predict(test.X[i]) == m2.Predict(test.X[i]) {
			agree++
		}
	}
	if float64(agree)/float64(test.Len()) < 0.95 {
		t.Fatalf("predictions agree on only %d/%d samples", agree, test.Len())
	}
}

func TestQuantizeVolumeReduction(t *testing.T) {
	params := tensor.NewVector(2410)
	q := Quantize(params, 0)
	// ~8x reduction: 2410 float64 units -> ~311 units.
	if q.VolumeUnits() >= 2410/4 {
		t.Fatalf("volume = %d units, want well under %d", q.VolumeUnits(), 2410/4)
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	params := tensor.NewVector(100)
	q := Quantize(params, 32)
	deq, err := q.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range deq {
		if v != 0 {
			t.Fatal("zero vector not preserved")
		}
	}
	if QuantizationError(params, 32) != 0 {
		t.Fatal("zero vector error not zero")
	}
}

func TestQuantizeExtremesClamped(t *testing.T) {
	params := tensor.Vector{-5, 5, 0.001}
	q := Quantize(params, 8)
	deq, err := q.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deq[0]+5) > 0.05 || math.Abs(deq[1]-5) > 0.05 {
		t.Fatalf("extremes mangled: %v", deq)
	}
}

func TestDequantizeRejectsCorrupt(t *testing.T) {
	q := &QuantizedParams{Data: make([]int8, 10), Scales: []float64{1}, ChunkSize: 0}
	if _, err := q.Dequantize(); err == nil {
		t.Fatal("bad chunk size accepted")
	}
	q = &QuantizedParams{Data: make([]int8, 10), Scales: []float64{1, 2, 3}, ChunkSize: 10}
	if _, err := q.Dequantize(); err == nil {
		t.Fatal("scale mismatch accepted")
	}
}

func TestQuantizationErrorShrinksWithChunks(t *testing.T) {
	r := rng.New(72)
	params := tensor.NewVector(4096)
	for i := range params {
		params[i] = r.NormFloat64() * math.Exp(r.NormFloat64())
	}
	// Smaller chunks adapt scales locally: error must not grow.
	if QuantizationError(params, 64) > QuantizationError(params, 4096) {
		t.Fatal("finer chunking increased quantization error")
	}
}
