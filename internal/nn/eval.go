// Evaluation kernels. The simulator evaluates models constantly — the
// per-round test-set measurement plus n×n validator scorings inside every
// consensus instance — so these paths are built around two invariants:
//
//  1. Allocation-free steady state: the *WS variants reuse a caller-held
//     Workspace and never allocate.
//  2. Worker-count-independent determinism: the parallel variants split the
//     dataset into fixed-size chunks, compute per-chunk partial sums, and
//     reduce them in chunk-index order. The floating-point operation
//     sequence is therefore identical for any worker count (including 1),
//     so serial and parallel evaluation are bit-identical.
package nn

import (
	"runtime"
	"sync"
	"sync/atomic"

	"abdhfl/internal/dataset"
)

// evalChunkSize is the number of samples per parallel evaluation chunk. It
// also defines the loss reduction tree: per-chunk sums are combined in chunk
// order, so the value is part of the determinism contract and must not vary
// with worker count.
const evalChunkSize = 256

// Accuracy evaluates m on d and returns the fraction of correct argmax
// predictions in [0, 1], fanning out over GOMAXPROCS goroutines for large
// datasets. Use AccuracyWorkers to bound the pool, AccuracyWS for the
// allocation-free serial kernel.
func Accuracy(m *Model, d *dataset.Dataset) float64 {
	return AccuracyWorkers(m, d, 0)
}

// AccuracyWorkers is Accuracy with an explicit worker bound (<=0 selects
// GOMAXPROCS). Results are identical for every worker count.
func AccuracyWorkers(m *Model, d *dataset.Dataset, workers int) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	forEachChunk(m, d.Len(), workers, func(ws *Workspace, lo, hi int) (int, float64) {
		c := 0
		for i := lo; i < hi; i++ {
			if m.PredictWS(ws, d.X[i]) == d.Y[i] {
				c++
			}
		}
		return c, 0
	}, func(c int, _ float64) { correct += c })
	return float64(correct) / float64(d.Len())
}

// AccuracyWS evaluates m on d serially using ws as scratch; with a warm
// workspace it performs zero allocations.
func AccuracyWS(m *Model, ws *Workspace, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i := range d.X {
		if m.PredictWS(ws, d.X[i]) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// Loss returns the mean softmax cross-entropy loss of m on d without
// touching parameters, parallelised like Accuracy.
func Loss(m *Model, d *dataset.Dataset) float64 {
	return LossWorkers(m, d, 0)
}

// LossWorkers is Loss with an explicit worker bound (<=0 selects GOMAXPROCS).
func LossWorkers(m *Model, d *dataset.Dataset, workers int) float64 {
	if d.Len() == 0 {
		return 0
	}
	total := 0.0
	forEachChunk(m, d.Len(), workers, func(ws *Workspace, lo, hi int) (int, float64) {
		return 0, lossRange(m, ws, d, lo, hi)
	}, func(_ int, l float64) { total += l })
	return total / float64(d.Len())
}

// LossWS is the allocation-free serial loss kernel.
func LossWS(m *Model, ws *Workspace, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	return lossRange(m, ws, d, 0, d.Len()) / float64(d.Len())
}

// Evaluate computes accuracy and mean loss together with a single forward
// pass per sample — half the work of calling Accuracy then Loss — over a
// bounded worker pool (workers <= 0 selects GOMAXPROCS).
func Evaluate(m *Model, d *dataset.Dataset, workers int) (acc, loss float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	correct := 0
	total := 0.0
	forEachChunk(m, d.Len(), workers, func(ws *Workspace, lo, hi int) (int, float64) {
		return evalRange(m, ws, d, lo, hi)
	}, func(c int, l float64) { correct += c; total += l })
	return float64(correct) / float64(d.Len()), total / float64(d.Len())
}

// EvaluateWS is the allocation-free serial combined kernel.
func EvaluateWS(m *Model, ws *Workspace, d *dataset.Dataset) (acc, loss float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	c, l := evalRange(m, ws, d, 0, d.Len())
	return float64(c) / float64(d.Len()), l / float64(d.Len())
}

// lossRange sums the sample losses of [lo, hi) in index order.
func lossRange(m *Model, ws *Workspace, d *dataset.Dataset, lo, hi int) float64 {
	total := 0.0
	for i := lo; i < hi; i++ {
		logits := m.ForwardWS(ws, d.X[i])
		Softmax(ws.probs, logits)
		p := ws.probs[d.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -ln(p)
	}
	return total
}

// evalRange counts correct predictions and sums losses of [lo, hi) with one
// forward pass per sample.
func evalRange(m *Model, ws *Workspace, d *dataset.Dataset, lo, hi int) (int, float64) {
	correct := 0
	total := 0.0
	for i := lo; i < hi; i++ {
		logits := m.ForwardWS(ws, d.X[i])
		best := 0
		for j := 1; j < len(logits); j++ {
			if logits[j] > logits[best] {
				best = j
			}
		}
		if best == d.Y[i] {
			correct++
		}
		Softmax(ws.probs, logits)
		p := ws.probs[d.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -ln(p)
	}
	return correct, total
}

// forEachChunk splits [0, n) into evalChunkSize chunks, runs kernel over
// them on up to `workers` goroutines (each with its own m-shaped workspace),
// and reduces the per-chunk results IN CHUNK ORDER via combine — the source
// of worker-count independence. The single-worker case runs inline with no
// goroutines.
func forEachChunk(m *Model, n, workers int, kernel func(ws *Workspace, lo, hi int) (int, float64), combine func(int, float64)) {
	chunks := (n + evalChunkSize - 1) / evalChunkSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		ws := NewWorkspace(m)
		for c := 0; c < chunks; c++ {
			lo := c * evalChunkSize
			hi := lo + evalChunkSize
			if hi > n {
				hi = n
			}
			ci, cf := kernel(ws, lo, hi)
			combine(ci, cf)
		}
		return
	}
	counts := make([]int, chunks)
	sums := make([]float64, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewWorkspace(m)
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * evalChunkSize
				hi := lo + evalChunkSize
				if hi > n {
					hi = n
				}
				counts[c], sums[c] = kernel(ws, lo, hi)
			}
		}()
	}
	wg.Wait()
	for c := 0; c < chunks; c++ {
		combine(counts[c], sums[c])
	}
}
