package nn

import (
	"errors"
	"math"

	"abdhfl/internal/tensor"
)

// Uniform affine int8 quantization of parameter vectors — the standard
// communication-compression technique for federated model exchange. A
// quantized vector costs ~1 byte per parameter on the wire instead of 8,
// which the simulators' volume accounting can exploit (QuantizedVolume).

// QuantizedParams is an int8-encoded parameter vector with a per-chunk
// affine (scale, zero-point-free symmetric) codebook.
type QuantizedParams struct {
	// Data holds one int8 code per parameter.
	Data []int8
	// Scales holds one scale per chunk: value = code * scale.
	Scales []float64
	// ChunkSize is the number of parameters sharing one scale.
	ChunkSize int
}

// DefaultChunkSize balances codebook overhead against per-chunk dynamic
// range; one scale per 256 parameters costs < 0.4% extra volume.
const DefaultChunkSize = 256

// Quantize encodes params symmetrically per chunk: scale = maxAbs/127.
func Quantize(params tensor.Vector, chunkSize int) *QuantizedParams {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := len(params)
	q := &QuantizedParams{
		Data:      make([]int8, n),
		ChunkSize: chunkSize,
	}
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		maxAbs := 0.0
		for _, v := range params[start:end] {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		q.Scales = append(q.Scales, scale)
		if scale == 0 {
			continue // all-zero chunk: codes stay 0
		}
		for i := start; i < end; i++ {
			code := math.Round(params[i] / scale)
			if code > 127 {
				code = 127
			}
			if code < -127 {
				code = -127
			}
			q.Data[i] = int8(code)
		}
	}
	return q
}

// Dequantize reconstructs the parameter vector.
func (q *QuantizedParams) Dequantize() (tensor.Vector, error) {
	if q.ChunkSize <= 0 {
		return nil, errors.New("nn: quantized params with non-positive chunk size")
	}
	wantScales := (len(q.Data) + q.ChunkSize - 1) / q.ChunkSize
	if len(q.Scales) != wantScales {
		return nil, errors.New("nn: quantized params scale count mismatch")
	}
	out := tensor.NewVector(len(q.Data))
	for i, code := range q.Data {
		out[i] = float64(code) * q.Scales[i/q.ChunkSize]
	}
	return out, nil
}

// VolumeUnits returns the wire size of the encoding in float64-equivalent
// volume units (the unit the simulators count): data bytes / 8 plus one unit
// per scale.
func (q *QuantizedParams) VolumeUnits() int64 {
	return int64(len(q.Data))/8 + int64(len(q.Scales))
}

// QuantizationError returns the relative L2 reconstruction error
// ||x - deq(quant(x))|| / ||x|| for the given vector (0 for a zero vector).
func QuantizationError(params tensor.Vector, chunkSize int) float64 {
	q := Quantize(params, chunkSize)
	deq, err := q.Dequantize()
	if err != nil {
		return math.Inf(1)
	}
	norm := tensor.Norm2(params)
	if norm == 0 {
		return 0
	}
	return tensor.Distance(params, deq) / norm
}
