package nn

import (
	"bytes"
	"testing"

	"abdhfl/internal/rng"
)

// FuzzReadModel hardens the binary model decoder against corrupted or
// adversarial streams: it must either return an error or a structurally
// valid model — never panic, never accept non-finite parameters.
func FuzzReadModel(f *testing.F) {
	// Seed with a valid stream and a few mutations.
	m := New(rng.New(1), 8, 4, 3)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("ABD1garbage"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[6] = 0xFF // implausible layer count
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any accepted model must be internally consistent.
		if len(got.Sizes) < 2 {
			t.Fatal("accepted model with < 2 layers")
		}
		if got.NumParams() != len(got.Params()) {
			t.Fatal("accepted model with inconsistent parameter count")
		}
	})
}
