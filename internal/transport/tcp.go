package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPEndpoint is the socket-backed wire: one listener accepting inbound
// peer connections, and one lazily-dialed outbound connection per peer
// with retry, exponential dial backoff, and reconnect-and-resend on write
// failure. Retransmissions after a reconnect can re-deliver a frame the
// peer already processed — the receiver's DupeMap absorbs them, which is
// why duplicate suppression lives in the shared receive path rather than
// in either backend.
type TCPEndpoint struct {
	epCore
	ln       net.Listener
	book     map[NodeID]string
	linger   time.Duration
	queueCap int

	mu      sync.Mutex
	peers   map[NodeID]*tcpPeer
	conns   map[net.Conn]struct{}
	closing bool

	// sealed stops new enqueues and tells writers to drain; quit then cuts
	// stuck dials and delayed sends. Two stages so Close can flush queued
	// frames onto the wire before tearing connections down.
	sealed chan struct{}
	quit   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup // accept + read loops
	timers sync.WaitGroup // delayed (reordered) sends in flight
}

// tcpPeer is one outbound write queue and its writer goroutine.
type tcpPeer struct {
	addr string
	q    chan []byte
	done chan struct{}
}

// Dial/backoff tuning for the outbound writers.
const (
	dialTimeout  = 2 * time.Second
	dialBackoff  = 25 * time.Millisecond
	dialBackoffM = 1 * time.Second
)

// ListenTCP binds listenAddr (e.g. "127.0.0.1:0"), starts the accept
// loop, and returns the endpoint. book maps every peer id to the address
// it listens on; outbound connections are dialed lazily on first Send.
func ListenTCP(cfg Config, listenAddr string, book map[NodeID]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		epCore:   *newEpCore(cfg, "tcp"),
		ln:       ln,
		book:     make(map[NodeID]string, len(book)),
		linger:   cfg.linger(),
		queueCap: cfg.queueCap(),
		peers:    map[NodeID]*tcpPeer{},
		conns:    map[net.Conn]struct{}{},
		sealed:   make(chan struct{}),
		quit:     make(chan struct{}),
	}
	for id, addr := range book {
		e.book[id] = addr
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Self returns this endpoint's node id.
func (e *TCPEndpoint) Self() NodeID { return e.self }

// Addr returns the bound listen address (resolved port included).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Bus returns the endpoint's dispatch layer.
func (e *TCPEndpoint) Bus() *Bus { return e.bus }

// Send encodes f, applies its fault fate, and enqueues the surviving
// copies to the peer's writer. The payload is copied during encoding, so
// the caller may reuse it immediately.
func (e *TCPEndpoint) Send(to NodeID, f *Frame) error {
	p, err := e.peer(to)
	if err != nil {
		return err
	}
	raw, copies, delay := e.prepareSend(to, f)
	for i := 0; i < copies; i++ {
		if delay > 0 {
			e.timers.Add(1)
			go func() {
				defer e.timers.Done()
				t := time.NewTimer(delay)
				defer t.Stop()
				select {
				case <-t.C:
					e.enqueue(p, raw)
				case <-e.quit:
				}
			}()
		} else {
			e.enqueue(p, raw)
		}
	}
	return nil
}

// enqueue hands one encoded frame to a peer's writer; frames arriving
// after Close seals the queues are abandoned and counted.
func (e *TCPEndpoint) enqueue(p *tcpPeer, raw []byte) {
	select {
	case p.q <- raw:
	case <-e.sealed:
		e.stats.SendErrors.Add(1)
	}
}

// AddPeer registers (or updates) a peer's dial address after the endpoint
// is listening — the bootstrap order for in-process clusters, where every
// listener must bind before any address is known. Updating an address does
// not affect a writer already created for the old one.
func (e *TCPEndpoint) AddPeer(id NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.book[id] = addr
}

// peer returns (creating on first use) the outbound writer for id.
func (e *TCPEndpoint) peer(id NodeID) (*tcpPeer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return nil, ErrClosed
	}
	if p, ok := e.peers[id]; ok {
		return p, nil
	}
	addr, ok := e.book[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	p := &tcpPeer{addr: addr, q: make(chan []byte, e.queueCap), done: make(chan struct{})}
	e.peers[id] = p
	go e.writeLoop(p)
	return p, nil
}

// writeLoop drains one peer's queue onto its connection, dialing lazily
// with exponential backoff and redialing (then resending the failed
// frame) when a write breaks. When Close seals the endpoint it drains
// whatever is queued and exits.
func (e *TCPEndpoint) writeLoop(p *tcpPeer) {
	defer close(p.done)
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	write := func(raw []byte) {
		if !e.writeFrame(p, &conn, raw) {
			e.stats.SendErrors.Add(1)
		}
	}
	for {
		select {
		case raw := <-p.q:
			write(raw)
		case <-e.sealed:
			for {
				select {
				case raw := <-p.q:
					write(raw)
				default:
					return
				}
			}
		}
	}
}

// writeFrame writes one encoded frame, (re)dialing as needed. Returns
// false when the endpoint quit before the frame could be written.
func (e *TCPEndpoint) writeFrame(p *tcpPeer, conn *net.Conn, raw []byte) bool {
	backoff := dialBackoff
	for {
		if *conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
			if err != nil {
				select {
				case <-e.quit:
					return false
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > dialBackoffM {
					backoff = dialBackoffM
				}
				continue
			}
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			*conn = c
			backoff = dialBackoff
		}
		if _, err := (*conn).Write(raw); err != nil {
			(*conn).Close()
			*conn = nil
			e.stats.Reconnects.Add(1)
			e.counters.reconnects.Inc()
			select {
			case <-e.quit:
				return false
			default:
			}
			continue // redial and resend; the peer's dupe map absorbs repeats
		}
		return true
	}
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closing {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.conns[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection and runs them
// through the shared receive path. A clean peer close ends the loop
// silently; a connection cut mid-frame is wire luck (the sender redials
// and resends), so it is tolerated without counting a decode error; a
// corrupt or oversized frame desyncs the framing, so the connection is
// counted and dropped.
func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.conns, c)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		raw, err := readRawFrame(br, e.maxFrame)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) || errors.Is(err, ErrFrameTooLarge) {
				e.stats.DecodeErrors.Add(1)
				e.counters.decodeErrs.Inc()
			}
			return
		}
		e.deliver(raw)
	}
}

// readRawFrame reads one length-prefixed frame and returns its full wire
// bytes (prefix included), validating the length claim against maxFrame
// before allocating.
func readRawFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	body := binary.BigEndian.Uint32(lenbuf[:])
	if int64(body) < headerBody {
		return nil, fmt.Errorf("%w: body length %d below header size", ErrCorruptFrame, body)
	}
	if int64(body)+4 > int64(maxFrame) {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 4+body)
	copy(buf, lenbuf[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Stats returns a snapshot of the endpoint's wire counters.
func (e *TCPEndpoint) Stats() StatsSnapshot { return e.snapshot() }

// Close shuts the endpoint down in two stages: seal (stop new enqueues,
// let writers flush queued frames onto the wire, bounded by the linger),
// then quit (cut stuck dials and delayed sends, close the listener and
// connections, close the bus). Idempotent.
func (e *TCPEndpoint) Close() error {
	e.closed.Do(func() {
		// Let in-flight delayed sends enqueue before sealing the queues.
		tdone := make(chan struct{})
		go func() { e.timers.Wait(); close(tdone) }()
		select {
		case <-tdone:
		case <-time.After(e.linger):
		}
		e.mu.Lock()
		e.closing = true
		peers := make([]*tcpPeer, 0, len(e.peers))
		for _, p := range e.peers {
			peers = append(peers, p)
		}
		e.mu.Unlock()
		close(e.sealed)
		drained := make(chan struct{})
		go func() {
			for _, p := range peers {
				<-p.done
			}
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(e.linger):
		}
		close(e.quit)
		e.ln.Close()
		e.mu.Lock()
		for c := range e.conns {
			c.Close()
		}
		e.mu.Unlock()
		e.bus.Close()
		<-drained
		e.wg.Wait()
		e.timers.Wait()
	})
	return nil
}

var _ Endpoint = (*TCPEndpoint)(nil)
