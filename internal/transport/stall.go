package transport

import (
	"sort"
	"sync"
	"time"
)

// StallDetector watches peers a protocol actor is waiting on and reports
// the ones that blow their response deadline — the liveness primitive that
// lets a leader stop waiting for a crashed device and aggregate with the
// quorum it has (the engine analogue of dusk's p2p stall detector).
//
// Usage: Arm(peer) when a response becomes expected, Heard(peer) when any
// traffic from the peer arrives, and Stalled(now) periodically. A peer
// reported stalled is automatically re-armed with an exponentially backed
// off deadline (base × backoff^strikes, capped at max), so a genuinely dead
// peer is reported at a decaying rate instead of every tick; Heard resets
// its strikes. All methods take explicit times, so the timeout/backoff
// edges are table-testable without wall-clock sleeps.
type StallDetector struct {
	mu      sync.Mutex
	base    time.Duration
	max     time.Duration
	backoff float64
	peers   map[NodeID]*stallState
	total   int64
}

type stallState struct {
	armed    bool
	deadline time.Time
	strikes  int
}

// NewStallDetector returns a detector with the given base deadline, backoff
// multiplier (values < 1 are treated as 1 — constant deadline), and cap
// (<= 0 means no cap).
func NewStallDetector(base time.Duration, backoff float64, max time.Duration) *StallDetector {
	if backoff < 1 {
		backoff = 1
	}
	return &StallDetector{base: base, max: max, backoff: backoff, peers: map[NodeID]*stallState{}}
}

// delay returns the deadline delay for a peer with the given strike count.
func (s *StallDetector) delay(strikes int) time.Duration {
	d := float64(s.base)
	for i := 0; i < strikes; i++ {
		d *= s.backoff
		if s.max > 0 && d >= float64(s.max) {
			return s.max
		}
	}
	if s.max > 0 && d > float64(s.max) {
		return s.max
	}
	return time.Duration(d)
}

// Arm starts (or keeps) a response expectation for peer. An already-armed
// peer keeps its current deadline; a fresh arm gets now + the peer's
// backed-off delay.
func (s *StallDetector) Arm(peer NodeID, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.peers[peer]
	if st == nil {
		st = &stallState{}
		s.peers[peer] = st
	}
	if !st.armed {
		st.armed = true
		st.deadline = now.Add(s.delay(st.strikes))
	}
}

// Heard records traffic from peer: the expectation is disarmed and the
// peer's strikes reset.
func (s *StallDetector) Heard(peer NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.peers[peer]; st != nil {
		st.armed = false
		st.strikes = 0
	}
}

// Stalled returns the armed peers whose deadline is at or before now, in
// ascending id order. Each reported peer collects a strike and is re-armed
// with its backed-off deadline.
func (s *StallDetector) Stalled(now time.Time) []NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []NodeID
	for id, st := range s.peers {
		if st.armed && !st.deadline.After(now) {
			st.strikes++
			st.deadline = now.Add(s.delay(st.strikes))
			s.total++
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Strikes returns peer's consecutive stall count.
func (s *StallDetector) Strikes(peer NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.peers[peer]; st != nil {
		return st.strikes
	}
	return 0
}

// Deadline returns peer's current deadline and whether it is armed.
func (s *StallDetector) Deadline(peer NodeID) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.peers[peer]; st != nil && st.armed {
		return st.deadline, true
	}
	return time.Time{}, false
}

// Total returns the number of stalls ever reported.
func (s *StallDetector) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Reset forgets every peer (used between protocol rounds).
func (s *StallDetector) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = map[NodeID]*stallState{}
}
