package transport

import (
	"fmt"
	"testing"
)

// BenchmarkTransportThroughput measures end-to-end frames through each
// backend — Send on one endpoint to consumed on the peer's bus — with a
// pipelined producer so the wire, not the round-trip latency, is the
// bottleneck. bytes/op is the full wire size, so the reported MB/s is wire
// throughput; frames/sec is 1e9 / (ns/op).
func BenchmarkTransportThroughput(b *testing.B) {
	for _, size := range []int{256, 16 << 10} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		run := func(b *testing.B, a, dst Endpoint) {
			b.Helper()
			q := dst.Bus().Subscribe(256, 1)
			b.SetBytes(int64(EncodedSize(size)))
			b.ResetTimer()
			go func() {
				f := Frame{Kind: 1, Payload: payload}
				for i := 0; i < b.N; i++ {
					f.Round = uint32(i)
					if err := a.Send(dst.Self(), &f); err != nil {
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				select {
				case <-q.C:
				case <-dst.Bus().Done():
					b.Fatalf("bus closed after %d/%d frames", i, b.N)
				}
			}
		}
		b.Run(fmt.Sprintf("loopback/%dB", size), func(b *testing.B) {
			lb := NewLoopback()
			a, err := lb.Attach(Config{Self: 1, QueueCap: 256})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			dst, err := lb.Attach(Config{Self: 2, QueueCap: 256})
			if err != nil {
				b.Fatal(err)
			}
			defer dst.Close()
			run(b, a, dst)
		})
		b.Run(fmt.Sprintf("tcp/%dB", size), func(b *testing.B) {
			a, err := ListenTCP(Config{Self: 1, QueueCap: 256}, "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			dst, err := ListenTCP(Config{Self: 2, QueueCap: 256}, "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer dst.Close()
			a.AddPeer(2, dst.Addr())
			run(b, a, dst)
		})
	}
}
