package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"abdhfl/internal/fault"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
)

// Endpoint is one node's attachment to the wire. Send enqueues a frame to a
// peer (stamping Seq and Sent); received frames are decoded, dupe-checked
// and dispatched to the Bus by kind. Implementations: the in-process
// Loopback and the socket-backed TCP endpoint.
type Endpoint interface {
	// Self returns this endpoint's node id.
	Self() NodeID
	// Addr returns the listen address peers dial ("" for loopback).
	Addr() string
	// Bus returns the dispatch layer received frames are published to.
	Bus() *Bus
	// Send asynchronously delivers f (Payload is copied; the caller may
	// reuse it) to the peer. Frame fate injection, if configured, applies.
	Send(to NodeID, f *Frame) error
	// Stats returns a snapshot of the endpoint's wire counters.
	Stats() StatsSnapshot
	// Close shuts the endpoint down, draining queued outbound frames first
	// (bounded by the configured linger).
	Close() error
}

// Endpoint errors.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
)

// Config carries the knobs shared by both backends.
type Config struct {
	// Self is this endpoint's node id.
	Self NodeID
	// Plan, when non-nil, injects transport faults deterministically per
	// frame: drop, duplicate, and reorder-by-delay decisions are pure
	// functions of (plan seed, kind, from, to, round), so the same plan
	// yields the same fault pattern on every backend and in every process.
	Plan *fault.Plan
	// FaultKinds, when non-empty, restricts fault injection to the listed
	// frame kinds; other kinds always pass untouched. The node engine uses
	// this to fault the quorum-protected uplink (updates, partials) while
	// keeping dissemination reliable, matching the paper's assumption that
	// stragglers are survived by φ-quorums, not by downlink retransmission.
	FaultKinds []uint8
	// Registry, when non-nil, mirrors the wire counters into telemetry
	// under abdhfl_transport_* with a backend label.
	Registry *telemetry.Registry
	// Tracer, when non-nil, receives a hop-level "wire" span for every
	// delivered frame, covering [Sent, received] in wall milliseconds since
	// the endpoint epoch.
	Tracer *trace.Tracer
	// MaxFrame bounds accepted frame sizes (<= 0 selects DefaultMaxFrame).
	MaxFrame int
	// DupeCap is the duplicate-suppression window per generation (<= 0
	// selects DefaultDupeCap).
	DupeCap int
	// QueueCap is the per-subscription and per-peer outbound queue capacity
	// (<= 0 selects 1024).
	QueueCap int
	// Linger bounds how long Close waits for outbound queues to drain
	// (<= 0 selects 2s).
	Linger time.Duration
}

func (c *Config) maxFrame() int {
	if c.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return c.MaxFrame
}

func (c *Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 1024
	}
	return c.QueueCap
}

func (c *Config) linger() time.Duration {
	if c.Linger <= 0 {
		return 2 * time.Second
	}
	return c.Linger
}

// Stats are the endpoint's wire counters. All fields are updated atomically
// and mirrored into telemetry when a registry is configured.
type Stats struct {
	FramesSent      atomic.Int64 // logical sends accepted (before fault copies)
	FramesDelivered atomic.Int64 // frames handed to the bus
	BytesSent       atomic.Int64 // encoded bytes queued to the wire
	BytesRecv       atomic.Int64 // encoded bytes received (pre-dupe-check)
	DupesSuppressed atomic.Int64 // received frames dropped by the dupe map
	FaultDropped    atomic.Int64 // sends suppressed by the fault plan
	FaultDuplicated atomic.Int64 // extra copies injected by the fault plan
	FaultDelayed    atomic.Int64 // sends delayed (reordered) by the fault plan
	DecodeErrors    atomic.Int64 // corrupt or truncated inbound frames
	Reconnects      atomic.Int64 // TCP redials after a broken connection
	SendErrors      atomic.Int64 // frames abandoned after delivery failures
}

// StatsSnapshot is a plain-value copy of Stats for reports and conformance
// comparison. Every field is deterministic for a deterministic protocol
// run except Reconnects (wire luck) — the conformance tests compare the
// deterministic subset.
type StatsSnapshot struct {
	FramesSent      int64 `json:"frames_sent"`
	FramesDelivered int64 `json:"frames_delivered"`
	BytesSent       int64 `json:"bytes_sent"`
	BytesRecv       int64 `json:"bytes_recv"`
	DupesSuppressed int64 `json:"dupes_suppressed"`
	FaultDropped    int64 `json:"fault_dropped"`
	FaultDuplicated int64 `json:"fault_duplicated"`
	FaultDelayed    int64 `json:"fault_delayed"`
	DecodeErrors    int64 `json:"decode_errors"`
	Reconnects      int64 `json:"reconnects"`
	SendErrors      int64 `json:"send_errors"`
}

// Add accumulates o into s (summing per-endpoint snapshots into a cluster
// total).
func (s *StatsSnapshot) Add(o StatsSnapshot) {
	s.FramesSent += o.FramesSent
	s.FramesDelivered += o.FramesDelivered
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.DupesSuppressed += o.DupesSuppressed
	s.FaultDropped += o.FaultDropped
	s.FaultDuplicated += o.FaultDuplicated
	s.FaultDelayed += o.FaultDelayed
	s.DecodeErrors += o.DecodeErrors
	s.Reconnects += o.Reconnects
	s.SendErrors += o.SendErrors
}

// Deterministic returns the snapshot with its wire-luck-dependent fields
// (Reconnects, SendErrors) zeroed — the subset the loopback≡TCP golden
// tests compare on fault-free runs, where every sent frame is awaited by
// the receiving protocol engine and therefore fully counted before the
// run completes.
func (s StatsSnapshot) Deterministic() StatsSnapshot {
	s.Reconnects = 0
	s.SendErrors = 0
	return s
}

// SenderSide returns only the sender-side counters, which are pure
// functions of the protocol run and the fault plan. When a plan injects
// duplicates or reorder delays, the extra copies may still be in flight
// when the protocol finishes — the receive-side tail (FramesDelivered,
// BytesRecv, DupesSuppressed) races endpoint shutdown — so fault-run
// goldens compare this subset plus DecodeErrors (always 0 on a healthy
// wire).
func (s StatsSnapshot) SenderSide() StatsSnapshot {
	return StatsSnapshot{
		FramesSent:      s.FramesSent,
		BytesSent:       s.BytesSent,
		FaultDropped:    s.FaultDropped,
		FaultDuplicated: s.FaultDuplicated,
		FaultDelayed:    s.FaultDelayed,
		DecodeErrors:    s.DecodeErrors,
	}
}

// wireCounters are the telemetry mirrors, resolved once per endpoint. The
// zero value holds nil handles, whose methods are no-ops (telemetry
// counters are nil-receiver safe), so endpoints without a registry pay
// only dead branches.
type wireCounters struct {
	framesSent, framesRecv *telemetry.Counter
	bytesSent, bytesRecv   *telemetry.Counter
	dupes, dropped, duped  *telemetry.Counter
	delayed, decodeErrs    *telemetry.Counter
	reconnects             *telemetry.Counter
}

func newWireCounters(reg *telemetry.Registry, backend string) wireCounters {
	if reg == nil {
		return wireCounters{}
	}
	label := func(name string) string {
		return fmt.Sprintf(`%s{backend=%q}`, name, backend)
	}
	return wireCounters{
		framesSent: reg.Counter(label("abdhfl_transport_frames_sent_total")),
		framesRecv: reg.Counter(label("abdhfl_transport_frames_recv_total")),
		bytesSent:  reg.Counter(label("abdhfl_transport_wire_bytes_sent_total")),
		bytesRecv:  reg.Counter(label("abdhfl_transport_wire_bytes_recv_total")),
		dupes:      reg.Counter(label("abdhfl_transport_dupes_suppressed_total")),
		dropped:    reg.Counter(label("abdhfl_transport_fault_dropped_total")),
		duped:      reg.Counter(label("abdhfl_transport_fault_duplicated_total")),
		delayed:    reg.Counter(label("abdhfl_transport_fault_reordered_total")),
		decodeErrs: reg.Counter(label("abdhfl_transport_decode_errors_total")),
		reconnects: reg.Counter(label("abdhfl_transport_reconnects_total")),
	}
}

// epCore is the backend-shared half of an endpoint: sequence stamping,
// fault fates, the decode→dupe→telemetry/trace→bus receive path, and the
// counters. Backends embed it and implement only the raw byte movement.
type epCore struct {
	self       NodeID
	backend    string
	bus        *Bus
	dupes      *DupeMap
	plan       *fault.Plan
	faultKinds map[uint8]bool // nil: fault every kind
	tracer     *trace.Tracer
	counters   wireCounters
	stats      Stats
	seq        atomic.Uint64
	epoch      time.Time
	maxFrame   int
}

func newEpCore(cfg Config, backend string) *epCore {
	var kinds map[uint8]bool
	if len(cfg.FaultKinds) > 0 {
		kinds = make(map[uint8]bool, len(cfg.FaultKinds))
		for _, k := range cfg.FaultKinds {
			kinds[k] = true
		}
	}
	return &epCore{
		self:       cfg.Self,
		backend:    backend,
		bus:        NewBus(),
		dupes:      NewDupeMap(cfg.DupeCap),
		plan:       cfg.Plan,
		faultKinds: kinds,
		tracer:     cfg.Tracer,
		counters:   newWireCounters(cfg.Registry, backend),
		epoch:      time.Now(),
		maxFrame:   cfg.maxFrame(),
	}
}

// fateLabel keys a frame's deterministic fault fate. Seq is excluded on
// purpose: the label depends only on protocol coordinates, so the same
// logical message draws the same fate in every process and on every
// backend.
func fateLabel(f *Frame) string {
	return fmt.Sprintf("%d:%d>%d@%d", f.Kind, f.From, f.To, f.Round)
}

// prepareSend stamps the frame, encodes it, and draws its fault fate.
// copies is 0 when the frame is dropped; delay > 0 requests a deferred
// (reordering) handoff to the wire.
func (c *epCore) prepareSend(to NodeID, f *Frame) (raw []byte, copies int, delay time.Duration) {
	f.From = c.self
	f.To = to
	f.Seq = c.seq.Add(1)
	f.Sent = time.Now().UnixNano()
	raw = EncodeFrame(f)
	copies = 1
	var drop, dup bool
	var delayMS float64
	if c.faultKinds == nil || c.faultKinds[f.Kind] {
		drop, dup, delayMS = c.plan.FrameFate(fateLabel(f))
	}
	if drop {
		c.stats.FaultDropped.Add(1)
		c.counters.dropped.Inc()
		return raw, 0, 0
	}
	if dup {
		copies++
		c.stats.FaultDuplicated.Add(1)
		c.counters.duped.Inc()
	}
	if delayMS > 0 {
		delay = time.Duration(delayMS * float64(time.Millisecond))
		c.stats.FaultDelayed.Add(1)
		c.counters.delayed.Inc()
	}
	c.stats.FramesSent.Add(1)
	c.stats.BytesSent.Add(int64(len(raw)) * int64(copies))
	c.counters.framesSent.Inc()
	c.counters.bytesSent.Add(int64(len(raw)) * int64(copies))
	return raw, copies, delay
}

// deliver runs the shared receive path on one decoded-or-raw frame. The
// payload is copied out of buf, so callers may reuse their read buffers.
func (c *epCore) deliver(buf []byte) {
	c.stats.BytesRecv.Add(int64(len(buf)))
	c.counters.bytesRecv.Add(int64(len(buf)))
	var f Frame
	if err := DecodeFrame(buf, &f, c.maxFrame); err != nil {
		c.stats.DecodeErrors.Add(1)
		c.counters.decodeErrs.Inc()
		return
	}
	if c.dupes.Seen(f.From, f.Seq) {
		c.stats.DupesSuppressed.Add(1)
		c.counters.dupes.Inc()
		return
	}
	if len(f.Payload) > 0 {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	now := time.Now()
	if c.tracer != nil {
		start := float64(f.Sent-c.epoch.UnixNano()) / 1e6
		end := float64(now.UnixNano()-c.epoch.UnixNano()) / 1e6
		if start > end {
			start = end
		}
		c.tracer.Record(trace.Span{
			ID:      trace.SpanID("wire", int(f.From), int(f.To), int(f.Round), int(f.Kind)),
			Name:    "wire",
			Start:   start,
			End:     end,
			Round:   int(f.Round),
			Level:   -1,
			Cluster: -1,
			Device:  -1,
			From:    int(f.From),
			To:      int(f.To),
			Bytes:   int64(len(buf)),
			Detail:  c.backend,
		})
	}
	c.stats.FramesDelivered.Add(1)
	c.counters.framesRecv.Inc()
	c.bus.Publish(f)
}

// snapshot copies the counters.
func (c *epCore) snapshot() StatsSnapshot {
	return StatsSnapshot{
		FramesSent:      c.stats.FramesSent.Load(),
		FramesDelivered: c.stats.FramesDelivered.Load(),
		BytesSent:       c.stats.BytesSent.Load(),
		BytesRecv:       c.stats.BytesRecv.Load(),
		DupesSuppressed: c.stats.DupesSuppressed.Load(),
		FaultDropped:    c.stats.FaultDropped.Load(),
		FaultDuplicated: c.stats.FaultDuplicated.Load(),
		FaultDelayed:    c.stats.FaultDelayed.Load(),
		DecodeErrors:    c.stats.DecodeErrors.Load(),
		Reconnects:      c.stats.Reconnects.Load(),
		SendErrors:      c.stats.SendErrors.Load(),
	}
}
