package transport

import "sync"

// DupeMap suppresses duplicate frames by (sender, sequence) key. Injected
// duplicates, transport-level retransmissions after a reconnect, and
// crossed wires all surface as frames re-carrying a sender's original Seq;
// the receive path consults the map once per frame and drops repeats before
// they reach the bus.
//
// Memory is bounded by two generations of at most capacity entries each
// (the design of dusk's p2p dupemap, with generations in place of expiring
// bloom filters): inserts go to the current generation, lookups check both,
// and filling the current generation rotates it into the previous slot,
// forgetting the oldest entries. A key is therefore remembered for at least
// `capacity` and at most `2*capacity` distinct inserts — exactly the
// recency window duplicate suppression needs, with no timer machinery.
type DupeMap struct {
	mu        sync.Mutex
	capacity  int
	cur, prev map[dupeKey]struct{}
	rotations int64
}

type dupeKey struct {
	from NodeID
	seq  uint64
}

// DefaultDupeCap is the per-generation capacity used when NewDupeMap is
// given a non-positive value.
const DefaultDupeCap = 1 << 16

// NewDupeMap returns a DupeMap remembering between capacity and 2*capacity
// recent (sender, seq) keys (<= 0 selects DefaultDupeCap).
func NewDupeMap(capacity int) *DupeMap {
	if capacity <= 0 {
		capacity = DefaultDupeCap
	}
	return &DupeMap{
		capacity: capacity,
		cur:      make(map[dupeKey]struct{}, capacity),
		prev:     map[dupeKey]struct{}{},
	}
}

// Seen reports whether (from, seq) was recorded within the retention
// window, recording it when new. Safe for concurrent use.
func (d *DupeMap) Seen(from NodeID, seq uint64) bool {
	k := dupeKey{from, seq}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.cur[k]; ok {
		return true
	}
	if _, ok := d.prev[k]; ok {
		return true
	}
	if len(d.cur) >= d.capacity {
		d.prev = d.cur
		d.cur = make(map[dupeKey]struct{}, d.capacity)
		d.rotations++
	}
	d.cur[k] = struct{}{}
	return false
}

// Len returns the number of currently remembered keys.
func (d *DupeMap) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cur) + len(d.prev)
}

// Rotations returns how many times a full generation was evicted.
func (d *DupeMap) Rotations() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rotations
}
