package transport

import (
	"fmt"
	"sync"
	"time"
)

// Loopback is the in-process wire: a registry of endpoints exchanging
// encoded frames through buffered channels. Frames still round-trip
// through the full encode → enqueue → decode → dupe-check → bus path, so
// byte accounting, fault fates, dupe suppression, and trace spans are
// identical to the TCP backend — only the transport medium differs. That
// is the property the loopback≡TCP conformance golden pins.
type Loopback struct {
	mu  sync.Mutex
	eps map[NodeID]*LoopbackEndpoint
}

// NewLoopback returns an empty in-process wire.
func NewLoopback() *Loopback {
	return &Loopback{eps: map[NodeID]*LoopbackEndpoint{}}
}

// LoopbackEndpoint is one node's attachment to a Loopback wire.
type LoopbackEndpoint struct {
	epCore
	net    *Loopback
	in     chan []byte
	quit   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup // receive loop
	timers sync.WaitGroup // delayed (reordered) sends in flight
	linger time.Duration
}

// Attach creates cfg.Self's endpoint on the wire and starts its receive
// loop. Attaching an id twice is an error.
func (l *Loopback) Attach(cfg Config) (*LoopbackEndpoint, error) {
	ep := &LoopbackEndpoint{
		epCore: *newEpCore(cfg, "loopback"),
		net:    l,
		in:     make(chan []byte, cfg.queueCap()),
		quit:   make(chan struct{}),
		linger: cfg.linger(),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.eps[cfg.Self]; ok {
		return nil, fmt.Errorf("transport: loopback node %d already attached", cfg.Self)
	}
	l.eps[cfg.Self] = ep
	ep.wg.Add(1)
	go ep.recvLoop()
	return ep, nil
}

func (l *Loopback) lookup(id NodeID) *LoopbackEndpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eps[id]
}

// Self returns this endpoint's node id.
func (e *LoopbackEndpoint) Self() NodeID { return e.self }

// Addr returns the pseudo-address of the in-process wire.
func (e *LoopbackEndpoint) Addr() string { return "loopback" }

// Bus returns the endpoint's dispatch layer.
func (e *LoopbackEndpoint) Bus() *Bus { return e.bus }

// Send encodes f, applies its fault fate, and enqueues the surviving
// copies to the peer's inbox. The payload is copied during encoding, so
// the caller may reuse it immediately.
func (e *LoopbackEndpoint) Send(to NodeID, f *Frame) error {
	select {
	case <-e.quit:
		return ErrClosed
	default:
	}
	peer := e.net.lookup(to)
	if peer == nil {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	raw, copies, delay := e.prepareSend(to, f)
	for i := 0; i < copies; i++ {
		if delay > 0 {
			e.timers.Add(1)
			go func() {
				defer e.timers.Done()
				t := time.NewTimer(delay)
				defer t.Stop()
				select {
				case <-t.C:
					peer.enqueue(raw)
				case <-e.quit:
				}
			}()
		} else {
			peer.enqueue(raw)
		}
	}
	return nil
}

// enqueue hands one encoded frame to the endpoint's receive loop, giving
// up if the receiver closes.
func (e *LoopbackEndpoint) enqueue(raw []byte) {
	select {
	case e.in <- raw:
	case <-e.quit:
	}
}

func (e *LoopbackEndpoint) recvLoop() {
	defer e.wg.Done()
	for {
		select {
		case raw := <-e.in:
			e.deliver(raw)
		case <-e.quit:
			return
		}
	}
}

// Stats returns a snapshot of the endpoint's wire counters.
func (e *LoopbackEndpoint) Stats() StatsSnapshot { return e.snapshot() }

// Close detaches the endpoint: delayed sends are given up to the linger
// to fire, then the receive loop stops and the bus closes. Idempotent.
func (e *LoopbackEndpoint) Close() error {
	e.closed.Do(func() {
		// Give in-flight delayed sends a bounded window before cutting them
		// off; bus.Close first so a drain blocked on a full queue releases.
		done := make(chan struct{})
		go func() { e.timers.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(e.linger):
		}
		e.bus.Close()
		close(e.quit)
		e.wg.Wait()
		e.timers.Wait()
		e.net.mu.Lock()
		delete(e.net.eps, e.self)
		e.net.mu.Unlock()
	})
	return nil
}

var _ Endpoint = (*LoopbackEndpoint)(nil)
