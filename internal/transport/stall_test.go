package transport

import (
	"reflect"
	"testing"
	"time"
)

// The stall detector takes explicit times everywhere, so its timeout and
// backoff edges are pinned by tables — no wall-clock sleeps.
func TestStallDetectorDeadlines(t *testing.T) {
	t0 := time.Unix(1000, 0)
	sec := func(d float64) time.Duration { return time.Duration(d * float64(time.Second)) }

	cases := []struct {
		name      string
		base, max time.Duration
		backoff   float64
		strikes   int           // stalls already collected before the probed arm
		wantDelay time.Duration // deadline - arm time
	}{
		{name: "fresh", base: sec(1), backoff: 2, wantDelay: sec(1)},
		{name: "one-strike", base: sec(1), backoff: 2, strikes: 1, wantDelay: sec(2)},
		{name: "three-strikes", base: sec(1), backoff: 2, strikes: 3, wantDelay: sec(8)},
		{name: "capped", base: sec(1), backoff: 2, max: sec(5), strikes: 3, wantDelay: sec(5)},
		{name: "cap-below-base", base: sec(4), backoff: 2, max: sec(3), wantDelay: sec(3)},
		{name: "backoff-below-one-is-constant", base: sec(1), backoff: 0.5, strikes: 4, wantDelay: sec(1)},
		{name: "unit-backoff", base: sec(1), backoff: 1, strikes: 7, wantDelay: sec(1)},
		{name: "fractional-backoff", base: sec(1), backoff: 1.5, strikes: 2, wantDelay: sec(2.25)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStallDetector(tc.base, tc.backoff, tc.max)
			now := t0
			s.Arm(1, now)
			// Each Stalled at the deadline collects one strike and re-arms
			// with the backed-off delay; after the loop the current deadline
			// reflects exactly tc.strikes strikes.
			for i := 0; i < tc.strikes; i++ {
				dl, ok := s.Deadline(1)
				if !ok {
					t.Fatalf("strike %d: peer not armed", i)
				}
				now = dl
				if got := s.Stalled(now); !reflect.DeepEqual(got, []NodeID{1}) {
					t.Fatalf("strike %d: Stalled = %v, want [1]", i, got)
				}
			}
			if s.Strikes(1) != tc.strikes {
				t.Fatalf("strikes = %d, want %d", s.Strikes(1), tc.strikes)
			}
			dl, ok := s.Deadline(1)
			if !ok {
				t.Fatal("peer not armed")
			}
			if got := dl.Sub(now); got != tc.wantDelay {
				t.Fatalf("delay after %d strikes = %v, want %v", tc.strikes, got, tc.wantDelay)
			}
		})
	}
}

func TestStallDetectorLifecycle(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := NewStallDetector(time.Second, 2, 0)

	// Nothing armed: nothing stalls.
	if got := s.Stalled(t0.Add(time.Hour)); got != nil {
		t.Fatalf("Stalled on empty detector = %v", got)
	}

	// An armed peer is quiet strictly before its deadline, stalled at it.
	s.Arm(1, t0)
	if got := s.Stalled(t0.Add(time.Second - time.Nanosecond)); got != nil {
		t.Fatalf("stalled before deadline: %v", got)
	}
	if got := s.Stalled(t0.Add(time.Second)); !reflect.DeepEqual(got, []NodeID{1}) {
		t.Fatalf("Stalled at deadline = %v, want [1]", got)
	}
	if s.Strikes(1) != 1 {
		t.Fatalf("strikes = %d, want 1", s.Strikes(1))
	}

	// Re-arming an armed peer keeps the original deadline.
	s.Arm(2, t0)
	dl1, _ := s.Deadline(2)
	s.Arm(2, t0.Add(500*time.Millisecond))
	dl2, _ := s.Deadline(2)
	if !dl1.Equal(dl2) {
		t.Fatalf("re-arm moved the deadline: %v -> %v", dl1, dl2)
	}

	// Heard disarms and resets strikes.
	s.Heard(1)
	if _, armed := s.Deadline(1); armed {
		t.Fatal("peer still armed after Heard")
	}
	if s.Strikes(1) != 0 {
		t.Fatalf("strikes after Heard = %d", s.Strikes(1))
	}
	s.Arm(1, t0)
	dl, _ := s.Deadline(1)
	if got := dl.Sub(t0); got != time.Second {
		t.Fatalf("delay after Heard reset = %v, want base", got)
	}

	// Multiple overdue peers report in ascending id order.
	s.Reset()
	for _, id := range []NodeID{5, 3, 9, 1} {
		s.Arm(id, t0)
	}
	if got := s.Stalled(t0.Add(2 * time.Second)); !reflect.DeepEqual(got, []NodeID{1, 3, 5, 9}) {
		t.Fatalf("Stalled order = %v", got)
	}
	if s.Total() < 4 {
		t.Fatalf("Total = %d, want >= 4", s.Total())
	}

	// Reset forgets everything.
	s.Reset()
	if got := s.Stalled(t0.Add(time.Hour)); got != nil {
		t.Fatalf("Stalled after Reset = %v", got)
	}
}

func TestDupeMapWindow(t *testing.T) {
	d := NewDupeMap(4)
	if d.Seen(1, 1) {
		t.Fatal("fresh key reported seen")
	}
	if !d.Seen(1, 1) {
		t.Fatal("repeat not suppressed")
	}
	if d.Seen(2, 1) {
		t.Fatal("same seq from a different sender collided")
	}

	// Fill past two generations: the earliest keys age out and are
	// accepted again; the freshest stay suppressed.
	for seq := uint64(2); seq <= 12; seq++ {
		d.Seen(1, seq)
	}
	if d.Rotations() < 2 {
		t.Fatalf("rotations = %d, want >= 2", d.Rotations())
	}
	if d.Seen(1, 1) {
		t.Fatal("key older than two generations still suppressed")
	}
	if !d.Seen(1, 12) {
		t.Fatal("freshest key forgotten")
	}
	if n := d.Len(); n > 8 {
		t.Fatalf("Len = %d, exceeds two generations of capacity 4", n)
	}
}
