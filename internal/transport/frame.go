// Package transport is the real wire of the ABD-HFL reproduction: framed,
// length-prefixed protocol messages exchanged between node endpoints over
// one of two interchangeable backends — an in-process loopback whose
// delivery semantics match today's direct channel dispatch, and a TCP
// backend with connection management, duplicate suppression, and peer-stall
// detection. Both backends share one receive path (decode → dupe check →
// telemetry/trace → event-bus dispatch), so a protocol engine written
// against Endpoint behaves byte-identically whichever wire carries it; the
// conformance tests in internal/node pin exactly that.
//
// The fault layer (internal/fault) injects at this level too: every Send
// consults the configured Plan for a deterministic per-frame fate (drop,
// duplicate, delay-induced reorder) keyed by the frame's protocol
// coordinates, so the same plan produces the same fault pattern over
// loopback, over sockets, and across process boundaries.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// NodeID identifies a protocol endpoint. Device and leader processes use
// the device id; the root coordinator uses the first id past the devices.
type NodeID int32

// Frame is the wire unit: a typed, routed protocol message. Payload bytes
// are opaque to the transport (the node layer packs codec-encoded model
// vectors and audit records into them).
type Frame struct {
	// Kind is the protocol message type (see internal/node for the kinds).
	Kind uint8
	// From and To route the frame between endpoints.
	From, To NodeID
	// Round is the protocol round the frame belongs to; receivers use it to
	// bucket collections and discard stale traffic.
	Round uint32
	// Seq is a per-sender monotonic sequence number stamped by Send. It is
	// the duplicate-suppression key: injected duplicates and transport-level
	// retransmissions carry the sender's original Seq.
	Seq uint64
	// Sent is the sender's wall clock in Unix nanoseconds at Send time,
	// carried so receivers can emit hop-level trace spans.
	Sent int64
	// Payload is the message body; may be empty (signal-only frames).
	Payload []byte
}

// Wire format: a 4-byte big-endian body length L, then the body:
//
//	magic(2) version(1) kind(1) from(4) to(4) round(4) seq(8) sent(8) plen(4) payload(plen)
//
// L must equal headerBody + plen. The redundant plen field cross-checks the
// outer length prefix, so a corrupted length cannot silently shift framing.
const (
	frameMagic   = 0xABD1
	frameVersion = 1
	// headerBody is the fixed body size before the payload.
	headerBody = 2 + 1 + 1 + 4 + 4 + 4 + 8 + 8 + 4
	// headerSize is the full header including the length prefix.
	headerSize = 4 + headerBody
	// DefaultMaxFrame bounds accepted frame sizes (length prefix included);
	// decoders reject larger claims before allocating, so a hostile or
	// corrupt length prefix can never over-allocate.
	DefaultMaxFrame = 1 << 26 // 64 MiB
)

// Frame decode errors. Decoders return errors — never panic — on arbitrary
// input; FuzzFrameDecode pins that contract.
var (
	// ErrFrameTooLarge is returned when a frame (or its length claim)
	// exceeds the configured maximum.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrCorruptFrame is returned for malformed bytes: truncated header,
	// wrong magic or version, or disagreeing length fields.
	ErrCorruptFrame = errors.New("transport: corrupt frame")
)

// EncodedSize returns the exact wire size of a frame with the given payload
// length, including the length prefix.
func EncodedSize(payloadLen int) int { return headerSize + payloadLen }

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	plen := len(f.Payload)
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(headerBody+plen))
	binary.BigEndian.PutUint16(hdr[4:6], frameMagic)
	hdr[6] = frameVersion
	hdr[7] = f.Kind
	binary.BigEndian.PutUint32(hdr[8:12], uint32(f.From))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(f.To))
	binary.BigEndian.PutUint32(hdr[16:20], f.Round)
	binary.BigEndian.PutUint64(hdr[20:28], f.Seq)
	binary.BigEndian.PutUint64(hdr[28:36], uint64(f.Sent))
	binary.BigEndian.PutUint32(hdr[36:40], uint32(plen))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// EncodeFrame returns the wire encoding of f as a fresh slice.
func EncodeFrame(f *Frame) []byte {
	return AppendFrame(make([]byte, 0, EncodedSize(len(f.Payload))), f)
}

// DecodeFrame parses exactly one frame from buf into f. Trailing bytes are
// rejected (the framing layer hands whole frames), the payload is aliased
// into buf (callers that retain it must copy), and maxFrame (<= 0 selects
// DefaultMaxFrame) bounds the accepted size.
func DecodeFrame(buf []byte, f *Frame, maxFrame int) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(buf) > maxFrame {
		return ErrFrameTooLarge
	}
	if len(buf) < headerSize {
		return fmt.Errorf("%w: %d bytes, need at least %d", ErrCorruptFrame, len(buf), headerSize)
	}
	body := binary.BigEndian.Uint32(buf[0:4])
	if int(body) != len(buf)-4 {
		return fmt.Errorf("%w: length prefix %d for %d body bytes", ErrCorruptFrame, body, len(buf)-4)
	}
	return decodeBody(buf[4:], f)
}

// decodeBody parses a frame body (everything after the length prefix).
func decodeBody(b []byte, f *Frame) error {
	if len(b) < headerBody {
		return fmt.Errorf("%w: truncated header", ErrCorruptFrame)
	}
	if binary.BigEndian.Uint16(b[0:2]) != frameMagic {
		return fmt.Errorf("%w: bad magic", ErrCorruptFrame)
	}
	if b[2] != frameVersion {
		return fmt.Errorf("%w: unknown version %d", ErrCorruptFrame, b[2])
	}
	plen := binary.BigEndian.Uint32(b[headerBody-4 : headerBody])
	if int(plen) != len(b)-headerBody {
		return fmt.Errorf("%w: payload length %d disagrees with body %d", ErrCorruptFrame, plen, len(b)-headerBody)
	}
	f.Kind = b[3]
	f.From = NodeID(int32(binary.BigEndian.Uint32(b[4:8])))
	f.To = NodeID(int32(binary.BigEndian.Uint32(b[8:12])))
	f.Round = binary.BigEndian.Uint32(b[12:16])
	f.Seq = binary.BigEndian.Uint64(b[16:24])
	f.Sent = int64(binary.BigEndian.Uint64(b[24:32]))
	if plen == 0 {
		f.Payload = nil
	} else {
		f.Payload = b[headerBody:]
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r into f, allocating a
// fresh payload buffer. It validates the length claim against maxFrame
// (<= 0 selects DefaultMaxFrame) BEFORE allocating, so a hostile length
// prefix cannot over-allocate. A clean EOF before the first byte returns
// io.EOF; a connection cut mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, f *Frame, maxFrame int) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	body := binary.BigEndian.Uint32(lenbuf[:])
	if int(body) < headerBody {
		return fmt.Errorf("%w: body length %d below header size", ErrCorruptFrame, body)
	}
	if int(body)+4 > maxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return decodeBody(buf, f)
}
