package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two connected TCP endpoints (ids 1 and 2) with cleanup
// registered.
func tcpPair(t *testing.T, cfg func(id NodeID) Config) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	if cfg == nil {
		cfg = func(id NodeID) Config { return Config{Self: id} }
	}
	a, err := ListenTCP(cfg(1), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP(cfg(2), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	return a, b
}

// waitStat polls an endpoint counter until it reaches want or the deadline
// passes — receive-side counters update asynchronously behind the sockets.
func waitStat(t *testing.T, what string, want int64, get func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := get(); got >= want {
			if got > want {
				t.Fatalf("%s = %d, want %d", what, got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d after 5s, want %d", what, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentSendRecv hammers both backends with concurrent senders and
// a concurrent receiver per side; run under -race this pins the endpoint's
// internal synchronization.
func TestConcurrentSendRecv(t *testing.T) {
	const senders, perSender = 8, 50
	run := func(t *testing.T, a, b Endpoint) {
		t.Helper()
		total := senders * perSender
		qa := a.Bus().Subscribe(64, 1)
		qb := b.Bus().Subscribe(64, 1)
		var recvWG sync.WaitGroup
		drain := func(q *Queue, bus *Bus) {
			defer recvWG.Done()
			for n := 0; n < total; n++ {
				select {
				case <-q.C:
				case <-bus.Done():
					t.Errorf("bus closed after %d/%d frames", n, total)
					return
				}
			}
		}
		recvWG.Add(2)
		go drain(qa, a.Bus())
		go drain(qb, b.Bus())

		var sendWG sync.WaitGroup
		send := func(from Endpoint, to NodeID) {
			defer sendWG.Done()
			payload := []byte("concurrent-payload")
			for i := 0; i < perSender; i++ {
				if err := from.Send(to, &Frame{Kind: 1, Round: uint32(i), Payload: payload}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}
		for i := 0; i < senders; i++ {
			sendWG.Add(2)
			go send(a, 2)
			go send(b, 1)
		}
		sendWG.Wait()
		recvWG.Wait()

		for _, ep := range []Endpoint{a, b} {
			s := ep.Stats()
			if s.FramesSent != int64(total) || s.FramesDelivered != int64(total) {
				t.Errorf("node %d: sent %d delivered %d, want %d", ep.Self(), s.FramesSent, s.FramesDelivered, total)
			}
			if s.DecodeErrors != 0 || s.DupesSuppressed != 0 {
				t.Errorf("node %d: decode errors %d, dupes %d on a clean wire", ep.Self(), s.DecodeErrors, s.DupesSuppressed)
			}
		}
	}
	t.Run("loopback", func(t *testing.T) {
		lb := NewLoopback()
		a, err := lb.Attach(Config{Self: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		b, err := lb.Attach(Config{Self: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		run(t, a, b)
	})
	t.Run("tcp", func(t *testing.T) {
		a, b := tcpPair(t, nil)
		run(t, a, b)
	})
}

// TestTCPInboundHostility drives a TCP endpoint's read path directly with
// raw connections: cuts mid-frame (tolerated — sender-side retransmission
// territory), per-frame corruption (counted, framing preserved), and
// framing-level corruption (counted, connection dropped).
func TestTCPInboundHostility(t *testing.T) {
	ep, err := ListenTCP(Config{Self: 1, MaxFrame: 1 << 16}, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	q := ep.Bus().Subscribe(16, 1)

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	frame := func(seq uint64) []byte {
		return EncodeFrame(&Frame{Kind: 1, From: 2, To: 1, Seq: seq, Payload: []byte("hostile-test")})
	}
	mustRecv := func(wantSeq uint64) {
		t.Helper()
		select {
		case f := <-q.C:
			if f.Seq != wantSeq {
				t.Fatalf("received seq %d, want %d", f.Seq, wantSeq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never delivered", wantSeq)
		}
	}

	t.Run("disconnect-mid-frame", func(t *testing.T) {
		c := dial()
		raw := frame(1)
		if _, err := c.Write(raw); err != nil {
			t.Fatal(err)
		}
		mustRecv(1)
		// Cut the connection halfway through the next frame: wire luck, not
		// corruption — the frame is lost but no decode error is charged.
		if _, err := c.Write(frame(2)[:headerSize+3]); err != nil {
			t.Fatal(err)
		}
		c.Close()
		time.Sleep(50 * time.Millisecond)
		if n := ep.Stats().DecodeErrors; n != 0 {
			t.Fatalf("decode errors after mid-frame cut: %d", n)
		}
	})

	t.Run("corrupt-frame-keeps-connection", func(t *testing.T) {
		c := dial()
		defer c.Close()
		bad := frame(3)
		bad[4] = 0 // break the magic; lengths stay consistent, framing holds
		if _, err := c.Write(bad); err != nil {
			t.Fatal(err)
		}
		waitStat(t, "decode errors", 1, func() int64 { return ep.Stats().DecodeErrors })
		// The framing layer resynchronized: the next frame on the same
		// connection still delivers.
		if _, err := c.Write(frame(4)); err != nil {
			t.Fatal(err)
		}
		mustRecv(4)
	})

	t.Run("hostile-length-drops-connection", func(t *testing.T) {
		c := dial()
		defer c.Close()
		if _, err := c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
			t.Fatal(err)
		}
		waitStat(t, "decode errors", 2, func() int64 { return ep.Stats().DecodeErrors })
		// The endpoint hung up on the desynced connection: reads now fail.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("connection still open after a hostile length claim")
		}
	})

	t.Run("wire-duplicate-suppressed", func(t *testing.T) {
		c := dial()
		defer c.Close()
		raw := frame(9)
		for i := 0; i < 3; i++ {
			if _, err := c.Write(raw); err != nil {
				t.Fatal(err)
			}
		}
		mustRecv(9)
		waitStat(t, "dupes suppressed", 2, func() int64 { return ep.Stats().DupesSuppressed })
		if n := ep.Stats().FramesDelivered; n < 1 {
			t.Fatalf("frames delivered: %d", n)
		}
	})
}

func TestEndpointLifecycleErrors(t *testing.T) {
	a, _ := tcpPair(t, nil)
	if err := a.Send(99, &Frame{Kind: 1}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to unknown peer: %v, want ErrUnknownPeer", err)
	}
	a.Close()
	if err := a.Send(2, &Frame{Kind: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	a.Close() // idempotent
}

// TestTCPPeerRestart pins reconnect-and-resend: frames sent while the peer
// is down are delivered once a new listener takes over the address, with
// the reconnect counted.
func TestTCPPeerRestart(t *testing.T) {
	a, b := tcpPair(t, func(id NodeID) Config { return Config{Self: id, Linger: 100 * time.Millisecond} })
	q := b.Bus().Subscribe(16, 1)

	if err := a.Send(2, &Frame{Kind: 1, Seq: 0, Payload: []byte("pre")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-q.C:
	case <-time.After(5 * time.Second):
		t.Fatal("first frame never arrived")
	}

	// Restart the peer on the same address: the established connection
	// breaks, the writer redials and resends.
	addr := b.Addr()
	b.Close()
	b2, err := ListenTCP(Config{Self: 2}, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	q2 := b2.Bus().Subscribe(16, 1)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.Send(2, &Frame{Kind: 1, Payload: []byte("post")}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-q2.C:
			return
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no frame arrived after peer restart")
		}
	}
}
