package transport

import (
	"sync"
	"sync/atomic"
)

// Bus is the endpoint's dispatch layer: received frames are published to
// every Queue subscribed to their Kind, in subscription order. It plays the
// role an event broker plays in a real node process — the transport's
// receive loop publishes, protocol actors subscribe to the kinds they
// handle and consume from their own buffered queues, so a slow consumer of
// one kind cannot reorder another kind's stream.
//
// Publish applies backpressure: a full queue blocks the publisher until the
// consumer drains it or the bus closes. Closing the bus releases every
// blocked publisher and is observable through Done; queues are never closed
// (consumers select on Done alongside their queue channel).
type Bus struct {
	mu     sync.RWMutex
	subs   map[uint8][]*Queue
	done   chan struct{}
	closed bool
	// published counts frames handed to at least one subscriber; unrouted
	// counts frames published with no subscriber for their kind.
	published atomic.Int64
	unrouted  atomic.Int64
}

// Queue is one subscription: a buffered channel of frames. Each frame's
// payload is owned by the receiver (the transport copies it out of its read
// buffers before publishing), so consumers may retain it.
type Queue struct {
	C chan Frame
}

// NewBus returns an empty dispatch bus.
func NewBus() *Bus {
	return &Bus{subs: map[uint8][]*Queue{}, done: make(chan struct{})}
}

// Subscribe registers a new queue with the given buffer capacity (minimum
// 1) for every listed kind and returns it.
func (b *Bus) Subscribe(capacity int, kinds ...uint8) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{C: make(chan Frame, capacity)}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range kinds {
		b.subs[k] = append(b.subs[k], q)
	}
	return q
}

// Publish delivers f to every subscriber of f.Kind, blocking on full queues
// until space frees or the bus closes. It reports whether the frame reached
// at least one subscriber.
func (b *Bus) Publish(f Frame) bool {
	b.mu.RLock()
	qs := b.subs[f.Kind]
	b.mu.RUnlock()
	if len(qs) == 0 {
		b.unrouted.Add(1)
		return false
	}
	for _, q := range qs {
		select {
		case q.C <- f:
		case <-b.done:
			return false
		}
	}
	b.published.Add(1)
	return true
}

// Done is closed when the bus shuts down; consumers select on it alongside
// their queue channels.
func (b *Bus) Done() <-chan struct{} { return b.done }

// Close releases blocked publishers and marks the bus finished. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.done)
	}
}

// Unrouted returns the number of frames published with no subscriber.
func (b *Bus) Unrouted() int64 { return b.unrouted.Load() }
