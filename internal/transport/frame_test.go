package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Kind: 1, From: 0, To: 3, Round: 0, Seq: 1, Sent: 1700000000000000000, Payload: []byte("update")},
		{Kind: 2, From: 3, To: 6, Round: 7, Seq: 42, Sent: -1, Payload: bytes.Repeat([]byte{0xAB}, 1024)},
		{Kind: 3, From: 6, To: 0, Round: math.MaxUint32, Seq: math.MaxUint64, Sent: math.MaxInt64},
		{Kind: 0, From: -1, To: -1}, // negative ids survive the uint32 wire trip
		// ABA ballot-exchange kinds (node.KindProposal/KindBallot): a proposal
		// header (member, count, dim) and a short ballot (member, bits).
		{Kind: 4, From: 9, To: 2, Round: 3, Seq: 77, Sent: 12345, Payload: []byte{
			1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0xF0, 0x3F, 0, 0, 0, 0, 0, 0, 0, 0x40,
		}},
		{Kind: 5, From: 2, To: 9, Round: 3, Seq: 78, Sent: 12346, Payload: []byte{
			1, 0, 0, 0, 3, 0, 0, 0, 1, 0, 1,
		}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, want := range sampleFrames() {
		raw := EncodeFrame(&want)
		if len(raw) != EncodedSize(len(want.Payload)) {
			t.Fatalf("frame %d: encoded %d bytes, EncodedSize says %d", i, len(raw), EncodedSize(len(want.Payload)))
		}
		var got Frame
		if err := DecodeFrame(raw, &got, 0); err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
			got.Round != want.Round || got.Seq != want.Seq || got.Sent != want.Sent ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}

		// The stream reader must agree with the buffer decoder.
		var rd Frame
		if err := ReadFrame(bytes.NewReader(raw), &rd, 0); err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if rd.Seq != want.Seq || !bytes.Equal(rd.Payload, want.Payload) {
			t.Fatalf("frame %d: ReadFrame mismatch: %+v", i, rd)
		}
	}
}

// corruptFrame returns a valid encoding with one byte range rewritten.
func corruptFrame(mutate func(raw []byte)) []byte {
	f := Frame{Kind: 1, From: 2, To: 3, Round: 4, Seq: 5, Sent: 6, Payload: []byte("payload")}
	raw := EncodeFrame(&f)
	mutate(raw)
	return raw
}

func TestDecodeFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		max  int
		want error
	}{
		{name: "empty", raw: nil, want: ErrCorruptFrame},
		{name: "short", raw: make([]byte, headerSize-1), want: ErrCorruptFrame},
		{name: "garbage", raw: bytes.Repeat([]byte{0x5A}, 64), want: ErrCorruptFrame},
		{name: "over-limit", raw: make([]byte, 129), max: 128, want: ErrFrameTooLarge},
		{name: "bad-magic", raw: corruptFrame(func(raw []byte) { raw[4] = 0 }), want: ErrCorruptFrame},
		{name: "bad-version", raw: corruptFrame(func(raw []byte) { raw[6] = 9 }), want: ErrCorruptFrame},
		{name: "length-prefix-lies", raw: corruptFrame(func(raw []byte) {
			binary.BigEndian.PutUint32(raw[0:4], uint32(len(raw))) // off by the prefix itself
		}), want: ErrCorruptFrame},
		{name: "plen-lies", raw: corruptFrame(func(raw []byte) {
			binary.BigEndian.PutUint32(raw[36:40], 3)
		}), want: ErrCorruptFrame},
		{name: "trailing-bytes", raw: append(corruptFrame(func([]byte) {}), 0xFF), want: ErrCorruptFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			if err := DecodeFrame(tc.raw, &f, tc.max); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadFrameErrors(t *testing.T) {
	valid := EncodeFrame(&Frame{Kind: 1, Payload: []byte("ok")})
	t.Run("clean-eof", func(t *testing.T) {
		var f Frame
		if err := ReadFrame(bytes.NewReader(nil), &f, 0); !errors.Is(err, io.EOF) {
			t.Fatalf("ReadFrame on empty stream = %v, want io.EOF", err)
		}
	})
	t.Run("cut-mid-prefix", func(t *testing.T) {
		var f Frame
		if err := ReadFrame(bytes.NewReader(valid[:2]), &f, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("ReadFrame = %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("cut-mid-body", func(t *testing.T) {
		var f Frame
		if err := ReadFrame(bytes.NewReader(valid[:len(valid)-1]), &f, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("ReadFrame = %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("hostile-length-claim", func(t *testing.T) {
		// A 4-byte prefix claiming a huge body must be rejected from the
		// claim alone — before any allocation and before reading further.
		raw := make([]byte, 4)
		binary.BigEndian.PutUint32(raw, math.MaxUint32)
		var f Frame
		if err := ReadFrame(bytes.NewReader(raw), &f, 0); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("ReadFrame = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("undersized-length-claim", func(t *testing.T) {
		raw := make([]byte, 4)
		binary.BigEndian.PutUint32(raw, headerBody-1)
		var f Frame
		if err := ReadFrame(bytes.NewReader(raw), &f, 0); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("ReadFrame = %v, want ErrCorruptFrame", err)
		}
	})
	t.Run("stream-of-frames", func(t *testing.T) {
		var stream []byte
		for i := 0; i < 3; i++ {
			stream = AppendFrame(stream, &Frame{Kind: 1, Seq: uint64(i + 1), Payload: []byte{byte(i)}})
		}
		r := bytes.NewReader(stream)
		for i := 0; i < 3; i++ {
			var f Frame
			if err := ReadFrame(r, &f, 0); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if f.Seq != uint64(i+1) {
				t.Fatalf("frame %d: seq %d", i, f.Seq)
			}
		}
		var f Frame
		if err := ReadFrame(r, &f, 0); !errors.Is(err, io.EOF) {
			t.Fatalf("after stream: %v, want io.EOF", err)
		}
	})
}

// fuzzSeeds are the committed corpus: valid frames, every truncation class,
// hostile length claims, and plain garbage. TestRegenFuzzCorpus writes them
// to testdata so `go test -fuzz` starts from real wire shapes.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		{}, {0x00}, {0xAB, 0xD1},
		bytes.Repeat([]byte{0xFF}, headerSize),
		bytes.Repeat([]byte{0x42}, 256),
	}
	for _, f := range sampleFrames() {
		f := f
		raw := EncodeFrame(&f)
		seeds = append(seeds, raw, raw[:len(raw)/2], raw[:headerSize-1])
	}
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, math.MaxUint32)
	seeds = append(seeds, huge, append(huge, bytes.Repeat([]byte{0xAA}, 32)...))
	return seeds
}

// FuzzFrameDecode pins the decoder contract on arbitrary bytes: errors,
// never panics, never allocates past the size limit, and anything that
// decodes re-encodes to the same bytes.
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(data, &fr, limit); err == nil {
			if len(fr.Payload) > limit {
				t.Fatalf("payload %d bytes escaped the %d limit", len(fr.Payload), limit)
			}
			if back := EncodeFrame(&fr); !bytes.Equal(back, data) {
				t.Fatalf("re-encode mismatch:\nin:  %x\nout: %x", data, back)
			}
		}
		// The stream reader must survive the same bytes, and agree with the
		// buffer decoder whenever a whole well-formed frame leads the stream.
		var sr Frame
		if err := ReadFrame(bytes.NewReader(data), &sr, limit); err == nil {
			if len(sr.Payload) > limit {
				t.Fatalf("ReadFrame payload %d bytes escaped the %d limit", len(sr.Payload), limit)
			}
			if whole := EncodedSize(len(sr.Payload)); whole == len(data) {
				var again Frame
				if err := DecodeFrame(data, &again, limit); err != nil {
					t.Fatalf("ReadFrame accepted what DecodeFrame rejects: %v", err)
				}
			}
		}
	})
}

// TestRegenFuzzCorpus rewrites the committed seed corpus when
// ABDHFL_REGEN=1 (mirroring the codec golden regen idiom); otherwise it
// verifies every committed entry still parses as a corpus file.
func TestRegenFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if os.Getenv("ABDHFL_REGEN") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("regenerated %d corpus entries in %s", len(fuzzSeeds()), dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing (run with ABDHFL_REGEN=1): %v", err)
	}
	if len(entries) < len(fuzzSeeds()) {
		t.Fatalf("corpus has %d entries, seeds define %d (run with ABDHFL_REGEN=1)", len(entries), len(fuzzSeeds()))
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("go test fuzz v1\n")) {
			t.Errorf("%s: not a go fuzz corpus file", e.Name())
		}
	}
}
