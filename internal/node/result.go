package node

import (
	"sort"

	"abdhfl/internal/core"
)

// WireAudit is one aggregation step's filter verdict plus its step-local
// communication cost, in the JSON form partial messages carry up the tree.
// It mirrors telemetry.FilterDecision (ids have the same meaning: device
// ids at the bottom, child-cluster leader ids above) with the CommStats
// the root needs for σ-accounting piggybacked on.
type WireAudit struct {
	Level     int    `json:"level"`
	Cluster   int    `json:"cluster"`
	Round     int    `json:"round"`
	Rule      string `json:"rule"`
	Kept      []int  `json:"kept,omitempty"`
	Clipped   []int  `json:"clipped,omitempty"`
	Discarded []int  `json:"discarded,omitempty"`
	// Transfers/Scalars are the step's CommStats contribution.
	Transfers int `json:"transfers"`
	Scalars   int `json:"scalars"`
	// Excluded counts CBA-excluded proposals (top step only).
	Excluded int `json:"excluded,omitempty"`
}

// sortAudits orders one round's audits exactly as RunHFL emits them:
// bottom level first, ascending cluster index within a level, the top
// (level 0) step last.
func sortAudits(audits []WireAudit) {
	sort.SliceStable(audits, func(i, j int) bool {
		if audits[i].Level != audits[j].Level {
			return audits[i].Level > audits[j].Level
		}
		return audits[i].Cluster < audits[j].Cluster
	})
}

// Result is what a node engine reports after its rounds complete. Every
// node fills FinalParams (its copy of the final global model — identical
// across nodes, which the conformance tests assert) and Stalls; the
// learning-run fields (Curve, Comm, audit, σ-accounting) are the root's,
// mirroring core.Result field for field so the two engines' outputs
// compare directly.
type Result struct {
	FinalAccuracy float64          `json:"final_accuracy"`
	FinalParams   []float64        `json:"final_params,omitempty"`
	Curve         []core.RoundStat `json:"curve,omitempty"`
	Comm          core.CommStats   `json:"comm"`
	// ExcludedByConsensus counts CBA-excluded top-level proposals.
	ExcludedByConsensus int `json:"excluded_by_consensus"`
	// TrainerActivations counts device training runs across all rounds
	// (the root's tally of the deterministic availability draws).
	TrainerActivations int `json:"trainer_activations"`
	// Audit is the run-wide filter audit in RunHFL emission order,
	// reassembled by the root from the piggybacked subtree audits.
	Audit []WireAudit `json:"audit,omitempty"`
	// Stalls counts expected contributors this node timed out on.
	Stalls int `json:"stalls"`
}
