package node

import (
	"fmt"
	"sync"
	"time"

	"abdhfl"
	"abdhfl/internal/fault"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
	"abdhfl/internal/transport"
)

// Cluster backends.
const (
	BackendLoopback = "loopback"
	BackendTCP      = "tcp"
)

// ClusterOpts configures an in-process cluster run: every tree position
// plus the root as its own engine goroutine on its own endpoint, over the
// chosen backend. This is the harness the loopback≡TCP conformance tests
// drive; cmd/abdhfl-node is the same protocol with one engine per OS
// process.
type ClusterOpts struct {
	Materials *abdhfl.Materials
	Seed      uint64
	// Backend selects the wire: BackendLoopback or BackendTCP (loopback
	// when empty). TCP binds every endpoint on 127.0.0.1.
	Backend string
	// Plan drives both engine-level availability faults and transport
	// frame fates (restricted to FaultableKinds).
	Plan       *fault.Plan
	StallAfter time.Duration
	GlobalWait time.Duration
	Registry   *telemetry.Registry
	Tracer     *trace.Tracer
	QueueCap   int
}

// ClusterResult aggregates a cluster run: per-node engine results and wire
// stats, indexed by node id (the root last).
type ClusterResult struct {
	// Root is Results[len(Results)-1], the learning-run outcome.
	Root    *Result
	Results []*Result
	Stats   []transport.StatsSnapshot
	// Total sums Stats.
	Total transport.StatsSnapshot
}

// RunCluster runs one full distributed learning run in-process and returns
// every node's outcome. Endpoints close only after every engine finishes:
// a node done with its rounds may still owe relay traffic to a slower
// sibling's subtree.
func RunCluster(opts ClusterOpts) (*ClusterResult, error) {
	if opts.Materials == nil {
		return nil, fmt.Errorf("node: nil materials")
	}
	tree := opts.Materials.Tree
	n := tree.NumDevices() + 1
	epCfg := func(id int) transport.Config {
		return transport.Config{
			Self:       transport.NodeID(id),
			Plan:       opts.Plan,
			FaultKinds: FaultableKinds(),
			Registry:   opts.Registry,
			Tracer:     opts.Tracer,
			QueueCap:   opts.QueueCap,
		}
	}
	endpoints := make([]transport.Endpoint, 0, n)
	closeAll := func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}
	switch opts.Backend {
	case BackendLoopback, "":
		lb := transport.NewLoopback()
		for id := 0; id < n; id++ {
			ep, err := lb.Attach(epCfg(id))
			if err != nil {
				closeAll()
				return nil, err
			}
			endpoints = append(endpoints, ep)
		}
	case BackendTCP:
		tcps := make([]*transport.TCPEndpoint, 0, n)
		for id := 0; id < n; id++ {
			ep, err := transport.ListenTCP(epCfg(id), "127.0.0.1:0", nil)
			if err != nil {
				closeAll()
				return nil, err
			}
			endpoints = append(endpoints, ep)
			tcps = append(tcps, ep)
		}
		for _, ep := range tcps {
			for id, peer := range tcps {
				if peer != ep {
					ep.AddPeer(transport.NodeID(id), peer.Addr())
				}
			}
		}
	default:
		return nil, fmt.Errorf("node: unknown backend %q", opts.Backend)
	}

	engines := make([]*Engine, n)
	for id := 0; id < n; id++ {
		eng, err := New(Config{
			Materials:  opts.Materials,
			Seed:       opts.Seed,
			ID:         transport.NodeID(id),
			Endpoint:   endpoints[id],
			Plan:       opts.Plan,
			StallAfter: opts.StallAfter,
			GlobalWait: opts.GlobalWait,
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
		engines[id] = eng
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = engines[id].Run()
		}(id)
	}
	wg.Wait()
	closeAll()

	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
	}
	out := &ClusterResult{
		Root:    results[n-1],
		Results: results,
		Stats:   make([]transport.StatsSnapshot, n),
	}
	for id, ep := range endpoints {
		out.Stats[id] = ep.Stats()
		out.Total.Add(out.Stats[id])
	}
	return out, nil
}
