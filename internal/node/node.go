// Package node hosts one ABD-HFL protocol role — device, cluster leader
// (a device with aggregation duties), or root — as a standalone actor
// speaking protocol frames over an internal/transport Endpoint. A set of
// node engines, one per tree position plus the root, executes the same
// rounds RunHFL executes in one process: devices train locally and upload
// updates, leaders collect cluster inputs (stalling out silent peers and
// falling back to the quorum they have), aggregate with the configured
// rule, and forward partials up the tree, and the root forms the global
// model and disseminates it back down through the leader relay chain.
//
// The engine leans on the repo-wide determinism discipline: every random
// draw in the core round engine comes from a labeled stream Derived (not
// Split) from the run seed, so any process can recompute any stream
// locally. That is what lets a leader know which contributors to expect
// each round without signaling — churn, cohort sampling, and fault-plan
// availability are all pure functions of (config, seed, round) — and what
// makes a distributed run byte-identical to core.RunHFL for the supported
// configuration subset (no omniscient ModelAttack, no RotateLeaders:
// both need a global view no single process has; no LeaderFailures:
// that fault mode targets the simulator engines, a real leader process
// is either running or not).
//
// Fault injection happens at the transport layer, on the quorum-protected
// upward path only (updates and partials — see FaultableKinds): a dropped
// upward frame turns into a deterministic stall-timeout exclusion at its
// collector, exercising exactly the φ-quorum machinery the paper builds.
// Dissemination frames are exempt, matching the protocol's assumption
// that the downlink broadcast is reliable rather than retransmitted.
package node

import (
	"fmt"
	"runtime"
	"time"

	"abdhfl"
	"abdhfl/internal/codec"
	"abdhfl/internal/core"
	"abdhfl/internal/fault"
	"abdhfl/internal/nn"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
	"abdhfl/internal/transport"
)

// Protocol frame kinds. Payloads: KindUpdate and KindGlobal carry one
// encoded model (codec bytes or raw float64s, see payload.go); KindPartial
// carries a partial model plus the filter audits accumulated in the
// sender's subtree.
const (
	KindUpdate   uint8 = 1 // device → bottom-cluster leader
	KindPartial  uint8 = 2 // leader → parent leader or root
	KindGlobal   uint8 = 3 // root → top members, relayed down the tree
	KindProposal uint8 = 4 // root → contributing level-1 leaders (ABA ballot exchange)
	KindBallot   uint8 = 5 // leader → root (ABA ballot exchange)
)

// FaultableKinds lists the frame kinds transport fault plans apply to: the
// upward path the quorum machinery protects, plus the ABA ballot exchange
// (a dropped proposal or ballot realizes a silent consensus member — the
// fault the randomized protocol absorbs within its f-budget). Pass to
// transport.Config.FaultKinds.
func FaultableKinds() []uint8 {
	return []uint8{KindUpdate, KindPartial, KindProposal, KindBallot}
}

// RootID is the root's node id: one past the device ids, which run
// 0..NumDevices-1.
func RootID(tree *topology.Tree) transport.NodeID {
	return transport.NodeID(tree.NumDevices())
}

// Config describes one engine's identity and wiring.
type Config struct {
	// Materials is the scenario build every process shares; all of it is
	// derived deterministically from the Scenario, so processes handed the
	// same scenario JSON hold identical materials.
	Materials *abdhfl.Materials
	// Seed is the run seed (usually Scenario.Seed).
	Seed uint64
	// ID is this node: a device id in [0, NumDevices), or RootID(tree).
	ID transport.NodeID
	// Endpoint is the node's attachment to the wire. The engine subscribes
	// to all protocol kinds on its bus; the caller owns Close.
	Endpoint transport.Endpoint
	// Plan, when non-nil, drives device availability (crash, churn) and
	// upload omission inside the engine. Transport-level faults
	// (drop/duplicate/reorder) belong to the Endpoint's own config, not
	// here — both usually point at the same plan.
	Plan *fault.Plan
	// StallAfter is the base collect deadline for one hop (default 5s).
	// Collects higher in the tree wait proportionally longer, so a child
	// cluster's own stall-and-continue fits inside its parent's deadline.
	StallAfter time.Duration
	// GlobalWait bounds the wait for the round's disseminated global model
	// (default (depth+2) × StallAfter). Missing it is fatal: there is no
	// recovery path without the round's reference model.
	GlobalWait time.Duration
	// Logf, when set, receives progress lines (round boundaries, stalls).
	Logf func(format string, args ...any)
}

// Engine is one node's protocol actor. Run drives all of its roles for the
// configured number of rounds on the calling goroutine.
type Engine struct {
	cfg  Config
	ccfg core.Config
	tree *topology.Tree

	id       transport.NodeID
	devices  int
	isRoot   bool
	sizes    []int
	dim      int
	workers  int
	evalEver int

	q       *transport.Queue
	busDone <-chan struct{}
	stall   time.Duration
	gwait   time.Duration

	wa  *core.WireAggregator
	led map[int][]int // level → indices of clusters this node leads

	cdc codec.Codec
	cs  *codec.Scratch

	global   tensor.Vector
	curRound int
	produces map[[2]int]bool
	pending  map[pendKey][]transport.Frame

	// Device training state (nil on the root).
	model  *nn.Model
	ws     *nn.Workspace
	update tensor.Vector

	// Root evaluation state (nil elsewhere).
	evalModel *nn.Model

	res Result
}

// New builds the engine for cfg.ID. It validates the run configuration the
// same way RunHFL does and rejects the configuration subset a distributed
// engine cannot honor.
func New(cfg Config) (*Engine, error) {
	if cfg.Materials == nil {
		return nil, fmt.Errorf("node: nil materials")
	}
	if cfg.Endpoint == nil {
		return nil, fmt.Errorf("node: nil endpoint")
	}
	ccfg := cfg.Materials.CoreConfig(cfg.Seed)
	if err := ccfg.Validate(); err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	if ccfg.ModelAttack != nil {
		return nil, fmt.Errorf("node: model attacks need the omniscient single-process engine (population statistics of all honest updates)")
	}
	if ccfg.RotateLeaders {
		return nil, fmt.Errorf("node: leader rotation is not supported by the distributed engine")
	}
	if cfg.Plan != nil && len(cfg.Plan.LeaderFailures) > 0 {
		return nil, fmt.Errorf("node: LeaderFailures target the simulator engines; crash the leader's process instead")
	}
	tree := ccfg.Tree
	devices := tree.NumDevices()
	if int(cfg.ID) < 0 || int(cfg.ID) > devices {
		return nil, fmt.Errorf("node: id %d out of range [0, %d]", cfg.ID, devices)
	}
	stall := cfg.StallAfter
	if stall <= 0 {
		stall = 5 * time.Second
	}
	gwait := cfg.GlobalWait
	if gwait <= 0 {
		gwait = time.Duration(tree.Depth()+2) * stall
		if core.GlobalNeedsBallots(ccfg) {
			// The ballot exchange adds one request/response hop at the root
			// before the global can form.
			gwait += 2 * stall
		}
	}
	workers := ccfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalEvery := ccfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	e := &Engine{
		cfg:      cfg,
		ccfg:     ccfg,
		tree:     tree,
		id:       cfg.ID,
		devices:  devices,
		isRoot:   int(cfg.ID) == devices,
		sizes:    ccfg.ModelSizes(),
		workers:  workers,
		evalEver: evalEvery,
		stall:    stall,
		gwait:    gwait,
		cdc:      ccfg.Codec,
		cs:       codec.NewScratch(),
		led:      map[int][]int{},
		produces: map[[2]int]bool{},
		pending:  map[pendKey][]transport.Frame{},
	}
	for lvl := 1; lvl <= tree.Bottom(); lvl++ {
		for ci, c := range tree.Clusters[lvl] {
			if c.Leader == int(cfg.ID) {
				e.led[lvl] = append(e.led[lvl], ci)
			}
		}
	}
	if e.isRoot {
		e.evalModel = nn.NewShaped(e.sizes...)
	} else {
		e.model = nn.NewShaped(e.sizes...)
		e.ws = nn.NewWorkspace(e.model)
	}
	if e.isRoot || len(e.led) > 0 {
		e.wa = core.NewWireAggregator(&e.ccfg)
	}
	// One queue for all kinds: the engine is single-threaded, and the
	// pending buffer re-sorts out-of-phase frames. Capacity covers a full
	// round of traffic from every peer with room for fault duplicates.
	e.q = cfg.Endpoint.Bus().Subscribe(4*(devices+1)+16, KindUpdate, KindPartial, KindGlobal, KindProposal, KindBallot)
	e.busDone = cfg.Endpoint.Bus().Done()
	return e, nil
}

// logf emits a progress line when a logger is configured.
func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// trains reports whether device id computes an update this round: not
// cohort-skipped/churned by the core draw, and not down in the fault plan.
// Every process evaluates this identically — the no-signaling invariant.
func (e *Engine) trains(id, round int, skip map[int]bool) bool {
	return !skip[id] && !e.cfg.Plan.DeviceDown(id, round)
}

// clusterProduces reports whether cluster (lvl, ci) contributes a partial
// this round under the deterministic availability draws: a bottom cluster
// produces when any member trains, an upper one when any child produces.
// Memoized per round.
func (e *Engine) clusterProduces(lvl, ci, round int, skip map[int]bool) bool {
	key := [2]int{lvl, ci}
	if v, ok := e.produces[key]; ok {
		return v
	}
	c := e.tree.Clusters[lvl][ci]
	out := false
	if lvl == e.tree.Bottom() {
		for _, m := range c.Members {
			if e.trains(m, round, skip) {
				out = true
				break
			}
		}
	} else {
		for mi := range c.Members {
			if e.clusterProduces(lvl+1, core.ChildClusterIndex(e.tree, c, mi), round, skip) {
				out = true
				break
			}
		}
	}
	e.produces[key] = out
	return out
}
