package node

import (
	"fmt"
	"time"

	"abdhfl/internal/consensus"
	"abdhfl/internal/core"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
	"abdhfl/internal/transport"
)

// pendKey indexes buffered out-of-phase frames by (kind, round).
type pendKey struct {
	kind  uint8
	round uint32
}

// Run executes the node's roles for every configured round and returns its
// result. It drives everything on the calling goroutine: the engine is a
// sequential protocol actor, like RunHFL's round loop, with concurrency
// confined to the transport underneath.
func (e *Engine) Run() (*Result, error) {
	seedRNG := rng.New(e.cfg.Seed)
	e.global = nn.New(seedRNG.Derive("init"), e.sizes...).Params()
	e.dim = len(e.global)
	for round := 0; round < e.ccfg.Rounds; round++ {
		e.curRound = round
		if err := e.runRound(seedRNG, round); err != nil {
			return nil, err
		}
		e.prunePending(round)
	}
	if len(e.res.Curve) > 0 {
		e.res.FinalAccuracy = e.res.Curve[len(e.res.Curve)-1].Accuracy
	}
	e.res.FinalParams = e.global
	return &e.res, nil
}

// runRound executes one global round for this node's roles.
func (e *Engine) runRound(seedRNG *rng.RNG, round int) error {
	roundRNG := seedRNG.Derive(fmt.Sprintf("round-%d", round))
	skip := core.DrawRoundSkip(e.ccfg, roundRNG)
	clear(e.produces)

	if e.isRoot {
		// The root tallies the round's deterministic trainer activations —
		// the same count RunHFL takes from its trainer's active set.
		for id := 0; id < e.devices; id++ {
			if e.trains(id, round, skip) {
				e.res.TrainerActivations++
			}
		}
		return e.rootRound(roundRNG, round, skip)
	}

	// --- Local training (Algorithm 2), one device's slice of it.
	var update tensor.Vector
	if e.trains(int(e.id), round, skip) {
		e.model.SetParams(e.global)
		r := roundRNG.Derive(fmt.Sprintf("device-%d", e.id))
		nn.SGDWS(e.model, e.ws, e.ccfg.ClientData[e.id], e.ccfg.Local, r)
		e.update = e.model.ParamsInto(e.update)
		update = e.update
	}

	// --- Uplink: non-leader devices ship the update to their bottom
	// leader (one codec hop); a bottom leader's own update stays local and
	// takes the hop as an in-place transcode. Omission-Byzantine devices
	// train and then silently withhold — their leader stalls them out.
	bc := e.tree.ClusterOf(int(e.id))
	if update != nil {
		if bc.Leader == int(e.id) {
			if err := e.transcodeLocal(update); err != nil {
				return fmt.Errorf("node %d: round %d own update codec: %w", e.id, round, err)
			}
		} else if !e.cfg.Plan.OmitUpload(int(e.id), round) {
			payload, err := e.encodeModel(update)
			if err != nil {
				return fmt.Errorf("node %d: round %d update codec: %w", e.id, round, err)
			}
			if err := e.send(KindUpdate, bc.Leader, round, payload); err != nil {
				return err
			}
		}
	}

	// --- Aggregation duties (Algorithms 3-4), bottom level up, exactly
	// RunHFL's level loop restricted to the clusters this node leads.
	// Partials whose parent leader is this same process are handed over
	// locally (with the codec hop applied in place); everything else
	// crosses the wire.
	selfPartials := map[[2]int]tensor.Vector{}
	selfAudits := map[[2]int][]WireAudit{}
	for lvl := e.tree.Bottom(); lvl >= 1; lvl-- {
		for _, ci := range e.led[lvl] {
			if err := e.leadCluster(roundRNG, round, lvl, ci, skip, update, selfPartials, selfAudits); err != nil {
				return err
			}
		}
	}

	// --- Dissemination (Algorithm 5): wait for the round's global model,
	// relay the payload bytes verbatim to every cluster this node leads
	// (all broadcast copies carry the same encoding), then decode it
	// against the previous global.
	payload, err := e.awaitGlobal(round)
	if err != nil {
		return err
	}
	for lvl := 1; lvl <= e.tree.Bottom(); lvl++ {
		for _, ci := range e.led[lvl] {
			for _, m := range e.tree.Clusters[lvl][ci].Members {
				if m != int(e.id) {
					if err := e.send(KindGlobal, m, round, payload); err != nil {
						return err
					}
				}
			}
		}
	}
	newGlobal := tensor.NewVector(e.dim)
	if err := e.decodeModel(newGlobal, payload); err != nil {
		return fmt.Errorf("node %d: round %d global decode: %w", e.id, round, err)
	}
	e.global = newGlobal
	e.logf("node %d: round %d done", e.id, round)
	return nil
}

// leadCluster collects cluster (lvl, ci)'s inputs, aggregates them, and
// routes the partial toward the root.
func (e *Engine) leadCluster(roundRNG *rng.RNG, round, lvl, ci int, skip map[int]bool, ownUpdate tensor.Vector, selfPartials map[[2]int]tensor.Vector, selfAudits map[[2]int][]WireAudit) error {
	c := e.tree.Clusters[lvl][ci]
	bottom := lvl == e.tree.Bottom()
	kind := KindPartial
	if bottom {
		kind = KindUpdate
	}

	// Expected contributors follow from the deterministic availability
	// draws alone: bottom members that train, upper members whose child
	// cluster produces. Contributions from this same process short-circuit
	// the wire.
	local := map[int]tensor.Vector{}
	var audits []WireAudit
	expect := make(map[transport.NodeID]bool, len(c.Members))
	for mi, m := range c.Members {
		if bottom {
			if !e.trains(m, round, skip) {
				continue
			}
			if m == int(e.id) {
				if ownUpdate != nil {
					local[m] = ownUpdate
				}
				continue
			}
		} else {
			cci := core.ChildClusterIndex(e.tree, c, mi)
			if !e.clusterProduces(lvl+1, cci, round, skip) {
				continue
			}
			if m == int(e.id) {
				key := [2]int{lvl + 1, cci}
				// A missing entry means this process's own child cluster
				// starved (e.g. every input dropped); no point stalling on
				// ourselves.
				if v, ok := selfPartials[key]; ok {
					local[m] = v
					audits = append(audits, selfAudits[key]...)
				}
				continue
			}
		}
		expect[transport.NodeID(m)] = true
	}

	// Deeper collects wait longer: a child cluster may legitimately spend
	// its own full deadline stalling out a silent member before it sends.
	wait := time.Duration(e.tree.Bottom()-lvl+1) * e.stall
	got, err := e.collect(kind, round, expect, wait)
	if err != nil {
		return err
	}

	// Assemble inputs in member order — the order every aggregation rule
	// and quorum draw in the core engine assumes.
	vecs := make([]tensor.Vector, 0, len(c.Members))
	ids := make([]int, 0, len(c.Members))
	for _, m := range c.Members {
		if v, ok := local[m]; ok {
			vecs = append(vecs, v)
			ids = append(ids, m)
			continue
		}
		raw, ok := got[transport.NodeID(m)]
		if !ok {
			continue
		}
		var mbytes []byte
		if bottom {
			mbytes = raw
		} else {
			var sub []WireAudit
			mbytes, sub, err = decodePartial(raw)
			if err != nil {
				return fmt.Errorf("node %d: round %d cluster (%d,%d) partial from %d: %w", e.id, round, lvl, ci, m, err)
			}
			audits = append(audits, sub...)
		}
		v := tensor.NewVector(e.dim)
		if err := e.decodeModel(v, mbytes); err != nil {
			return fmt.Errorf("node %d: round %d cluster (%d,%d) model from %d: %w", e.id, round, lvl, ci, m, err)
		}
		vecs = append(vecs, v)
		ids = append(ids, m)
	}
	if len(vecs) == 0 {
		// Starved entirely (expected contributors all stalled): contribute
		// nothing, like RunHFL's empty-cluster continue; the level above
		// stalls this cluster out in turn.
		return nil
	}

	vecs, ids = core.ApplyQuorum(e.ccfg, roundRNG, lvl, ci, vecs, ids)
	agg, verdict, err := e.wa.AggregateCluster(roundRNG, c, vecs, ids, tensor.NewVector(e.dim), round)
	if err != nil {
		return fmt.Errorf("node %d: round %d cluster (%d,%d): %w", e.id, round, lvl, ci, err)
	}
	audits = append(audits, WireAudit{
		Level: lvl, Cluster: ci, Round: round,
		Rule: verdict.Rule, Kept: verdict.Kept, Clipped: verdict.Clipped, Discarded: verdict.Discarded,
		Transfers: verdict.Comm.ModelTransfers, Scalars: verdict.Comm.ScalarMessages,
	})

	// Route the partial: level-1 clusters feed the root; deeper ones feed
	// the parent cluster's leader, locally when that leader is this same
	// process (the partial takes the codec hop in place either way).
	parent := int(RootID(e.tree))
	if lvl > 1 {
		parent = e.tree.Parent(lvl, ci).Leader
	}
	if parent == int(e.id) {
		if err := e.transcodeLocal(agg); err != nil {
			return fmt.Errorf("node %d: round %d cluster (%d,%d) partial codec: %w", e.id, round, lvl, ci, err)
		}
		selfPartials[[2]int{lvl, ci}] = agg
		selfAudits[[2]int{lvl, ci}] = audits
		return nil
	}
	mbytes, err := e.encodeModel(agg)
	if err != nil {
		return fmt.Errorf("node %d: round %d cluster (%d,%d) partial codec: %w", e.id, round, lvl, ci, err)
	}
	payload, err := encodePartial(mbytes, audits)
	if err != nil {
		return err
	}
	return e.send(KindPartial, parent, round, payload)
}

// rootRound collects the level-1 partials, forms and disseminates the
// global model, and keeps the run's books (σ-accounting, audit, curve) —
// RunHFL's top-of-round duties.
func (e *Engine) rootRound(roundRNG *rng.RNG, round int, skip map[int]bool) error {
	commBefore := e.res.Comm
	level1 := e.tree.Clusters[1]
	expect := make(map[transport.NodeID]bool, len(level1))
	for ci, c := range level1 {
		if e.clusterProduces(1, ci, round, skip) {
			expect[transport.NodeID(c.Leader)] = true
		}
	}
	wait := time.Duration(e.tree.Bottom()+1) * e.stall
	got, err := e.collect(KindPartial, round, expect, wait)
	if err != nil {
		return err
	}

	partials := make([]tensor.Vector, len(level1))
	var audits []WireAudit
	for ci, c := range level1 {
		raw, ok := got[transport.NodeID(c.Leader)]
		if !ok {
			continue
		}
		mbytes, sub, err := decodePartial(raw)
		if err != nil {
			return fmt.Errorf("root: round %d partial from %d: %w", round, c.Leader, err)
		}
		v := tensor.NewVector(e.dim)
		if err := e.decodeModel(v, mbytes); err != nil {
			return fmt.Errorf("root: round %d model from %d: %w", round, c.Leader, err)
		}
		partials[ci] = v
		audits = append(audits, sub...)
	}

	// --- ABA ballot exchange: when the global rule is the randomized
	// consensus, the root ships each contributing leader the decoded
	// proposal set and collects their validation ballots before agreeing.
	var ballots *consensus.BallotSet
	if core.GlobalNeedsBallots(e.ccfg) && e.tree.Bottom() > 0 {
		if ballots, err = e.exchangeBallots(round, partials); err != nil {
			return err
		}
	}

	// --- Global aggregation (Algorithm 6).
	newGlobal, verdict, err := e.wa.AggregateTopBallots(roundRNG, partials, tensor.NewVector(e.dim), round, ballots)
	if err != nil {
		return fmt.Errorf("root: round %d: %w", round, err)
	}
	audits = append(audits, WireAudit{
		Level: 0, Cluster: 0, Round: round,
		Rule: verdict.Rule, Kept: verdict.Kept, Clipped: verdict.Clipped, Discarded: verdict.Discarded,
		Transfers: verdict.Comm.ModelTransfers, Scalars: verdict.Comm.ScalarMessages,
		Excluded: verdict.Excluded,
	})
	sortAudits(audits)
	for _, a := range audits {
		e.res.Comm.ModelTransfers += a.Transfers
		e.res.Comm.ScalarMessages += a.Scalars
	}
	e.res.ExcludedByConsensus += verdict.Excluded
	e.res.Audit = append(e.res.Audit, audits...)
	e.res.Comm.Add(core.DisseminationCost(e.tree))

	// --- Dissemination: encode against the previous global (the reference
	// every receiver still holds), apply the same lossy hop to the root's
	// own copy, and hand the payload to the top members for relay.
	payload, err := e.encodeModel(newGlobal)
	if err != nil {
		return fmt.Errorf("root: round %d dissemination codec: %w", round, err)
	}
	if e.cdc != nil {
		if err := e.decodeModel(newGlobal, payload); err != nil {
			return fmt.Errorf("root: round %d dissemination codec: %w", round, err)
		}
	}
	e.global = newGlobal
	for _, m := range e.tree.Top().Members {
		if err := e.send(KindGlobal, m, round, payload); err != nil {
			return err
		}
	}

	// --- Evaluation, on RunHFL's cadence.
	if (round+1)%e.evalEver == 0 || round == e.ccfg.Rounds-1 {
		e.evalModel.SetParams(e.global)
		acc, loss := nn.Evaluate(e.evalModel, e.ccfg.TestData, e.workers)
		stat := core.RoundStat{Round: round + 1, Accuracy: acc, Loss: loss}
		e.res.Curve = append(e.res.Curve, stat)
		if e.ccfg.OnRound != nil {
			e.ccfg.OnRound(stat)
		}
	}

	// Wire-byte accounting: every model transfer this round shipped one
	// codec-encoded vector.
	if e.cdc != nil {
		moved := e.res.Comm.ModelTransfers - commBefore.ModelTransfers
		e.res.Comm.WireBytes += int64(moved) * int64(e.cdc.WireBytes(e.dim))
	}
	e.logf("root: round %d done (%d partials)", round, len(got))
	return nil
}

// exchangeBallots runs the ABA proposal/ballot wire exchange: the root
// sends each contributing level-1 leader the full decoded proposal set
// plus that leader's consensus member index (KindProposal), then collects
// the leaders' validation ballots (KindBallot). Leaders that never answer
// — a dropped proposal or ballot under the fault plan — come back as nil
// rows: silent consensus members the randomized protocol absorbs within
// its fault budget (and recomputes locally beyond it).
func (e *Engine) exchangeBallots(round int, partials []tensor.Vector) (*consensus.BallotSet, error) {
	vecs := make([]tensor.Vector, 0, len(partials))
	var leaders []int
	for ci, p := range partials {
		if p != nil {
			vecs = append(vecs, p)
			leaders = append(leaders, e.tree.Clusters[1][ci].Leader)
		}
	}
	if len(vecs) == 0 {
		return nil, nil
	}
	expect := make(map[transport.NodeID]bool, len(leaders))
	for m, ld := range leaders {
		if err := e.send(KindProposal, ld, round, encodeProposals(m, vecs)); err != nil {
			return nil, err
		}
		expect[transport.NodeID(ld)] = true
	}
	got, err := e.collect(KindBallot, round, expect, 2*e.stall)
	if err != nil {
		return nil, err
	}
	set := &consensus.BallotSet{Rows: make([][]bool, len(vecs))}
	for m, ld := range leaders {
		raw, ok := got[transport.NodeID(ld)]
		if !ok {
			continue
		}
		member, bits, err := decodeBallot(raw)
		if err != nil {
			return nil, fmt.Errorf("root: round %d ballot from %d: %w", round, ld, err)
		}
		if member != m || len(bits) != len(vecs) {
			return nil, fmt.Errorf("root: round %d ballot from %d: member %d want %d, %d bits for %d proposals", round, ld, member, m, len(bits), len(vecs))
		}
		set.Rows[m] = bits
	}
	return set, nil
}

// answerProposal serves one ballot-exchange proposal: the leader computes
// its validation ballot over the root's proposal set (the exact decoded
// vectors the root holds, so the bits match a central computation) and
// ships it back.
func (e *Engine) answerProposal(f transport.Frame) error {
	if e.wa == nil {
		return fmt.Errorf("node %d: round %d proposal sent to a non-leader", e.id, f.Round)
	}
	member, proposals, err := decodeProposals(f.Payload)
	if err != nil {
		return fmt.Errorf("node %d: round %d proposal: %w", e.id, f.Round, err)
	}
	bits := e.wa.ShardBallot(member, proposals)
	return e.send(KindBallot, int(RootID(e.tree)), int(f.Round), encodeBallot(member, bits))
}

// send ships one protocol frame.
func (e *Engine) send(kind uint8, to, round int, payload []byte) error {
	f := transport.Frame{Kind: kind, Round: uint32(round), Payload: payload}
	if err := e.cfg.Endpoint.Send(transport.NodeID(to), &f); err != nil {
		return fmt.Errorf("node %d: send kind %d to %d: %w", e.id, kind, to, err)
	}
	return nil
}

// collect gathers one frame from every expected sender, timing out
// stragglers after wait — the stall-and-continue that realizes quorum
// exclusions on the wire. Non-matching frames are buffered for the
// protocol step (or same-process collect) they belong to.
func (e *Engine) collect(kind uint8, round int, expect map[transport.NodeID]bool, wait time.Duration) (map[transport.NodeID][]byte, error) {
	got := make(map[transport.NodeID][]byte, len(expect))
	if len(expect) == 0 {
		return got, nil
	}
	waiting := make(map[transport.NodeID]bool, len(expect))
	det := transport.NewStallDetector(wait, 1, wait)
	now := time.Now()
	for id := range expect {
		waiting[id] = true
		det.Arm(id, now)
	}
	e.takePending(kind, round, waiting, got, det)
	for len(waiting) > 0 {
		var deadline time.Time
		for id := range waiting {
			if d, ok := det.Deadline(id); ok && (deadline.IsZero() || d.Before(deadline)) {
				deadline = d
			}
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case f := <-e.q.C:
			timer.Stop()
			e.accept(f, kind, round, waiting, got, det)
		case <-e.busDone:
			timer.Stop()
			return got, fmt.Errorf("node %d: transport closed while collecting kind %d round %d", e.id, kind, round)
		case <-timer.C:
			for _, p := range det.Stalled(time.Now()) {
				if waiting[p] {
					delete(waiting, p)
					e.res.Stalls++
					e.logf("node %d: round %d stalled waiting on %d (kind %d)", e.id, round, p, kind)
				}
			}
		}
	}
	return got, nil
}

// accept matches one received frame against an in-progress collect,
// buffering frames that belong elsewhere and dropping stale rounds.
func (e *Engine) accept(f transport.Frame, kind uint8, round int, waiting map[transport.NodeID]bool, got map[transport.NodeID][]byte, det *transport.StallDetector) {
	if f.Kind == kind && int(f.Round) == round && waiting[f.From] {
		det.Heard(f.From)
		got[f.From] = f.Payload
		delete(waiting, f.From)
		return
	}
	e.stash(f)
}

// awaitGlobal blocks until the round's disseminated global model arrives,
// serving any ballot-exchange proposals that land (or were buffered) in
// the meantime — a level-1 leader is always parked here when the root's
// KindProposal arrives.
func (e *Engine) awaitGlobal(round int) ([]byte, error) {
	pkey := pendKey{KindProposal, uint32(round)}
	for _, f := range e.pending[pkey] {
		if err := e.answerProposal(f); err != nil {
			return nil, err
		}
	}
	delete(e.pending, pkey)
	key := pendKey{KindGlobal, uint32(round)}
	if fs := e.pending[key]; len(fs) > 0 {
		payload := fs[0].Payload
		if len(fs) == 1 {
			delete(e.pending, key)
		} else {
			e.pending[key] = fs[1:]
		}
		return payload, nil
	}
	deadline := time.Now().Add(e.gwait)
	for {
		timer := time.NewTimer(time.Until(deadline))
		select {
		case f := <-e.q.C:
			timer.Stop()
			if f.Kind == KindGlobal && int(f.Round) == round {
				return f.Payload, nil
			}
			if f.Kind == KindProposal && int(f.Round) == round {
				if err := e.answerProposal(f); err != nil {
					return nil, err
				}
				continue
			}
			e.stash(f)
		case <-e.busDone:
			timer.Stop()
			return nil, fmt.Errorf("node %d: transport closed while awaiting round %d global", e.id, round)
		case <-timer.C:
			return nil, fmt.Errorf("node %d: round %d global model never arrived (waited %v)", e.id, round, e.gwait)
		}
	}
}

// stash buffers an out-of-phase frame for a later protocol step; frames
// from already-finished rounds are dropped.
func (e *Engine) stash(f transport.Frame) {
	if int(f.Round) < e.curRound {
		return
	}
	key := pendKey{f.Kind, f.Round}
	e.pending[key] = append(e.pending[key], f)
}

// takePending consumes buffered frames matching an in-progress collect.
func (e *Engine) takePending(kind uint8, round int, waiting map[transport.NodeID]bool, got map[transport.NodeID][]byte, det *transport.StallDetector) {
	key := pendKey{kind, uint32(round)}
	fs, ok := e.pending[key]
	if !ok {
		return
	}
	rest := fs[:0]
	for _, f := range fs {
		if waiting[f.From] {
			det.Heard(f.From)
			got[f.From] = f.Payload
			delete(waiting, f.From)
		} else {
			rest = append(rest, f)
		}
	}
	if len(rest) == 0 {
		delete(e.pending, key)
	} else {
		e.pending[key] = rest
	}
}

// prunePending drops buffered frames from the just-finished round.
func (e *Engine) prunePending(round int) {
	for k := range e.pending {
		if int(k.round) <= round {
			delete(e.pending, k)
		}
	}
}
