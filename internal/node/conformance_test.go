package node

import (
	"math"
	"reflect"
	"testing"
	"time"

	"abdhfl"
	"abdhfl/internal/fault"
	"abdhfl/internal/telemetry"
)

// testScenario is small enough for multi-backend runs under -race but
// exercises both aggregation paths: a BRA (multi-krum) at the bottom
// level and a CBA (validation voting) at the top, over 2 bottom clusters
// of 3 devices (ids 0-5; leaders 0 and 3; root 6).
func testScenario(codecName string) abdhfl.Scenario {
	return abdhfl.Scenario{
		Levels: 2, ClusterSize: 3, TopNodes: 2,
		Rounds: 3, LocalIters: 2, BatchSize: 8, LearningRate: 0.05,
		SamplesPerClient: 24, TestSamples: 80, ValidationSamples: 40,
		Aggregator: "multi-krum", TopProtocol: "voting",
		EvalEvery: 1, Seed: 7, Workers: 2,
		Codec: codecName,
	}.WithDefaults()
}

func build(t *testing.T, s abdhfl.Scenario) *abdhfl.Materials {
	t.Helper()
	m, err := abdhfl.Build(s)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func canonInts(v []int) []int {
	if len(v) == 0 {
		return nil
	}
	return append([]int(nil), v...)
}

// canonAudit strips the fields the core engine does not report (step comm
// costs ride only on the wire audit) and normalizes empty slices.
func canonAudit(a WireAudit) WireAudit {
	a.Transfers, a.Scalars, a.Excluded = 0, 0, 0
	a.Kept, a.Clipped, a.Discarded = canonInts(a.Kept), canonInts(a.Clipped), canonInts(a.Discarded)
	return a
}

func canonAudits(in []WireAudit) []WireAudit {
	out := make([]WireAudit, len(in))
	for i, a := range in {
		out[i] = canonAudit(a)
	}
	return out
}

func sameParams(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: dim %d != %d", what, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: coordinate %d differs: %v != %v", what, i, want[i], got[i])
		}
	}
}

// TestNodeClusterMatchesCore is the distributed≡single-process golden: a
// full loopback cluster run must reproduce core.RunHFL byte for byte —
// final model, accuracy curve, σ-accounting, and the filter audit — with
// and without an update codec in the path.
func TestNodeClusterMatchesCore(t *testing.T) {
	for _, codecName := range []string{"", "delta-int8"} {
		name := codecName
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			s := testScenario(codecName)

			cm := build(t, s)
			var coreAudits []WireAudit
			cm.OnFilter = func(d telemetry.FilterDecision) {
				coreAudits = append(coreAudits, WireAudit{
					Level: d.Level, Cluster: d.Cluster, Round: d.Round, Rule: d.Rule,
					Kept: canonInts(d.Kept), Clipped: canonInts(d.Clipped), Discarded: canonInts(d.Discarded),
				})
			}
			want, err := cm.RunHFL(s.Seed)
			if err != nil {
				t.Fatalf("core run: %v", err)
			}

			got, err := RunCluster(ClusterOpts{
				Materials:  build(t, s),
				Seed:       s.Seed,
				Backend:    BackendLoopback,
				StallAfter: 2 * time.Second,
			})
			if err != nil {
				t.Fatalf("cluster run: %v", err)
			}
			root := got.Root

			sameParams(t, "final params", want.FinalParams, root.FinalParams)
			for id, r := range got.Results {
				sameParams(t, "node model", want.FinalParams, r.FinalParams)
				if r.Stalls != 0 {
					t.Errorf("node %d: %d stalls on a fault-free run", id, r.Stalls)
				}
			}
			if !reflect.DeepEqual(want.Curve, root.Curve) {
				t.Errorf("curve: core %+v != node %+v", want.Curve, root.Curve)
			}
			if want.FinalAccuracy != root.FinalAccuracy {
				t.Errorf("final accuracy: %v != %v", want.FinalAccuracy, root.FinalAccuracy)
			}
			if want.Comm != root.Comm {
				t.Errorf("comm: core %+v != node %+v", want.Comm, root.Comm)
			}
			if want.ExcludedByConsensus != root.ExcludedByConsensus {
				t.Errorf("excluded: %d != %d", want.ExcludedByConsensus, root.ExcludedByConsensus)
			}
			if want.TrainerActivations != root.TrainerActivations {
				t.Errorf("trainer activations: %d != %d", want.TrainerActivations, root.TrainerActivations)
			}
			if !reflect.DeepEqual(coreAudits, canonAudits(root.Audit)) {
				t.Errorf("filter audit diverges:\ncore: %+v\nnode: %+v", coreAudits, canonAudits(root.Audit))
			}
		})
	}
}

// TestNodeClusterMatchesCoreABA repeats the distributed≡single-process
// golden with the randomized common-coin ABA at the top level. This is the
// path that exercises the wire ballot exchange (KindProposal/KindBallot):
// the root ships member proposals to the contributing leaders, each leader
// scores them on its validation shard and answers with its ballot row, and
// the injected BallotSet must reproduce the core engine's locally computed
// ballots — and therefore its decisions — byte for byte.
func TestNodeClusterMatchesCoreABA(t *testing.T) {
	s := testScenario("")
	s.TopProtocol = "aba"

	want, err := build(t, s).RunHFL(s.Seed)
	if err != nil {
		t.Fatalf("core run: %v", err)
	}

	got, err := RunCluster(ClusterOpts{
		Materials:  build(t, s),
		Seed:       s.Seed,
		Backend:    BackendLoopback,
		StallAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	root := got.Root

	sameParams(t, "final params", want.FinalParams, root.FinalParams)
	for id, r := range got.Results {
		sameParams(t, "node model", want.FinalParams, r.FinalParams)
		if r.Stalls != 0 {
			t.Errorf("node %d: %d stalls on a fault-free run", id, r.Stalls)
		}
	}
	if !reflect.DeepEqual(want.Curve, root.Curve) {
		t.Errorf("curve: core %+v != node %+v", want.Curve, root.Curve)
	}
	if want.FinalAccuracy != root.FinalAccuracy {
		t.Errorf("final accuracy: %v != %v", want.FinalAccuracy, root.FinalAccuracy)
	}
	if want.Comm != root.Comm {
		t.Errorf("comm: core %+v != node %+v", want.Comm, root.Comm)
	}
	if want.ExcludedByConsensus != root.ExcludedByConsensus {
		t.Errorf("excluded: %d != %d", want.ExcludedByConsensus, root.ExcludedByConsensus)
	}
}

// TestLoopbackTCPConformanceABA is the backend golden for the ballot
// exchange under faults: with drops and duplicates hitting the proposal and
// ballot frames (they are FaultableKinds), the deterministic fault fates
// must realize the same silent-member pattern on both backends, so the
// randomized protocol's outcome — and every node's final model — agrees.
func TestLoopbackTCPConformanceABA(t *testing.T) {
	s := testScenario("")
	s.TopProtocol = "aba"
	plan := &fault.Plan{Seed: 9, Drop: 0.1, Duplicate: 0.2}
	run := func(backend string) *ClusterResult {
		t.Helper()
		r, err := RunCluster(ClusterOpts{
			Materials:  build(t, s),
			Seed:       s.Seed,
			Backend:    backend,
			Plan:       plan,
			StallAfter: 500 * time.Millisecond,
			GlobalWait: 8 * time.Second,
		})
		if err != nil {
			t.Fatalf("%s run: %v", backend, err)
		}
		return r
	}
	lb := run(BackendLoopback)
	tcp := run(BackendTCP)

	if !reflect.DeepEqual(lb.Root, tcp.Root) {
		t.Errorf("root results diverge:\nloopback: %+v\ntcp:      %+v", lb.Root, tcp.Root)
	}
	for id := range lb.Results {
		sameParams(t, "node model", lb.Results[id].FinalParams, tcp.Results[id].FinalParams)
	}
}

// TestLoopbackTCPConformance is the backend golden: the same scenario and
// seed must produce identical protocol outcomes over in-process channels
// and over real sockets, under increasingly hostile fault plans. The
// comparable stats subset shrinks as faults widen the shutdown race on
// receive-side counters (see StatsSnapshot.Deterministic/SenderSide).
func TestLoopbackTCPConformance(t *testing.T) {
	cases := []struct {
		name  string
		codec string
		plan  *fault.Plan
		stats string // "full", "sender", "results"
	}{
		{name: "clean", stats: "full"},
		{name: "clean-codec", codec: "delta-int8", stats: "full"},
		{name: "dup-reorder", plan: &fault.Plan{Seed: 99, Duplicate: 0.3, Reorder: 0.5, ReorderDelay: 15}, stats: "sender"},
		{name: "drop", plan: &fault.Plan{Seed: 5, Drop: 0.15}, stats: "results"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testScenario(tc.codec)
			run := func(backend string) *ClusterResult {
				t.Helper()
				r, err := RunCluster(ClusterOpts{
					Materials:  build(t, s),
					Seed:       s.Seed,
					Backend:    backend,
					Plan:       tc.plan,
					StallAfter: 500 * time.Millisecond,
					GlobalWait: 8 * time.Second,
				})
				if err != nil {
					t.Fatalf("%s run: %v", backend, err)
				}
				return r
			}
			lb := run(BackendLoopback)
			tcp := run(BackendTCP)

			if !reflect.DeepEqual(lb.Root, tcp.Root) {
				t.Errorf("root results diverge:\nloopback: %+v\ntcp:      %+v", lb.Root, tcp.Root)
			}
			for id := range lb.Results {
				sameParams(t, "node model", lb.Results[id].FinalParams, tcp.Results[id].FinalParams)
				if lb.Results[id].Stalls != tcp.Results[id].Stalls {
					t.Errorf("node %d stalls: loopback %d != tcp %d", id, lb.Results[id].Stalls, tcp.Results[id].Stalls)
				}
			}
			for id := range lb.Stats {
				switch tc.stats {
				case "full":
					if a, b := lb.Stats[id].Deterministic(), tcp.Stats[id].Deterministic(); a != b {
						t.Errorf("node %d stats: loopback %+v != tcp %+v", id, a, b)
					}
				case "sender":
					if a, b := lb.Stats[id].SenderSide(), tcp.Stats[id].SenderSide(); a != b {
						t.Errorf("node %d sender stats: loopback %+v != tcp %+v", id, a, b)
					}
				}
			}
			if tc.plan == nil && lb.Total.FaultDropped+lb.Total.FaultDuplicated+lb.Total.FaultDelayed != 0 {
				t.Errorf("fault counters on a clean run: %+v", lb.Total)
			}
			if tc.plan != nil && tc.plan.Drop > 0 && lb.Total.FaultDropped == 0 {
				t.Errorf("drop plan injected nothing")
			}
		})
	}
}
