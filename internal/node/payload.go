package node

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"abdhfl/internal/codec"
	"abdhfl/internal/tensor"
)

// Model payload encoding. With a codec configured, a model crossing the
// wire is exactly one codec hop: the sender EncodeInto's the vector (Delta
// reference = the round-start global model both ends hold from
// dissemination) and the receiver DecodeInto's the same bytes against the
// same reference — the distributed realization of core.RunHFL's per-hop
// Transcode, which is what keeps the two engines byte-identical. Without a
// codec, payloads are raw little-endian float64s (lossless).

// encodeModel returns v's wire payload against the current global as the
// codec reference.
func (e *Engine) encodeModel(v tensor.Vector) ([]byte, error) {
	if e.cdc != nil {
		e.cs.Ref = e.global
		buf := make([]byte, e.cdc.WireBytes(len(v)))
		n, err := e.cdc.EncodeInto(buf, v, e.cs)
		if err != nil {
			return nil, err
		}
		return buf[:n], nil
	}
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf, nil
}

// decodeModel reconstructs a wire payload into dst against the current
// global as the codec reference.
func (e *Engine) decodeModel(dst tensor.Vector, src []byte) error {
	if e.cdc != nil {
		e.cs.Ref = e.global
		return e.cdc.DecodeInto(dst, src, e.cs)
	}
	if len(src) != 8*len(dst) {
		return fmt.Errorf("node: raw model payload is %d bytes, want %d", len(src), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// transcodeLocal applies the codec hop to a vector handed over locally
// (a leader's own update, or a partial whose parent leader is the same
// process): the value must degrade exactly as if it had crossed the wire.
func (e *Engine) transcodeLocal(v tensor.Vector) error {
	if e.cdc == nil {
		return nil
	}
	e.cs.Ref = e.global
	_, err := codec.Transcode(e.cdc, v, e.cs)
	return err
}

// Partial message wire format: [u32 LE model length][model payload][JSON
// audit list]. The audit list accumulates every WireAudit produced in the
// sender's subtree this round, so the root can reassemble the run-wide
// filter audit without a separate reporting channel.

// encodePartial frames a partial model payload with its subtree audits.
func encodePartial(model []byte, audits []WireAudit) ([]byte, error) {
	tail, err := json.Marshal(audits)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4+len(model)+len(tail))
	binary.LittleEndian.PutUint32(out, uint32(len(model)))
	copy(out[4:], model)
	copy(out[4+len(model):], tail)
	return out, nil
}

// decodePartial splits a partial message into its model payload and
// audits. The model bytes alias raw.
func decodePartial(raw []byte) (model []byte, audits []WireAudit, err error) {
	if len(raw) < 4 {
		return nil, nil, fmt.Errorf("node: partial message truncated (%d bytes)", len(raw))
	}
	n := int(binary.LittleEndian.Uint32(raw))
	if n < 0 || 4+n > len(raw) {
		return nil, nil, fmt.Errorf("node: partial model length %d exceeds message (%d bytes)", n, len(raw))
	}
	if err := json.Unmarshal(raw[4+n:], &audits); err != nil {
		return nil, nil, fmt.Errorf("node: partial audit list: %w", err)
	}
	return raw[4 : 4+n], audits, nil
}
