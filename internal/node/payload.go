package node

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"abdhfl/internal/codec"
	"abdhfl/internal/tensor"
)

// Model payload encoding. With a codec configured, a model crossing the
// wire is exactly one codec hop: the sender EncodeInto's the vector (Delta
// reference = the round-start global model both ends hold from
// dissemination) and the receiver DecodeInto's the same bytes against the
// same reference — the distributed realization of core.RunHFL's per-hop
// Transcode, which is what keeps the two engines byte-identical. Without a
// codec, payloads are raw little-endian float64s (lossless).

// encodeModel returns v's wire payload against the current global as the
// codec reference.
func (e *Engine) encodeModel(v tensor.Vector) ([]byte, error) {
	if e.cdc != nil {
		e.cs.Ref = e.global
		buf := make([]byte, e.cdc.WireBytes(len(v)))
		n, err := e.cdc.EncodeInto(buf, v, e.cs)
		if err != nil {
			return nil, err
		}
		return buf[:n], nil
	}
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf, nil
}

// decodeModel reconstructs a wire payload into dst against the current
// global as the codec reference.
func (e *Engine) decodeModel(dst tensor.Vector, src []byte) error {
	if e.cdc != nil {
		e.cs.Ref = e.global
		return e.cdc.DecodeInto(dst, src, e.cs)
	}
	if len(src) != 8*len(dst) {
		return fmt.Errorf("node: raw model payload is %d bytes, want %d", len(src), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// transcodeLocal applies the codec hop to a vector handed over locally
// (a leader's own update, or a partial whose parent leader is the same
// process): the value must degrade exactly as if it had crossed the wire.
func (e *Engine) transcodeLocal(v tensor.Vector) error {
	if e.cdc == nil {
		return nil
	}
	e.cs.Ref = e.global
	_, err := codec.Transcode(e.cdc, v, e.cs)
	return err
}

// Partial message wire format: [u32 LE model length][model payload][JSON
// audit list]. The audit list accumulates every WireAudit produced in the
// sender's subtree this round, so the root can reassemble the run-wide
// filter audit without a separate reporting channel.

// encodePartial frames a partial model payload with its subtree audits.
func encodePartial(model []byte, audits []WireAudit) ([]byte, error) {
	tail, err := json.Marshal(audits)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4+len(model)+len(tail))
	binary.LittleEndian.PutUint32(out, uint32(len(model)))
	copy(out[4:], model)
	copy(out[4+len(model):], tail)
	return out, nil
}

// ABA ballot-exchange wire formats. Proposals ship as raw little-endian
// float64s with NO codec hop: the root sends each contributing leader the
// exact decoded vectors it holds, so the leader's validation scores — and
// therefore its ballot bits — are bit-identical to what the root (or
// RunHFL) would compute centrally. A codec hop here would let quantization
// noise diverge the distributed ballots from the core engine's.

// encodeProposals frames a KindProposal payload: the receiver's consensus
// member index plus every contributing proposal in member order.
// Layout: [u32 member][u32 count][u32 dim][count×dim×f64 LE].
func encodeProposals(member int, proposals []tensor.Vector) []byte {
	dim := 0
	if len(proposals) > 0 {
		dim = len(proposals[0])
	}
	out := make([]byte, 12+8*len(proposals)*dim)
	binary.LittleEndian.PutUint32(out, uint32(member))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(proposals)))
	binary.LittleEndian.PutUint32(out[8:], uint32(dim))
	off := 12
	for _, p := range proposals {
		for _, x := range p {
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(x))
			off += 8
		}
	}
	return out
}

// decodeProposals parses a KindProposal payload.
func decodeProposals(raw []byte) (member int, proposals []tensor.Vector, err error) {
	if len(raw) < 12 {
		return 0, nil, fmt.Errorf("node: proposal message truncated (%d bytes)", len(raw))
	}
	member = int(binary.LittleEndian.Uint32(raw))
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	dim := int(binary.LittleEndian.Uint32(raw[8:]))
	if count < 0 || dim < 0 || len(raw) != 12+8*count*dim {
		return 0, nil, fmt.Errorf("node: proposal message is %d bytes, want %d", len(raw), 12+8*count*dim)
	}
	proposals = make([]tensor.Vector, count)
	off := 12
	for i := range proposals {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			off += 8
		}
		proposals[i] = v
	}
	return member, proposals, nil
}

// encodeBallot frames a KindBallot payload: the sender's consensus member
// index plus its validation-voting bits over the proposals.
// Layout: [u32 member][u32 nbits][nbits×u8].
func encodeBallot(member int, bits []bool) []byte {
	out := make([]byte, 8+len(bits))
	binary.LittleEndian.PutUint32(out, uint32(member))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(bits)))
	for i, b := range bits {
		if b {
			out[8+i] = 1
		}
	}
	return out
}

// decodeBallot parses a KindBallot payload.
func decodeBallot(raw []byte) (member int, bits []bool, err error) {
	if len(raw) < 8 {
		return 0, nil, fmt.Errorf("node: ballot message truncated (%d bytes)", len(raw))
	}
	member = int(binary.LittleEndian.Uint32(raw))
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	if n < 0 || len(raw) != 8+n {
		return 0, nil, fmt.Errorf("node: ballot message is %d bytes, want %d", len(raw), 8+n)
	}
	bits = make([]bool, n)
	for i := range bits {
		bits[i] = raw[8+i] != 0
	}
	return member, bits, nil
}

// decodePartial splits a partial message into its model payload and
// audits. The model bytes alias raw.
func decodePartial(raw []byte) (model []byte, audits []WireAudit, err error) {
	if len(raw) < 4 {
		return nil, nil, fmt.Errorf("node: partial message truncated (%d bytes)", len(raw))
	}
	n := int(binary.LittleEndian.Uint32(raw))
	if n < 0 || 4+n > len(raw) {
		return nil, nil, fmt.Errorf("node: partial model length %d exceeds message (%d bytes)", n, len(raw))
	}
	if err := json.Unmarshal(raw[4+n:], &audits); err != nil {
		return nil, nil, fmt.Errorf("node: partial audit list: %w", err)
	}
	return raw[4 : 4+n], audits, nil
}
