package chaostest_test

import (
	"testing"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/chaostest"
	"abdhfl/internal/consensus"
	"abdhfl/internal/core"
	"abdhfl/internal/fault"
	"abdhfl/internal/nn"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/realtime"
	"abdhfl/internal/trace"
)

var localCfg = nn.TrainConfig{LearningRate: 0.1, BatchSize: 16, Iterations: 5}

// chaosPlan composes every fault mode the taxonomy defines: transport loss,
// duplication and reordering, permanent crashes, transient churn, one
// omission-Byzantine device, and a failed bottom-level leader.
func chaosPlan(seed uint64, devices int) *fault.Plan {
	return fault.Merge(
		fault.Lossy(seed, 0.10, 0.05, 10),
		fault.CrashDevices(seed, devices, devices/8, 2),
		fault.ChurnDevices(seed+1, devices, devices/8, 1, 3),
		&fault.Plan{OmitProb: map[int]float64{1: 0.5}},
		&fault.Plan{LeaderFailures: []fault.LeaderFailure{{Level: 2, Cluster: 0, FromRound: 2}}},
	)
}

func pipelineOutcome(fx *chaostest.Fixture, seed uint64, rounds int) chaostest.Outcome {
	voting := consensus.Voting{}
	flight := trace.NewFlightRecorder(0)
	cfg := pipeline.Config{
		Flight:           flight,
		Tree:             fx.Tree,
		Rounds:           rounds,
		FlagLevel:        1,
		Quorum:           0.5,
		CollectTimeout:   300,
		Faults:           chaosPlan(seed, fx.Tree.NumDevices()),
		Local:            localCfg,
		PartialBRA:       aggregate.NewMultiKrum(0.25),
		TopVoting:        &voting,
		ClientData:       fx.Shards,
		TestData:         fx.Test,
		ValidationShards: fx.ValShards,
		Seed:             seed,
		EvalEvery:        1,
	}
	res, err := pipeline.Run(cfg)
	o := chaostest.Outcome{Name: "pipeline", Err: err, ConfiguredRounds: rounds, AccuracyFloor: 0.15, Flight: flight}
	if res != nil {
		o.CompletedRounds = res.CompletedRounds
		o.FinalAccuracy = res.FinalAccuracy
		for _, tm := range res.Timings {
			o.Sigmas = append(o.Sigmas, chaostest.SigmaRound{
				W: tm.SigmaW, P: tm.SigmaP, G: tm.SigmaG, Total: tm.Sigma, Nu: tm.Nu,
			})
		}
	}
	return o
}

// TestChaosPipeline sweeps seeds through the full fault taxonomy on the
// discrete-event engine: no deadlock, no panic, coherent round accounting,
// consistent σ decomposition.
func TestChaosPipeline(t *testing.T) {
	fx := chaostest.NewFixture(t, 7, 3, 2, 2)
	chaostest.Sweep(t, []uint64{1, 2, 3, 4}, 120*time.Second, func(seed uint64) chaostest.Outcome {
		return pipelineOutcome(fx, seed, 5)
	})
}

// TestChaosPipelineDeterministic: same seed, same plan, bit-identical
// degraded run — the property that makes chaos results reportable.
func TestChaosPipelineDeterministic(t *testing.T) {
	fx := chaostest.NewFixture(t, 7, 3, 2, 2)
	a := pipelineOutcome(fx, 3, 5)
	b := pipelineOutcome(fx, 3, 5)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("chaos runs errored: %v / %v", a.Err, b.Err)
	}
	if a.CompletedRounds != b.CompletedRounds || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("chaos run not deterministic: %+v vs %+v", a, b)
	}
}

// TestChaosRealtime drives the goroutine engine through the same plans: real
// crashed goroutines, wall-clock timeouts, scheduling nondeterminism — the
// invariants must hold on every interleaving.
func TestChaosRealtime(t *testing.T) {
	fx := chaostest.NewFixture(t, 9, 3, 2, 2)
	chaostest.Sweep(t, []uint64{1, 2}, 120*time.Second, func(seed uint64) chaostest.Outcome {
		cfg := realtime.Config{
			Tree:           fx.Tree,
			Rounds:         4,
			FlagLevel:      1,
			Quorum:         0.5,
			CollectTimeout: 250 * time.Millisecond,
			Faults:         chaosPlan(seed, fx.Tree.NumDevices()),
			Local:          localCfg,
			PartialBRA:     aggregate.NewMultiKrum(0.25),
			TopBRA:         aggregate.Median{},
			ClientData:     fx.Shards,
			TestData:       fx.Test,
			Seed:           seed,
		}
		res, err := realtime.Run(cfg)
		o := chaostest.Outcome{Name: "realtime", Err: err, ConfiguredRounds: cfg.Rounds}
		if res != nil {
			o.CompletedRounds = res.CompletedRounds
			o.FinalAccuracy = res.FinalAccuracy
		}
		return o
	})
}

// TestChaosCore exercises the synchronous engine's native failure knobs
// (availability churn and quorum subsampling) under the same invariants.
func TestChaosCore(t *testing.T) {
	fx := chaostest.NewFixture(t, 11, 3, 2, 2)
	chaostest.Sweep(t, []uint64{1, 2}, 120*time.Second, func(seed uint64) chaostest.Outcome {
		cfg := core.Config{
			Tree:       fx.Tree,
			Rounds:     4,
			Local:      localCfg,
			Partial:    core.LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
			Global:     core.LevelRule{BRA: aggregate.Median{}},
			ClientData: fx.Shards,
			TestData:   fx.Test,
			Seed:       seed,
			EvalEvery:  1,
			Quorum:     0.75,
			Churn:      core.ChurnModel{OfflineProb: 0.15},
		}
		res, err := core.RunHFL(cfg)
		o := chaostest.Outcome{Name: "core", Err: err, ConfiguredRounds: cfg.Rounds, AccuracyFloor: 0.2}
		if res != nil {
			o.CompletedRounds = cfg.Rounds
			o.FinalAccuracy = res.FinalAccuracy
		}
		return o
	})
}
