package chaostest_test

import (
	"testing"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/chaostest"
	"abdhfl/internal/consensus"
	"abdhfl/internal/core"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/trace"
)

// abaPipelineOutcome is pipelineOutcome with the randomized ABA replacing
// validation-voting at the top level — same fault plan, same invariants.
func abaPipelineOutcome(fx *chaostest.Fixture, seed uint64, rounds int) chaostest.Outcome {
	flight := trace.NewFlightRecorder(0)
	cfg := pipeline.Config{
		Flight:           flight,
		Tree:             fx.Tree,
		Rounds:           rounds,
		FlagLevel:        1,
		Quorum:           0.5,
		CollectTimeout:   300,
		Faults:           chaosPlan(seed, fx.Tree.NumDevices()),
		Local:            localCfg,
		PartialBRA:       aggregate.NewMultiKrum(0.25),
		TopCBA:           consensus.ABA{},
		ClientData:       fx.Shards,
		TestData:         fx.Test,
		ValidationShards: fx.ValShards,
		Seed:             seed,
		EvalEvery:        1,
	}
	res, err := pipeline.Run(cfg)
	o := chaostest.Outcome{Name: "pipeline-aba", Err: err, ConfiguredRounds: rounds, AccuracyFloor: 0.15, Flight: flight}
	if res != nil {
		o.CompletedRounds = res.CompletedRounds
		o.FinalAccuracy = res.FinalAccuracy
		for _, tm := range res.Timings {
			o.Sigmas = append(o.Sigmas, chaostest.SigmaRound{
				W: tm.SigmaW, P: tm.SigmaP, G: tm.SigmaG, Total: tm.Sigma, Nu: tm.Nu,
			})
		}
	}
	return o
}

// TestChaosPipelineABA runs the randomized ABA at the pipeline's top level
// through the full fault taxonomy (loss, duplication, crashes, churn,
// omission, a failed leader): no deadlock, coherent rounds, σ-accounting
// holds — the same invariants the voting sweep pins.
func TestChaosPipelineABA(t *testing.T) {
	fx := chaostest.NewFixture(t, 7, 3, 2, 2)
	chaostest.Sweep(t, []uint64{1, 2, 3}, 120*time.Second, func(seed uint64) chaostest.Outcome {
		return abaPipelineOutcome(fx, seed, 5)
	})
}

// TestChaosPipelineABADeterministic: same seed, same chaos plan, the same
// degraded run bit for bit — randomized consensus included (the coin is a
// label derivation, not an entropy source).
func TestChaosPipelineABADeterministic(t *testing.T) {
	fx := chaostest.NewFixture(t, 7, 3, 2, 2)
	a := abaPipelineOutcome(fx, 3, 5)
	b := abaPipelineOutcome(fx, 3, 5)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("chaos runs errored: %v / %v", a.Err, b.Err)
	}
	if a.CompletedRounds != b.CompletedRounds || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("aba chaos run not deterministic: %+v vs %+v", a, b)
	}
}

// TestChaosCoreABA exercises the synchronous engine with ABA as the global
// rule under availability churn and quorum subsampling.
func TestChaosCoreABA(t *testing.T) {
	fx := chaostest.NewFixture(t, 11, 3, 2, 2)
	chaostest.Sweep(t, []uint64{1, 2}, 120*time.Second, func(seed uint64) chaostest.Outcome {
		cfg := core.Config{
			Tree:             fx.Tree,
			Rounds:           4,
			Local:            localCfg,
			Partial:          core.LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
			Global:           core.LevelRule{CBA: consensus.ABA{}},
			ClientData:       fx.Shards,
			TestData:         fx.Test,
			ValidationShards: fx.ValShards,
			Seed:             seed,
			EvalEvery:        1,
			Quorum:           0.75,
			Churn:            core.ChurnModel{OfflineProb: 0.15},
		}
		res, err := core.RunHFL(cfg)
		o := chaostest.Outcome{Name: "core-aba", Err: err, ConfiguredRounds: cfg.Rounds, AccuracyFloor: 0.2}
		if res != nil {
			o.CompletedRounds = cfg.Rounds
			o.FinalAccuracy = res.FinalAccuracy
		}
		return o
	})
}

// TestCoreABAMatchesVotingZeroFault pins the protocol equivalence end to
// end: with no faults injected, every top member holds the identical ballot
// set, ABA validity forces Voting's decision, and the two engines' final
// global parameter vectors agree bit for bit.
func TestCoreABAMatchesVotingZeroFault(t *testing.T) {
	fx := chaostest.NewFixture(t, 13, 3, 2, 2)
	run := func(cba consensus.Protocol) []float64 {
		res, err := core.RunHFL(core.Config{
			Tree:             fx.Tree,
			Rounds:           3,
			Local:            localCfg,
			Partial:          core.LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
			Global:           core.LevelRule{CBA: cba},
			ClientData:       fx.Shards,
			TestData:         fx.Test,
			ValidationShards: fx.ValShards,
			Seed:             31,
			EvalEvery:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalParams == nil {
			t.Fatal("missing final params")
		}
		return res.FinalParams
	}
	vp := run(consensus.Voting{})
	ap := run(consensus.ABA{})
	if len(vp) != len(ap) {
		t.Fatalf("param dims differ: voting=%d aba=%d", len(vp), len(ap))
	}
	for i := range vp {
		if vp[i] != ap[i] {
			t.Fatalf("params diverge at coordinate %d: voting=%v aba=%v", i, vp[i], ap[i])
		}
	}
}

// TestCoreABAWorkersInvariant pins the determinism contract on the full
// engine: RunHFL with the randomized ABA at the top produces bit-identical
// parameters for every Workers setting.
func TestCoreABAWorkersInvariant(t *testing.T) {
	fx := chaostest.NewFixture(t, 17, 3, 2, 2)
	run := func(workers int) []float64 {
		res, err := core.RunHFL(core.Config{
			Tree:             fx.Tree,
			Rounds:           2,
			Local:            localCfg,
			Partial:          core.LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
			Global:           core.LevelRule{CBA: consensus.ABA{}},
			ClientData:       fx.Shards,
			TestData:         fx.Test,
			ValidationShards: fx.ValShards,
			Seed:             53,
			EvalEvery:        2,
			Workers:          workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalParams
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("workers %d: params diverge at coordinate %d", w, i)
			}
		}
	}
}
