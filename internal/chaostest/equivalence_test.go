package chaostest_test

import (
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/chaostest"
	"abdhfl/internal/core"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/simnet"
)

// TestPipelineMatchesCoreBitForBit pins the cross-engine contract: with the
// asynchrony turned off — zero link latency, zero duration jitter, quorum 1,
// flag level 0 (the flag model IS the global model), the same BRA rules —
// the discrete-event pipeline must execute exactly the synchronous round
// schedule, and both engines draw identical SGD streams
// (root→"round-R"→"device-D"). The final global parameter vectors must agree
// bit for bit; any drift means one engine's collection order, RNG
// derivation, or merge semantics silently diverged.
func TestPipelineMatchesCoreBitForBit(t *testing.T) {
	fx := chaostest.NewFixture(t, 13, 3, 2, 2)
	const seed = 42
	const rounds = 4
	local := localCfg

	cres, err := core.RunHFL(core.Config{
		Tree:       fx.Tree,
		Rounds:     rounds,
		Local:      local,
		Partial:    core.LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
		Global:     core.LevelRule{BRA: aggregate.Median{}},
		ClientData: fx.Shards,
		TestData:   fx.Test,
		Seed:       seed,
		EvalEvery:  rounds,
	})
	if err != nil {
		t.Fatal(err)
	}

	pres, err := pipeline.Run(pipeline.Config{
		Tree:       fx.Tree,
		Rounds:     rounds,
		FlagLevel:  0,
		Local:      local,
		PartialBRA: aggregate.NewMultiKrum(0.25),
		TopBRA:     aggregate.Median{},
		ClientData: fx.Shards,
		TestData:   fx.Test,
		Seed:       seed,
		EvalEvery:  rounds,
		Latency:    simnet.Fixed(0),
		// Non-zero bases keep the Timing struct from being replaced by the
		// jittered default; zero jitter keeps every duration draw out of the
		// RNG and every cluster in lockstep.
		Timing: pipeline.Timing{TrainBase: 100, AggBase: 10},
	})
	if err != nil {
		t.Fatal(err)
	}

	if cres.FinalParams == nil || pres.FinalParams == nil {
		t.Fatalf("missing final params: core=%v pipeline=%v", cres.FinalParams == nil, pres.FinalParams == nil)
	}
	if len(cres.FinalParams) != len(pres.FinalParams) {
		t.Fatalf("param dims differ: core=%d pipeline=%d", len(cres.FinalParams), len(pres.FinalParams))
	}
	for i := range cres.FinalParams {
		if cres.FinalParams[i] != pres.FinalParams[i] {
			t.Fatalf("params diverge at coordinate %d: core=%v pipeline=%v",
				i, cres.FinalParams[i], pres.FinalParams[i])
		}
	}
	if cres.FinalAccuracy != pres.FinalAccuracy {
		t.Fatalf("accuracies differ on identical params: core=%v pipeline=%v",
			cres.FinalAccuracy, pres.FinalAccuracy)
	}
}
