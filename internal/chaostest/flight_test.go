package chaostest_test

import (
	"strings"
	"testing"

	"abdhfl/internal/chaostest"
	"abdhfl/internal/trace"
)

// TestViolationsCatchesInjectedFailure pins the violation detector itself:
// an outcome doctored to break the round-accounting invariant must be
// reported, and a clean outcome must not.
func TestViolationsCatchesInjectedFailure(t *testing.T) {
	bad := chaostest.Outcome{Name: "doctored", ConfiguredRounds: 3, CompletedRounds: 5}
	v := chaostest.Violations(bad)
	if len(v) == 0 {
		t.Fatal("doctored outcome (completed > configured) reported no violations")
	}
	if !strings.Contains(v[0], "completed 5 of 3") {
		t.Fatalf("violation message %q does not describe the round accounting", v[0])
	}
	if v := chaostest.Violations(chaostest.Outcome{Name: "ok", ConfiguredRounds: 3, CompletedRounds: 3}); len(v) != 0 {
		t.Fatalf("clean outcome reported violations: %v", v)
	}
}

// TestFlightRecorderDumpOnViolation runs a real chaotic pipeline sweep with
// the flight recorder attached, then injects an invariant failure into the
// outcome and asserts the post-mortem Check would log: the recorder holds the
// simulator's last deliveries, and its dump renders them. This is exactly the
// material Check t.Logf's before Fatalf — exercised here without failing the
// suite.
func TestFlightRecorderDumpOnViolation(t *testing.T) {
	fx := chaostest.NewFixture(t, 7, 3, 2, 2)
	o := pipelineOutcome(fx, 3, 3)
	if o.Err != nil {
		t.Fatalf("chaos run errored: %v", o.Err)
	}
	if o.Flight == nil || o.Flight.Total() == 0 {
		t.Fatal("chaotic pipeline run recorded no flight events")
	}
	// Deliberately violate the accuracy-floor invariant.
	o.AccuracyFloor = 2
	o.CompletedRounds = o.ConfiguredRounds
	if v := chaostest.Violations(o); len(v) == 0 {
		t.Fatal("injected accuracy violation not detected")
	}
	dump := o.Flight.Dump()
	if !strings.Contains(dump, "flight recorder: last") {
		t.Fatalf("dump missing header:\n%s", dump)
	}
	if !strings.Contains(dump, `"kind":"message"`) {
		t.Fatalf("dump carries no delivery events:\n%s", dump)
	}
	tail := o.Flight.Tail()
	if len(tail) == 0 || len(tail) > trace.DefaultFlightCap {
		t.Fatalf("tail length %d out of (0, %d]", len(tail), trace.DefaultFlightCap)
	}
}
