// Package chaostest is the fault-injection test harness for the ABD-HFL
// engines: it sweeps seeds through composable fault plans (internal/fault)
// and asserts the protocol-level invariants every engine must keep under
// failure — the run terminates (no deadlock), never panics, reports a
// coherent round count, keeps its σ-accounting consistent (σ_w+σ_p+σ_g = σ,
// ν ∈ [0,1]; Eq. 3), and, when the plan leaves enough healthy quorum to
// finish, still learns above an accuracy floor.
//
// The harness is engine-agnostic: tests adapt each engine's result into an
// Outcome, so the same invariant checks cover the discrete-event pipeline,
// the goroutine realtime engine, and the synchronous core engine.
package chaostest

import (
	"fmt"
	"math"
	"testing"
	"time"

	"abdhfl/internal/dataset"
	"abdhfl/internal/rng"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// Fixture bundles the deterministic inputs of one engine run: tree, device
// shards, test set, and top-level validation shards.
type Fixture struct {
	Tree      *topology.Tree
	Shards    []*dataset.Dataset
	Test      *dataset.Dataset
	ValShards []*dataset.Dataset
}

// NewFixture builds an ECSM tree of the given shape with IID shards, all
// derived from seed.
func NewFixture(t testing.TB, seed uint64, levels, m, top int) *Fixture {
	t.Helper()
	tree, err := topology.NewECSM(levels, m, top)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	devices := tree.NumDevices()
	full := dataset.Generate(r.Derive("train"), devices*60, dataset.DefaultGen())
	valPool := dataset.Generate(r.Derive("val"), 300, dataset.DefaultGen())
	return &Fixture{
		Tree:      tree,
		Shards:    dataset.PartitionIID(r.Derive("part"), full, devices),
		Test:      dataset.Generate(r.Derive("test"), 400, dataset.DefaultGen()),
		ValShards: dataset.PartitionIID(r.Derive("valpart"), valPool, top),
	}
}

// SigmaRound is one engine-reported timing decomposition observation (the
// paper's per-round σ_w, σ_p, σ_g, σ and ν).
type SigmaRound struct {
	W, P, G, Total, Nu float64
}

// Outcome is an engine run's result, reduced to the invariant-bearing facts.
type Outcome struct {
	// Name labels the run in failure messages (engine + plan).
	Name string
	// Err is the engine's returned error; any non-nil error fails the check
	// (fault plans must degrade runs, not error them out).
	Err error
	// ConfiguredRounds and CompletedRounds are the requested and actually
	// formed global rounds. Completed < Configured is legitimate degraded
	// operation under faults; Completed > Configured is a protocol bug.
	ConfiguredRounds, CompletedRounds int
	// FinalAccuracy is checked against AccuracyFloor, but only when every
	// configured round completed (a plan that starves rounds legitimately
	// caps learning). AccuracyFloor 0 skips the check.
	FinalAccuracy, AccuracyFloor float64
	// Sigmas holds the run's timing decompositions, if the engine measures
	// them.
	Sigmas []SigmaRound
	// Flight, when non-nil, is the run's flight recorder: Check dumps its
	// tail (the last raw simulator deliveries before the failure) alongside
	// the first invariant violation, so a chaos failure arrives with its own
	// post-mortem instead of just a final-state assertion message.
	Flight *trace.FlightRecorder
}

// Violations returns every invariant the outcome breaks, in check order; an
// empty slice means the outcome is clean. Check wraps this for tests; the
// split form lets harnesses (and the flight-recorder dump test) inspect
// violations without a *testing.T.
func Violations(o Outcome) []string {
	var v []string
	if o.Err != nil {
		v = append(v, fmt.Sprintf("%s: run errored: %v", o.Name, o.Err))
	}
	if o.CompletedRounds < 0 || o.CompletedRounds > o.ConfiguredRounds {
		v = append(v, fmt.Sprintf("%s: completed %d of %d configured rounds", o.Name, o.CompletedRounds, o.ConfiguredRounds))
	}
	if o.AccuracyFloor > 0 && o.CompletedRounds == o.ConfiguredRounds && o.FinalAccuracy < o.AccuracyFloor {
		v = append(v, fmt.Sprintf("%s: accuracy %.3f below floor %.3f with all %d rounds completed",
			o.Name, o.FinalAccuracy, o.AccuracyFloor, o.ConfiguredRounds))
	}
	for i, s := range o.Sigmas {
		for what, val := range map[string]float64{"sigma_w": s.W, "sigma_p": s.P, "sigma_g": s.G, "sigma": s.Total} {
			if val < -1e-9 || math.IsNaN(val) || math.IsInf(val, 0) {
				v = append(v, fmt.Sprintf("%s: round %d %s = %v", o.Name, i, what, val))
			}
		}
		if got := s.W + s.P + s.G; math.Abs(got-s.Total) > 1e-6 {
			v = append(v, fmt.Sprintf("%s: round %d decomposition %v != sigma %v", o.Name, i, got, s.Total))
		}
		if s.Nu < -1e-9 || s.Nu > 1+1e-9 {
			v = append(v, fmt.Sprintf("%s: round %d nu = %v out of [0,1]", o.Name, i, s.Nu))
		}
	}
	return v
}

// Check asserts one outcome's invariants, dumping the flight recorder's tail
// before failing so the violation report carries the simulator's last
// deliveries.
func Check(t *testing.T, o Outcome) {
	t.Helper()
	v := Violations(o)
	if len(v) == 0 {
		return
	}
	if o.Flight != nil && o.Flight.Total() > 0 {
		t.Logf("%s", o.Flight.Dump())
	}
	t.Fatalf("%s", v[0])
}

// Sweep runs fn once per seed under panic and deadlock protection, then
// checks each outcome's invariants. timeout bounds one seed's wall clock: a
// fault plan must degrade the protocol, never hang it.
func Sweep(t *testing.T, seeds []uint64, timeout time.Duration, fn func(seed uint64) Outcome) {
	t.Helper()
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type res struct {
				out      Outcome
				panicked any
			}
			ch := make(chan res, 1)
			go func() {
				defer func() {
					if r := recover(); r != nil {
						ch <- res{panicked: r}
					}
				}()
				ch <- res{out: fn(seed)}
			}()
			select {
			case r := <-ch:
				if r.panicked != nil {
					t.Fatalf("seed %d: engine panicked: %v", seed, r.panicked)
				}
				Check(t, r.out)
			case <-time.After(timeout):
				t.Fatalf("seed %d: engine did not terminate within %v (deadlock?)", seed, timeout)
			}
		})
	}
}
