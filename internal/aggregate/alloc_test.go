package aggregate

import (
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// The Scratch contract, mirroring internal/nn/alloc_test.go: with a warm
// Scratch every rule's steady-state AggregateInto performs zero allocations.
// These are regression tests — the seed implementation allocated one column
// copy per coordinate (hundreds of thousands of allocs per simulated run for
// the median family), so any reappearing allocation here is a performance
// bug.

// allocPopulation stays below tensor's parallel threshold so the kernels take
// their serial inline paths — the allocation-free contract covers exactly
// that steady state (parallel fan-out pays goroutine overhead by design).
func allocPopulation() []tensor.Vector {
	r := rng.New(1)
	honest := honestPopulation(r, 9, 300, center(300, 1), 0.1)
	byz := honestPopulation(r, 3, 300, center(300, -30), 0.2)
	return append(honest, byz...)
}

func TestAggregateIntoAllocationFree(t *testing.T) {
	updates := allocPopulation()
	dim := len(updates[0])
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			s := NewScratch(1)
			dst := tensor.NewVector(dim)
			if err := rule.AggregateInto(dst, s, updates); err != nil { // warm up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := rule.AggregateInto(dst, s, updates); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("%s AggregateInto allocates %.1f objects/op with a warm Scratch, want 0", name, allocs)
			}
		})
	}
}

// TestAggregateShimMatchesInto pins the shim contract: the legacy Aggregate
// returns bit-identical output to AggregateInto with any scratch.
func TestAggregateShimMatchesInto(t *testing.T) {
	updates := allocPopulation()
	dim := len(updates[0])
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := rule.Aggregate(updates)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.NewVector(dim)
		if err := rule.AggregateInto(dst, NewScratch(1), updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(legacy, dst) {
			t.Errorf("%s: Aggregate and AggregateInto outputs differ", name)
		}
	}
}
