package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// honestPopulation returns n honest updates clustered around center with the
// given spread.
func honestPopulation(r *rng.RNG, n, dim int, center tensor.Vector, spread float64) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		v := center.Clone()
		for j := range v {
			v[j] += spread * r.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func center(dim int, val float64) tensor.Vector {
	return tensor.Fill(tensor.NewVector(dim), val)
}

func TestMeanExact(t *testing.T) {
	got, err := Mean{}.Aggregate([]tensor.Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestEmptyUpdatesError(t *testing.T) {
	rules := []Aggregator{Mean{}, Median{}, TrimmedMean{0.2}, GeoMed{}, Krum{}, CenteredClipping{}, CosineClustering{}}
	for _, a := range rules {
		if _, err := a.Aggregate(nil); err == nil {
			t.Fatalf("%s accepted empty update set", a.Name())
		}
	}
}

func TestDimMismatchError(t *testing.T) {
	if _, err := (Mean{}).Aggregate([]tensor.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("dim mismatch not rejected")
	}
}

func TestNonFiniteRejected(t *testing.T) {
	if _, err := (Median{}).Aggregate([]tensor.Vector{{1, 2}, {math.NaN(), 0}}); err == nil {
		t.Fatal("NaN update not rejected")
	}
}

func TestInputsNotModified(t *testing.T) {
	r := rng.New(1)
	updates := honestPopulation(r, 6, 8, center(8, 1), 0.1)
	snapshots := make([]tensor.Vector, len(updates))
	for i, u := range updates {
		snapshots[i] = u.Clone()
	}
	for _, a := range []Aggregator{Mean{}, Median{}, TrimmedMean{0.2}, GeoMed{}, Krum{FFraction: 0.25}, CenteredClipping{}, CosineClustering{}} {
		if _, err := a.Aggregate(updates); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for i := range updates {
			for j := range updates[i] {
				if updates[i][j] != snapshots[i][j] {
					t.Fatalf("%s modified input %d", a.Name(), i)
				}
			}
		}
	}
}

func TestMeanVulnerableMedianRobust(t *testing.T) {
	// One massive outlier among 9 honest updates: the mean must be dragged,
	// the median must not.
	r := rng.New(2)
	updates := honestPopulation(r, 9, 4, center(4, 1), 0.05)
	updates = append(updates, center(4, 1e6))
	mean, _ := Mean{}.Aggregate(updates)
	med, _ := Median{}.Aggregate(updates)
	if tensor.Distance(mean, center(4, 1)) < 100 {
		t.Fatal("sanity: mean should be dragged by the outlier")
	}
	if d := tensor.Distance(med, center(4, 1)); d > 1 {
		t.Fatalf("median dragged by outlier: distance %v", d)
	}
}

func TestKrumSelectsHonest(t *testing.T) {
	r := rng.New(3)
	honest := honestPopulation(r, 7, 8, center(8, 2), 0.05)
	byz := honestPopulation(r, 3, 8, center(8, -50), 0.05)
	updates := append(append([]tensor.Vector{}, honest...), byz...)
	k := Krum{F: 3, M: 1}
	out, err := k.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, center(8, 2)); d > 1 {
		t.Fatalf("krum selected a Byzantine update: distance %v", d)
	}
}

func TestMultiKrumExcludesByzantine(t *testing.T) {
	r := rng.New(4)
	honest := honestPopulation(r, 12, 8, center(8, 1), 0.05)
	byz := honestPopulation(r, 4, 8, center(8, 40), 0.05)
	updates := append(append([]tensor.Vector{}, honest...), byz...)
	mk := NewMultiKrum(0.25)
	sel, err := mk.Selected(updates)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range sel {
		if i >= 12 {
			t.Fatalf("MultiKrum selected Byzantine index %d", i)
		}
	}
	out, _ := mk.Aggregate(updates)
	if d := tensor.Distance(out, center(8, 1)); d > 0.5 {
		t.Fatalf("MultiKrum aggregate off-center by %v", d)
	}
}

func TestKrumSmallClusterFallback(t *testing.T) {
	// The paper's cluster size is 4 with f=1: n-f-2 = 1 so the fallback path
	// (k >= 1) must hold and still filter the outlier.
	r := rng.New(5)
	updates := honestPopulation(r, 3, 8, center(8, 1), 0.05)
	updates = append(updates, center(8, 100))
	out, err := Krum{F: 1}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, center(8, 1)); d > 1 {
		t.Fatalf("small-cluster Krum failed: distance %v", d)
	}
}

func TestKrumSingleUpdate(t *testing.T) {
	out, err := Krum{F: 0, M: 1}.Aggregate([]tensor.Vector{{7, 7}})
	if err != nil || out[0] != 7 {
		t.Fatalf("single-update krum: %v %v", out, err)
	}
}

func TestTrimmedMeanRobust(t *testing.T) {
	updates := []tensor.Vector{{1}, {1.1}, {0.9}, {1.05}, {1e9}}
	out, err := TrimmedMean{TrimFraction: 0.25}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 2 {
		t.Fatalf("trimmed mean dragged: %v", out[0])
	}
}

func TestTrimmedMeanOverTrimError(t *testing.T) {
	if _, err := (TrimmedMean{TrimFraction: 0.5}).Aggregate([]tensor.Vector{{1}, {2}}); err == nil {
		t.Fatal("over-trim not rejected")
	}
}

func TestGeoMedRobust(t *testing.T) {
	r := rng.New(6)
	updates := honestPopulation(r, 8, 4, center(4, 3), 0.05)
	updates = append(updates, center(4, 1e5), center(4, -1e5))
	out, err := GeoMed{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, center(4, 3)); d > 1 {
		t.Fatalf("geomed dragged: %v", d)
	}
}

func TestCenteredClippingRobust(t *testing.T) {
	r := rng.New(7)
	updates := honestPopulation(r, 9, 4, center(4, 2), 0.1)
	updates = append(updates, center(4, 1e4))
	out, err := CenteredClipping{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, center(4, 2)); d > 2 {
		t.Fatalf("centered clipping dragged: %v", d)
	}
}

func TestCenteredClippingIdenticalUpdates(t *testing.T) {
	updates := []tensor.Vector{{5, 5}, {5, 5}, {5, 5}}
	out, err := CenteredClipping{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[1] != 5 {
		t.Fatalf("identical updates changed: %v", out)
	}
}

func TestCosineClusteringPicksMajorityDirection(t *testing.T) {
	r := rng.New(8)
	honest := honestPopulation(r, 8, 4, center(4, 1), 0.02)
	flipped := honestPopulation(r, 3, 4, center(4, -1), 0.02)
	updates := append(append([]tensor.Vector{}, honest...), flipped...)
	out, err := CosineClustering{MinSimilarity: 0.5}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0 {
		t.Fatalf("clustering picked the flipped direction: %v", out)
	}
	cl, _ := CosineClustering{MinSimilarity: 0.5}.Clusters(updates)
	if len(cl) < 2 {
		t.Fatalf("expected >= 2 clusters, got %d", len(cl))
	}
	if len(cl[0]) != 8 {
		t.Fatalf("largest cluster size = %d, want 8", len(cl[0]))
	}
}

func TestAllRulesExactOnUnanimousUpdates(t *testing.T) {
	// Every rule must return (approximately) v when all updates equal v.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		v := tensor.NewVector(6)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		updates := []tensor.Vector{v.Clone(), v.Clone(), v.Clone(), v.Clone(), v.Clone()}
		for _, a := range []Aggregator{Mean{}, Median{}, TrimmedMean{0.2}, GeoMed{}, Krum{F: 1}, CenteredClipping{}, CosineClustering{}} {
			out, err := a.Aggregate(updates)
			if err != nil {
				return false
			}
			if tensor.Distance(out, v) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateWithinConvexHullProperty(t *testing.T) {
	// For 1-D updates, every robust rule's output must lie within
	// [min, max] of the inputs.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 4
		updates := make([]tensor.Vector, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range updates {
			x := r.NormFloat64() * 10
			updates[i] = tensor.Vector{x}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		for _, a := range []Aggregator{Mean{}, Median{}, GeoMed{}, Krum{F: 1}, CenteredClipping{}} {
			out, err := a.Aggregate(updates)
			if err != nil {
				return false
			}
			if out[0] < lo-1e-9 || out[0] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		a, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatalf("ByName(%q) returned nil", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func BenchmarkMultiKrum16x2500(b *testing.B) {
	r := rng.New(1)
	updates := honestPopulation(r, 16, 2500, center(2500, 0), 1)
	mk := NewMultiKrum(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mk.Aggregate(updates); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMedian16x2500(b *testing.B) {
	r := rng.New(1)
	updates := honestPopulation(r, 16, 2500, center(2500, 0), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Median{}).Aggregate(updates); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBulyanRobustToOutliers(t *testing.T) {
	r := rng.New(9)
	honest := honestPopulation(r, 12, 8, center(8, 1), 0.05)
	byz := honestPopulation(r, 3, 8, center(8, -80), 0.05)
	updates := append(append([]tensor.Vector{}, honest...), byz...)
	out, err := Bulyan{F: 3}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, center(8, 1)); d > 0.5 {
		t.Fatalf("bulyan dragged: %v", d)
	}
}

func TestBulyanResistsALEStyleAttack(t *testing.T) {
	// A coordinated small-bias attack: Byzantine updates sit just outside
	// the honest cloud in one coordinate. Bulyan's per-coordinate trimming
	// must bound the bias the attackers can inject.
	r := rng.New(10)
	honest := honestPopulation(r, 12, 4, center(4, 0), 0.1)
	updates := append([]tensor.Vector{}, honest...)
	for i := 0; i < 4; i++ {
		v := center(4, 0)
		v[0] = 0.35 // hides near the honest spread in coordinate 0
		updates = append(updates, v)
	}
	out, err := Bulyan{F: 4}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 0.3 {
		t.Fatalf("bulyan coordinate bias = %v", out[0])
	}
}

func TestBulyanSingleUpdate(t *testing.T) {
	out, err := Bulyan{F: 0}.Aggregate([]tensor.Vector{{3, 3}})
	if err != nil || out[0] != 3 {
		t.Fatalf("single-update bulyan: %v %v", out, err)
	}
}

func TestBulyanUnanimous(t *testing.T) {
	v := tensor.Vector{1, 2, 3}
	updates := []tensor.Vector{v.Clone(), v.Clone(), v.Clone(), v.Clone(), v.Clone(), v.Clone()}
	out, err := Bulyan{F: 1}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Distance(out, v) > 1e-9 {
		t.Fatalf("bulyan drifted on unanimous input: %v", out)
	}
}

func TestNormBoundCapsOutlierInfluence(t *testing.T) {
	r := rng.New(11)
	honest := honestPopulation(r, 9, 4, center(4, 1), 0.05)
	updates := append([]tensor.Vector{}, honest...)
	updates = append(updates, center(4, 1e6)) // huge-norm attack
	bounded, err := NormBound{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := Mean{}.Aggregate(updates)
	dBounded := tensor.Distance(bounded, center(4, 1))
	dPlain := tensor.Distance(plain, center(4, 1))
	if dBounded >= dPlain/100 {
		t.Fatalf("norm bound barely helped: %v vs %v", dBounded, dPlain)
	}
}

func TestNormBoundPreservesHonestMean(t *testing.T) {
	r := rng.New(12)
	updates := honestPopulation(r, 8, 4, center(4, 2), 0.01)
	out, err := NormBound{Factor: 2}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := Mean{}.Aggregate(updates)
	if tensor.Distance(out, mean) > 0.01 {
		t.Fatal("norm bound distorted an honest population")
	}
}

func TestNormBoundAllZero(t *testing.T) {
	updates := []tensor.Vector{tensor.NewVector(3), tensor.NewVector(3)}
	out, err := NormBound{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm2(out) != 0 {
		t.Fatal("zero updates produced non-zero aggregate")
	}
}
