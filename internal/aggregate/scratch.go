package aggregate

import (
	"runtime"

	"abdhfl/internal/tensor"
)

// Scratch holds the reusable working memory of the aggregation rules — the
// aggregation analogue of nn.Workspace. Buffers grow on demand and are kept
// across calls, so a rule's steady-state AggregateInto allocates nothing.
//
// A Scratch is owned by a single goroutine: concurrent AggregateInto calls
// must use separate Scratch values (the realtime engine keeps one per leader
// goroutine). The zero value is ready to use; Workers <= 0 means "use every
// core". Results are bit-identical for every Workers value — the kernels
// follow tensor's deterministic-chunking contract — so the knob only trades
// wall-clock time, never reproducibility.
type Scratch struct {
	// Workers bounds the goroutine fan-out of the parallel kernels.
	Workers int
	// Audit, when non-nil, makes every AggregateInto record its per-update
	// filtering decisions into it (see FilterAudit). Auditing observes the
	// rules without changing their output and reuses the audit's buffers,
	// so the steady state stays allocation-free.
	Audit *FilterAudit

	cols   []float64       // per-worker coordinate columns (workers × n)
	dists  []float64       // flat n×n pairwise distances / Gram matrix
	sqn    []float64       // squared norms for the Gram trick
	scores []float64       // per-update Krum scores
	row    []float64       // one off-diagonal distance row
	order  []int           // update indices in score order
	idx    []int           // surviving-update indices (Bulyan stage 1)
	parent []int           // union-find forest (cosine clustering)
	labels []int           // cluster label per update
	counts []int           // cluster sizes
	norms  []float64       // per-update norms or distances
	scales []float64       // per-update clip scales / norm sums
	tmp    []float64       // median work copy of norms
	chosen []tensor.Vector // selected updates to average
	vbuf   tensor.Vector   // dim-length temporary (Weiszfeld iterate)
}

// NewScratch returns a Scratch whose kernels fan out across at most workers
// goroutines (<= 0 selects GOMAXPROCS).
func NewScratch(workers int) *Scratch { return &Scratch{Workers: workers} }

// resolve returns a usable Scratch: a nil receiver (the legacy Aggregate
// shim's case) gets a fresh single-call scratch.
func (s *Scratch) resolve() *Scratch {
	if s == nil {
		return &Scratch{}
	}
	return s
}

// workerCount resolves the Workers knob for buffer sizing.
func (s *Scratch) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// columns returns the per-worker coordinate-column scratch for n updates.
func (s *Scratch) columns(n int) []float64 {
	return growFloats(&s.cols, s.workerCount()*n)
}

// vector returns a dim-length temporary vector.
func (s *Scratch) vector(dim int) tensor.Vector {
	if cap(s.vbuf) < dim {
		s.vbuf = tensor.NewVector(dim)
	}
	s.vbuf = s.vbuf[:dim]
	return s.vbuf
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growVecs(buf *[]tensor.Vector, n int) []tensor.Vector {
	if cap(*buf) < n {
		*buf = make([]tensor.Vector, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
