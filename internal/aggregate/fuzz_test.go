package aggregate

import (
	"encoding/binary"
	"math"
	"testing"

	"abdhfl/internal/tensor"
)

// fuzzRules is every aggregation rule under the fuzz contract: malformed
// quorums (NaN/Inf coordinates, duplicated updates, boundary counts like
// n = f+1) must produce an error, never a panic, and a successful
// aggregation must be entirely finite.
func fuzzRules() []Aggregator {
	return []Aggregator{
		Mean{},
		Median{},
		TrimmedMean{TrimFraction: 0.25},
		GeoMed{},
		Krum{FFraction: 0.25, M: 1},
		NewMultiKrum(0.25),
		Bulyan{FFraction: 0.25},
		CenteredClipping{Tau: 10, Iterations: 3},
		CosineClustering{MinSimilarity: 0.1},
		NormBound{Factor: 2},
	}
}

// decodeUpdates splits raw bytes into num equal-dimension float64 vectors.
// The encoding is little-endian IEEE 754, eight bytes per coordinate — so
// the fuzzer mutates straight through bit patterns like NaN, ±Inf, and
// subnormals.
func decodeUpdates(raw []byte, num int) []tensor.Vector {
	vals := len(raw) / 8
	if num <= 0 || vals == 0 {
		return nil
	}
	dim := vals / num
	if dim == 0 {
		return nil
	}
	updates := make([]tensor.Vector, num)
	for i := range updates {
		v := tensor.NewVector(dim)
		for j := range v {
			off := (i*dim + j) * 8
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off : off+8]))
		}
		updates[i] = v
	}
	return updates
}

func FuzzAggregateInto(f *testing.F) {
	le := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	nan := math.NaN()
	inf := math.Inf(1)
	// Seeds cover the interesting regimes: a healthy quorum, NaN and ±Inf
	// coordinates, exact duplicates, a single update (the n = f+1 boundary
	// for Krum at f = 0), and huge-magnitude values that can overflow
	// intermediate norms.
	f.Add(le(1, 2, 3, 4, 5, 6), uint8(3))
	f.Add(le(1, nan, 3, 4), uint8(2))
	f.Add(le(inf, -1, 2, 0.5), uint8(2))
	f.Add(le(1, 1, 1, 1, 1, 1), uint8(3))
	f.Add(le(0.25, -0.25), uint8(1))
	f.Add(le(1e308, 1e308, -1e308, -1e308), uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add(le(1, 2, 3), uint8(5)) // more updates than values: zero dim

	f.Fuzz(func(t *testing.T, raw []byte, n uint8) {
		updates := decodeUpdates(raw, int(n%8)+1)
		if updates == nil {
			return
		}
		dim := len(updates[0])
		dst := tensor.NewVector(dim)
		for _, rule := range fuzzRules() {
			err := rule.AggregateInto(dst, nil, updates)
			if err != nil {
				continue // malformed input must error, and did
			}
			if !tensor.AllFinite(dst) {
				t.Fatalf("%s produced non-finite output from %d updates of dim %d",
					rule.Name(), len(updates), dim)
			}
			// The legacy form must agree on validity.
			out, err := rule.Aggregate(updates)
			if err != nil {
				t.Fatalf("%s: AggregateInto succeeded but Aggregate errored: %v", rule.Name(), err)
			}
			if !tensor.AllFinite(out) {
				t.Fatalf("%s: Aggregate produced non-finite output", rule.Name())
			}
		}
	})
}
