package aggregate

import (
	"fmt"
	"sort"

	"abdhfl/internal/tensor"
)

// Bulyan is the two-stage rule of El Mhamdi et al. (2018): first a Krum-
// based selection repeatedly picks the best-scored update until n-2f remain,
// then a coordinate-wise trimmed average keeps, per coordinate, the
// |S|-2f values closest to the coordinate median. It combines Krum's
// geometric filtering with TrimmedMean's per-coordinate robustness and
// defends against attacks (like ALE) that hide inside a single metric.
type Bulyan struct {
	// F is the assumed Byzantine count; FFraction the assumed fraction
	// (the effective f is max(F, floor(FFraction*n))).
	F         int
	FFraction float64
}

// Name implements Aggregator.
func (Bulyan) Name() string { return "bulyan" }

// Aggregate implements Aggregator.
func (a Bulyan) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	n := len(updates)
	f := a.F
	if ff := int(a.FFraction * float64(n)); ff > f {
		f = ff
	}
	if f < 0 {
		return nil, fmt.Errorf("aggregate: bulyan with negative f")
	}
	if n == 1 {
		return updates[0].Clone(), nil
	}
	// Stage 1: iterated Krum selection of n-2f updates. With small quorums
	// clamp the selection count to at least 1 so tiny clusters stay
	// servable (mirroring the Krum fallback).
	selCount := n - 2*f
	if selCount < 1 {
		selCount = 1
	}
	remaining := make([]tensor.Vector, n)
	copy(remaining, updates)
	var selected []tensor.Vector
	for len(selected) < selCount {
		k := len(remaining) - f - 2
		if k < 1 {
			k = 1
		}
		if len(remaining) == 1 {
			selected = append(selected, remaining[0])
			break
		}
		scores := krumScores(remaining, k)
		best := 0
		for i := range scores {
			if scores[i] < scores[best] {
				best = i
			}
		}
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	// Stage 2: per coordinate, average the beta values closest to the
	// median of the selected set.
	beta := len(selected) - 2*f
	if beta < 1 {
		beta = 1
	}
	dim := len(updates[0])
	out := tensor.NewVector(dim)
	col := make([]float64, len(selected))
	for j := 0; j < dim; j++ {
		for i, v := range selected {
			col[i] = v[j]
		}
		med := tensor.Median(col)
		sort.Slice(col, func(x, y int) bool {
			dx, dy := col[x]-med, col[y]-med
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			return dx < dy
		})
		s := 0.0
		for _, v := range col[:beta] {
			s += v
		}
		out[j] = s / float64(beta)
	}
	return out, nil
}

func init() {
	registry["bulyan"] = func() Aggregator { return Bulyan{FFraction: 0.25} }
}
