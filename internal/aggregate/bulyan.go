package aggregate

import (
	"fmt"

	"abdhfl/internal/tensor"
)

// Bulyan is the two-stage rule of El Mhamdi et al. (2018): first a Krum-
// based selection repeatedly picks the best-scored update until n-2f remain,
// then a coordinate-wise trimmed average keeps, per coordinate, the
// |S|-2f values closest to the coordinate median. It combines Krum's
// geometric filtering with TrimmedMean's per-coordinate robustness and
// defends against attacks (like ALE) that hide inside a single metric.
type Bulyan struct {
	// F is the assumed Byzantine count; FFraction the assumed fraction
	// (the effective f is max(F, floor(FFraction*n))).
	F         int
	FFraction float64
}

// Name implements Aggregator.
func (Bulyan) Name() string { return "bulyan" }

// Aggregate implements Aggregator.
func (a Bulyan) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a Bulyan) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	n := len(updates)
	f := a.F
	if ff := int(a.FFraction * float64(n)); ff > f {
		f = ff
	}
	if f < 0 {
		return fmt.Errorf("aggregate: bulyan with negative f")
	}
	s := scratch.resolve()
	if n == 1 {
		copy(dst, updates[0])
		if aud := s.Audit; aud != nil {
			aud.begin(a.Name(), 1)
		}
		return nil
	}
	// Stage 1: iterated Krum selection of n-2f updates. With small quorums
	// clamp the selection count to at least 1 so tiny clusters stay
	// servable (mirroring the Krum fallback). The full pairwise matrix is
	// computed once; each elimination round re-scores the surviving subset
	// by gathering its rows, instead of recomputing distances.
	selCount := n - 2*f
	if selCount < 1 {
		selCount = 1
	}
	dists := growFloats(&s.dists, n*n)
	sqn := growFloats(&s.sqn, n)
	tensor.PairwiseSquaredDistancesWS(dists, sqn, updates, s.Workers)
	row := growFloats(&s.row, n)
	alive := growInts(&s.idx, n)
	for i := range alive {
		alive[i] = i
	}
	selIdx := growInts(&s.order, n)[:0]
	for len(selIdx) < selCount {
		if len(alive) == 1 {
			selIdx = append(selIdx, alive[0])
			break
		}
		k := len(alive) - f - 2
		if k < 1 {
			k = 1
		}
		best := 0
		bestScore := 0.0
		for ai := range alive {
			sc := krumScoreAt(dists, n, alive, ai, k, row)
			if ai == 0 || sc < bestScore {
				best, bestScore = ai, sc
			}
		}
		selIdx = append(selIdx, alive[best])
		alive = append(alive[:best], alive[best+1:]...)
	}
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), n)
		aud.keepOnly(selIdx)
	}
	// Stage 2: per coordinate, average the beta values closest to the
	// median of the selected set.
	beta := len(selIdx) - 2*f
	if beta < 1 {
		beta = 1
	}
	chosen := growVecs(&s.chosen, len(selIdx))
	for i, idx := range selIdx {
		chosen[i] = updates[idx]
	}
	tensor.CoordinateNearMedianMeanWS(dst, chosen, beta, s.columns(len(chosen)), s.Workers)
	return finiteOut(dst)
}

func init() {
	registry["bulyan"] = func() Aggregator { return Bulyan{FFraction: 0.25} }
}
