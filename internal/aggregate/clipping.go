package aggregate

import (
	"fmt"
	"sort"

	"abdhfl/internal/tensor"
)

// CenteredClipping is the CC rule of Karimireddy et al. (2021): starting
// from a robust reference point, repeatedly move towards the mean of the
// updates with each deviation clipped to radius Tau. The clipping bounds how
// far any single Byzantine update can drag the aggregate per iteration.
type CenteredClipping struct {
	// Tau is the clipping radius. Zero selects an adaptive radius: the
	// median distance from the reference to the updates.
	Tau float64
	// Iterations of the clip-and-average loop; zero selects 3.
	Iterations int
}

// Name implements Aggregator.
func (CenteredClipping) Name() string { return "centered-clipping" }

// Aggregate implements Aggregator.
func (a CenteredClipping) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	iters := a.Iterations
	if iters == 0 {
		iters = 3
	}
	dim := len(updates[0])
	// Robust start: coordinate median.
	v := tensor.CoordinateMedian(tensor.NewVector(dim), updates)
	diff := tensor.NewVector(dim)
	step := tensor.NewVector(dim)
	for it := 0; it < iters; it++ {
		tau := a.Tau
		if tau == 0 {
			dists := make([]float64, len(updates))
			for i, u := range updates {
				dists[i] = tensor.Distance(v, u)
			}
			tau = tensor.Median(dists)
			if tau == 0 {
				break // all updates coincide with the reference
			}
		}
		tensor.Fill(step, 0)
		for _, u := range updates {
			tensor.Sub(diff, u, v)
			tensor.Clip(diff, tau)
			tensor.Axpy(step, 1/float64(len(updates)), diff)
		}
		tensor.Add(v, v, step)
	}
	return v, nil
}

// CosineClustering follows the clustered-FL defence of Sattler et al.
// (2020): updates are grouped by pairwise cosine similarity with
// single-linkage clustering at threshold MinSimilarity, and the mean of the
// largest cluster is returned — the assumption being that honest updates
// point in broadly the same direction while attacks form their own, smaller
// cluster.
type CosineClustering struct {
	// MinSimilarity is the cosine threshold for two updates to be linked;
	// zero selects 0.
	MinSimilarity float64
}

// Name implements Aggregator.
func (CosineClustering) Name() string { return "cosine-clustering" }

// Aggregate implements Aggregator.
func (a CosineClustering) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	n := len(updates)
	labels := a.clusterLabels(updates)
	// Find the largest cluster; break ties towards the cluster whose members
	// have the smaller mean norm (attacks typically inflate norms).
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	type cand struct {
		label, count int
		meanNorm     float64
	}
	var cands []cand
	for l, c := range counts {
		norm := 0.0
		for i := 0; i < n; i++ {
			if labels[i] == l {
				norm += tensor.Norm2(updates[i])
			}
		}
		cands = append(cands, cand{l, c, norm / float64(c)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].meanNorm < cands[j].meanNorm
	})
	best := cands[0].label
	var members []tensor.Vector
	for i := 0; i < n; i++ {
		if labels[i] == best {
			members = append(members, updates[i])
		}
	}
	return tensor.Mean(tensor.NewVector(len(updates[0])), members), nil
}

// clusterLabels performs single-linkage clustering: i and j share a label
// when a chain of pairs with cosine similarity above the threshold connects
// them (union-find over the similarity graph).
func (a CosineClustering) clusterLabels(updates []tensor.Vector) []int {
	n := len(updates)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if tensor.CosineSimilarity(updates[i], updates[j]) >= a.MinSimilarity {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = find(i)
	}
	return labels
}

// Clusters returns the clusters CosineClustering would form, largest first;
// exposed for analysis tools and tests.
func (a CosineClustering) Clusters(updates []tensor.Vector) ([][]int, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	labels := a.clusterLabels(updates)
	groups := map[int][]int{}
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out, nil
}

// registry of aggregators constructible by name, for CLI tools and configs.
var registry = map[string]func() Aggregator{
	"mean":              func() Aggregator { return Mean{} },
	"median":            func() Aggregator { return Median{} },
	"trimmed-mean":      func() Aggregator { return TrimmedMean{TrimFraction: 0.25} },
	"geomed":            func() Aggregator { return GeoMed{} },
	"krum":              func() Aggregator { return Krum{FFraction: 0.25, M: 1} },
	"multi-krum":        func() Aggregator { return Krum{FFraction: 0.25} },
	"centered-clipping": func() Aggregator { return CenteredClipping{} },
	"cosine-clustering": func() Aggregator { return CosineClustering{} },
}

// ByName returns a default-configured aggregator for the given registry
// name, or an error listing the known names.
func ByName(name string) (Aggregator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("aggregate: unknown rule %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names returns the sorted registry names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
