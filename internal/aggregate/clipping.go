package aggregate

import (
	"fmt"
	"math"
	"sort"

	"abdhfl/internal/tensor"
)

// CenteredClipping is the CC rule of Karimireddy et al. (2021): starting
// from a robust reference point, repeatedly move towards the mean of the
// updates with each deviation clipped to radius Tau. The clipping bounds how
// far any single Byzantine update can drag the aggregate per iteration.
type CenteredClipping struct {
	// Tau is the clipping radius. Zero selects an adaptive radius: the
	// median distance from the reference to the updates.
	Tau float64
	// Iterations of the clip-and-average loop; zero selects 3.
	Iterations int
}

// Name implements Aggregator.
func (CenteredClipping) Name() string { return "centered-clipping" }

// Aggregate implements Aggregator.
func (a CenteredClipping) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator. The per-update distances and clip
// scales live in scratch (the naive formulation reallocated the distance
// slice on every clipping iteration), and the clip-and-average pass is the
// fused CenteredStepWS kernel.
func (a CenteredClipping) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	iters := a.Iterations
	if iters == 0 {
		iters = 3
	}
	s := scratch.resolve()
	n := len(updates)
	// Robust start: coordinate median.
	tensor.CoordinateMedianWS(dst, updates, s.columns(n), s.Workers)
	norms := growFloats(&s.norms, n)
	tmp := growFloats(&s.tmp, n)
	scales := growFloats(&s.scales, n)
	aud := s.Audit
	if aud != nil {
		// Defaults to all-kept; each completed iteration overwrites with
		// its clip scales, so the final iteration's verdict stands.
		aud.begin(a.Name(), n)
	}
	for it := 0; it < iters; it++ {
		tensor.DistancesWS(norms, dst, updates, s.Workers)
		tau := a.Tau
		if tau == 0 {
			copy(tmp, norms)
			tau = tensor.MedianInPlace(tmp)
			if tau == 0 {
				break // all updates coincide with the reference
			}
		}
		// scales[i] reproduces tensor.Clip's condition and scalar exactly.
		for i, nm := range norms {
			if nm > tau && nm > 0 {
				scales[i] = tau / nm
			} else {
				scales[i] = 1
			}
		}
		if aud != nil {
			aud.recordScales(scales)
		}
		tensor.CenteredStepWS(dst, updates, scales, s.Workers)
	}
	return finiteOut(dst)
}

// CosineClustering follows the clustered-FL defence of Sattler et al.
// (2020): updates are grouped by pairwise cosine similarity with
// single-linkage clustering at threshold MinSimilarity, and the mean of the
// largest cluster is returned — the assumption being that honest updates
// point in broadly the same direction while attacks form their own, smaller
// cluster.
type CosineClustering struct {
	// MinSimilarity is the cosine threshold for two updates to be linked;
	// zero selects 0.
	MinSimilarity float64
}

// Name implements Aggregator.
func (CosineClustering) Name() string { return "cosine-clustering" }

// Aggregate implements Aggregator.
func (a CosineClustering) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a CosineClustering) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	s := scratch.resolve()
	n := len(updates)
	labels := a.labelsInto(s, updates)
	// Find the largest cluster; break ties towards the cluster whose members
	// have the smaller mean norm (attacks typically inflate norms), then the
	// smaller label. Labels are union-find roots in [0, n), so plain arrays
	// replace the map-and-sort of the naive formulation — and make the final
	// tie-break deterministic rather than map-iteration-order dependent.
	counts := growInts(&s.counts, n)
	normSums := growFloats(&s.scales, n)
	for i := range counts {
		counts[i] = 0
		normSums[i] = 0
	}
	for i, l := range labels {
		counts[l]++
		// s.norms was filled with the update norms by labelsInto.
		normSums[l] += s.norms[i]
	}
	best := -1
	bestMean := 0.0
	for l := 0; l < n; l++ {
		if counts[l] == 0 {
			continue
		}
		mean := normSums[l] / float64(counts[l])
		if best == -1 || counts[l] > counts[best] || (counts[l] == counts[best] && mean < bestMean) {
			best, bestMean = l, mean
		}
	}
	chosen := growVecs(&s.chosen, counts[best])
	m := 0
	for i := 0; i < n; i++ {
		if labels[i] == best {
			chosen[m] = updates[i]
			m++
		}
	}
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), n)
		for i, l := range labels {
			if l != best {
				aud.Decisions[i] = DecisionTrimmed
			}
		}
	}
	tensor.MeanWS(dst, chosen, s.Workers)
	return finiteOut(dst)
}

// labelsInto performs single-linkage clustering into s.labels: i and j share
// a label when a chain of pairs with cosine similarity above the threshold
// connects them (union-find with path halving over the similarity graph).
// The pairwise Gram matrix is computed once — its diagonal yields the update
// norms, left in s.norms for the caller.
func (a CosineClustering) labelsInto(s *Scratch, updates []tensor.Vector) []int {
	n := len(updates)
	dots := growFloats(&s.dists, n*n)
	tensor.PairwiseDotsWS(dots, updates, s.Workers)
	norms := growFloats(&s.norms, n)
	for i := range norms {
		norms[i] = math.Sqrt(dots[i*n+i])
	}
	parent := growInts(&s.parent, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim := 0.0
			if norms[i] != 0 && norms[j] != 0 {
				sim = dots[i*n+j] / (norms[i] * norms[j])
			}
			if sim >= a.MinSimilarity {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	labels := growInts(&s.labels, n)
	for i := range labels {
		labels[i] = find(i)
	}
	return labels
}

// Clusters returns the clusters CosineClustering would form, largest first;
// exposed for analysis tools and tests.
func (a CosineClustering) Clusters(updates []tensor.Vector) ([][]int, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	labels := a.labelsInto(&Scratch{Workers: 1}, updates)
	groups := map[int][]int{}
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out, nil
}

// registry of aggregators constructible by name, for CLI tools and configs.
var registry = map[string]func() Aggregator{
	"mean":              func() Aggregator { return Mean{} },
	"median":            func() Aggregator { return Median{} },
	"trimmed-mean":      func() Aggregator { return TrimmedMean{TrimFraction: 0.25} },
	"geomed":            func() Aggregator { return GeoMed{} },
	"krum":              func() Aggregator { return Krum{FFraction: 0.25, M: 1} },
	"multi-krum":        func() Aggregator { return Krum{FFraction: 0.25} },
	"centered-clipping": func() Aggregator { return CenteredClipping{} },
	"cosine-clustering": func() Aggregator { return CosineClustering{} },
}

// ByName returns a default-configured aggregator for the given registry
// name, or an error listing the known names.
func ByName(name string) (Aggregator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("aggregate: unknown rule %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names returns the sorted registry names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
