package aggregate

import (
	"strings"
	"testing"

	"abdhfl/internal/tensor"
)

// auditPopulation is allocPopulation with a known attacker layout: indices
// 0..8 honest (centred at +1), 9..11 Byzantine (centred at -30, far outside
// the honest cloud so every robust rule should reject or clip them).
func auditPopulation() (updates []tensor.Vector, byz map[int]bool) {
	updates = allocPopulation()
	byz = map[int]bool{9: true, 10: true, 11: true}
	return
}

// TestAuditFlagsOutliers checks, rule by rule, that the audit marks the
// planted outliers as filtered (trimmed or clipped) and keeps a majority of
// the honest updates at full weight. Mean is the control: it filters
// nothing by construction.
func TestAuditFlagsOutliers(t *testing.T) {
	updates, byz := auditPopulation()
	dim := len(updates[0])
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			s := NewScratch(1)
			s.Audit = &FilterAudit{}
			dst := tensor.NewVector(dim)
			if err := rule.AggregateInto(dst, s, updates); err != nil {
				t.Fatal(err)
			}
			aud := s.Audit
			// Audit rule names drop parameter suffixes (trimmed-mean(0.25)
			// reports as trimmed-mean) to keep recording allocation-free.
			if !strings.HasPrefix(rule.Name(), aud.Rule) || aud.Rule == "" {
				t.Errorf("audit rule = %q, want prefix of %q", aud.Rule, rule.Name())
			}
			if len(aud.Decisions) != len(updates) {
				t.Fatalf("audit covers %d updates, want %d", len(aud.Decisions), len(updates))
			}
			if name == "mean" {
				for i, d := range aud.Decisions {
					if d != DecisionKept {
						t.Errorf("mean filtered update %d (%v)", i, d)
					}
				}
				return
			}
			for i := range updates {
				if byz[i] && aud.Decisions[i] == DecisionKept {
					t.Errorf("outlier %d kept at full weight by %s", i, name)
				}
			}
			honestKept := 0
			for i := range updates {
				if !byz[i] && aud.Decisions[i] == DecisionKept {
					honestKept++
				}
			}
			if name == "krum" {
				// Classic Krum selects exactly one update — it just has to
				// be an honest one.
				if honestKept != 1 {
					t.Errorf("krum kept %d honest updates, want exactly 1", honestKept)
				}
				return
			}
			if honestKept <= (len(updates)-len(byz))/2 {
				t.Errorf("%s kept only %d of %d honest updates", name, honestKept, len(updates)-len(byz))
			}
		})
	}
}

// TestAuditDoesNotChangeOutput pins that auditing is a pure observer: for
// every rule the aggregate with auditing enabled is bit-identical to the
// aggregate without.
func TestAuditDoesNotChangeOutput(t *testing.T) {
	updates, _ := auditPopulation()
	dim := len(updates[0])
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plain := tensor.NewVector(dim)
		if err := rule.AggregateInto(plain, NewScratch(1), updates); err != nil {
			t.Fatal(err)
		}
		s := NewScratch(1)
		s.Audit = &FilterAudit{}
		audited := tensor.NewVector(dim)
		if err := rule.AggregateInto(audited, s, updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(plain, audited) {
			t.Errorf("%s: enabling the audit changed the aggregate", name)
		}
	}
}

// TestAuditAllocationFree extends the zero-allocation contract to audited
// aggregation: with a warm Scratch and a warm FilterAudit, recording the
// filtering decisions costs nothing.
func TestAuditAllocationFree(t *testing.T) {
	updates, _ := auditPopulation()
	dim := len(updates[0])
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			s := NewScratch(1)
			s.Audit = &FilterAudit{}
			dst := tensor.NewVector(dim)
			if err := rule.AggregateInto(dst, s, updates); err != nil { // warm up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := rule.AggregateInto(dst, s, updates); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("%s audited AggregateInto allocates %.1f objects/op, want 0", name, allocs)
			}
		})
	}
}

// TestAuditWeights sanity-checks the weight semantics of the scaling and
// geomed audits.
func TestAuditWeights(t *testing.T) {
	updates, byz := auditPopulation()
	dim := len(updates[0])
	t.Run("norm-bound", func(t *testing.T) {
		s := NewScratch(1)
		s.Audit = &FilterAudit{}
		dst := tensor.NewVector(dim)
		if err := (NormBound{}).AggregateInto(dst, s, updates); err != nil {
			t.Fatal(err)
		}
		for i := range updates {
			w := s.Audit.Weights[i]
			if byz[i] && w >= 1 {
				t.Errorf("outlier %d not clipped (weight %v)", i, w)
			}
			if w <= 0 || w > 1 {
				t.Errorf("clip weight %d = %v out of (0,1]", i, w)
			}
		}
	})
	t.Run("geomed", func(t *testing.T) {
		s := NewScratch(1)
		s.Audit = &FilterAudit{}
		dst := tensor.NewVector(dim)
		if err := (GeoMed{}).AggregateInto(dst, s, updates); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, w := range s.Audit.Weights {
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("geomed weights sum to %v, want 1", sum)
		}
	})
	t.Run("counts", func(t *testing.T) {
		s := NewScratch(1)
		s.Audit = &FilterAudit{}
		dst := tensor.NewVector(dim)
		if err := (Krum{FFraction: 0.25}).AggregateInto(dst, s, updates); err != nil {
			t.Fatal(err)
		}
		kept, clipped, trimmed := s.Audit.Counts()
		if kept+clipped+trimmed != len(updates) {
			t.Errorf("counts %d+%d+%d != %d", kept, clipped, trimmed, len(updates))
		}
		if trimmed < len(byz) {
			t.Errorf("multi-krum trimmed %d, want >= %d", trimmed, len(byz))
		}
	})
}
