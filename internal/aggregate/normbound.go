package aggregate

import (
	"abdhfl/internal/tensor"
)

// NormBound is the norm-clipping defence (the "Clipping" strategy row of
// Table II in its simplest form, as used by FLTrust-style systems): every
// update's Euclidean norm is clipped to Factor times the median update norm
// before plain averaging. It cannot exclude direction-poisoned updates, but
// it bounds how much any single member can move the aggregate — a cheap
// first line of defence often composed with other rules.
type NormBound struct {
	// Factor scales the median norm to the clipping radius; zero selects 1.
	Factor float64
}

// Name implements Aggregator.
func (NormBound) Name() string { return "norm-bound" }

// Aggregate implements Aggregator.
func (a NormBound) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	factor := a.Factor
	if factor == 0 {
		factor = 1
	}
	norms := make([]float64, len(updates))
	for i, u := range updates {
		norms[i] = tensor.Norm2(u)
	}
	radius := factor * tensor.Median(norms)
	clipped := make([]tensor.Vector, len(updates))
	for i, u := range updates {
		c := u.Clone()
		if radius > 0 {
			tensor.Clip(c, radius)
		}
		clipped[i] = c
	}
	return tensor.Mean(tensor.NewVector(len(updates[0])), clipped), nil
}

func init() {
	registry["norm-bound"] = func() Aggregator { return NormBound{} }
}
