package aggregate

import (
	"abdhfl/internal/tensor"
)

// NormBound is the norm-clipping defence (the "Clipping" strategy row of
// Table II in its simplest form, as used by FLTrust-style systems): every
// update's Euclidean norm is clipped to Factor times the median update norm
// before plain averaging. It cannot exclude direction-poisoned updates, but
// it bounds how much any single member can move the aggregate — a cheap
// first line of defence often composed with other rules.
type NormBound struct {
	// Factor scales the median norm to the clipping radius; zero selects 1.
	Factor float64
}

// Name implements Aggregator.
func (NormBound) Name() string { return "norm-bound" }

// Aggregate implements Aggregator.
func (a NormBound) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator. Clipping and averaging fuse into one
// ScaledMeanWS pass: per-update clip factors replace the clone-then-clip of
// the naive formulation (an unclipped update gets scale 1, contributing
// exactly itself).
func (a NormBound) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	factor := a.Factor
	if factor == 0 {
		factor = 1
	}
	s := scratch.resolve()
	n := len(updates)
	norms := growFloats(&s.norms, n)
	tensor.NormsWS(norms, updates, s.Workers)
	tmp := growFloats(&s.tmp, n)
	copy(tmp, norms)
	radius := factor * tensor.MedianInPlace(tmp)
	scales := growFloats(&s.scales, n)
	for i, nm := range norms {
		// Reproduces tensor.Clip's condition and scalar exactly.
		if radius > 0 && nm > radius {
			scales[i] = radius / nm
		} else {
			scales[i] = 1
		}
	}
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), n)
		aud.recordScales(scales)
	}
	tensor.ScaledMeanWS(dst, updates, scales, s.Workers)
	return finiteOut(dst)
}

func init() {
	registry["norm-bound"] = func() Aggregator { return NormBound{} }
}
