package aggregate

import (
	"fmt"
	"sort"

	"abdhfl/internal/tensor"
)

// Krum is the rule of Blanchard et al. (2017). Each update is scored by the
// sum of its n-f-2 smallest squared distances to the other updates; Krum
// selects the single lowest-scored update, MultiKrum (M > 1) averages the M
// lowest-scored ones.
//
// F may be given either as an absolute count (F >= 1) or, matching the
// paper's "assumed proportion of malicious nodes in Krum's algorithm set to
// 25%", as a fraction via FFraction; the effective f is
// max(F, floor(FFraction*n)).
type Krum struct {
	F         int     // assumed number of Byzantine updates
	FFraction float64 // assumed Byzantine fraction of n (paper: 0.25)
	M         int     // updates averaged; 1 = classic Krum, >1 = MultiKrum
}

// NewMultiKrum returns the MultiKrum configuration used by the paper's IID
// experiments: assumed Byzantine fraction frac, averaging all selected
// updates (m = n - f at aggregation time when M is 0).
func NewMultiKrum(frac float64) Krum { return Krum{FFraction: frac} }

// Name implements Aggregator.
func (a Krum) Name() string {
	if a.M == 1 {
		return "krum"
	}
	return "multi-krum"
}

// thresholds resolves the effective (f, k, m) for an n-member update set —
// the single source of truth shared by Aggregate and Selected so the two
// paths cannot drift:
//
//   - f: assumed Byzantine count, max(F, floor(FFraction*n)).
//   - k: neighbours per Krum score. Krum needs n-f-2 >= 1; with tiny quorums
//     (n <= f+2) it falls back to nearest-neighbour scoring (k = 1) so small
//     clusters — the paper's cluster size is 4 — remain servable; the
//     selection property (an update surrounded by honest peers wins) is
//     preserved.
//   - m: updates averaged; M == 0 selects the MultiKrum default n-f (all
//     presumed-honest updates), clamped to [1, n].
func (a Krum) thresholds(n int) (f, k, m int, err error) {
	f = a.F
	if ff := int(a.FFraction * float64(n)); ff > f {
		f = ff
	}
	if f < 0 {
		return 0, 0, 0, fmt.Errorf("aggregate: krum with negative f")
	}
	k = n - f - 2
	if k < 1 {
		k = 1
	}
	m = a.M
	if m == 0 {
		m = n - f
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return f, k, m, nil
}

// Aggregate implements Aggregator.
func (a Krum) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	n := len(updates)
	_, k, m, err := a.thresholds(n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return updates[0].Clone(), nil
	}
	order := krumOrder(updates, k)
	if m == 1 {
		return updates[order[0]].Clone(), nil
	}
	chosen := make([]tensor.Vector, m)
	for i := 0; i < m; i++ {
		chosen[i] = updates[order[i]]
	}
	return tensor.Mean(tensor.NewVector(len(updates[0])), chosen), nil
}

// krumOrder returns the update indices sorted by ascending Krum score.
func krumOrder(updates []tensor.Vector, k int) []int {
	scores := krumScores(updates, k)
	order := make([]int, len(updates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return scores[order[x]] < scores[order[y]] })
	return order
}

// krumScores returns, for each update, the sum of its k smallest squared
// distances to the other updates.
func krumScores(updates []tensor.Vector, k int) []float64 {
	n := len(updates)
	d := tensor.PairwiseSquaredDistances(updates)
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, d[i][j])
			}
		}
		sort.Float64s(row)
		kk := k
		if kk > len(row) {
			kk = len(row)
		}
		s := 0.0
		for _, v := range row[:kk] {
			s += v
		}
		scores[i] = s
	}
	return scores
}

// Selected returns the indices MultiKrum would average for the given update
// set, in score order. It is exposed for analysis tools and tests.
func (a Krum) Selected(updates []tensor.Vector) ([]int, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	_, k, m, err := a.thresholds(len(updates))
	if err != nil {
		return nil, err
	}
	return krumOrder(updates, k)[:m], nil
}
