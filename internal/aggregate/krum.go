package aggregate

import (
	"fmt"
	"slices"

	"abdhfl/internal/tensor"
)

// Krum is the rule of Blanchard et al. (2017). Each update is scored by the
// sum of its n-f-2 smallest squared distances to the other updates; Krum
// selects the single lowest-scored update, MultiKrum (M > 1) averages the M
// lowest-scored ones.
//
// F may be given either as an absolute count (F >= 1) or, matching the
// paper's "assumed proportion of malicious nodes in Krum's algorithm set to
// 25%", as a fraction via FFraction; the effective f is
// max(F, floor(FFraction*n)).
type Krum struct {
	F         int     // assumed number of Byzantine updates
	FFraction float64 // assumed Byzantine fraction of n (paper: 0.25)
	M         int     // updates averaged; 1 = classic Krum, >1 = MultiKrum
}

// NewMultiKrum returns the MultiKrum configuration used by the paper's IID
// experiments: assumed Byzantine fraction frac, averaging all selected
// updates (m = n - f at aggregation time when M is 0).
func NewMultiKrum(frac float64) Krum { return Krum{FFraction: frac} }

// Name implements Aggregator.
func (a Krum) Name() string {
	if a.M == 1 {
		return "krum"
	}
	return "multi-krum"
}

// thresholds resolves the effective (f, k, m) for an n-member update set —
// the single source of truth shared by Aggregate and Selected so the two
// paths cannot drift:
//
//   - f: assumed Byzantine count, max(F, floor(FFraction*n)).
//   - k: neighbours per Krum score. Krum needs n-f-2 >= 1; with tiny quorums
//     (n <= f+2) it falls back to nearest-neighbour scoring (k = 1) so small
//     clusters — the paper's cluster size is 4 — remain servable; the
//     selection property (an update surrounded by honest peers wins) is
//     preserved.
//   - m: updates averaged; M == 0 selects the MultiKrum default n-f (all
//     presumed-honest updates), clamped to [1, n].
func (a Krum) thresholds(n int) (f, k, m int, err error) {
	f = a.F
	if ff := int(a.FFraction * float64(n)); ff > f {
		f = ff
	}
	if f < 0 {
		return 0, 0, 0, fmt.Errorf("aggregate: krum with negative f")
	}
	k = n - f - 2
	if k < 1 {
		k = 1
	}
	m = a.M
	if m == 0 {
		m = n - f
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return f, k, m, nil
}

// Aggregate implements Aggregator.
func (a Krum) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a Krum) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	n := len(updates)
	_, k, m, err := a.thresholds(n)
	if err != nil {
		return err
	}
	s := scratch.resolve()
	if n == 1 {
		copy(dst, updates[0])
		if aud := s.Audit; aud != nil {
			aud.begin(a.Name(), 1)
		}
		return nil
	}
	order := krumOrderWS(s, updates, k)
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), n)
		aud.keepOnly(order[:m])
	}
	if m == 1 {
		copy(dst, updates[order[0]])
		return nil
	}
	chosen := growVecs(&s.chosen, m)
	for i := 0; i < m; i++ {
		chosen[i] = updates[order[i]]
	}
	tensor.MeanWS(dst, chosen, s.Workers)
	return finiteOut(dst)
}

// krumOrderWS fills s.order with the update indices sorted by ascending Krum
// score (ties by index) and returns it.
func krumOrderWS(s *Scratch, updates []tensor.Vector, k int) []int {
	n := len(updates)
	dists := growFloats(&s.dists, n*n)
	sqn := growFloats(&s.sqn, n)
	tensor.PairwiseSquaredDistancesWS(dists, sqn, updates, s.Workers)
	scores := growFloats(&s.scores, n)
	row := growFloats(&s.row, n)
	alive := growInts(&s.idx, n)
	for i := range alive {
		alive[i] = i
	}
	for i := 0; i < n; i++ {
		scores[i] = krumScoreAt(dists, n, alive, i, k, row)
	}
	order := growInts(&s.order, n)
	scoreOrder(order, scores)
	return order
}

// krumScoreAt computes the Krum score of alive[ai]: the sum of its k smallest
// squared distances to the other alive updates, summed in ascending order
// (selection finds the k smallest, a final small sort fixes their order so
// the sum matches the fully-sorted formulation bit for bit).
func krumScoreAt(dists []float64, n int, alive []int, ai, k int, row []float64) float64 {
	r := row[:0]
	i := alive[ai]
	for aj, j := range alive {
		if aj != ai {
			r = append(r, dists[i*n+j])
		}
	}
	if k > len(r) {
		k = len(r)
	}
	if k < len(r) {
		tensor.SelectKth(r, k-1)
	}
	smallest := r[:k]
	slices.Sort(smallest)
	s := 0.0
	for _, v := range smallest {
		s += v
	}
	return s
}

// scoreOrder fills order with 0..n-1 sorted by ascending scores, ties by
// index (stable insertion sort — no closure, no allocation).
func scoreOrder(order []int, scores []float64) {
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		o := order[i]
		j := i - 1
		for j >= 0 && scores[order[j]] > scores[o] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = o
	}
}

// Selected returns the indices MultiKrum would average for the given update
// set, in score order. It is exposed for analysis tools and tests.
func (a Krum) Selected(updates []tensor.Vector) ([]int, error) {
	if err := checkUpdates(updates); err != nil {
		return nil, err
	}
	_, k, m, err := a.thresholds(len(updates))
	if err != nil {
		return nil, err
	}
	if len(updates) == 1 {
		return []int{0}, nil
	}
	s := &Scratch{Workers: 1}
	order := krumOrderWS(s, updates, k)
	out := make([]int, m)
	copy(out, order[:m])
	return out, nil
}
