package aggregate

import (
	"abdhfl/internal/tensor"
)

// Decision classifies how an aggregation rule treated one update.
type Decision uint8

const (
	// DecisionKept: the update entered the aggregate at full weight.
	DecisionKept Decision = iota
	// DecisionClipped: the update contributed with reduced weight
	// (norm-bound / centered-clipping scale < 1).
	DecisionClipped
	// DecisionTrimmed: the update was excluded (or, for coordinate rules,
	// trimmed on far more coordinates than chance predicts).
	DecisionTrimmed
)

// String returns the decision's report label.
func (d Decision) String() string {
	switch d {
	case DecisionKept:
		return "kept"
	case DecisionClipped:
		return "clipped"
	default:
		return "trimmed"
	}
}

// FilterAudit, when attached to Scratch.Audit, makes every AggregateInto
// record which updates it kept, clipped, or trimmed — the raw material of
// the per-level filter precision/recall experiments. Recording reuses the
// audit's own buffers, so the zero-allocation steady state of the rules is
// preserved; the audit never changes what a rule computes, only observes
// it. Contents are valid after a successful AggregateInto and until the
// next call with the same Scratch.
//
// Selection rules (krum, multi-krum, bulyan, cosine-clustering) report
// exact per-update decisions. Scaling rules (norm-bound, centered-clipping)
// mark updates whose final clip scale fell below 1 as clipped, with the
// scale in Weights. Coordinate rules (median, trimmed-mean) have no
// per-update verdict — each coordinate trims independently — so the audit
// counts, per update, the fraction of coordinates on which it was trimmed
// (TrimFrac) and marks the update trimmed when that fraction exceeds the
// midpoint between the chance rate and 1; geomed similarly thresholds its
// Weiszfeld weights at half the uniform weight 1/n.
type FilterAudit struct {
	// Rule is the display name of the rule that produced the audit.
	Rule string
	// Decisions[i] is update i's verdict.
	Decisions []Decision
	// Weights[i] is update i's contribution weight where the rule defines
	// one (clip scale for scaling rules, normalised Weiszfeld weight for
	// geomed); 1 elsewhere.
	Weights []float64
	// TrimFrac[i] is the fraction of coordinates on which update i was
	// trimmed (coordinate rules only; 0 elsewhere).
	TrimFrac []float64

	col  []float64 // one original coordinate column
	work []float64 // quickselect work copy of col
	cnt  []int     // per-update kept-coordinate counts
}

// begin resets the audit for a rule over n updates, defaulting every
// decision to kept at weight 1.
func (a *FilterAudit) begin(rule string, n int) {
	a.Rule = rule
	if cap(a.Decisions) < n {
		a.Decisions = make([]Decision, n)
	}
	a.Decisions = a.Decisions[:n]
	a.Weights = growFloats(&a.Weights, n)
	a.TrimFrac = growFloats(&a.TrimFrac, n)
	for i := 0; i < n; i++ {
		a.Decisions[i] = DecisionKept
		a.Weights[i] = 1
		a.TrimFrac[i] = 0
	}
}

// Counts tallies the decisions.
func (a *FilterAudit) Counts() (kept, clipped, trimmed int) {
	for _, d := range a.Decisions {
		switch d {
		case DecisionKept:
			kept++
		case DecisionClipped:
			clipped++
		default:
			trimmed++
		}
	}
	return
}

// keepOnly marks exactly the listed updates kept and every other trimmed.
func (a *FilterAudit) keepOnly(kept []int) {
	for i := range a.Decisions {
		a.Decisions[i] = DecisionTrimmed
	}
	for _, i := range kept {
		a.Decisions[i] = DecisionKept
	}
}

// recordScales marks updates with clip scale < 1 as clipped and copies the
// scales into Weights.
func (a *FilterAudit) recordScales(scales []float64) {
	for i, sc := range scales {
		a.Weights[i] = sc
		if sc < 1 {
			a.Decisions[i] = DecisionClipped
		} else {
			a.Decisions[i] = DecisionKept
		}
	}
}

// recordCoordinates audits a coordinate-wise rule that keeps, per
// coordinate, the values at sorted ranks [loRank, hiRank]. For each update
// it counts the coordinates whose value lies inside the kept value range
// (ties count as kept, so the measure is conservative), fills TrimFrac, and
// marks the update trimmed when its trim fraction exceeds the midpoint
// between the chance rate (n-kept)/n and 1 — an update trimmed that often
// is being systematically pushed to the extremes, which is exactly the
// behaviour the rule defends against.
func (a *FilterAudit) recordCoordinates(updates []tensor.Vector, loRank, hiRank int) {
	n := len(updates)
	dim := len(updates[0])
	if dim == 0 {
		return
	}
	col := growFloats(&a.col, n)
	work := growFloats(&a.work, n)
	cnt := growInts(&a.cnt, n)
	for i := range cnt {
		cnt[i] = 0
	}
	for j := 0; j < dim; j++ {
		for i, u := range updates {
			col[i] = u[j]
		}
		copy(work, col)
		// After selecting the hiRank-th value the prefix work[:hiRank+1]
		// holds the hiRank+1 smallest, so the lo statistic is selected from
		// that prefix without re-scanning the tail.
		hi := tensor.SelectKth(work, hiRank)
		lo := hi
		if loRank < hiRank {
			lo = tensor.SelectKth(work[:hiRank+1], loRank)
		}
		for i, v := range col {
			if v >= lo && v <= hi {
				cnt[i]++
			}
		}
	}
	chance := float64(n-(hiRank-loRank+1)) / float64(n)
	threshold := (chance + 1) / 2
	for i := range a.Decisions {
		a.TrimFrac[i] = 1 - float64(cnt[i])/float64(dim)
		if a.TrimFrac[i] > threshold {
			a.Decisions[i] = DecisionTrimmed
		} else {
			a.Decisions[i] = DecisionKept
		}
	}
}

// recordGeoMedWeights derives per-update Weiszfeld weights from the final
// geometric median: weight_i ∝ 1/dist(median, update_i), normalised to sum
// 1. Updates whose weight falls below half the uniform share 1/n are marked
// trimmed — the geometric median has effectively ignored them. An update
// coinciding with the median receives the entire weight mass of the
// zero-distance group.
func (a *FilterAudit) recordGeoMedWeights(dists []float64) {
	n := len(dists)
	zero := 0
	for _, d := range dists {
		if d == 0 {
			zero++
		}
	}
	if zero > 0 {
		for i, d := range dists {
			if d == 0 {
				a.Weights[i] = 1 / float64(zero)
			} else {
				a.Weights[i] = 0
			}
		}
	} else {
		sum := 0.0
		for _, d := range dists {
			sum += 1 / d
		}
		for i, d := range dists {
			a.Weights[i] = (1 / d) / sum
		}
	}
	threshold := 1 / (2 * float64(n))
	for i, w := range a.Weights {
		if w < threshold {
			a.Decisions[i] = DecisionTrimmed
		} else {
			a.Decisions[i] = DecisionKept
		}
	}
}
