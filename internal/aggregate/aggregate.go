// Package aggregate implements the Byzantine-robust aggregation (BRA) rules
// of the paper's Table II: plain/weighted federated averaging, Krum and
// MultiKrum (Euclidean distance), coordinate Median and TrimmedMean (mean
// value / median), geometric median (GeoMed), Centered Clipping, and
// cosine-similarity clustering. All rules consume flat parameter vectors (see
// nn.Model.Params) and implement a single Aggregator interface so any level
// of the ABD-HFL tree can be configured with any rule.
//
// Every rule offers two entry points: AggregateInto, the allocation-free
// steady-state form that writes into a caller-owned destination and reuses a
// Scratch across rounds, and Aggregate, a convenience shim that allocates
// both. Either way the result is bit-identical for every worker count.
package aggregate

import (
	"errors"
	"fmt"

	"abdhfl/internal/tensor"
)

// ErrNoUpdates is returned when an aggregation rule receives zero updates.
var ErrNoUpdates = errors.New("aggregate: no updates to aggregate")

// ErrNonFinite is returned when a rule's arithmetic overflows to NaN or ±Inf
// even though every input was finite (e.g. averaging values near the float64
// range limit). Callers treat it like any other malformed-quorum error: the
// aggregation is rejected rather than poisoning the model with non-finite
// parameters.
var ErrNonFinite = errors.New("aggregate: aggregation overflowed to non-finite values")

// finiteOut is every rule's success-path postcondition: an aggregation that
// returns nil must have written only finite values into dst.
func finiteOut(dst tensor.Vector) error {
	if !tensor.AllFinite(dst) {
		return ErrNonFinite
	}
	return nil
}

// Aggregator combines parameter vectors into one. Implementations must not
// modify the input vectors.
type Aggregator interface {
	// Name identifies the rule in configs and reports.
	Name() string
	// Aggregate returns the combined vector. Implementations return an error
	// (never panic) when the update set violates the rule's preconditions,
	// because in the asynchronous protocol a malformed quorum is an expected
	// runtime condition, not a programming error.
	Aggregate(updates []tensor.Vector) (tensor.Vector, error)
	// AggregateInto writes the combined vector into dst, reusing scratch's
	// buffers so the steady state allocates nothing. dst must have the
	// updates' dimension and must not alias any update; scratch may be nil
	// (one-shot buffers are then allocated). On error dst's contents are
	// unspecified.
	AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error
}

func checkUpdates(updates []tensor.Vector) error {
	if len(updates) == 0 {
		return ErrNoUpdates
	}
	dim := len(updates[0])
	for i, u := range updates {
		if len(u) != dim {
			return fmt.Errorf("aggregate: update %d has dim %d, want %d", i, len(u), dim)
		}
		if !tensor.AllFinite(u) {
			return fmt.Errorf("aggregate: update %d contains non-finite values", i)
		}
	}
	return nil
}

// aggregateVia implements the legacy allocate-and-return form on top of a
// rule's AggregateInto.
func aggregateVia(a Aggregator, updates []tensor.Vector) (tensor.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	dst := tensor.NewVector(len(updates[0]))
	if err := a.AggregateInto(dst, nil, updates); err != nil {
		return nil, err
	}
	return dst, nil
}

// Mean is plain federated averaging (FedAvg). It has no Byzantine tolerance:
// a single malicious update can move the aggregate arbitrarily, which is the
// baseline the robust rules are compared against.
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (a Mean) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a Mean) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	s := scratch.resolve()
	tensor.MeanWS(dst, updates, s.Workers)
	if aud := s.Audit; aud != nil {
		// Plain averaging filters nothing: every update is kept.
		aud.begin(a.Name(), len(updates))
	}
	return finiteOut(dst)
}

// Median is the coordinate-wise median rule of Yin et al. (2018).
type Median struct{}

// Name implements Aggregator.
func (Median) Name() string { return "median" }

// Aggregate implements Aggregator.
func (a Median) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a Median) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	s := scratch.resolve()
	n := len(updates)
	tensor.CoordinateMedianWS(dst, updates, s.columns(n), s.Workers)
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), n)
		// The median keeps rank (n-1)/2, or the two middle ranks for even n.
		aud.recordCoordinates(updates, (n-1)/2, n/2)
	}
	return finiteOut(dst)
}

// TrimmedMean is the coordinate-wise trimmed mean of Yin et al. (2018),
// removing TrimFraction of the updates at each extreme per coordinate.
type TrimmedMean struct {
	// TrimFraction in [0, 0.5); the number trimmed per side is
	// floor(TrimFraction * n), at least 1 when TrimFraction > 0 and n > 2.
	TrimFraction float64
}

// Name implements Aggregator.
func (a TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(%.2f)", a.TrimFraction) }

// Aggregate implements Aggregator.
func (a TrimmedMean) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a TrimmedMean) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	n := len(updates)
	trim := int(a.TrimFraction * float64(n))
	if a.TrimFraction > 0 && trim == 0 && n > 2 {
		trim = 1
	}
	if 2*trim >= n {
		return fmt.Errorf("aggregate: trimmed mean would remove all %d updates (trim %d per side)", n, trim)
	}
	s := scratch.resolve()
	tensor.CoordinateTrimmedMeanWS(dst, updates, trim, s.columns(n), s.Workers)
	if aud := s.Audit; aud != nil {
		// The family name, not Name(): formatting the fraction would put an
		// allocation on the audited hot path.
		aud.begin("trimmed-mean", n)
		aud.recordCoordinates(updates, trim, n-1-trim)
	}
	return finiteOut(dst)
}

// GeoMed aggregates by the geometric median (Chen et al. 2017), computed via
// Weiszfeld's iteration.
type GeoMed struct {
	// Tol and MaxIter bound the Weiszfeld iteration; zero values select
	// 1e-8 and 200.
	Tol     float64
	MaxIter int
}

// Name implements Aggregator.
func (GeoMed) Name() string { return "geomed" }

// Aggregate implements Aggregator.
func (a GeoMed) Aggregate(updates []tensor.Vector) (tensor.Vector, error) {
	return aggregateVia(a, updates)
}

// AggregateInto implements Aggregator.
func (a GeoMed) AggregateInto(dst tensor.Vector, scratch *Scratch, updates []tensor.Vector) error {
	if err := checkUpdates(updates); err != nil {
		return err
	}
	tol := a.Tol
	if tol == 0 {
		tol = 1e-8
	}
	maxIter := a.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}
	s := scratch.resolve()
	next := s.vector(len(updates[0]))
	dists := growFloats(&s.norms, len(updates))
	tensor.GeometricMedianWS(dst, updates, tol, maxIter, next, dists, s.Workers)
	if aud := s.Audit; aud != nil {
		aud.begin(a.Name(), len(updates))
		// Distances from the converged median define the Weiszfeld weights.
		tensor.DistancesWS(dists, dst, updates, s.Workers)
		aud.recordGeoMedWeights(dists)
	}
	return finiteOut(dst)
}
