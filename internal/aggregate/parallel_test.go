package aggregate

import (
	"math"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// Worker-count determinism, mirroring internal/consensus/parallel_test.go:
// every aggregation rule must produce bit-identical output for every Workers
// value. The update sets are sized past tensor's parallel threshold
// (n*dim >= 1<<16) so the fan-out paths genuinely engage.

func bitsEqual(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func parallelPopulation(seed uint64, n, dim int) []tensor.Vector {
	r := rng.New(seed)
	honest := honestPopulation(r, n*3/4, dim, center(dim, 1), 0.1)
	byz := honestPopulation(r, n-len(honest), dim, center(dim, -20), 0.5)
	return append(honest, byz...)
}

func TestAggregateWorkerCountInvariance(t *testing.T) {
	const n, dim = 16, 6000
	updates := parallelPopulation(7, n, dim)
	for _, name := range Names() {
		rule, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			ref := tensor.NewVector(dim)
			if err := rule.AggregateInto(ref, NewScratch(1), updates); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				got := tensor.NewVector(dim)
				if err := rule.AggregateInto(got, NewScratch(workers), updates); err != nil {
					t.Fatal(err)
				}
				if !bitsEqual(got, ref) {
					t.Errorf("workers=%d output differs from serial", workers)
				}
			}
			// Scratch reuse across rounds must not change results either.
			s := NewScratch(8)
			for round := 0; round < 3; round++ {
				got := tensor.NewVector(dim)
				if err := rule.AggregateInto(got, s, updates); err != nil {
					t.Fatal(err)
				}
				if !bitsEqual(got, ref) {
					t.Errorf("round %d with reused scratch differs from serial", round)
				}
			}
		})
	}
}

// TestAggregateIntoMatchesLegacySemantics anchors the selection-based
// kernels to independent sort-based reference implementations for the rules
// whose outputs are pure coordinate statistics.
func TestAggregateIntoMatchesLegacySemantics(t *testing.T) {
	const n, dim = 13, 2000
	updates := parallelPopulation(11, n, dim)

	t.Run("median", func(t *testing.T) {
		want := tensor.CoordinateMedian(tensor.NewVector(dim), updates)
		got := tensor.NewVector(dim)
		if err := (Median{}).AggregateInto(got, NewScratch(4), updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Error("median differs from sort-based CoordinateMedian")
		}
	})
	t.Run("trimmed-mean", func(t *testing.T) {
		want := tensor.CoordinateTrimmedMean(tensor.NewVector(dim), updates, 3)
		got := tensor.NewVector(dim)
		if err := (TrimmedMean{TrimFraction: float64(3) / n}).AggregateInto(got, NewScratch(4), updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Error("trimmed mean differs from sort-based CoordinateTrimmedMean")
		}
	})
	t.Run("geomed", func(t *testing.T) {
		want := tensor.GeometricMedian(tensor.NewVector(dim), updates, 1e-8, 200)
		got := tensor.NewVector(dim)
		if err := (GeoMed{}).AggregateInto(got, NewScratch(4), updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Error("geomed differs from serial GeometricMedian")
		}
	})
	t.Run("mean", func(t *testing.T) {
		want := tensor.Mean(tensor.NewVector(dim), updates)
		got := tensor.NewVector(dim)
		if err := (Mean{}).AggregateInto(got, NewScratch(4), updates); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Error("mean differs from serial Mean")
		}
	})
}
