package aggregate

import (
	"fmt"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// Per-rule aggregation microbenchmarks, run by cmd/abdhfl-bench alongside the
// end-to-end Table 5 cells. The sizes bracket the repository's real loads:
// n=16 is one Table 5 cluster, n=64 the vanilla-FL server; d=4096 is near the
// experiment model (~2.4k params) and d=50000 a larger-model stress case.
// Each op is one steady-state AggregateInto with a warm Scratch — the shape
// every engine now uses per round.
func BenchmarkAggregateRules(b *testing.B) {
	for _, size := range []struct{ n, dim int }{
		{16, 4096},
		{16, 50000},
		{64, 4096},
		{64, 50000},
	} {
		r := rng.New(uint64(size.n*100000 + size.dim))
		honest := honestPopulation(r, size.n*3/4, size.dim, center(size.dim, 1), 0.1)
		byz := honestPopulation(r, size.n-len(honest), size.dim, center(size.dim, -20), 0.5)
		updates := append(honest, byz...)
		for _, name := range Names() {
			rule, err := ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n%d-d%d", name, size.n, size.dim), func(b *testing.B) {
				s := NewScratch(0)
				dst := tensor.NewVector(size.dim)
				if err := rule.AggregateInto(dst, s, updates); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rule.AggregateInto(dst, s, updates); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
