package aggregate_test

import (
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/tensor"
)

// The coordinate median ignores a massive outlier that would drag the mean
// arbitrarily far.
func ExampleMedian_Aggregate() {
	updates := []tensor.Vector{
		{1.0, 1.0}, {1.1, 0.9}, {0.9, 1.1}, {1.0, 1.0}, {1e9, -1e9},
	}
	med, _ := aggregate.Median{}.Aggregate(updates)
	mean, _ := aggregate.Mean{}.Aggregate(updates)
	fmt.Printf("median: [%.2f %.2f]\n", med[0], med[1])
	fmt.Printf("mean dragged to ~%.0e\n", mean[0])
	// Output:
	// median: [1.00 1.00]
	// mean dragged to ~2e+08
}

// MultiKrum selects the mutually-closest updates and averages them,
// excluding the planted outliers entirely.
func ExampleKrum_Aggregate() {
	updates := []tensor.Vector{
		{1.0}, {1.01}, {0.99}, {1.02}, {-50}, {-50},
	}
	mk := aggregate.Krum{F: 2}
	out, _ := mk.Aggregate(updates)
	fmt.Printf("%.2f\n", out[0])
	// Output: 1.00
}
