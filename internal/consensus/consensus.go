// Package consensus implements the consensus-based aggregation (CBA) family
// of the paper's Table II: the validation-voting consensus deployed at
// ABD-HFL's top level (Appendix D-B, inspired by the PoS-style validation of
// Chen et al.), a committee-based consensus, and a coordinate-wise Byzantine
// approximate ε-agreement ("multidimensional consensus"). Protocols run over
// an abstract membership where some members may be Byzantine, and report
// message/round counts for the paper's communication-cost comparisons
// (Table IV).
package consensus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// ErrNoProposals is returned when a protocol receives zero proposals.
var ErrNoProposals = errors.New("consensus: no proposals")

// Validator scores a proposed model from the viewpoint of one member —
// typically the model's accuracy on the member's private validation shard.
// Higher is better.
type Validator func(member int, model tensor.Vector) float64

// Context carries the membership and environment of one consensus instance.
type Context struct {
	// Members is the number of participants; member indices are
	// [0, Members). proposals[i] is member i's proposal.
	Members int
	// Byzantine marks members that deviate from the protocol (vote
	// adversarially, send extreme values). May be nil.
	Byzantine map[int]bool
	// Validator scores proposals for voting/committee protocols; protocols
	// that need it return an error when it is nil. When Workers > 1 the
	// validator is called from multiple goroutines and must be
	// concurrency-safe (the engines' validators are: they score on pooled
	// per-call models).
	Validator Validator
	// Rand drives committee sampling and Byzantine value generation.
	Rand *rng.RNG
	// Workers bounds the goroutines used to fan out validator scoring; zero
	// or one keeps scoring on the calling goroutine. Results are identical
	// for every worker count: per-member work is independent and tallies are
	// reduced in member order.
	Workers int
	// Round is the engine round this instance runs in. Rotation-based
	// protocols derive their per-round committee (and dealer) from it;
	// protocols without rotation ignore it.
	Round int
	// Ballots optionally injects externally collected ballots — the node
	// engine gathers them over the wire from remote members. Rows[i] is
	// member i's up/down votes over the proposals, nil when member i's ballot
	// never arrived (the member is treated as crashed, within the protocol's
	// fault budget). Nil Ballots means every ballot is computed locally via
	// Validator. Protocols that do not exchange ballots ignore it.
	Ballots *BallotSet
}

// BallotSet carries per-member up/down ballots collected outside the
// protocol call (e.g. over real transport frames).
type BallotSet struct {
	// Rows[i] is member i's ballot over the proposals; nil marks a member
	// whose ballot never arrived.
	Rows [][]bool
}

// workers returns the effective scoring fan-out bound.
func (c *Context) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// forEachMember runs fn(i) for every member index in [0, n), fanning out
// over at most `workers` goroutines. fn instances must touch disjoint state
// (each member writes only its own result slot).
func forEachMember(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func (c *Context) isByz(i int) bool { return c.Byzantine != nil && c.Byzantine[i] }

func (c *Context) check(proposals []tensor.Vector) error {
	if len(proposals) == 0 {
		return ErrNoProposals
	}
	if c.Members != len(proposals) {
		return fmt.Errorf("consensus: %d members but %d proposals", c.Members, len(proposals))
	}
	dim := len(proposals[0])
	for i, p := range proposals {
		if len(p) != dim {
			return fmt.Errorf("consensus: proposal %d dim %d, want %d", i, len(p), dim)
		}
	}
	if c.Rand == nil {
		c.Rand = rng.New(0)
	}
	return nil
}

// Stats reports the communication footprint of one consensus instance.
type Stats struct {
	Rounds   int
	Messages int
	// ModelTransfers counts messages that carried a full model vector (the
	// expensive kind); Messages also includes scalar votes.
	ModelTransfers int
	// Excluded lists the proposal indices ruled out as malicious.
	Excluded []int
	// Votes[i] is the positive-vote tally proposal i received, for protocols
	// that vote (Voting); nil for score-ranking protocols (Committee). The
	// engines feed these tallies into the telemetry vote histograms.
	Votes []int
	// CoinRounds is the number of common-coin rounds the slowest binary
	// agreement instance needed (randomized protocols only; zero elsewhere).
	CoinRounds int
	// VirtualMS is the agreement latency in virtual milliseconds under the
	// protocol's internal delivery schedule (randomized protocols only).
	VirtualMS float64
}

// Protocol is a consensus-based aggregation rule: members agree on one model
// with malicious proposals excluded.
type Protocol interface {
	// Name identifies the protocol in configs and reports.
	Name() string
	// Agree runs the protocol and returns the agreed model.
	Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error)
}

// Voting is the paper's top-level consensus (Appendix D-B): every member
// scores every proposal on its own validation data and upvotes the
// proposals scoring within Margin of the best it saw; proposals whose
// positive-vote count falls below the keep threshold are excluded and the
// rest are averaged. Byzantine members vote inversely (upvote what honest
// members reject and vice versa).
type Voting struct {
	// Margin is the score slack below a member's best-scored proposal within
	// which it still upvotes; zero selects 0.1 (10 accuracy points).
	Margin float64
	// KeepFraction of the membership's votes a proposal needs to survive;
	// zero selects 0.5 (strict majority), matching "the fewest number of
	// positive votes are considered malicious".
	KeepFraction float64
}

// Name implements Protocol.
func (Voting) Name() string { return "voting" }

// Agree implements Protocol.
func (v Voting) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: voting requires a validator")
	}
	n := ctx.Members
	// Member scorings are independent (each member evaluates every proposal
	// on its own data), so they fan out over the context's worker bound; the
	// vote tally is reduced serially in member order, keeping the outcome
	// identical to the serial protocol.
	ballots := make([][]bool, n)
	forEachMember(ctx.workers(), n, func(member int) {
		ballots[member] = v.votes(ctx, member, proposals)
	})
	counts := make([]int, n)
	for _, ballot := range ballots {
		for i, up := range ballot {
			if up {
				counts[i]++
			}
		}
	}
	keptIdx, excluded := v.decide(counts, n)
	kept := make([]tensor.Vector, 0, len(keptIdx))
	for _, i := range keptIdx {
		kept = append(kept, proposals[i])
	}
	// Phase 1: proposal broadcast (model transfers); phase 2: vote exchange
	// (scalar messages).
	st := Stats{
		Rounds:         2,
		ModelTransfers: n * (n - 1),
		Messages:       2 * n * (n - 1),
		Excluded:       excluded,
		Votes:          counts,
	}
	out := tensor.Mean(tensor.NewVector(len(proposals[0])), kept)
	return out, st, nil
}

// Committee is a committee-based consensus (Li et al. 2020 style): a random
// committee of Size members scores every proposal; the proposals whose total
// committee score ranks in the top KeepFraction are averaged.
type Committee struct {
	// Size of the committee; zero selects ceil(n/2).
	Size int
	// KeepFraction of proposals retained; zero selects 0.5.
	KeepFraction float64
}

// Name implements Protocol.
func (Committee) Name() string { return "committee" }

// Agree implements Protocol.
func (c Committee) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: committee requires a validator")
	}
	n := ctx.Members
	size := c.Size
	if size == 0 {
		size = (n + 1) / 2
	}
	if size > n {
		size = n
	}
	keep := c.KeepFraction
	if keep == 0 {
		keep = 0.5
	}
	committee := ctx.Rand.Choice(n, size)
	return committeeAgree(ctx, proposals, committee, keep)
}

// committeeAgree is the scoring kernel shared by Committee and
// RotatingCommittee: the given committee scores every proposal, the top
// keep-fraction by total committee score is averaged.
func committeeAgree(ctx *Context, proposals []tensor.Vector, committee []int, keep float64) (tensor.Vector, Stats, error) {
	n := ctx.Members
	size := len(committee)
	// Fan the committee members' scorings out like Voting.Agree; summing the
	// per-member rows in committee order afterwards reproduces the serial
	// accumulation sequence exactly.
	rows := make([][]float64, size)
	forEachMember(ctx.workers(), size, func(ci int) {
		member := committee[ci]
		row := make([]float64, n)
		for i := range proposals {
			s := ctx.Validator(member, proposals[i])
			if ctx.isByz(member) {
				s = -s // a Byzantine committee member inverts its scoring
			}
			row[i] = s
		}
		rows[ci] = row
	})
	total := make([]float64, n)
	for _, row := range rows {
		for i, s := range row {
			total[i] += s
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })
	m := int(keep * float64(n))
	if m < 1 {
		m = 1
	}
	kept := make([]tensor.Vector, 0, m)
	var st Stats
	for rank, i := range order {
		if rank < m {
			kept = append(kept, proposals[i])
		} else {
			st.Excluded = append(st.Excluded, i)
		}
	}
	sort.Ints(st.Excluded)
	st.Rounds = 3
	st.ModelTransfers = n*size + size*n // proposals in, decision out
	st.Messages = st.ModelTransfers + size*(size-1)
	out := tensor.Mean(tensor.NewVector(len(proposals[0])), kept)
	return out, st, nil
}
