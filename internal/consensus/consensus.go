// Package consensus implements the consensus-based aggregation (CBA) family
// of the paper's Table II: the validation-voting consensus deployed at
// ABD-HFL's top level (Appendix D-B, inspired by the PoS-style validation of
// Chen et al.), a committee-based consensus, and a coordinate-wise Byzantine
// approximate ε-agreement ("multidimensional consensus"). Protocols run over
// an abstract membership where some members may be Byzantine, and report
// message/round counts for the paper's communication-cost comparisons
// (Table IV).
package consensus

import (
	"errors"
	"fmt"
	"sort"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// ErrNoProposals is returned when a protocol receives zero proposals.
var ErrNoProposals = errors.New("consensus: no proposals")

// Validator scores a proposed model from the viewpoint of one member —
// typically the model's accuracy on the member's private validation shard.
// Higher is better.
type Validator func(member int, model tensor.Vector) float64

// Context carries the membership and environment of one consensus instance.
type Context struct {
	// Members is the number of participants; member indices are
	// [0, Members). proposals[i] is member i's proposal.
	Members int
	// Byzantine marks members that deviate from the protocol (vote
	// adversarially, send extreme values). May be nil.
	Byzantine map[int]bool
	// Validator scores proposals for voting/committee protocols; protocols
	// that need it return an error when it is nil.
	Validator Validator
	// Rand drives committee sampling and Byzantine value generation.
	Rand *rng.RNG
}

func (c *Context) isByz(i int) bool { return c.Byzantine != nil && c.Byzantine[i] }

func (c *Context) check(proposals []tensor.Vector) error {
	if len(proposals) == 0 {
		return ErrNoProposals
	}
	if c.Members != len(proposals) {
		return fmt.Errorf("consensus: %d members but %d proposals", c.Members, len(proposals))
	}
	dim := len(proposals[0])
	for i, p := range proposals {
		if len(p) != dim {
			return fmt.Errorf("consensus: proposal %d dim %d, want %d", i, len(p), dim)
		}
	}
	if c.Rand == nil {
		c.Rand = rng.New(0)
	}
	return nil
}

// Stats reports the communication footprint of one consensus instance.
type Stats struct {
	Rounds   int
	Messages int
	// ModelTransfers counts messages that carried a full model vector (the
	// expensive kind); Messages also includes scalar votes.
	ModelTransfers int
	// Excluded lists the proposal indices ruled out as malicious.
	Excluded []int
}

// Protocol is a consensus-based aggregation rule: members agree on one model
// with malicious proposals excluded.
type Protocol interface {
	// Name identifies the protocol in configs and reports.
	Name() string
	// Agree runs the protocol and returns the agreed model.
	Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error)
}

// Voting is the paper's top-level consensus (Appendix D-B): every member
// scores every proposal on its own validation data and upvotes the
// proposals scoring within Margin of the best it saw; proposals whose
// positive-vote count falls below the keep threshold are excluded and the
// rest are averaged. Byzantine members vote inversely (upvote what honest
// members reject and vice versa).
type Voting struct {
	// Margin is the score slack below a member's best-scored proposal within
	// which it still upvotes; zero selects 0.1 (10 accuracy points).
	Margin float64
	// KeepFraction of the membership's votes a proposal needs to survive;
	// zero selects 0.5 (strict majority), matching "the fewest number of
	// positive votes are considered malicious".
	KeepFraction float64
}

// Name implements Protocol.
func (Voting) Name() string { return "voting" }

// Agree implements Protocol.
func (v Voting) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: voting requires a validator")
	}
	n := ctx.Members
	counts := make([]int, n)
	for member := 0; member < n; member++ {
		for i, up := range v.votes(ctx, member, proposals) {
			if up {
				counts[i]++
			}
		}
	}
	keptIdx, excluded := v.decide(counts, n)
	kept := make([]tensor.Vector, 0, len(keptIdx))
	for _, i := range keptIdx {
		kept = append(kept, proposals[i])
	}
	// Phase 1: proposal broadcast (model transfers); phase 2: vote exchange
	// (scalar messages).
	st := Stats{
		Rounds:         2,
		ModelTransfers: n * (n - 1),
		Messages:       2 * n * (n - 1),
		Excluded:       excluded,
	}
	out := tensor.Mean(tensor.NewVector(len(proposals[0])), kept)
	return out, st, nil
}

// Committee is a committee-based consensus (Li et al. 2020 style): a random
// committee of Size members scores every proposal; the proposals whose total
// committee score ranks in the top KeepFraction are averaged.
type Committee struct {
	// Size of the committee; zero selects ceil(n/2).
	Size int
	// KeepFraction of proposals retained; zero selects 0.5.
	KeepFraction float64
}

// Name implements Protocol.
func (Committee) Name() string { return "committee" }

// Agree implements Protocol.
func (c Committee) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: committee requires a validator")
	}
	n := ctx.Members
	size := c.Size
	if size == 0 {
		size = (n + 1) / 2
	}
	if size > n {
		size = n
	}
	keep := c.KeepFraction
	if keep == 0 {
		keep = 0.5
	}
	committee := ctx.Rand.Choice(n, size)
	total := make([]float64, n)
	for _, member := range committee {
		for i := range proposals {
			s := ctx.Validator(member, proposals[i])
			if ctx.isByz(member) {
				s = -s // a Byzantine committee member inverts its scoring
			}
			total[i] += s
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })
	m := int(keep * float64(n))
	if m < 1 {
		m = 1
	}
	kept := make([]tensor.Vector, 0, m)
	var st Stats
	for rank, i := range order {
		if rank < m {
			kept = append(kept, proposals[i])
		} else {
			st.Excluded = append(st.Excluded, i)
		}
	}
	sort.Ints(st.Excluded)
	st.Rounds = 3
	st.ModelTransfers = n*size + size*n // proposals in, decision out
	st.Messages = st.ModelTransfers + size*(size-1)
	out := tensor.Mean(tensor.NewVector(len(proposals[0])), kept)
	return out, st, nil
}
