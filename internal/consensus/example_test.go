package consensus_test

import (
	"fmt"

	"abdhfl/internal/consensus"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// Four top-level nodes agree on a global model; the poisoned proposal
// (index 3) scores badly on every member's validation data and is excluded.
func ExampleVoting_Agree() {
	good := tensor.Fill(tensor.NewVector(4), 1)
	proposals := []tensor.Vector{
		good.Clone(), good.Clone(), good.Clone(),
		tensor.Fill(tensor.NewVector(4), -40), // poisoned
	}
	ctx := &consensus.Context{
		Members: 4,
		Validator: func(_ int, model tensor.Vector) float64 {
			return 1 / (1 + tensor.Distance(model, good))
		},
		Rand: rng.New(1),
	}
	agreed, stats, err := consensus.Voting{}.Agree(ctx, proposals)
	if err != nil {
		panic(err)
	}
	fmt.Println("excluded proposals:", stats.Excluded)
	fmt.Printf("distance from truth: %.1f\n", tensor.Distance(agreed, good))
	// Output:
	// excluded proposals: [3]
	// distance from truth: 0.0
}
