package consensus

import (
	"errors"
	"fmt"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// This file implements the common-coin randomized Asynchronous Byzantine
// Agreement of the ROADMAP's "randomized asynchronous consensus" item, in
// the Mostéfaoui–Moumen–Raynal signature-free round structure (the ABA main
// loop of SNIPPETS.md §7):
//
//	round r:  BV-broadcast BVAL(r, est); bin_values grows as support passes
//	          f+1 (echo) and 2f+1 (deliver);
//	          broadcast AUX(r, v) for the first delivered v;
//	          wait for n-f AUX whose values all lie in bin_values;
//	          s ← common coin for round r, and grade the support:
//	            strength 2: unanimous value v and v == s → est ← v and
//	                        A-Cast COMPLETE(v);
//	            strength 1: unanimous value v, v != s  → est ← v;
//	            strength 0: both values seen           → est ← s.
//	terminate: upon t+1 = f+1 COMPLETE(v): echo COMPLETE(v), output v, halt.
//
// A received COMPLETE(v) counts as its sender's BVAL(r, v) and AUX(r, v)
// for every round, so members that terminate early keep contributing to the
// quorums of members still running — the standard liveness amendment.
//
// The protocol executes as a message-level simulation over a deterministic
// seeded scheduler: per-message delays (jitter, adversarial heavy tails,
// drop-as-retransmission penalties, duplicates) come from one labeled
// stream consumed in (deliver-at, seq) event order, the Byzantine members'
// equivocation from another, and the common coin for (instance, round) is
// derived by label alone — rng.Derive/DeriveN never advance their parent,
// so every member, every process, and every Workers setting computes the
// identical coin. That makes an ABA run a pure function of (seed, inputs),
// byte-identical across reruns, worker counts, and transports, while still
// exercising genuinely adversarial asynchronous schedules.

// Schedule shapes the seeded delivery model of the ABA simulation. The zero
// value delivers everything instantly; DefaultSchedule gives a mildly
// asynchronous network. Dropped messages become bounded retransmission
// penalties — asynchrony, not loss, matching the model ABA assumes.
type Schedule struct {
	// BaseMS is the minimum link latency in virtual milliseconds.
	BaseMS float64
	// JitterMS adds a uniform [0, JitterMS) component per message.
	JitterMS float64
	// HeavyProb is the per-message probability of an adversarial delay of
	// uniform [0, HeavyMS) extra milliseconds.
	HeavyProb float64
	// HeavyMS bounds the adversarial delay.
	HeavyMS float64
	// DropProb is the per-message probability of a first-transmission loss;
	// the retransmission lands after an extra [ResendMS, 2*ResendMS) delay.
	DropProb float64
	// ResendMS is the retransmission penalty base.
	ResendMS float64
	// DupProb is the per-message probability of a duplicate delivery
	// (receivers deduplicate, as the transport layer's DupeMap does).
	DupProb float64
}

// DefaultSchedule is the mildly asynchronous network ABA.Agree uses when no
// schedule is configured.
func DefaultSchedule() Schedule {
	return Schedule{BaseMS: 5, JitterMS: 2, HeavyProb: 0.05, HeavyMS: 20, DropProb: 0.02, ResendMS: 40, DupProb: 0.02}
}

// ABA is the common-coin randomized Asynchronous Byzantine Agreement CBA:
// members exchange validation-voting ballots (the same kernel Voting uses),
// then run one binary ABA instance per proposal on the tallied input bits.
// With zero faults every member holds the identical ballot set, so ABA's
// validity property forces the decision to equal Voting's — the equivalence
// the chaostest sweeps pin — while under crash/omission/churn the round
// structure keeps deciding where a fixed-quorum protocol would stall.
type ABA struct {
	// Margin is the ballot score slack, as in Voting; zero selects 0.1.
	Margin float64
	// KeepFraction is the ballot tally threshold, as in Voting; zero
	// selects 0.5.
	KeepFraction float64
	// MaxRounds bounds the coin rounds per binary instance; zero selects 64.
	// Termination is probabilistic (expected two coin rounds), so hitting
	// the bound is a deterministic, reproducible error, not a flake.
	MaxRounds int
	// Schedule overrides the delivery model; nil selects DefaultSchedule.
	Schedule *Schedule
	// Trace, when set, receives one line per protocol event (bin_values
	// deliveries, COMPLETE casts, round advances, decisions) — the
	// transcript the worker-invariance tests compare byte-for-byte.
	Trace func(event string)
}

// Name implements Protocol.
func (ABA) Name() string { return "aba" }

// Agree implements Protocol.
func (a ABA) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	n := ctx.Members
	f := (n - 1) / 3
	v := Voting{Margin: a.Margin, KeepFraction: a.KeepFraction}

	// --- Ballot phase: each member's up/down votes over the proposals.
	// Externally collected rows (the node engine ships them over the wire)
	// are used as-is; missing rows mark crashed members within the fault
	// budget f, and anything beyond the budget is recomputed locally so the
	// instances still satisfy their quorums deterministically.
	byzCount := 0
	for i := 0; i < n; i++ {
		if ctx.isByz(i) {
			byzCount++
		}
	}
	ballots := make([][]bool, n)
	silent := map[int]bool{}
	if ctx.Ballots != nil {
		for i := 0; i < n && i < len(ctx.Ballots.Rows); i++ {
			if row := ctx.Ballots.Rows[i]; len(row) == n {
				ballots[i] = row
			}
		}
		budget := f - byzCount
		for i := 0; i < n; i++ {
			if ballots[i] == nil && !ctx.isByz(i) && budget > 0 {
				silent[i] = true
				budget--
			}
		}
	}
	needCompute := false
	for i := range ballots {
		if ballots[i] == nil && !silent[i] {
			needCompute = true
		}
	}
	if needCompute && ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: aba requires a validator")
	}
	forEachMember(ctx.workers(), n, func(i int) {
		if ballots[i] == nil && !silent[i] {
			ballots[i] = v.votes(ctx, i, proposals)
		}
	})

	// --- Input bits: tally the ballot set every active member holds and
	// apply Voting's keep rule. Active members therefore start every binary
	// instance unanimously, and ABA validity pins the decision to the tally
	// — the genuinely divergent-input regime is RunBinaryABA's province.
	counts := make([]int, n)
	for _, b := range ballots {
		for j, up := range b {
			if up {
				counts[j]++
			}
		}
	}
	keptIdx, _ := v.decide(counts, n)
	inputBit := make([]int, n)
	for _, j := range keptIdx {
		inputBit[j] = 1
	}

	// --- One binary ABA instance per proposal. The instances are
	// independent and would run concurrently on a real wire, so latency is
	// the max over instances while messages accumulate.
	sched := DefaultSchedule()
	if a.Schedule != nil {
		sched = *a.Schedule
	}
	maxRounds := a.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	byzSet := map[int]bool{}
	for i := 0; i < n; i++ {
		if ctx.isByz(i) {
			byzSet[i] = true
		}
	}
	coinRNG := ctx.Rand.Derive("common-coin")
	inputs := make([]int, n)
	st := Stats{Votes: counts}
	var kept []tensor.Vector
	for j := 0; j < n; j++ {
		for i := range inputs {
			inputs[i] = inputBit[j]
		}
		inst := ctx.Rand.DeriveN("aba-instance", uint64(j))
		var tr func(string)
		if a.Trace != nil {
			jj := j
			tr = func(ev string) { a.Trace(fmt.Sprintf("p%d %s", jj, ev)) }
		}
		out, err := runABAInstance(inst.Derive("schedule"), inst.Derive("adversary"),
			coinRNG, uint64(j), inputs, byzSet, silent, sched, maxRounds, tr)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("consensus: aba proposal %d: %w", j, err)
		}
		decision := -1
		for _, d := range out.Decisions {
			if d < 0 {
				continue
			}
			if decision < 0 {
				decision = d
			} else if d != decision {
				return nil, Stats{}, fmt.Errorf("consensus: aba proposal %d: honest members disagree (safety violation)", j)
			}
		}
		if decision < 0 {
			return nil, Stats{}, fmt.Errorf("consensus: aba proposal %d: no honest member decided", j)
		}
		if out.Rounds > st.CoinRounds {
			st.CoinRounds = out.Rounds
		}
		if out.VirtualMS > st.VirtualMS {
			st.VirtualMS = out.VirtualMS
		}
		st.Messages += out.Messages
		if decision == 1 {
			kept = append(kept, proposals[j])
		} else {
			st.Excluded = append(st.Excluded, j)
		}
	}
	if len(kept) == 0 {
		// Unreachable with unanimous inputs (validity keeps at least the
		// tally's fallback proposal), but mirror Voting's best-count
		// fallback so the protocol can never return an empty average.
		best := 0
		for j := range counts {
			if counts[j] > counts[best] {
				best = j
			}
		}
		kept = append(kept, proposals[best])
		st.Excluded = st.Excluded[:0]
		for j := 0; j < n; j++ {
			if j != best {
				st.Excluded = append(st.Excluded, j)
			}
		}
	}
	// Proposal broadcast + ballot exchange, then the coin rounds.
	st.Rounds = 2 + st.CoinRounds
	st.ModelTransfers = n * (n - 1)
	st.Messages += 2 * n * (n - 1)
	out := tensor.Mean(tensor.NewVector(len(proposals[0])), kept)
	return out, st, nil
}

// BinaryOutcome reports one binary ABA instance.
type BinaryOutcome struct {
	// Decisions[i] is member i's decided bit; -1 for Byzantine or silent
	// members (honest members always decide when the error is nil).
	Decisions []int
	// Rounds is the highest coin round any honest member decided in.
	Rounds int
	// Messages counts every point-to-point message put on the simulated
	// wire, duplicates included.
	Messages int
	// VirtualMS is the virtual time at which the last honest member decided.
	VirtualMS float64
}

// RunBinaryABA executes one binary ABA instance with explicit per-member
// input bits under the given delivery schedule — the entry point of the
// adversarial-schedule conformance suite. byzantine members equivocate
// (driven by a seeded adversary stream); silent members never send. The run
// is a pure function of (r, inputs, byzantine, silent, sched, maxRounds).
func RunBinaryABA(r *rng.RNG, inputs []int, byzantine, silent map[int]bool, sched *Schedule, maxRounds int, trace func(string)) (BinaryOutcome, error) {
	if r == nil {
		r = rng.New(0)
	}
	cfg := DefaultSchedule()
	if sched != nil {
		cfg = *sched
	}
	if maxRounds <= 0 {
		maxRounds = 64
	}
	return runABAInstance(r.Derive("aba-schedule"), r.Derive("aba-adversary"),
		r.Derive("common-coin"), 0, inputs, byzantine, silent, cfg, maxRounds, trace)
}

// Message kinds of the binary instance.
const (
	abaBval = 1 + iota
	abaAux
	abaComplete
)

type abaMsg struct {
	kind  int
	round int
	val   int
	from  int
}

type abaEvent struct {
	at  float64
	seq uint64
	to  int
	msg abaMsg
}

// abaRoundState is one member's per-round BV-broadcast and AUX state.
type abaRoundState struct {
	sentBval [2]bool
	bval     [2]map[int]bool // BVAL(v) senders seen
	bin      [2]bool         // bin_values
	binOrder []int           // delivery order into bin_values
	auxSent  bool
	aux      map[int]int // first AUX value per sender
}

type abaNode struct {
	id           int
	byz          bool
	silent       bool
	est          int
	round        int
	rounds       map[int]*abaRoundState
	completeSent [2]bool
	completers   [2]map[int]bool // COMPLETE(v) senders seen (self included)
	decided      bool
	decision     int
	decRound     int
	terminated   bool
	burst        map[int]int // Byzantine emission budget per round
}

func (nd *abaNode) roundState(r int) *abaRoundState {
	rs, ok := nd.rounds[r]
	if !ok {
		rs = &abaRoundState{
			bval: [2]map[int]bool{{}, {}},
			aux:  map[int]int{},
		}
		nd.rounds[r] = rs
	}
	return rs
}

// abaSim runs one binary instance over a deterministic event queue: events
// are totally ordered by (deliver-at, seq), latency draws come from one
// sequential stream consumed in that order, and the common coin is derived
// by label — so the whole run replays bit-for-bit.
type abaSim struct {
	n, f      int
	maxRounds int
	cfg       Schedule
	nodes     []*abaNode
	q         []abaEvent
	seq       uint64
	now       float64
	sched     *rng.RNG
	adv       *rng.RNG
	coinRNG   *rng.RNG
	coinBase  uint64
	trace     func(string)
	messages  int
	undecided int
	lastMS    float64
	err       error
}

func runABAInstance(sched, adv, coinRNG *rng.RNG, coinBase uint64, inputs []int, byzantine, silent map[int]bool, cfg Schedule, maxRounds int, trace func(string)) (BinaryOutcome, error) {
	n := len(inputs)
	if n == 0 {
		return BinaryOutcome{}, errors.New("consensus: aba with no members")
	}
	f := (n - 1) / 3
	faulty := 0
	for i := 0; i < n; i++ {
		if byzantine[i] || silent[i] {
			faulty++
		}
	}
	if faulty > f {
		return BinaryOutcome{}, fmt.Errorf("consensus: aba with %d faulty members exceeds f=%d (n=%d)", faulty, f, n)
	}
	s := &abaSim{
		n: n, f: f, maxRounds: maxRounds, cfg: cfg,
		sched: sched, adv: adv, coinRNG: coinRNG, coinBase: coinBase,
		trace: trace,
	}
	s.nodes = make([]*abaNode, n)
	for i := 0; i < n; i++ {
		s.nodes[i] = &abaNode{
			id: i, byz: byzantine[i], silent: silent[i] && !byzantine[i],
			est:        inputs[i] & 1,
			round:      1,
			rounds:     map[int]*abaRoundState{},
			completers: [2]map[int]bool{{}, {}},
		}
		if s.nodes[i].byz {
			s.nodes[i].burst = map[int]int{}
		} else if !s.nodes[i].silent {
			s.undecided++
		}
	}
	// Round 1 openers: honest members BV-broadcast their input; Byzantine
	// members open with per-recipient equivocating BVALs.
	for _, nd := range s.nodes {
		switch {
		case nd.silent:
		case nd.byz:
			for to := 0; to < n; to++ {
				if to != nd.id {
					s.sendTo(nd.id, to, abaMsg{abaBval, 1, int(s.adv.Uint64() & 1), nd.id})
				}
			}
		default:
			rs := nd.roundState(1)
			rs.sentBval[nd.est] = true
			s.broadcast(nd.id, abaMsg{abaBval, 1, nd.est, nd.id})
		}
	}
	s.run()
	if s.err != nil {
		return BinaryOutcome{}, s.err
	}
	out := BinaryOutcome{
		Decisions: make([]int, n),
		Messages:  s.messages,
		VirtualMS: s.lastMS,
	}
	for i, nd := range s.nodes {
		if nd.decided {
			out.Decisions[i] = nd.decision
			if nd.decRound > out.Rounds {
				out.Rounds = nd.decRound
			}
		} else {
			out.Decisions[i] = -1
		}
	}
	return out, nil
}

func (s *abaSim) tracef(format string, args ...any) {
	if s.trace != nil {
		s.trace(fmt.Sprintf(format, args...))
	}
}

// coin is the deterministic seeded common coin for round r of this
// instance: a pure label derivation, so every member — on any process —
// reads the same flip without exchanging a single message.
func (s *abaSim) coin(r int) int {
	return int(s.coinRNG.DeriveN("flip", s.coinBase<<16|uint64(r)).Uint64() & 1)
}

func (s *abaSim) push(at float64, to int, m abaMsg) {
	s.q = append(s.q, abaEvent{at: at, seq: s.seq, to: to, msg: m})
	s.seq++
	i := len(s.q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(s.q[i], s.q[p]) {
			break
		}
		s.q[i], s.q[p] = s.q[p], s.q[i]
		i = p
	}
}

func (s *abaSim) pop() abaEvent {
	top := s.q[0]
	last := len(s.q) - 1
	s.q[0] = s.q[last]
	s.q = s.q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.q) && evLess(s.q[l], s.q[small]) {
			small = l
		}
		if r < len(s.q) && evLess(s.q[r], s.q[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.q[i], s.q[small] = s.q[small], s.q[i]
		i = small
	}
	return top
}

func evLess(a, b abaEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Latency draws one message's delivery delay from the schedule: base plus
// uniform jitter, an occasional heavy tail, and drop-as-resend (a dropped
// message is re-sent after the resend timer, so loss manifests as delay —
// the asynchronous model never loses messages forever). Consumes a
// deterministic number of draws per branch from r, so a fixed stream
// yields a fixed delay sequence.
func (c Schedule) Latency(r *rng.RNG) float64 {
	l := c.BaseMS
	if c.JitterMS > 0 {
		l += c.JitterMS * r.Float64()
	}
	if c.HeavyProb > 0 && r.Float64() < c.HeavyProb {
		l += c.HeavyMS * r.Float64()
	}
	if c.DropProb > 0 && r.Float64() < c.DropProb {
		l += c.ResendMS * (1 + r.Float64())
	}
	return l
}

// latency draws one message's delivery delay from the schedule stream.
func (s *abaSim) latency() float64 {
	return s.cfg.Latency(s.sched)
}

func (s *abaSim) sendTo(from, to int, m abaMsg) {
	l := s.latency()
	s.push(s.now+l, to, m)
	s.messages++
	if s.cfg.DupProb > 0 && s.sched.Float64() < s.cfg.DupProb {
		s.push(s.now+l+s.cfg.BaseMS*s.sched.Float64(), to, m)
		s.messages++
	}
}

// broadcast ships m to every member; the self-copy is delivered through the
// queue at zero latency so handlers never re-enter.
func (s *abaSim) broadcast(from int, m abaMsg) {
	for to := 0; to < s.n; to++ {
		if to == from {
			s.push(s.now, to, m)
			continue
		}
		s.sendTo(from, to, m)
	}
}

func (s *abaSim) run() {
	const eventCap = 1 << 21
	processed := 0
	for len(s.q) > 0 && s.err == nil && s.undecided > 0 {
		ev := s.pop()
		s.now = ev.at
		s.deliver(ev.to, ev.msg)
		if processed++; processed > eventCap {
			s.err = errors.New("consensus: aba event cap exceeded (liveness failure)")
		}
	}
	if s.err == nil && s.undecided > 0 {
		s.err = errors.New("consensus: aba stalled before every honest member decided")
	}
}

func (s *abaSim) deliver(to int, m abaMsg) {
	nd := s.nodes[to]
	if nd.silent || nd.terminated {
		return
	}
	if nd.byz {
		s.byzReact(nd, m)
		return
	}
	switch m.kind {
	case abaBval:
		rs := nd.roundState(m.round)
		if rs.bval[m.val][m.from] {
			return
		}
		rs.bval[m.val][m.from] = true
		s.roundEcho(nd, m.round)
	case abaAux:
		rs := nd.roundState(m.round)
		if _, ok := rs.aux[m.from]; ok {
			return
		}
		rs.aux[m.from] = m.val
	case abaComplete:
		if nd.completers[m.val][m.from] {
			return
		}
		nd.completers[m.val][m.from] = true
	}
	s.progress(nd)
}

// support counts the distinct BVAL(r, v) senders nd has seen, with COMPLETE
// senders standing in for BVALs of every round.
func (s *abaSim) support(nd *abaNode, rs *abaRoundState, v int) int {
	c := len(rs.bval[v])
	for p := range nd.completers[v] {
		if !rs.bval[v][p] {
			c++
		}
	}
	return c
}

// roundEcho applies the BV-broadcast echo and delivery rules for round r —
// independently of nd's current round, as BV-broadcast requires.
func (s *abaSim) roundEcho(nd *abaNode, r int) {
	rs := nd.roundState(r)
	for v := 0; v < 2; v++ {
		c := s.support(nd, rs, v)
		if c >= s.f+1 && !rs.sentBval[v] {
			rs.sentBval[v] = true
			s.broadcast(nd.id, abaMsg{abaBval, r, v, nd.id})
		}
		if c >= 2*s.f+1 && !rs.bin[v] {
			rs.bin[v] = true
			rs.binOrder = append(rs.binOrder, v)
			s.tracef("n%d r%d bin+%d", nd.id, r, v)
		}
	}
}

// progress drives nd through every protocol step its current state allows:
// termination check, echoes, AUX, and the coin-graded round advance.
func (s *abaSim) progress(nd *abaNode) {
	for !nd.terminated {
		// Termination: f+1 COMPLETE(v) → echo the COMPLETE, output v, halt.
		for v := 0; v < 2; v++ {
			if len(nd.completers[v]) >= s.f+1 {
				if !nd.completeSent[v] {
					s.sendComplete(nd, v)
				}
				s.decide(nd, v)
				return
			}
		}
		r := nd.round
		rs := nd.roundState(r)
		s.roundEcho(nd, r) // COMPLETEs may have unlocked current-round echoes
		if !rs.auxSent && len(rs.binOrder) > 0 {
			rs.auxSent = true
			s.broadcast(nd.id, abaMsg{abaAux, r, rs.binOrder[0], nd.id})
		}
		if !rs.auxSent {
			return
		}
		// Gather n-f AUX whose values lie in bin_values; COMPLETE senders
		// stand in for AUX of every round. Each sender counts once.
		count := 0
		var seen [2]bool
		for p := 0; p < s.n; p++ {
			if v, ok := rs.aux[p]; ok {
				if rs.bin[v] {
					count++
					seen[v] = true
				}
				continue
			}
			if rs.bin[0] && nd.completers[0][p] {
				count++
				seen[0] = true
				continue
			}
			if rs.bin[1] && nd.completers[1][p] {
				count++
				seen[1] = true
			}
		}
		if count < s.n-s.f {
			return
		}
		coin := s.coin(r)
		// Vote strength (SNIPPETS.md §7): 2 = unanimous support matching
		// the coin → A-Cast COMPLETE; 1 = unanimous against the coin →
		// adopt the value; 0 = mixed support → adopt the coin.
		if seen[0] != seen[1] {
			v := 0
			if seen[1] {
				v = 1
			}
			nd.est = v
			if v == coin && !nd.completeSent[v] {
				s.sendComplete(nd, v)
			}
		} else {
			nd.est = coin
		}
		nd.round++
		s.tracef("n%d r%d->%d est%d coin%d", nd.id, r, nd.round, nd.est, coin)
		if nd.round > s.maxRounds {
			s.err = fmt.Errorf("consensus: aba exceeded %d coin rounds without termination", s.maxRounds)
			return
		}
		nrs := nd.roundState(nd.round)
		if !nrs.sentBval[nd.est] {
			nrs.sentBval[nd.est] = true
			s.broadcast(nd.id, abaMsg{abaBval, nd.round, nd.est, nd.id})
		}
		// Loop: messages that arrived early may already satisfy the new
		// round (or the termination condition).
	}
}

func (s *abaSim) sendComplete(nd *abaNode, v int) {
	nd.completeSent[v] = true
	nd.completers[v][nd.id] = true
	s.broadcast(nd.id, abaMsg{abaComplete, 0, v, nd.id})
	s.tracef("n%d complete%d", nd.id, v)
}

func (s *abaSim) decide(nd *abaNode, v int) {
	nd.decided = true
	nd.decision = v
	nd.decRound = nd.round
	nd.terminated = true
	s.undecided--
	if s.now > s.lastMS {
		s.lastMS = s.now
	}
	s.tracef("n%d decide%d r%d", nd.id, v, nd.round)
}

// byzReact is the Byzantine members' behavior: on (a budgeted fraction of)
// deliveries they equivocate — per-recipient random BVAL/AUX for the
// message's round or the next — and occasionally cast a COMPLETE. With at
// most f Byzantine members their COMPLETEs never reach the f+1 termination
// threshold on their own, so safety rests where MMR puts it: on the BV and
// AUX quorum intersections.
func (s *abaSim) byzReact(nd *abaNode, m abaMsg) {
	r := m.round
	if r < 1 {
		r = 1
	}
	if r > s.maxRounds || nd.burst[r] >= 2 {
		return
	}
	if s.adv.Float64() >= 0.3 {
		return
	}
	nd.burst[r]++
	for to := 0; to < s.n; to++ {
		if to == nd.id {
			continue
		}
		v := int(s.adv.Uint64() & 1)
		rr := r
		if s.adv.Float64() < 0.3 {
			rr++
		}
		kind := abaBval
		if s.adv.Float64() < 0.5 {
			kind = abaAux
		}
		s.sendTo(nd.id, to, abaMsg{kind, rr, v, nd.id})
	}
	if s.adv.Float64() < 0.05 {
		v := int(s.adv.Uint64() & 1)
		for to := 0; to < s.n; to++ {
			if to != nd.id {
				s.sendTo(nd.id, to, abaMsg{abaComplete, 0, v, nd.id})
			}
		}
	}
}
