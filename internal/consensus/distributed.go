package consensus

import (
	"errors"
	"fmt"
	"sort"

	"abdhfl/internal/simnet"
	"abdhfl/internal/tensor"
)

// This file runs the validation-voting consensus as an actual message-
// passing protocol over the discrete-event simulator: every member is an
// actor, proposals and vote vectors travel over simulated links, and each
// member tallies independently — demonstrating that the top level of
// ABD-HFL needs no coordinator even at the implementation level. The
// centralized Voting.Agree computes the same decision in one call and is
// what the engines use for speed; this version exists for protocol-level
// validation and latency studies.

// votes computes member's up/down votes over the proposals (true = upvote),
// applying the adversarial inversion for Byzantine members. It is the shared
// decision kernel of the centralized and distributed implementations.
func (v Voting) votes(ctx *Context, member int, proposals []tensor.Vector) []bool {
	margin := v.Margin
	if margin == 0 {
		margin = 0.1
	}
	scores := make([]float64, len(proposals))
	best := 0.0
	for i := range proposals {
		scores[i] = ctx.Validator(member, proposals[i])
		if scores[i] > best {
			best = scores[i]
		}
	}
	out := make([]bool, len(proposals))
	for i := range proposals {
		up := scores[i] >= best-margin
		if ctx.isByz(member) {
			up = !up
		}
		out[i] = up
	}
	return out
}

// Ballot computes one member's validation-voting up/down ballot over the
// proposals — the kernel Voting and ABA members both apply. Exported so a
// distributed engine can compute a remote member's ballot on that member's
// own process and ship only the bits; the bits are identical to what the
// in-process protocols would compute (same validator, same margin rule).
func Ballot(ctx *Context, member int, margin float64, proposals []tensor.Vector) []bool {
	return Voting{Margin: margin}.votes(ctx, member, proposals)
}

// decide tallies the vote counts and returns the kept proposal indices and
// the excluded ones, mirroring Voting.Agree's rule.
func (v Voting) decide(counts []int, members int) (kept, excluded []int) {
	keep := v.KeepFraction
	if keep == 0 {
		keep = 0.5
	}
	threshold := int(keep * float64(members))
	if threshold < 1 {
		threshold = 1
	}
	for i, c := range counts {
		if c >= threshold {
			kept = append(kept, i)
		} else {
			excluded = append(excluded, i)
		}
	}
	if len(kept) == 0 {
		best := 0
		for i := range counts {
			if counts[i] > counts[best] {
				best = i
			}
		}
		kept = []int{best}
		excluded = excluded[:0]
		for i := range counts {
			if i != best {
				excluded = append(excluded, i)
			}
		}
	}
	sort.Ints(excluded)
	return kept, excluded
}

// distVoteMsg payloads.
type (
	distProposal struct {
		from   int
		params tensor.Vector
	}
	distVote struct {
		from int
		ups  []bool
	}
)

// distVoter is one consensus member as a simnet actor.
type distVoter struct {
	v         Voting
	ctx       *Context
	self      int
	peers     []simnet.NodeID
	proposals []tensor.Vector
	votes     [][]bool
	gotProps  int
	gotVotes  int
	voted     bool
	decided   *tensor.Vector
	excluded  []int
}

func (d *distVoter) OnMessage(sctx *simnet.Context, msg simnet.Message) {
	n := d.ctx.Members
	switch m := msg.Payload.(type) {
	case distProposal:
		if d.proposals[m.from] == nil {
			d.proposals[m.from] = m.params
			d.gotProps++
		}
		if d.gotProps == n && !d.voted {
			d.voted = true
			ups := d.v.votes(d.ctx, d.self, d.proposals)
			// Record own vote and broadcast it.
			d.acceptVote(d.self, ups)
			for i, p := range d.peers {
				if i != d.self {
					sctx.Send(p, distVote{from: d.self, ups: ups})
				}
			}
			d.maybeDecide()
		}
	case distVote:
		d.acceptVote(m.from, m.ups)
		d.maybeDecide()
	}
}

func (d *distVoter) acceptVote(from int, ups []bool) {
	if d.votes[from] == nil {
		d.votes[from] = ups
		d.gotVotes++
	}
}

func (d *distVoter) maybeDecide() {
	n := d.ctx.Members
	if d.decided != nil || d.gotVotes < n || d.gotProps < n {
		return
	}
	counts := make([]int, n)
	for _, ups := range d.votes {
		for i, up := range ups {
			if up {
				counts[i]++
			}
		}
	}
	kept, excluded := d.v.decide(counts, n)
	vecs := make([]tensor.Vector, 0, len(kept))
	for _, i := range kept {
		vecs = append(vecs, d.proposals[i])
	}
	out := tensor.Mean(tensor.NewVector(len(d.proposals[0])), vecs)
	d.decided = &out
	d.excluded = excluded
}

// RunDistributedVoting executes the voting consensus as message passing over
// sim, placing member i at node baseID+i. It returns member 0's decision
// (all honest members decide identically — verified) plus protocol stats
// with the measured virtual duration in Stats.Rounds... the message counters
// reflect actual traffic.
func RunDistributedVoting(sim *simnet.Sim, baseID simnet.NodeID, ctx *Context, proposals []tensor.Vector, v Voting) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: distributed voting requires a validator")
	}
	n := ctx.Members
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = baseID + simnet.NodeID(i)
	}
	voters := make([]*distVoter, n)
	for i := 0; i < n; i++ {
		voters[i] = &distVoter{
			v:         v,
			ctx:       ctx,
			self:      i,
			peers:     peers,
			proposals: make([]tensor.Vector, n),
			votes:     make([][]bool, n),
		}
		sim.Register(peers[i], voters[i])
	}
	before := sim.Stats()
	// Phase 1: every member broadcasts its proposal (and records its own).
	for i := 0; i < n; i++ {
		i := i
		sim.ScheduleAt(sim.Now(), peers[i], func(sctx *simnet.Context) {
			voters[i].proposals[i] = proposals[i]
			voters[i].gotProps++
			for j, p := range peers {
				if j != i {
					sctx.SendVolume(p, distProposal{from: i, params: proposals[i]}, int64(len(proposals[i])))
				}
			}
		})
	}
	if _, err := sim.Run(0); err != nil {
		return nil, Stats{}, err
	}
	// Verify agreement among honest members and collect the decision.
	var result tensor.Vector
	var excluded []int
	for i := 0; i < n; i++ {
		if ctx.isByz(i) {
			continue
		}
		if voters[i].decided == nil {
			return nil, Stats{}, fmt.Errorf("consensus: member %d did not decide", i)
		}
		if result == nil {
			result = *voters[i].decided
			excluded = voters[i].excluded
			continue
		}
		if tensor.Distance(result, *voters[i].decided) > 1e-12 {
			return nil, Stats{}, fmt.Errorf("consensus: members disagree (safety violation)")
		}
	}
	if result == nil {
		return nil, Stats{}, errors.New("consensus: no honest member decided")
	}
	after := sim.Stats()
	st := Stats{
		Rounds:         2,
		Messages:       after.Messages - before.Messages,
		ModelTransfers: n * (n - 1),
		Excluded:       excluded,
	}
	return result, st, nil
}
