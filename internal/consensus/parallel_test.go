package consensus

import (
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// detValidator is a deterministic, concurrency-safe validator: the score
// depends only on (member, model), like the engines' shard validators, so
// fan-out order cannot change any result.
func detValidator(member int, model tensor.Vector) float64 {
	s := 0.0
	for i, v := range model {
		s += v * float64((member+i)%7+1)
	}
	return s
}

func parallelProposals(n, dim int, seed uint64) []tensor.Vector {
	r := rng.New(seed)
	proposals := make([]tensor.Vector, n)
	for i := range proposals {
		p := tensor.NewVector(dim)
		for j := range p {
			p[j] = r.NormFloat64()
		}
		proposals[i] = p
	}
	return proposals
}

func sameStats(a, b Stats) bool {
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.ModelTransfers != b.ModelTransfers {
		return false
	}
	if len(a.Excluded) != len(b.Excluded) {
		return false
	}
	for i := range a.Excluded {
		if a.Excluded[i] != b.Excluded[i] {
			return false
		}
	}
	return true
}

// runProto runs p with a fresh context at the given worker count; contexts are
// rebuilt per run so Rand state cannot leak between comparisons.
func runProto(t *testing.T, p Protocol, workers int, proposals []tensor.Vector) (tensor.Vector, Stats) {
	t.Helper()
	ctx := &Context{
		Members:   len(proposals),
		Byzantine: map[int]bool{2: true},
		Validator: detValidator,
		Rand:      rng.New(99),
		Workers:   workers,
	}
	out, st, err := p.Agree(ctx, proposals)
	if err != nil {
		t.Fatalf("%s.Agree(workers=%d): %v", p.Name(), workers, err)
	}
	return out, st
}

// Serial and parallel consensus must be bit-identical: ballots and score rows
// are computed independently per member and reduced in member order.
func TestAgreeWorkerCountInvariance(t *testing.T) {
	proposals := parallelProposals(9, 40, 7)
	for _, p := range []Protocol{Voting{}, Committee{}} {
		refOut, refStats := runProto(t, p, 1, proposals)
		for _, workers := range []int{0, 2, 4, 16} {
			out, st := runProto(t, p, workers, proposals)
			for i := range refOut {
				if out[i] != refOut[i] {
					t.Fatalf("%s: workers=%d output[%d] = %v, serial = %v",
						p.Name(), workers, i, out[i], refOut[i])
				}
			}
			if !sameStats(st, refStats) {
				t.Fatalf("%s: workers=%d stats %+v, serial %+v", p.Name(), workers, st, refStats)
			}
		}
	}
}
