package consensus

import "errors"

// registry is the single source of truth for protocol lookup: ByName and
// Names both walk it, so the two can never drift apart (TestNamesRoundTrip
// pins the invariant). Entries are kept in lexicographic name order —
// Names() returns them as-is.
var registry = []struct {
	name string
	make func() Protocol
}{
	{"aba", func() Protocol { return ABA{} }},
	{"approx-agreement", func() Protocol { return ApproxAgreement{} }},
	{"committee", func() Protocol { return Committee{} }},
	{"pbft", func() Protocol { return PBFT{} }},
	{"rotating-committee", func() Protocol { return RotatingCommittee{} }},
	{"voting", func() Protocol { return Voting{} }},
}

// ByName returns a default-configured protocol for the given name.
func ByName(name string) (Protocol, error) {
	for _, e := range registry {
		if e.name == name {
			return e.make(), nil
		}
	}
	return nil, errors.New("consensus: unknown protocol " + name)
}

// Names lists the registered protocol names in lexicographic order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}
