package consensus

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// adversarialSchedules is the delivery-model ladder the property suite
// cycles through: instant delivery, the default mild asynchrony, a hostile
// net with heavy tails and loss on every fifth message, and an extreme
// jitter regime where resends dominate.
func adversarialSchedules() []Schedule {
	return []Schedule{
		{},
		DefaultSchedule(),
		{BaseMS: 1, JitterMS: 10, HeavyProb: 0.3, HeavyMS: 100, DropProb: 0.2, ResendMS: 50, DupProb: 0.2},
		{BaseMS: 0.1, JitterMS: 50, HeavyProb: 0.5, HeavyMS: 200, DropProb: 0.1, ResendMS: 30, DupProb: 0.3},
	}
}

// TestBinaryABAProperties is the adversarial-schedule conformance suite: for
// each membership size it sweeps 80 seeds, each drawing a schedule from the
// ladder, a Byzantine/silent fault mix within the budget f < n/3, and
// arbitrary input bits, then checks the three ABA properties:
//
//	agreement:   every honest member decides the same bit;
//	validity:    with unanimous honest inputs, the decision is that input;
//	termination: every honest member decides within the round bound
//	             (probabilistic in theory; deterministic per seed here, so a
//	             failure is a reproducible bug, not a flake).
//
// The subtests run in parallel so `go test -race` exercises concurrent
// instances of the simulator.
func TestBinaryABAProperties(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			t.Parallel()
			schedules := adversarialSchedules()
			f := (n - 1) / 3
			for seed := uint64(0); seed < 80; seed++ {
				r := rng.New(1 + seed + uint64(n)<<32)
				byzCount := r.Intn(f + 1)
				silentCount := r.Intn(f - byzCount + 1)
				perm := r.Perm(n)
				byz := map[int]bool{}
				silent := map[int]bool{}
				for _, m := range perm[:byzCount] {
					byz[m] = true
				}
				for _, m := range perm[byzCount : byzCount+silentCount] {
					silent[m] = true
				}
				inputs := make([]int, n)
				unanimous, seenInput := -1, false
				for i := range inputs {
					inputs[i] = r.Intn(2)
					if byz[i] || silent[i] {
						continue
					}
					if !seenInput {
						unanimous, seenInput = inputs[i], true
					} else if inputs[i] != unanimous {
						unanimous = -1
					}
				}
				sched := schedules[int(seed)%len(schedules)]
				out, err := RunBinaryABA(r.Derive("run"), inputs, byz, silent, &sched, 64, nil)
				if err != nil {
					t.Fatalf("seed %d (byz %v silent %v inputs %v): %v", seed, byz, silent, inputs, err)
				}
				decision := -1
				for i, d := range out.Decisions {
					if byz[i] || silent[i] {
						if d != -1 {
							t.Fatalf("seed %d: faulty member %d reported decision %d", seed, i, d)
						}
						continue
					}
					if d < 0 {
						t.Fatalf("seed %d: honest member %d did not decide", seed, i)
					}
					if decision < 0 {
						decision = d
					} else if d != decision {
						t.Fatalf("seed %d: agreement violated: decisions %v", seed, out.Decisions)
					}
				}
				if unanimous >= 0 && decision != unanimous {
					t.Fatalf("seed %d: validity violated: unanimous honest input %d, decided %d", seed, unanimous, decision)
				}
				if out.Rounds < 1 || out.Rounds > 64 {
					t.Fatalf("seed %d: decided in round %d", seed, out.Rounds)
				}
				if n > 1 && out.Messages == 0 {
					t.Fatalf("seed %d: no messages on the wire", seed)
				}
			}
		})
	}
}

func TestBinaryABARejectsTooManyFaulty(t *testing.T) {
	inputs := []int{1, 1, 0, 1}
	if _, err := RunBinaryABA(rng.New(1), inputs, map[int]bool{0: true}, map[int]bool{1: true}, nil, 16, nil); err == nil {
		t.Fatal("accepted 2 faulty members with f=1 (n=4)")
	}
	if _, err := RunBinaryABA(rng.New(1), nil, nil, nil, nil, 16, nil); err == nil {
		t.Fatal("accepted zero members")
	}
}

func TestBinaryABADeterministicTranscript(t *testing.T) {
	inputs := []int{1, 0, 1, 1, 0, 1, 1}
	sched := adversarialSchedules()[2]
	run := func() (BinaryOutcome, string) {
		var lines []string
		out, err := RunBinaryABA(rng.New(99), inputs, map[int]bool{2: true}, map[int]bool{5: true},
			&sched, 64, func(ev string) { lines = append(lines, ev) })
		if err != nil {
			t.Fatal(err)
		}
		return out, strings.Join(lines, "\n")
	}
	o1, t1 := run()
	o2, t2 := run()
	if t1 != t2 {
		t.Fatal("transcripts differ across identical reruns")
	}
	if o1.Messages != o2.Messages || o1.Rounds != o2.Rounds || o1.VirtualMS != o2.VirtualMS {
		t.Fatalf("outcomes differ: %+v vs %+v", o1, o2)
	}
}

// TestABAMatchesVotingZeroFault pins the equivalence the chaostest sweeps
// rely on: with every ballot present, ABA's ballot tally equals Voting's, so
// validity forces the identical kept set and the identical output bytes.
func TestABAMatchesVotingZeroFault(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		proposals, good := goodBadProposals(5, 2, 6)
		vctx := &Context{Members: 7, Validator: accuracyLike(good), Rand: rng.New(seed)}
		vout, vst, err := Voting{}.Agree(vctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		actx := &Context{Members: 7, Validator: accuracyLike(good), Rand: rng.New(seed)}
		aout, ast, err := ABA{}.Agree(actx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(vst.Excluded) != fmt.Sprint(ast.Excluded) {
			t.Fatalf("seed %d: excluded differ: voting %v, aba %v", seed, vst.Excluded, ast.Excluded)
		}
		if d := tensor.Distance(vout, aout); d != 0 {
			t.Fatalf("seed %d: outputs differ by %v", seed, d)
		}
		if ast.CoinRounds < 1 || ast.Rounds != 2+ast.CoinRounds {
			t.Fatalf("seed %d: stats %+v", seed, ast)
		}
	}
}

// TestABAWorkerInvariance checks the repo-wide determinism contract on the
// randomized protocol: output bytes, stats, and the full event transcript
// are identical for every Workers setting.
func TestABAWorkerInvariance(t *testing.T) {
	proposals, good := goodBadProposals(5, 2, 8)
	run := func(workers int) (tensor.Vector, Stats, string) {
		var lines []string
		ctx := &Context{Members: 7, Validator: accuracyLike(good), Rand: rng.New(101), Workers: workers}
		out, st, err := ABA{Trace: func(ev string) { lines = append(lines, ev) }}.Agree(ctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		return out, st, strings.Join(lines, "\n")
	}
	baseOut, baseSt, baseTr := run(1)
	for _, w := range []int{2, 4, 8} {
		out, st, tr := run(w)
		if d := tensor.Distance(baseOut, out); d != 0 {
			t.Fatalf("workers %d: output differs by %v", w, d)
		}
		if fmt.Sprint(st) != fmt.Sprint(baseSt) {
			t.Fatalf("workers %d: stats differ:\n%+v\n%+v", w, baseSt, st)
		}
		if tr != baseTr {
			t.Fatalf("workers %d: transcript differs", w)
		}
	}
}

// TestABABallotInjection covers the wire-collected ballot path the node
// engine uses: injected full rows reproduce the local computation exactly,
// nil rows within the fault budget become silent members, and rows missing
// beyond the budget fall back to local recomputation (which needs the
// validator).
func TestABABallotInjection(t *testing.T) {
	proposals, good := goodBadProposals(5, 2, 6)
	val := accuracyLike(good)
	local := func() ([]int, tensor.Vector) {
		ctx := &Context{Members: 7, Validator: val, Rand: rng.New(7)}
		out, st, err := ABA{}.Agree(ctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		return st.Excluded, out
	}
	lexc, lout := local()

	fullRows := func() *BallotSet {
		set := &BallotSet{Rows: make([][]bool, 7)}
		bctx := &Context{Members: 7, Validator: val}
		for m := 0; m < 7; m++ {
			set.Rows[m] = Ballot(bctx, m, 0, proposals)
		}
		return set
	}

	t.Run("full-rows-match-local", func(t *testing.T) {
		ctx := &Context{Members: 7, Rand: rng.New(7), Ballots: fullRows()}
		out, st, err := ABA{}.Agree(ctx, proposals) // no validator needed: every row injected
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(st.Excluded) != fmt.Sprint(lexc) {
			t.Fatalf("excluded differ: local %v, injected %v", lexc, st.Excluded)
		}
		if d := tensor.Distance(lout, out); d != 0 {
			t.Fatalf("outputs differ by %v", d)
		}
	})

	t.Run("nil-rows-within-budget", func(t *testing.T) {
		set := fullRows()
		set.Rows[1], set.Rows[4] = nil, nil // f = 2 silent members
		ctx := &Context{Members: 7, Rand: rng.New(7), Ballots: set}
		_, st, err := ABA{}.Agree(ctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Excluded) == 0 {
			t.Fatal("poisoned proposals survived with two silent members")
		}
	})

	t.Run("beyond-budget-needs-validator", func(t *testing.T) {
		set := fullRows()
		for _, m := range []int{0, 1, 2, 3} {
			set.Rows[m] = nil
		}
		ctx := &Context{Members: 7, Rand: rng.New(7), Ballots: set}
		if _, _, err := (ABA{}).Agree(ctx, proposals); err == nil {
			t.Fatal("recomputed missing ballots without a validator")
		}
		ctx = &Context{Members: 7, Validator: val, Rand: rng.New(7), Ballots: set}
		if _, _, err := (ABA{}).Agree(ctx, proposals); err != nil {
			t.Fatal(err)
		}
	})
}

func TestABARequiresValidatorWithoutBallots(t *testing.T) {
	proposals, _ := goodBadProposals(4, 0, 3)
	ctx := &Context{Members: 4, Rand: rng.New(1)}
	if _, _, err := (ABA{}).Agree(ctx, proposals); err == nil {
		t.Fatal("nil validator accepted")
	}
}

func TestCommitteeForRound(t *testing.T) {
	r := rng.New(5)
	n, size := 9, 4
	dealt := map[int]int{}
	for round := 0; round < 2*n; round++ {
		dealer, members := CommitteeForRound(r, round, n, size)
		if dealer != round%n {
			t.Fatalf("round %d: dealer %d, want %d", round, dealer, round%n)
		}
		dealt[dealer]++
		if len(members) != size || members[0] != dealer {
			t.Fatalf("round %d: members %v (dealer %d)", round, members, dealer)
		}
		seen := map[int]bool{}
		for _, m := range members {
			if m < 0 || m >= n || seen[m] {
				t.Fatalf("round %d: bad committee %v", round, members)
			}
			seen[m] = true
		}
		// Pure label derivation: recomputing the round gives the same seats.
		d2, m2 := CommitteeForRound(r, round, n, size)
		if d2 != dealer || fmt.Sprint(m2) != fmt.Sprint(members) {
			t.Fatalf("round %d: rotation not deterministic: %v vs %v", round, members, m2)
		}
	}
	// Over 2n rounds the dealer seat visits every member exactly twice.
	for m := 0; m < n; m++ {
		if dealt[m] != 2 {
			t.Fatalf("member %d dealt %d times over %d rounds", m, dealt[m], 2*n)
		}
	}
	// Clamps: oversize committees truncate to n, negative rounds stay in range.
	if _, members := CommitteeForRound(r, 3, 4, 99); len(members) != 4 {
		t.Fatalf("oversize committee: %v", members)
	}
	if dealer, _ := CommitteeForRound(r, -5, 4, 2); dealer < 0 || dealer >= 4 {
		t.Fatalf("negative round dealer %d", dealer)
	}
}

func TestCommitteeForRoundRotates(t *testing.T) {
	// Different rounds draw genuinely different committees (independent
	// per-round sub-streams, not consecutive slices of one stream).
	r := rng.New(6)
	n, size := 12, 5
	distinct := map[string]bool{}
	for round := 0; round < n; round++ {
		_, members := CommitteeForRound(r, round, n, size)
		tail := append([]int(nil), members[1:]...) // drop the forced dealer seat
		sort.Ints(tail)
		distinct[fmt.Sprint(tail)] = true
	}
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct committees over %d rounds", len(distinct), n)
	}
}

func TestRotatingCommitteeAgree(t *testing.T) {
	proposals, good := goodBadProposals(5, 3, 4)
	run := func(round, workers int) []int {
		ctx := &Context{Members: 8, Validator: accuracyLike(good), Rand: rng.New(11), Round: round, Workers: workers}
		out, st, err := RotatingCommittee{}.Agree(ctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.Distance(out, good); d > 1 {
			t.Fatalf("round %d: agreed model off by %v (excluded %v)", round, d, st.Excluded)
		}
		return st.Excluded
	}
	for round := 0; round < 4; round++ {
		base := run(round, 1)
		// The rotation sequence and decisions are identical for every
		// scoring fan-out.
		for _, w := range []int{0, 2, 8} {
			if got := run(round, w); fmt.Sprint(got) != fmt.Sprint(base) {
				t.Fatalf("round %d workers %d: exclusions differ: %v vs %v", round, w, base, got)
			}
		}
	}
}

func TestRotatingCommitteeRequiresValidator(t *testing.T) {
	proposals, _ := goodBadProposals(4, 0, 3)
	ctx := &Context{Members: 4, Rand: rng.New(1)}
	if _, _, err := (RotatingCommittee{}).Agree(ctx, proposals); err == nil {
		t.Fatal("nil validator accepted")
	}
}

// TestNamesRoundTrip pins the registry invariant ByName and Names share one
// table: every listed name resolves, resolves to itself, and the list stays
// sorted (EXPERIMENTS.md and the CLI flag docs quote it verbatim).
func TestNamesRoundTrip(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := map[string]bool{"aba": true, "rotating-committee": true, "voting": true}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, p.Name())
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("registry missing %v", want)
	}
}
