package consensus

import (
	"math"
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
	"abdhfl/internal/tensor"
)

// accuracyLike builds a validator that scores proposals by closeness to a
// reference "good" model: score = 1 / (1 + distance). All members share it
// unless overridden.
func accuracyLike(good tensor.Vector) Validator {
	return func(_ int, model tensor.Vector) float64 {
		return 1 / (1 + tensor.Distance(model, good))
	}
}

func goodBadProposals(nGood, nBad, dim int) ([]tensor.Vector, tensor.Vector) {
	good := tensor.Fill(tensor.NewVector(dim), 1)
	var proposals []tensor.Vector
	for i := 0; i < nGood; i++ {
		p := good.Clone()
		p[0] += 0.01 * float64(i)
		proposals = append(proposals, p)
	}
	for i := 0; i < nBad; i++ {
		proposals = append(proposals, tensor.Fill(tensor.NewVector(dim), -50))
	}
	return proposals, good
}

func TestVotingExcludesPoisoned(t *testing.T) {
	proposals, good := goodBadProposals(3, 1, 4)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(1)}
	out, st, err := Voting{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Excluded) != 1 || st.Excluded[0] != 3 {
		t.Fatalf("excluded = %v, want [3]", st.Excluded)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("agreed model off by %v", d)
	}
}

func TestVotingExcludesTwoOfFour(t *testing.T) {
	// The paper's §V-A scenario at the 57.8% bound: 2 of 4 top-level
	// partials are poisoned; validation voting must exclude both (this is
	// what lets prefix placement reach beyond a strict γ1=25% top filter).
	proposals, good := goodBadProposals(2, 2, 4)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(2)}
	out, st, err := Voting{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Excluded) != 2 {
		t.Fatalf("excluded = %v, want both poisoned", st.Excluded)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("agreed model off by %v", d)
	}
}

func TestVotingWithByzantineVoters(t *testing.T) {
	// One of four voters votes adversarially; honest majority still wins.
	proposals, good := goodBadProposals(3, 1, 4)
	ctx := &Context{
		Members:   4,
		Byzantine: map[int]bool{3: true},
		Validator: accuracyLike(good),
		Rand:      rng.New(3),
	}
	out, st, err := Voting{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("agreed model off by %v (excluded %v)", d, st.Excluded)
	}
}

func TestVotingAllGoodKeepsAll(t *testing.T) {
	proposals, good := goodBadProposals(4, 0, 4)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(4)}
	_, st, err := Voting{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Excluded) != 0 {
		t.Fatalf("excluded honest proposals: %v", st.Excluded)
	}
}

func TestVotingRequiresValidator(t *testing.T) {
	proposals, _ := goodBadProposals(2, 0, 2)
	ctx := &Context{Members: 2, Rand: rng.New(1)}
	if _, _, err := (Voting{}).Agree(ctx, proposals); err == nil {
		t.Fatal("nil validator accepted")
	}
}

func TestVotingStatsShape(t *testing.T) {
	proposals, good := goodBadProposals(4, 0, 4)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(5)}
	_, st, err := Voting{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 || st.ModelTransfers != 12 || st.Messages != 24 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVotingMemberProposalMismatch(t *testing.T) {
	proposals, good := goodBadProposals(3, 0, 4)
	ctx := &Context{Members: 5, Validator: accuracyLike(good), Rand: rng.New(1)}
	if _, _, err := (Voting{}).Agree(ctx, proposals); err == nil {
		t.Fatal("member/proposal mismatch accepted")
	}
}

func TestCommitteeExcludesPoisoned(t *testing.T) {
	proposals, good := goodBadProposals(5, 3, 4)
	ctx := &Context{Members: 8, Validator: accuracyLike(good), Rand: rng.New(6)}
	out, st, err := Committee{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("committee agreed model off by %v (excluded %v)", d, st.Excluded)
	}
	for _, e := range st.Excluded {
		if e < 5 && len(st.Excluded) > 4 {
			t.Fatalf("too many honest proposals excluded: %v", st.Excluded)
		}
	}
}

func TestCommitteeDeterministicGivenSeed(t *testing.T) {
	proposals, good := goodBadProposals(5, 3, 4)
	run := func() []int {
		ctx := &Context{Members: 8, Validator: accuracyLike(good), Rand: rng.New(7)}
		_, st, err := Committee{}.Agree(ctx, proposals)
		if err != nil {
			t.Fatal(err)
		}
		return st.Excluded
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic committee")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic committee exclusions")
		}
	}
}

func TestApproxAgreementConverges(t *testing.T) {
	r := rng.New(8)
	n, dim := 7, 5
	proposals := make([]tensor.Vector, n)
	for i := range proposals {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		proposals[i] = v
	}
	ctx := &Context{Members: n, Byzantine: map[int]bool{6: true}, Rand: r}
	out, st, err := ApproxAgreement{F: 2, Epsilon: 1e-4}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if !tensor.AllFinite(out) {
		t.Fatal("non-finite agreement")
	}
}

func TestApproxAgreementWithinHonestHull(t *testing.T) {
	// Validity: the agreed value must lie within the per-coordinate range of
	// the honest proposals despite Byzantine extremes.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n, dim := 7, 3
		proposals := make([]tensor.Vector, n)
		for i := range proposals {
			v := tensor.NewVector(dim)
			for j := range v {
				v[j] = r.NormFloat64() * 5
			}
			proposals[i] = v
		}
		byz := map[int]bool{r.Intn(n): true}
		ctx := &Context{Members: n, Byzantine: byz, Rand: r}
		out, _, err := ApproxAgreement{F: 2, Epsilon: 1e-6, MaxRounds: 200}.Agree(ctx, proposals)
		if err != nil {
			return false
		}
		for j := 0; j < dim; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < n; i++ {
				if byz[i] {
					continue
				}
				lo = math.Min(lo, proposals[i][j])
				hi = math.Max(hi, proposals[i][j])
			}
			if out[j] < lo-1e-6 || out[j] > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxAgreementRejectsTooManyByzantine(t *testing.T) {
	proposals, _ := goodBadProposals(4, 0, 3)
	ctx := &Context{
		Members:   4,
		Byzantine: map[int]bool{0: true, 1: true, 2: true},
		Rand:      rng.New(9),
	}
	if _, _, err := (ApproxAgreement{F: 1}).Agree(ctx, proposals); err == nil {
		t.Fatal("accepted 3 Byzantine of 4 with f=1")
	}
}

func TestApproxAgreementUnanimous(t *testing.T) {
	v := tensor.Vector{1, 2, 3}
	proposals := []tensor.Vector{v.Clone(), v.Clone(), v.Clone(), v.Clone()}
	ctx := &Context{Members: 4, Rand: rng.New(10)}
	out, _, err := ApproxAgreement{F: 1}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Distance(out, v) > 1e-9 {
		t.Fatalf("unanimous agreement drifted: %v", out)
	}
}

func TestEmptyProposals(t *testing.T) {
	ctx := &Context{Members: 0, Rand: rng.New(1)}
	for _, p := range []Protocol{Voting{}, Committee{}, ApproxAgreement{}} {
		if _, _, err := p.Agree(ctx, nil); err == nil {
			t.Fatalf("%s accepted empty proposals", p.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := ByName("zzz"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func BenchmarkVoting4x2500(b *testing.B) {
	proposals, good := goodBadProposals(3, 1, 2500)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (Voting{}).Agree(ctx, proposals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxAgreement7x500(b *testing.B) {
	r := rng.New(1)
	proposals := make([]tensor.Vector, 7)
	for i := range proposals {
		v := tensor.NewVector(500)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		proposals[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Context{Members: 7, Byzantine: map[int]bool{6: true}, Rand: rng.New(uint64(i))}
		if _, _, err := (ApproxAgreement{F: 2, Epsilon: 1e-3}).Agree(ctx, proposals); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPBFTCommitsHonestPrimary(t *testing.T) {
	proposals, good := goodBadProposals(4, 0, 4)
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(41)}
	out, st, err := PBFT{}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("views = %d, want 1 (first primary is honest)", st.Rounds)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("pbft committed a bad model: %v", d)
	}
}

func TestPBFTViewChangesPastBadPrimary(t *testing.T) {
	// Primary 0's proposal is poisoned: honest replicas refuse the prepare
	// quorum and the protocol view-changes to primary 1.
	proposals, good := goodBadProposals(3, 1, 4)
	// Move the bad proposal to index 0 so it is the first primary's.
	proposals[0], proposals[3] = proposals[3], proposals[0]
	ctx := &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(42)}
	out, st, err := PBFT{F: 1}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("expected a view change, got %d views", st.Rounds)
	}
	if len(st.Excluded) == 0 || st.Excluded[0] != 0 {
		t.Fatalf("excluded = %v, want view 0 rejected", st.Excluded)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("pbft committed a bad model after view change: %v", d)
	}
}

func TestPBFTByzantineVotersCannotForceBadCommit(t *testing.T) {
	// One Byzantine replica upvotes the poisoned primary; quorum 2f+1 = 3
	// still requires two honest prepares, which the bad proposal cannot get.
	proposals, good := goodBadProposals(3, 1, 4)
	proposals[0], proposals[3] = proposals[3], proposals[0]
	ctx := &Context{
		Members:   4,
		Byzantine: map[int]bool{1: true},
		Validator: accuracyLike(good),
		Rand:      rng.New(43),
	}
	out, _, err := PBFT{F: 1}.Agree(ctx, proposals)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("byzantine votes forced a bad commit: %v", d)
	}
}

func TestPBFTExhaustedViews(t *testing.T) {
	// All proposals are mutually unacceptable: every replica scores only its
	// own proposal highly, so no primary ever reaches quorum.
	n := 4
	proposals := make([]tensor.Vector, n)
	for i := range proposals {
		v := tensor.NewVector(3)
		v[0] = float64(i * 1000)
		proposals[i] = v
	}
	ctx := &Context{
		Members: n,
		Validator: func(member int, model tensor.Vector) float64 {
			if model[0] == float64(member*1000) {
				return 1
			}
			return 0
		},
		Rand: rng.New(44),
	}
	if _, _, err := (PBFT{F: 1}).Agree(ctx, proposals); err == nil {
		t.Fatal("expected exhausted-views error")
	}
}

func TestPBFTRequiresValidator(t *testing.T) {
	proposals, _ := goodBadProposals(3, 0, 3)
	ctx := &Context{Members: 3, Rand: rng.New(45)}
	if _, _, err := (PBFT{}).Agree(ctx, proposals); err == nil {
		t.Fatal("nil validator accepted")
	}
}

func TestDistributedVotingMatchesCentralized(t *testing.T) {
	proposals, good := goodBadProposals(3, 1, 6)
	mk := func() *Context {
		return &Context{Members: 4, Validator: accuracyLike(good), Rand: rng.New(81)}
	}
	central, cst, err := Voting{}.Agree(mk(), proposals)
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(simnet.Uniform{Min: 1, Max: 9}, rng.New(82))
	dist, dst, err := RunDistributedVoting(sim, 100, mk(), proposals, Voting{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(central, dist); d > 1e-12 {
		t.Fatalf("distributed decision differs from centralized by %v", d)
	}
	if len(dst.Excluded) != len(cst.Excluded) {
		t.Fatalf("exclusions differ: %v vs %v", dst.Excluded, cst.Excluded)
	}
	// 4 members broadcast proposals and votes: 2 * 4*3 = 24 messages.
	if dst.Messages != 24 {
		t.Fatalf("messages = %d, want 24", dst.Messages)
	}
}

func TestDistributedVotingAgreementUnderLatencyJitter(t *testing.T) {
	// Heavy-tailed latency reorders deliveries arbitrarily; all honest
	// members must still decide identically (checked inside Run).
	proposals, good := goodBadProposals(4, 2, 5)
	for seed := uint64(1); seed <= 5; seed++ {
		sim := simnet.New(simnet.LogNormal{Base: 5, Sigma: 1.2}, rng.New(seed))
		ctx := &Context{Members: 6, Validator: accuracyLike(good), Rand: rng.New(seed)}
		out, _, err := RunDistributedVoting(sim, 0, ctx, proposals, Voting{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := tensor.Distance(out, good); d > 1 {
			t.Fatalf("seed %d: decision off by %v", seed, d)
		}
	}
}

func TestDistributedVotingWithByzantineVoter(t *testing.T) {
	proposals, good := goodBadProposals(3, 1, 5)
	sim := simnet.New(simnet.Fixed(2), rng.New(83))
	ctx := &Context{
		Members:   4,
		Byzantine: map[int]bool{2: true},
		Validator: accuracyLike(good),
		Rand:      rng.New(83),
	}
	out, st, err := RunDistributedVoting(sim, 0, ctx, proposals, Voting{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.Distance(out, good); d > 1 {
		t.Fatalf("decision off by %v (excluded %v)", d, st.Excluded)
	}
}

func TestDistributedVotingRequiresValidator(t *testing.T) {
	proposals, _ := goodBadProposals(3, 0, 3)
	sim := simnet.New(simnet.Fixed(1), rng.New(1))
	ctx := &Context{Members: 3, Rand: rng.New(1)}
	if _, _, err := RunDistributedVoting(sim, 0, ctx, proposals, Voting{}); err == nil {
		t.Fatal("nil validator accepted")
	}
}
