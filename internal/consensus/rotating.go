package consensus

import (
	"errors"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// CommitteeForRound derives the round's committee deterministically: a
// tendermint-DKG-style dealer rotates through the membership (round mod n)
// and is always seated; the remaining seats are drawn from the per-round
// sub-stream DeriveN("committee-rotation", round). DeriveN does not advance
// the parent stream, so any process — and any Workers setting — derives the
// identical committee for (seed, round), and committees for different rounds
// are independent draws rather than consecutive slices of one stream.
func CommitteeForRound(r *rng.RNG, round, n, size int) (dealer int, members []int) {
	if n <= 0 {
		return 0, nil
	}
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	dealer = ((round % n) + n) % n
	members = make([]int, 0, size)
	members = append(members, dealer)
	perm := r.DeriveN("committee-rotation", uint64(round)).Perm(n)
	for _, p := range perm {
		if len(members) == size {
			break
		}
		if p != dealer {
			members = append(members, p)
		}
	}
	return dealer, members
}

// RotatingCommittee is the committee consensus with per-round seat rotation:
// instead of one fresh uniform draw per instance (Committee), the committee
// for round R is a pure function of (seed, R) with a rotating dealer, so
// every member can predict — and audit — who scores this round, and a fixed
// adversary cannot park itself in the committee forever. Scoring and the
// keep rule are shared with Committee (committeeAgree).
type RotatingCommittee struct {
	// Size of the committee; zero selects ceil(n/2).
	Size int
	// KeepFraction of proposals retained; zero selects 0.5.
	KeepFraction float64
}

// Name implements Protocol.
func (RotatingCommittee) Name() string { return "rotating-committee" }

// Agree implements Protocol.
func (c RotatingCommittee) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: rotating committee requires a validator")
	}
	n := ctx.Members
	size := c.Size
	if size == 0 {
		size = (n + 1) / 2
	}
	if size > n {
		size = n
	}
	keep := c.KeepFraction
	if keep == 0 {
		keep = 0.5
	}
	_, committee := CommitteeForRound(ctx.Rand, ctx.Round, n, size)
	return committeeAgree(ctx, proposals, committee, keep)
}
