package consensus

import (
	"fmt"
	"math"

	"abdhfl/internal/tensor"
)

// ApproxAgreement is a coordinate-wise Byzantine approximate ε-agreement in
// the style of Mendes-Herlihy multidimensional agreement: honest members
// iteratively exchange their current vectors, trim the F most extreme values
// per coordinate at each end, and adopt the mean of the remainder. Byzantine
// members inject adversarial extreme values every round. The iteration
// provably keeps honest values inside the honest convex hull per coordinate
// and contracts their spread geometrically, so after enough rounds all
// honest members agree to within Epsilon.
//
// The coordinate-wise trimmed variant trades the exponential safe-area
// computation of exact multidimensional agreement for polynomial work,
// mirroring the relaxed/validated protocols the paper cites as practical.
type ApproxAgreement struct {
	// F is the number of extreme values trimmed per side each round; it must
	// exceed the number of Byzantine members for the containment guarantee.
	// Zero selects floor((n-1)/3).
	F int
	// Epsilon is the target spread; zero selects 1e-3.
	Epsilon float64
	// MaxRounds bounds the iteration; zero selects 100.
	MaxRounds int
	// ByzMagnitude scales the adversarial values Byzantine members inject;
	// zero selects 1e3.
	ByzMagnitude float64
}

// Name implements Protocol.
func (ApproxAgreement) Name() string { return "approx-agreement" }

// Agree implements Protocol.
func (a ApproxAgreement) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	n := ctx.Members
	f := a.F
	if f == 0 {
		f = (n - 1) / 3
	}
	byzCount := 0
	for i := 0; i < n; i++ {
		if ctx.isByz(i) {
			byzCount++
		}
	}
	honest := n - byzCount
	if honest <= 2*f {
		return nil, Stats{}, fmt.Errorf("consensus: approx agreement needs > 2f honest members (have %d honest, f=%d)", honest, f)
	}
	eps := a.Epsilon
	if eps == 0 {
		eps = 1e-3
	}
	maxRounds := a.MaxRounds
	if maxRounds == 0 {
		maxRounds = 100
	}
	mag := a.ByzMagnitude
	if mag == 0 {
		mag = 1e3
	}
	dim := len(proposals[0])

	// Honest members start from their own proposals.
	values := make([]tensor.Vector, n)
	for i := range values {
		values[i] = proposals[i].Clone()
	}
	var st Stats
	col := make([]float64, 0, n)
	for round := 0; round < maxRounds; round++ {
		st.Rounds++
		st.Messages += n * (n - 1)
		st.ModelTransfers += n * (n - 1)
		// Snapshot of what each member broadcasts this round: honest members
		// send their value, Byzantine members send adversarial extremes.
		sent := make([]tensor.Vector, n)
		for i := 0; i < n; i++ {
			if ctx.isByz(i) {
				v := tensor.NewVector(dim)
				for j := range v {
					v[j] = mag * (2*ctx.Rand.Float64() - 1)
				}
				sent[i] = v
			} else {
				sent[i] = values[i]
			}
		}
		next := make([]tensor.Vector, n)
		for i := 0; i < n; i++ {
			if ctx.isByz(i) {
				next[i] = values[i]
				continue
			}
			v := tensor.NewVector(dim)
			for j := 0; j < dim; j++ {
				col = col[:0]
				for k := 0; k < n; k++ {
					col = append(col, sent[k][j])
				}
				v[j] = tensor.TrimmedMean(col, f)
			}
			next[i] = v
		}
		values = next
		if honestSpread(ctx, values) <= eps {
			break
		}
	}
	if spread := honestSpread(ctx, values); spread > eps {
		return nil, st, fmt.Errorf("consensus: approx agreement did not converge (spread %.3g > ε %.3g)", spread, eps)
	}
	// All honest values coincide within ε; return their mean.
	var honestVals []tensor.Vector
	for i := 0; i < n; i++ {
		if !ctx.isByz(i) {
			honestVals = append(honestVals, values[i])
		}
	}
	out := tensor.Mean(tensor.NewVector(dim), honestVals)
	return out, st, nil
}

// honestSpread returns the maximum per-coordinate range among honest values.
func honestSpread(ctx *Context, values []tensor.Vector) float64 {
	var honest []tensor.Vector
	for i := range values {
		if !ctx.isByz(i) {
			honest = append(honest, values[i])
		}
	}
	if len(honest) < 2 {
		return 0
	}
	spread := 0.0
	for j := range honest[0] {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range honest {
			lo = math.Min(lo, v[j])
			hi = math.Max(hi, v[j])
		}
		if hi-lo > spread {
			spread = hi - lo
		}
	}
	return spread
}
