package consensus

import (
	"errors"
	"fmt"
	"sort"

	"abdhfl/internal/tensor"
)

// PBFT is a practical-Byzantine-fault-tolerance-flavoured scalar consensus
// for model acceptance (the PBFT row of Table II): in each view, the view's
// primary proposes its model; every replica validates the proposal against
// its own data (prepare vote) and, on seeing a 2f+1 prepare quorum, commits.
// An insufficient quorum triggers a view change to the next primary. The
// first committed proposal is the agreed model. Byzantine replicas vote to
// reject honest proposals and accept malicious ones; Byzantine primaries'
// proposals are naturally rejected by honest validation.
//
// Compared to the validation-voting protocol, PBFT accepts a single
// proposal (no averaging) and pays ~2n^2 messages per view, so it is the
// heavyweight end of the CBA spectrum.
type PBFT struct {
	// F is the assumed fault bound; the commit quorum is 2f+1. Zero selects
	// floor((n-1)/3).
	F int
	// MinMargin is how far below the replica's best-scored proposal a
	// primary's proposal may score and still earn a prepare vote; zero
	// selects 0.1.
	MinMargin float64
}

// Name implements Protocol.
func (PBFT) Name() string { return "pbft" }

// Agree implements Protocol.
func (p PBFT) Agree(ctx *Context, proposals []tensor.Vector) (tensor.Vector, Stats, error) {
	if err := ctx.check(proposals); err != nil {
		return nil, Stats{}, err
	}
	if ctx.Validator == nil {
		return nil, Stats{}, errors.New("consensus: pbft requires a validator")
	}
	n := ctx.Members
	f := p.F
	if f == 0 {
		f = (n - 1) / 3
	}
	quorum := 2*f + 1
	if quorum > n {
		quorum = n
	}
	margin := p.MinMargin
	if margin == 0 {
		margin = 0.1
	}
	// Each replica's score table and its personal best, for relative
	// validation (as in the voting protocol).
	best := make([]float64, n)
	scores := make([][]float64, n)
	for r := 0; r < n; r++ {
		scores[r] = make([]float64, n)
		for i := range proposals {
			scores[r][i] = ctx.Validator(r, proposals[i])
			if scores[r][i] > best[r] {
				best[r] = scores[r][i]
			}
		}
	}
	var st Stats
	for view := 0; view < n; view++ {
		primary := view % n
		st.Rounds++
		// Pre-prepare: primary broadcasts its proposal (n-1 model
		// transfers); prepare + commit: two all-to-all scalar rounds.
		st.ModelTransfers += n - 1
		st.Messages += (n - 1) + 2*n*(n-1)
		prepares := 0
		for r := 0; r < n; r++ {
			vote := scores[r][primary] >= best[r]-margin
			if ctx.isByz(r) {
				vote = !vote
			}
			if vote {
				prepares++
			}
		}
		if prepares >= quorum {
			return proposals[primary].Clone(), st, nil
		}
		st.Excluded = append(st.Excluded, primary)
	}
	sort.Ints(st.Excluded)
	return nil, st, fmt.Errorf("consensus: pbft exhausted %d views without a commit quorum", n)
}
