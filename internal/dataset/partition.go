package dataset

import (
	"fmt"
	"sort"

	"abdhfl/internal/rng"
)

// PartitionIID splits d into clients equally sized shards after a random
// shuffle, matching the paper's IID setting ("training samples for each
// label are shuffled and then distributed equally to all clients"). The
// final client absorbs the remainder.
func PartitionIID(r *rng.RNG, d *Dataset, clients int) []*Dataset {
	if clients <= 0 {
		panic("dataset: PartitionIID with non-positive client count")
	}
	n := d.Len()
	perm := r.Perm(n)
	per := n / clients
	if per == 0 {
		panic(fmt.Sprintf("dataset: %d samples cannot cover %d clients", n, clients))
	}
	out := make([]*Dataset, clients)
	for c := 0; c < clients; c++ {
		lo := c * per
		hi := lo + per
		if c == clients-1 {
			hi = n
		}
		out[c] = d.Subset(perm[lo:hi])
	}
	return out
}

// PartitionNonIID implements the paper's extreme non-IID setting: each
// client holds samples of exactly labelsPerClient labels (2 in the paper).
// Label pairs are assigned cyclically by client index — client i receives
// labels {(labelsPerClient*i) mod 10, ...} — so any run of
// ceil(NumClasses/labelsPerClient) consecutive clients jointly covers all
// ten labels. Because the Byzantine harness poisons a prefix of client ids,
// this realises the paper's "special design ... so that honest participants
// as a whole cover all ten labels" for every malicious proportion below 1.
func PartitionNonIID(r *rng.RNG, d *Dataset, clients, labelsPerClient int) []*Dataset {
	if clients <= 0 || labelsPerClient <= 0 || labelsPerClient > NumClasses {
		panic("dataset: PartitionNonIID invalid arguments")
	}
	// Bucket sample indices by label, shuffled within each bucket.
	byLabel := make([][]int, NumClasses)
	for i, y := range d.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	for c := range byLabel {
		idx := byLabel[c]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	// Count how many clients want each label so buckets can be split evenly.
	demand := make([]int, NumClasses)
	labelsOf := make([][]int, clients)
	for c := 0; c < clients; c++ {
		ls := make([]int, labelsPerClient)
		for k := 0; k < labelsPerClient; k++ {
			l := (c*labelsPerClient + k) % NumClasses
			ls[k] = l
			demand[l]++
		}
		labelsOf[c] = ls
	}
	// Cursor into each label bucket; each client takes an equal slice of
	// every bucket it demands.
	cursor := make([]int, NumClasses)
	out := make([]*Dataset, clients)
	for c := 0; c < clients; c++ {
		var take []int
		for _, l := range labelsOf[c] {
			if demand[l] == 0 {
				continue
			}
			per := len(byLabel[l]) / demand[l]
			lo := cursor[l]
			hi := lo + per
			if hi > len(byLabel[l]) {
				hi = len(byLabel[l])
			}
			take = append(take, byLabel[l][lo:hi]...)
			cursor[l] = hi
		}
		if len(take) == 0 {
			panic(fmt.Sprintf("dataset: client %d received no samples", c))
		}
		out[c] = d.Subset(take)
	}
	return out
}

// PartitionDirichlet splits d across clients with per-client label
// proportions drawn from a symmetric Dirichlet(alpha) distribution; small
// alpha yields highly skewed clients, large alpha approaches IID. This is an
// extension beyond the paper's two settings, useful for robustness studies
// between the extremes.
func PartitionDirichlet(r *rng.RNG, d *Dataset, clients int, alpha float64) []*Dataset {
	if clients <= 0 || alpha <= 0 {
		panic("dataset: PartitionDirichlet invalid arguments")
	}
	byLabel := make([][]int, NumClasses)
	for i, y := range d.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	take := make([][]int, clients)
	for l := 0; l < NumClasses; l++ {
		idx := byLabel[l]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		// Sample Dirichlet weights for this label across clients via
		// normalised Gamma(alpha) draws.
		w := make([]float64, clients)
		total := 0.0
		for c := range w {
			w[c] = gammaSample(r, alpha)
			total += w[c]
		}
		pos := 0
		for c := 0; c < clients; c++ {
			count := int(float64(len(idx)) * w[c] / total)
			if c == clients-1 {
				count = len(idx) - pos
			}
			take[c] = append(take[c], idx[pos:pos+count]...)
			pos += count
		}
	}
	out := make([]*Dataset, clients)
	for c := range out {
		sort.Ints(take[c])
		out[c] = d.Subset(take[c])
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia-Tsang for
// shape >= 1 and the boost transform for shape < 1.
func gammaSample(r *rng.RNG, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaSample(r, shape+1) * pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * sqrt(d))
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if ln(u) < 0.5*x*x+d-d*v+d*ln(v) {
			return d * v
		}
	}
}

// Split partitions d into train/test with the given test fraction,
// stratified by label so both sides keep the class balance. Feature vectors
// are shared with d.
func Split(r *rng.RNG, d *Dataset, testFraction float64) (train, test *Dataset) {
	if testFraction < 0 {
		testFraction = 0
	}
	if testFraction > 1 {
		testFraction = 1
	}
	byLabel := make([][]int, NumClasses)
	for i, y := range d.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	var trainIdx, testIdx []int
	for _, idx := range byLabel {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(testFraction * float64(len(idx)))
		testIdx = append(testIdx, idx[:cut]...)
		trainIdx = append(trainIdx, idx[cut:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx)
}
