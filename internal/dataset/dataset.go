// Package dataset provides the image-classification workload used by the
// evaluation: a deterministic synthetic 10-class "digits" generator standing
// in for MNIST (the module is offline), plus the IID and extreme non-IID
// client partitioners described in the paper's Appendix D.
//
// The generator renders stylised 8x8 glyphs for the digits 0-9 and perturbs
// them with Gaussian pixel noise, random intensity scaling and single-pixel
// translation jitter. The noise level is calibrated so that the small MLP of
// internal/nn plateaus near the paper's ~90% clean test accuracy, which is
// the property the Byzantine-robustness experiments actually depend on.
package dataset

import (
	"fmt"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// NumClasses is the number of target classes (digits 0-9).
const NumClasses = 10

// Side is the glyph edge length; samples have Side*Side features.
const Side = 8

// Dim is the feature dimension of every sample.
const Dim = Side * Side

// Dataset is a labelled sample collection. Samples are dense feature
// vectors; labels are class indices in [0, NumClasses).
type Dataset struct {
	X []tensor.Vector
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Clone returns a deep copy of d (feature vectors are copied so attacks can
// poison a clone without touching the original).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		X: make([]tensor.Vector, len(d.X)),
		Y: append([]int(nil), d.Y...),
	}
	for i, x := range d.X {
		c.X[i] = x.Clone()
	}
	return c
}

// Subset returns a view of d containing the samples at the given indices.
// Feature vectors are shared, labels are copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		X: make([]tensor.Vector, len(idx)),
		Y: make([]int, len(idx)),
	}
	for k, i := range idx {
		s.X[k] = d.X[i]
		s.Y[k] = d.Y[i]
	}
	return s
}

// LabelHistogram returns the per-class sample counts.
func (d *Dataset) LabelHistogram() [NumClasses]int {
	var h [NumClasses]int
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// glyphs are the 8x8 digit prototypes, one string row per pixel row; '#'
// marks an inked pixel. They are intentionally crude: class separability
// must come from shape, and the added noise controls the error floor.
var glyphs = [NumClasses][Side]string{
	{ // 0
		"..####..",
		".##..##.",
		".#....#.",
		".#....#.",
		".#....#.",
		".#....#.",
		".##..##.",
		"..####..",
	},
	{ // 1
		"...##...",
		"..###...",
		"...##...",
		"...##...",
		"...##...",
		"...##...",
		"...##...",
		".######.",
	},
	{ // 2
		"..####..",
		".##..##.",
		".....##.",
		"....##..",
		"...##...",
		"..##....",
		".##.....",
		".######.",
	},
	{ // 3
		".#####..",
		".....##.",
		".....##.",
		"..####..",
		".....##.",
		".....##.",
		".....##.",
		".#####..",
	},
	{ // 4
		"....##..",
		"...###..",
		"..#.##..",
		".#..##..",
		"#...##..",
		"########",
		"....##..",
		"....##..",
	},
	{ // 5
		".######.",
		".##.....",
		".##.....",
		".#####..",
		".....##.",
		".....##.",
		".##..##.",
		"..####..",
	},
	{ // 6
		"..####..",
		".##.....",
		".#......",
		".#####..",
		".##..##.",
		".#....#.",
		".##..##.",
		"..####..",
	},
	{ // 7
		".######.",
		".....##.",
		"....##..",
		"....##..",
		"...##...",
		"...##...",
		"..##....",
		"..##....",
	},
	{ // 8
		"..####..",
		".##..##.",
		".##..##.",
		"..####..",
		".##..##.",
		".#....#.",
		".##..##.",
		"..####..",
	},
	{ // 9
		"..####..",
		".##..##.",
		".#....#.",
		".##..##.",
		"..#####.",
		"......#.",
		".....##.",
		"..####..",
	},
}

// prototypes holds the glyphs decoded to feature vectors (ink=1, blank=0).
var prototypes [NumClasses]tensor.Vector

func init() {
	for c := 0; c < NumClasses; c++ {
		v := tensor.NewVector(Dim)
		for r := 0; r < Side; r++ {
			row := glyphs[c][r]
			if len(row) != Side {
				panic(fmt.Sprintf("dataset: glyph %d row %d has width %d", c, r, len(row)))
			}
			for col := 0; col < Side; col++ {
				if row[col] == '#' {
					v[r*Side+col] = 1
				}
			}
		}
		prototypes[c] = v
	}
}

// Prototype returns a copy of the clean glyph for class c.
func Prototype(c int) tensor.Vector { return prototypes[c].Clone() }

// GenConfig controls the synthetic generator.
type GenConfig struct {
	// Noise is the stddev of per-pixel Gaussian noise. The default used by
	// the experiments (see DefaultGen) is calibrated so a small MLP reaches
	// roughly the paper's ~90% clean accuracy plateau.
	Noise float64
	// JitterProb is the probability that a sample is translated by one pixel
	// in a random direction, adding within-class variance.
	JitterProb float64
	// ScaleSpread is the half-width of the uniform intensity scale factor
	// [1-s, 1+s] applied to the glyph before noise.
	ScaleSpread float64
}

// DefaultGen is the generator configuration used by all experiments.
func DefaultGen() GenConfig {
	return GenConfig{Noise: 0.5, JitterProb: 0.5, ScaleSpread: 0.3}
}

// Generate produces n labelled samples with a balanced label distribution
// (class c receives n/NumClasses samples, remainder spread over the lowest
// classes), drawn deterministically from r.
func Generate(r *rng.RNG, n int, cfg GenConfig) *Dataset {
	d := &Dataset{
		X: make([]tensor.Vector, 0, n),
		Y: make([]int, 0, n),
	}
	for i := 0; i < n; i++ {
		c := i % NumClasses
		d.X = append(d.X, Sample(r, c, cfg))
		d.Y = append(d.Y, c)
	}
	// Shuffle so consecutive samples are not label-correlated.
	r.Shuffle(n, func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
	return d
}

// Sample draws one perturbed sample of class c.
func Sample(r *rng.RNG, c int, cfg GenConfig) tensor.Vector {
	if c < 0 || c >= NumClasses {
		panic(fmt.Sprintf("dataset: class %d out of range", c))
	}
	x := prototypes[c].Clone()
	if cfg.JitterProb > 0 && r.Float64() < cfg.JitterProb {
		shift(x, r.Intn(4))
	}
	scale := 1.0
	if cfg.ScaleSpread > 0 {
		scale = 1 + (2*r.Float64()-1)*cfg.ScaleSpread
	}
	for i := range x {
		x[i] = x[i]*scale + cfg.Noise*r.NormFloat64()
	}
	return x
}

// shift translates the glyph by one pixel: 0=left 1=right 2=up 3=down,
// filling vacated pixels with 0.
func shift(x tensor.Vector, dir int) {
	var out [Dim]float64
	for r := 0; r < Side; r++ {
		for c := 0; c < Side; c++ {
			sr, sc := r, c
			switch dir {
			case 0:
				sc = c + 1
			case 1:
				sc = c - 1
			case 2:
				sr = r + 1
			case 3:
				sr = r - 1
			}
			if sr >= 0 && sr < Side && sc >= 0 && sc < Side {
				out[r*Side+c] = x[sr*Side+sc]
			}
		}
	}
	copy(x, out[:])
}
