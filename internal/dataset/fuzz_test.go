package dataset

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLoadIDX hardens the IDX decoder: arbitrary byte streams must either
// error out or yield a structurally valid dataset — never panic or allocate
// absurd amounts.
func FuzzLoadIDX(f *testing.F) {
	// Seed: one valid pair, concatenated as images||labels with a length
	// prefix so the fuzzer can mutate both streams.
	img := &bytes.Buffer{}
	for _, v := range []uint32{idxImagesMagic, 1, Side, Side} {
		_ = binary.Write(img, binary.BigEndian, v)
	}
	img.Write(make([]byte, Dim))
	lbl := &bytes.Buffer{}
	for _, v := range []uint32{idxLabelsMagic, 1} {
		_ = binary.Write(lbl, binary.BigEndian, v)
	}
	lbl.WriteByte(3)
	f.Add(img.Bytes(), lbl.Bytes())
	f.Add([]byte{}, []byte{})
	f.Add([]byte("junk"), []byte("junk"))

	f.Fuzz(func(t *testing.T, images, labels []byte) {
		// Guard against fuzzer inputs claiming huge sample counts: the
		// reader must fail on truncation before allocating per-sample.
		d, err := LoadIDX(bytes.NewReader(images), bytes.NewReader(labels))
		if err != nil {
			return
		}
		for i := range d.X {
			if len(d.X[i]) != Dim {
				t.Fatal("accepted sample with wrong dimension")
			}
			if d.Y[i] < 0 || d.Y[i] >= NumClasses {
				t.Fatal("accepted out-of-range label")
			}
		}
	})
}
