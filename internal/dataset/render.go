package dataset

import (
	"strings"

	"abdhfl/internal/tensor"
)

// Render draws a sample as ASCII art (one glyph row per line) using a
// five-step intensity ramp. It is a debugging aid for inspecting the
// synthetic digits and the effect of attacks (noise, backdoor triggers).
func Render(x tensor.Vector) string {
	ramp := []byte(" .:#@")
	var b strings.Builder
	for r := 0; r < Side; r++ {
		for c := 0; c < Side; c++ {
			v := x[r*Side+c]
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
