package dataset

import (
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

func TestGenerateBalancedLabels(t *testing.T) {
	d := Generate(rng.New(1), 1000, DefaultGen())
	h := d.LabelHistogram()
	for c, n := range h {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rng.New(7), 100, DefaultGen())
	b := Generate(rng.New(7), 100, DefaultGen())
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("labels diverge at %d", i)
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("features diverge at sample %d coord %d", i, j)
			}
		}
	}
}

func TestSampleDimensions(t *testing.T) {
	x := Sample(rng.New(2), 3, DefaultGen())
	if len(x) != Dim {
		t.Fatalf("sample dim = %d, want %d", len(x), Dim)
	}
	if !tensor.AllFinite(x) {
		t.Fatal("sample has non-finite values")
	}
}

func TestSampleInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(rng.New(1), 10, DefaultGen())
}

func TestPrototypesDistinct(t *testing.T) {
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			if tensor.Distance(Prototype(a), Prototype(b)) < 1 {
				t.Fatalf("prototypes %d and %d nearly identical", a, b)
			}
		}
	}
}

func TestNoiselessNearestPrototype(t *testing.T) {
	// Without noise/jitter/scale a sample is exactly the prototype.
	cfg := GenConfig{}
	for c := 0; c < NumClasses; c++ {
		x := Sample(rng.New(uint64(c)), c, cfg)
		if tensor.Distance(x, Prototype(c)) != 0 {
			t.Fatalf("noiseless sample of class %d differs from prototype", c)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	d := Generate(rng.New(3), 10, DefaultGen())
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[1] = 0
	if d.X[0][0] == 999 {
		t.Fatal("Clone shares feature storage")
	}
}

func TestSubsetSharesFeatures(t *testing.T) {
	d := Generate(rng.New(3), 10, DefaultGen())
	s := d.Subset([]int{0, 5})
	if s.Len() != 2 {
		t.Fatalf("subset len = %d", s.Len())
	}
	s.X[0][0] = 123
	if d.X[0][0] != 123 {
		t.Fatal("Subset should share feature vectors")
	}
}

func TestPartitionIIDSizes(t *testing.T) {
	d := Generate(rng.New(4), 640, DefaultGen())
	parts := PartitionIID(rng.New(5), d, 64)
	if len(parts) != 64 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() < 10 {
			t.Fatalf("client shard too small: %d", p.Len())
		}
	}
	if total != 640 {
		t.Fatalf("partition lost samples: %d", total)
	}
}

func TestPartitionIIDCoversAllSamples(t *testing.T) {
	check := func(seed uint64) bool {
		d := Generate(rng.New(seed), 200, DefaultGen())
		parts := PartitionIID(rng.New(seed+1), d, 7)
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		return total == 200
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionNonIIDLabelCount(t *testing.T) {
	d := Generate(rng.New(6), 6400, DefaultGen())
	parts := PartitionNonIID(rng.New(7), d, 64, 2)
	for c, p := range parts {
		h := p.LabelHistogram()
		labels := 0
		for _, n := range h {
			if n > 0 {
				labels++
			}
		}
		if labels != 2 {
			t.Fatalf("client %d holds %d labels, want 2", c, labels)
		}
	}
}

func TestPartitionNonIIDSuffixCoverage(t *testing.T) {
	// The paper requires honest clients (a suffix of ids in our harness) to
	// jointly cover all labels. Check coverage of every suffix of length >= 5.
	d := Generate(rng.New(8), 6400, DefaultGen())
	parts := PartitionNonIID(rng.New(9), d, 64, 2)
	for start := 0; start <= 64-5; start++ {
		var covered [NumClasses]bool
		for c := start; c < 64; c++ {
			h := parts[c].LabelHistogram()
			for l, n := range h {
				if n > 0 {
					covered[l] = true
				}
			}
		}
		for l, ok := range covered {
			if !ok {
				t.Fatalf("suffix from %d misses label %d", start, l)
			}
		}
	}
}

func TestPartitionNonIIDNonEmpty(t *testing.T) {
	d := Generate(rng.New(10), 3200, DefaultGen())
	parts := PartitionNonIID(rng.New(11), d, 32, 2)
	for c, p := range parts {
		if p.Len() == 0 {
			t.Fatalf("client %d empty", c)
		}
	}
}

func TestPartitionDirichletConserves(t *testing.T) {
	d := Generate(rng.New(12), 2000, DefaultGen())
	parts := PartitionDirichlet(rng.New(13), d, 10, 0.5)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 2000 {
		t.Fatalf("dirichlet partition lost samples: %d", total)
	}
}

func TestPartitionDirichletSkewByAlpha(t *testing.T) {
	d := Generate(rng.New(14), 5000, DefaultGen())
	skew := func(alpha float64) float64 {
		parts := PartitionDirichlet(rng.New(15), d, 10, alpha)
		// Average per-client max-label share; higher = more skewed.
		s := 0.0
		for _, p := range parts {
			h := p.LabelHistogram()
			maxN := 0
			for _, n := range h {
				if n > maxN {
					maxN = n
				}
			}
			if p.Len() > 0 {
				s += float64(maxN) / float64(p.Len())
			}
		}
		return s / 10
	}
	if skew(0.1) <= skew(100) {
		t.Fatalf("alpha=0.1 skew %v not above alpha=100 skew %v", skew(0.1), skew(100))
	}
}

func TestLabelHistogramSum(t *testing.T) {
	d := Generate(rng.New(16), 333, DefaultGen())
	h := d.LabelHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 333 {
		t.Fatalf("histogram total = %d", total)
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	cfg := DefaultGen()
	for i := 0; i < b.N; i++ {
		_ = Generate(rng.New(uint64(i)), 1000, cfg)
	}
}

func BenchmarkPartitionNonIID(b *testing.B) {
	d := Generate(rng.New(1), 6400, DefaultGen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PartitionNonIID(rng.New(uint64(i)), d, 64, 2)
	}
}

func TestRenderShape(t *testing.T) {
	out := Render(Prototype(3))
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != Side {
		t.Fatalf("rendered %d lines, want %d", lines, Side)
	}
	if len(out) != Side*(Side+1) {
		t.Fatalf("rendered %d bytes", len(out))
	}
}

func TestRenderClampsIntensity(t *testing.T) {
	x := tensor.NewVector(Dim)
	x[0] = -100
	x[1] = 100
	out := Render(x)
	if out[0] != ' ' || out[1] != '@' {
		t.Fatalf("clamping failed: %q", out[:2])
	}
}

func TestSplitStratified(t *testing.T) {
	d := Generate(rng.New(91), 1000, DefaultGen())
	train, test := Split(rng.New(92), d, 0.2)
	if train.Len()+test.Len() != 1000 {
		t.Fatalf("split lost samples: %d + %d", train.Len(), test.Len())
	}
	if test.Len() != 200 {
		t.Fatalf("test size = %d, want 200", test.Len())
	}
	// Stratification: every class contributes exactly 20 test samples.
	h := test.LabelHistogram()
	for c, n := range h {
		if n != 20 {
			t.Fatalf("class %d test count = %d, want 20", c, n)
		}
	}
}

func TestSplitEdgeFractions(t *testing.T) {
	d := Generate(rng.New(93), 100, DefaultGen())
	train, test := Split(rng.New(94), d, 0)
	if train.Len() != 100 || test.Len() != 0 {
		t.Fatal("zero fraction wrong")
	}
	train, test = Split(rng.New(94), d, 5) // clamped to 1
	if train.Len() != 0 || test.Len() != 100 {
		t.Fatal("over-one fraction not clamped")
	}
}

func TestSplitNoOverlap(t *testing.T) {
	d := Generate(rng.New(95), 300, DefaultGen())
	train, test := Split(rng.New(96), d, 0.3)
	// Feature vectors are shared with d; overlap would mean the same
	// underlying slice appears on both sides.
	seen := map[*float64]bool{}
	for _, x := range train.X {
		seen[&x[0]] = true
	}
	for _, x := range test.X {
		if seen[&x[0]] {
			t.Fatal("train and test share a sample")
		}
	}
}
