package dataset

import "math"

// Thin wrappers keep partition.go readable without dotted math calls in the
// inner sampling loops.

func pow(x, y float64) float64 { return math.Pow(x, y) }
func sqrt(x float64) float64   { return math.Sqrt(x) }
func ln(x float64) float64     { return math.Log(x) }
