package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"abdhfl/internal/tensor"
)

// IDX loading: the LeCun IDX format used by the original MNIST distribution
// (magic 0x803 image files, 0x801 label files). The module ships with the
// synthetic generator because it must work offline, but when the real MNIST
// files are available this loader adapts them to the pipeline: images are
// average-pooled down to the Side x Side feature grid every other component
// expects and scaled to [0, 1].

const (
	idxImagesMagic = 0x00000803
	idxLabelsMagic = 0x00000801
)

// LoadIDX reads an images/labels IDX pair into a Dataset. Images are pooled
// to Side x Side and intensities scaled to [0, 1]; labels must be in
// [0, NumClasses).
func LoadIDX(images, labels io.Reader) (*Dataset, error) {
	imgs := bufio.NewReader(images)
	lbls := bufio.NewReader(labels)

	var magic, count uint32
	if err := binary.Read(imgs, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading image magic: %w", err)
	}
	if magic != idxImagesMagic {
		return nil, fmt.Errorf("dataset: bad image magic %#x", magic)
	}
	if err := binary.Read(imgs, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	var rows, cols uint32
	if err := binary.Read(imgs, binary.BigEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(imgs, binary.BigEndian, &cols); err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 || rows > 4096 || cols > 4096 {
		return nil, fmt.Errorf("dataset: implausible image shape %dx%d", rows, cols)
	}

	var lMagic, lCount uint32
	if err := binary.Read(lbls, binary.BigEndian, &lMagic); err != nil {
		return nil, fmt.Errorf("dataset: reading label magic: %w", err)
	}
	if lMagic != idxLabelsMagic {
		return nil, fmt.Errorf("dataset: bad label magic %#x", lMagic)
	}
	if err := binary.Read(lbls, binary.BigEndian, &lCount); err != nil {
		return nil, err
	}
	if count != lCount {
		return nil, fmt.Errorf("dataset: %d images but %d labels", count, lCount)
	}
	// Guard against adversarial headers: cap the sample count (MNIST is
	// 60k; 2^22 leaves ample headroom) and never trust it for preallocation
	// — a corrupt stream would otherwise drive a multi-GB make().
	const maxIDXSamples = 1 << 22
	if count > maxIDXSamples {
		return nil, fmt.Errorf("dataset: implausible sample count %d", count)
	}
	prealloc := int(count)
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	d := &Dataset{
		X: make([]tensor.Vector, 0, prealloc),
		Y: make([]int, 0, prealloc),
	}
	raw := make([]byte, rows*cols)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(imgs, raw); err != nil {
			return nil, fmt.Errorf("dataset: image %d truncated: %w", i, err)
		}
		label, err := lbls.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("dataset: label %d truncated: %w", i, err)
		}
		if int(label) >= NumClasses {
			return nil, fmt.Errorf("dataset: label %d out of range at sample %d", label, i)
		}
		d.X = append(d.X, poolToGrid(raw, int(rows), int(cols)))
		d.Y = append(d.Y, int(label))
	}
	return d, nil
}

// poolToGrid average-pools a rows x cols uint8 image down to Side x Side
// float features in [0, 1].
func poolToGrid(raw []byte, rows, cols int) tensor.Vector {
	out := tensor.NewVector(Dim)
	for gr := 0; gr < Side; gr++ {
		r0 := gr * rows / Side
		r1 := (gr + 1) * rows / Side
		if r1 == r0 {
			r1 = r0 + 1
		}
		for gc := 0; gc < Side; gc++ {
			c0 := gc * cols / Side
			c1 := (gc + 1) * cols / Side
			if c1 == c0 {
				c1 = c0 + 1
			}
			sum := 0.0
			for r := r0; r < r1 && r < rows; r++ {
				for c := c0; c < c1 && c < cols; c++ {
					sum += float64(raw[r*cols+c])
				}
			}
			n := float64((r1 - r0) * (c1 - c0))
			out[gr*Side+gc] = sum / n / 255
		}
	}
	return out
}

// LoadMNISTDir loads the classic four-file MNIST layout from dir
// (train-images-idx3-ubyte, train-labels-idx1-ubyte, t10k-images-idx3-ubyte,
// t10k-labels-idx1-ubyte), returning train and test sets.
func LoadMNISTDir(dir string) (train, test *Dataset, err error) {
	open := func(name string) (*os.File, error) {
		return os.Open(dir + string(os.PathSeparator) + name)
	}
	ti, err := open("train-images-idx3-ubyte")
	if err != nil {
		return nil, nil, err
	}
	defer ti.Close()
	tl, err := open("train-labels-idx1-ubyte")
	if err != nil {
		return nil, nil, err
	}
	defer tl.Close()
	train, err = LoadIDX(ti, tl)
	if err != nil {
		return nil, nil, err
	}
	vi, err := open("t10k-images-idx3-ubyte")
	if err != nil {
		return nil, nil, err
	}
	defer vi.Close()
	vl, err := open("t10k-labels-idx1-ubyte")
	if err != nil {
		return nil, nil, err
	}
	defer vl.Close()
	test, err = LoadIDX(vi, vl)
	if err != nil {
		return nil, nil, err
	}
	if train.Len() == 0 || test.Len() == 0 {
		return nil, nil, errors.New("dataset: empty MNIST files")
	}
	return train, test, nil
}
