package dataset

import (
	"bytes"
	"encoding/binary"
	"testing"

	"abdhfl/internal/rng"
)

// writeIDXPair synthesises an IDX image/label pair with the given samples.
func writeIDXPair(t *testing.T, images [][]byte, labels []byte, rows, cols int) (*bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	imgBuf := &bytes.Buffer{}
	lblBuf := &bytes.Buffer{}
	for _, v := range []uint32{idxImagesMagic, uint32(len(images)), uint32(rows), uint32(cols)} {
		if err := binary.Write(imgBuf, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, img := range images {
		imgBuf.Write(img)
	}
	for _, v := range []uint32{idxLabelsMagic, uint32(len(labels))} {
		if err := binary.Write(lblBuf, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	lblBuf.Write(labels)
	return imgBuf, lblBuf
}

func TestLoadIDXRoundTrip(t *testing.T) {
	const rows, cols = 28, 28
	r := rng.New(61)
	images := make([][]byte, 5)
	labels := make([]byte, 5)
	for i := range images {
		img := make([]byte, rows*cols)
		for j := range img {
			img[j] = byte(r.Intn(256))
		}
		images[i] = img
		labels[i] = byte(i % NumClasses)
	}
	imgBuf, lblBuf := writeIDXPair(t, images, labels, rows, cols)
	d, err := LoadIDX(imgBuf, lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("loaded %d samples", d.Len())
	}
	for i, x := range d.X {
		if len(x) != Dim {
			t.Fatalf("sample %d dim %d", i, len(x))
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of [0,1]", v)
			}
		}
		if d.Y[i] != i%NumClasses {
			t.Fatalf("label %d = %d", i, d.Y[i])
		}
	}
}

func TestLoadIDXPoolingAverages(t *testing.T) {
	// A uniform 255 image must pool to all-ones.
	const rows, cols = 16, 16
	img := bytes.Repeat([]byte{255}, rows*cols)
	imgBuf, lblBuf := writeIDXPair(t, [][]byte{img}, []byte{7}, rows, cols)
	d, err := LoadIDX(imgBuf, lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.X[0] {
		if v != 1 {
			t.Fatalf("pooled pixel = %v, want 1", v)
		}
	}
}

func TestLoadIDXNativeGrid(t *testing.T) {
	// An already Side x Side image passes through unpooled (identity blocks).
	img := make([]byte, Dim)
	img[0] = 255
	imgBuf, lblBuf := writeIDXPair(t, [][]byte{img}, []byte{0}, Side, Side)
	d, err := LoadIDX(imgBuf, lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	if d.X[0][0] != 1 || d.X[0][1] != 0 {
		t.Fatalf("native grid mangled: %v %v", d.X[0][0], d.X[0][1])
	}
}

func TestLoadIDXErrors(t *testing.T) {
	// Bad image magic.
	img := &bytes.Buffer{}
	_ = binary.Write(img, binary.BigEndian, uint32(0xdead))
	lbl := &bytes.Buffer{}
	if _, err := LoadIDX(img, lbl); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Count mismatch.
	imgBuf, _ := writeIDXPair(t, [][]byte{make([]byte, Dim)}, []byte{0}, Side, Side)
	lblBuf := &bytes.Buffer{}
	_ = binary.Write(lblBuf, binary.BigEndian, uint32(idxLabelsMagic))
	_ = binary.Write(lblBuf, binary.BigEndian, uint32(2))
	lblBuf.Write([]byte{0, 1})
	if _, err := LoadIDX(imgBuf, lblBuf); err == nil {
		t.Fatal("count mismatch accepted")
	}

	// Truncated image data.
	imgBuf2 := &bytes.Buffer{}
	for _, v := range []uint32{idxImagesMagic, 1, Side, Side} {
		_ = binary.Write(imgBuf2, binary.BigEndian, v)
	}
	imgBuf2.Write(make([]byte, 3)) // far too short
	_, lblBuf2 := writeIDXPair(t, nil, []byte{0}, Side, Side)
	if _, err := LoadIDX(imgBuf2, lblBuf2); err == nil {
		t.Fatal("truncated images accepted")
	}

	// Out-of-range label.
	imgBuf3, lblBuf3 := writeIDXPair(t, [][]byte{make([]byte, Dim)}, []byte{200}, Side, Side)
	if _, err := LoadIDX(imgBuf3, lblBuf3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestLoadMNISTDirMissing(t *testing.T) {
	if _, _, err := LoadMNISTDir(t.TempDir()); err == nil {
		t.Fatal("missing files accepted")
	}
}
