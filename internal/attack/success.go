package attack

import (
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
)

// BackdoorSuccessRate measures a backdoor's efficacy against a trained
// model: the fraction of test samples whose true label differs from the
// trigger target but which the model classifies as the target once the
// trigger patch is stamped in. A clean model scores near the target class's
// base rate; a successfully backdoored model scores near 1.
func BackdoorSuccessRate(m *nn.Model, test *dataset.Dataset, bd BackdoorTrigger) float64 {
	triggered, total := 0, 0
	for i := range test.X {
		if test.Y[i] == bd.Target {
			continue // only count samples the trigger must actively flip
		}
		x := test.X[i].Clone()
		bd.Stamp(x)
		if m.Predict(x) == bd.Target {
			triggered++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(triggered) / float64(total)
}

// CleanAccuracyUnderBackdoor measures the model's accuracy on untriggered
// data — a stealthy backdoor keeps this high while BackdoorSuccessRate is
// also high.
func CleanAccuracyUnderBackdoor(m *nn.Model, test *dataset.Dataset) float64 {
	return nn.Accuracy(m, test)
}
