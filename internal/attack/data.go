// Package attack implements the Byzantine attack taxonomy of the paper's
// Table I: data-poisoning attacks that corrupt a client's training set
// (label flipping, feature noise, backdoor triggers) and model-update
// attacks that corrupt the parameter vector a client submits for aggregation
// (sign flip, Gaussian noise, A-Little-Is-Enough, Inner-Product
// Manipulation).
package attack

import (
	"abdhfl/internal/dataset"
	"abdhfl/internal/rng"
)

// DataPoison corrupts a training dataset in place.
type DataPoison interface {
	// Name identifies the attack in experiment reports.
	Name() string
	// Poison corrupts d in place using randomness from r.
	Poison(r *rng.RNG, d *dataset.Dataset)
}

// LabelFlipAll is the paper's data-poisoning "Type I" attack: every training
// label is set to Target (9 in the evaluation).
type LabelFlipAll struct {
	Target int
}

// Name implements DataPoison.
func (a LabelFlipAll) Name() string { return "label-flip-all" }

// Poison implements DataPoison.
func (a LabelFlipAll) Poison(_ *rng.RNG, d *dataset.Dataset) {
	for i := range d.Y {
		d.Y[i] = a.Target
	}
}

// LabelFlipRandom is the paper's data-poisoning "Type II" attack: every
// training label is replaced by a uniformly random class in [0, NumClasses).
type LabelFlipRandom struct{}

// Name implements DataPoison.
func (LabelFlipRandom) Name() string { return "label-flip-random" }

// Poison implements DataPoison.
func (LabelFlipRandom) Poison(r *rng.RNG, d *dataset.Dataset) {
	for i := range d.Y {
		d.Y[i] = r.Intn(dataset.NumClasses)
	}
}

// FeatureNoise adds Gaussian noise of the given standard deviation to every
// training sample (the "Noise" row of Table I's dataset attacks).
type FeatureNoise struct {
	Stddev float64
}

// Name implements DataPoison.
func (a FeatureNoise) Name() string { return "feature-noise" }

// Poison implements DataPoison.
func (a FeatureNoise) Poison(r *rng.RNG, d *dataset.Dataset) {
	for _, x := range d.X {
		for i := range x {
			x[i] += a.Stddev * r.NormFloat64()
		}
	}
}

// BackdoorTrigger stamps a bright trigger patch into a corner of every
// sample and relabels it to Target, implanting a classic backdoor: the model
// learns to map the trigger pattern to the attacker's class.
type BackdoorTrigger struct {
	Target int
	// PatchSize is the trigger's edge length in pixels (top-left corner).
	PatchSize int
	// Value is the pixel intensity written into the patch.
	Value float64
}

// DefaultBackdoor returns the trigger used by the attack-matrix experiments.
func DefaultBackdoor() BackdoorTrigger {
	return BackdoorTrigger{Target: 0, PatchSize: 2, Value: 3}
}

// Name implements DataPoison.
func (a BackdoorTrigger) Name() string { return "backdoor-trigger" }

// Poison implements DataPoison.
func (a BackdoorTrigger) Poison(_ *rng.RNG, d *dataset.Dataset) {
	for k, x := range d.X {
		a.Stamp(x)
		d.Y[k] = a.Target
	}
}

// Stamp writes the trigger patch into a single feature vector; exported so
// evaluations can build triggered test sets to measure attack success rate.
func (a BackdoorTrigger) Stamp(x []float64) {
	for r := 0; r < a.PatchSize; r++ {
		for c := 0; c < a.PatchSize; c++ {
			x[r*dataset.Side+c] = a.Value
		}
	}
}
