package attack

import (
	"math"
	"testing"

	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

func sampleSet(seed uint64, n int) *dataset.Dataset {
	return dataset.Generate(rng.New(seed), n, dataset.DefaultGen())
}

func TestLabelFlipAll(t *testing.T) {
	d := sampleSet(1, 100)
	LabelFlipAll{Target: 9}.Poison(rng.New(2), d)
	for i, y := range d.Y {
		if y != 9 {
			t.Fatalf("sample %d label %d, want 9", i, y)
		}
	}
}

func TestLabelFlipAllPreservesFeatures(t *testing.T) {
	d := sampleSet(1, 10)
	before := d.X[0].Clone()
	LabelFlipAll{Target: 9}.Poison(rng.New(2), d)
	for i := range before {
		if d.X[0][i] != before[i] {
			t.Fatal("Type I attack must not modify features")
		}
	}
}

func TestLabelFlipRandomChangesDistribution(t *testing.T) {
	d := sampleSet(3, 2000)
	LabelFlipRandom{}.Poison(rng.New(4), d)
	h := d.LabelHistogram()
	for c, n := range h {
		// Uniform over 10 classes: expect ~200, allow wide slack.
		if n < 100 || n > 300 {
			t.Fatalf("class %d count %d not near uniform", c, n)
		}
	}
}

func TestFeatureNoiseChangesFeaturesNotLabels(t *testing.T) {
	d := sampleSet(5, 20)
	labels := append([]int(nil), d.Y...)
	x0 := d.X[0].Clone()
	FeatureNoise{Stddev: 1}.Poison(rng.New(6), d)
	for i := range labels {
		if d.Y[i] != labels[i] {
			t.Fatal("feature noise must not touch labels")
		}
	}
	if tensor.Distance(d.X[0], x0) == 0 {
		t.Fatal("feature noise did not change features")
	}
}

func TestBackdoorTrigger(t *testing.T) {
	d := sampleSet(7, 50)
	bd := DefaultBackdoor()
	bd.Poison(rng.New(8), d)
	for i := range d.Y {
		if d.Y[i] != bd.Target {
			t.Fatalf("sample %d not relabelled", i)
		}
	}
	// Trigger patch present at top-left.
	for r := 0; r < bd.PatchSize; r++ {
		for c := 0; c < bd.PatchSize; c++ {
			if d.X[0][r*dataset.Side+c] != bd.Value {
				t.Fatal("trigger patch missing")
			}
		}
	}
}

func TestSignFlip(t *testing.T) {
	honest := tensor.Vector{1, -2, 3}
	out := SignFlip{Scale: 2}.Apply(rng.New(1), honest, nil, nil)
	want := tensor.Vector{-2, 4, -6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SignFlip = %v", out)
		}
	}
	// Default scale 1.
	out = SignFlip{}.Apply(rng.New(1), honest, nil, nil)
	if out[0] != -1 {
		t.Fatalf("default SignFlip = %v", out)
	}
	if honest[0] != 1 {
		t.Fatal("SignFlip mutated the honest update")
	}
}

func TestGaussianNoiseLargeDeviation(t *testing.T) {
	honest := tensor.NewVector(100)
	out := GaussianNoise{Stddev: 10}.Apply(rng.New(2), honest, nil, nil)
	if tensor.Distance(out, honest) < 10 {
		t.Fatal("noise attack barely moved the update")
	}
}

func TestALEHidesWithinStd(t *testing.T) {
	mean := tensor.Vector{1, 1, 1}
	std := tensor.Vector{0.1, 0.2, 0.3}
	out := ALE{Z: 1.5}.Apply(rng.New(3), nil, mean, std)
	for i := range out {
		want := mean[i] - 1.5*std[i]
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("ALE[%d] = %v, want %v", i, out[i], want)
		}
	}
	// Nil std degrades to the mean.
	out = ALE{Z: 1.5}.Apply(rng.New(3), nil, mean, nil)
	for i := range out {
		if out[i] != mean[i] {
			t.Fatal("ALE with nil std should return the mean")
		}
	}
}

func TestIPMNegativeInnerProduct(t *testing.T) {
	mean := tensor.Vector{1, 2, 3}
	out := IPM{Epsilon: 0.5}.Apply(rng.New(4), nil, mean, nil)
	if ip := tensor.Dot(out, mean); ip >= 0 {
		t.Fatalf("IPM inner product = %v, want negative", ip)
	}
}

func TestPopulationStats(t *testing.T) {
	honest := []tensor.Vector{{0, 2}, {2, 2}, {4, 2}}
	mean, std := PopulationStats(honest)
	if mean[0] != 2 || mean[1] != 2 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std[0]-math.Sqrt(8.0/3.0)) > 1e-12 {
		t.Fatalf("std[0] = %v", std[0])
	}
	if std[1] != 0 {
		t.Fatalf("std[1] = %v", std[1])
	}
}

func TestPopulationStatsSingle(t *testing.T) {
	mean, std := PopulationStats([]tensor.Vector{{5, 7}})
	if mean[0] != 5 || mean[1] != 7 || std[0] != 0 || std[1] != 0 {
		t.Fatal("single-member stats wrong")
	}
}

func TestAttackNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, n := range []string{
		LabelFlipAll{}.Name(), LabelFlipRandom{}.Name(), FeatureNoise{}.Name(),
		BackdoorTrigger{}.Name(), SignFlip{}.Name(), GaussianNoise{}.Name(),
		ALE{}.Name(), IPM{}.Name(),
	} {
		if names[n] {
			t.Fatalf("duplicate attack name %q", n)
		}
		names[n] = true
	}
}

func TestBackdoorSuccessRate(t *testing.T) {
	// Train one model on clean data and one on fully backdoored data; the
	// poisoned model must have a far higher trigger success rate.
	r := rng.New(31)
	gen := dataset.DefaultGen()
	clean := dataset.Generate(r.Derive("clean"), 1500, gen)
	test := dataset.Generate(r.Derive("test"), 600, gen)
	bd := DefaultBackdoor()

	poisoned := clean.Clone()
	bd.Poison(r.Derive("poison"), poisoned)

	cfg := nn.TrainConfig{LearningRate: 0.1, BatchSize: 32, Iterations: 400}
	cleanModel := nn.New(r.Derive("m1"), dataset.Dim, 24, dataset.NumClasses)
	nn.SGD(cleanModel, clean, cfg, r.Derive("t1"))
	badModel := nn.New(r.Derive("m2"), dataset.Dim, 24, dataset.NumClasses)
	nn.SGD(badModel, poisoned, cfg, r.Derive("t2"))

	cleanRate := BackdoorSuccessRate(cleanModel, test, bd)
	badRate := BackdoorSuccessRate(badModel, test, bd)
	if badRate < 0.8 {
		t.Fatalf("backdoored model trigger rate = %v, want > 0.8", badRate)
	}
	if cleanRate > 0.5 {
		t.Fatalf("clean model trigger rate = %v, too high", cleanRate)
	}
	if badRate <= cleanRate {
		t.Fatal("backdoor had no effect")
	}
}

func TestBackdoorSuccessRateEmptyTest(t *testing.T) {
	m := nn.New(rng.New(1), dataset.Dim, 8, dataset.NumClasses)
	if r := BackdoorSuccessRate(m, &dataset.Dataset{}, DefaultBackdoor()); r != 0 {
		t.Fatalf("empty test rate = %v", r)
	}
}
