package attack

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }
