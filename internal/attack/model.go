package attack

import (
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// ModelPoison corrupts the parameter update a Byzantine node submits for
// aggregation. Implementations receive the node's honest update together
// with the honest population statistics the attacker is assumed to know
// (omniscient-attacker model, standard in the Byzantine-FL literature): the
// coordinate mean and standard deviation of the honest updates.
type ModelPoison interface {
	// Name identifies the attack in experiment reports.
	Name() string
	// Apply returns the poisoned update. honest is the node's own honest
	// update; mean/std describe the honest population (std may be nil for
	// attacks that do not use it).
	Apply(r *rng.RNG, honest, mean, std tensor.Vector) tensor.Vector
}

// SignFlip negates the update and scales it by Scale (>1 amplifies the
// damage), the "Sign Flip (SF)" row of Table I.
type SignFlip struct {
	Scale float64
}

// Name implements ModelPoison.
func (SignFlip) Name() string { return "sign-flip" }

// Apply implements ModelPoison.
func (a SignFlip) Apply(_ *rng.RNG, honest, _, _ tensor.Vector) tensor.Vector {
	s := a.Scale
	if s == 0 {
		s = 1
	}
	out := honest.Clone()
	return tensor.Scale(out, -s, out)
}

// GaussianNoise submits the honest update plus large Gaussian noise (the
// "Noise" row of Table I's model-update attacks).
type GaussianNoise struct {
	Stddev float64
}

// Name implements ModelPoison.
func (GaussianNoise) Name() string { return "gaussian-noise" }

// Apply implements ModelPoison.
func (a GaussianNoise) Apply(r *rng.RNG, honest, _, _ tensor.Vector) tensor.Vector {
	out := honest.Clone()
	for i := range out {
		out[i] += a.Stddev * r.NormFloat64()
	}
	return out
}

// ALE is the "A Little is Enough" attack (Baruch et al. 2019): Byzantine
// nodes submit mean - z*std, a perturbation small enough to hide inside the
// honest variance yet consistently biased. Z is the deviation multiplier
// (the original paper derives z from the Byzantine fraction; ~1-1.5 is
// typical).
type ALE struct {
	Z float64
}

// Name implements ModelPoison.
func (ALE) Name() string { return "a-little-is-enough" }

// Apply implements ModelPoison.
func (a ALE) Apply(_ *rng.RNG, _, mean, std tensor.Vector) tensor.Vector {
	z := a.Z
	if z == 0 {
		z = 1.0
	}
	out := mean.Clone()
	if std != nil {
		tensor.Axpy(out, -z, std)
	}
	return out
}

// IPM is the Inner Product Manipulation attack (Xie et al. 2020): Byzantine
// nodes submit -Epsilon * mean so the aggregate's inner product with the
// true mean turns negative, reversing descent while staying geometrically
// close to the honest updates for small Epsilon.
type IPM struct {
	Epsilon float64
}

// Name implements ModelPoison.
func (IPM) Name() string { return "inner-product-manipulation" }

// Apply implements ModelPoison.
func (a IPM) Apply(_ *rng.RNG, _, mean, _ tensor.Vector) tensor.Vector {
	eps := a.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	out := mean.Clone()
	return tensor.Scale(out, -eps, out)
}

// PopulationStats computes the coordinate mean and standard deviation of the
// honest updates; it is the knowledge handed to omniscient model-poisoning
// attacks. It panics on an empty population.
func PopulationStats(honest []tensor.Vector) (mean, std tensor.Vector) {
	if len(honest) == 0 {
		panic("attack: PopulationStats of empty population")
	}
	dim := len(honest[0])
	mean = tensor.Mean(tensor.NewVector(dim), honest)
	std = tensor.NewVector(dim)
	if len(honest) == 1 {
		return mean, std
	}
	for _, v := range honest {
		for i := range v {
			d := v[i] - mean[i]
			std[i] += d * d
		}
	}
	n := float64(len(honest))
	for i := range std {
		std[i] = sqrt(std[i] / n)
	}
	return mean, std
}
