package codec

import (
	"encoding/binary"
	"math"

	"abdhfl/internal/tensor"
)

// DefaultTopKFraction keeps the 10% largest-magnitude coordinates — the
// standard sparsification operating point in the FL compression literature.
const DefaultTopKFraction = 0.1

// TopK is magnitude top-k sparsification: only the k = ceil(Fraction·dim)
// largest-|x| coordinates survive, packed as (index, value) pairs; everything
// else decodes to zero. Selection reuses tensor.SelectKth (the aggregation
// kernels' quickselect) on a scratch copy of |v|, and ties at the threshold
// are broken in ascending index order, so the encoding is deterministic.
// Indices are emitted strictly increasing, which the decoder enforces as a
// corruption check.
//
// Wire format (little-endian):
//
//	[1]   tag 0x03
//	[4]   uint32 dim
//	[4]   uint32 k
//	[4k]  uint32 indices (strictly increasing)
//	[8k]  float64 values
type TopK struct {
	// Fraction of coordinates to keep, in (0, 1]; 0 selects
	// DefaultTopKFraction. At least one coordinate is always kept.
	Fraction float64
}

// Name implements Codec.
func (TopK) Name() string { return "topk" }

func (c TopK) fraction() float64 {
	if c.Fraction > 0 {
		return c.Fraction
	}
	return DefaultTopKFraction
}

// K is the number of coordinates kept for a dim-coordinate vector.
func (c TopK) K(dim int) int {
	k := int(math.Ceil(c.fraction() * float64(dim)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// WireBytes implements Codec.
func (c TopK) WireBytes(dim int) int { return 9 + 12*c.K(dim) }

// EncodeInto implements Codec.
func (c TopK) EncodeInto(dst []byte, v tensor.Vector, s *Scratch) (int, error) {
	n := c.WireBytes(len(v))
	if len(dst) < n {
		return 0, ErrShortBuffer
	}
	if !tensor.AllFinite(v) {
		return 0, ErrNonFinite
	}
	s = s.resolve()
	k := c.K(len(v))
	b := putHeader(dst, tagTopK, len(v))
	binary.LittleEndian.PutUint32(b, uint32(k))
	idxs := b[4:]
	vals := b[4+4*k:]
	if k == 0 { // dim == 0
		return n, nil
	}
	abs := s.floats(len(v))
	for i, x := range v {
		abs[i] = math.Abs(x)
	}
	// The k-th largest magnitude: everything strictly above it is kept, and
	// ties at the threshold fill the remaining slots in index order.
	thr := tensor.SelectKth(abs, len(v)-k)
	above := 0
	for _, x := range v {
		if math.Abs(x) > thr {
			above++
		}
	}
	ties := k - above
	w := 0
	for i, x := range v {
		a := math.Abs(x)
		if a > thr {
			// kept: strictly above threshold
		} else if a == thr && ties > 0 {
			ties--
		} else {
			continue
		}
		binary.LittleEndian.PutUint32(idxs[4*w:], uint32(i))
		binary.LittleEndian.PutUint64(vals[8*w:], math.Float64bits(x))
		w++
	}
	return n, nil
}

// DecodeInto implements Codec.
func (c TopK) DecodeInto(dst tensor.Vector, src []byte, s *Scratch) error {
	b, err := header(src, tagTopK, dst)
	if err != nil {
		return err
	}
	if len(b) < 4 {
		return ErrCorrupt
	}
	k := int(binary.LittleEndian.Uint32(b))
	if k != c.K(len(dst)) || len(b) != 4+12*k {
		return ErrCorrupt
	}
	idxs := b[4:]
	vals := b[4+4*k:]
	for i := range dst {
		dst[i] = 0
	}
	prev := -1
	for w := 0; w < k; w++ {
		i := int(binary.LittleEndian.Uint32(idxs[4*w:]))
		if i <= prev || i >= len(dst) {
			return ErrCorrupt
		}
		prev = i
		x := math.Float64frombits(binary.LittleEndian.Uint64(vals[8*w:]))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ErrNonFinite
		}
		dst[i] = x
	}
	return nil
}
