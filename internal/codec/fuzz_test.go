package codec

import (
	"encoding/binary"
	"math"
	"testing"

	"abdhfl/internal/tensor"
)

// The fuzz contract, mirroring internal/aggregate/fuzz_test.go: a decoder
// fed arbitrary bytes must either error or produce an entirely finite
// vector — never panic, never leak NaN/Inf into the aggregation path — and a
// finite vector must always round-trip through its own codec.

// fuzzCodecs returns the decoders under test, including parameter variants
// whose headers disagree with the defaults (chunk 7, fraction 0.5).
func fuzzCodecs() []Codec {
	return []Codec{
		Identity{},
		Int8Quant{},
		Int8Quant{Chunk: 7},
		TopK{Fraction: 0.1},
		TopK{Fraction: 0.5},
		Delta{},
		Delta{Inner: Identity{}},
		Delta{Inner: TopK{Fraction: 0.25}},
	}
}

func FuzzCodecDecode(f *testing.F) {
	le := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	nan := math.NaN()
	inf := math.Inf(1)

	// Seed with valid encodings of interesting vectors (so the fuzzer starts
	// from deep in each format and mutates outward), plus raw adversarial
	// bytes: NaN/Inf float patterns, huge magnitudes that can overflow the
	// int8 range arithmetic, empty and truncated payloads, and headers
	// declaring absurd dimensions.
	for _, c := range fuzzCodecs() {
		for _, v := range []tensor.Vector{
			{1, 2, 3, 4, 5},
			{0, 0, 0, 0},
			{1e308, -1e308, 1e-308, 0},
			{},
		} {
			buf := make([]byte, c.WireBytes(len(v)))
			if n, err := c.EncodeInto(buf, v, &Scratch{Ref: tensor.Vector{1, 1, 1, 1, 1}}); err == nil {
				f.Add(buf[:n], uint16(len(v)))
			}
		}
	}
	f.Add(le(nan, inf, -1), uint16(3))
	f.Add(le(1e308, 1e308, -1e308), uint16(3))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{tagInt8, 255, 255, 255, 255}, uint16(4)) // dim header overflow
	f.Add([]byte{tagTopK, 4, 0, 0, 0, 255, 255, 255, 255}, uint16(4))
	f.Add([]byte{tagDelta, tagDelta}, uint16(1)) // nested-delta tag

	f.Fuzz(func(t *testing.T, raw []byte, dim uint16) {
		dst := tensor.NewVector(int(dim) % 2048)
		ref := tensor.NewVector(len(dst))
		for i := range ref {
			ref[i] = float64(i%7) - 3
		}
		s := &Scratch{Ref: ref}
		for _, c := range fuzzCodecs() {
			if err := c.DecodeInto(dst, raw, s); err != nil {
				continue // malformed input must error, and did
			}
			if !tensor.AllFinite(dst) {
				t.Fatalf("%s decoded non-finite output from %d bytes into dim %d",
					c.Name(), len(raw), len(dst))
			}
			// A successful decode's output must re-encode: the decoded vector
			// is finite, so its own codec has to accept it.
			buf := make([]byte, c.WireBytes(len(dst)))
			if _, err := c.EncodeInto(buf, dst, s); err != nil && err != ErrNonFinite {
				t.Fatalf("%s: decode succeeded but re-encode failed: %v", c.Name(), err)
			}
		}
	})
}

// FuzzCodecRoundTrip drives the encode side: any finite vector must encode
// and decode back within the codec's contract, for every codec, at every
// dimension the fuzzer invents.
func FuzzCodecRoundTrip(f *testing.F) {
	le := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(le(1, 2, 3, 4))
	f.Add(le(0.5, -0.5, 1e-300, -1e-300, 0))
	f.Add(le(1e308, -1e308, 0, 42))
	f.Add(le(math.NaN(), math.Inf(1), 1))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		dim := len(raw) / 8
		v := tensor.NewVector(dim)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		finite := tensor.AllFinite(v)
		s := &Scratch{}
		for _, c := range fuzzCodecs() {
			work := v.Clone()
			_, err := Transcode(c, work, s)
			if !finite {
				if err == nil {
					t.Fatalf("%s accepted non-finite input", c.Name())
				}
				continue
			}
			if err != nil {
				// Finite input may still overflow an extreme-range residual
				// or chunk (e.g. ±1e308 in one chunk); that must surface as
				// ErrNonFinite, never silently.
				if err != ErrNonFinite {
					t.Fatalf("%s rejected finite input with %v", c.Name(), err)
				}
				continue
			}
			if !tensor.AllFinite(work) {
				t.Fatalf("%s round trip produced non-finite output", c.Name())
			}
		}
	})
}
