package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"abdhfl/internal/tensor"
)

// TestGenerateCorpus regenerates the committed seed corpus under
// testdata/fuzz/ when CODEC_GEN_CORPUS=1 is set — run it after changing a
// wire format so the checked-in seeds keep exercising the deep decode paths.
// Without the env var it only verifies that every committed seed parses and
// upholds the decode contract (error or finite, never panic).
func TestGenerateCorpus(t *testing.T) {
	type seed struct {
		name string
		raw  []byte
		dim  uint16
	}
	enc := func(c Codec, v tensor.Vector) []byte {
		buf := make([]byte, c.WireBytes(len(v)))
		n, err := c.EncodeInto(buf, v, &Scratch{Ref: tensor.Vector{1, 2, 1, 2, 1}})
		if err != nil {
			t.Fatal(err)
		}
		return buf[:n]
	}
	le := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	v5 := tensor.Vector{1, -2, 3, -4, 0.5}
	decodeSeeds := []seed{
		{"valid-identity", enc(Identity{}, v5), 5},
		{"valid-int8", enc(Int8Quant{}, v5), 5},
		{"valid-int8-chunk7", enc(Int8Quant{Chunk: 7}, tensor.NewVector(20)), 20},
		{"valid-topk", enc(TopK{Fraction: 0.5}, v5), 5},
		{"valid-delta", enc(Delta{}, v5), 5},
		{"valid-empty-vec", enc(Identity{}, tensor.Vector{}), 0},
		{"edge-nan-bits", le(math.NaN(), math.Inf(1), -1), 3},
		{"edge-overflow", enc(Int8Quant{}, tensor.Vector{1e308, -1e308, 0, 42}), 4},
		{"edge-empty", nil, 3},
		{"edge-dim-overflow", []byte{tagInt8, 0xFF, 0xFF, 0xFF, 0xFF}, 4},
		{"edge-topk-bad-index", []byte{tagTopK, 4, 0, 0, 0, 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0xF0, 0x3F}, 4},
		{"edge-nested-delta", []byte{tagDelta, tagDelta, 0}, 1},
	}
	roundTripSeeds := []seed{
		{"seed-smooth", le(0.5, -0.5, 1e-300, -1e-300, 0), 0},
		{"seed-extreme", le(1e308, -1e308, 0, 42), 0},
		{"seed-nonfinite", le(math.NaN(), math.Inf(1), 1), 0},
		{"seed-empty", nil, 0},
	}

	if os.Getenv("CODEC_GEN_CORPUS") != "" {
		write := func(dir string, s seed, withDim bool) {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.raw)
			if withDim {
				body += fmt.Sprintf("uint16(%d)\n", s.dim)
			}
			if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range decodeSeeds {
			write("testdata/fuzz/FuzzCodecDecode", s, true)
		}
		for _, s := range roundTripSeeds {
			write("testdata/fuzz/FuzzCodecRoundTrip", s, false)
		}
		return
	}

	// Verification mode: every seed must uphold the decode contract.
	for _, s := range decodeSeeds {
		dst := tensor.NewVector(int(s.dim))
		for _, c := range fuzzCodecs() {
			if err := c.DecodeInto(dst, s.raw, &Scratch{}); err == nil && !tensor.AllFinite(dst) {
				t.Fatalf("seed %s: %s decoded non-finite output", s.name, c.Name())
			}
		}
	}
}
