package codec

import (
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// The Scratch contract, mirroring internal/aggregate/alloc_test.go: with a
// warm Scratch every codec's steady-state EncodeInto, DecodeInto, and
// Transcode perform zero allocations. This is the property that lets the
// engines transcode every hop of every round without touching the allocator.

func TestCodecAllocationFree(t *testing.T) {
	const dim = 4096
	r := rng.New(1)
	v := randomVector(r, dim)
	ref := randomVector(r, dim)
	for _, c := range testCodecs(t) {
		t.Run(c.Name(), func(t *testing.T) {
			s := &Scratch{Ref: ref}
			buf := make([]byte, c.WireBytes(dim))
			dst := tensor.NewVector(dim)
			work := v.Clone()

			if _, err := c.EncodeInto(buf, v, s); err != nil { // warm up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := c.EncodeInto(buf, v, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("EncodeInto allocates %.1f objects/op with a warm Scratch, want 0", allocs)
			}

			allocs = testing.AllocsPerRun(20, func() {
				if err := c.DecodeInto(dst, buf, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("DecodeInto allocates %.1f objects/op with a warm Scratch, want 0", allocs)
			}

			if _, err := Transcode(c, work, s); err != nil { // warm the wire buffer
				t.Fatal(err)
			}
			allocs = testing.AllocsPerRun(20, func() {
				if _, err := Transcode(c, work, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("Transcode allocates %.1f objects/op with a warm Scratch, want 0", allocs)
			}
		})
	}
}
