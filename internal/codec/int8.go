package codec

import (
	"encoding/binary"
	"math"

	"abdhfl/internal/tensor"
)

// DefaultChunk is the Int8Quant chunk size, matching nn.DefaultChunkSize:
// small enough that one straggling coordinate cannot blow up a whole chunk's
// resolution, large enough that the 16-byte per-chunk range header is noise.
const DefaultChunk = 256

// Int8Quant is per-chunk scale/offset uniform quantization: each chunk of up
// to Chunk coordinates stores its value range [lo, hi] (offset lo, scale
// (hi-lo)/255), and every coordinate becomes one byte code. Encode maps x to
// round(255·(x-lo)/(hi-lo)); decode reconstructs lo·(1-t) + hi·t with
// t = code/255 — a convex combination, so finite chunk bounds can never
// overflow to Inf even at the extremes of the float64 range (the failure
// mode PR 5's aggregate fuzzing taught us to design out). Reconstruction
// error is at most half a step, and — unlike symmetric schemes — a chunk
// whose values share a sign wastes no code points. ~7.9× smaller than raw
// float64 at Chunk=256.
//
// Wire format (little-endian):
//
//	[1]   tag 0x02
//	[4]   uint32 dim
//	[4]   uint32 chunk size
//	per chunk: [8] float64 lo, [8] float64 hi
//	[d]   uint8 codes
type Int8Quant struct {
	// Chunk is the quantization block size; 0 selects DefaultChunk.
	Chunk int
}

// Name implements Codec.
func (Int8Quant) Name() string { return "int8" }

func (c Int8Quant) chunk() int {
	if c.Chunk > 0 {
		return c.Chunk
	}
	return DefaultChunk
}

func numChunks(dim, chunk int) int { return (dim + chunk - 1) / chunk }

// WireBytes implements Codec.
func (c Int8Quant) WireBytes(dim int) int {
	return 9 + 16*numChunks(dim, c.chunk()) + dim
}

// EncodeInto implements Codec.
func (c Int8Quant) EncodeInto(dst []byte, v tensor.Vector, s *Scratch) (int, error) {
	n := c.WireBytes(len(v))
	if len(dst) < n {
		return 0, ErrShortBuffer
	}
	if !tensor.AllFinite(v) {
		return 0, ErrNonFinite
	}
	chunk := c.chunk()
	b := putHeader(dst, tagInt8, len(v))
	binary.LittleEndian.PutUint32(b, uint32(chunk))
	head := b[4:]                              // per-chunk [lo, hi] table
	codes := b[4+16*numChunks(len(v), chunk):] // one byte per coordinate
	for start := 0; start < len(v); start += chunk {
		end := start + chunk
		if end > len(v) {
			end = len(v)
		}
		lo, hi := v[start], v[start]
		for _, x := range v[start+1 : end] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		binary.LittleEndian.PutUint64(head, math.Float64bits(lo))
		binary.LittleEndian.PutUint64(head[8:], math.Float64bits(hi))
		head = head[16:]
		// step = (hi-lo)/255 computed without forming hi-lo, which can
		// overflow for finite bounds of opposite sign near ±MaxFloat64.
		step := hi/255 - lo/255
		if step == 0 {
			for i := start; i < end; i++ {
				codes[i] = 0
			}
			continue
		}
		for i := start; i < end; i++ {
			// t is the coordinate's position in [lo, hi] normalized to [0, 1],
			// again without ever forming x-lo.
			t := (v[i]/255 - lo/255) / step
			q := math.Round(255 * t)
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			codes[i] = byte(q)
		}
	}
	return n, nil
}

// DecodeInto implements Codec.
func (c Int8Quant) DecodeInto(dst tensor.Vector, src []byte, s *Scratch) error {
	b, err := header(src, tagInt8, dst)
	if err != nil {
		return err
	}
	if len(b) < 4 {
		return ErrCorrupt
	}
	chunk := int(binary.LittleEndian.Uint32(b))
	if chunk <= 0 {
		return ErrCorrupt
	}
	nc := numChunks(len(dst), chunk)
	if len(b) != 4+16*nc+len(dst) {
		return ErrCorrupt
	}
	head := b[4:]
	codes := b[4+16*nc:]
	for start := 0; start < len(dst); start += chunk {
		end := start + chunk
		if end > len(dst) {
			end = len(dst)
		}
		lo := math.Float64frombits(binary.LittleEndian.Uint64(head))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(head[8:]))
		head = head[16:]
		// Finite bounds plus the overflow clamp below imply a finite result,
		// so checking the chunk header enforces the postcondition for every
		// coordinate without a per-value validity branch.
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return ErrNonFinite
		}
		for i := start; i < end; i++ {
			t := float64(codes[i]) / 255
			x := lo*(1-t) + hi*t
			// The exact combination lies between lo and hi; only product
			// rounding at the very top of the float64 range can push the
			// sum over — clamp back to the nearer finite bound.
			if math.IsInf(x, 1) {
				x = math.Max(lo, hi)
			} else if math.IsInf(x, -1) {
				x = math.Min(lo, hi)
			}
			dst[i] = x
		}
	}
	return nil
}
