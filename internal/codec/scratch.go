package codec

import "abdhfl/internal/tensor"

// Scratch holds the reusable working memory of the codecs — the codec
// analogue of aggregate.Scratch. Buffers grow on demand and are kept across
// calls, so steady-state EncodeInto/DecodeInto/Transcode allocate nothing.
//
// A Scratch is owned by a single goroutine: concurrent codec calls must use
// separate Scratch values (the realtime engine keeps one per goroutine). The
// zero value is ready to use.
type Scratch struct {
	// Ref is the Delta codec's reference model: the vector both ends of the
	// link already share (the current flag/global model). Engines set it
	// before each hop; nil means "delta against zero", i.e. the raw vector.
	// Ref must not alias the vector being encoded or decoded, and is never
	// written by the codecs.
	Ref tensor.Vector

	buf  []byte        // Transcode's wire buffer
	abs  []float64     // TopK's |v| work copy (mutated by quickselect)
	diff tensor.Vector // Delta's v-Ref temporary
}

// NewScratch returns a fresh Scratch. Equivalent to &Scratch{}; provided for
// symmetry with aggregate.NewScratch.
func NewScratch() *Scratch { return &Scratch{} }

// resolve returns a usable Scratch: a nil receiver gets a fresh single-call
// scratch, mirroring aggregate.Scratch.resolve.
func (s *Scratch) resolve() *Scratch {
	if s == nil {
		return &Scratch{}
	}
	return s
}

// Buffer returns an n-byte scratch buffer, reused across calls.
func (s *Scratch) Buffer(n int) []byte {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	return s.buf
}

// floats returns an n-length float64 scratch slice.
func (s *Scratch) floats(n int) []float64 {
	if cap(s.abs) < n {
		s.abs = make([]float64, n)
	}
	s.abs = s.abs[:n]
	return s.abs
}

// vector returns a dim-length temporary vector.
func (s *Scratch) vector(dim int) tensor.Vector {
	if cap(s.diff) < dim {
		s.diff = tensor.NewVector(dim)
	}
	s.diff = s.diff[:dim]
	return s.diff
}
