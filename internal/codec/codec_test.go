package codec

import (
	"math"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// testCodecs is every registered codec plus the parameter variants the
// property tests should cover.
func testCodecs(t testing.TB) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return append(cs,
		Int8Quant{Chunk: 7},
		TopK{Fraction: 0.5},
		TopK{Fraction: 1},
		Delta{Inner: Identity{}},
		Delta{Inner: TopK{Fraction: 0.25}},
	)
}

func randomVector(r *rng.RNG, dim int) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = r.NormFloat64() * 3
	}
	return v
}

// TestRoundTrip is the core property test: for every codec and a spread of
// dimensions, encode→decode succeeds, fills exactly WireBytes, stays finite,
// and reconstructs within the codec's error bound. Identity and TopK must
// reproduce their surviving coordinates bit-exactly.
func TestRoundTrip(t *testing.T) {
	r := rng.New(11)
	for _, c := range testCodecs(t) {
		for _, dim := range []int{0, 1, 2, 7, 255, 256, 257, 1000} {
			v := randomVector(r.Derive(c.Name()), dim)
			ref := randomVector(r.Derive("ref"), dim)
			s := &Scratch{Ref: ref}
			buf := make([]byte, c.WireBytes(dim))
			n, err := c.EncodeInto(buf, v, s)
			if err != nil {
				t.Fatalf("%s dim %d: encode: %v", c.Name(), dim, err)
			}
			if n != c.WireBytes(dim) {
				t.Fatalf("%s dim %d: encoded %d bytes, WireBytes says %d", c.Name(), dim, n, c.WireBytes(dim))
			}
			got := tensor.NewVector(dim)
			if err := c.DecodeInto(got, buf[:n], s); err != nil {
				t.Fatalf("%s dim %d: decode: %v", c.Name(), dim, err)
			}
			if !tensor.AllFinite(got) {
				t.Fatalf("%s dim %d: non-finite reconstruction", c.Name(), dim)
			}
			checkReconstruction(t, c, v, got, ref)
		}
	}
}

// checkReconstruction asserts the per-codec error bound.
func checkReconstruction(t *testing.T, c Codec, want, got, ref tensor.Vector) {
	t.Helper()
	switch c.(type) {
	case Identity:
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("identity not bit-exact at %d: %v vs %v", i, want[i], got[i])
			}
		}
	case Int8Quant:
		// Error is bounded by one quantization step of the coordinate's chunk,
		// which is itself bounded by range/255 of the whole vector.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range want {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		bound := (hi - lo) / 255
		for i := range want {
			if math.Abs(want[i]-got[i]) > bound+1e-12 {
				t.Fatalf("%s error %v at %d exceeds step bound %v", c.Name(), want[i]-got[i], i, bound)
			}
		}
	case TopK:
		// Survivors are bit-exact, the rest are zero, and no surviving
		// magnitude may be below a zeroed one.
		minKept, maxZeroed := math.Inf(1), 0.0
		for i := range want {
			if got[i] != 0 {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("topk survivor not bit-exact at %d", i)
				}
				minKept = math.Min(minKept, math.Abs(want[i]))
			} else if want[i] != 0 {
				maxZeroed = math.Max(maxZeroed, math.Abs(want[i]))
			}
		}
		if minKept < maxZeroed {
			t.Fatalf("topk kept |%v| but zeroed |%v|", minKept, maxZeroed)
		}
	case Delta:
		// The residual v-ref passes through the inner codec, so the error is
		// bounded by the largest residual magnitude (a TopK inner zeroes the
		// small residuals entirely) plus the inner quantization step.
		bound := 0.0
		for i := range want {
			bound = math.Max(bound, math.Abs(want[i]-ref[i]))
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > bound+1e-9 {
				t.Fatalf("%s error %v at %d exceeds residual bound %v", c.Name(), want[i]-got[i], i, bound)
			}
		}
	}
}

// TestTranscodeDeterministic pins determinism: transcoding the same vector
// with fresh scratches yields identical bytes and identical reconstructions,
// regardless of scratch history.
func TestTranscodeDeterministic(t *testing.T) {
	r := rng.New(5)
	for _, c := range testCodecs(t) {
		v := randomVector(r.Derive(c.Name()), 301)
		ref := randomVector(r.Derive("ref"), 301)

		a := v.Clone()
		sa := &Scratch{Ref: ref}
		// Warm sa with an unrelated transcode so buffer history differs.
		warm := randomVector(r.Derive("warm"), 64)
		if _, err := Transcode(c, warm, &Scratch{}); err != nil {
			t.Fatal(err)
		}
		na, err := Transcode(c, a, sa)
		if err != nil {
			t.Fatal(err)
		}
		b := v.Clone()
		nb, err := Transcode(c, b, &Scratch{Ref: ref})
		if err != nil {
			t.Fatal(err)
		}
		if na != nb {
			t.Fatalf("%s: wire sizes differ: %d vs %d", c.Name(), na, nb)
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: reconstructions differ at %d", c.Name(), i)
			}
		}
	}
}

// TestTopKTieBreaking pins the deterministic index-order tie break: with all
// magnitudes equal, the lowest indices survive.
func TestTopKTieBreaking(t *testing.T) {
	c := TopK{Fraction: 0.5}
	v := tensor.Vector{2, -2, 2, -2, 2, -2}
	s := &Scratch{}
	if _, err := Transcode(c, v, s); err != nil {
		t.Fatal(err)
	}
	want := tensor.Vector{2, -2, 2, 0, 0, 0}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("tie break kept %v, want %v", v, want)
		}
	}
}

// TestDeltaUsesReference pins that Delta actually encodes the residual: with
// a reference equal to the vector, the int8 inner codec sees an all-zero
// residual and reconstructs exactly, while a zero reference quantizes the
// raw values.
func TestDeltaUsesReference(t *testing.T) {
	r := rng.New(3)
	v := randomVector(r, 500)
	c := Delta{}

	exact := v.Clone()
	if _, err := Transcode(c, exact, &Scratch{Ref: v.Clone()}); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if exact[i] != v[i] {
			t.Fatalf("zero residual not reconstructed exactly at %d: %v vs %v", i, exact[i], v[i])
		}
	}

	// With no reference the inner quantizer must still round-trip within its
	// step bound, and a deliberately mismatched Ref length must behave the
	// same as nil.
	raw := v.Clone()
	if _, err := Transcode(c, raw, &Scratch{Ref: tensor.NewVector(3)}); err != nil {
		t.Fatal(err)
	}
	rawNil := v.Clone()
	if _, err := Transcode(c, rawNil, &Scratch{}); err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if raw[i] != rawNil[i] {
			t.Fatal("mismatched Ref length must decode like nil Ref")
		}
	}
}

// TestEncodeRejectsNonFinite: every codec refuses NaN/Inf input.
func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, c := range testCodecs(t) {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			v := tensor.Vector{1, bad, 3}
			buf := make([]byte, c.WireBytes(len(v)))
			if _, err := c.EncodeInto(buf, v, nil); err == nil {
				t.Fatalf("%s accepted %v", c.Name(), bad)
			}
		}
	}
}

// TestDecodeErrors covers the malformed-payload contract shared by all
// codecs: short buffers, wrong tags, and dimension mismatches error cleanly.
func TestDecodeErrors(t *testing.T) {
	r := rng.New(9)
	for _, c := range testCodecs(t) {
		v := randomVector(r, 32)
		buf := make([]byte, c.WireBytes(len(v)))
		n, err := c.EncodeInto(buf, v, &Scratch{})
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.NewVector(len(v))
		if err := c.DecodeInto(dst, buf[:n-1], nil); err == nil {
			t.Fatalf("%s accepted truncated payload", c.Name())
		}
		if err := c.DecodeInto(dst, nil, nil); err == nil {
			t.Fatalf("%s accepted empty payload", c.Name())
		}
		flipped := append([]byte(nil), buf[:n]...)
		flipped[0] ^= 0xFF
		if err := c.DecodeInto(dst, flipped, nil); err == nil {
			t.Fatalf("%s accepted wrong tag", c.Name())
		}
		if err := c.DecodeInto(tensor.NewVector(len(v)+1), buf[:n], nil); err == nil {
			t.Fatalf("%s accepted dimension mismatch", c.Name())
		}
	}
	if _, err := (Identity{}).EncodeInto(make([]byte, 3), tensor.Vector{1}, nil); err != ErrShortBuffer {
		t.Fatalf("short dst: got %v, want ErrShortBuffer", err)
	}
}

// TestByName pins the registry round trip and the unknown-name error.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name && name != "delta" { // Delta reports its inner pairing
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("unknown codec name must error")
	}
}

// TestNestedDeltaRejected: Delta{Inner: Delta{}} would fight over the shared
// scratch, so both directions must refuse it.
func TestNestedDeltaRejected(t *testing.T) {
	c := Delta{Inner: Delta{}}
	v := tensor.Vector{1, 2, 3}
	if _, err := c.EncodeInto(make([]byte, c.WireBytes(3)), v, nil); err == nil {
		t.Fatal("nested Delta encode must error")
	}
	if err := c.DecodeInto(v, []byte{tagDelta, tagDelta, 0}, nil); err == nil {
		t.Fatal("nested Delta decode must error")
	}
}
