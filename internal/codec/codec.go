// Package codec implements pluggable, allocation-free model-update codecs
// for the device→leader→root path. Every transfer in the hierarchy can pass
// its vector through an encode→decode hop, so the engines simulate both the
// wire size (bandwidth-aware simnet delays, CommStats.WireBytes) and the
// information loss (quantization shifts coordinate medians, sparsification
// breaks Krum's distance geometry) of compressed federated updates.
//
// Codecs follow the aggregate.Scratch discipline: the caller owns a Scratch
// of grow-on-demand buffers, one per goroutine, and steady-state
// EncodeInto/DecodeInto allocate nothing. The wire format of each codec is
// documented on its type and summarized in DESIGN.md §11.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"abdhfl/internal/tensor"
)

// Wire-format kind tags: the first byte of every encoding. Decoders reject
// payloads whose tag does not match (ErrCorrupt), which is what lets the
// fuzz harness feed arbitrary bytes without a codec misreading a sibling's
// format as its own.
const (
	tagIdentity = 0x01
	tagInt8     = 0x02
	tagTopK     = 0x03
	tagDelta    = 0x04
)

var (
	// ErrNonFinite is returned when an encoder is handed a NaN/Inf vector, or
	// when a decoder would reconstruct one. The postcondition mirrors
	// aggregate.ErrNonFinite: a nil-error decode implies tensor.AllFinite on
	// the output, so corrupt or adversarial bytes can never leak non-finite
	// coordinates into the aggregation path.
	ErrNonFinite = errors.New("codec: non-finite value")
	// ErrCorrupt is returned when an encoded payload is malformed: wrong tag,
	// truncated header, out-of-range index, or a length that disagrees with
	// the header.
	ErrCorrupt = errors.New("codec: corrupt payload")
	// ErrShortBuffer is returned by EncodeInto when dst is smaller than
	// WireBytes(len(v)).
	ErrShortBuffer = errors.New("codec: destination buffer too small")
	// ErrDimMismatch is returned by DecodeInto when the payload's dimension
	// header disagrees with len(dst).
	ErrDimMismatch = errors.New("codec: dimension mismatch")
)

// Codec encodes a model-update vector into bytes and back. Implementations
// are stateless values — all working memory lives in the caller's Scratch —
// and deterministic: the same vector always encodes to the same bytes.
type Codec interface {
	// Name is the registry name used in tables and flags.
	Name() string
	// WireBytes is the exact encoded size in bytes of a dim-coordinate
	// vector. Every codec in this package is fixed-size for a given dim, so
	// engines can account wire volume without encoding.
	WireBytes(dim int) int
	// EncodeInto writes the encoding of v into dst and returns the number of
	// bytes written (== WireBytes(len(v))). dst must have at least that
	// capacity; v must be finite.
	EncodeInto(dst []byte, v tensor.Vector, s *Scratch) (int, error)
	// DecodeInto reconstructs a vector from src into dst, whose length must
	// equal the encoded dimension. On success the output is finite.
	DecodeInto(dst tensor.Vector, src []byte, s *Scratch) error
}

// ByName returns the codec registered under name, mirroring
// aggregate.ByName. Recognized names: identity, int8, topk, delta — plus
// "delta-<inner>" compositions ("delta-topk", "delta-int8", …) that
// delta-code against the reference before applying the inner codec, the
// form in which sparsification is actually deployed (top-k of a residual,
// not of raw weights).
func ByName(name string) (Codec, error) {
	switch name {
	case "identity":
		return Identity{}, nil
	case "int8":
		return Int8Quant{}, nil
	case "topk":
		return TopK{Fraction: DefaultTopKFraction}, nil
	case "delta":
		return Delta{}, nil
	}
	if inner, ok := strings.CutPrefix(name, "delta-"); ok && !strings.HasPrefix(inner, "delta") {
		c, err := ByName(inner)
		if err != nil {
			return nil, fmt.Errorf("unknown codec %q: %w", name, err)
		}
		return Delta{Inner: c}, nil
	}
	return nil, fmt.Errorf("unknown codec %q (have %v)", name, Names())
}

// Names lists the registered codec names in table order.
func Names() []string { return []string{"identity", "int8", "topk", "delta"} }

// Transcode passes v through one encode→decode hop in place — the lossy
// channel every transfer in the hierarchy applies — and returns the wire
// size in bytes. The scratch owns the intermediate byte buffer, so the
// steady state allocates nothing.
func Transcode(c Codec, v tensor.Vector, s *Scratch) (int, error) {
	s = s.resolve()
	buf := s.Buffer(c.WireBytes(len(v)))
	n, err := c.EncodeInto(buf, v, s)
	if err != nil {
		return 0, err
	}
	if err := c.DecodeInto(v, buf[:n], s); err != nil {
		return 0, err
	}
	return n, nil
}

// header reads the common tag+dim prefix shared by every codec's wire
// format, validating the tag and the declared dimension against dst.
func header(src []byte, tag byte, dst tensor.Vector) ([]byte, error) {
	if len(src) < 5 || src[0] != tag {
		return nil, ErrCorrupt
	}
	if dim := binary.LittleEndian.Uint32(src[1:5]); int(dim) != len(dst) {
		return nil, ErrDimMismatch
	}
	return src[5:], nil
}

// putHeader writes the tag+dim prefix and returns the remaining buffer.
func putHeader(dst []byte, tag byte, dim int) []byte {
	dst[0] = tag
	binary.LittleEndian.PutUint32(dst[1:5], uint32(dim))
	return dst[5:]
}
