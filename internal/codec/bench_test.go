package codec

import (
	"fmt"
	"testing"

	"abdhfl/internal/rng"
)

// BenchmarkCodecThroughput measures steady-state encode+decode bandwidth for
// every registered codec at a realistic model size (the paper's MLP is
// ~25k parameters; we round up to 32k). SetBytes counts the raw float64
// payload, so the MB/s column is directly comparable across codecs, and the
// compression ratio is reported as a custom metric for abdhfl-bench's Extra
// capture (BENCH_5.json).
func BenchmarkCodecThroughput(b *testing.B) {
	const dim = 32768
	r := rng.New(1)
	v := randomVector(r, dim)
	ref := randomVector(r, dim)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			s := &Scratch{Ref: ref}
			buf := make([]byte, c.WireBytes(dim))
			dst := v.Clone()
			if _, err := c.EncodeInto(buf, v, s); err != nil { // warm up
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * dim))
			b.ReportMetric(float64(8*dim)/float64(c.WireBytes(dim)), "x-compression")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := c.EncodeInto(buf, v, s)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.DecodeInto(dst, buf[:n], s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecWireBytes prints the per-codec wire size at a few model
// dimensions — a cheap reference table, not a hot path.
func BenchmarkCodecWireBytes(b *testing.B) {
	for _, dim := range []int{1024, 32768} {
		for _, name := range Names() {
			c, _ := ByName(name)
			b.Run(fmt.Sprintf("%s/dim%d", name, dim), func(b *testing.B) {
				var n int
				for i := 0; i < b.N; i++ {
					n = c.WireBytes(dim)
				}
				b.ReportMetric(float64(n), "wire-bytes")
			})
		}
	}
}
