package codec

import (
	"abdhfl/internal/tensor"
)

// Delta encodes the difference between the vector and a reference model both
// ends of the link already share — the current flag/global model, supplied
// via Scratch.Ref — then hands the (small, centered) residual to an inner
// codec. Residuals concentrate near zero, so quantizing the delta loses far
// less than quantizing raw parameters. A nil or dimension-mismatched Ref
// falls back to a zero reference, i.e. the inner codec on the raw vector.
//
// Wire format: [1] tag 0x04, then the inner codec's encoding of v-Ref. Note
// the reference itself is never shipped — decode adds Scratch.Ref back, so
// both sides must agree on it (the engines use the model the receiver is
// already holding).
type Delta struct {
	// Inner compresses the residual; nil selects Int8Quant{} — the pairing
	// the codec matrix studies, since a lossless inner codec would make
	// Delta pure overhead.
	Inner Codec
}

// Name implements Codec.
func (c Delta) Name() string { return "delta-" + c.inner().Name() }

func (c Delta) inner() Codec {
	if c.Inner != nil {
		return c.Inner
	}
	return Int8Quant{}
}

// WireBytes implements Codec.
func (c Delta) WireBytes(dim int) int { return 1 + c.inner().WireBytes(dim) }

// ref returns the scratch reference if it matches dim, else nil (zero ref).
func ref(s *Scratch, dim int) tensor.Vector {
	if len(s.Ref) == dim {
		return s.Ref
	}
	return nil
}

// EncodeInto implements Codec.
func (c Delta) EncodeInto(dst []byte, v tensor.Vector, s *Scratch) (int, error) {
	if len(dst) < c.WireBytes(len(v)) {
		return 0, ErrShortBuffer
	}
	if _, nested := c.inner().(Delta); nested {
		return 0, ErrCorrupt // nested Delta would fight over Scratch.diff and Ref
	}
	s = s.resolve()
	body := v
	if r := ref(s, len(v)); r != nil {
		body = tensor.Sub(s.vector(len(v)), v, r)
	}
	dst[0] = tagDelta
	n, err := c.inner().EncodeInto(dst[1:], body, s)
	if err != nil {
		return 0, err
	}
	return 1 + n, nil
}

// DecodeInto implements Codec.
func (c Delta) DecodeInto(dst tensor.Vector, src []byte, s *Scratch) error {
	if len(src) < 1 || src[0] != tagDelta {
		return ErrCorrupt
	}
	if _, nested := c.inner().(Delta); nested {
		return ErrCorrupt
	}
	s = s.resolve()
	if err := c.inner().DecodeInto(dst, src[1:], s); err != nil {
		return err
	}
	if r := ref(s, len(dst)); r != nil {
		tensor.Add(dst, dst, r)
		// A finite residual plus a large-magnitude reference can still
		// overflow, so re-check the postcondition after adding Ref back.
		if !tensor.AllFinite(dst) {
			return ErrNonFinite
		}
	}
	return nil
}
