package codec

import (
	"encoding/binary"
	"math"

	"abdhfl/internal/tensor"
)

// Identity ships the raw float64 coordinates. Its encode→decode round trip
// is bitwise exact (math.Float64bits both ways), so an engine run with the
// Identity codec reproduces the uncompressed run bit for bit — the golden
// baseline every lossy codec is measured against.
//
// Wire format (little-endian):
//
//	[1]  tag 0x01
//	[4]  uint32 dim
//	[8d] float64 coordinates
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// WireBytes implements Codec.
func (Identity) WireBytes(dim int) int { return 5 + 8*dim }

// EncodeInto implements Codec.
func (c Identity) EncodeInto(dst []byte, v tensor.Vector, s *Scratch) (int, error) {
	n := c.WireBytes(len(v))
	if len(dst) < n {
		return 0, ErrShortBuffer
	}
	if !tensor.AllFinite(v) {
		return 0, ErrNonFinite
	}
	b := putHeader(dst, tagIdentity, len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return n, nil
}

// DecodeInto implements Codec.
func (c Identity) DecodeInto(dst tensor.Vector, src []byte, s *Scratch) error {
	if len(src) != c.WireBytes(len(dst)) {
		return ErrCorrupt
	}
	b, err := header(src, tagIdentity, dst)
	if err != nil {
		return err
	}
	for i := range dst {
		x := math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ErrNonFinite
		}
		dst[i] = x
	}
	return nil
}
