package experiments

import (
	"strings"

	"abdhfl"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/trace"
)

// TraceOptions parameterises the critical-path analysis run: one
// deterministic pipeline-engine execution with the span tracer attached,
// walked into per-round critical paths. Everything derives from the seed, so
// the rendered report — and the exported span streams — are byte-identical
// across reruns, worker counts, and tracer shard counts.
type TraceOptions struct {
	Levels      int     // 0 -> 3
	ClusterSize int     // 0 -> 4
	TopNodes    int     // 0 -> 4
	Rounds      int     // 0 -> 10
	Samples     int     // 0 -> 80
	Seed        uint64  // 0 -> 1
	FlagLevel   int     // 0 -> 1
	Quorum      float64 // 0 -> 0.75
	// Malicious is the Type I poisoning fraction; zero selects 0.25 so the
	// kept/filtered span counts have something to show (negative for clean).
	Malicious float64
	// Workers bounds the engine's parallel hot paths; the traced output is
	// identical for every value.
	Workers int
	// Shards is the tracer's shard count (contention knob, never output);
	// zero selects 8. Cap bounds retained spans; zero selects the tracer
	// default.
	Shards int
	Cap    int
}

func (o *TraceOptions) defaults() {
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 4
	}
	if o.TopNodes == 0 {
		o.TopNodes = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 10
	}
	if o.Samples == 0 {
		o.Samples = 80
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FlagLevel == 0 {
		o.FlagLevel = 1
	}
	if o.Quorum == 0 {
		o.Quorum = 0.75
	}
	if o.Malicious == 0 {
		o.Malicious = 0.25
	}
	if o.Malicious < 0 {
		o.Malicious = 0
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
}

// TraceReport bundles one traced run's outputs: the tracer (for the JSONL
// and Chrome exporters), the walked critical paths, and the run's summary
// facts.
type TraceReport struct {
	Tracer *trace.Tracer
	Paths  []trace.RoundPath
	// Spans and Dropped are the tracer's retained/overflowed counts.
	Spans, Dropped int
	// CompletedRounds and FinalAccuracy summarise the underlying run.
	CompletedRounds int
	FinalAccuracy   float64
}

// RunTracePaths executes one traced pipeline run and walks its span DAG into
// per-round critical paths.
func RunTracePaths(o TraceOptions) (*TraceReport, error) {
	o.defaults()
	mats, err := abdhfl.Build(abdhfl.Scenario{
		Levels:            o.Levels,
		ClusterSize:       o.ClusterSize,
		TopNodes:          o.TopNodes,
		Rounds:            o.Rounds,
		SamplesPerClient:  o.Samples,
		TestSamples:       600,
		ValidationSamples: 400,
		Attack:            abdhfl.AttackType1,
		MaliciousFraction: o.Malicious,
		Placement:         abdhfl.PlaceRandom,
		Seed:              o.Seed,
		EvalEvery:         1,
		Workers:           o.Workers,
	})
	if err != nil {
		return nil, err
	}
	tr := trace.NewTracer(o.Shards, o.Cap)
	mats.Trace = tr
	cfg, err := mats.PipelineConfig(o.Seed, o.FlagLevel, pipeline.DefaultTiming())
	if err != nil {
		return nil, err
	}
	cfg.Quorum = o.Quorum
	res, err := pipeline.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &TraceReport{
		Tracer:          tr,
		Paths:           trace.CriticalPaths(tr.Spans()),
		Spans:           tr.Len(),
		Dropped:         tr.Dropped(),
		CompletedRounds: res.CompletedRounds,
		FinalAccuracy:   res.FinalAccuracy,
	}, nil
}

// Render formats the committed results_trace_paths.txt report.
func (r *TraceReport) Render() string {
	var b strings.Builder
	trace.RenderPaths(&b, r.Paths)
	return b.String()
}
