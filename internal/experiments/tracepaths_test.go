package experiments

import (
	"strings"
	"testing"
)

// TestRunTracePathsDeterministic pins the committed artifact's contract:
// the rendered report and the exported span stream are byte-identical
// across reruns, worker counts, and tracer shard counts.
func TestRunTracePathsDeterministic(t *testing.T) {
	run := func(workers, shards int) (string, string) {
		rep, err := RunTracePaths(TraceOptions{
			Levels:      3,
			ClusterSize: 2,
			TopNodes:    2,
			Rounds:      4,
			Samples:     40,
			Workers:     workers,
			Shards:      shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Spans == 0 || len(rep.Paths) == 0 {
			t.Fatalf("degenerate report: %d spans, %d paths", rep.Spans, len(rep.Paths))
		}
		var j strings.Builder
		if err := rep.Tracer.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		return rep.Render(), j.String()
	}
	wantRender, wantJSONL := run(1, 1)
	for _, cell := range []struct{ workers, shards int }{{1, 1}, {4, 8}, {3, 64}} {
		render, jsonl := run(cell.workers, cell.shards)
		if render != wantRender {
			t.Fatalf("workers=%d shards=%d changed the rendered report", cell.workers, cell.shards)
		}
		if jsonl != wantJSONL {
			t.Fatalf("workers=%d shards=%d changed the span stream", cell.workers, cell.shards)
		}
	}
	if !strings.Contains(wantRender, "slowest_link") {
		t.Fatalf("report missing header:\n%s", wantRender)
	}
}
