package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

// SchemesOptions parameterises the Table III/IV scheme comparison.
type SchemesOptions struct {
	Rounds     int     // 0 -> 25
	Samples    int     // 0 -> 120
	Malicious  float64 // 0 -> 0.40
	Dist       string  // "" -> iid
	Aggregator string  // "" -> multi-krum
	Protocol   string  // "" -> voting
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *SchemesOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 25
	}
	if o.Samples == 0 {
		o.Samples = 120
	}
	if o.Malicious == 0 {
		o.Malicious = 0.40
	}
	if o.Dist == "" {
		o.Dist = "iid"
	}
	if o.Aggregator == "" {
		o.Aggregator = "multi-krum"
	}
	if o.Protocol == "" {
		o.Protocol = "voting"
	}
}

// SchemeResult is one scheme's measured robustness and cost.
type SchemeResult struct {
	Scheme          int
	Partial, Global string // "BRA" / "CBA"
	Accuracy        float64
	ModelTransfers  int
	ScalarMessages  int
}

// RunSchemes measures all four Table III schemes on the same workload.
func RunSchemes(o SchemesOptions) ([]SchemeResult, error) {
	o.defaults()
	kinds := map[int][2]string{
		1: {"BRA", "CBA"}, 2: {"CBA", "BRA"}, 3: {"BRA", "BRA"}, 4: {"CBA", "CBA"},
	}
	var out []SchemeResult
	for scheme := 1; scheme <= 4; scheme++ {
		s := abdhfl.Scenario{
			Distribution:      abdhfl.Distribution(o.Dist),
			Attack:            abdhfl.AttackType1,
			MaliciousFraction: o.Malicious,
			Rounds:            o.Rounds,
			SamplesPerClient:  o.Samples,
			Aggregator:        o.Aggregator,
			TopProtocol:       o.Protocol,
			Scheme:            scheme,
			EvalEvery:         o.Rounds,
		}.WithDefaults()
		m, err := abdhfl.Build(s)
		if err != nil {
			return nil, err
		}
		m.Telemetry = o.Telemetry
		res, err := m.RunHFL(1)
		if err != nil {
			return nil, err
		}
		out = append(out, SchemeResult{
			Scheme:         scheme,
			Partial:        kinds[scheme][0],
			Global:         kinds[scheme][1],
			Accuracy:       res.FinalAccuracy,
			ModelTransfers: res.Comm.ModelTransfers,
			ScalarMessages: res.Comm.ScalarMessages,
		})
	}
	return out, nil
}

// SchemesTable renders the scheme comparison.
func SchemesTable(results []SchemeResult) metrics.Table {
	t := metrics.Table{Header: []string{
		"scheme", "partial", "global", "accuracy", "model transfers", "scalar msgs",
	}}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("scheme %d", r.Scheme),
			r.Partial, r.Global,
			metrics.Pct(r.Accuracy),
			fmt.Sprint(r.ModelTransfers),
			fmt.Sprint(r.ScalarMessages),
		)
	}
	return t
}
