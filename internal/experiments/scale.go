package experiments

import (
	"fmt"
	"math"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/metrics"
	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
)

// ScaleOptions parameterises RunScale: a million-device-class discrete-event
// simulation of one ABD-HFL deployment. Devices are synthetic — an idle
// device exists only as an id plus derived randomness; a model vector is
// materialized from a pool solely for the rounds a device is sampled into
// its cluster's cohort — so the simulated population can exceed the
// process's memory budget for real models by orders of magnitude. The run
// exercises the real machinery everywhere it matters: the sharded simnet
// queue carries every upload and dissemination, cluster aggregation calls
// the real robust rules with filter auditing, and timing is accounted with
// the paper's σ quantities as streaming aggregates.
type ScaleOptions struct {
	Depth   int     // tree levels (>= 2); 0 -> 3
	Fanout  int     // ECSM cluster size m; 0 -> 8
	Devices int     // minimum device count (top width derived); 0 -> 100_000
	Gamma   float64 // Byzantine device fraction in [0, 1)
	Cohort  int     // trainers sampled per bottom cluster per round; 0 -> 4
	Rounds  int     // global rounds; 0 -> 5
	Dim     int     // synthetic update dimension; 0 -> 16
	Rule    string  // aggregate.ByName rule for every level; "" -> "median"
	Shards  int     // simnet event-queue shards; 0 -> 8
	Workers int     // simnet queue fold workers; 0 -> 4
	Seed    uint64
	// Eager pre-materializes one update buffer per device — the reference
	// mode the lazy-state equality test compares against. Results are
	// bit-identical to the lazy default; only BuffersAllocated changes.
	Eager bool
	// Telemetry, if non-nil, receives queue and σ gauges after the run.
	Telemetry *telemetry.Registry
}

func (o *ScaleOptions) defaults() {
	if o.Depth == 0 {
		o.Depth = 3
	}
	if o.Fanout == 0 {
		o.Fanout = 8
	}
	if o.Devices == 0 {
		o.Devices = 100_000
	}
	if o.Cohort == 0 {
		o.Cohort = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if o.Dim == 0 {
		o.Dim = 16
	}
	if o.Rule == "" {
		o.Rule = "median"
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
}

// ScaleResult is the outcome of one scale simulation. Every field except
// Elapsed/DevicesPerSec is a pure function of the options — byte-identical
// across reruns and shard counts — so result tables stay diffable.
type ScaleResult struct {
	Options  ScaleOptions
	Devices  int // devices actually built (>= Options.Devices)
	Clusters int // total clusters across all levels
	// RelErr is ‖global − g‖/‖g‖ of the final round's global model against
	// the synthetic ground-truth gradient — the scalar the γ sweep watches:
	// robust rules hold it near the honest noise floor until the tolerance
	// bound is crossed.
	RelErr float64
	// Levels[l] scores level l's filter decisions against ground truth
	// (bottom: the device is Byzantine; upper: a strict majority of the
	// child subtree's sampled leaves was).
	Levels []LevelScore
	// Activations counts device-train events; BuffersAllocated counts
	// update vectors materialized (≈ peak concurrent cohort when lazy,
	// exactly Devices when Eager).
	Activations      int
	BuffersAllocated int
	Events           int // simnet events processed
	Net              simnet.Stats
	// SigmaW/SigmaP/SigmaG summarize the paper's pipeline timing quantities
	// as streaming aggregates: intra-cluster collection spread, partial
	// ascent latency, and global round duration (virtual ms).
	SigmaW, SigmaP, SigmaG telemetry.StreamSnapshot

	Elapsed time.Duration // wall clock of the event loop (nondeterministic)
	// DevicesPerSec is simulated device-rounds per wall-clock second:
	// Devices × Rounds / Elapsed. The population counts, not just active
	// trainers — supporting a device cheaply while it idles is the point.
	DevicesPerSec float64
}

// scaleMsg is a partial model ascending one level, carrying the sampled-leaf
// Byzantine census its subtree saw (the upper-level audit ground truth).
type scaleMsg struct {
	level, index int
	round        int
	vec          tensor.Vector
	byzLeaves    int
	totLeaves    int
}

// scaleGlobal is the dissemination broadcast starting the next round.
type scaleGlobal struct{ round int }

// scaleEngine holds the run-wide state shared by all cluster actors.
// Dispatch is serial (simnet's contract), so no locking anywhere.
type scaleEngine struct {
	o    ScaleOptions
	tree *topology.Tree
	sim  *simnet.Sim
	root *rng.RNG
	agg  aggregate.Aggregator
	scr  *aggregate.Scratch

	nodeOf [][]simnet.NodeID

	g     tensor.Vector // ground-truth gradient direction
	gNorm float64

	pool      []tensor.Vector
	eagerBufs []tensor.Vector
	allocated int

	levels                 []LevelScore
	sigmaW, sigmaP, sigmaG telemetry.Stream
	activations            int
	relErr                 float64
	roundsDone             int
	lastGlobalAt           simnet.Time
}

// isByz derives device d's Byzantine flag from the placement stream — no
// per-device map, so the predicate costs nothing while devices idle.
func (e *scaleEngine) isByz(d int) bool {
	if e.o.Gamma <= 0 {
		return false
	}
	return e.root.DeriveN("byz", uint64(d)).Float64() < e.o.Gamma
}

// take materializes an update buffer: pooled when lazy, the device's
// preallocated slot when eager.
func (e *scaleEngine) take(device int) tensor.Vector {
	if e.o.Eager {
		return e.eagerBufs[device]
	}
	if n := len(e.pool); n > 0 {
		v := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return v
	}
	e.allocated++
	return tensor.NewVector(e.o.Dim)
}

// release returns a buffer to the pool (no-op when eager: the device owns
// its slot).
func (e *scaleEngine) release(v tensor.Vector) {
	if !e.o.Eager {
		e.pool = append(e.pool, v)
	}
}

// fill writes device d's round-r update into v: the ground-truth gradient
// plus per-device noise for honest devices, an amplified sign-flip for
// Byzantine ones. Values depend only on (seed, round, device), never on
// materialization order or buffer identity — the invariant that makes lazy
// and eager modes bit-identical.
func (e *scaleEngine) fill(v tensor.Vector, round, d int, byz bool) {
	r := e.root.DeriveN("round", uint64(round)).DeriveN("upd", uint64(d))
	if byz {
		for j := range v {
			v[j] = -3*e.g[j] + 0.1*r.NormFloat64()
		}
		return
	}
	for j := range v {
		v[j] = e.g[j] + 0.5*r.NormFloat64()
	}
}

// scaleActor simulates one cluster: the bottom level collects its sampled
// cohort's uploads and aggregates; upper levels collect child partials.
type scaleActor struct {
	eng          *scaleEngine
	level, index int
	cluster      *topology.Cluster
	parent       simnet.NodeID
	childIDs     []simnet.NodeID // upper levels: child cluster actors
	expect       int             // inputs per round (cohort size or child count)

	round         int
	vecs          []tensor.Vector
	truth         []bool // per input: ground-truth maliciousness
	first, last   simnet.Time
	partial       tensor.Vector
	byzSampled    int // Byzantine sampled leaves seen this round
	totSampled    int // total sampled leaves seen this round
	pick, scratch []int // bottom: cohort draw buffers
	out           scaleMsg // reused ascend payload (safe: consumed before next round)
}

func (a *scaleActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case *scaleMsg:
		a.onPartial(ctx, msg, m)
	case scaleGlobal:
		a.onGlobal(ctx, m)
	default:
		panic(fmt.Sprintf("scale: unexpected payload %T", msg.Payload))
	}
}

// startRound samples the bottom cluster's cohort and schedules each sampled
// device's upload arrival (local training time plus uplink).
func (a *scaleActor) startRound(ctx *simnet.Context, round int) {
	e := a.eng
	a.round = round
	a.resetRound()
	rr := e.root.DeriveN("round", uint64(round))
	k := a.expect
	cr := rr.DeriveN("cohort", uint64(a.index))
	a.pick = a.pick[:k]
	if k >= a.cluster.Size() {
		for i := range a.pick {
			a.pick[i] = i
		}
	} else {
		cr.ChoiceInto(a.pick, a.cluster.Size(), a.scratch)
	}
	for _, mi := range a.pick {
		d := a.cluster.Members[mi]
		dr := rr.DeriveN("dev", uint64(d))
		// Local training duration plus uplink latency, virtual ms. Drawn
		// from the device's own derived stream so arrival times are
		// independent of scheduling and shard layout.
		delay := simnet.Time(40 + 160*dr.Float64() + 1 + 9*dr.Float64())
		device := d
		ctx.After(delay, func(ctx *simnet.Context) {
			a.onArrival(ctx, device)
		})
	}
}

func (a *scaleActor) resetRound() {
	a.vecs = a.vecs[:0]
	a.truth = a.truth[:0]
	a.byzSampled, a.totSampled = 0, 0
	a.first, a.last = 0, 0
}

// onArrival materializes one sampled device's update as it lands at the
// leader — the lazy-state moment: before this event and after this round's
// aggregation the device holds no vector.
func (a *scaleActor) onArrival(ctx *simnet.Context, device int) {
	e := a.eng
	now := ctx.Now()
	if len(a.vecs) == 0 {
		a.first = now
	}
	a.last = now
	byz := e.isByz(device)
	v := e.take(device)
	e.fill(v, a.round, device, byz)
	e.activations++
	a.vecs = append(a.vecs, v)
	a.truth = append(a.truth, byz)
	a.totSampled++
	if byz {
		a.byzSampled++
	}
	if len(a.vecs) == a.expect {
		e.sigmaW.Observe(float64(a.last - a.first))
		a.aggregate(ctx)
		for _, u := range a.vecs {
			e.release(u)
		}
		a.resetRound()
	}
}

// onPartial collects one child cluster's partial model at an upper level.
func (a *scaleActor) onPartial(ctx *simnet.Context, msg simnet.Message, m *scaleMsg) {
	e := a.eng
	if m.round != a.round {
		panic(fmt.Sprintf("scale: cluster (%d,%d) got round %d partial during round %d",
			a.level, a.index, m.round, a.round))
	}
	e.sigmaP.Observe(float64(msg.At - msg.SentAt))
	a.vecs = append(a.vecs, m.vec)
	// Upper-level ground truth: the subtree's sampled leaves were
	// majority-Byzantine (below that, the level below is expected to have
	// cleaned the partial).
	a.truth = append(a.truth, 2*m.byzLeaves > m.totLeaves)
	a.totSampled += m.totLeaves
	a.byzSampled += m.byzLeaves
	if len(a.vecs) == a.expect {
		a.aggregate(ctx)
		a.resetRound()
		a.round++
	}
}

// aggregate runs the robust rule over the collected inputs, scores the
// filter audit against ground truth, and either ascends the partial or — at
// the top — closes the round and disseminates.
func (a *scaleActor) aggregate(ctx *simnet.Context) {
	e := a.eng
	if err := e.agg.AggregateInto(a.partial, e.scr, a.vecs); err != nil {
		panic(fmt.Sprintf("scale: cluster (%d,%d): %v", a.level, a.index, err))
	}
	s := &e.levels[a.level]
	for i, d := range e.scr.Audit.Decisions {
		flagged := d != aggregate.DecisionKept
		switch {
		case flagged && a.truth[i]:
			s.TP++
		case flagged:
			s.FP++
		case a.truth[i]:
			s.FN++
		default:
			s.TN++
		}
	}
	if a.level > 0 {
		a.out = scaleMsg{
			level: a.level, index: a.index, round: a.round,
			vec: a.partial, byzLeaves: a.byzSampled, totLeaves: a.totSampled,
		}
		ctx.SendVolume(a.parent, &a.out, int64(e.o.Dim))
		return
	}
	// Top of the tree: the global model for this round is formed.
	now := ctx.Now()
	e.sigmaG.Observe(float64(now - e.lastGlobalAt))
	e.lastGlobalAt = now
	e.relErr = relativeError(a.partial, e.g, e.gNorm)
	e.roundsDone++
	if e.roundsDone < e.o.Rounds {
		a.disseminate(ctx, a.round+1)
	}
}

// onGlobal forwards the dissemination broadcast down the tree; bottom
// clusters start the next round on receipt.
func (a *scaleActor) onGlobal(ctx *simnet.Context, m scaleGlobal) {
	if len(a.childIDs) > 0 {
		a.disseminate(ctx, m.round)
		a.round = m.round
		return
	}
	a.startRound(ctx, m.round)
}

func (a *scaleActor) disseminate(ctx *simnet.Context, round int) {
	for _, id := range a.childIDs {
		ctx.SendVolume(id, scaleGlobal{round: round}, int64(a.eng.o.Dim))
	}
}

func relativeError(got, want tensor.Vector, wantNorm float64) float64 {
	s := 0.0
	for j := range got {
		d := got[j] - want[j]
		s += d * d
	}
	return math.Sqrt(s) / wantNorm
}

// RunScale builds the topology, wires one simnet actor per cluster, and
// drives Rounds global rounds through the sharded event engine.
func RunScale(o ScaleOptions) (*ScaleResult, error) {
	o.defaults()
	if o.Depth < 2 {
		return nil, fmt.Errorf("scale: Depth %d < 2", o.Depth)
	}
	if o.Gamma < 0 || o.Gamma >= 1 {
		return nil, fmt.Errorf("scale: Gamma %v out of [0,1)", o.Gamma)
	}
	agg, err := aggregate.ByName(o.Rule)
	if err != nil {
		return nil, err
	}
	// Top width: smallest top cluster giving at least o.Devices leaves.
	perTop := 1
	for l := 1; l < o.Depth; l++ {
		perTop *= o.Fanout
	}
	topNodes := (o.Devices + perTop - 1) / perTop
	if topNodes < 1 {
		topNodes = 1
	}
	tree, err := topology.NewECSM(o.Depth, o.Fanout, topNodes)
	if err != nil {
		return nil, err
	}
	if o.Cohort > o.Fanout {
		o.Cohort = o.Fanout
	}

	root := rng.New(o.Seed)
	e := &scaleEngine{
		o:      o,
		tree:   tree,
		root:   root,
		agg:    agg,
		scr:    aggregate.NewScratch(1),
		levels: make([]LevelScore, tree.Depth()),
	}
	e.scr.Audit = &aggregate.FilterAudit{}
	for l := range e.levels {
		e.levels[l].Level = l
	}
	// Ground-truth gradient: a fixed random direction of unit-ish scale.
	gr := root.Derive("gradient")
	e.g = tensor.NewVector(o.Dim)
	for j := range e.g {
		e.g[j] = gr.NormFloat64()
	}
	e.gNorm = math.Sqrt(dot(e.g, e.g))
	if e.gNorm == 0 {
		e.gNorm = 1
	}
	devices := tree.NumDevices()
	if o.Eager {
		e.eagerBufs = make([]tensor.Vector, devices)
		for d := range e.eagerBufs {
			e.eagerBufs[d] = tensor.NewVector(o.Dim)
		}
		e.allocated = devices
	}

	// One simnet node per cluster, level-major.
	e.sim = simnet.NewSharded(simnet.Uniform{Min: 1, Max: 15}, root.Derive("net"), o.Shards, o.Workers)
	e.nodeOf = make([][]simnet.NodeID, tree.Depth())
	next := simnet.NodeID(0)
	for l := range tree.Clusters {
		e.nodeOf[l] = make([]simnet.NodeID, len(tree.Clusters[l]))
		for i := range tree.Clusters[l] {
			e.nodeOf[l][i] = next
			next++
		}
	}
	clusters := int(next)
	actors := make([]*scaleActor, 0, clusters)
	bottom := tree.Bottom()
	for l := range tree.Clusters {
		for i, c := range tree.Clusters[l] {
			a := &scaleActor{
				eng: e, level: l, index: i, cluster: c,
				partial: tensor.NewVector(o.Dim),
			}
			if l > 0 {
				p := tree.Parent(l, i)
				a.parent = e.nodeOf[p.Level][p.Index]
			}
			if l == bottom {
				a.expect = o.Cohort
				if a.expect > c.Size() {
					a.expect = c.Size()
				}
				a.pick = make([]int, 0, c.Size())
				a.scratch = make([]int, c.Size())
			}
			actors = append(actors, a)
			e.sim.Register(e.nodeOf[l][i], a)
		}
	}
	// Child links (upper levels) and expected input counts.
	for l := 1; l < tree.Depth(); l++ {
		for i := range tree.Clusters[l] {
			p := tree.Parent(l, i)
			pa := actors[int(e.nodeOf[p.Level][p.Index])]
			pa.childIDs = append(pa.childIDs, e.nodeOf[l][i])
		}
	}
	for _, a := range actors {
		if a.level != bottom {
			a.expect = len(a.childIDs)
		}
	}

	// Generous livelock guard: arrivals + ascents + dissemination per round.
	sampled := 0
	for _, c := range tree.Clusters[bottom] {
		k := o.Cohort
		if k > c.Size() {
			k = c.Size()
		}
		sampled += k
	}
	e.sim.MaxEvents = 8 * o.Rounds * (sampled + 3*clusters + 16)

	// Kick off round 0 at every bottom cluster.
	for i := range tree.Clusters[bottom] {
		a := actors[int(e.nodeOf[bottom][i])]
		id := e.nodeOf[bottom][i]
		e.sim.ScheduleAt(0, id, func(ctx *simnet.Context) {
			a.startRound(ctx, 0)
		})
	}

	start := time.Now()
	events, err := e.sim.Run(0)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if e.roundsDone != o.Rounds {
		return nil, fmt.Errorf("scale: completed %d of %d rounds (events %d)", e.roundsDone, o.Rounds, events)
	}

	res := &ScaleResult{
		Options:          o,
		Devices:          devices,
		Clusters:         clusters,
		RelErr:           e.relErr,
		Levels:           e.levels,
		Activations:      e.activations,
		BuffersAllocated: e.allocated,
		Events:           events,
		Net:              e.sim.Stats(),
		SigmaW:           e.sigmaW.Snapshot(),
		SigmaP:           e.sigmaP.Snapshot(),
		SigmaG:           e.sigmaG.Snapshot(),
		Elapsed:          elapsed,
	}
	if elapsed > 0 {
		res.DevicesPerSec = float64(devices) * float64(o.Rounds) / elapsed.Seconds()
	}
	if reg := o.Telemetry; reg != nil {
		reg.Gauge(`abdhfl_scale_devices`).Set(float64(devices))
		reg.Gauge(`abdhfl_scale_peak_queue`).Set(float64(res.Net.PeakQueue))
		reg.Gauge(`abdhfl_scale_rel_err`).Set(res.RelErr)
		reg.Gauge(`abdhfl_scale_sigma_w_mean`).Set(res.SigmaW.Mean)
		reg.Gauge(`abdhfl_scale_sigma_p_mean`).Set(res.SigmaP.Mean)
		reg.Gauge(`abdhfl_scale_sigma_g_mean`).Set(res.SigmaG.Mean)
	}
	return res, nil
}

func dot(a, b tensor.Vector) float64 {
	s := 0.0
	for j := range a {
		s += a[j] * b[j]
	}
	return s
}

// Row renders the deterministic slice of the result as table cells (wall
// clock and devices/sec are excluded so result files stay diffable).
func (r *ScaleResult) Row() []string {
	bottom := r.Levels[len(r.Levels)-1]
	return []string{
		fmt.Sprintf("%d", r.Options.Depth),
		fmt.Sprintf("%d", r.Options.Fanout),
		fmt.Sprintf("%d", r.Devices),
		fmt.Sprintf("%.2f", r.Options.Gamma),
		fmt.Sprintf("%d", r.Options.Cohort),
		r.Options.Rule,
		fmt.Sprintf("%.4f", r.RelErr),
		metrics.Pct(bottom.Precision()),
		metrics.Pct(bottom.Recall()),
		fmt.Sprintf("%d", r.Activations),
		fmt.Sprintf("%d", r.BuffersAllocated),
		fmt.Sprintf("%d", r.Events),
		fmt.Sprintf("%d", r.Net.PeakQueue),
		fmt.Sprintf("%.1f", r.SigmaW.Mean),
		fmt.Sprintf("%.1f", r.SigmaG.Mean),
	}
}

// ScaleTableHeader matches ScaleResult.Row.
func ScaleTableHeader() []string {
	return []string{
		"depth", "m", "devices", "gamma", "cohort", "rule", "rel_err",
		"bottom_prec", "bottom_recall", "activations", "buffers",
		"events", "peak_queue", "sigma_w", "sigma_g",
	}
}
