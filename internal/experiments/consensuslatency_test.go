package experiments

import (
	"testing"
)

// TestConsensusLatencyDeterministic pins the rendered agreement-latency
// table: same options, same bytes — and the same bytes for every Workers
// setting, which is what lets results_consensus_latency.txt be committed
// as a reproducible artifact.
func TestConsensusLatencyDeterministic(t *testing.T) {
	opts := ConsensusLatencyOptions{
		Members: 4, Dim: 8, Instances: 4, Seed: 3,
		FaultRates: []float64{0, 0.2},
	}
	render := func(workers int) string {
		o := opts
		o.Workers = workers
		res, err := RunConsensusLatency(o)
		if err != nil {
			t.Fatal(err)
		}
		return ConsensusLatencyTable(res).Render()
	}
	base := render(1)
	if base == "" {
		t.Fatal("empty table")
	}
	if again := render(1); again != base {
		t.Fatalf("rerun diverges:\n%s\nvs\n%s", base, again)
	}
	for _, w := range []int{0, 2, 8} {
		if got := render(w); got != base {
			t.Fatalf("workers=%d diverges:\n%s\nvs\n%s", w, got, base)
		}
	}
}

// TestConsensusLatencyZeroFaultMatches checks the equivalence column: with
// no injected faults every instance's ABA exclusion set must equal
// validation-voting's on the same workload.
func TestConsensusLatencyZeroFaultMatches(t *testing.T) {
	res, err := RunConsensusLatency(ConsensusLatencyOptions{
		Members: 7, Dim: 8, Instances: 6, Seed: 5, FaultRates: []float64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Protocol == "aba" && r.Matches != 6 {
			t.Fatalf("zero-fault aba matched voting on %d/6 instances", r.Matches)
		}
	}
}
