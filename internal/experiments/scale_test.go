package experiments

import (
	"fmt"
	"testing"
)

// smallScale is a topology that exercises every moving part (3 levels,
// cohort sampling, Byzantine placement) while staying test-suite fast.
func smallScale() ScaleOptions {
	return ScaleOptions{
		Depth:   3,
		Fanout:  4,
		Devices: 2000,
		Gamma:   0.2,
		Cohort:  2,
		Rounds:  3,
		Dim:     8,
		Rule:    "median",
		Seed:    11,
	}
}

// deterministicView strips the wall-clock fields so runs can be compared.
func deterministicView(r *ScaleResult) ScaleResult {
	v := *r
	v.Elapsed = 0
	v.DevicesPerSec = 0
	return v
}

func mustRunScale(t *testing.T, o ScaleOptions) *ScaleResult {
	t.Helper()
	res, err := RunScale(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScaleDeterministicAcrossShardCounts(t *testing.T) {
	base := smallScale()
	base.Shards = 1
	base.Workers = 1
	ref := deterministicView(mustRunScale(t, base))
	for _, cfg := range []struct{ shards, workers int }{{4, 2}, {16, 8}} {
		o := smallScale()
		o.Shards = cfg.shards
		o.Workers = cfg.workers
		got := deterministicView(mustRunScale(t, o))
		// Options differ by construction; compare everything else.
		got.Options, ref.Options = ScaleOptions{}, ScaleOptions{}
		if fmtScale(got) != fmtScale(ref) {
			t.Fatalf("shards=%d: result diverged\n got %+v\nwant %+v", cfg.shards, got, ref)
		}
	}
}

func TestScaleDeterministicAcrossReruns(t *testing.T) {
	a := deterministicView(mustRunScale(t, smallScale()))
	b := deterministicView(mustRunScale(t, smallScale()))
	if fmtScale(a) != fmtScale(b) {
		t.Fatalf("rerun diverged:\n%+v\n%+v", a, b)
	}
}

// fmtScale renders every deterministic field, including nested stats and σ
// snapshots, for whole-result comparison.
func fmtScale(r ScaleResult) string { return fmt.Sprintf("%+v", r) }

func TestScaleLazyMatchesEager(t *testing.T) {
	lazy := smallScale()
	eager := smallScale()
	eager.Eager = true
	a := mustRunScale(t, lazy)
	b := mustRunScale(t, eager)
	// σ accounting, filter precision/recall, and the model error must be
	// bit-identical: buffer identity never leaks into results.
	if a.RelErr != b.RelErr {
		t.Fatalf("RelErr diverged: %v vs %v", a.RelErr, b.RelErr)
	}
	if a.SigmaW != b.SigmaW || a.SigmaP != b.SigmaP || a.SigmaG != b.SigmaG {
		t.Fatal("σ streams diverged between lazy and eager state")
	}
	for l := range a.Levels {
		if a.Levels[l] != b.Levels[l] {
			t.Fatalf("level %d filter score diverged: %+v vs %+v", l, a.Levels[l], b.Levels[l])
		}
	}
	if a.Activations != b.Activations || a.Events != b.Events || a.Net != b.Net {
		t.Fatal("simulation trajectory diverged between lazy and eager state")
	}
	// The lazy engine must materialize far fewer buffers than one per
	// device; eager materializes exactly one per device.
	if b.BuffersAllocated != b.Devices {
		t.Fatalf("eager allocated %d buffers for %d devices", b.BuffersAllocated, b.Devices)
	}
	if a.BuffersAllocated >= b.BuffersAllocated {
		t.Fatalf("lazy allocated %d buffers, eager %d: laziness lost", a.BuffersAllocated, b.BuffersAllocated)
	}
}

func TestScaleCohortBoundsActivations(t *testing.T) {
	o := smallScale()
	res := mustRunScale(t, o)
	bottomClusters := res.Devices / o.Fanout
	want := o.Cohort * bottomClusters * o.Rounds
	if res.Activations != want {
		t.Fatalf("Activations = %d, want %d (cohort %d × %d clusters × %d rounds)",
			res.Activations, want, o.Cohort, bottomClusters, o.Rounds)
	}
	if res.Net.PeakQueue == 0 {
		t.Fatal("PeakQueue gauge not populated")
	}
}

func TestScaleGammaDegradesError(t *testing.T) {
	clean := smallScale()
	clean.Gamma = 0
	dirty := smallScale()
	dirty.Gamma = 0.45 // near the tolerance cliff for median
	a := mustRunScale(t, clean)
	b := mustRunScale(t, dirty)
	if a.RelErr >= b.RelErr {
		t.Fatalf("rel_err did not grow with γ: clean %v, γ=0.45 %v", a.RelErr, b.RelErr)
	}
	if a.RelErr > 0.5 {
		t.Fatalf("clean rel_err %v too large: aggregation broken", a.RelErr)
	}
}

func TestScaleOptionValidation(t *testing.T) {
	bad := smallScale()
	bad.Gamma = 1.5
	if _, err := RunScale(bad); err == nil {
		t.Fatal("Gamma 1.5 accepted")
	}
	bad = smallScale()
	bad.Rule = "no-such-rule"
	if _, err := RunScale(bad); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

// BenchmarkScaleDevicesPerSec is the headline devices/sec benchmark: a
// 100k-device deployment driven through the sharded engine. The custom
// metric reports simulated device-rounds per wall-clock second.
func BenchmarkScaleDevicesPerSec(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("devices=100k/shards=%d", shards), func(b *testing.B) {
			o := ScaleOptions{
				Devices: 100_000,
				Gamma:   0.1,
				Rounds:  2,
				Shards:  shards,
				Seed:    3,
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last *ScaleResult
			for i := 0; i < b.N; i++ {
				res, err := RunScale(o)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.DevicesPerSec, "devices/sec")
			b.ReportMetric(float64(last.Devices), "devices")
		})
	}
}
