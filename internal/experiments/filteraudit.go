package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/topology"
)

// FilterAuditOptions parameterises RunFilterAudit — the empirical check of
// the Theorem 2 tolerance story: join every aggregation's kept/discarded
// contributor ids against the ground-truth attacker placement and report
// per-level filter precision/recall for the Table V attack matrix.
type FilterAuditOptions struct {
	Rounds  int     // global rounds per run; 0 -> 20
	Samples int     // samples per client; 0 -> 200
	Frac    float64 // malicious fraction; 0 -> 0.3 (well inside the bound)
	// Progress, if non-nil, receives one line per completed family.
	Progress func(format string, args ...any)
	// Telemetry, if non-nil, additionally accumulates engine metrics.
	Telemetry *telemetry.Registry
}

func (o *FilterAuditOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Frac == 0 {
		o.Frac = 0.3
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// LevelScore tallies one tree level's filtering decisions against ground
// truth. A contributor counts as malicious at the bottom level when the
// device itself is Byzantine, and at upper levels when a strict majority of
// the child cluster's leaf descendants is Byzantine (below that, the lower
// level's own BRA is expected to have cleaned the partial model). Clipped
// contributors count as flagged: the rule acted against them.
type LevelScore struct {
	Level          int
	TP, FP, FN, TN int
}

// Precision is TP/(TP+FP): of the updates the filter acted against, how many
// were actually malicious. 1 when nothing was flagged.
func (s LevelScore) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall is TP/(TP+FN): of the malicious updates presented, how many the
// filter acted against. 1 when nothing malicious was presented.
func (s LevelScore) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// FilterScorer accumulates filter decisions against a materialised
// scenario's ground truth. Wire its Observe method into Materials.OnFilter
// (or core.Config.OnFilter) and read Levels afterwards.
type FilterScorer struct {
	// Levels[l] is the running tally for tree level l (0 = top).
	Levels []LevelScore
	// truth[l] maps a contributor id seen at level l to its ground-truth
	// maliciousness.
	truth []map[int]bool
}

// NewFilterScorer derives the per-level ground truth from the tree and the
// Byzantine placement.
func NewFilterScorer(tree *topology.Tree, byzantine map[int]bool) *FilterScorer {
	depth := tree.Depth()
	fs := &FilterScorer{Levels: make([]LevelScore, depth), truth: make([]map[int]bool, depth)}
	for l := range fs.Levels {
		fs.Levels[l].Level = l
	}
	bottom := tree.Bottom()
	fs.truth[bottom] = byzantine
	for l := 0; l < bottom; l++ {
		t := map[int]bool{}
		for ci, c := range tree.Clusters[l+1] {
			leaves := tree.LeafDescendants(l+1, ci)
			byz := 0
			for _, d := range leaves {
				if byzantine[d] {
					byz++
				}
			}
			t[c.Leader] = 2*byz > len(leaves)
		}
		fs.truth[l] = t
	}
	return fs
}

// Observe scores one filter decision. Safe to pass directly as an OnFilter
// callback; it only reads the reused id slices, never retains them.
func (fs *FilterScorer) Observe(d telemetry.FilterDecision) {
	if d.Level < 0 || d.Level >= len(fs.Levels) {
		return
	}
	truth := fs.truth[d.Level]
	s := &fs.Levels[d.Level]
	for _, id := range d.Kept {
		if truth[id] {
			s.FN++
		} else {
			s.TN++
		}
	}
	for _, ids := range [2][]int{d.Clipped, d.Discarded} {
		for _, id := range ids {
			if truth[id] {
				s.TP++
			} else {
				s.FP++
			}
		}
	}
}

// FilterAuditRow is one Table V family's audit: per-level scores plus the
// run's final accuracy for context.
type FilterAuditRow struct {
	Family   Table5Family
	Levels   []LevelScore
	Accuracy float64
}

// FilterAuditResult is the full per-level precision/recall audit.
type FilterAuditResult struct {
	Options FilterAuditOptions
	Rows    []FilterAuditRow
	// Bound is the Theorem 2 tolerance of the default topology.
	Bound float64
}

// RunFilterAudit runs one ABD-HFL round engine per Table V family with the
// filter-audit callback attached and scores every aggregation's verdict
// against the known attacker placement.
func RunFilterAudit(o FilterAuditOptions) (*FilterAuditResult, error) {
	o.defaults()
	res := &FilterAuditResult{Options: o, Bound: abdhfl.TheoreticalBound(abdhfl.Scenario{})}
	for _, fam := range Table5Families() {
		s := abdhfl.Scenario{
			Distribution:      fam.Distribution,
			Aggregator:        fam.Aggregator,
			Attack:            fam.Attack,
			MaliciousFraction: o.Frac,
			Rounds:            o.Rounds,
			SamplesPerClient:  o.Samples,
			EvalEvery:         o.Rounds,
		}.WithDefaults()
		m, err := abdhfl.Build(s)
		if err != nil {
			return nil, err
		}
		scorer := NewFilterScorer(m.Tree, m.Byzantine)
		m.OnFilter = scorer.Observe
		m.Telemetry = o.Telemetry
		r, err := m.RunHFL(s.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FilterAuditRow{Family: fam, Levels: scorer.Levels, Accuracy: r.FinalAccuracy})
		for _, ls := range scorer.Levels {
			o.Progress("%-7s %-6s %-11s level=%d precision=%-7s recall=%-7s (tp=%d fp=%d fn=%d tn=%d)",
				fam.Distribution, fam.Attack, fam.Aggregator, ls.Level,
				metrics.Pct(ls.Precision()), metrics.Pct(ls.Recall()), ls.TP, ls.FP, ls.FN, ls.TN)
		}
	}
	return res, nil
}

// Table renders the audit with one row per (family, level).
func (r *FilterAuditResult) Table() metrics.Table {
	t := metrics.Table{Header: []string{
		"distribution", "attack", "rule", "level", "precision", "recall", "tp", "fp", "fn", "tn",
	}}
	for _, row := range r.Rows {
		for _, ls := range row.Levels {
			t.AddRow(
				string(row.Family.Distribution), string(row.Family.Attack), row.Family.Aggregator,
				fmt.Sprintf("%d", ls.Level),
				metrics.Pct(ls.Precision()), metrics.Pct(ls.Recall()),
				fmt.Sprintf("%d", ls.TP), fmt.Sprintf("%d", ls.FP),
				fmt.Sprintf("%d", ls.FN), fmt.Sprintf("%d", ls.TN),
			)
		}
	}
	return t
}
