package experiments

import (
	"fmt"

	"abdhfl/internal/consensus"
	"abdhfl/internal/metrics"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
)

// ConsensusLatencyOptions parameterises the agreement-latency matrix: the
// randomized common-coin ABA against validation-voting on identical
// synthetic workloads, swept across the chaos fault matrix's intensity
// ladder. Each cell runs Instances independent consensus instances — a
// proposal set with a poisoned fraction, a distance-scoring validator, and
// a fault-rate-scaled delivery schedule with rate-scaled crashed (silent)
// members — and reports termination rounds, virtual agreement latency,
// message counts, and whether the two protocols kept the same proposals.
// Everything derives from Seed: the same options produce the same table,
// byte for byte, for every Workers setting.
type ConsensusLatencyOptions struct {
	Members   int     // consensus members per instance; 0 -> 7
	Dim       int     // proposal vector dimension; 0 -> 32
	Instances int     // instances per (rate, protocol) cell; 0 -> 24
	Seed      uint64  // 0 -> 1
	Workers   int     // validator fan-out; results are identical for every value
	Malicious float64 // poisoned proposal fraction; 0 -> 0.25, negative -> 0
	// FaultRates are the plan intensities, mirroring ChaosOptions; nil
	// selects {0, 0.1, 0.2, 0.3}.
	FaultRates []float64
}

func (o *ConsensusLatencyOptions) defaults() {
	if o.Members == 0 {
		o.Members = 7
	}
	if o.Dim == 0 {
		o.Dim = 32
	}
	if o.Instances == 0 {
		o.Instances = 24
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Malicious == 0 {
		o.Malicious = 0.25
	}
	if o.Malicious < 0 {
		o.Malicious = 0
	}
	if o.FaultRates == nil {
		o.FaultRates = []float64{0, 0.1, 0.2, 0.3}
	}
}

// ConsensusLatencyResult is one (fault rate, protocol) cell.
type ConsensusLatencyResult struct {
	FaultRate float64
	Protocol  string
	// Silent is the crashed (never-voting) member count injected per
	// instance, clamped to the protocols' fault budget f = (n-1)/3.
	Silent int
	// MeanRounds and MaxRounds are protocol rounds to termination: voting
	// always takes its two synchronous rounds; ABA takes 2 + coin rounds.
	MeanRounds, MaxRounds float64
	// MeanMS and MaxMS are virtual agreement latencies under the cell's
	// delivery schedule.
	MeanMS, MaxMS float64
	// MeanMessages is the per-instance point-to-point message count.
	MeanMessages float64
	// MeanExcluded is the mean number of proposals the decision rejected.
	MeanExcluded float64
	// Matches counts instances whose kept-proposal set equals
	// validation-voting's on the same inputs (for the voting rows this is
	// trivially Instances).
	Matches int
}

// latencySchedule scales the delivery model with the fault intensity: more
// loss (manifesting as resend delay), more duplication, and a fatter heavy
// tail — the transport share of ChaosPlan's taxonomy in schedule form.
func latencySchedule(rate float64) consensus.Schedule {
	s := consensus.DefaultSchedule()
	s.DropProb += rate / 2
	s.DupProb += rate / 4
	s.HeavyProb += rate / 2
	return s
}

// votingLatency models validation-voting's two synchronous all-to-all
// rounds under the same delivery schedule ABA runs on: each round ends when
// the slowest of the n(n-1) messages lands, and crashed members force the
// round to its stall deadline (four resend timers — the timeout a
// fixed-quorum collect pays before excluding a silent peer).
func votingLatency(r *rng.RNG, sched consensus.Schedule, n, silent int) float64 {
	total := 0.0
	for round := 0; round < 2; round++ {
		slowest := 0.0
		for m := 0; m < n*(n-1); m++ {
			if l := sched.Latency(r); l > slowest {
				slowest = l
			}
		}
		if silent > 0 {
			if stall := 4 * sched.ResendMS; stall > slowest {
				slowest = stall
			}
		}
		total += slowest
	}
	return total
}

// RunConsensusLatency measures both protocols at every fault rate on the
// same per-instance workloads.
func RunConsensusLatency(o ConsensusLatencyOptions) ([]ConsensusLatencyResult, error) {
	o.defaults()
	n := o.Members
	f := (n - 1) / 3
	root := rng.New(o.Seed)

	// Fixed per-instance workloads, shared by every cell: a target model,
	// a poisoned subset, proposals, and per-member validator references.
	type workload struct {
		proposals []tensor.Vector
		refs      []tensor.Vector
	}
	poisoned := int(o.Malicious*float64(n) + 0.5)
	work := make([]workload, o.Instances)
	for k := range work {
		inst := root.DeriveN("instance", uint64(k))
		target := randVec(inst.Derive("target"), o.Dim, 1.0)
		bad := map[int]bool{}
		for _, j := range inst.Derive("poison").Choice(n, poisoned) {
			bad[j] = true
		}
		w := workload{proposals: make([]tensor.Vector, n), refs: make([]tensor.Vector, n)}
		for j := 0; j < n; j++ {
			p := target.Clone()
			noise := randVec(inst.DeriveN("prop", uint64(j)), o.Dim, 0.05)
			for i := range p {
				p[i] += noise[i]
				if bad[j] {
					p[i] += 2
				}
			}
			w.proposals[j] = p
		}
		for m := 0; m < n; m++ {
			ref := target.Clone()
			noise := randVec(inst.DeriveN("ref", uint64(m)), o.Dim, 0.02)
			for i := range ref {
				ref[i] += noise[i]
			}
			w.refs[m] = ref
		}
		work[k] = w
	}
	validator := func(w workload) consensus.Validator {
		return func(member int, model tensor.Vector) float64 {
			d := 0.0
			for i, x := range model {
				diff := x - w.refs[member][i]
				d += diff * diff
			}
			return -d
		}
	}

	var out []ConsensusLatencyResult
	for _, rate := range o.FaultRates {
		sched := latencySchedule(rate)
		silent := int(rate*float64(n) + 0.5)
		if silent > f {
			silent = f
		}
		cell := root.Derive(fmt.Sprintf("rate-%g", rate))
		vres := ConsensusLatencyResult{FaultRate: rate, Protocol: "voting", Silent: silent}
		ares := ConsensusLatencyResult{FaultRate: rate, Protocol: "aba", Silent: silent}
		for k := 0; k < o.Instances; k++ {
			w := work[k]

			// Validation-voting: every member scores every proposal; the
			// latency model charges the synchronous rounds (and the stall
			// deadline crashed members force on a fixed-quorum collect).
			vctx := &consensus.Context{
				Members:   n,
				Validator: validator(w),
				Rand:      cell.DeriveN("voting", uint64(k)),
				Workers:   o.Workers,
				Round:     k,
			}
			_, vst, err := consensus.Voting{}.Agree(vctx, w.proposals)
			if err != nil {
				return nil, fmt.Errorf("consensus-latency rate=%v voting instance %d: %w", rate, k, err)
			}
			vms := votingLatency(cell.DeriveN("voting-net", uint64(k)), sched, n, silent)
			accumulate(&vres, 2, vms, vst)

			// ABA: the same workload with the cell's crashed members
			// injected as missing ballot rows and the rate-scaled schedule
			// driving the binary instances.
			set := &consensus.BallotSet{Rows: make([][]bool, n)}
			crashed := map[int]bool{}
			for _, m := range cell.DeriveN("crash", uint64(k)).Choice(n, silent) {
				crashed[m] = true
			}
			bctx := &consensus.Context{Members: n, Validator: validator(w)}
			for m := 0; m < n; m++ {
				if !crashed[m] {
					set.Rows[m] = consensus.Ballot(bctx, m, 0, w.proposals)
				}
			}
			actx := &consensus.Context{
				Members:   n,
				Validator: validator(w),
				Rand:      cell.DeriveN("aba", uint64(k)),
				Workers:   o.Workers,
				Round:     k,
				Ballots:   set,
			}
			_, ast, err := consensus.ABA{Schedule: &sched}.Agree(actx, w.proposals)
			if err != nil {
				return nil, fmt.Errorf("consensus-latency rate=%v aba instance %d: %w", rate, k, err)
			}
			accumulate(&ares, float64(2+ast.CoinRounds), ast.VirtualMS, ast)
			if sameExcluded(vst.Excluded, ast.Excluded) {
				ares.Matches++
			}
		}
		vres.Matches = o.Instances
		finishCell(&vres, o.Instances)
		finishCell(&ares, o.Instances)
		out = append(out, vres, ares)
	}
	return out, nil
}

func randVec(r *rng.RNG, dim int, scale float64) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = scale * (2*r.Float64() - 1)
	}
	return v
}

func accumulate(res *ConsensusLatencyResult, rounds, ms float64, st consensus.Stats) {
	res.MeanRounds += rounds
	if rounds > res.MaxRounds {
		res.MaxRounds = rounds
	}
	res.MeanMS += ms
	if ms > res.MaxMS {
		res.MaxMS = ms
	}
	res.MeanMessages += float64(st.Messages)
	res.MeanExcluded += float64(len(st.Excluded))
}

func finishCell(res *ConsensusLatencyResult, instances int) {
	res.MeanRounds /= float64(instances)
	res.MeanMS /= float64(instances)
	res.MeanMessages /= float64(instances)
	res.MeanExcluded /= float64(instances)
}

func sameExcluded(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ConsensusLatencyTable renders the agreement-latency matrix.
func ConsensusLatencyTable(results []ConsensusLatencyResult) metrics.Table {
	t := metrics.Table{Header: []string{
		"fault rate", "protocol", "silent", "mean rounds", "max rounds", "mean ms", "max ms", "mean msgs", "mean excluded", "match voting",
	}}
	for _, r := range results {
		t.AddRow(
			metrics.Pct(r.FaultRate),
			r.Protocol,
			fmt.Sprint(r.Silent),
			fmt.Sprintf("%.2f", r.MeanRounds),
			fmt.Sprintf("%.0f", r.MaxRounds),
			fmt.Sprintf("%.1f", r.MeanMS),
			fmt.Sprintf("%.1f", r.MaxMS),
			fmt.Sprintf("%.0f", r.MeanMessages),
			fmt.Sprintf("%.2f", r.MeanExcluded),
			fmt.Sprintf("%d/%d", r.Matches, countInstances(results)),
		)
	}
	return t
}

// countInstances recovers the per-cell instance count from the voting rows
// (whose Matches is trivially the instance count).
func countInstances(results []ConsensusLatencyResult) int {
	for _, r := range results {
		if r.Protocol == "voting" {
			return r.Matches
		}
	}
	return 0
}
