package experiments

import (
	"math"
	"strings"
	"testing"

	"abdhfl"
)

func TestRunTable5Smoke(t *testing.T) {
	res, err := RunTable5(Table5Options{
		Rounds:    4,
		Repeats:   1,
		Samples:   60,
		Fractions: []float64{0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("families = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("cells = %d", len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.ABDHFL <= 0 || c.Vanilla <= 0 {
				t.Fatalf("empty cell: %+v", c)
			}
		}
	}
	if math.Abs(res.Bound-0.578125) > 1e-12 {
		t.Fatalf("bound = %v", res.Bound)
	}
	table := res.Table()
	if len(table.Rows) != 8 {
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	if !strings.Contains(table.Render(), "ABD-HFL") {
		t.Fatal("table missing system name")
	}
}

func TestTable5CollapsePoint(t *testing.T) {
	res := &Table5Result{
		Rows: []Table5Row{{
			Cells: []Table5Cell{
				{Fraction: 0, ABDHFL: 0.8, Vanilla: 0.8},
				{Fraction: 0.5, ABDHFL: 0.8, Vanilla: 0.1},
			},
		}},
	}
	if p := res.CollapsePoint(0, true, 0.3); p != 0.5 {
		t.Fatalf("vanilla collapse at %v", p)
	}
	if p := res.CollapsePoint(0, false, 0.3); p != -1 {
		t.Fatalf("abdhfl collapse at %v, want never", p)
	}
	if p := res.CollapsePoint(5, true, 0.3); p != -1 {
		t.Fatal("out-of-range family not handled")
	}
}

func TestRunFig3Smoke(t *testing.T) {
	series, err := RunFig3(Fig3Options{
		Rounds:    3,
		Repeats:   1,
		Samples:   60,
		Dists:     []string{"iid"},
		Attacks:   []string{"type1"},
		Fractions: []float64{0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 { // abdhfl + vanilla
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Series.Points) != 3 {
			t.Fatalf("%s points = %d", s.Key(), len(s.Series.Points))
		}
	}
	if series[0].Key() != "fig3_iid_type1_25_"+series[0].System {
		t.Fatalf("key = %q", series[0].Key())
	}
}

func TestRunSchemesSmoke(t *testing.T) {
	results, err := RunSchemes(SchemesOptions{Rounds: 3, Samples: 60, Malicious: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("schemes = %d", len(results))
	}
	// Table IV cost ordering: all-CBA (4) must cost more model transfers
	// than all-BRA (3).
	var bra, cba SchemeResult
	for _, r := range results {
		switch r.Scheme {
		case 3:
			bra = r
		case 4:
			cba = r
		}
	}
	if cba.ModelTransfers <= bra.ModelTransfers {
		t.Fatalf("scheme 4 transfers %d not above scheme 3 %d", cba.ModelTransfers, bra.ModelTransfers)
	}
	if bra.ScalarMessages != 0 {
		t.Fatalf("all-BRA scheme sent %d scalar messages", bra.ScalarMessages)
	}
	tbl := SchemesTable(results)
	if len(tbl.Rows) != 4 {
		t.Fatal("schemes table wrong")
	}
}

func TestRunAggregationMatrix(t *testing.T) {
	cells, err := RunAggregationMatrix(MatrixOptions{N: 8, Dim: 50, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 9 rules x 4 attacks.
	if len(cells) != 36 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The undefended mean must be the worst defence against sign flip.
	var meanErr, krumErr float64
	for _, c := range cells {
		if c.Attack == "sign-flip" {
			switch c.Rule {
			case "mean":
				meanErr = c.Error
			case "multi-krum":
				krumErr = c.Error
			}
		}
	}
	if meanErr <= krumErr {
		t.Fatalf("mean error %v not above multi-krum %v under sign flip", meanErr, krumErr)
	}
	tbl := MatrixTable(cells)
	if len(tbl.Rows) != 9 || len(tbl.Header) != 5 {
		t.Fatalf("matrix table shape %dx%d", len(tbl.Rows), len(tbl.Header))
	}
}

func TestRunE2EMatrixSmoke(t *testing.T) {
	cells, err := RunE2EMatrix(E2EOptions{
		Rounds:   3,
		Samples:  60,
		Attacks:  []abdhfl.Attack{abdhfl.AttackType1, abdhfl.AttackSignFlip},
		Defences: []string{"multi-krum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Accuracy <= 0 {
			t.Fatalf("cell %v has no accuracy", c)
		}
	}
	tbl := E2ETable(cells)
	if len(tbl.Rows) != 1 || len(tbl.Header) != 3 {
		t.Fatal("e2e table shape wrong")
	}
}

func TestIsModelAttack(t *testing.T) {
	if !isModelAttack(abdhfl.AttackSignFlip) || !isModelAttack(abdhfl.AttackIPM) {
		t.Fatal("model attacks not classified")
	}
	if isModelAttack(abdhfl.AttackType1) || isModelAttack(abdhfl.AttackBackdoor) {
		t.Fatal("data attacks misclassified")
	}
}

func TestRunFlagSweepSmoke(t *testing.T) {
	rows, err := RunFlagSweep(FlagSweepOptions{
		Levels: 3, ClusterSize: 2, TopNodes: 2,
		Rounds: 4, Samples: 40,
		Cases: DelayCases()[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Nu) != 2 { // flag levels 0 and 1 on a 3-level tree
			t.Fatalf("nu entries = %d", len(r.Nu))
		}
		// ν must be ~0 at flag level 0 and larger deeper.
		if r.Nu[0] > 0.05 {
			t.Fatalf("nu[0] = %v", r.Nu[0])
		}
		if r.Nu[1] <= r.Nu[0] {
			t.Fatalf("nu not increasing with depth: %v", r.Nu)
		}
		if r.BestFlag != 1 {
			t.Fatalf("best flag = %d", r.BestFlag)
		}
	}
	tbl := FlagSweepTable(rows)
	if len(tbl.Rows) != 2 {
		t.Fatal("sweep table wrong")
	}
	if len(FlagSweepTable(nil).Header) != 0 {
		t.Fatal("empty sweep table not empty")
	}
}

func TestRunBounds(t *testing.T) {
	rep, err := RunBounds(BoundsOptions{MaxDepth: 4, ACSMTrees: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ECSM) != 3 { // depths 2, 3, 4
		t.Fatalf("ECSM rows = %d", len(rep.ECSM))
	}
	for _, row := range rep.ECSM {
		if !row.Survives {
			t.Fatalf("depth %d placement rejected", row.Depth)
		}
		got := float64(row.Placement) / float64(row.Devices)
		if math.Abs(got-row.Bound) > 0.02 {
			t.Fatalf("depth %d placement %v far from bound %v", row.Depth, got, row.Bound)
		}
	}
	if math.Abs(rep.ECSM[1].Bound-0.578125) > 1e-12 {
		t.Fatalf("depth-3 bound = %v", rep.ECSM[1].Bound)
	}
	if len(rep.ACSM) != 3 {
		t.Fatalf("ACSM rows = %d", len(rep.ACSM))
	}
	for _, row := range rep.ACSM {
		if !row.WithinBound {
			t.Fatalf("ACSM row out of bound: %+v", row)
		}
	}
	if len(rep.ECSMTable().Rows) != 3 || len(rep.ACSMTable().Rows) != 3 {
		t.Fatal("bounds tables wrong")
	}
}

func TestRunTradeoff(t *testing.T) {
	rows, err := RunTradeoff(TradeoffOptions{
		Levels: 3, ClusterSize: 2, TopNodes: 2,
		Rounds: 8, Samples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // flag levels 0, 1
		t.Fatalf("rows = %d", len(rows))
	}
	// The trade-off: deeper flag level → higher nu and shorter duration.
	if rows[1].MeanNu <= rows[0].MeanNu {
		t.Fatalf("nu not increasing: %v", rows)
	}
	if rows[1].Duration >= rows[0].Duration {
		t.Fatalf("duration not decreasing: %v", rows)
	}
	tbl := TradeoffTable(rows)
	if len(tbl.Rows) != 2 {
		t.Fatal("tradeoff table wrong")
	}
}
