package experiments

import (
	"fmt"

	"abdhfl/internal/metrics"
	"abdhfl/internal/rng"
	"abdhfl/internal/topology"
)

// BoundsOptions parameterises the tolerance-theory report.
type BoundsOptions struct {
	Gamma1, Gamma2 float64 // 0 -> 0.25 each
	ClusterSize    int     // 0 -> 4
	TopNodes       int     // 0 -> 4
	MaxDepth       int     // 0 -> 5
	ACSMTrees      int     // number of random ACSM trees to verify; 0 -> none
	Seed           uint64
}

func (o *BoundsOptions) defaults() {
	if o.Gamma1 == 0 {
		o.Gamma1 = 0.25
	}
	if o.Gamma2 == 0 {
		o.Gamma2 = 0.25
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 4
	}
	if o.TopNodes == 0 {
		o.TopNodes = 4
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// BoundRow is one ECSM depth's verified bound.
type BoundRow struct {
	Depth     int
	Devices   int
	Bound     float64
	Placement int  // size of the greedy bound-attaining placement
	Survives  bool // whether ideal filtering accepts the placement
}

// ACSMRow is one random-tree Theorem 3 verification.
type ACSMRow struct {
	Devices, Depth, ByzPlaced int
	Psi, Bound, Actual        float64
	WithinBound               bool
}

// BoundsReport is the full tolerance-theory verification.
type BoundsReport struct {
	Options BoundsOptions
	ECSM    []BoundRow
	// PerLevel[l] is the Corollary 2 tolerated proportion at level l.
	PerLevel []float64
	ACSM     []ACSMRow
}

// RunBounds computes and verifies the Theorem 1-3 bounds.
func RunBounds(o BoundsOptions) (*BoundsReport, error) {
	o.defaults()
	tol := topology.Tolerance{Gamma1: o.Gamma1, Gamma2: o.Gamma2}
	rep := &BoundsReport{Options: o}
	for depth := 2; depth <= o.MaxDepth; depth++ {
		tree, err := topology.NewECSM(depth, o.ClusterSize, o.TopNodes)
		if err != nil {
			return nil, err
		}
		placement := tol.AdversarialPlacement(tree)
		rep.ECSM = append(rep.ECSM, BoundRow{
			Depth:     depth,
			Devices:   tree.NumDevices(),
			Bound:     tol.BottomBound(depth),
			Placement: len(placement),
			Survives:  tol.SurvivesFiltering(tree, placement),
		})
	}
	for l := 0; l < o.MaxDepth; l++ {
		rep.PerLevel = append(rep.PerLevel, topology.MaxByzantineProportion(o.Gamma1, o.Gamma2, l))
	}
	r := rng.New(o.Seed)
	for i := 0; i < o.ACSMTrees; i++ {
		devices := 40 + r.Intn(120)
		tree, err := topology.NewACSM(r, devices, 3, 6, o.TopNodes)
		if err != nil {
			return nil, err
		}
		k := devices * 3 / 10
		byz := map[int]bool{}
		for _, id := range r.Choice(devices, k) {
			byz[id] = true
		}
		psi := topology.RelativeReliableNumber(tree, tree.Bottom(), byz, o.Gamma2)
		bound := topology.ACSMMaxByzantineProportion(o.Gamma2, psi)
		actual := float64(k) / float64(devices)
		rep.ACSM = append(rep.ACSM, ACSMRow{
			Devices: devices, Depth: tree.Depth(), ByzPlaced: k,
			Psi: psi, Bound: bound, Actual: actual,
			WithinBound: actual <= bound+1e-9,
		})
	}
	return rep, nil
}

// ECSMTable renders the per-depth bound verification.
func (r *BoundsReport) ECSMTable() metrics.Table {
	t := metrics.Table{Header: []string{"depth", "bottom devices", "bound", "greedy placement", "survives filtering"}}
	for _, row := range r.ECSM {
		t.AddRow(
			fmt.Sprint(row.Depth),
			fmt.Sprint(row.Devices),
			metrics.Pct(row.Bound),
			fmt.Sprintf("%d/%d (%s)", row.Placement, row.Devices,
				metrics.Pct(float64(row.Placement)/float64(row.Devices))),
			fmt.Sprint(row.Survives),
		)
	}
	return t
}

// ACSMTable renders the Theorem 3 verification rows.
func (r *BoundsReport) ACSMTable() metrics.Table {
	t := metrics.Table{Header: []string{"devices", "depth", "byz placed", "psi(bottom)", "bound", "actual", "within bound"}}
	for _, row := range r.ACSM {
		t.AddRow(
			fmt.Sprint(row.Devices), fmt.Sprint(row.Depth), fmt.Sprint(row.ByzPlaced),
			fmt.Sprintf("%.3f", row.Psi), metrics.Pct(row.Bound), metrics.Pct(row.Actual),
			fmt.Sprint(row.WithinBound),
		)
	}
	return t
}
