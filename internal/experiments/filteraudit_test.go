package experiments

import (
	"testing"

	"abdhfl"
	"abdhfl/internal/telemetry"
)

func TestFilterScorerObserve(t *testing.T) {
	m, err := abdhfl.Build(abdhfl.Scenario{
		Attack:            abdhfl.AttackType1,
		MaliciousFraction: 0.25,
		Rounds:            1,
		SamplesPerClient:  30,
	}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFilterScorer(m.Tree, m.Byzantine)
	depth := m.Tree.Depth()
	if len(fs.Levels) != depth || len(fs.truth) != depth {
		t.Fatalf("levels = %d, truth = %d, want %d", len(fs.Levels), len(fs.truth), depth)
	}
	bottom := m.Tree.Bottom()

	// Pick one malicious and one honest bottom-level device. The Byzantine
	// map only records malicious ids, so honest means absent.
	mal := -1
	for id := range m.Byzantine {
		mal = id
		break
	}
	hon := 0
	for m.Byzantine[hon] {
		hon++
	}
	if mal < 0 {
		t.Fatal("placement produced no malicious device")
	}

	fs.Observe(telemetry.FilterDecision{Level: bottom, Kept: []int{hon}, Discarded: []int{mal}})
	fs.Observe(telemetry.FilterDecision{Level: bottom, Kept: []int{mal}, Clipped: []int{hon}})
	got := fs.Levels[bottom]
	if got.TP != 1 || got.FP != 1 || got.FN != 1 || got.TN != 1 {
		t.Fatalf("bottom tally = %+v", got)
	}
	if got.Precision() != 0.5 || got.Recall() != 0.5 {
		t.Fatalf("precision=%v recall=%v", got.Precision(), got.Recall())
	}

	// Out-of-range levels are ignored, empty levels score perfectly.
	fs.Observe(telemetry.FilterDecision{Level: -1, Discarded: []int{mal}})
	fs.Observe(telemetry.FilterDecision{Level: depth, Discarded: []int{mal}})
	if s := fs.Levels[0]; s.TP+s.FP+s.FN+s.TN != 0 || s.Precision() != 1 || s.Recall() != 1 {
		t.Fatalf("untouched level tally = %+v", s)
	}
}

func TestRunFilterAuditSmoke(t *testing.T) {
	reg := telemetry.New()
	res, err := RunFilterAudit(FilterAuditOptions{
		Rounds:    3,
		Samples:   60,
		Frac:      0.25,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	fams := Table5Families()
	if len(res.Rows) != len(fams) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(fams))
	}
	depth := 0
	bottomTP := 0
	for _, row := range res.Rows {
		depth = len(row.Levels)
		for _, ls := range row.Levels {
			for _, v := range []float64{ls.Precision(), ls.Recall()} {
				if v < 0 || v > 1 {
					t.Fatalf("score out of range: %+v", ls)
				}
			}
		}
		bottom := row.Levels[len(row.Levels)-1]
		if bottom.TP+bottom.FP+bottom.FN+bottom.TN == 0 {
			t.Fatalf("bottom level saw no decisions: %+v", row)
		}
		bottomTP += bottom.TP
	}
	// With 25% prefix-placed poisoners, the BRA filters must catch at least
	// some attackers across the four families.
	if bottomTP == 0 {
		t.Fatal("no true positives at the bottom level across all families")
	}
	if got := len(res.Table().Rows); got != len(fams)*depth {
		t.Fatalf("table rows = %d, want %d", got, len(fams)*depth)
	}
	// The registry shared by every run must have seen the filter counters.
	snap := reg.Snapshot()
	kept := int64(0)
	for name, v := range snap.Counters {
		if name == `abdhfl_filter_kept_total{engine="hfl",level="2"}` {
			kept = v
		}
	}
	if kept == 0 {
		t.Fatalf("telemetry kept counter empty; counters = %v", snap.Counters)
	}
}
