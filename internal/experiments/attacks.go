package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/metrics"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
)

// MatrixOptions parameterises the Table I/II aggregation-error matrix.
type MatrixOptions struct {
	N       int     // population size; 0 -> 16
	Dim     int     // update dimension; 0 -> 500
	ByzFrac float64 // Byzantine fraction; 0 -> 0.25
	Trials  int     // random trials per cell; 0 -> 5
	Rules   []string
	Attacks []attack.ModelPoison
}

func (o *MatrixOptions) defaults() {
	if o.N == 0 {
		o.N = 16
	}
	if o.Dim == 0 {
		o.Dim = 500
	}
	if o.ByzFrac == 0 {
		o.ByzFrac = 0.25
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Rules == nil {
		o.Rules = []string{"mean", "multi-krum", "median", "trimmed-mean",
			"geomed", "centered-clipping", "cosine-clustering", "bulyan", "norm-bound"}
	}
	if o.Attacks == nil {
		o.Attacks = []attack.ModelPoison{
			attack.SignFlip{Scale: 3},
			attack.GaussianNoise{Stddev: 2},
			attack.ALE{Z: 1.2},
			attack.IPM{Epsilon: 0.8},
		}
	}
}

// MatrixCell is the aggregation error of one (rule, attack) pair: mean
// distance between the rule's output and the honest mean.
type MatrixCell struct {
	Rule, Attack string
	Error        float64
}

// RunAggregationMatrix measures every defence against every model-update
// attack on synthetic update populations.
func RunAggregationMatrix(o MatrixOptions) ([]MatrixCell, error) {
	o.defaults()
	nByz := int(o.ByzFrac * float64(o.N))
	var out []MatrixCell
	// One warm scratch and destination serve every (rule, attack, trial)
	// cell; all cells share the same n and dim.
	scratch := aggregate.NewScratch(0)
	agg := tensor.NewVector(o.Dim)
	for _, ruleName := range o.Rules {
		rule, err := aggregate.ByName(ruleName)
		if err != nil {
			return nil, err
		}
		for _, atk := range o.Attacks {
			sum := 0.0
			for trial := 0; trial < o.Trials; trial++ {
				r := rng.New(uint64(trial + 1))
				honest := make([]tensor.Vector, o.N-nByz)
				for i := range honest {
					v := tensor.NewVector(o.Dim)
					for j := range v {
						v[j] = 1 + 0.2*r.NormFloat64()
					}
					honest[i] = v
				}
				mean, std := attack.PopulationStats(honest)
				updates := append([]tensor.Vector{}, honest...)
				for b := 0; b < nByz; b++ {
					updates = append(updates, atk.Apply(r, honest[b%len(honest)], mean, std))
				}
				if err := rule.AggregateInto(agg, scratch, updates); err != nil {
					return nil, err
				}
				sum += tensor.Distance(agg, mean)
			}
			out = append(out, MatrixCell{Rule: ruleName, Attack: atk.Name(), Error: sum / float64(o.Trials)})
		}
	}
	return out, nil
}

// MatrixTable renders the matrix with rules as rows and attacks as columns.
func MatrixTable(cells []MatrixCell) metrics.Table {
	var attacks []string
	var rules []string
	seenA := map[string]bool{}
	seenR := map[string]bool{}
	for _, c := range cells {
		if !seenA[c.Attack] {
			seenA[c.Attack] = true
			attacks = append(attacks, c.Attack)
		}
		if !seenR[c.Rule] {
			seenR[c.Rule] = true
			rules = append(rules, c.Rule)
		}
	}
	lookup := map[[2]string]float64{}
	for _, c := range cells {
		lookup[[2]string{c.Rule, c.Attack}] = c.Error
	}
	t := metrics.Table{Header: append([]string{"rule \\ attack"}, attacks...)}
	for _, r := range rules {
		row := []string{r}
		for _, a := range attacks {
			row = append(row, fmt.Sprintf("%.3f", lookup[[2]string{r, a}]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E2EOptions parameterises the end-to-end attack x defence matrix.
type E2EOptions struct {
	Rounds    int     // 0 -> 12
	Samples   int     // 0 -> 100
	Malicious float64 // 0 -> 0.25
	Attacks   []abdhfl.Attack
	Defences  []string
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *E2EOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 12
	}
	if o.Samples == 0 {
		o.Samples = 100
	}
	if o.Malicious == 0 {
		o.Malicious = 0.25
	}
	if o.Attacks == nil {
		o.Attacks = []abdhfl.Attack{abdhfl.AttackType1, abdhfl.AttackType2, abdhfl.AttackBackdoor,
			abdhfl.AttackSignFlip, abdhfl.AttackNoise, abdhfl.AttackALE, abdhfl.AttackIPM}
	}
	if o.Defences == nil {
		o.Defences = []string{"multi-krum", "median", "trimmed-mean", "geomed", "centered-clipping", "bulyan", "norm-bound"}
	}
}

// E2ECell is the final accuracy of one (defence, attack) federated run.
type E2ECell struct {
	Defence  string
	Attack   abdhfl.Attack
	Accuracy float64
}

// isModelAttack reports whether the attack corrupts parameter updates
// rather than training data.
func isModelAttack(a abdhfl.Attack) bool {
	switch a {
	case abdhfl.AttackSignFlip, abdhfl.AttackNoise, abdhfl.AttackALE, abdhfl.AttackIPM:
		return true
	}
	return false
}

// RunE2EMatrix runs one short federated experiment per (defence, attack)
// pair. Data poisoners sit at prefix ids (the paper's Table V placement);
// model attackers are scattered — the literature's standard assumption,
// since concentrating them into whole clusters defeats per-cluster
// filtering by construction.
func RunE2EMatrix(o E2EOptions) ([]E2ECell, error) {
	o.defaults()
	var out []E2ECell
	for _, d := range o.Defences {
		for _, a := range o.Attacks {
			s := abdhfl.Scenario{
				Attack:            a,
				MaliciousFraction: o.Malicious,
				Aggregator:        d,
				Rounds:            o.Rounds,
				SamplesPerClient:  o.Samples,
				TestSamples:       600,
				EvalEvery:         o.Rounds,
			}
			if isModelAttack(a) {
				s.Placement = abdhfl.PlaceRandom
			}
			m, err := abdhfl.Build(s.WithDefaults())
			if err != nil {
				return nil, err
			}
			m.Telemetry = o.Telemetry
			res, err := m.RunHFL(1)
			if err != nil {
				return nil, err
			}
			out = append(out, E2ECell{Defence: d, Attack: a, Accuracy: res.FinalAccuracy})
		}
	}
	return out, nil
}

// E2ETable renders the end-to-end matrix.
func E2ETable(cells []E2ECell) metrics.Table {
	var attacks []abdhfl.Attack
	var defences []string
	seenA := map[abdhfl.Attack]bool{}
	seenD := map[string]bool{}
	for _, c := range cells {
		if !seenA[c.Attack] {
			seenA[c.Attack] = true
			attacks = append(attacks, c.Attack)
		}
		if !seenD[c.Defence] {
			seenD[c.Defence] = true
			defences = append(defences, c.Defence)
		}
	}
	lookup := map[string]float64{}
	for _, c := range cells {
		lookup[c.Defence+"|"+string(c.Attack)] = c.Accuracy
	}
	header := []string{"defence \\ attack"}
	for _, a := range attacks {
		header = append(header, string(a))
	}
	t := metrics.Table{Header: header}
	for _, d := range defences {
		row := []string{d}
		for _, a := range attacks {
			row = append(row, metrics.Pct(lookup[d+"|"+string(a)]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
