package experiments

import (
	"strings"
	"testing"
)

func codecSmokeOptions() CodecMatrixOptions {
	return CodecMatrixOptions{
		Levels:      3,
		ClusterSize: 2,
		TopNodes:    2,
		Rounds:      3,
		Samples:     40,
		Seed:        3,
		Codecs:      []string{"identity", "int8"},
	}
}

func TestRunCodecMatrixSmoke(t *testing.T) {
	res, err := RunCodecMatrix(codecSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 attacks x 2 schemes x 2 codecs.
	if len(res) != 8 {
		t.Fatalf("cells = %d, want 8", len(res))
	}
	for i, r := range res {
		if r.CompletedRounds <= 0 {
			t.Fatalf("cell %d completed no rounds: %+v", i, r)
		}
		if r.WireBytesPerRound <= 0 {
			t.Fatalf("cell %d shipped no wire bytes: %+v", i, r)
		}
		if r.RoundLatency <= 0 {
			t.Fatalf("cell %d has no round latency: %+v", i, r)
		}
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("cell %d filter scores out of range: %+v", i, r)
		}
	}
	// Same cell modulo codec: int8 must ship fewer bytes than identity.
	for i := 0; i+1 < len(res); i += 2 {
		ident, int8c := res[i], res[i+1]
		if ident.Codec != "identity" || int8c.Codec != "int8" {
			t.Fatalf("unexpected codec order at %d: %s, %s", i, ident.Codec, int8c.Codec)
		}
		if int8c.WireBytesPerRound >= ident.WireBytesPerRound {
			t.Fatalf("int8 bytes/round %d not below identity %d",
				int8c.WireBytesPerRound, ident.WireBytesPerRound)
		}
	}
	table := CodecMatrixTable(res).Render()
	if !strings.Contains(table, "wire KB/round") || !strings.Contains(table, "int8") {
		t.Fatalf("table missing expected columns:\n%s", table)
	}
}

// TestRunCodecMatrixDeterministic pins the reproducibility contract that
// makes results_codec_matrix.txt byte-identical across reruns.
func TestRunCodecMatrixDeterministic(t *testing.T) {
	a, err := RunCodecMatrix(codecSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCodecMatrix(codecSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
