package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/core"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

// Fig3Options parameterises the Figure 3 convergence-curve regeneration.
type Fig3Options struct {
	Rounds    int      // 0 -> 60
	Repeats   int      // 0 -> 3
	Samples   int      // 0 -> 200
	Dists     []string // nil -> {iid, noniid}
	Attacks   []string // nil -> {type1, type2}
	Fractions []float64
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *Fig3Options) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 60
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Dists == nil {
		o.Dists = []string{"iid", "noniid"}
	}
	if o.Attacks == nil {
		o.Attacks = []string{"type1", "type2"}
	}
	if o.Fractions == nil {
		o.Fractions = []float64{0.30, 0.50, 0.65}
	}
}

// Fig3Series is one curve with its identifying coordinates.
type Fig3Series struct {
	Dist     string
	Attack   string
	Fraction float64
	System   string // "abdhfl" or "vanilla"
	Series   metrics.Series
}

// Key returns the canonical file-name stem for the series.
func (s Fig3Series) Key() string {
	return fmt.Sprintf("fig3_%s_%s_%d_%s", s.Dist, s.Attack, int(s.Fraction*100), s.System)
}

// RunFig3 regenerates the Figure 3 curves: per scenario, mean accuracy per
// round with a 95% CI band over the repeats, for ABD-HFL and vanilla FL.
func RunFig3(o Fig3Options) ([]Fig3Series, error) {
	o.defaults()
	var out []Fig3Series
	for _, dist := range o.Dists {
		aggregator := "multi-krum"
		if dist == "noniid" {
			aggregator = "median"
		}
		for _, atk := range o.Attacks {
			for _, frac := range o.Fractions {
				s := abdhfl.Scenario{
					Distribution:      abdhfl.Distribution(dist),
					Attack:            abdhfl.Attack(atk),
					Aggregator:        aggregator,
					MaliciousFraction: frac,
					Rounds:            o.Rounds,
					SamplesPerClient:  o.Samples,
					EvalEvery:         1,
				}.WithDefaults()
				m, err := abdhfl.Build(s)
				if err != nil {
					return nil, err
				}
				m.Telemetry = o.Telemetry
				for system, fn := range map[string]func(uint64) (*core.Result, error){
					"abdhfl":  m.RunHFL,
					"vanilla": m.RunVanilla,
				} {
					series, err := abdhfl.Repeats(system, o.Repeats, fn)
					if err != nil {
						return nil, err
					}
					out = append(out, Fig3Series{
						Dist: dist, Attack: atk, Fraction: frac,
						System: system, Series: series,
					})
				}
			}
		}
	}
	return out, nil
}
