package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/telemetry"
)

// DelayCase is one row of the paper's Table VIII: a combination of partial-
// aggregation delay τ' and global-aggregation delay τ_g regimes.
type DelayCase struct {
	Name   string
	Timing pipeline.Timing
	// PaperAdvice is Table VIII's recommendation for this case.
	PaperAdvice string
}

// DelayCases returns the paper's four τ'/τ_g regimes with training time held
// fixed so the aggregation regimes dominate the comparison.
func DelayCases() []DelayCase {
	base := func(agg, global float64) pipeline.Timing {
		return pipeline.Timing{TrainBase: 100, TrainJitter: 0.3, AggBase: agg, AggJitter: 0.2, GlobalExtra: global}
	}
	return []DelayCase{
		{"big τ' / big τ_g", base(60, 120), "depends on other factors"},
		{"small τ' / small τ_g", base(5, 10), "flag level close to top"},
		{"small τ' / big τ_g", base(5, 200), "flag level close to top"},
		{"big τ' / small τ_g", base(60, 10), "depends on other factors"},
	}
}

// FlagSweepOptions parameterises the Eq. 3 efficiency sweep.
type FlagSweepOptions struct {
	Levels, ClusterSize, TopNodes int // 0 -> 4, 3, 3
	Rounds                        int // 0 -> 15
	Samples                       int // 0 -> 80
	Cases                         []DelayCase
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *FlagSweepOptions) defaults() {
	if o.Levels == 0 {
		o.Levels = 4
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 3
	}
	if o.TopNodes == 0 {
		o.TopNodes = 3
	}
	if o.Rounds == 0 {
		o.Rounds = 15
	}
	if o.Samples == 0 {
		o.Samples = 80
	}
	if o.Cases == nil {
		o.Cases = DelayCases()
	}
}

// FlagSweepRow holds one delay case's ν per flag level.
type FlagSweepRow struct {
	Case DelayCase
	// Nu[l] is the mean efficiency indicator with flag level l.
	Nu []float64
	// BestFlag is the flag level with the highest ν.
	BestFlag int
}

// RunFlagSweep measures the efficiency indicator ν = (σ_p+σ_g)/σ for every
// admissible flag level under every delay case.
func RunFlagSweep(o FlagSweepOptions) ([]FlagSweepRow, error) {
	o.defaults()
	base := abdhfl.Scenario{
		Levels: o.Levels, ClusterSize: o.ClusterSize, TopNodes: o.TopNodes,
		Rounds: o.Rounds, SamplesPerClient: o.Samples,
		TestSamples: 600, ValidationSamples: 400, EvalEvery: o.Rounds,
	}.WithDefaults()
	mat, err := abdhfl.Build(base)
	if err != nil {
		return nil, err
	}
	mat.Telemetry = o.Telemetry
	maxFlag := mat.Tree.Bottom() - 1
	var out []FlagSweepRow
	for _, dc := range o.Cases {
		row := FlagSweepRow{Case: dc}
		bestNu := -1.0
		for fl := 0; fl <= maxFlag; fl++ {
			res, err := mat.RunPipeline(1, fl, dc.Timing)
			if err != nil {
				return nil, err
			}
			row.Nu = append(row.Nu, res.MeanNu)
			if res.MeanNu > bestNu {
				bestNu = res.MeanNu
				row.BestFlag = fl
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FlagSweepTable renders the sweep.
func FlagSweepTable(rows []FlagSweepRow) metrics.Table {
	if len(rows) == 0 {
		return metrics.Table{}
	}
	header := []string{"delay case"}
	for fl := range rows[0].Nu {
		header = append(header, fmt.Sprintf("nu @ lF=%d", fl))
	}
	header = append(header, "advice")
	t := metrics.Table{Header: header}
	for _, r := range rows {
		row := []string{r.Case.Name}
		for _, nu := range r.Nu {
			row = append(row, fmt.Sprintf("%.3f", nu))
		}
		row = append(row, fmt.Sprintf("best nu at lF=%d; paper: %s", r.BestFlag, r.Case.PaperAdvice))
		t.Rows = append(t.Rows, row)
	}
	return t
}
