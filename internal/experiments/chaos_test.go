package experiments

import (
	"strings"
	"testing"
)

func chaosSmokeOptions() ChaosOptions {
	return ChaosOptions{
		Levels:      3,
		ClusterSize: 2,
		TopNodes:    2,
		Rounds:      3,
		Samples:     40,
		Seed:        3,
		FaultRates:  []float64{0, 0.2},
	}
}

func TestRunChaosSmoke(t *testing.T) {
	res, err := RunChaos(chaosSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	schemes := ChaosSchemes()
	if len(res) != 2*len(schemes) {
		t.Fatalf("cells = %d, want %d", len(res), 2*len(schemes))
	}
	for i, r := range res {
		if r.Scheme != schemes[i%len(schemes)].Name {
			t.Fatalf("cell %d scheme = %q", i, r.Scheme)
		}
		if r.CompletedRounds <= 0 {
			t.Fatalf("cell %d completed no rounds: %+v", i, r)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("cell %d accuracy = %v", i, r.Accuracy)
		}
		if r.FaultRate == 0 && (r.Dropped != 0 || r.Duplicated != 0) {
			t.Fatalf("fault-free cell %d has transport faults: %+v", i, r)
		}
	}
	table := ChaosTable(res).Render()
	if !strings.Contains(table, "mkrum/voting") || !strings.Contains(table, "sub-quorum") {
		t.Fatalf("table missing expected columns:\n%s", table)
	}
}

// TestRunChaosDeterministic pins the matrix's reproducibility contract: the
// same options yield the same cells, which is what makes the rendered
// results_chaos.txt diffable across machines and runs.
func TestRunChaosDeterministic(t *testing.T) {
	a, err := RunChaos(chaosSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(chaosSmokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
