package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

// CodecMatrixOptions parameterises the codec x rule x attack sweep: every
// update codec is run through the asynchronous pipeline engine on a
// bandwidth-limited network, crossed with aggregation schemes and data
// attacks, so one table answers "what does compression cost in accuracy and
// filter quality, and what does it buy in bytes and round latency".
type CodecMatrixOptions struct {
	Levels      int    // 0 -> 3
	ClusterSize int    // 0 -> 4
	TopNodes    int    // 0 -> 4
	Rounds      int    // 0 -> 15
	Samples     int    // 0 -> 60
	Seed        uint64 // 0 -> 1
	FlagLevel   int    // flag level for all runs; 0 -> 1
	// Malicious is the poisoned-device fraction for attacked cells; zero
	// selects 0.25.
	Malicious float64
	// RateBytes is the simulated per-link bandwidth in wire bytes per virtual
	// ms; zero selects 1500 (an identity-coded model then costs on the order
	// of a local-training pass per hop, so compression visibly shortens the
	// simulated round).
	RateBytes float64
	// PerMessage is the fixed per-message overhead in virtual ms; zero
	// selects 0.5.
	PerMessage float64
	// Codecs are the registry names under test; nil selects the full registry
	// (identity, int8, topk, delta) plus the delta-topk composition — raw
	// top-k on model weights is deliberately included as the cautionary row
	// next to its residual-coded form.
	Codecs []string
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *CodecMatrixOptions) defaults() {
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 4
	}
	if o.TopNodes == 0 {
		o.TopNodes = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 15
	}
	if o.Samples == 0 {
		o.Samples = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FlagLevel == 0 {
		o.FlagLevel = 1
	}
	if o.Malicious == 0 {
		o.Malicious = 0.25
	}
	if o.RateBytes == 0 {
		o.RateBytes = 1500
	}
	if o.PerMessage == 0 {
		o.PerMessage = 0.5
	}
	if o.Codecs == nil {
		o.Codecs = append(codec.Names(), "delta-topk")
	}
}

// CodecScheme is one aggregation configuration of the codec matrix: the
// unprotected mean baseline and the paper's BRA+CBA stack.
type CodecScheme struct {
	Name    string
	Partial string
	Top     string // BRA name, or "voting"
}

// CodecSchemes returns the default rule axis.
func CodecSchemes() []CodecScheme {
	return []CodecScheme{
		{Name: "mean/mean", Partial: "mean", Top: "mean"},
		{Name: "mkrum/voting", Partial: "multi-krum", Top: "voting"},
	}
}

// CodecMatrixResult is one (codec, scheme, attack) cell.
type CodecMatrixResult struct {
	Codec    string
	Scheme   string
	Attack   string
	Accuracy float64
	// Ratio is the codec's compression ratio (raw float64 bytes over wire
	// bytes) at the run's model dimension.
	Ratio float64
	// WireBytesPerRound is the total encoded traffic divided by completed
	// rounds.
	WireBytesPerRound int64
	// RoundLatency is the mean simulated time per completed round (virtual
	// ms) — the bandwidth model makes this codec-dependent.
	RoundLatency float64
	// Precision/Recall score the bottom-level filter against the known
	// Byzantine placement (1/1 for a clean population).
	Precision, Recall float64
	CompletedRounds   int
}

// RunCodecMatrix measures every codec under every scheme and attack on the
// same bandwidth-limited workload. Everything derives from the seed: the
// same options produce the same matrix, bit for bit.
func RunCodecMatrix(o CodecMatrixOptions) ([]CodecMatrixResult, error) {
	o.defaults()
	var out []CodecMatrixResult
	for _, att := range []abdhfl.Attack{abdhfl.AttackNone, abdhfl.AttackType1} {
		mal := o.Malicious
		if att == abdhfl.AttackNone {
			mal = 0
		}
		mats, err := abdhfl.Build(abdhfl.Scenario{
			Levels:            o.Levels,
			ClusterSize:       o.ClusterSize,
			TopNodes:          o.TopNodes,
			Rounds:            o.Rounds,
			SamplesPerClient:  o.Samples,
			TestSamples:       600,
			ValidationSamples: 400,
			Attack:            att,
			MaliciousFraction: mal,
			Placement:         abdhfl.PlaceRandom,
			Seed:              o.Seed,
			EvalEvery:         1,
		})
		if err != nil {
			return nil, err
		}
		mats.Telemetry = o.Telemetry
		for _, scheme := range CodecSchemes() {
			for _, name := range o.Codecs {
				c, err := codec.ByName(name)
				if err != nil {
					return nil, err
				}
				scorer := NewFilterScorer(mats.Tree, mats.Byzantine)
				mats.OnFilter = scorer.Observe
				cfg, err := mats.PipelineConfig(o.Seed, o.FlagLevel, pipeline.DefaultTiming())
				if err != nil {
					return nil, err
				}
				cfg.EvalEvery = 1
				cfg.Codec = c
				cfg.Latency = simnet.Bandwidth{
					Base:       simnet.Fixed(1),
					Rate:       o.RateBytes,
					PerMessage: o.PerMessage,
				}
				if cfg.PartialBRA, err = aggregate.ByName(scheme.Partial); err != nil {
					return nil, err
				}
				if scheme.Top == "voting" {
					voting := consensus.Voting{}
					cfg.TopVoting = &voting
				} else {
					cfg.TopVoting = nil
					if cfg.TopBRA, err = aggregate.ByName(scheme.Top); err != nil {
						return nil, err
					}
				}
				res, err := pipeline.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("codec matrix %s/%s/%s: %w", name, scheme.Name, att, err)
				}
				cell := CodecMatrixResult{
					Codec:           name,
					Scheme:          scheme.Name,
					Attack:          string(att),
					Accuracy:        res.FinalAccuracy,
					CompletedRounds: res.CompletedRounds,
					Precision:       1,
					Recall:          1,
				}
				if dim := len(res.FinalParams); dim > 0 {
					cell.Ratio = float64(8*dim) / float64(c.WireBytes(dim))
				}
				if res.CompletedRounds > 0 {
					cell.WireBytesPerRound = res.WireBytes / int64(res.CompletedRounds)
					cell.RoundLatency = float64(res.Duration) / float64(res.CompletedRounds)
				}
				if bottom := mats.Tree.Bottom(); bottom < len(scorer.Levels) {
					ls := scorer.Levels[bottom]
					cell.Precision, cell.Recall = ls.Precision(), ls.Recall()
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}

// CodecMatrixTable renders the sweep.
func CodecMatrixTable(results []CodecMatrixResult) metrics.Table {
	t := metrics.Table{Header: []string{
		"attack", "scheme", "codec", "accuracy", "ratio", "wire KB/round", "round vms", "filter prec", "filter recall", "rounds",
	}}
	for _, r := range results {
		t.AddRow(
			r.Attack,
			r.Scheme,
			r.Codec,
			metrics.Pct(r.Accuracy),
			fmt.Sprintf("%.1fx", r.Ratio),
			fmt.Sprintf("%.0f", float64(r.WireBytesPerRound)/1024),
			fmt.Sprintf("%.0f", r.RoundLatency),
			metrics.Pct(r.Precision),
			metrics.Pct(r.Recall),
			fmt.Sprint(r.CompletedRounds),
		)
	}
	return t
}
