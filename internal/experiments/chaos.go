package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/fault"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
)

// ChaosOptions parameterises the fault-rate x scheme resilience matrix: each
// aggregation scheme is run through the asynchronous pipeline engine under a
// composed fault plan (transport loss, duplication, reordering, crashes,
// churn) whose intensity scales with the fault rate.
type ChaosOptions struct {
	Levels      int     // 0 -> 3
	ClusterSize int     // 0 -> 4
	TopNodes    int     // 0 -> 4
	Rounds      int     // 0 -> 20
	Samples     int     // 0 -> 80
	Seed        uint64  // 0 -> 1
	FlagLevel   int     // flag level for all runs; 0 -> 1
	Quorum      float64 // 0 -> 0.75
	// Malicious is the Type I data-poisoning fraction layered under the
	// faults, so the scheme axis measures Byzantine robustness while the
	// rate axis measures fault tolerance; zero selects 0.25 (use a negative
	// value for a clean population).
	Malicious float64
	// ConvergeAt is the accuracy that defines "converged" for the
	// rounds-to-converge column; zero selects 0.40.
	ConvergeAt float64
	// FaultRates are the plan intensities; nil selects {0, 0.1, 0.2, 0.3}.
	FaultRates []float64
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
	// Trace, if non-nil, records causal spans from every cell's run into one
	// shared tracer (rounds repeat across cells, so the merged stream is only
	// meaningful for capacity/overflow inspection and export — use
	// RunTracePaths for single-run critical-path analysis).
	Trace *trace.Tracer
}

func (o *ChaosOptions) defaults() {
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 4
	}
	if o.TopNodes == 0 {
		o.TopNodes = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.Samples == 0 {
		o.Samples = 80
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FlagLevel == 0 {
		o.FlagLevel = 1
	}
	if o.Quorum == 0 {
		o.Quorum = 0.75
	}
	if o.Malicious == 0 {
		o.Malicious = 0.25
	}
	if o.Malicious < 0 {
		o.Malicious = 0
	}
	if o.ConvergeAt == 0 {
		o.ConvergeAt = 0.40
	}
	if o.FaultRates == nil {
		o.FaultRates = []float64{0, 0.1, 0.2, 0.3}
	}
}

// ChaosScheme is one aggregation configuration under test.
type ChaosScheme struct {
	Name    string
	Partial string // BRA registry name for intermediate levels
	Top     string // BRA registry name, or "voting" for the CBA top
}

// ChaosSchemes is the default scheme ladder: an unprotected mean baseline,
// two pure-BRA stacks, and the paper's BRA+CBA combination.
func ChaosSchemes() []ChaosScheme {
	return []ChaosScheme{
		{Name: "mean/mean", Partial: "mean", Top: "mean"},
		{Name: "median/median", Partial: "median", Top: "median"},
		{Name: "mkrum/median", Partial: "multi-krum", Top: "median"},
		{Name: "mkrum/voting", Partial: "multi-krum", Top: "voting"},
	}
}

// ChaosPlan composes the fault plan for one intensity: message loss at the
// rate itself, duplication at half, reordering on a quarter of messages,
// an eighth of the devices crashed mid-run and another eighth churned out
// for two rounds. Rate 0 is a genuinely fault-free run (nil plan).
func ChaosPlan(seed uint64, rate float64, devices, rounds int) *fault.Plan {
	if rate <= 0 {
		return nil
	}
	crash := int(rate * float64(devices) / 2)
	churn := crash
	return fault.Merge(
		fault.Lossy(seed, rate, rate/2, 15),
		fault.CrashDevices(seed, devices, crash, rounds/3+1),
		fault.ChurnDevices(seed+1, devices, churn, 1, 3),
	)
}

// ChaosResult is one (fault rate, scheme) cell of the resilience matrix.
type ChaosResult struct {
	FaultRate float64
	Scheme    string
	Accuracy  float64
	// CompletedRounds of the configured budget (degradation, not failure,
	// under heavy fault rates).
	CompletedRounds int
	// RoundsToConverge is the first completed round whose accuracy reached
	// the ConvergeAt threshold, or -1 if the run never got there.
	RoundsToConverge int
	// MeanNu is the pipeline-efficiency indicator of Eq. (3), averaged over
	// measured rounds.
	MeanNu float64
	// SubQuorum and Abandoned count degraded and given-up collections;
	// Dropped/Duplicated are the transport-fault tallies.
	SubQuorum, Abandoned int
	Dropped, Duplicated  int
}

// RunChaos measures every scheme at every fault rate on the same workload.
// Everything is derived from the seed: the same options produce the same
// matrix, bit for bit.
func RunChaos(o ChaosOptions) ([]ChaosResult, error) {
	o.defaults()
	mats, err := abdhfl.Build(abdhfl.Scenario{
		Levels:            o.Levels,
		ClusterSize:       o.ClusterSize,
		TopNodes:          o.TopNodes,
		Rounds:            o.Rounds,
		SamplesPerClient:  o.Samples,
		TestSamples:       600,
		ValidationSamples: 400,
		Attack:            abdhfl.AttackType1,
		MaliciousFraction: o.Malicious,
		Placement:         abdhfl.PlaceRandom,
		Seed:              o.Seed,
		EvalEvery:         1,
	})
	if err != nil {
		return nil, err
	}
	mats.Telemetry = o.Telemetry
	mats.Trace = o.Trace
	if o.Trace != nil && o.Telemetry != nil && o.Trace.DroppedCounter == nil {
		o.Trace.DroppedCounter = o.Telemetry.Counter("abdhfl_trace_dropped_total")
	}

	var out []ChaosResult
	for _, rate := range o.FaultRates {
		plan := ChaosPlan(o.Seed, rate, mats.Tree.NumDevices(), o.Rounds)
		for _, scheme := range ChaosSchemes() {
			cfg, err := mats.PipelineConfig(o.Seed, o.FlagLevel, pipeline.DefaultTiming())
			if err != nil {
				return nil, err
			}
			cfg.Quorum = o.Quorum
			// A safety-net deadline: well above the natural round period, so
			// sub-quorum closes happen because inputs are LOST, not because the
			// protocol is impatient.
			cfg.CollectTimeout = 1200
			cfg.Faults = plan
			cfg.EvalEvery = 1
			if cfg.PartialBRA, err = aggregate.ByName(scheme.Partial); err != nil {
				return nil, err
			}
			if scheme.Top == "voting" {
				voting := consensus.Voting{}
				cfg.TopVoting = &voting
			} else {
				cfg.TopVoting = nil
				if cfg.TopBRA, err = aggregate.ByName(scheme.Top); err != nil {
					return nil, err
				}
			}
			res, err := pipeline.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("chaos rate=%v scheme=%s: %w", rate, scheme.Name, err)
			}
			converge := -1
			for _, p := range res.Curve {
				if p.Accuracy >= o.ConvergeAt {
					converge = p.Round
					break
				}
			}
			out = append(out, ChaosResult{
				FaultRate:        rate,
				Scheme:           scheme.Name,
				Accuracy:         res.FinalAccuracy,
				CompletedRounds:  res.CompletedRounds,
				RoundsToConverge: converge,
				MeanNu:           res.MeanNu,
				SubQuorum:        res.SubQuorum,
				Abandoned:        res.Abandoned,
				Dropped:          res.Network.Dropped,
				Duplicated:       res.Network.Duplicated,
			})
		}
	}
	return out, nil
}

// ChaosTable renders the resilience matrix.
func ChaosTable(results []ChaosResult) metrics.Table {
	t := metrics.Table{Header: []string{
		"fault rate", "scheme", "accuracy", "rounds done", "converge@", "mean nu", "sub-quorum", "abandoned", "dropped", "dup",
	}}
	for _, r := range results {
		conv := "-"
		if r.RoundsToConverge >= 0 {
			conv = fmt.Sprintf("r%d", r.RoundsToConverge)
		}
		t.AddRow(
			metrics.Pct(r.FaultRate),
			r.Scheme,
			metrics.Pct(r.Accuracy),
			fmt.Sprint(r.CompletedRounds),
			conv,
			fmt.Sprintf("%.3f", r.MeanNu),
			fmt.Sprint(r.SubQuorum),
			fmt.Sprint(r.Abandoned),
			fmt.Sprint(r.Dropped),
			fmt.Sprint(r.Duplicated),
		)
	}
	return t
}
