// Package experiments contains the programmatic generators behind every
// table and figure of the paper's evaluation. Each generator takes an
// options struct (zero values select laptop-scale defaults), runs the
// necessary simulations, and returns structured results that render to the
// text/CSV tables the cmd/ tools print — so the experiment logic itself is
// unit-testable and reusable from Go code.
package experiments

import (
	"abdhfl"
	"abdhfl/internal/core"
	"abdhfl/internal/metrics"
	"abdhfl/internal/telemetry"
)

// Table5Options parameterises the Table V regeneration.
type Table5Options struct {
	Rounds    int       // global rounds per run (paper: 200); 0 -> 60
	Repeats   int       // repeated runs per cell (paper: 5); 0 -> 3
	Samples   int       // samples per client (paper: 937); 0 -> 200
	Fractions []float64 // malicious proportions; nil -> the paper's nine
	// Progress, if non-nil, receives one line per completed cell.
	Progress func(format string, args ...any)
	// Telemetry, if non-nil, accumulates every run's engine metrics (see
	// internal/telemetry); typically telemetry.MaybeServe's registry.
	Telemetry *telemetry.Registry
}

func (o *Table5Options) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 60
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Fractions == nil {
		o.Fractions = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.578, 0.65}
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// Table5Family identifies one (distribution, attack) row pair of Table V.
type Table5Family struct {
	Distribution abdhfl.Distribution
	Aggregator   string
	Attack       abdhfl.Attack
}

// Table5Families returns the paper's four families: IID with MultiKrum and
// non-IID with Median, each under Type I and Type II poisoning.
func Table5Families() []Table5Family {
	return []Table5Family{
		{abdhfl.DistIID, "multi-krum", abdhfl.AttackType1},
		{abdhfl.DistIID, "multi-krum", abdhfl.AttackType2},
		{abdhfl.DistNonIID, "median", abdhfl.AttackType1},
		{abdhfl.DistNonIID, "median", abdhfl.AttackType2},
	}
}

// Table5Cell is one measured cell: mean final accuracy with its 95% CI
// half-width, for both systems.
type Table5Cell struct {
	Fraction                float64
	ABDHFL, Vanilla         float64
	ABDHFLHalf, VanillaHalf float64
}

// Table5Row is one family's sweep.
type Table5Row struct {
	Family Table5Family
	Cells  []Table5Cell
}

// Table5Result is the full regenerated table.
type Table5Result struct {
	Options Table5Options
	Rows    []Table5Row
	// Bound is the Theorem 2 tolerance of the default topology.
	Bound float64
}

// RunTable5 regenerates Table V.
func RunTable5(o Table5Options) (*Table5Result, error) {
	o.defaults()
	res := &Table5Result{Options: o, Bound: abdhfl.TheoreticalBound(abdhfl.Scenario{})}
	for _, fam := range Table5Families() {
		row := Table5Row{Family: fam}
		for _, frac := range o.Fractions {
			s := abdhfl.Scenario{
				Distribution:      fam.Distribution,
				Aggregator:        fam.Aggregator,
				Attack:            fam.Attack,
				MaliciousFraction: frac,
				Rounds:            o.Rounds,
				SamplesPerClient:  o.Samples,
				EvalEvery:         o.Rounds,
			}.WithDefaults()
			if frac == 0 {
				s.Attack = abdhfl.AttackNone
			}
			m, err := abdhfl.Build(s)
			if err != nil {
				return nil, err
			}
			m.Telemetry = o.Telemetry
			abd, err := abdhfl.Repeats("abd", o.Repeats, func(seed uint64) (*core.Result, error) {
				return m.RunHFL(seed)
			})
			if err != nil {
				return nil, err
			}
			van, err := abdhfl.Repeats("van", o.Repeats, func(seed uint64) (*core.Result, error) {
				return m.RunVanilla(seed)
			})
			if err != nil {
				return nil, err
			}
			af, vf := abd.Final(), van.Final()
			row.Cells = append(row.Cells, Table5Cell{
				Fraction:    frac,
				ABDHFL:      af.Mean,
				Vanilla:     vf.Mean,
				ABDHFLHalf:  af.Mean - af.Lo,
				VanillaHalf: vf.Mean - vf.Lo,
			})
			o.Progress("%-7s %-6s mal=%-6s ABD-HFL=%-7s Vanilla=%-7s",
				fam.Distribution, fam.Attack, metrics.Pct(frac),
				metrics.Pct(af.Mean), metrics.Pct(vf.Mean))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result in the paper's row layout.
func (r *Table5Result) Table() metrics.Table {
	header := []string{"distribution", "attack", "model"}
	for _, f := range r.Options.Fractions {
		header = append(header, metrics.Pct(f))
	}
	t := metrics.Table{Header: header}
	for _, row := range r.Rows {
		abd := []string{string(row.Family.Distribution), string(row.Family.Attack), "ABD-HFL"}
		van := []string{string(row.Family.Distribution), string(row.Family.Attack), "Vanilla FL"}
		for _, c := range row.Cells {
			abd = append(abd, metrics.Pct(c.ABDHFL))
			van = append(van, metrics.Pct(c.Vanilla))
		}
		t.Rows = append(t.Rows, abd, van)
	}
	return t
}

// CollapsePoint returns the lowest malicious fraction at which the given
// system's accuracy falls below threshold for a family, or -1 if it never
// does — the "where does it break" summary used by analyses and tests.
func (r *Table5Result) CollapsePoint(family int, vanilla bool, threshold float64) float64 {
	if family < 0 || family >= len(r.Rows) {
		return -1
	}
	for _, c := range r.Rows[family].Cells {
		acc := c.ABDHFL
		if vanilla {
			acc = c.Vanilla
		}
		if acc < threshold {
			return c.Fraction
		}
	}
	return -1
}
