package experiments

import (
	"fmt"

	"abdhfl"
	"abdhfl/internal/metrics"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/telemetry"
)

// TradeoffOptions parameterises the flag-level trade-off study: the accuracy
// side of §III-D2 (deeper flag levels raise ν and shorten wall-clock but pay
// staleness), complementing the ν-only sweep of Table VIII.
type TradeoffOptions struct {
	Levels, ClusterSize, TopNodes int // 0 -> 3, 4, 4
	Rounds                        int // 0 -> 20
	Samples                       int // 0 -> 100
	Timing                        pipeline.Timing
	// Telemetry, if non-nil, accumulates every run's engine metrics.
	Telemetry *telemetry.Registry
}

func (o *TradeoffOptions) defaults() {
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.ClusterSize == 0 {
		o.ClusterSize = 4
	}
	if o.TopNodes == 0 {
		o.TopNodes = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.Samples == 0 {
		o.Samples = 100
	}
	if o.Timing == (pipeline.Timing{}) {
		o.Timing = pipeline.DefaultTiming()
	}
}

// TradeoffRow is one flag level's measured efficiency/accuracy pair.
type TradeoffRow struct {
	FlagLevel int
	MeanNu    float64
	// Duration is the virtual time to complete all rounds.
	Duration float64
	// Accuracy is the final test accuracy at the fixed round count.
	Accuracy float64
	// Merges counts correction-factor applications.
	Merges int
}

// RunTradeoff measures, for every admissible flag level, the efficiency
// indicator, virtual duration, and final accuracy at a fixed round budget.
func RunTradeoff(o TradeoffOptions) ([]TradeoffRow, error) {
	o.defaults()
	base := abdhfl.Scenario{
		Levels: o.Levels, ClusterSize: o.ClusterSize, TopNodes: o.TopNodes,
		Rounds: o.Rounds, SamplesPerClient: o.Samples,
		TestSamples: 600, ValidationSamples: 400, EvalEvery: o.Rounds,
	}.WithDefaults()
	mat, err := abdhfl.Build(base)
	if err != nil {
		return nil, err
	}
	mat.Telemetry = o.Telemetry
	var out []TradeoffRow
	for fl := 0; fl <= mat.Tree.Bottom()-1; fl++ {
		res, err := mat.RunPipeline(1, fl, o.Timing)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffRow{
			FlagLevel: fl,
			MeanNu:    res.MeanNu,
			Duration:  float64(res.Duration),
			Accuracy:  res.FinalAccuracy,
			Merges:    res.MergedGlobals,
		})
	}
	return out, nil
}

// TradeoffTable renders the trade-off study.
func TradeoffTable(rows []TradeoffRow) metrics.Table {
	t := metrics.Table{Header: []string{"flag level", "mean nu", "virtual ms", "accuracy", "merges"}}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.FlagLevel),
			fmt.Sprintf("%.3f", r.MeanNu),
			fmt.Sprintf("%.0f", r.Duration),
			metrics.Pct(r.Accuracy),
			fmt.Sprint(r.Merges),
		)
	}
	return t
}
