package topology

import (
	"fmt"
	"math"
)

// This file implements the paper's Byzantine-tolerance theory as executable
// functions: Theorem 1 (p-ratio two-type m-ary trees), Theorem 2 and its
// corollaries (ECSM tolerance per level), and Theorem 3 (ACSM tolerance via
// the relative reliable number ψ).

// TypeICountAtLevel returns the number of type-I (honest) nodes at level l
// of a p-ratio two-type complete m-ary tree: (p*m)^l (Theorem 1). Level 0 is
// the root.
func TypeICountAtLevel(p float64, m, l int) float64 {
	return math.Pow(p*float64(m), float64(l))
}

// TypeIProportionAtLevel returns the proportion of type-I nodes at level l
// of a p-ratio two-type complete m-ary tree: p^l (Theorem 1).
func TypeIProportionAtLevel(p float64, l int) float64 {
	return math.Pow(p, float64(l))
}

// MaxByzantineProportion returns the maximum proportion of Byzantine nodes
// tolerated at level l of an ECSM ABD-HFL with property γ1-γ2:
// 1 - (1-γ1)(1-γ2)^l (Theorem 2). Level 0 is the top.
func MaxByzantineProportion(gamma1, gamma2 float64, l int) float64 {
	return 1 - (1-gamma1)*math.Pow(1-gamma2, float64(l))
}

// MaxByzantineCount returns the maximum number of Byzantine nodes tolerated
// at level l of an ECSM ABD-HFL with nt top nodes and branching m:
// nt*m^l - (1-γ1)*nt*((1-γ2)*m)^l (Theorem 2).
func MaxByzantineCount(nt, m int, gamma1, gamma2 float64, l int) float64 {
	total := float64(nt) * math.Pow(float64(m), float64(l))
	honest := (1 - gamma1) * float64(nt) * math.Pow((1-gamma2)*float64(m), float64(l))
	return total - honest
}

// ACSMMaxByzantineProportion returns the ACSM upper bound of Theorem 3:
// P_l <= 1 - (1-γ2)*ψ, where ψ is the relative reliable number of the level
// (the fraction of the level's nodes living in honest clusters).
func ACSMMaxByzantineProportion(gamma2, psi float64) float64 {
	return 1 - (1-gamma2)*psi
}

// RelativeReliableNumber computes ψ_l for a concrete level of a tree given
// the per-cluster Byzantine counts: the fraction of the level's nodes that
// live in clusters whose Byzantine proportion does not exceed the cluster
// tolerance (Definition 7).
func RelativeReliableNumber(t *Tree, level int, byzantine map[int]bool, clusterTolerance float64) float64 {
	totalNodes := 0
	honestClusterNodes := 0
	for _, c := range t.Clusters[level] {
		totalNodes += c.Size()
		byz := 0
		for _, m := range c.Members {
			if byzantine[m] {
				byz++
			}
		}
		if float64(byz) <= clusterTolerance*float64(c.Size()) {
			honestClusterNodes += c.Size()
		}
	}
	if totalNodes == 0 {
		return 0
	}
	return float64(honestClusterNodes) / float64(totalNodes)
}

// Tolerance describes an ABD-HFL γ1-γ2 property (Definition 3): γ1 is the
// maximum Byzantine proportion the top-level aggregation filters, γ2 the
// per-cluster maximum at every other level.
type Tolerance struct {
	Gamma1, Gamma2 float64
}

// BottomBound returns the tolerated Byzantine proportion at the bottom level
// of a tree of the given depth, e.g. 57.8125% for γ1=γ2=25% and depth 3
// (bottom level index 2), matching §V-A of the paper.
func (tol Tolerance) BottomBound(depth int) float64 {
	return MaxByzantineProportion(tol.Gamma1, tol.Gamma2, depth-1)
}

// AdversarialPlacement computes, by explicit greedy placement on a concrete
// tree, the worst-case set of Byzantine bottom devices that per-level
// filtering still survives: floor(γ1*Nt) top nodes get fully-Byzantine
// subtrees, and within every surviving honest cluster floor(γ2*size) members
// get fully-Byzantine subtrees, recursively. The returned set attains the
// Theorem 2 count on ECSM trees and is used by property tests and the
// end-to-end bound experiments.
func (tol Tolerance) AdversarialPlacement(t *Tree) map[int]bool {
	byz := make(map[int]bool)
	top := t.Top()
	nTopByz := int(math.Floor(tol.Gamma1 * float64(top.Size())))
	// The top cluster's members are leaders of level-1 clusters (bottom
	// clusters in a 2-level tree). Sacrifice the last nTopByz members'
	// entire subtrees, then recurse into the remaining honest members'
	// clusters.
	for ci, child := range t.ChildClusters(0, 0) {
		if ci >= top.Size()-nTopByz {
			for _, leaf := range t.LeafDescendants(child.Level, child.Index) {
				byz[leaf] = true
			}
			continue
		}
		tol.placeInCluster(t, child, byz)
	}
	return byz
}

// placeInCluster marks floor(γ2*size) members' subtrees fully Byzantine and
// recurses into the rest.
func (tol Tolerance) placeInCluster(t *Tree, c *Cluster, byz map[int]bool) {
	nByz := int(math.Floor(tol.Gamma2 * float64(c.Size())))
	if c.Level == t.Bottom() {
		for i := c.Size() - nByz; i < c.Size(); i++ {
			byz[c.Members[i]] = true
		}
		return
	}
	children := t.ChildClusters(c.Level, c.Index)
	for ci, child := range children {
		if ci >= c.Size()-nByz {
			for _, leaf := range t.LeafDescendants(child.Level, child.Index) {
				byz[leaf] = true
			}
			continue
		}
		tol.placeInCluster(t, child, byz)
	}
}

// PrefixPlacement marks the first k bottom devices Byzantine — the
// evaluation's placement ("clients are ordered by client id from 0 to 63",
// malicious proportion taken from the low ids).
func PrefixPlacement(t *Tree, k int) map[int]bool {
	if k < 0 || k > t.NumDevices() {
		panic(fmt.Sprintf("topology: prefix placement of %d devices out of %d", k, t.NumDevices()))
	}
	byz := make(map[int]bool, k)
	for id := 0; id < k; id++ {
		byz[id] = true
	}
	return byz
}

// SurvivesFiltering simulates ideal per-level filtering on a concrete
// Byzantine placement: a bottom cluster produces an honest partial model iff
// its Byzantine proportion is at most γ2; an upper cluster produces an
// honest partial model iff the proportion of Byzantine partials among its
// children is at most γ2 (γ1 at the top). It reports whether the global
// model aggregation receives an acceptable set, i.e. whether the placement
// is within the structure's tolerance.
func (tol Tolerance) SurvivesFiltering(t *Tree, byzantine map[int]bool) bool {
	// poisoned[level][clusterIndex] — whether the cluster's output is
	// Byzantine.
	bottom := t.Bottom()
	poisoned := make(map[int]bool)
	for i, c := range t.Clusters[bottom] {
		byz := 0
		for _, m := range c.Members {
			if byzantine[m] {
				byz++
			}
		}
		poisoned[i] = float64(byz) > tol.Gamma2*float64(c.Size())
	}
	for l := bottom - 1; l >= 1; l-- {
		next := make(map[int]bool)
		for i := range t.Clusters[l] {
			children := t.ChildClusters(l, i)
			byz := 0
			for _, ch := range children {
				if poisoned[ch.Index] {
					byz++
				}
			}
			next[i] = float64(byz) > tol.Gamma2*float64(len(children))
		}
		poisoned = next
	}
	// Top level: γ1 of the incoming partials may be Byzantine.
	children := t.ChildClusters(0, 0)
	if len(children) == 0 {
		// 2-level tree: members are the devices themselves.
		byz := 0
		for _, m := range t.Top().Members {
			if byzantine[m] {
				byz++
			}
		}
		return float64(byz) <= tol.Gamma1*float64(t.Top().Size())
	}
	byz := 0
	for _, ch := range children {
		if poisoned[ch.Index] {
			byz++
		}
	}
	return float64(byz) <= tol.Gamma1*float64(len(children))
}
