package topology_test

import (
	"fmt"

	"abdhfl/internal/topology"
)

// The paper's evaluation topology: 3 levels, cluster size 4, 4 top nodes.
func ExampleNewECSM() {
	tree, err := topology.NewECSM(3, 4, 4)
	if err != nil {
		panic(err)
	}
	fmt.Print(tree.Summary())
	// Output:
	// L0 (top): 1 clusters (1x4)
	// L1 (intermediate): 4 clusters (4x4)
	// L2 (bottom): 16 clusters (16x4)
}

// Theorem 2's per-level tolerance: deeper trees tolerate more Byzantine
// devices at the bottom (Corollary 3).
func ExampleTolerance_BottomBound() {
	tol := topology.Tolerance{Gamma1: 0.25, Gamma2: 0.25}
	for depth := 2; depth <= 4; depth++ {
		fmt.Printf("depth %d: %.4f\n", depth, tol.BottomBound(depth))
	}
	// Output:
	// depth 2: 0.4375
	// depth 3: 0.5781
	// depth 4: 0.6836
}

// The bound-attaining adversarial placement marks exactly 37 of 64 devices
// on the paper's tree — and ideal per-level filtering survives it.
func ExampleTolerance_AdversarialPlacement() {
	tree, _ := topology.NewECSM(3, 4, 4)
	tol := topology.Tolerance{Gamma1: 0.25, Gamma2: 0.25}
	placement := tol.AdversarialPlacement(tree)
	fmt.Println(len(placement), "Byzantine devices")
	fmt.Println("survives filtering:", tol.SurvivesFiltering(tree, placement))
	// Output:
	// 37 Byzantine devices
	// survives filtering: true
}
