package topology

// Rotate returns a new tree with every bottom cluster's leadership rotated
// by k positions (leader = members[k mod size]) and all upper levels rebuilt
// from the new leaders, preserving the cluster grouping. It models the
// paper's leader election over time: "all leader nodes are initially elected
// from the bottom layer" — periodic re-election distributes the aggregation
// burden and limits how long a single device holds upper-level power.
//
// The receiver is not modified.
func (t *Tree) Rotate(k int) (*Tree, error) {
	if k < 0 {
		k = -k
	}
	bottom := t.Bottom()
	// Collect bottom clusters with rotated leaders; remember the grouping of
	// bottom clusters into parents so upper levels keep their shape.
	out := &Tree{
		Clusters: make([][]*Cluster, t.Depth()),
		parentOf: make([][]int, t.Depth()),
	}
	out.Clusters[bottom] = make([]*Cluster, len(t.Clusters[bottom]))
	for i, c := range t.Clusters[bottom] {
		members := append([]int(nil), c.Members...)
		out.Clusters[bottom][i] = &Cluster{
			Level:   bottom,
			Index:   i,
			Members: members,
			Leader:  members[k%len(members)],
		}
	}
	// Rebuild each upper level: cluster (l, i) keeps grouping the same child
	// clusters as in t, but its members are the children's NEW leaders, and
	// its own leader rotates by k within the cluster.
	for l := bottom - 1; l >= 0; l-- {
		out.Clusters[l] = make([]*Cluster, len(t.Clusters[l]))
		out.parentOf[l+1] = make([]int, len(t.Clusters[l+1]))
		for i := range t.Clusters[l] {
			var members []int
			for ci := range t.Clusters[l+1] {
				if t.parentOf[l+1][ci] == i {
					members = append(members, out.Clusters[l+1][ci].Leader)
					out.parentOf[l+1][ci] = i
				}
			}
			out.Clusters[l][i] = &Cluster{
				Level:   l,
				Index:   i,
				Members: members,
				Leader:  members[k%len(members)],
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
