package topology

import (
	"fmt"

	"abdhfl/internal/rng"
)

// NewACSM builds an Arbitrary Cluster Size Model tree over the given number
// of devices: bottom clusters are drawn with sizes uniform in [minSize,
// maxSize], and levels are stacked bottom-up (grouping leaders into
// random-size clusters) until at most maxTop leaders remain, which become
// the top cluster. Device ids are assigned consecutively in id order, as in
// ECSM.
func NewACSM(r *rng.RNG, devices, minSize, maxSize, maxTop int) (*Tree, error) {
	if devices < 2 {
		return nil, fmt.Errorf("topology: ACSM needs >= 2 devices, got %d", devices)
	}
	if minSize < 1 || maxSize < minSize {
		return nil, fmt.Errorf("topology: ACSM invalid cluster size range [%d, %d]", minSize, maxSize)
	}
	if maxTop < 2 {
		return nil, fmt.Errorf("topology: ACSM needs maxTop >= 2")
	}

	// Build levels bottom-up as slices of member lists, then reverse.
	ids := make([]int, devices)
	for i := range ids {
		ids[i] = i
	}
	var levelsUp [][][]int // levelsUp[0] = bottom
	current := ids
	for len(current) > maxTop {
		var clusters [][]int
		pos := 0
		for pos < len(current) {
			size := minSize
			if maxSize > minSize {
				size += r.Intn(maxSize - minSize + 1)
			}
			if rem := len(current) - pos; size > rem {
				size = rem
			}
			// Avoid leaving an undersized trailing cluster: absorb a short
			// remainder into the last cluster.
			if rem := len(current) - (pos + size); rem > 0 && rem < minSize {
				size += rem
			}
			clusters = append(clusters, append([]int(nil), current[pos:pos+size]...))
			pos += size
		}
		levelsUp = append(levelsUp, clusters)
		leaders := make([]int, len(clusters))
		for i, c := range clusters {
			leaders[i] = c[0]
		}
		if len(leaders) == len(current) {
			return nil, fmt.Errorf("topology: ACSM failed to reduce level size %d", len(current))
		}
		current = leaders
	}
	levelsUp = append(levelsUp, [][]int{append([]int(nil), current...)})

	// Convert to a Tree (top = level 0).
	depth := len(levelsUp)
	t := &Tree{
		Clusters: make([][]*Cluster, depth),
		parentOf: make([][]int, depth),
	}
	for l := 0; l < depth; l++ {
		raw := levelsUp[depth-1-l]
		t.Clusters[l] = make([]*Cluster, len(raw))
		for i, members := range raw {
			t.Clusters[l][i] = &Cluster{Level: l, Index: i, Members: members, Leader: members[0]}
		}
	}
	// Fill parent links: the parent of cluster (l, i) is the level l-1
	// cluster containing its leader.
	for l := 1; l < depth; l++ {
		t.parentOf[l] = make([]int, len(t.Clusters[l]))
		for i, c := range t.Clusters[l] {
			found := -1
			for pi, p := range t.Clusters[l-1] {
				if p.Contains(c.Leader) {
					found = pi
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("topology: ACSM leader %d of (%d,%d) missing above", c.Leader, l, i)
			}
			t.parentOf[l][i] = found
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
