// Package topology builds and analyses the ABD-HFL tree: a leaf-derived
// hierarchy of learning clusters in which every cluster leader is also a
// member of a cluster one level up, and the top level is a single
// leaderless-capable cluster of peers. It implements both the Equal Cluster
// Size Model (ECSM — every non-top cluster has m members) and the Arbitrary
// Cluster Size Model (ACSM), plus the paper's Byzantine-tolerance theory
// (Theorems 1-3 and corollaries) as executable functions.
package topology

import "fmt"

// Cluster is one learning cluster: an ordered set of device ids with a
// designated leader (the leader is always a member). At the top level the
// leader is only used by BRA-configured runs; CBA treats all members as
// equals.
type Cluster struct {
	Level   int
	Index   int
	Members []int
	Leader  int
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.Members) }

// Contains reports whether device id is a member.
func (c *Cluster) Contains(id int) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Tree is an ABD-HFL hierarchy. Devices are identified by their bottom-level
// id in [0, NumDevices); a device that leads its cluster also appears as a
// member at the level above, recursively up to the top.
//
// Levels are indexed as in the paper: level 0 is the top, level Depth()-1 is
// the bottom.
type Tree struct {
	// Clusters[l] lists the clusters of level l.
	Clusters [][]*Cluster
	// parentOf[l][i] is the index of the level l-1 cluster containing the
	// leader of Clusters[l][i] (undefined for l == 0).
	parentOf [][]int
}

// Depth returns the number of levels (the paper's L+1).
func (t *Tree) Depth() int { return len(t.Clusters) }

// Bottom returns the bottom level index (the paper's L).
func (t *Tree) Bottom() int { return t.Depth() - 1 }

// NumDevices returns the number of bottom-level devices.
func (t *Tree) NumDevices() int {
	n := 0
	for _, c := range t.Clusters[t.Bottom()] {
		n += c.Size()
	}
	return n
}

// Top returns the single top-level cluster.
func (t *Tree) Top() *Cluster { return t.Clusters[0][0] }

// Parent returns the cluster at level l-1 that the leader of cluster
// (l, idx) belongs to. It panics for the top level.
func (t *Tree) Parent(l, idx int) *Cluster {
	if l == 0 {
		panic("topology: top-level cluster has no parent")
	}
	return t.Clusters[l-1][t.parentOf[l][idx]]
}

// ChildClusters returns the clusters at level l+1 whose leaders are members
// of cluster (l, idx), in member order. The bottom level has no children.
func (t *Tree) ChildClusters(l, idx int) []*Cluster {
	if l == t.Bottom() {
		return nil
	}
	var out []*Cluster
	for ci, c := range t.Clusters[l+1] {
		if t.parentOf[l+1][ci] == idx {
			out = append(out, c)
		}
	}
	return out
}

// LeafDescendants returns the bottom-level device ids reachable from cluster
// (l, idx) by following child clusters. For a bottom cluster this is its
// member list.
func (t *Tree) LeafDescendants(l, idx int) []int {
	if l == t.Bottom() {
		return append([]int(nil), t.Clusters[l][idx].Members...)
	}
	var out []int
	for ci := range t.Clusters[l+1] {
		if t.parentOf[l+1][ci] == idx {
			out = append(out, t.LeafDescendants(l+1, ci)...)
		}
	}
	return out
}

// ClusterOf returns the bottom-level cluster containing device id, or nil.
func (t *Tree) ClusterOf(id int) *Cluster {
	for _, c := range t.Clusters[t.Bottom()] {
		if c.Contains(id) {
			return c
		}
	}
	return nil
}

// Validate checks the structural invariants of an ABD-HFL tree: every
// cluster is non-empty, leaders are members of their clusters, every
// non-top-level leader appears exactly once at the level above, the top
// level is a single cluster, and device ids at the bottom are unique.
func (t *Tree) Validate() error {
	if t.Depth() < 2 {
		return fmt.Errorf("topology: tree needs at least 2 levels, has %d", t.Depth())
	}
	if len(t.Clusters[0]) != 1 {
		return fmt.Errorf("topology: top level must be a single cluster, has %d", len(t.Clusters[0]))
	}
	seen := map[int]bool{}
	for _, c := range t.Clusters[t.Bottom()] {
		for _, m := range c.Members {
			if seen[m] {
				return fmt.Errorf("topology: device %d in multiple bottom clusters", m)
			}
			seen[m] = true
		}
	}
	for l, level := range t.Clusters {
		for i, c := range level {
			if c.Size() == 0 {
				return fmt.Errorf("topology: empty cluster at level %d index %d", l, i)
			}
			if !c.Contains(c.Leader) {
				return fmt.Errorf("topology: leader %d not a member of cluster (%d,%d)", c.Leader, l, i)
			}
			if l > 0 {
				p := t.Parent(l, i)
				if !p.Contains(c.Leader) {
					return fmt.Errorf("topology: leader %d of (%d,%d) missing from parent cluster", c.Leader, l, i)
				}
			}
		}
	}
	// Upper-level members must be exactly the leaders of the level below.
	for l := 0; l < t.Bottom(); l++ {
		leaders := map[int]bool{}
		for _, c := range t.Clusters[l+1] {
			leaders[c.Leader] = true
		}
		count := 0
		for _, c := range t.Clusters[l] {
			for _, m := range c.Members {
				if !leaders[m] {
					return fmt.Errorf("topology: level %d member %d is not a leader below", l, m)
				}
				count++
			}
		}
		if count != len(t.Clusters[l+1]) {
			return fmt.Errorf("topology: level %d has %d members for %d child clusters", l, count, len(t.Clusters[l+1]))
		}
	}
	return nil
}

// NewECSM builds an Equal Cluster Size Model tree: levels+1 tiers where
// every cluster below the top has exactly m members and the top cluster has
// topNodes members. Device ids are assigned consecutively to bottom clusters
// in id order (the evaluation's "clients are ordered by client id") and each
// cluster's leader is its lowest-id member.
//
// The shape must be consistent: topNodes * m^(levels-1) bottom clusters of m
// devices each. The paper's evaluation uses NewECSM(3, 4, 4): 3 levels,
// cluster size 4, 4 top nodes, 64 clients.
func NewECSM(levels, m, topNodes int) (*Tree, error) {
	if levels < 2 {
		return nil, fmt.Errorf("topology: ECSM needs >= 2 levels, got %d", levels)
	}
	if m < 1 || topNodes < 1 {
		return nil, fmt.Errorf("topology: ECSM needs positive cluster size and top size")
	}
	t := &Tree{
		Clusters: make([][]*Cluster, levels),
		parentOf: make([][]int, levels),
	}
	// Bottom level: topNodes * m^(levels-2) clusters... built top-down by
	// cluster counts: level l (0-indexed, 0=top) has topNodes*m^(l-1)
	// clusters for l >= 1, and 1 cluster at l = 0.
	counts := make([]int, levels)
	counts[0] = 1
	n := topNodes
	for l := 1; l < levels; l++ {
		counts[l] = n
		n *= m
	}
	bottom := levels - 1
	devices := counts[bottom] * m
	// Assign device ids to bottom clusters consecutively.
	t.Clusters[bottom] = make([]*Cluster, counts[bottom])
	for i := 0; i < counts[bottom]; i++ {
		members := make([]int, m)
		for j := range members {
			members[j] = i*m + j
		}
		t.Clusters[bottom][i] = &Cluster{Level: bottom, Index: i, Members: members, Leader: members[0]}
	}
	// Build upper levels from leaders below.
	for l := bottom - 1; l >= 0; l-- {
		size := m
		if l == 0 {
			size = topNodes
		}
		t.Clusters[l] = make([]*Cluster, counts[l])
		t.parentOf[l+1] = make([]int, len(t.Clusters[l+1]))
		for i := 0; i < counts[l]; i++ {
			members := make([]int, size)
			for j := 0; j < size; j++ {
				child := t.Clusters[l+1][i*size+j]
				members[j] = child.Leader
				t.parentOf[l+1][i*size+j] = i
			}
			t.Clusters[l][i] = &Cluster{Level: l, Index: i, Members: members, Leader: members[0]}
		}
	}
	t.parentOf[0] = nil
	built := t.NumDevices()
	if built != devices {
		return nil, fmt.Errorf("topology: internal error, built %d devices, want %d", built, devices)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
