package topology

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
)

func mustECSM(t *testing.T, levels, m, top int) *Tree {
	t.Helper()
	tree, err := NewECSM(levels, m, top)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestECSMPaperShape(t *testing.T) {
	// The paper's evaluation topology: 3 levels, cluster size 4, 4 top nodes,
	// 64 bottom clients.
	tree := mustECSM(t, 3, 4, 4)
	if tree.Depth() != 3 {
		t.Fatalf("depth = %d", tree.Depth())
	}
	if tree.NumDevices() != 64 {
		t.Fatalf("devices = %d", tree.NumDevices())
	}
	if len(tree.Clusters[2]) != 16 {
		t.Fatalf("bottom clusters = %d", len(tree.Clusters[2]))
	}
	if len(tree.Clusters[1]) != 4 {
		t.Fatalf("level-1 clusters = %d", len(tree.Clusters[1]))
	}
	if tree.Top().Size() != 4 {
		t.Fatalf("top size = %d", tree.Top().Size())
	}
}

func TestECSMValidates(t *testing.T) {
	for _, tc := range []struct{ levels, m, top int }{
		{2, 4, 4}, {3, 4, 4}, {4, 3, 5}, {3, 2, 2}, {5, 2, 3},
	} {
		tree, err := NewECSM(tc.levels, tc.m, tc.top)
		if err != nil {
			t.Fatalf("ECSM(%v): %v", tc, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("ECSM(%v) invalid: %v", tc, err)
		}
	}
}

func TestECSMDeviceCountFormula(t *testing.T) {
	// Corollary 1: level l has Nt * m^l nodes.
	tree := mustECSM(t, 4, 3, 5)
	for l := 1; l < tree.Depth(); l++ {
		n := 0
		for _, c := range tree.Clusters[l] {
			n += c.Size()
		}
		want := 5 * int(math.Pow(3, float64(l)))
		if n != want {
			t.Fatalf("level %d nodes = %d, want %d", l, n, want)
		}
	}
}

func TestECSMRejectsBadShapes(t *testing.T) {
	if _, err := NewECSM(1, 4, 4); err == nil {
		t.Fatal("1-level tree accepted")
	}
	if _, err := NewECSM(3, 0, 4); err == nil {
		t.Fatal("zero cluster size accepted")
	}
}

func TestLeadersAreLowestIDs(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	for _, c := range tree.Clusters[2] {
		if c.Leader != c.Members[0] {
			t.Fatalf("bottom leader %d != first member %d", c.Leader, c.Members[0])
		}
	}
	// Top members are the leaders of the 4 level-1 clusters: 0, 16, 32, 48.
	want := []int{0, 16, 32, 48}
	for i, m := range tree.Top().Members {
		if m != want[i] {
			t.Fatalf("top members = %v, want %v", tree.Top().Members, want)
		}
	}
}

func TestParentChildConsistency(t *testing.T) {
	tree := mustECSM(t, 4, 3, 4)
	for l := 1; l < tree.Depth(); l++ {
		for i, c := range tree.Clusters[l] {
			p := tree.Parent(l, i)
			if !p.Contains(c.Leader) {
				t.Fatalf("parent of (%d,%d) lacks leader", l, i)
			}
			found := false
			for _, ch := range tree.ChildClusters(p.Level, p.Index) {
				if ch == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("(%d,%d) not among its parent's children", l, i)
			}
		}
	}
}

func TestLeafDescendantsPartition(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	// Descendants of top children partition the 64 devices.
	seen := map[int]bool{}
	for _, ch := range tree.ChildClusters(0, 0) {
		for _, leaf := range tree.LeafDescendants(ch.Level, ch.Index) {
			if seen[leaf] {
				t.Fatalf("leaf %d in two subtrees", leaf)
			}
			seen[leaf] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("descendants cover %d devices, want 64", len(seen))
	}
}

func TestClusterOf(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	c := tree.ClusterOf(37)
	if c == nil || !c.Contains(37) {
		t.Fatal("ClusterOf failed")
	}
	if tree.ClusterOf(64) != nil {
		t.Fatal("ClusterOf out-of-range returned a cluster")
	}
}

func TestACSMValid(t *testing.T) {
	r := rng.New(1)
	tree, err := NewACSM(r, 100, 3, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumDevices() != 100 {
		t.Fatalf("devices = %d", tree.NumDevices())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestACSMPropertyRandomShapes(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		devices := 20 + r.Intn(200)
		minS := 2 + r.Intn(3)
		maxS := minS + r.Intn(4)
		tree, err := NewACSM(r, devices, minS, maxS, 4+r.Intn(4))
		if err != nil {
			return false
		}
		return tree.NumDevices() == devices && tree.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Theory ---

func TestTheorem1(t *testing.T) {
	// (pm)^l type-I nodes, proportion p^l.
	if got := TypeICountAtLevel(0.75, 4, 0); got != 1 {
		t.Fatalf("level 0 count = %v", got)
	}
	if got := TypeICountAtLevel(0.75, 4, 1); got != 3 {
		t.Fatalf("level 1 count = %v", got)
	}
	if got := TypeIProportionAtLevel(0.75, 2); math.Abs(got-0.5625) > 1e-12 {
		t.Fatalf("level 2 proportion = %v", got)
	}
}

func TestTheorem2PaperNumber(t *testing.T) {
	// §V-A: γ1=γ2=25%, bottom level l=2 → 57.8125%.
	got := MaxByzantineProportion(0.25, 0.25, 2)
	if math.Abs(got-0.578125) > 1e-12 {
		t.Fatalf("bound = %v, want 0.578125", got)
	}
	tol := Tolerance{0.25, 0.25}
	if b := tol.BottomBound(3); math.Abs(b-0.578125) > 1e-12 {
		t.Fatalf("BottomBound = %v", b)
	}
}

func TestTheorem2CountMatchesProportion(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nt := 2 + r.Intn(6)
		m := 2 + r.Intn(4)
		g1 := r.Float64() * 0.4
		g2 := r.Float64() * 0.4
		l := r.Intn(4)
		count := MaxByzantineCount(nt, m, g1, g2, l)
		total := float64(nt) * math.Pow(float64(m), float64(l))
		prop := MaxByzantineProportion(g1, g2, l)
		return math.Abs(count/total-prop) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorollary2LowerLevelsTolerateMore(t *testing.T) {
	// The tolerated proportion strictly increases with depth for γ2 > 0.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g1 := r.Float64() * 0.5
		g2 := 0.05 + r.Float64()*0.45
		prev := MaxByzantineProportion(g1, g2, 0)
		for l := 1; l < 6; l++ {
			cur := MaxByzantineProportion(g1, g2, l)
			if cur <= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorollary3MoreLevelsTolerateMore(t *testing.T) {
	// Fixed bottom population, more levels → higher bottom tolerance.
	tol := Tolerance{0.25, 0.25}
	if tol.BottomBound(3) <= tol.BottomBound(2) {
		t.Fatal("corollary 3 violated")
	}
	if tol.BottomBound(4) <= tol.BottomBound(3) {
		t.Fatal("corollary 3 violated at depth 4")
	}
}

func TestAdversarialPlacementAttainsBound(t *testing.T) {
	// On the paper's tree, greedy placement must produce exactly 37 Byzantine
	// leaves (57.8125% of 64) and survive ideal filtering.
	tree := mustECSM(t, 3, 4, 4)
	tol := Tolerance{0.25, 0.25}
	byz := tol.AdversarialPlacement(tree)
	if len(byz) != 37 {
		t.Fatalf("placement size = %d, want 37", len(byz))
	}
	if !tol.SurvivesFiltering(tree, byz) {
		t.Fatal("bound-attaining placement rejected by filtering")
	}
}

func TestOneMoreByzantineBreaksFiltering(t *testing.T) {
	// Adding any extra Byzantine device to the bound-attaining placement
	// must break at least the affected cluster chain for SOME addition;
	// specifically adding a device to an already-saturated honest bottom
	// cluster must break filtering.
	tree := mustECSM(t, 3, 4, 4)
	tol := Tolerance{0.25, 0.25}
	byz := tol.AdversarialPlacement(tree)
	// Find an honest bottom cluster already holding exactly 1 Byzantine
	// member and add a second.
	for _, c := range tree.Clusters[2] {
		n := 0
		for _, m := range c.Members {
			if byz[m] {
				n++
			}
		}
		if n == 1 {
			for _, m := range c.Members {
				if !byz[m] {
					byz[m] = true
					break
				}
			}
			break
		}
	}
	if len(byz) != 38 {
		t.Fatalf("augmented placement size = %d", len(byz))
	}
	if tol.SurvivesFiltering(tree, byz) {
		t.Fatal("over-bound placement survived filtering")
	}
}

func TestSurvivesFilteringPrefixAtBound(t *testing.T) {
	// The evaluation's prefix placement: whole clusters are poisoned first.
	// At 37/64 (57.8%) the top level sees 2 poisoned partials out of 4,
	// which exceeds γ1=25% — so prefix placement needs the stronger
	// validation-voting top level (γ1-style counting rejects it). Verify the
	// counting model agrees: prefix-37 fails under γ1=0.25 but passes under
	// γ1=0.5 (what voting achieves with an honest majority).
	tree := mustECSM(t, 3, 4, 4)
	byz := PrefixPlacement(tree, 37)
	if (Tolerance{0.25, 0.25}).SurvivesFiltering(tree, byz) {
		t.Fatal("prefix-37 should exceed a strict γ1=25% top")
	}
	if !(Tolerance{0.5, 0.25}).SurvivesFiltering(tree, byz) {
		t.Fatal("prefix-37 should survive a majority-voting top")
	}
}

func TestRelativeReliableNumber(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	// Poison one full bottom cluster: 4 of 64 nodes live in a Byzantine
	// cluster → ψ = 60/64.
	byz := map[int]bool{0: true, 1: true, 2: true, 3: true}
	psi := RelativeReliableNumber(tree, 2, byz, 0.25)
	if math.Abs(psi-60.0/64.0) > 1e-12 {
		t.Fatalf("ψ = %v", psi)
	}
	bound := ACSMMaxByzantineProportion(0.25, psi)
	if math.Abs(bound-(1-0.75*60.0/64.0)) > 1e-12 {
		t.Fatalf("ACSM bound = %v", bound)
	}
}

func TestTheorem3MonotoneInPsi(t *testing.T) {
	// The tolerated proportion decreases as ψ grows (inverse proportionality).
	prev := math.Inf(1)
	for psi := 0.0; psi <= 1.0; psi += 0.1 {
		b := ACSMMaxByzantineProportion(0.3, psi)
		if b > prev {
			t.Fatalf("bound not decreasing at ψ=%v", psi)
		}
		prev = b
	}
}

func TestPrefixPlacementPanics(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PrefixPlacement(tree, 65)
}

func BenchmarkECSMBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewECSM(4, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdversarialPlacement(b *testing.B) {
	tree, err := NewECSM(5, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tol := Tolerance{0.25, 0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tol.AdversarialPlacement(tree)
	}
}

func TestRenderTree(t *testing.T) {
	tree := mustECSM(t, 3, 2, 2)
	out := tree.Render(map[int]bool{0: true})
	if !strings.Contains(out, "top L0 C0") {
		t.Fatalf("missing top line: %q", out)
	}
	if !strings.Contains(out, "leaf-cluster") {
		t.Fatal("missing leaf clusters")
	}
	if !strings.Contains(out, "0!") {
		t.Fatal("marked device not flagged")
	}
	// Every bottom cluster appears.
	if strings.Count(out, "leaf-cluster") != len(tree.Clusters[tree.Bottom()]) {
		t.Fatal("wrong leaf-cluster count")
	}
}

func TestTreeSummary(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	sum := tree.Summary()
	if !strings.Contains(sum, "L0 (top): 1 clusters (1x4)") {
		t.Fatalf("summary = %q", sum)
	}
	if !strings.Contains(sum, "L2 (bottom): 16 clusters (16x4)") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestRotatePreservesStructure(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	for k := 0; k < 6; k++ {
		rot, err := tree.Rotate(k)
		if err != nil {
			t.Fatalf("rotate %d: %v", k, err)
		}
		if rot.NumDevices() != 64 || rot.Depth() != 3 {
			t.Fatalf("rotate %d changed shape", k)
		}
		if err := rot.Validate(); err != nil {
			t.Fatalf("rotate %d invalid: %v", k, err)
		}
		// Bottom membership unchanged.
		for i, c := range rot.Clusters[2] {
			orig := tree.Clusters[2][i]
			for j, m := range c.Members {
				if m != orig.Members[j] {
					t.Fatalf("rotate %d changed cluster membership", k)
				}
			}
			if c.Leader != c.Members[k%4] {
				t.Fatalf("rotate %d leader = %d, want %d", k, c.Leader, c.Members[k%4])
			}
		}
	}
}

func TestRotateZeroIsIdentityLeadership(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	rot, err := tree.Rotate(0)
	if err != nil {
		t.Fatal(err)
	}
	for l := range tree.Clusters {
		for i := range tree.Clusters[l] {
			if rot.Clusters[l][i].Leader != tree.Clusters[l][i].Leader {
				t.Fatalf("rotate 0 changed leader at (%d,%d)", l, i)
			}
		}
	}
}

func TestRotateChangesUpperMembership(t *testing.T) {
	tree := mustECSM(t, 3, 4, 4)
	rot, err := tree.Rotate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Top members should now be second members of their chains, not 0/16/32/48.
	same := 0
	for i, m := range rot.Top().Members {
		if m == tree.Top().Members[i] {
			same++
		}
	}
	if same == len(tree.Top().Members) {
		t.Fatal("rotation did not change upper membership")
	}
}

func TestRotateACSMProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tree, err := NewACSM(r, 30+r.Intn(60), 3, 5, 4)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			rot, err := tree.Rotate(k)
			if err != nil || rot.Validate() != nil || rot.NumDevices() != tree.NumDevices() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
