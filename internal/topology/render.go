package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws the tree as indented ASCII — the textual counterpart of the
// paper's Fig 1 architecture diagram. Each cluster line shows its level,
// index, leader and members; marked devices (e.g. a Byzantine placement) are
// suffixed with '!'.
func (t *Tree) Render(marked map[int]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABD-HFL tree: %d levels, %d devices\n", t.Depth(), t.NumDevices())
	t.renderCluster(&b, 0, 0, 0, marked)
	return b.String()
}

func (t *Tree) renderCluster(b *strings.Builder, l, idx, indent int, marked map[int]bool) {
	c := t.Clusters[l][idx]
	pad := strings.Repeat("  ", indent)
	kind := "cluster"
	if l == 0 {
		kind = "top"
	} else if l == t.Bottom() {
		kind = "leaf-cluster"
	}
	fmt.Fprintf(b, "%s%s L%d C%d leader=%d members=%s\n",
		pad, kind, l, idx, c.Leader, memberList(c.Members, marked))
	for _, ch := range t.ChildClusters(l, idx) {
		t.renderCluster(b, ch.Level, ch.Index, indent+1, marked)
	}
}

func memberList(members []int, marked map[int]bool) string {
	parts := make([]string, len(members))
	for i, m := range members {
		if marked[m] {
			parts[i] = fmt.Sprintf("%d!", m)
		} else {
			parts[i] = fmt.Sprint(m)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Summary returns a one-line-per-level shape description.
func (t *Tree) Summary() string {
	var b strings.Builder
	for l, level := range t.Clusters {
		sizes := map[int]int{}
		var order []int
		for _, c := range level {
			if sizes[c.Size()] == 0 {
				order = append(order, c.Size())
			}
			sizes[c.Size()]++
		}
		sort.Ints(order)
		parts := make([]string, 0, len(order))
		for _, size := range order {
			parts = append(parts, fmt.Sprintf("%dx%d", sizes[size], size))
		}
		label := "intermediate"
		switch {
		case l == 0:
			label = "top"
		case l == t.Bottom():
			label = "bottom"
		}
		fmt.Fprintf(&b, "L%d (%s): %d clusters (%s)\n", l, label, len(level), strings.Join(parts, ", "))
	}
	return b.String()
}
