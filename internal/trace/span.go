// Causal span layer. A Span is an interval on the engine clock (virtual
// milliseconds for the simulated engines, wall milliseconds for realtime)
// with a deterministic structural identity and a parent link pointing at the
// span that *consumed* its output — a train span feeds an uplink msg span,
// the msg span feeds its cluster's aggregate span, partial msg spans feed
// the round's global span. Walking children from a global span therefore
// reconstructs the round's contribution DAG (see path.go).
//
// Determinism discipline (same as the PR 6 event queue): spans are recorded
// into per-worker sharded buffers, and Spans() merges them into a total
// order by (Start, Seq, <every remaining field>). Span IDs are FNV-1a
// hashes of structural coordinates, never allocation counters, so the same
// protocol execution yields byte-identical exporter output for every worker
// count and every shard count. Parallel emitters must pass an explicit Seq
// (e.g. the device id); single-threaded emitters may leave Seq zero and
// receive a program-order sequence number.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

// Span is one causally-linked interval of protocol work.
type Span struct {
	// ID is a deterministic structural identity (SpanID). Zero is reserved
	// for "no span".
	ID uint64 `json:"id"`
	// Parent is the ID of the span this span's output feeds into (the
	// consumer), or zero for roots. A parent may be recorded after its
	// children — IDs are structural, so forward references are fine — or
	// never at all (e.g. an upload whose aggregation timed out).
	Parent uint64 `json:"parent"`
	// Name classifies the span: "round", "phase-train", "phase-aggregate",
	// "phase-eval", "train", "aggregate", "global", "msg".
	Name string `json:"name"`
	// Start/End are engine-clock milliseconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Round, Level, Cluster, Device, From, To are -1 when not applicable.
	// None carry omitempty: zero values are real coordinates and must stay
	// distinguishable from the sentinel in JSONL output.
	Round   int `json:"round"`
	Level   int `json:"level"`
	Cluster int `json:"cluster"`
	Device  int `json:"device"`
	From    int `json:"from"`
	To      int `json:"to"`
	// Rule is the aggregation rule applied (aggregate/global spans).
	Rule string `json:"rule,omitempty"`
	// Bytes is the codec wire size carried by this hop or transfer.
	Bytes int64 `json:"bytes,omitempty"`
	// Kept/Filtered count contributions accepted vs discarded by the
	// robust rule (aggregate/global spans; both zero elsewhere).
	Kept     int `json:"kept"`
	Filtered int `json:"filtered"`
	// Detail is free-form context (payload type, scheme name, ...).
	Detail string `json:"detail,omitempty"`
	// Seq breaks Start ties deterministically. Caller-supplied on parallel
	// paths; auto-assigned in program order when left zero.
	Seq uint64 `json:"seq"`
}

// SpanID returns the deterministic structural identity of a span: an FNV-1a
// hash of its name and integer coordinates. Engines on both sides of a hop
// compute the same ID from the same coordinates, which is what lets a
// message span name its not-yet-recorded consumer as Parent.
func SpanID(name string, coords ...int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	for _, c := range coords {
		v := uint64(int64(c))
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	if h == 0 {
		h = offset64 // keep zero reserved for "no span"
	}
	return h
}

// spanShard is one lock-striped append buffer.
type spanShard struct {
	mu    sync.Mutex
	spans []Span
	_     [40]byte // keep shards off each other's cache lines
}

// Tracer records spans into sharded buffers and merges them into a
// deterministic total order. The zero value is unusable; call NewTracer.
// All methods are nil-receiver safe so engines can embed an optional
// *Tracer without branching.
type Tracer struct {
	shards   []spanShard
	mask     uint64
	cap      int64
	retained atomic.Int64
	dropped  atomic.Int64
	seq      atomic.Uint64
	// DroppedCounter, when set, mirrors drops into telemetry
	// (abdhfl_trace_dropped_total).
	DroppedCounter *telemetry.Counter
}

// DefaultSpanCap bounds retained spans when NewTracer is given cap <= 0.
const DefaultSpanCap = 1 << 20

// NewTracer returns a Tracer with the given shard count (clamped to a power
// of two in [1, 256]) and span capacity (<=0 means DefaultSpanCap). Shard
// count affects only contention, never output: Spans() is byte-identical
// for every shard count.
func NewTracer(shards, capacity int) *Tracer {
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{shards: make([]spanShard, n), mask: uint64(n - 1), cap: int64(capacity)}
}

// Record stores a span (or counts it as dropped past the capacity). Safe
// for concurrent use; a nil receiver is a no-op.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Seq == 0 {
		s.Seq = t.seq.Add(1)
	}
	if t.retained.Add(1) > t.cap {
		t.retained.Add(-1)
		t.dropped.Add(1)
		t.DroppedCounter.Inc()
		return
	}
	sh := &t.shards[s.Seq&t.mask]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// Len returns the number of retained spans. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return int(t.retained.Load())
}

// Dropped returns the number of spans discarded past the capacity. Nil-safe.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Load())
}

// Spans merges every shard into the deterministic total order. The result
// is a fresh slice; the tracer keeps recording unaffected.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, t.Len())
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return spanLess(&out[i], &out[j]) })
	return out
}

// spanLess is a strict total order over distinct spans: (Start, Seq) first
// — the causal sort the exporters promise — then every remaining field so
// that no pair of distinct spans ever compares equal, which is what makes
// the merged stream invariant under shard and worker counts.
func spanLess(a, b *Span) bool {
	switch {
	case a.Start != b.Start:
		return a.Start < b.Start
	case a.Seq != b.Seq:
		return a.Seq < b.Seq
	case a.Name != b.Name:
		return a.Name < b.Name
	case a.Round != b.Round:
		return a.Round < b.Round
	case a.Level != b.Level:
		return a.Level < b.Level
	case a.Cluster != b.Cluster:
		return a.Cluster < b.Cluster
	case a.Device != b.Device:
		return a.Device < b.Device
	case a.From != b.From:
		return a.From < b.From
	case a.To != b.To:
		return a.To < b.To
	case a.End != b.End:
		return a.End < b.End
	case a.ID != b.ID:
		return a.ID < b.ID
	case a.Parent != b.Parent:
		return a.Parent < b.Parent
	case a.Kept != b.Kept:
		return a.Kept < b.Kept
	case a.Filtered != b.Filtered:
		return a.Filtered < b.Filtered
	case a.Bytes != b.Bytes:
		return a.Bytes < b.Bytes
	case a.Rule != b.Rule:
		return a.Rule < b.Rule
	default:
		return a.Detail < b.Detail
	}
}

// WriteJSONL emits the merged spans as JSON Lines, one span per line, in
// the deterministic total order. Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SpanHook adapts a Tracer to the simulator's Trace callback: every
// delivered message becomes a hop-level "msg" span covering [SentAt, At],
// with the cached payload type name as detail and the RoundCarrier round
// when available. Engines that know the hop's consumer emit structured msg
// spans themselves instead; this generic hook records Parent zero.
func SpanHook(t *Tracer) func(simnet.Message) {
	names := make(payloadNames, 8)
	return func(m simnet.Message) {
		round := -1
		if rc, ok := m.Payload.(RoundCarrier); ok {
			round = rc.TraceRound()
		}
		t.Record(Span{
			ID:      SpanID("msg", round, int(m.From), int(m.To)),
			Name:    "msg",
			Start:   float64(m.SentAt),
			End:     float64(m.At),
			Round:   round,
			Level:   -1,
			Cluster: -1,
			Device:  -1,
			From:    int(m.From),
			To:      int(m.To),
			Detail:  names.name(m.Payload),
		})
	}
}

// DroppedWarning returns a one-line operator warning when the tracer (or
// recorder) dropped events past its capacity, and "" otherwise. The cmd
// binaries print it on their summaries.
func DroppedWarning(what string, dropped int) string {
	if dropped <= 0 {
		return ""
	}
	return fmt.Sprintf("WARNING: %s dropped %d events past its capacity (raise the trace cap to keep them)", what, dropped)
}
