// Chrome trace-event exporter. The output is the JSON object form of the
// Trace Event Format ({"traceEvents": [...]}) using complete ("ph":"X")
// events, which Perfetto and chrome://tracing both load directly. Spans are
// written in the deterministic total order, so the export is byte-identical
// across worker and shard counts.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one complete-duration entry of the Trace Event Format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTid maps a span onto a stable Perfetto track: protocol control
// spans on low tracks, per-level aggregation on its own track, message hops
// together, and one track per device for training so stragglers read
// directly off the timeline.
func chromeTid(s *Span) int {
	switch s.Name {
	case "round":
		return 0
	case "phase-train", "phase-aggregate", "phase-eval":
		return 1
	case "global":
		return 2
	case "aggregate":
		if s.Level >= 0 {
			return 3 + s.Level
		}
		return 3
	case "msg":
		return 50
	case "train":
		if s.Device >= 0 {
			return 100 + s.Device
		}
		return 100
	default:
		return 60
	}
}

// WriteChromeTrace emits the merged spans as Chrome trace-event JSON.
// Nil-safe (writes an empty but valid trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace writes spans (already in a deterministic order) as a
// Perfetto-loadable {"traceEvents": [...]} document. Timestamps convert
// from engine milliseconds to trace microseconds.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i := range spans {
		s := &spans[i]
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		args := map[string]any{
			"id":     s.ID,
			"parent": s.Parent,
			"round":  s.Round,
		}
		if s.Level >= 0 {
			args["level"] = s.Level
		}
		if s.Cluster >= 0 {
			args["cluster"] = s.Cluster
		}
		if s.Device >= 0 {
			args["device"] = s.Device
		}
		if s.From >= 0 {
			args["from"] = s.From
		}
		if s.To >= 0 {
			args["to"] = s.To
		}
		if s.Rule != "" {
			args["rule"] = s.Rule
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Kept != 0 || s.Filtered != 0 {
			args["kept"] = s.Kept
			args["filtered"] = s.Filtered
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start * 1000,
			Dur:  (s.End - s.Start) * 1000,
			Pid:  0,
			Tid:  chromeTid(s),
			Args: args,
		}
		// json.Marshal sorts map keys, so args serialise deterministically.
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
