// Flight recorder: a bounded ring buffer of recent trace events, kept cheap
// enough to leave on during chaos sweeps. When an invariant trips, the tail
// answers "what were the last N things the network did" without retaining a
// full trace of a run that was supposed to pass.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"abdhfl/internal/simnet"
)

// DefaultFlightCap is the ring size when NewFlightRecorder is given cap <= 0.
const DefaultFlightCap = 256

// FlightRecorder retains the most recent events in a fixed ring. Safe for
// concurrent use; a nil recorder ignores Record calls and dumps nothing.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	n     int
	total uint64
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (<=0 means DefaultFlightCap).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Record stores an event, evicting the oldest once the ring is full.
// Nil-safe.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Total returns how many events were ever recorded (retained or evicted).
// Nil-safe.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Tail returns the retained events, oldest first. Nil-safe (returns nil).
func (f *FlightRecorder) Tail() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}

// WriteTail dumps the retained events as JSON Lines, oldest first, preceded
// by a header naming how much of the run the tail covers. Nil-safe.
func (f *FlightRecorder) WriteTail(w io.Writer) error {
	tail := f.Tail()
	if _, err := fmt.Fprintf(w, "flight recorder: last %d of %d events\n", len(tail), f.Total()); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, ev := range tail {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Dump renders the tail as a string (for t.Logf on invariant violations).
// Nil-safe (returns "").
func (f *FlightRecorder) Dump() string {
	if f == nil {
		return ""
	}
	var b strings.Builder
	_ = f.WriteTail(&b)
	return b.String()
}

// Hook adapts the recorder to the simulator's Trace callback, mirroring
// SimnetHook's event shape with the same cached type names. Nil-safe (the
// returned func drops everything).
func (f *FlightRecorder) Hook() func(simnet.Message) {
	names := make(payloadNames, 8)
	return func(m simnet.Message) {
		if f == nil {
			return
		}
		round := -1
		if rc, ok := m.Payload.(RoundCarrier); ok {
			round = rc.TraceRound()
		}
		f.Record(Event{
			Time:   float64(m.At),
			Kind:   "message",
			From:   int(m.From),
			To:     int(m.To),
			Round:  round,
			Detail: names.name(m.Payload),
		})
	}
}

// TeeMessageHooks fans one simulator Trace callback out to several hooks,
// skipping nils. Returns nil when no hook remains, so callers can assign
// the result to simnet.Sim.Trace unconditionally.
func TeeMessageHooks(hooks ...func(simnet.Message)) func(simnet.Message) {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(m simnet.Message) {
		for _, h := range live {
			h(m)
		}
	}
}
