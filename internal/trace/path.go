// Per-round critical-path analysis. Parent links point from producer spans
// to the span that consumed their output, so the children of a round's
// "global" span are the partial-model msg hops that fed it, a partial msg's
// child is the aggregate span that produced it, an aggregate's children are
// its input hops, and an uplink hop's child is the device train span — the
// round's contribution DAG. The critical path walks that DAG from the
// global span downwards, always following the child that finished last: the
// chain of work the round actually waited on.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PathStep is one span on a critical path together with its exclusive
// contribution: the time between its chosen input finishing (or its own
// start, at the leaf) and this span finishing.
type PathStep struct {
	Span Span
	Own  float64
}

// RoundPath is the critical path of one round, leaf to global.
type RoundPath struct {
	Round int
	// Total is global-span end minus leaf start: the round's end-to-end
	// critical latency.
	Total float64
	// Steps run from the global span down to the leaf.
	Steps []PathStep
	// TrainMS, LinkMS, AggregateMS, GlobalMS decompose Total by span kind
	// (train work, message transit, per-level aggregation incl. waiting
	// out the collect window, global formation).
	TrainMS, LinkMS, AggregateMS, GlobalMS float64
	// SlowestLink is the msg span with the largest exclusive contribution
	// on the path (zero Span when the path has no message hops).
	SlowestLink Span
	// Straggler is the device id of the train leaf, -1 if the walk ended
	// on a non-train span.
	Straggler int
}

// CriticalPaths walks the span DAG and returns one RoundPath per "global"
// span, ordered by round. Spans may arrive in any order; ties on child
// finish times resolve by the deterministic total order, so the result is
// invariant under worker and shard counts.
func CriticalPaths(spans []Span) []RoundPath {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool { return spanLess(&ordered[i], &ordered[j]) })

	children := make(map[uint64][]int, len(ordered))
	var globals []int
	for i := range ordered {
		s := &ordered[i]
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], i)
		}
		if s.Name == "global" {
			globals = append(globals, i)
		}
	}

	var paths []RoundPath
	for _, gi := range globals {
		g := &ordered[gi]
		p := RoundPath{Round: g.Round, Straggler: -1}
		seen := map[uint64]bool{}
		cur := gi
		for {
			s := ordered[cur]
			if seen[s.ID] {
				break // malformed cycle; stop rather than loop forever
			}
			seen[s.ID] = true
			// Slowest child: max End, first in total order on ties. A
			// child that (impossibly, or via a logical clock) ends after
			// its consumer still counts — the walk follows structure.
			next, found := -1, false
			for _, ci := range children[s.ID] {
				if !found || ordered[ci].End > ordered[next].End {
					next, found = ci, true
				}
			}
			own := s.End - s.Start
			if found {
				if in := ordered[next].End; in > s.Start && in < s.End {
					own = s.End - in
				}
			}
			p.Steps = append(p.Steps, PathStep{Span: s, Own: own})
			switch s.Name {
			case "train":
				p.TrainMS += own
			case "msg":
				p.LinkMS += own
			case "aggregate":
				p.AggregateMS += own
			case "global":
				p.GlobalMS += own
			}
			if !found {
				if s.Name == "train" {
					p.Straggler = s.Device
				}
				p.Total = g.End - s.Start
				break
			}
			cur = next
		}
		// Slowest link: msg step with the largest exclusive contribution.
		best := -1.0
		for _, st := range p.Steps {
			if st.Span.Name == "msg" && st.Own > best {
				best, p.SlowestLink = st.Own, st.Span
			}
		}
		paths = append(paths, p)
	}
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].Round < paths[j].Round })
	return paths
}

// RenderPaths formats critical paths as the fixed-width report committed in
// results_trace_paths.txt: one row per round with the per-phase breakdown,
// the slowest link, and the straggler device.
func RenderPaths(w io.Writer, paths []RoundPath) {
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s  %-18s %s\n",
		"round", "total_ms", "train_ms", "link_ms", "agg_ms", "global_ms", "slowest_link", "straggler")
	for _, p := range paths {
		link := "-"
		if p.SlowestLink.ID != 0 {
			link = fmt.Sprintf("%d->%d (%.2fms)", p.SlowestLink.From, p.SlowestLink.To, p.SlowestLink.End-p.SlowestLink.Start)
		}
		straggler := "-"
		if p.Straggler >= 0 {
			straggler = fmt.Sprintf("dev %d", p.Straggler)
		}
		fmt.Fprintf(w, "%-6d %10.2f %10.2f %10.2f %10.2f %10.2f  %-18s %s\n",
			p.Round, p.Total, p.TrainMS, p.LinkMS, p.AggregateMS, p.GlobalMS, link, straggler)
	}
}

// DescribePath renders one path's step chain ("global <- msg 5->0 <- ...")
// for logs and flight-recorder dumps.
func DescribePath(p RoundPath) string {
	var b strings.Builder
	fmt.Fprintf(&b, "round %d (%.2fms):", p.Round, p.Total)
	for _, st := range p.Steps {
		s := st.Span
		switch s.Name {
		case "msg":
			fmt.Fprintf(&b, " <- msg %d->%d %.2fms", s.From, s.To, st.Own)
		case "train":
			fmt.Fprintf(&b, " <- train dev%d %.2fms", s.Device, st.Own)
		case "aggregate":
			fmt.Fprintf(&b, " <- agg L%d/c%d %.2fms", s.Level, s.Cluster, st.Own)
		default:
			fmt.Fprintf(&b, " <- %s %.2fms", s.Name, st.Own)
		}
	}
	return b.String()
}
