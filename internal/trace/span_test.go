package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

func TestSpanIDDeterministicAndNonZero(t *testing.T) {
	a := SpanID("train", 3, 17)
	if a != SpanID("train", 3, 17) {
		t.Fatal("same coordinates hashed differently")
	}
	for _, other := range []uint64{
		SpanID("train", 3, 18),
		SpanID("train", 17, 3),
		SpanID("aggregate", 3, 17),
		SpanID("train", -1, 17),
	} {
		if other == a {
			t.Fatalf("distinct coordinates collided on %d", a)
		}
		if other == 0 {
			t.Fatal("SpanID returned the reserved zero")
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatal("nil tracer chrome export not a valid empty trace")
	}
}

func TestTracerCapDropsAndCounter(t *testing.T) {
	reg := telemetry.New()
	tr := NewTracer(4, 3)
	tr.DroppedCounter = reg.Counter("abdhfl_trace_dropped_total")
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "x", Start: float64(i)})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	if got := reg.Counter("abdhfl_trace_dropped_total").Value(); got != 7 {
		t.Fatalf("telemetry counter = %d, want 7", got)
	}
	if w := DroppedWarning("span tracer", tr.Dropped()); !strings.Contains(w, "dropped 7 events") {
		t.Fatalf("warning = %q", w)
	}
	if DroppedWarning("span tracer", 0) != "" {
		t.Fatal("warning emitted with zero drops")
	}
}

// sampleSpans is a mixed batch with deliberate Start ties, forward parent
// references, and every field class in play.
func sampleSpans() []Span {
	return []Span{
		{ID: SpanID("round", 0), Name: "round", Start: 0, End: 9, Round: 0, Level: -1, Cluster: -1, Device: -1, From: -1, To: -1, Seq: 7},
		{ID: SpanID("global", 0), Parent: SpanID("round", 0), Name: "global", Start: 5, End: 9, Round: 0, Level: 0, Cluster: 0, Device: -1, From: -1, To: -1, Rule: "bra:median", Kept: 3, Filtered: 1, Seq: 6},
		{ID: SpanID("train", 0, 2), Parent: SpanID("umsg", 0, 2), Name: "train", Start: 0, End: 3, Round: 0, Level: 2, Cluster: 0, Device: 2, From: -1, To: -1, Seq: 1},
		{ID: SpanID("train", 0, 5), Parent: SpanID("umsg", 0, 5), Name: "train", Start: 0, End: 4, Round: 0, Level: 2, Cluster: 1, Device: 5, From: -1, To: -1, Seq: 2},
		{ID: SpanID("umsg", 0, 2), Parent: SpanID("aggregate", 0, 2, 0), Name: "msg", Start: 3, End: 4, Round: 0, Level: 2, Cluster: 0, Device: 2, From: 2, To: 64, Bytes: 128, Detail: "uplink", Seq: 3},
		{ID: SpanID("aggregate", 0, 2, 0), Parent: SpanID("pmsg", 0, 2, 0), Name: "aggregate", Start: 4, End: 5, Round: 0, Level: 2, Cluster: 0, Device: -1, From: -1, To: -1, Rule: "bra:multi-krum", Kept: 2, Filtered: 1, Seq: 4},
		{ID: SpanID("pmsg", 0, 2, 0), Parent: SpanID("global", 0), Name: "msg", Start: 5, End: 6, Round: 0, Level: 2, Cluster: 0, Device: -1, From: 64, To: 80, Bytes: 128, Detail: "partial", Seq: 5},
	}
}

// TestShardMergeDeterminism pins the tentpole's core promise: the exported
// stream is byte-identical for every shard count and every recording
// interleaving.
func TestShardMergeDeterminism(t *testing.T) {
	spans := sampleSpans()
	var want string
	for _, shards := range []int{1, 2, 8, 64} {
		tr := NewTracer(shards, 0)
		// Record in a shard-dependent order to prove order doesn't matter.
		for i := range spans {
			tr.Record(spans[(i*5+shards)%len(spans)])
		}
		var b strings.Builder
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		var c strings.Builder
		if err := tr.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		got := b.String() + "\x00" + c.String()
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("shards=%d produced a different byte stream", shards)
		}
	}
}

// TestConcurrentSpanRecording hammers one tracer from many goroutines; run
// under -race via make verify-trace. Explicit Seq keeps the merged order
// deterministic even though arrival order is not.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(8, 0)
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Span{
					ID:    SpanID("train", i, w),
					Name:  "train",
					Start: float64(i),
					Seq:   uint64(w*per + i + 1),
				})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("len = %d, want %d", tr.Len(), workers*per)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if !spanLess(&spans[i-1], &spans[i]) {
			t.Fatalf("merged order violated at %d", i)
		}
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer(2, 0)
	for _, s := range sampleSpans() {
		tr.Record(s)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != len(sampleSpans()) {
		t.Fatalf("%d events for %d spans", len(doc.TraceEvents), len(sampleSpans()))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event ph = %q, want X", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Fatalf("negative duration %v", ev.Dur)
		}
		if _, ok := ev.Args["id"]; !ok {
			t.Fatal("event args missing id")
		}
	}
	// ms -> µs conversion: the global span starts at 5ms.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "global" && ev.Ts == 5000 {
			found = true
		}
	}
	if !found {
		t.Fatal("global span not at ts=5000µs")
	}
}

func TestCriticalPathsWalk(t *testing.T) {
	paths := CriticalPaths(sampleSpans())
	if len(paths) != 1 {
		t.Fatalf("%d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Round != 0 {
		t.Fatalf("round = %d", p.Round)
	}
	// global(5..9) <- pmsg(5..6) <- aggregate(4..5) <- umsg(3..4) <- train dev2(0..3)
	// The straggler is device 2: its uplink is the aggregate's only recorded
	// input hop.
	if p.Straggler != 2 {
		t.Fatalf("straggler = %d, want 2", p.Straggler)
	}
	if p.Total != 9 {
		t.Fatalf("total = %v, want 9 (global end 9 - leaf start 0)", p.Total)
	}
	if p.SlowestLink.ID == 0 {
		t.Fatal("no slowest link on a path with two hops")
	}
	sum := p.TrainMS + p.LinkMS + p.AggregateMS + p.GlobalMS
	if sum != p.Total {
		t.Fatalf("breakdown %v != total %v", sum, p.Total)
	}
	if d := DescribePath(p); !strings.Contains(d, "train dev2") {
		t.Fatalf("describe = %q", d)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(Event{Time: float64(i), Kind: "message"})
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d", f.Total())
	}
	tail := f.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail len = %d", len(tail))
	}
	for i, ev := range tail {
		if ev.Time != float64(i+2) {
			t.Fatalf("tail[%d].Time = %v, want %v (oldest first)", i, ev.Time, i+2)
		}
	}
	dump := f.Dump()
	if !strings.Contains(dump, "flight recorder: last 3 of 5 events") {
		t.Fatalf("dump header wrong:\n%s", dump)
	}
	var nilF *FlightRecorder
	nilF.Record(Event{})
	if nilF.Total() != 0 || nilF.Tail() != nil || nilF.Dump() != "" {
		t.Fatal("nil flight recorder not inert")
	}
	nilF.Hook()(simnet.Message{}) // must not panic
}

func TestFlightHookAndTee(t *testing.T) {
	f := NewFlightRecorder(8)
	var seen int
	tee := TeeMessageHooks(nil, f.Hook(), func(simnet.Message) { seen++ })
	tee(simnet.Message{From: 1, To: 2, At: 5, Payload: "p"})
	if f.Total() != 1 || seen != 1 {
		t.Fatalf("tee fan-out broken: total=%d seen=%d", f.Total(), seen)
	}
	tail := f.Tail()
	if tail[0].From != 1 || tail[0].To != 2 || tail[0].Detail != "string" {
		t.Fatalf("hooked event = %+v", tail[0])
	}
	if TeeMessageHooks(nil, nil) != nil {
		t.Fatal("all-nil tee should collapse to nil")
	}
}

// TestSimnetHookZeroAlloc pins the satellite fix: after the first delivery of
// each payload type, SimnetHook must not allocate — the type name is cached
// and the recorder is saturated so Record drops without growing.
func TestSimnetHookZeroAlloc(t *testing.T) {
	rec := &Recorder{Cap: 1}
	hook := SimnetHook(rec)
	m := simnet.Message{From: 3, To: 4, At: 7, Payload: 42}
	hook(m) // warm the type-name cache and fill the cap
	if allocs := testing.AllocsPerRun(100, func() { hook(m) }); allocs != 0 {
		t.Fatalf("SimnetHook allocates %.1f per message in steady state", allocs)
	}
}
