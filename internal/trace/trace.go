// Package trace records structured protocol events (message deliveries,
// aggregations, round completions) and exports them as JSON Lines for
// offline analysis or visualisation. A Recorder can be attached to the
// discrete-event simulator via SimnetHook, or fed manually by engines.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"

	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

// Event is one recorded protocol occurrence.
type Event struct {
	// Time is virtual milliseconds (or wall time for realtime engines).
	Time float64 `json:"t"`
	// Kind classifies the event ("message", "aggregate", "global", ...).
	Kind string `json:"kind"`
	// From/To identify the nodes involved (-1 when not applicable).
	From int `json:"from"`
	To   int `json:"to"`
	// Round is the global round, -1 when not applicable. Serialised without
	// omitempty: round 0 is a real round and must stay distinguishable from
	// the -1 sentinel in JSONL output.
	Round int `json:"round"`
	// Detail is free-form context (payload type, rule name, ...).
	Detail string `json:"detail,omitempty"`
}

// Recorder accumulates events. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// Cap bounds memory; once reached, new events are dropped and Dropped
	// counts them. Zero means 1 << 20.
	Cap     int
	dropped int
	// DroppedCounter, when set, mirrors every dropped event into a
	// telemetry counter (abdhfl_trace_dropped_total) so silent truncation
	// shows up on dashboards, not just in post-run Dropped() checks.
	DroppedCounter *telemetry.Counter
}

// Record appends an event (or counts it as dropped past the cap).
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := r.Cap
	if capacity == 0 {
		capacity = 1 << 20
	}
	if len(r.events) >= capacity {
		r.dropped++
		r.DroppedCounter.Inc()
		return
	}
	r.events = append(r.events, ev)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns the number of events discarded past the cap.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the retained events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// WriteJSONL emits the events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind returns event counts keyed by Kind. It counts under the lock
// rather than copying the full event slice.
func (r *Recorder) CountByKind() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for i := range r.events {
		out[r.events[i].Kind]++
	}
	return out
}

// Summary renders a one-line-per-kind count report (kinds sorted).
func (r *Recorder) Summary() string {
	counts := r.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var out strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&out, "%-12s %d\n", k, counts[k])
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&out, "(dropped)    %d\n", d)
	}
	return out.String()
}

// RoundCarrier is implemented by message payloads that belong to a protocol
// round; SimnetHook uses it to stamp message events with their round.
type RoundCarrier interface {
	TraceRound() int
}

// SimnetHook adapts a Recorder to the simulator's Trace callback: every
// delivered message becomes a "message" event with the payload's dynamic
// type as detail and, when the payload implements RoundCarrier, its round.
//
// Payload type names are cached per dynamic type so the steady state is one
// map lookup with zero allocations — a simulation delivers a handful of
// payload types millions of times, and fmt.Sprintf("%T") per delivery was
// the dominant tracing cost at 100k+ devices. The cache is closure-local
// and unsynchronised because the simulator invokes Trace from its
// single-threaded dispatch loop.
func SimnetHook(rec *Recorder) func(simnet.Message) {
	names := make(map[reflect.Type]string, 8)
	return func(m simnet.Message) {
		round := -1
		if rc, ok := m.Payload.(RoundCarrier); ok {
			round = rc.TraceRound()
		}
		t := reflect.TypeOf(m.Payload)
		name, ok := names[t]
		if !ok {
			name = fmt.Sprintf("%T", m.Payload)
			names[t] = name
		}
		rec.Record(Event{
			Time:   float64(m.At),
			Kind:   "message",
			From:   int(m.From),
			To:     int(m.To),
			Round:  round,
			Detail: name,
		})
	}
}

// payloadName resolves the cached dynamic type name of a payload.
type payloadNames map[reflect.Type]string

func (p payloadNames) name(payload any) string {
	t := reflect.TypeOf(payload)
	if n, ok := p[t]; ok {
		return n
	}
	n := fmt.Sprintf("%T", payload)
	p[t] = n
	return n
}
