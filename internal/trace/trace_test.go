package trace

import (
	"strings"
	"sync"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
)

func TestRecordAndEvents(t *testing.T) {
	var r Recorder
	r.Record(Event{Time: 1, Kind: "message", From: 0, To: 1})
	r.Record(Event{Time: 2, Kind: "aggregate", From: 1, To: -1, Round: 3})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != "message" || evs[1].Round != 3 {
		t.Fatalf("events = %+v", evs)
	}
	// Events returns a copy.
	evs[0].Kind = "mutated"
	if r.Events()[0].Kind != "message" {
		t.Fatal("Events exposed internal storage")
	}
}

func TestCapDropsAndCounts(t *testing.T) {
	r := Recorder{Cap: 2}
	for i := 0; i < 5; i++ {
		r.Record(Event{Time: float64(i), Kind: "x"})
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
	if !strings.Contains(r.Summary(), "(dropped)") {
		t.Fatal("summary missing dropped line")
	}
}

func TestWriteJSONL(t *testing.T) {
	var r Recorder
	r.Record(Event{Time: 1.5, Kind: "message", From: 2, To: 7, Detail: "msgFlag"})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"kind":"message"`) || !strings.Contains(out, `"detail":"msgFlag"`) {
		t.Fatalf("jsonl = %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatal("expected exactly one line")
	}
}

func TestCountByKindAndSummary(t *testing.T) {
	var r Recorder
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "b"})
	counts := r.CountByKind()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	sum := r.Summary()
	ai := strings.Index(sum, "a")
	bi := strings.Index(sum, "b")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("summary not sorted: %q", sum)
	}
}

func TestConcurrentRecording(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: "c"})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRoundZeroSerialized(t *testing.T) {
	var r Recorder
	r.Record(Event{Kind: "message", Round: 0})
	r.Record(Event{Kind: "message", Round: -1})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], `"round":0`) {
		t.Fatalf("round 0 dropped from JSONL: %q", lines[0])
	}
	if !strings.Contains(lines[1], `"round":-1`) {
		t.Fatalf("sentinel round missing: %q", lines[1])
	}
}

type echo struct{}

func (echo) OnMessage(ctx *simnet.Context, msg simnet.Message) {}

func TestSimnetHook(t *testing.T) {
	var rec Recorder
	s := simnet.New(simnet.Fixed(2), rng.New(1))
	s.Trace = SimnetHook(&rec)
	s.Register(1, echo{})
	s.Inject(1, "payload")
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorded %d events", rec.Len())
	}
	ev := rec.Events()[0]
	if ev.Kind != "message" || ev.To != 1 || ev.Time != 2 || ev.Detail != "string" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Round != -1 {
		t.Fatalf("payload without a round should record -1, got %d", ev.Round)
	}
}

type roundPayload struct{ round int }

func (p roundPayload) TraceRound() int { return p.round }

func TestSimnetHookRoundCarrier(t *testing.T) {
	var rec Recorder
	s := simnet.New(simnet.Fixed(1), rng.New(1))
	s.Trace = SimnetHook(&rec)
	s.Register(1, echo{})
	s.Inject(1, roundPayload{round: 0})
	s.Inject(1, roundPayload{round: 7})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events", len(evs))
	}
	if evs[0].Round != 0 || evs[1].Round != 7 {
		t.Fatalf("rounds = %d, %d", evs[0].Round, evs[1].Round)
	}
}
