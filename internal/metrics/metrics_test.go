package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMeanCI(t *testing.T) {
	mean, half := MeanCI([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if half <= 0 {
		t.Fatalf("half = %v", half)
	}
	if _, h := MeanCI([]float64{7}); h != 0 {
		t.Fatal("single-sample CI not zero")
	}
	if m, h := MeanCI(nil); m != 0 || h != 0 {
		t.Fatal("empty CI not zero")
	}
}

func TestMeanCIShrinksWithSamples(t *testing.T) {
	few := []float64{1, 5}
	many := []float64{1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5}
	_, hFew := MeanCI(few)
	_, hMany := MeanCI(many)
	if hMany >= hFew {
		t.Fatalf("CI did not shrink: %v vs %v", hFew, hMany)
	}
}

func TestAggregate(t *testing.T) {
	curves := []Curve{
		{Rounds: []int{1, 2}, Values: []float64{0.5, 0.7}},
		{Rounds: []int{1, 2}, Values: []float64{0.6, 0.8}},
	}
	s := Aggregate("test", curves)
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if math.Abs(s.Points[0].Mean-0.55) > 1e-12 {
		t.Fatalf("mean = %v", s.Points[0].Mean)
	}
	if s.Points[0].Count != 2 {
		t.Fatalf("count = %d", s.Points[0].Count)
	}
	if s.Points[0].Lo > s.Points[0].Mean || s.Points[0].Hi < s.Points[0].Mean {
		t.Fatal("CI band does not bracket the mean")
	}
	if f := s.Final(); f.Round != 2 {
		t.Fatalf("final round = %d", f.Round)
	}
}

func TestAggregateRaggedCurves(t *testing.T) {
	curves := []Curve{
		{Rounds: []int{1, 2, 3}, Values: []float64{0.1, 0.2, 0.3}},
		{Rounds: []int{2, 3}, Values: []float64{0.4, 0.5}},
	}
	s := Aggregate("ragged", curves)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Count != 1 || s.Points[1].Count != 2 {
		t.Fatal("counts wrong for ragged input")
	}
}

func TestAggregateEmpty(t *testing.T) {
	s := Aggregate("empty", nil)
	if len(s.Points) != 0 {
		t.Fatal("empty aggregate has points")
	}
	if f := s.Final(); f.Round != 0 || f.Mean != 0 {
		t.Fatal("empty final not zero")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := Aggregate("x", []Curve{{Rounds: []int{1}, Values: []float64{0.5}}})
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "round,mean") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1,0.500000") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Fatalf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow(`say "hi"`, "x,y")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"say ""hi"""`) {
		t.Fatalf("quote escaping failed: %q", b.String())
	}
	if !strings.Contains(b.String(), `"x,y"`) {
		t.Fatalf("comma escaping failed: %q", b.String())
	}
}

func TestPct(t *testing.T) {
	if Pct(0.578125) != "57.8%" {
		t.Fatalf("Pct = %q", Pct(0.578125))
	}
}

func TestWelchTSeparatedSamples(t *testing.T) {
	a := []float64{0.89, 0.90, 0.91, 0.90, 0.89}
	b := []float64{0.10, 0.11, 0.10, 0.09, 0.10}
	tt, df := WelchT(a, b)
	if tt < 10 {
		t.Fatalf("t = %v, expected strongly positive", tt)
	}
	if df <= 0 {
		t.Fatalf("df = %v", df)
	}
	if !SignificantAt05(tt, df) {
		t.Fatal("clearly separated samples not significant")
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := []float64{0.5, 0.6, 0.55, 0.52}
	tt, df := WelchT(a, a)
	if tt != 0 {
		t.Fatalf("t = %v for identical samples", tt)
	}
	if SignificantAt05(tt, df) {
		t.Fatal("identical samples reported significant")
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if tt, df := WelchT([]float64{1}, []float64{2, 3}); tt != 0 || df != 0 {
		t.Fatal("single-point sample not handled")
	}
	// Zero variance in both: denominator zero.
	if tt, _ := WelchT([]float64{1, 1}, []float64{1, 1}); tt != 0 {
		t.Fatal("zero-variance samples not handled")
	}
}

func TestSignificantAt05Thresholds(t *testing.T) {
	if SignificantAt05(2.0, 0) {
		t.Fatal("df=0 should never be significant")
	}
	if SignificantAt05(2.0, 1.5) {
		t.Fatal("t=2 at ~1 df should not pass the 12.7 critical value")
	}
	if !SignificantAt05(3.0, 100) {
		t.Fatal("t=3 at 100 df should be significant")
	}
}
