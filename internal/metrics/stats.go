package metrics

import "math"

// WelchT computes Welch's unequal-variance t-statistic and its
// Welch-Satterthwaite degrees of freedom for two samples — the standard
// significance test for "system A's accuracy beats system B's" over repeated
// runs. Returns (0, 0) when either sample has fewer than two points.
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	ma, va := meanVariance(a)
	mb, vb := meanVariance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	denom := math.Sqrt(sa + sb)
	if denom == 0 {
		return 0, 0
	}
	t = (ma - mb) / denom
	dfDenom := sa*sa/(na-1) + sb*sb/(nb-1)
	if dfDenom == 0 {
		return t, 0
	}
	df = (sa + sb) * (sa + sb) / dfDenom
	return t, df
}

// meanVariance returns the sample mean and unbiased variance.
func meanVariance(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / (n - 1)
}

// SignificantAt05 reports whether |t| exceeds the two-sided 5% critical
// value of the t-distribution with the given degrees of freedom (normal
// approximation above 30 df, conservative table below).
func SignificantAt05(t, df float64) bool {
	crit := 1.96
	switch {
	case df <= 0:
		return false
	case df < 2:
		crit = 12.71
	case df < 3:
		crit = 4.30
	case df < 5:
		crit = 2.78
	case df < 10:
		crit = 2.26
	case df < 30:
		crit = 2.04
	}
	return math.Abs(t) > crit
}
