// Package metrics aggregates experiment outputs: convergence curves across
// repeated runs (mean and confidence band, as in the paper's Fig 3), and
// plain-text / CSV table rendering for the result tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one position of an aggregated curve.
type Point struct {
	Round          int
	Mean           float64
	Lo, Hi         float64 // confidence band
	Stddev         float64
	Count          int
	MinVal, MaxVal float64
}

// Series is an aggregated convergence curve.
type Series struct {
	Name   string
	Points []Point
}

// Curve is a single run's (round, value) sequence.
type Curve struct {
	Rounds []int
	Values []float64
}

// zFor95 is the normal z-score of a two-sided 95% interval.
const zFor95 = 1.959963984540054

// MeanCI returns the sample mean and the half-width of its 95% confidence
// interval (normal approximation). For fewer than two samples the half-width
// is 0.
func MeanCI(xs []float64) (mean, half float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= n - 1
	return mean, zFor95 * math.Sqrt(variance/n)
}

// Aggregate merges repeated runs' curves into a mean ± CI series. Curves
// must share round positions; rounds present in only some curves are
// aggregated over the curves that have them.
func Aggregate(name string, curves []Curve) Series {
	byRound := map[int][]float64{}
	for _, c := range curves {
		for i, r := range c.Rounds {
			byRound[r] = append(byRound[r], c.Values[i])
		}
	}
	rounds := make([]int, 0, len(byRound))
	for r := range byRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	s := Series{Name: name}
	for _, r := range rounds {
		xs := byRound[r]
		mean, half := MeanCI(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		_, sd := meanStddev(xs)
		s.Points = append(s.Points, Point{
			Round: r, Mean: mean, Lo: mean - half, Hi: mean + half,
			Stddev: sd, Count: len(xs), MinVal: lo, MaxVal: hi,
		})
	}
	return s
}

func meanStddev(xs []float64) (mean, sd float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	v := 0.0
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return mean, math.Sqrt(v / n)
}

// Final returns the last point of the series, or a zero Point when empty.
func (s Series) Final() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// WriteCSV emits the series as CSV with a header row.
func (s Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "round,mean,lo,hi,stddev,count\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f,%.6f,%.6f,%d\n",
			p.Round, p.Mean, p.Lo, p.Hi, p.Stddev, p.Count); err != nil {
			return err
		}
	}
	return nil
}

// Table is a simple aligned text table for experiment reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned plain text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
