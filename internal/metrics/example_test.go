package metrics_test

import (
	"fmt"
	"os"

	"abdhfl/internal/metrics"
)

// Aligned plain-text tables for experiment reports.
func ExampleTable_Render() {
	t := metrics.Table{Header: []string{"system", "accuracy"}}
	t.AddRow("ABD-HFL", "82.9%")
	t.AddRow("Vanilla FL", "10.5%")
	fmt.Print(t.Render())
	// Output:
	// system      accuracy
	// ----------  --------
	// ABD-HFL     82.9%
	// Vanilla FL  10.5%
}

// Repeated runs aggregate into a mean ± 95% CI series.
func ExampleAggregate() {
	curves := []metrics.Curve{
		{Rounds: []int{10, 20}, Values: []float64{0.50, 0.80}},
		{Rounds: []int{10, 20}, Values: []float64{0.54, 0.84}},
		{Rounds: []int{10, 20}, Values: []float64{0.52, 0.82}},
	}
	s := metrics.Aggregate("abdhfl", curves)
	_ = s.WriteCSV(os.Stdout)
	// Output:
	// round,mean,lo,hi,stddev,count
	// 10,0.520000,0.497368,0.542632,0.016330,3
	// 20,0.820000,0.797368,0.842632,0.016330,3
}
