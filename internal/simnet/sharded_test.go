package simnet

import (
	"fmt"
	"strings"
	"testing"

	"abdhfl/internal/rng"
)

// chatterNode bounces messages around a ring and records every delivery, so
// a full run produces a complete causal trace of the simulation.
type chatterNode struct {
	id    NodeID
	peers int
	hops  int
	trace *strings.Builder
}

func (n *chatterNode) OnMessage(ctx *Context, msg Message) {
	fmt.Fprintf(n.trace, "t=%.6f %d->%d hop=%v\n", float64(msg.At), msg.From, msg.To, msg.Payload)
	hop := msg.Payload.(int)
	if hop >= n.hops {
		return
	}
	// Fan out to two peers plus a timer, to mix message and timer events.
	ctx.Send(NodeID((int(n.id)+1)%n.peers), hop+1)
	ctx.Send(NodeID((int(n.id)+7)%n.peers), hop+1)
	ctx.After(Time(0.5), func(ctx *Context) {
		fmt.Fprintf(n.trace, "t=%.6f timer@%d\n", float64(ctx.Now()), ctx.Self())
	})
}

// runTrace runs a seeded multi-node exchange on a simulator with the given
// shard/worker counts and returns the full delivery trace.
func runTrace(t *testing.T, shards, workers int) (string, Stats) {
	t.Helper()
	var trace strings.Builder
	sim := NewSharded(Uniform{Min: 0.5, Max: 5}, rng.New(42), shards, workers)
	const peers = 64
	for i := 0; i < peers; i++ {
		sim.Register(NodeID(i), &chatterNode{id: NodeID(i), peers: peers, hops: 6, trace: &trace})
	}
	for i := 0; i < peers; i += 3 {
		sim.Inject(NodeID(i), 0)
	}
	if _, err := sim.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return trace.String(), sim.Stats()
}

// TestShardCountInvariance pins the determinism contract of the sharded
// queue: the same seed must produce a byte-identical delivery trace and
// identical stats at shards=1, 4, and 16.
func TestShardCountInvariance(t *testing.T) {
	ref, refStats := runTrace(t, 1, 1)
	if ref == "" {
		t.Fatal("empty reference trace")
	}
	for _, cfg := range []struct{ shards, workers int }{{4, 1}, {4, 4}, {16, 8}} {
		got, gotStats := runTrace(t, cfg.shards, cfg.workers)
		if got != ref {
			t.Fatalf("shards=%d workers=%d: trace diverged from shards=1", cfg.shards, cfg.workers)
		}
		if gotStats != refStats {
			t.Fatalf("shards=%d workers=%d: stats %+v != %+v", cfg.shards, cfg.workers, gotStats, refStats)
		}
	}
}

// TestShardCountInvarianceRerun pins rerun determinism: the same seed and
// shard count twice in a row must match byte-for-byte.
func TestShardCountInvarianceRerun(t *testing.T) {
	a, _ := runTrace(t, 8, 4)
	b, _ := runTrace(t, 8, 4)
	if a != b {
		t.Fatal("seeded rerun diverged")
	}
}

// TestPeakQueueGauge checks the queue high-water mark: scheduling n timers
// before running must report a peak of at least n, and the gauge must be
// shard-count independent.
func TestPeakQueueGauge(t *testing.T) {
	peaks := make([]int, 0, 3)
	for _, shards := range []int{1, 4, 16} {
		sim := NewSharded(Fixed(1), rng.New(7), shards, 2)
		sink := handlerFunc(func(ctx *Context, msg Message) {})
		sim.Register(0, sink)
		const n = 1000
		for i := 0; i < n; i++ {
			sim.ScheduleAt(Time(i), 0, func(ctx *Context) {})
		}
		if got := sim.Stats().PeakQueue; got < n {
			t.Fatalf("shards=%d: PeakQueue=%d, want >= %d", shards, got, n)
		}
		if _, err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, sim.Stats().PeakQueue)
	}
	if peaks[0] != peaks[1] || peaks[1] != peaks[2] {
		t.Fatalf("PeakQueue varies with shard count: %v", peaks)
	}
}

type handlerFunc func(ctx *Context, msg Message)

func (f handlerFunc) OnMessage(ctx *Context, msg Message) { f(ctx, msg) }

// TestEventPoolReuse verifies the freelist actually recycles events: after a
// burst drains, a second burst of the same size must not grow the pool's
// total footprint (allocations amortize to zero in steady state).
func TestEventPoolReuse(t *testing.T) {
	sim := New(Fixed(1), rng.New(1))
	sim.Register(0, handlerFunc(func(ctx *Context, msg Message) {}))
	burst := func() {
		for i := 0; i < 500; i++ {
			sim.Inject(0, i)
		}
		if _, err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	burst()
	free := len(sim.q.free)
	if free == 0 {
		t.Fatal("freelist empty after drain; events not recycled")
	}
	burst()
	if got := len(sim.q.free); got != free {
		t.Fatalf("freelist grew across equal bursts: %d -> %d (pool not reused)", free, got)
	}
}

// TestParallelFoldUnderRace drives a burst past parallelFoldThreshold with
// multiple workers and shards so the worker-parallel fold path runs; under
// `go test -race` this validates the fold's no-shared-state claim.
func TestParallelFoldUnderRace(t *testing.T) {
	sim := NewSharded(Fixed(1), rng.New(3), 16, 8)
	var delivered int
	sink := handlerFunc(func(ctx *Context, msg Message) { delivered++ })
	const nodes = 256
	for i := 0; i < nodes; i++ {
		sim.Register(NodeID(i), sink)
	}
	total := 2 * parallelFoldThreshold
	for i := 0; i < total; i++ {
		sim.Inject(NodeID(i%nodes), i)
	}
	if _, err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
}

// BenchmarkShardedQueue measures raw event throughput of the sharded engine
// at a scale where the seed's single heap was the bottleneck.
func BenchmarkShardedQueue(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sim := NewSharded(Fixed(1), rng.New(1), shards, 4)
			relay := handlerFunc(func(ctx *Context, msg Message) {
				hop := msg.Payload.(int)
				if hop > 0 {
					ctx.Send((ctx.Self()+1)%1024, hop-1)
				}
			})
			for i := 0; i < 1024; i++ {
				sim.Register(NodeID(i), relay)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 1024; j++ {
					sim.Inject(NodeID(j), 64)
				}
				if _, err := sim.Run(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
