// Package simnet is a deterministic discrete-event network simulator: nodes
// are event handlers addressed by integer ids, messages are delivered after
// a per-link latency drawn from a configurable model, and a virtual clock
// advances from event to event. ABD-HFL's partial-synchrony assumption
// (arbitrary, finite, unbounded delivery time) maps onto unbounded latency
// distributions; determinism makes the pipeline timing quantities of the
// paper (σ_w, σ_p, σ_g, ν) exactly reproducible.
//
// The event queue is sharded (see queue.go) and event structs are pooled, so
// dispatch stays allocation-free and the engine scales to million-device
// topologies. Shard count never changes delivery order: events are totally
// ordered by (time, schedule sequence) and the cross-shard merge pops them
// in exactly that order.
package simnet

import (
	"fmt"

	"abdhfl/internal/rng"
)

// Time is virtual simulation time in milliseconds.
type Time float64

// NodeID identifies a simulated node.
type NodeID int

// Message is a payload in flight between two nodes.
type Message struct {
	From, To NodeID
	Payload  any
	// SentAt and At are the send and delivery times.
	SentAt, At Time
}

// Handler is a simulated node: it reacts to delivered messages and timers.
type Handler interface {
	// OnMessage is invoked when a message is delivered to the node.
	OnMessage(ctx *Context, msg Message)
}

// TimerFunc is a scheduled callback.
type TimerFunc func(ctx *Context)

// event is a queue entry: either a message delivery or a timer (timer != nil
// discriminates). The Message is embedded by value — events are pooled and a
// pointer here would force a second allocation per send.
type event struct {
	at    Time
	seq   uint64 // tie-break so simultaneous events fire in schedule order
	msg   Message
	timer TimerFunc
	node  NodeID
}

// Stats aggregates traffic counters for communication-cost accounting and
// fault-injection audit: every message lost or multiplied by the fault
// layer is counted, never silently discarded.
type Stats struct {
	Messages int   // messages enqueued for delivery
	Volume   int64 // payload volume in abstract units (see Sim.SendVolume)
	// Dropped counts messages suppressed by the fault model before entering
	// the network.
	Dropped int
	// Duplicated counts the extra copies injected by the fault model.
	Duplicated int
	// DroppedUnregistered counts deliveries to nodes no handler is bound to
	// (crashed or never-started nodes).
	DroppedUnregistered int
	// PeakQueue is the high-water mark of simultaneously pending events —
	// the gauge chaos runs watch to spot queue blow-ups. It is identical for
	// every shard count because insert/remove accounting is global.
	PeakQueue int
}

// Sim is the simulator instance. It is not safe for concurrent use; node
// handlers run sequentially in virtual-time order. (The queue may fold large
// insert bursts worker-parallel internally, but dispatch is serial.)
type Sim struct {
	now Time
	seq uint64
	q   *shardedQueue
	// nodes is a dense registry for the common non-negative ids; negNodes
	// catches the rare negative ids (external actors).
	nodes    []Handler
	negNodes map[NodeID]Handler
	latency  LatencyModel
	sized    SizedLatencyModel // latency, when it is also bandwidth-aware
	rng      *rng.RNG
	frng     *rng.RNG // dedicated stream for fault draws
	stats    Stats
	// Fault, if non-nil, is consulted for every sent message and may drop,
	// duplicate, or delay it (see FaultModel). Set it before the first Send.
	Fault FaultModel
	// Trace, if non-nil, receives every delivered message.
	Trace func(msg Message)
	// MaxEvents guards against runaway protocols; zero means 10 million.
	MaxEvents int
	// Bandwidth, if non-nil, returns the link capacity from->to in volume
	// units per virtual millisecond; a message of volume v then adds
	// v/bandwidth to its delivery delay. It models the paper's Appendix E
	// observation that per-level bandwidth differences dominate when models
	// are large. Nil means infinite bandwidth.
	Bandwidth func(from, to NodeID) float64
}

// New returns a simulator using the given latency model and random stream,
// with a single queue shard — the right default for small topologies.
func New(latency LatencyModel, r *rng.RNG) *Sim {
	return NewSharded(latency, r, 1, 1)
}

// NewSharded returns a simulator whose event queue is split across the given
// number of shards (clamped to [1,256], rounded up to a power of two) and
// which may use up to workers goroutines to fold large event bursts into the
// shard heaps. Delivery order — and therefore every seeded result — is
// byte-identical for any shards/workers combination; the knobs trade only
// wall-clock speed at scale.
func NewSharded(latency LatencyModel, r *rng.RNG, shards, workers int) *Sim {
	if latency == nil {
		latency = Fixed(1)
	}
	if r == nil {
		r = rng.New(0)
	}
	sized, _ := latency.(SizedLatencyModel)
	return &Sim{
		q:       newShardedQueue(shards, workers),
		latency: latency,
		sized:   sized,
		rng:     r,
		frng:    r.Derive("fault"),
	}
}

// Register binds a handler to a node id, replacing any previous binding.
func (s *Sim) Register(id NodeID, h Handler) {
	if id < 0 {
		if s.negNodes == nil {
			s.negNodes = make(map[NodeID]Handler)
		}
		s.negNodes[id] = h
		return
	}
	if int(id) >= len(s.nodes) {
		grown := make([]Handler, int(id)+1)
		copy(grown, s.nodes)
		s.nodes = grown
	}
	s.nodes[id] = h
}

// handlerFor returns the handler bound to id, or nil.
func (s *Sim) handlerFor(id NodeID) Handler {
	if id < 0 {
		return s.negNodes[id]
	}
	if int(id) >= len(s.nodes) {
		return nil
	}
	return s.nodes[id]
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Stats returns the traffic counters accumulated so far.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.PeakQueue = s.q.peak
	return st
}

// Context is the API a handler uses to interact with the simulator during an
// event callback.
type Context struct {
	sim  *Sim
	self NodeID
}

// Self returns the node id the current callback belongs to.
func (c *Context) Self() NodeID { return c.self }

// Now returns the current virtual time.
func (c *Context) Now() Time { return c.sim.now }

// Rand returns the simulator's random stream.
func (c *Context) Rand() *rng.RNG { return c.sim.rng }

// Send enqueues a message to the given node with latency drawn from the
// simulator's model. Volume 1 is recorded; use SendVolume for model-sized
// payloads.
func (c *Context) Send(to NodeID, payload any) { c.SendVolume(to, payload, 1) }

// SendVolume is Send with an explicit payload volume (e.g. the parameter
// count of a model) for communication-cost accounting.
func (c *Context) SendVolume(to NodeID, payload any, volume int64) {
	c.sim.send(c.self, to, payload, volume)
}

// After schedules fn on this node after the given virtual delay.
func (c *Context) After(d Time, fn TimerFunc) {
	if d < 0 {
		panic("simnet: negative timer delay")
	}
	s := c.sim
	e := s.q.get()
	e.at = s.now + d
	e.timer = fn
	e.node = c.self
	s.schedule(e)
}

func (s *Sim) send(from, to NodeID, payload any, volume int64) {
	copies := 1
	extra := 0.0
	if s.Fault != nil {
		f := s.Fault.Fate(s.frng, from, to, s.now)
		if f.Drop {
			s.stats.Dropped++
			return
		}
		if f.Duplicates > 0 {
			copies += f.Duplicates
			s.stats.Duplicated += f.Duplicates
		}
		if f.ExtraDelay > 0 {
			extra = f.ExtraDelay
		}
	}
	for c := 0; c < copies; c++ {
		d := s.latency.Delay(s.rng, from, to) + extra
		if d < 0 {
			d = 0
		}
		if s.Bandwidth != nil {
			if bw := s.Bandwidth(from, to); bw > 0 {
				d += float64(volume) / bw
			}
		}
		// The size term is deterministic (no rng), so payload sizes never
		// perturb the random latency/fault streams drawn above.
		if s.sized != nil {
			d += s.sized.SizeDelay(volume, from, to)
		}
		at := s.now + Time(d)
		s.stats.Messages++
		s.stats.Volume += volume
		e := s.q.get()
		e.at = at
		e.msg = Message{From: from, To: to, Payload: payload, SentAt: s.now, At: at}
		e.node = to
		s.schedule(e)
	}
}

func (s *Sim) schedule(e *event) {
	e.seq = s.seq
	s.seq++
	s.q.add(e)
}

// Inject delivers a payload to a node from the outside world (NodeID -1) at
// the current time plus the link latency; used to bootstrap protocols.
func (s *Sim) Inject(to NodeID, payload any) {
	s.send(-1, to, payload, 1)
}

// ScheduleAt runs fn for node id at absolute virtual time at (>= now).
func (s *Sim) ScheduleAt(at Time, id NodeID, fn TimerFunc) {
	if at < s.now {
		panic("simnet: ScheduleAt in the past")
	}
	e := s.q.get()
	e.at = at
	e.timer = fn
	e.node = id
	s.schedule(e)
}

// Run processes events until the queue is empty or until virtual time
// exceeds until (0 = no limit). It returns the number of events processed
// and an error if MaxEvents is exceeded.
func (s *Sim) Run(until Time) (int, error) {
	maxEvents := s.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	processed := 0
	for {
		e := s.q.popMin()
		if e == nil {
			break
		}
		if until > 0 && e.at > until {
			// Push back (seq preserved) so a later Run can resume from here.
			s.q.add(e)
			s.now = until
			return processed, nil
		}
		s.now = e.at
		processed++
		if processed > maxEvents {
			s.q.put(e)
			return processed, fmt.Errorf("simnet: exceeded %d events (livelock?)", maxEvents)
		}
		ctx := &Context{sim: s, self: e.node}
		if e.timer != nil {
			fn := e.timer
			s.q.put(e)
			fn(ctx)
			continue
		}
		h := s.handlerFor(e.node)
		if h == nil {
			// Message to an unregistered (crashed / never-started) node: the
			// delivery is lost, and — unlike the seed's bare continue — the
			// loss is counted so runners can surface it in their summaries.
			s.stats.DroppedUnregistered++
			s.q.put(e)
			continue
		}
		msg := e.msg
		s.q.put(e)
		if s.Trace != nil {
			s.Trace(msg)
		}
		h.OnMessage(ctx, msg)
	}
	return processed, nil
}

// Pending reports whether undelivered events remain.
func (s *Sim) Pending() bool { return !s.q.empty() }
