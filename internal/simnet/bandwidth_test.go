package simnet

import (
	"testing"

	"abdhfl/internal/rng"
)

// TestBandwidthChargesVolume: a Bandwidth-wrapped model delivers at
// base + volume/rate + per-message, exactly.
func TestBandwidthChargesVolume(t *testing.T) {
	s := New(Bandwidth{Base: Fixed(5), Rate: 100, PerMessage: 1}, rng.New(1))
	a := &echoNode{}
	s.Register(1, a)
	s.ScheduleAt(0, 1, func(ctx *Context) {
		ctx.SendVolume(1, "big", 1000) // 5 + 1000/100 + 1 = 16
		ctx.Send(1, "small")           // volume 1: 5 + 0.01 + 1
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(a.times) != 2 {
		t.Fatalf("got %d deliveries", len(a.times))
	}
	if a.times[0] != 6.01 || a.times[1] != 16 {
		t.Fatalf("delivery times = %v, want [6.01 16]", a.times)
	}
}

// TestBandwidthRngInvariance pins the property the Identity-codec golden
// tests rely on: the size term consumes no random bits, so changing payload
// volumes shifts delivery times by exactly the deterministic transmission
// delay without perturbing the latency draws.
func TestBandwidthRngInvariance(t *testing.T) {
	run := func(volume int64) []Time {
		s := New(Bandwidth{Base: Uniform{Min: 1, Max: 10}, Rate: 50}, rng.New(7))
		a := &echoNode{}
		s.Register(1, a)
		s.ScheduleAt(0, 1, func(ctx *Context) {
			for i := 0; i < 8; i++ {
				ctx.SendVolume(1, i, volume)
			}
		})
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return a.times
	}
	small, large := run(0), run(500)
	if len(small) != len(large) {
		t.Fatal("delivery counts differ")
	}
	for i := range small {
		// 500/50 = +10 on the same latency draw, under the identical
		// float64 addition Sim.send performs.
		if large[i] != small[i]+10 {
			t.Fatalf("delivery %d: %v vs %v, want exact +10 shift", i, small[i], large[i])
		}
	}
}

// TestBandwidthComposesWithFaultDelay: Fate.ExtraDelay and the volume term
// add up on the same message.
func TestBandwidthComposesWithFaultDelay(t *testing.T) {
	s := New(Bandwidth{Base: Fixed(2), Rate: 10}, rng.New(3))
	s.Fault = FateFunc(func(_ *rng.RNG, _, _ NodeID, _ Time) Fate {
		return Fate{ExtraDelay: 7}
	})
	a := &echoNode{}
	s.Register(1, a)
	s.ScheduleAt(0, 1, func(ctx *Context) { ctx.SendVolume(1, "x", 40) })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(a.times) != 1 || a.times[0] != 13 { // 2 + 7 + 40/10
		t.Fatalf("delivery times = %v, want [13]", a.times)
	}
}

// TestBandwidthZeroRate: Rate <= 0 disables the volume term, leaving the
// base model untouched.
func TestBandwidthZeroRate(t *testing.T) {
	s := New(Bandwidth{Base: Fixed(4)}, rng.New(1))
	a := &echoNode{}
	s.Register(1, a)
	s.ScheduleAt(0, 1, func(ctx *Context) { ctx.SendVolume(1, "x", 1 << 40) })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.times[0] != 4 {
		t.Fatalf("delivery time = %v, want 4", a.times[0])
	}
}
