package simnet

import "abdhfl/internal/rng"

// LatencyModel computes the delivery delay (in virtual milliseconds) for a
// message on the link from -> to.
type LatencyModel interface {
	Delay(r *rng.RNG, from, to NodeID) float64
}

// Fixed is a constant-latency model.
type Fixed float64

// Delay implements LatencyModel.
func (f Fixed) Delay(*rng.RNG, NodeID, NodeID) float64 { return float64(f) }

// Uniform draws latency uniformly from [Min, Max].
type Uniform struct {
	Min, Max float64
}

// Delay implements LatencyModel.
func (u Uniform) Delay(r *rng.RNG, _, _ NodeID) float64 {
	return u.Min + (u.Max-u.Min)*r.Float64()
}

// LogNormal draws latency from Base * LogNormal(0, Sigma): a heavy-tailed
// model matching wide-area links with occasional stragglers — the regime
// ABD-HFL's partial synchrony assumption targets (finite but unbounded).
type LogNormal struct {
	Base  float64
	Sigma float64
}

// Delay implements LatencyModel.
func (l LogNormal) Delay(r *rng.RNG, _, _ NodeID) float64 {
	return l.Base * r.LogNormal(0, l.Sigma)
}

// PerLink dispatches to a custom function, allowing level-dependent
// latencies (e.g. slower WAN links near the top of the tree).
type PerLink func(r *rng.RNG, from, to NodeID) float64

// Delay implements LatencyModel.
func (p PerLink) Delay(r *rng.RNG, from, to NodeID) float64 { return p(r, from, to) }
