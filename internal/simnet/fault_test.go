package simnet

import (
	"testing"

	"abdhfl/internal/rng"
)

func TestFaultModelDrop(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Fault = FateFunc(func(_ *rng.RNG, _, _ NodeID, _ Time) Fate {
		return Fate{Drop: true}
	})
	n := &echoNode{}
	s.Register(1, n)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "lost") })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(n.got) != 0 {
		t.Fatalf("dropped message delivered: %v", n.got)
	}
	st := s.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	if st.Messages != 0 {
		t.Fatalf("dropped message counted as sent: %d", st.Messages)
	}
}

func TestFaultModelDuplicate(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Fault = FateFunc(func(_ *rng.RNG, _, _ NodeID, _ Time) Fate {
		return Fate{Duplicates: 2}
	})
	n := &echoNode{}
	s.Register(1, n)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "thrice") })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(n.got) != 3 {
		t.Fatalf("%d deliveries, want 3 (original + 2 copies)", len(n.got))
	}
	st := s.Stats()
	if st.Duplicated != 2 || st.Messages != 3 {
		t.Fatalf("duplicated = %d, messages = %d", st.Duplicated, st.Messages)
	}
}

func TestFaultModelExtraDelay(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Fault = FateFunc(func(_ *rng.RNG, _, _ NodeID, _ Time) Fate {
		return Fate{ExtraDelay: 9}
	})
	n := &echoNode{}
	s.Register(1, n)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "late") })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if n.times[0] != 10 { // 1 ms latency + 9 ms fault delay
		t.Fatalf("delivery at %v, want 10", n.times[0])
	}
}

func TestDroppedUnregisteredCounted(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Inject(99, "void")
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DroppedUnregistered; got != 1 {
		t.Fatalf("dropped-unregistered = %d, want 1", got)
	}
}

// TestFaultStreamDoesNotPerturbLatency pins the dedicated-stream contract: a
// fault model that consumes random draws but faults nothing must leave every
// latency draw — and so every delivery time — identical to a fault-free run.
func TestFaultStreamDoesNotPerturbLatency(t *testing.T) {
	run := func(withFaultModel bool) []Time {
		s := New(Uniform{Min: 1, Max: 10}, rng.New(7))
		if withFaultModel {
			s.Fault = FateFunc(func(r *rng.RNG, _, _ NodeID, _ Time) Fate {
				r.Float64() // consume fault-stream entropy
				return Fate{}
			})
		}
		n := &echoNode{}
		s.Register(1, n)
		for i := 0; i < 50; i++ {
			s.Inject(1, i)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return n.times
	}
	plain, faulted := run(false), run(true)
	for i := range plain {
		if plain[i] != faulted[i] {
			t.Fatalf("fault draws perturbed latency at %d: %v vs %v", i, plain[i], faulted[i])
		}
	}
}
