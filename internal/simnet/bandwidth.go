package simnet

import "abdhfl/internal/rng"

// SizedLatencyModel extends LatencyModel with a volume-dependent delay term,
// making the simulator bandwidth-aware: when the configured latency model
// implements it, every message additionally pays SizeDelay(volume) on top of
// the random propagation draw and any fault Fate.ExtraDelay. The size term
// is deterministic — it consumes no random bits — so changing payload sizes
// (e.g. swapping codecs) never perturbs the rng streams, and an Identity-
// codec run stays bit-identical to an uncompressed one.
type SizedLatencyModel interface {
	LatencyModel
	// SizeDelay is the transmission time (virtual milliseconds) of a message
	// of the given volume on the link from -> to. Must be deterministic and
	// non-negative.
	SizeDelay(volume int64, from, to NodeID) float64
}

// Bandwidth wraps a base latency model with a transmission-time term: a
// message of volume v (bytes, when the engines ship codec wire sizes) is
// charged Base's propagation delay + v/Rate + PerMessage. It is the
// "bytes/rate + base" model the codec matrix uses to make ν and the round
// timings reflect payload size.
//
// Bandwidth composes with the legacy Sim.Bandwidth capacity hook (both terms
// are added if both are configured) and with fault-injected ExtraDelay.
type Bandwidth struct {
	// Base draws the size-independent propagation delay; nil means zero.
	Base LatencyModel
	// Rate is the link capacity in volume units per virtual millisecond;
	// <= 0 disables the volume term.
	Rate float64
	// PerMessage is a fixed per-message serialization overhead in virtual
	// milliseconds.
	PerMessage float64
}

// Delay implements LatencyModel, delegating to Base.
func (b Bandwidth) Delay(r *rng.RNG, from, to NodeID) float64 {
	if b.Base == nil {
		return 0
	}
	return b.Base.Delay(r, from, to)
}

// SizeDelay implements SizedLatencyModel.
func (b Bandwidth) SizeDelay(volume int64, from, to NodeID) float64 {
	d := b.PerMessage
	if b.Rate > 0 && volume > 0 {
		d += float64(volume) / b.Rate
	}
	return d
}
