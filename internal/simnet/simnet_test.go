package simnet

import (
	"testing"

	"abdhfl/internal/rng"
)

// echoNode records delivered payloads and optionally replies.
type echoNode struct {
	got   []any
	times []Time
	reply bool
}

func (n *echoNode) OnMessage(ctx *Context, msg Message) {
	n.got = append(n.got, msg.Payload)
	n.times = append(n.times, ctx.Now())
	if n.reply && msg.From >= 0 {
		ctx.Send(msg.From, "ack")
	}
}

func TestDeliveryAndClock(t *testing.T) {
	s := New(Fixed(5), rng.New(1))
	a := &echoNode{}
	s.Register(1, a)
	s.Inject(1, "hello")
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(a.got) != 1 || a.got[0] != "hello" {
		t.Fatalf("got %v", a.got)
	}
	if a.times[0] != 5 {
		t.Fatalf("delivery time = %v, want 5", a.times[0])
	}
}

func TestRequestReply(t *testing.T) {
	s := New(Fixed(2), rng.New(1))
	a := &echoNode{reply: true}
	b := &echoNode{}
	s.Register(1, a)
	s.Register(2, b)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "ping") })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 || b.got[0] != "ack" {
		t.Fatalf("reply not delivered: %v", b.got)
	}
	if b.times[0] != 4 {
		t.Fatalf("round trip time = %v, want 4", b.times[0])
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		s := New(Uniform{Min: 1, Max: 10}, rng.New(7))
		n := &echoNode{}
		s.Register(1, n)
		for i := 0; i < 50; i++ {
			s.Inject(1, i)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return n.times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	// Equal-latency messages scheduled in order must be delivered in order.
	s := New(Fixed(1), rng.New(1))
	n := &echoNode{}
	s.Register(1, n)
	for i := 0; i < 10; i++ {
		s.Inject(1, i)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range n.got {
		if v.(int) != i {
			t.Fatalf("out-of-order delivery: %v", n.got)
		}
	}
}

func TestTimer(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	fired := Time(-1)
	s.ScheduleAt(3, 1, func(ctx *Context) {
		ctx.After(4, func(ctx *Context) { fired = ctx.Now() })
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 7 {
		t.Fatalf("timer fired at %v, want 7", fired)
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	s := New(Fixed(10), rng.New(1))
	n := &echoNode{}
	s.Register(1, n)
	s.Inject(1, "x")
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(n.got) != 0 {
		t.Fatal("message delivered before its time")
	}
	if !s.Pending() {
		t.Fatal("pending event lost")
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(n.got) != 1 {
		t.Fatal("message lost after resume")
	}
}

func TestUnregisteredNodeDrops(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Inject(99, "void")
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	a := &echoNode{}
	s.Register(1, a)
	s.ScheduleAt(0, 2, func(ctx *Context) {
		ctx.Send(1, "m1")
		ctx.SendVolume(1, "m2", 2500)
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Volume != 2501 {
		t.Fatalf("volume = %d", st.Volume)
	}
}

func TestMaxEventsLivelockGuard(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.MaxEvents = 100
	// Two nodes ping-pong forever.
	a := &echoNode{reply: true}
	b := &echoNode{reply: true}
	s.Register(1, a)
	s.Register(2, b)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "ping") })
	if _, err := s.Run(0); err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestTraceHook(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Register(1, &echoNode{})
	var traced []Message
	s.Trace = func(m Message) { traced = append(traced, m) }
	s.Inject(1, "x")
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0].Payload != "x" {
		t.Fatalf("trace = %v", traced)
	}
}

func TestLatencyModels(t *testing.T) {
	r := rng.New(1)
	if d := (Fixed(3)).Delay(r, 0, 1); d != 3 {
		t.Fatalf("Fixed = %v", d)
	}
	u := Uniform{Min: 2, Max: 4}
	for i := 0; i < 100; i++ {
		d := u.Delay(r, 0, 1)
		if d < 2 || d > 4 {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	l := LogNormal{Base: 5, Sigma: 0.5}
	for i := 0; i < 100; i++ {
		if d := l.Delay(r, 0, 1); d <= 0 {
			t.Fatalf("LogNormal non-positive: %v", d)
		}
	}
	p := PerLink(func(_ *rng.RNG, from, to NodeID) float64 { return float64(from + to) })
	if d := p.Delay(r, 2, 3); d != 5 {
		t.Fatalf("PerLink = %v", d)
	}
}

func TestNegativeTimerPanics(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.ScheduleAt(0, 1, func(ctx *Context) {
		defer func() {
			if recover() == nil {
				t.Error("negative After did not panic")
			}
		}()
		ctx.After(-1, func(*Context) {})
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New(Fixed(1), rng.New(1))
	n := &echoNode{}
	s.Register(1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Inject(1, i)
	}
	if _, err := s.Run(0); err != nil {
		b.Fatal(err)
	}
}

func TestBandwidthAddsTransferDelay(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Bandwidth = func(_, _ NodeID) float64 { return 100 } // 100 units/ms
	n := &echoNode{}
	s.Register(1, n)
	s.ScheduleAt(0, 2, func(ctx *Context) {
		ctx.SendVolume(1, "big", 500) // 5 ms of transfer time
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if n.times[0] != 6 { // 1 ms latency + 500/100 transfer
		t.Fatalf("delivery at %v, want 6", n.times[0])
	}
}

func TestBandwidthZeroMeansInfinite(t *testing.T) {
	s := New(Fixed(1), rng.New(1))
	s.Bandwidth = func(_, _ NodeID) float64 { return 0 }
	n := &echoNode{}
	s.Register(1, n)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.SendVolume(1, "x", 1e6) })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if n.times[0] != 1 {
		t.Fatalf("delivery at %v, want 1", n.times[0])
	}
}

func TestCausalityProperty(t *testing.T) {
	// Delivery never precedes sending, under any latency model draw.
	s := New(LogNormal{Base: 3, Sigma: 1}, rng.New(9))
	var bad int
	s.Trace = func(m Message) {
		if m.At < m.SentAt {
			bad++
		}
	}
	n := &echoNode{reply: true}
	m2 := &echoNode{reply: true}
	s.MaxEvents = 500
	s.Register(1, n)
	s.Register(2, m2)
	s.ScheduleAt(0, 2, func(ctx *Context) { ctx.Send(1, "ping") })
	_, _ = s.Run(0) // ping-pong until MaxEvents; we only check causality
	if bad != 0 {
		t.Fatalf("%d messages delivered before they were sent", bad)
	}
}
