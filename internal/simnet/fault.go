package simnet

import "abdhfl/internal/rng"

// Fate is the transport-fault verdict for one message about to enter the
// network: it may be dropped, duplicated (extra independent copies, each
// with its own latency draw — which is also how reordering arises), or
// delayed by an extra amount on top of the latency model.
type Fate struct {
	// Drop suppresses the message entirely.
	Drop bool
	// Duplicates is the number of EXTRA copies delivered (0 = exactly one
	// delivery). Each copy draws its own latency, so copies reorder freely.
	Duplicates int
	// ExtraDelay is added to every copy's delivery delay (virtual ms); it
	// models transient reordering-by-delay without duplicating.
	ExtraDelay float64
}

// FaultModel decides per-message transport faults, the failure-side
// counterpart of LatencyModel: where LatencyModel answers "when does this
// message arrive", FaultModel answers "does it arrive at all, and how many
// times". It is consulted once per Send with a dedicated random stream
// (derived from the simulator's seed under the label "fault"), so enabling
// faults never perturbs the latency draws of fault-free traffic and the
// whole run stays bit-reproducible for a given seed.
type FaultModel interface {
	Fate(r *rng.RNG, from, to NodeID, at Time) Fate
}

// FateFunc adapts a function to the FaultModel interface.
type FateFunc func(r *rng.RNG, from, to NodeID, at Time) Fate

// Fate implements FaultModel.
func (f FateFunc) Fate(r *rng.RNG, from, to NodeID, at Time) Fate { return f(r, from, to, at) }
