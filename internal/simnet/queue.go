package simnet

import "sync"

// This file implements the simulator's sharded event queue. The seed-era
// engine kept one global container/heap whose interface methods boxed every
// *event through `any` and whose single O(log n) heap dominated the dispatch
// profile once runs grew past a few hundred nodes. The rework shards the
// queue by node id across per-shard binary heaps keyed by (at, seq) and
// merges at pop time by scanning the shard heads for the minimum key.
//
// Determinism contract: (at, seq) is a TOTAL order over events — seq is a
// global schedule counter — so the merged dispatch order is identical for
// every shard count. Sharding changes only which heap an event waits in,
// never when it fires; a seeded run is byte-identical at shards=1 and
// shards=64, which the shard-invariance tests pin.
//
// Two further mechanics matter at million-device scale:
//
//   - Staged inserts. schedule() appends to a per-shard pending slice
//     instead of heap-pushing immediately; pending events are folded into
//     the heaps just before the next pop. A handler (or a round kickoff)
//     that schedules a large burst therefore pays one batched fold, and
//     when the burst is big enough the fold fans out worker-parallel across
//     shards — each worker owns whole shards, so there is no locking and no
//     nondeterminism.
//   - Pooled events. Dispatched events return to a free list and are
//     reused, so the steady state allocates no event structs and the
//     Message payload envelope is embedded by value rather than pointed to.
type shardedQueue struct {
	shards  []eventHeap
	pending [][]*event
	staged  int // events sitting in pending slices
	size    int // total queued events (heaps + pending)
	peak    int // high-water mark of size (Stats.PeakQueue)
	workers int // fan-out bound for parallel folds
	free    []*event
}

// parallelFoldThreshold is the staged-event count above which the fold into
// the per-shard heaps fans out across workers. Below it the goroutine
// handoff costs more than the heap pushes save.
const parallelFoldThreshold = 4096

// eventHeap is a binary min-heap of events keyed by (at, seq). The methods
// are monomorphic (no interface boxing) — this is where the seed engine's
// container/heap allocations went.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q)
	e := q[0]
	q[0] = q[n-1]
	q[n-1] = nil
	q = q[:n-1]
	*h = q
	// Sift the relocated root down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(q) && eventLess(q[l], q[least]) {
			least = l
		}
		if r < len(q) && eventLess(q[r], q[least]) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return e
}

// newShardedQueue sizes the queue for the given shard and worker counts.
// Shards are clamped to [1, 256] and rounded up to a power of two so the
// shard index is a mask instead of a modulo.
func newShardedQueue(shards, workers int) *shardedQueue {
	if shards < 1 {
		shards = 1
	}
	if shards > 256 {
		shards = 256
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if workers < 1 {
		workers = 1
	}
	return &shardedQueue{
		shards:  make([]eventHeap, n),
		pending: make([][]*event, n),
		workers: workers,
	}
}

// shardOf maps a node id to its shard. Negative ids (external injections)
// fold onto shard 0.
func (q *shardedQueue) shardOf(node NodeID) int {
	if node < 0 {
		return 0
	}
	return int(node) & (len(q.shards) - 1)
}

// add stages an event for insertion. The (at, seq) key is already set by
// the caller; staging preserves nothing about order because the heaps sort
// by the total key.
func (q *shardedQueue) add(e *event) {
	s := q.shardOf(e.node)
	q.pending[s] = append(q.pending[s], e)
	q.staged++
	q.size++
	if q.size > q.peak {
		q.peak = q.size
	}
}

// fold moves every staged event into its shard heap. Large bursts fan out
// worker-parallel: each goroutine folds a disjoint set of shards, touching
// only that shard's pending slice and heap, so the result is independent of
// scheduling and identical to the serial fold.
func (q *shardedQueue) fold() {
	if q.staged == 0 {
		return
	}
	if q.staged >= parallelFoldThreshold && q.workers > 1 && len(q.shards) > 1 {
		workers := q.workers
		if workers > len(q.shards) {
			workers = len(q.shards)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := w; s < len(q.shards); s += workers {
					for _, e := range q.pending[s] {
						q.shards[s].push(e)
					}
					q.pending[s] = q.pending[s][:0]
				}
			}(w)
		}
		wg.Wait()
	} else {
		for s := range q.shards {
			for _, e := range q.pending[s] {
				q.shards[s].push(e)
			}
			q.pending[s] = q.pending[s][:0]
		}
	}
	q.staged = 0
}

// popMin removes and returns the globally minimal event by (at, seq), or
// nil when the queue is empty. The shard-head scan is linear in the shard
// count, which is at most 256 and typically single-digit — far cheaper than
// the deeper heap a single global queue would need.
func (q *shardedQueue) popMin() *event {
	q.fold()
	best := -1
	for s := range q.shards {
		if len(q.shards[s]) == 0 {
			continue
		}
		if best < 0 || eventLess(q.shards[s][0], q.shards[best][0]) {
			best = s
		}
	}
	if best < 0 {
		return nil
	}
	q.size--
	return q.shards[best].pop()
}

// empty reports whether no events remain.
func (q *shardedQueue) empty() bool { return q.size == 0 }

// get returns a pooled event (zeroed) or a fresh one.
func (q *shardedQueue) get() *event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &event{}
}

// put recycles a dispatched event. References are cleared so pooled events
// never retain payloads or timer closures.
func (q *shardedQueue) put(e *event) {
	*e = event{}
	q.free = append(q.free, e)
}
