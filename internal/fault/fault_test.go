package fault

import (
	"strings"
	"testing"

	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
)

func TestNilPlanIsSafeAndInert(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan enabled")
	}
	r := rng.New(1)
	if f := p.Fate(r, 0, 1, 0); f.Drop || f.Duplicates != 0 || f.ExtraDelay != 0 {
		t.Fatalf("nil plan fate = %+v", f)
	}
	if p.DeviceCrashed(0, 0) || p.DeviceOffline(0, 0) || p.DeviceDown(0, 0) {
		t.Fatal("nil plan downs devices")
	}
	if p.OmitUpload(0, 0) || p.DropSend("x") || p.LeaderFailed(0, 0, 0) {
		t.Fatal("nil plan injects faults")
	}
	if p.String() != "none" {
		t.Fatalf("nil plan string = %q", p.String())
	}
}

func TestZeroPlanDisabled(t *testing.T) {
	if (&Plan{Seed: 7}).Enabled() {
		t.Fatal("seed alone enables a plan")
	}
	for _, p := range []*Plan{
		{Drop: 0.1},
		{Duplicate: 0.1},
		{Reorder: 0.1},
		{CrashFromRound: map[int]int{0: 0}},
		{OmitProb: map[int]float64{0: 0.5}},
		{ChurnIntervals: []Churn{{Device: 0, FromRound: 0, ToRound: 1}}},
		{LeaderFailures: []LeaderFailure{{Level: 1}}},
	} {
		if !p.Enabled() {
			t.Fatalf("plan %+v not enabled", p)
		}
	}
}

func TestCoinDeterministicAcrossInstances(t *testing.T) {
	// The engine-agnostic contract: two plan values with identical seed and
	// fields give identical verdicts, in any call order.
	a := &Plan{Seed: 42, OmitProb: map[int]float64{3: 0.5}, Drop: 0.3}
	b := &Plan{Seed: 42, OmitProb: map[int]float64{3: 0.5}, Drop: 0.3}
	for round := 0; round < 50; round++ {
		if a.OmitUpload(3, round) != b.OmitUpload(3, round) {
			t.Fatalf("omit verdicts diverge at round %d", round)
		}
	}
	// Reverse order on b: verdicts are pure functions of (seed, label).
	labels := []string{"up-0-0", "up-1-0", "partial-2-0-1", "up-0-1"}
	got := make([]bool, len(labels))
	for i, l := range labels {
		got[i] = a.DropSend(l)
	}
	for i := len(labels) - 1; i >= 0; i-- {
		if b.DropSend(labels[i]) != got[i] {
			t.Fatalf("drop verdict for %q order-dependent", labels[i])
		}
	}
}

func TestCoinProbabilityEdges(t *testing.T) {
	p := &Plan{Seed: 1, OmitProb: map[int]float64{0: 1.0, 1: 0.0}}
	for round := 0; round < 10; round++ {
		if !p.OmitUpload(0, round) {
			t.Fatal("probability 1 did not omit")
		}
		if p.OmitUpload(1, round) {
			t.Fatal("probability 0 omitted")
		}
	}
}

func TestCrashChurnAndDown(t *testing.T) {
	p := &Plan{
		CrashFromRound: map[int]int{4: 2},
		ChurnIntervals: []Churn{{Device: 7, FromRound: 1, ToRound: 3}},
	}
	// Crash: permanent from its round.
	for round, want := range map[int]bool{0: false, 1: false, 2: true, 3: true, 99: true} {
		if p.DeviceCrashed(4, round) != want {
			t.Fatalf("crash(4, %d) != %v", round, want)
		}
	}
	// Churn: half-open interval, rejoins at ToRound.
	for round, want := range map[int]bool{0: false, 1: true, 2: true, 3: false} {
		if p.DeviceOffline(7, round) != want {
			t.Fatalf("offline(7, %d) != %v", round, want)
		}
	}
	if !p.DeviceDown(4, 5) || !p.DeviceDown(7, 2) || p.DeviceDown(0, 0) {
		t.Fatal("DeviceDown disagrees with crash/churn")
	}
}

func TestLeaderFailed(t *testing.T) {
	p := &Plan{LeaderFailures: []LeaderFailure{{Level: 2, Cluster: 1, FromRound: 3}}}
	if p.LeaderFailed(2, 1, 2) {
		t.Fatal("failed before FromRound")
	}
	if !p.LeaderFailed(2, 1, 3) || !p.LeaderFailed(2, 1, 10) {
		t.Fatal("not failed from FromRound on")
	}
	if p.LeaderFailed(2, 0, 5) || p.LeaderFailed(1, 1, 5) {
		t.Fatal("wrong cluster/level failed")
	}
}

func TestMergeSemantics(t *testing.T) {
	a := &Plan{Seed: 5, Drop: 0.5, CrashFromRound: map[int]int{1: 4}, OmitProb: map[int]float64{2: 0.5}}
	b := &Plan{Seed: 9, Drop: 0.5, CrashFromRound: map[int]int{1: 2, 3: 1},
		ChurnIntervals: []Churn{{Device: 0, FromRound: 0, ToRound: 1}},
		LeaderFailures: []LeaderFailure{{Level: 1}}}
	m := Merge(a, nil, b)
	if m.Seed != 5 {
		t.Fatalf("seed = %d, want first non-zero (5)", m.Seed)
	}
	// Independent-event union: 1 - 0.5*0.5.
	if m.Drop != 0.75 {
		t.Fatalf("drop = %v, want 0.75", m.Drop)
	}
	if m.CrashFromRound[1] != 2 {
		t.Fatalf("crash round = %d, want earliest (2)", m.CrashFromRound[1])
	}
	if m.CrashFromRound[3] != 1 {
		t.Fatal("crash from second plan lost")
	}
	if m.OmitProb[2] != 0.5 {
		t.Fatal("omit prob lost")
	}
	if len(m.ChurnIntervals) != 1 || len(m.LeaderFailures) != 1 {
		t.Fatal("churn/leader lists not concatenated")
	}
	// Merging mutated neither input.
	if a.Drop != 0.5 || b.CrashFromRound[1] != 2 {
		t.Fatal("inputs mutated")
	}
}

func TestFateDistribution(t *testing.T) {
	p := &Plan{Drop: 0.3, Duplicate: 0.2, Reorder: 0.5, ReorderDelay: 10}
	r := rng.New(77)
	drops, dups, delayed := 0, 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		f := p.Fate(r, simnet.NodeID(i%8), simnet.NodeID(i%3), simnet.Time(i))
		if f.Drop {
			drops++
			if f.Duplicates != 0 || f.ExtraDelay != 0 {
				t.Fatal("dropped message also duplicated/delayed")
			}
			continue
		}
		if f.Duplicates > 0 {
			dups++
		}
		if f.ExtraDelay > 0 {
			delayed++
			if f.ExtraDelay >= p.ReorderDelay {
				t.Fatalf("extra delay %v >= bound %v", f.ExtraDelay, p.ReorderDelay)
			}
		}
	}
	if drops < n/4 || drops > n/2 {
		t.Fatalf("drops = %d of %d at p=0.3", drops, n)
	}
	if dups == 0 || delayed == 0 {
		t.Fatal("no duplicates or reorders drawn")
	}
}

func TestHelperConstructors(t *testing.T) {
	c := CrashDevices(11, 8, 3, 2)
	if len(c.CrashFromRound) != 3 {
		t.Fatalf("crashed %d devices, want 3", len(c.CrashFromRound))
	}
	for id, r := range c.CrashFromRound {
		if id < 0 || id >= 8 || r != 2 {
			t.Fatalf("crash entry (%d, %d) out of spec", id, r)
		}
	}
	if got := CrashDevices(11, 8, 3, 2); len(got.CrashFromRound) != 3 {
		t.Fatal("crash pick not deterministic in size")
	}
	if len(CrashDevices(1, 2, 5, 0).CrashFromRound) != 2 {
		t.Fatal("k > n not clamped")
	}

	ch := ChurnDevices(11, 8, 2, 1, 4)
	if len(ch.ChurnIntervals) != 2 {
		t.Fatalf("churned %d devices, want 2", len(ch.ChurnIntervals))
	}
	for _, iv := range ch.ChurnIntervals {
		if iv.FromRound != 1 || iv.ToRound != 4 {
			t.Fatalf("churn interval %+v out of spec", iv)
		}
	}

	l := Lossy(11, 0.1, 0.05, 20)
	if l.Drop != 0.1 || l.Duplicate != 0.05 || l.Reorder == 0 || l.ReorderDelay != 20 {
		t.Fatalf("lossy plan %+v out of spec", l)
	}
	if p := Lossy(11, 0.1, 0, 0); p.Reorder != 0 {
		t.Fatal("zero reorderDelay still reorders")
	}
}

func TestString(t *testing.T) {
	p := Merge(
		Lossy(1, 0.1, 0.05, 20),
		CrashDevices(1, 8, 2, 1),
		&Plan{LeaderFailures: []LeaderFailure{{Level: 1, Cluster: 0, FromRound: 2}}},
	)
	s := p.String()
	for _, want := range []string{"drop=10%", "dup=5%", "reorder=", "crash=2 devs", "leader(1,0)@r2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
