// Package fault describes failure scenarios for ABD-HFL runs as composable,
// seeded, deterministic fault plans. A Plan captures the failure modes the
// paper's partial-synchrony assumption ("arbitrary, finite, unbounded"
// delivery) and Assumptions 2-3 (crash and churn within quorum bounds)
// admit, plus the adversarial ones the quorum-φ and timeout machinery
// exists to survive:
//
//   - transport faults: per-message drop, duplication, and reordering-by-
//     extra-delay (wired into internal/simnet as a FaultModel);
//   - crash (fail-stop) devices: a device stops training and uploading from
//     a chosen round onwards, forever;
//   - omission-Byzantine devices: a device keeps receiving and training but
//     silently withholds a fraction of its uploads;
//   - transient churn: a device is down for a round interval and rejoins;
//   - leader failure: the leader of a chosen cluster stops responding from
//     a chosen round — the structurally-important-node failure that
//     topology-resilience studies single out.
//
// All decisions are pure functions of (Plan, Seed, identifiers): the same
// plan produces the same fault pattern in the discrete-event simulator and
// in the goroutine engine, and every method is safe on a nil *Plan (no
// faults), so engines query unconditionally.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
)

// Churn takes a device offline for the half-open global-round interval
// [FromRound, ToRound); the device rejoins at ToRound.
type Churn struct {
	Device             int
	FromRound, ToRound int
}

// LeaderFailure makes the leader of cluster (Level, Cluster) stop
// responding — collecting, aggregating, and forwarding — for every round
// >= FromRound. Its whole subtree starves; the level above must survive via
// quorum and timeouts.
type LeaderFailure struct {
	Level, Cluster, FromRound int
}

// Plan is one failure scenario. The zero value (and a nil *Plan) injects
// nothing; fields compose freely and Merge combines plans.
type Plan struct {
	// Seed drives every probabilistic fault decision. Two plans with the
	// same fields and seed inject identical fault patterns.
	Seed uint64

	// Transport faults, applied per message.
	Drop      float64 // probability a message is lost
	Duplicate float64 // probability one extra copy is delivered
	// Reorder is the probability a message is delayed by an extra
	// U[0, ReorderDelay) virtual ms, letting later traffic overtake it.
	Reorder      float64
	ReorderDelay float64

	// CrashFromRound maps a device id to the first round it is crashed
	// (fail-stop): it never trains or uploads from that round on. Round 0
	// means the device never starts.
	CrashFromRound map[int]int

	// OmitProb maps a device id to the probability it silently withholds a
	// given round's upload (omission-Byzantine: it stays responsive
	// otherwise).
	OmitProb map[int]float64

	// ChurnIntervals lists transient downtimes.
	ChurnIntervals []Churn

	// LeaderFailures lists failed cluster leaders.
	LeaderFailures []LeaderFailure
}

// Merge returns the union of the given plans: probabilities combine as
// independent events (1 - Π(1-p)), crash rounds take the earliest, churn
// and leader failures concatenate. The first non-zero seed wins.
func Merge(plans ...*Plan) *Plan {
	out := &Plan{}
	orProb := func(a, b float64) float64 { return 1 - (1-a)*(1-b) }
	for _, p := range plans {
		if p == nil {
			continue
		}
		if out.Seed == 0 {
			out.Seed = p.Seed
		}
		out.Drop = orProb(out.Drop, p.Drop)
		out.Duplicate = orProb(out.Duplicate, p.Duplicate)
		out.Reorder = orProb(out.Reorder, p.Reorder)
		if p.ReorderDelay > out.ReorderDelay {
			out.ReorderDelay = p.ReorderDelay
		}
		for id, r := range p.CrashFromRound {
			if cur, ok := out.CrashFromRound[id]; !ok || r < cur {
				if out.CrashFromRound == nil {
					out.CrashFromRound = map[int]int{}
				}
				out.CrashFromRound[id] = r
			}
		}
		for id, pr := range p.OmitProb {
			if out.OmitProb == nil {
				out.OmitProb = map[int]float64{}
			}
			out.OmitProb[id] = orProb(out.OmitProb[id], pr)
		}
		out.ChurnIntervals = append(out.ChurnIntervals, p.ChurnIntervals...)
		out.LeaderFailures = append(out.LeaderFailures, p.LeaderFailures...)
	}
	return out
}

// Enabled reports whether the plan injects any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Duplicate > 0 || p.Reorder > 0 ||
		len(p.CrashFromRound) > 0 || len(p.OmitProb) > 0 ||
		len(p.ChurnIntervals) > 0 || len(p.LeaderFailures) > 0
}

// Fate implements simnet.FaultModel: the per-message transport verdict,
// drawn from the simulator's dedicated fault stream.
func (p *Plan) Fate(r *rng.RNG, from, to simnet.NodeID, at simnet.Time) simnet.Fate {
	var f simnet.Fate
	if p == nil {
		return f
	}
	if p.Drop > 0 && r.Float64() < p.Drop {
		f.Drop = true
		return f
	}
	if p.Duplicate > 0 && r.Float64() < p.Duplicate {
		f.Duplicates = 1
	}
	if p.Reorder > 0 && p.ReorderDelay > 0 && r.Float64() < p.Reorder {
		f.ExtraDelay = p.ReorderDelay * r.Float64()
	}
	return f
}

// coin is the engine-agnostic deterministic Bernoulli draw: the same plan
// seed and label give the same verdict in every engine, independent of call
// order and goroutine scheduling.
func (p *Plan) coin(label string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return rng.New(p.Seed).Derive(label).Float64() < prob
}

// DeviceCrashed reports whether device id is fail-stopped at round.
func (p *Plan) DeviceCrashed(id, round int) bool {
	if p == nil || p.CrashFromRound == nil {
		return false
	}
	r, ok := p.CrashFromRound[id]
	return ok && round >= r
}

// DeviceOffline reports whether device id is churned out at round (crashes
// are permanent and reported separately).
func (p *Plan) DeviceOffline(id, round int) bool {
	if p == nil {
		return false
	}
	for _, c := range p.ChurnIntervals {
		if c.Device == id && round >= c.FromRound && round < c.ToRound {
			return true
		}
	}
	return false
}

// DeviceDown reports whether device id does not participate in round for
// any reason (crash or churn).
func (p *Plan) DeviceDown(id, round int) bool {
	return p.DeviceCrashed(id, round) || p.DeviceOffline(id, round)
}

// OmitUpload reports whether omission-Byzantine device id withholds its
// round upload. Deterministic per (seed, id, round).
func (p *Plan) OmitUpload(id, round int) bool {
	if p == nil || p.OmitProb == nil {
		return false
	}
	prob, ok := p.OmitProb[id]
	if !ok {
		return false
	}
	return p.coin(fmt.Sprintf("omit-%d-%d", id, round), prob)
}

// DropSend is the goroutine engine's transport-drop coin for one message,
// keyed by a caller-chosen label (e.g. "up-<dev>-<round>"): real channels
// cannot lose messages on their own, so the realtime engine asks the plan
// per send. Deterministic per (seed, label).
func (p *Plan) DropSend(label string) bool {
	if p == nil {
		return false
	}
	return p.coin("send-"+label, p.Drop)
}

// FrameFate is the transport-layer analogue of Fate for real wire frames:
// the drop/duplicate/reorder verdict for one frame, keyed by a label built
// from the frame's protocol coordinates (kind:from>to@round). Like every
// other plan decision it is a pure function of (seed, label) — the draw
// order matches Fate's (drop, then duplicate, then reorder) from a
// dedicated "frame-"+label stream — so the same plan injects the same
// fault pattern over loopback, over TCP, and across process boundaries.
// delayMS is the extra delay in wall milliseconds (0 when not reordered).
func (p *Plan) FrameFate(label string) (drop, dup bool, delayMS float64) {
	if p == nil || (p.Drop <= 0 && p.Duplicate <= 0 && p.Reorder <= 0) {
		return false, false, 0
	}
	r := rng.New(p.Seed).Derive("frame-" + label)
	if p.Drop > 0 && r.Float64() < p.Drop {
		return true, false, 0
	}
	if p.Duplicate > 0 && r.Float64() < p.Duplicate {
		dup = true
	}
	if p.Reorder > 0 && p.ReorderDelay > 0 && r.Float64() < p.Reorder {
		delayMS = p.ReorderDelay * r.Float64()
	}
	return false, dup, delayMS
}

// LeaderFailed reports whether the leader of cluster (level, cluster) is
// down for the given round.
func (p *Plan) LeaderFailed(level, cluster, round int) bool {
	if p == nil {
		return false
	}
	for _, lf := range p.LeaderFailures {
		if lf.Level == level && lf.Cluster == cluster && round >= lf.FromRound {
			return true
		}
	}
	return false
}

// CrashDevices returns a plan crashing k devices chosen uniformly (by the
// seed) from [0, n) starting at fromRound.
func CrashDevices(seed uint64, n, k, fromRound int) *Plan {
	if k > n {
		k = n
	}
	p := &Plan{Seed: seed, CrashFromRound: map[int]int{}}
	for _, id := range rng.New(seed).Derive("crash-pick").Choice(n, k) {
		p.CrashFromRound[id] = fromRound
	}
	return p
}

// ChurnDevices returns a plan taking k of n devices (chosen by the seed)
// offline for [fromRound, toRound).
func ChurnDevices(seed uint64, n, k, fromRound, toRound int) *Plan {
	if k > n {
		k = n
	}
	p := &Plan{Seed: seed}
	for _, id := range rng.New(seed).Derive("churn-pick").Choice(n, k) {
		p.ChurnIntervals = append(p.ChurnIntervals, Churn{Device: id, FromRound: fromRound, ToRound: toRound})
	}
	return p
}

// Lossy returns a pure transport-fault plan: drop and duplicate with the
// given probabilities and reordering delays up to reorderDelay virtual ms
// on a quarter of messages.
func Lossy(seed uint64, drop, dup, reorderDelay float64) *Plan {
	p := &Plan{Seed: seed, Drop: drop, Duplicate: dup}
	if reorderDelay > 0 {
		p.Reorder = 0.25
		p.ReorderDelay = reorderDelay
	}
	return p
}

// String renders a compact human-readable summary for reports.
func (p *Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var parts []string
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.0f%%", 100*p.Drop))
	}
	if p.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.0f%%", 100*p.Duplicate))
	}
	if p.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.0f%%<%.0fms", 100*p.Reorder, p.ReorderDelay))
	}
	if len(p.CrashFromRound) > 0 {
		ids := make([]int, 0, len(p.CrashFromRound))
		for id := range p.CrashFromRound {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts = append(parts, fmt.Sprintf("crash=%d devs", len(ids)))
	}
	if len(p.OmitProb) > 0 {
		parts = append(parts, fmt.Sprintf("omit=%d devs", len(p.OmitProb)))
	}
	if len(p.ChurnIntervals) > 0 {
		parts = append(parts, fmt.Sprintf("churn=%d intervals", len(p.ChurnIntervals)))
	}
	for _, lf := range p.LeaderFailures {
		parts = append(parts, fmt.Sprintf("leader(%d,%d)@r%d", lf.Level, lf.Cluster, lf.FromRound))
	}
	return strings.Join(parts, " ")
}
