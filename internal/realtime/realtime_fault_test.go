package realtime

import (
	"testing"
	"time"

	"abdhfl/internal/fault"
)

// TestRealtimeCrashedMemberDoesNotDeadlockLeader is the liveness regression
// for real goroutine crashes: a device whose goroutine exits mid-protocol
// (fail-stop, not a polite skip) must never wedge its leader. Quorum plus the
// wall-clock collect timeout have to carry every remaining round. Run under
// -race via the Makefile race target.
func TestRealtimeCrashedMemberDoesNotDeadlockLeader(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 8, 1, 0)
	cfg.Quorum = 0.5
	cfg.CollectTimeout = 200 * time.Millisecond
	// Device 0 never starts; device 5 crashes from round 2 on. Both bottom
	// clusters lose a member at some point.
	cfg.Faults = &fault.Plan{Seed: 3, CrashFromRound: map[int]int{0: 0, 5: 2}}
	res := runWithTimeout(t, cfg)
	if res.CompletedRounds == 0 {
		t.Fatal("no rounds completed around the crashed members")
	}
	if res.CompletedRounds > cfg.Rounds {
		t.Fatalf("completed %d of %d configured rounds", res.CompletedRounds, cfg.Rounds)
	}
	if res.FinalAccuracy <= 0 {
		t.Fatal("no accuracy recorded")
	}
}

// TestRealtimeChurnRejoin: a churned device must sit out its interval and
// then resume contributing — the run completes all rounds and still learns.
func TestRealtimeChurnRejoin(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 8, 1, 0)
	cfg.Quorum = 0.5
	cfg.CollectTimeout = 200 * time.Millisecond
	cfg.Faults = &fault.Plan{
		Seed:           3,
		ChurnIntervals: []fault.Churn{{Device: 1, FromRound: 1, ToRound: 3}},
	}
	res := runWithTimeout(t, cfg)
	if res.CompletedRounds != cfg.Rounds {
		t.Fatalf("completed %d of %d rounds with transient churn", res.CompletedRounds, cfg.Rounds)
	}
	if res.FinalAccuracy < 0.2 {
		t.Fatalf("accuracy %v after churn rejoin", res.FinalAccuracy)
	}
}

// TestRealtimeOmissionAccounted: an omission-Byzantine device trains but
// withholds every upload; leaders absorb it and the run counts each omission.
func TestRealtimeOmissionAccounted(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
	cfg.Quorum = 0.5
	cfg.CollectTimeout = 200 * time.Millisecond
	cfg.Faults = &fault.Plan{Seed: 3, OmitProb: map[int]float64{2: 1.0}}
	res := runWithTimeout(t, cfg)
	if res.Omitted == 0 {
		t.Fatal("withheld uploads not counted")
	}
	if res.CompletedRounds != cfg.Rounds {
		t.Fatalf("completed %d of %d rounds", res.CompletedRounds, cfg.Rounds)
	}
}

// TestRealtimeDropsTerminate: message loss on the real channels (the plan's
// per-send coins) must degrade rounds, never hang them.
func TestRealtimeDropsTerminate(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
	cfg.Quorum = 0.5
	cfg.CollectTimeout = 150 * time.Millisecond
	cfg.Faults = &fault.Plan{Seed: 3, Drop: 0.3}
	res := runWithTimeout(t, cfg)
	if res.DroppedSends == 0 {
		t.Fatal("no sends dropped at 30% loss")
	}
	if res.CompletedRounds == 0 && res.AbandonedRounds == 0 {
		t.Fatal("rounds neither completed nor abandoned")
	}
}

// TestRealtimeValidateRejectsFaultsWithoutTimeout: faults without a collect
// timeout would be a guaranteed deadlock (channels cannot time out on their
// own), so Validate must refuse the configuration up front.
func TestRealtimeValidateRejectsFaultsWithoutTimeout(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	cfg.Faults = &fault.Plan{Seed: 1, Drop: 0.1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("fault plan without CollectTimeout accepted")
	}
	cfg.CollectTimeout = 100 * time.Millisecond
	cfg.TimeoutBackoff = 0.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("backoff below 1 accepted")
	}
}
