// Package realtime is the goroutine implementation of ABD-HFL: where
// internal/pipeline simulates the asynchronous protocol on a virtual clock,
// this package actually runs it — one goroutine per device and per cluster
// leader, channels as links, no global synchronisation. It exists to
// demonstrate (and race-test) that the protocol is implementable as written:
// leaders aggregate as soon as a quorum of models arrives, flag models
// release the next round while global aggregation is still in flight, and
// stale globals are merged with the correction factor.
//
// Because goroutine scheduling is real, runs are not bit-reproducible (the
// quorum subset a leader sees first depends on timing); experiments needing
// determinism use the pipeline or core engines.
package realtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
)

// Config describes a realtime run. The rule set mirrors pipeline.Config.
type Config struct {
	Tree      *topology.Tree
	Rounds    int
	FlagLevel int
	// Quorum φ: fraction of inputs a leader waits for; zero selects 1.
	Quorum float64

	Local  nn.TrainConfig
	Hidden []int

	PartialBRA aggregate.Aggregator
	TopVoting  *consensus.Voting
	TopBRA     aggregate.Aggregator

	ClientData       []*dataset.Dataset
	TestData         *dataset.Dataset
	ValidationShards []*dataset.Dataset

	// Alpha is the fixed correction factor for stale-global merges; zero
	// selects 0.5.
	Alpha float64
	// TrainDelay, if positive, is slept by each device after its SGD pass —
	// it emulates heavier local compute so the protocol's asynchrony
	// (stale-global merges during training) is actually exercised on fast
	// hardware.
	TrainDelay time.Duration
	Seed       uint64
	// Workers bounds the goroutines each aggregation call may fan out to.
	// Leaders aggregate concurrently with one another, so this is a
	// per-aggregation limit, not a global one; zero selects GOMAXPROCS.
	// Each aggregation's result is bit-identical for every value (what varies
	// between realtime runs is quorum membership, not kernel arithmetic).
	Workers int
	// Telemetry, when non-nil, receives the run's metrics under
	// engine="realtime": global rounds formed, accuracy, stale-global merge
	// counts, consensus vote tallies, and per-level filter
	// kept/clipped/discarded counts. All handles are atomic, so the
	// concurrent leader goroutines feed them without extra locking. Nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return errors.New("realtime: Tree is nil")
	}
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return errors.New("realtime: Rounds must be positive")
	}
	if c.FlagLevel < 0 || c.FlagLevel > c.Tree.Bottom()-1 {
		return fmt.Errorf("realtime: FlagLevel %d out of range", c.FlagLevel)
	}
	if len(c.ClientData) != c.Tree.NumDevices() {
		return fmt.Errorf("realtime: %d shards for %d devices", len(c.ClientData), c.Tree.NumDevices())
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("realtime: TestData is empty")
	}
	if c.PartialBRA == nil {
		return errors.New("realtime: PartialBRA is nil")
	}
	if c.TopVoting == nil && c.TopBRA == nil {
		return errors.New("realtime: set TopBRA or TopVoting")
	}
	if c.TopVoting != nil && len(c.ValidationShards) == 0 {
		return errors.New("realtime: TopVoting requires ValidationShards")
	}
	return nil
}

func (c *Config) modelSizes() []int {
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	sizes := []int{dataset.Dim}
	sizes = append(sizes, hidden...)
	return append(sizes, dataset.NumClasses)
}

// Result is the outcome of a realtime run.
type Result struct {
	FinalAccuracy float64
	// RoundAccuracy[r] is the test accuracy of global model r.
	RoundAccuracy []float64
	// WallTime is the real elapsed time of the run.
	WallTime time.Duration
	// Goroutines is the number of worker goroutines that were spawned.
	Goroutines int
	// Merges counts correction-factor applications.
	Merges int
}

// Message kinds flowing through actor inboxes.
type kind int

const (
	kLocal kind = iota
	kPartial
	kFlag
	kGlobal
)

type envelope struct {
	kind   kind
	round  int
	params tensor.Vector
}

// rtInstruments holds the run's telemetry handles. Every handle is backed by
// atomics, so the concurrent device and leader goroutines record through one
// shared instance; a nil *rtInstruments makes every method a no-op.
type rtInstruments struct {
	rounds   *telemetry.Counter
	merges   *telemetry.Counter
	accuracy *telemetry.Gauge
	excluded *telemetry.Counter
	votes    *telemetry.Histogram
	kept     []*telemetry.Counter
	clipped  []*telemetry.Counter
	trimmed  []*telemetry.Counter
}

func newRTInstruments(reg *telemetry.Registry, levels int) *rtInstruments {
	if reg == nil {
		return nil
	}
	ins := &rtInstruments{
		rounds:   reg.Counter(`abdhfl_rounds_total{engine="realtime"}`),
		merges:   reg.Counter("abdhfl_realtime_merged_globals_total"),
		accuracy: reg.Gauge(`abdhfl_accuracy{engine="realtime"}`),
		excluded: reg.Counter(`abdhfl_consensus_excluded_total{engine="realtime"}`),
		votes:    reg.Histogram(`abdhfl_consensus_votes{engine="realtime"}`, telemetry.LinearBuckets(0, 1, 17)),
	}
	for lvl := 0; lvl < levels; lvl++ {
		suffix := fmt.Sprintf(`{engine="realtime",level="%d"}`, lvl)
		ins.kept = append(ins.kept, reg.Counter("abdhfl_filter_kept_total"+suffix))
		ins.clipped = append(ins.clipped, reg.Counter("abdhfl_filter_clipped_total"+suffix))
		ins.trimmed = append(ins.trimmed, reg.Counter("abdhfl_filter_discarded_total"+suffix))
	}
	return ins
}

func (ins *rtInstruments) merged() {
	if ins != nil {
		ins.merges.Inc()
	}
}

// attachAudit gives a leader-owned scratch its own FilterAudit (leaders run
// concurrently, so audits are never shared) and reports whether auditing is on.
func (ins *rtInstruments) attachAudit(s *aggregate.Scratch) bool {
	if ins == nil {
		return false
	}
	s.Audit = &aggregate.FilterAudit{}
	return true
}

// recordAudit adds the scratch's last verdict tallies to the level's counters.
func (ins *rtInstruments) recordAudit(level int, s *aggregate.Scratch) {
	if ins == nil || s.Audit == nil || level >= len(ins.kept) {
		return
	}
	k, c, t := s.Audit.Counts()
	ins.kept[level].Add(int64(k))
	ins.clipped[level].Add(int64(c))
	ins.trimmed[level].Add(int64(t))
}

func (ins *rtInstruments) globalFormed(acc float64) {
	if ins != nil {
		ins.rounds.Inc()
		ins.accuracy.Set(acc)
	}
}

func (ins *rtInstruments) consensusStats(members int, st consensus.Stats) {
	if ins == nil {
		return
	}
	ins.excluded.Add(int64(len(st.Excluded)))
	for _, v := range st.Votes {
		ins.votes.Observe(float64(v))
	}
	// The voting verdict doubles as the top-level filter report: excluded
	// proposals were discarded, the rest kept.
	if len(ins.kept) > 0 {
		ins.kept[0].Add(int64(members - len(st.Excluded)))
		ins.trimmed[0].Add(int64(len(st.Excluded)))
	}
}

// Run executes the protocol with real goroutines and blocks until the last
// global round is formed and all actors have drained.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = 1
	}
	tree := cfg.Tree
	bottom := tree.Bottom()
	sizes := cfg.modelSizes()
	root := rng.New(cfg.Seed)
	initParams := nn.New(root.Derive("init"), sizes...).Params()

	// Inbox channels. Buffers are sized so no send can block forever: each
	// actor receives at most (members * rounds) messages of each kind.
	devices := tree.NumDevices()
	devInbox := make([]chan envelope, devices)
	for i := range devInbox {
		devInbox[i] = make(chan envelope, 4*cfg.Rounds+8)
	}
	clusterInbox := make([][]chan envelope, tree.Depth())
	for l := range clusterInbox {
		clusterInbox[l] = make([]chan envelope, len(tree.Clusters[l]))
		for i, c := range tree.Clusters[l] {
			clusterInbox[l][i] = make(chan envelope, (c.Size()+4)*(cfg.Rounds+2))
		}
	}
	done := make(chan struct{})
	var merges sync.Mutex
	mergeCount := 0
	ins := newRTInstruments(cfg.Telemetry, tree.Depth())

	result := &Result{RoundAccuracy: make([]float64, cfg.Rounds)}
	var wg sync.WaitGroup
	goroutines := 0

	quorumOf := func(size int) int {
		n := int(quorum*float64(size) + 0.999999)
		if n < 1 {
			n = 1
		}
		if n > size {
			n = size
		}
		return n
	}

	// --- Device goroutines.
	leaderOf := make([]chan envelope, devices)
	for i, c := range tree.Clusters[bottom] {
		for _, m := range c.Members {
			leaderOf[m] = clusterInbox[bottom][i]
		}
	}
	for id := 0; id < devices; id++ {
		id := id
		wg.Add(1)
		goroutines++
		go func() {
			defer wg.Done()
			model := nn.NewShaped(sizes...)
			ws := nn.NewWorkspace(model)
			cur := initParams.Clone()
			round := 0
			var stashedFlag *envelope
			countMerge := func() {
				merges.Lock()
				mergeCount++
				merges.Unlock()
				ins.merged()
			}
			for round < cfg.Rounds {
				// Train the current round.
				model.SetParams(cur)
				nn.SGDWS(model, ws, cfg.ClientData[id], cfg.Local, root.Derive(fmt.Sprintf("sgd-%d-%d", id, round)))
				if cfg.TrainDelay > 0 {
					time.Sleep(cfg.TrainDelay)
				}
				out := model.Params()
				// Drain the inbox: merge globals that arrived while training
				// (Alg. 2's correction factor), stash flags for the next round.
				drained := false
				for !drained {
					select {
					case env := <-devInbox[id]:
						switch env.kind {
						case kGlobal:
							tensor.Lerp(out, out, env.params, alpha)
							countMerge()
						case kFlag:
							if stashedFlag == nil || env.round > stashedFlag.round {
								env := env
								stashedFlag = &env
							}
						}
					default:
						drained = true
					}
				}
				select {
				case leaderOf[id] <- envelope{kind: kLocal, round: round, params: out}:
				case <-done:
					return
				}
				// Wait for the next flag model (or termination).
				next := round + 1
				if next >= cfg.Rounds {
					return
				}
				if stashedFlag != nil && stashedFlag.round >= next {
					cur = stashedFlag.params.Clone()
					round = stashedFlag.round
					stashedFlag = nil
					continue
				}
				stashedFlag = nil
				waiting := true
				for waiting {
					var env envelope
					select {
					case env = <-devInbox[id]:
					case <-done:
						return
					}
					switch {
					case env.kind == kGlobal:
						// Idle-time global: blend into the next start model.
						tensor.Lerp(cur, cur, env.params, alpha)
						countMerge()
					case env.kind == kFlag && env.round >= next:
						cur = env.params.Clone()
						round = env.round
						waiting = false
					}
				}
			}
		}()
	}

	// --- Cluster leader goroutines (levels bottom..1).
	for l := bottom; l >= 1; l-- {
		for ci, c := range tree.Clusters[l] {
			l, ci, c := l, ci, c
			var parent chan envelope
			if l == 1 {
				parent = clusterInbox[0][0]
			} else {
				p := tree.Parent(l, ci)
				parent = clusterInbox[p.Level][p.Index]
			}
			var children []chan envelope
			if l == bottom {
				for _, m := range c.Members {
					children = append(children, devInbox[m])
				}
			} else {
				for _, ch := range tree.ChildClusters(l, ci) {
					children = append(children, clusterInbox[l+1][ch.Index])
				}
			}
			wg.Add(1)
			goroutines++
			go func() {
				defer wg.Done()
				collected := map[int][]tensor.Vector{}
				closed := map[int]bool{}
				need := quorumOf(c.Size())
				// Leader-owned aggregation scratch: leaders run concurrently,
				// so the warm buffers must not be shared between goroutines.
				aggScratch := aggregate.NewScratch(cfg.Workers)
				ins.attachAudit(aggScratch)
				for {
					var env envelope
					select {
					case env = <-clusterInbox[l][ci]:
					case <-done:
						return
					}
					switch env.kind {
					case kLocal, kPartial:
						if closed[env.round] {
							continue
						}
						collected[env.round] = append(collected[env.round], env.params)
						if len(collected[env.round]) < need {
							continue
						}
						closed[env.round] = true
						vecs := collected[env.round]
						delete(collected, env.round)
						// Fresh destination per call: the aggregate is retained
						// by downstream envelopes.
						agg := tensor.NewVector(len(vecs[0]))
						if err := cfg.PartialBRA.AggregateInto(agg, aggScratch, vecs); err != nil {
							continue
						}
						ins.recordAudit(l, aggScratch)
						out := envelope{kind: kPartial, round: env.round, params: agg}
						select {
						case parent <- out:
						case <-done:
							return
						}
						if l == cfg.FlagLevel && env.round+1 < cfg.Rounds {
							flag := envelope{kind: kFlag, round: env.round + 1, params: agg}
							for _, ch := range children {
								select {
								case ch <- flag:
								case <-done:
									return
								}
							}
						}
					case kFlag, kGlobal:
						for _, ch := range children {
							select {
							case ch <- env:
							case <-done:
								return
							}
						}
					}
				}
			}()
		}
	}

	// --- Top goroutine.
	evalModel := nn.NewShaped(sizes...)
	evalWS := nn.NewWorkspace(evalModel)
	pool := nn.NewEvalPool(sizes...)
	validator := func(member int, model tensor.Vector) float64 {
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, cfg.ValidationShards[member%len(cfg.ValidationShards)])
	}
	var topChildren []chan envelope
	for _, ch := range tree.ChildClusters(0, 0) {
		topChildren = append(topChildren, clusterInbox[1][ch.Index])
	}
	wg.Add(1)
	goroutines++
	go func() {
		defer wg.Done()
		defer close(done)
		collected := map[int][]tensor.Vector{}
		closedRounds := map[int]bool{}
		need := quorumOf(tree.Top().Size())
		aggScratch := aggregate.NewScratch(cfg.Workers)
		ins.attachAudit(aggScratch)
		completed := 0
		for completed < cfg.Rounds {
			env := <-clusterInbox[0][0]
			if env.kind != kPartial || closedRounds[env.round] {
				continue
			}
			collected[env.round] = append(collected[env.round], env.params)
			if len(collected[env.round]) < need {
				continue
			}
			closedRounds[env.round] = true
			vecs := collected[env.round]
			delete(collected, env.round)
			var global tensor.Vector
			var err error
			if cfg.TopVoting != nil {
				cctx := &consensus.Context{
					Members:   len(vecs),
					Validator: validator,
					Rand:      root.Derive(fmt.Sprintf("vote-%d", env.round)),
				}
				var st consensus.Stats
				global, st, err = cfg.TopVoting.Agree(cctx, vecs)
				if err == nil {
					ins.consensusStats(len(vecs), st)
				}
			} else {
				global = tensor.NewVector(len(vecs[0]))
				err = cfg.TopBRA.AggregateInto(global, aggScratch, vecs)
				if err == nil {
					ins.recordAudit(0, aggScratch)
				}
			}
			if err != nil {
				continue
			}
			evalModel.SetParams(global)
			result.RoundAccuracy[env.round] = nn.AccuracyWS(evalModel, evalWS, cfg.TestData)
			ins.globalFormed(result.RoundAccuracy[env.round])
			completed++
			gm := envelope{kind: kGlobal, round: env.round, params: global}
			for _, ch := range topChildren {
				ch <- gm
			}
			if cfg.FlagLevel == 0 && env.round+1 < cfg.Rounds {
				flag := envelope{kind: kFlag, round: env.round + 1, params: global}
				for _, ch := range topChildren {
					ch <- flag
				}
			}
		}
	}()

	start := time.Now()
	wg.Wait()
	result.WallTime = time.Since(start)
	result.Goroutines = goroutines
	merges.Lock()
	result.Merges = mergeCount
	merges.Unlock()
	for r := cfg.Rounds - 1; r >= 0; r-- {
		if result.RoundAccuracy[r] > 0 {
			result.FinalAccuracy = result.RoundAccuracy[r]
			break
		}
	}
	return result, nil
}
