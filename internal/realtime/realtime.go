// Package realtime is the goroutine implementation of ABD-HFL: where
// internal/pipeline simulates the asynchronous protocol on a virtual clock,
// this package actually runs it — one goroutine per device and per cluster
// leader, channels as links, no global synchronisation. It exists to
// demonstrate (and race-test) that the protocol is implementable as written:
// leaders aggregate as soon as a quorum of models arrives, flag models
// release the next round while global aggregation is still in flight, and
// stale globals are merged with the correction factor.
//
// Because goroutine scheduling is real, runs are not bit-reproducible (the
// quorum subset a leader sees first depends on timing); experiments needing
// determinism use the pipeline or core engines.
package realtime

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/fault"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// Config describes a realtime run. The rule set mirrors pipeline.Config.
type Config struct {
	Tree      *topology.Tree
	Rounds    int
	FlagLevel int
	// Quorum φ: fraction of inputs a leader waits for; zero selects 1.
	Quorum float64
	// CollectTimeout is the leaders' wall-clock deadline per collection: a
	// leader that has waited this long since a round's first arrival (or, at
	// the top, since the round became expected) aggregates what it holds,
	// even below quorum. Zero disables timeouts. Required (>0) whenever
	// Faults can starve a quorum — without it a crashed member would leave
	// its leader waiting forever.
	CollectTimeout time.Duration
	// TimeoutBackoff multiplies the deadline on every empty expiry; zero
	// selects 2.
	TimeoutBackoff float64
	// TimeoutRetries bounds empty re-arms before a round is abandoned; zero
	// selects 3.
	TimeoutRetries int

	// Faults injects the plan's failures: crashed devices stop responding
	// (the goroutine returns without draining its inbox), churned devices sit
	// out their interval, omission-Byzantine devices train but withhold
	// uploads, failed leaders ignore traffic from their failure round on, and
	// Drop applies per-upload via the plan's deterministic per-(seed,label)
	// coin — channels themselves never lose messages. Nil injects nothing.
	Faults *fault.Plan

	Local  nn.TrainConfig
	Hidden []int

	PartialBRA aggregate.Aggregator
	TopVoting  *consensus.Voting
	TopBRA     aggregate.Aggregator
	// TopCBA selects any registered consensus protocol at the top (e.g. the
	// randomized "aba"); it wins over TopVoting when both are set.
	TopCBA consensus.Protocol

	ClientData       []*dataset.Dataset
	TestData         *dataset.Dataset
	ValidationShards []*dataset.Dataset

	// Alpha is the fixed correction factor for stale-global merges; zero
	// selects 0.5.
	Alpha float64
	// TrainDelay, if positive, is slept by each device after its SGD pass —
	// it emulates heavier local compute so the protocol's asynchrony
	// (stale-global merges during training) is actually exercised on fast
	// hardware.
	TrainDelay time.Duration
	Seed       uint64
	// Workers bounds the goroutines each aggregation call may fan out to.
	// Leaders aggregate concurrently with one another, so this is a
	// per-aggregation limit, not a global one; zero selects GOMAXPROCS.
	// Each aggregation's result is bit-identical for every value (what varies
	// between realtime runs is quorum membership, not kernel arithmetic).
	Workers int
	// Telemetry, when non-nil, receives the run's metrics under
	// engine="realtime": global rounds formed, accuracy, stale-global merge
	// counts, consensus vote tallies, and per-level filter
	// kept/clipped/discarded counts. All handles are atomic, so the
	// concurrent leader goroutines feed them without extra locking. Nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
	// Codec, when non-nil, passes every freshly formed model (device upload,
	// partial, global) through one encode→decode hop before it is sent, and
	// tallies wire bytes in Result.WireBytes. Each goroutine owns its scratch,
	// so hops add no synchronisation. The Delta codec's reference is the
	// sender's view of the last global (the round's start model for devices;
	// zero until a leader has forwarded a global).
	Codec codec.Codec
	// Trace, when non-nil, receives causal spans (train, uplink, aggregate,
	// partial, global, round) on a wall-clock-milliseconds engine clock. The
	// tracer is safe for the engine's concurrent goroutines, but — like every
	// other realtime measurement — the recorded stream is not reproducible
	// between runs. Nil disables emission entirely.
	Trace *trace.Tracer
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return errors.New("realtime: Tree is nil")
	}
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return errors.New("realtime: Rounds must be positive")
	}
	if c.FlagLevel < 0 || c.FlagLevel > c.Tree.Bottom()-1 {
		return fmt.Errorf("realtime: FlagLevel %d out of range", c.FlagLevel)
	}
	if len(c.ClientData) != c.Tree.NumDevices() {
		return fmt.Errorf("realtime: %d shards for %d devices", len(c.ClientData), c.Tree.NumDevices())
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("realtime: TestData is empty")
	}
	if c.PartialBRA == nil {
		return errors.New("realtime: PartialBRA is nil")
	}
	if c.TopVoting == nil && c.TopBRA == nil && c.TopCBA == nil {
		return errors.New("realtime: set TopBRA, TopVoting, or TopCBA")
	}
	if (c.TopVoting != nil || c.TopCBA != nil) && len(c.ValidationShards) == 0 {
		return errors.New("realtime: top consensus requires ValidationShards")
	}
	if c.Faults.Enabled() && c.CollectTimeout <= 0 {
		// Liveness: channels cannot time out on their own, so every injected
		// fault that can starve a quorum needs the timeout escape hatch.
		return errors.New("realtime: Faults require a positive CollectTimeout")
	}
	if c.TimeoutBackoff != 0 && c.TimeoutBackoff < 1 {
		return fmt.Errorf("realtime: TimeoutBackoff %v below 1", c.TimeoutBackoff)
	}
	if c.TimeoutRetries < 0 {
		return fmt.Errorf("realtime: TimeoutRetries %d negative", c.TimeoutRetries)
	}
	return nil
}

func (c *Config) modelSizes() []int {
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	sizes := []int{dataset.Dim}
	sizes = append(sizes, hidden...)
	return append(sizes, dataset.NumClasses)
}

// Result is the outcome of a realtime run.
type Result struct {
	FinalAccuracy float64
	// RoundAccuracy[r] is the test accuracy of global model r.
	RoundAccuracy []float64
	// WallTime is the real elapsed time of the run.
	WallTime time.Duration
	// Goroutines is the number of worker goroutines that were spawned.
	Goroutines int
	// Merges counts correction-factor applications.
	Merges int
	// CompletedRounds counts global models actually formed; under faults the
	// top may abandon starved rounds instead.
	CompletedRounds int
	// AbandonedRounds counts rounds the top gave up on after its
	// timeout-with-backoff retries expired with zero partials.
	AbandonedRounds int
	// SubQuorum counts aggregations (any level) closed below quorum by a
	// collect timeout.
	SubQuorum int
	// Omitted counts uploads withheld by omission-Byzantine devices.
	Omitted int
	// DroppedSends counts messages suppressed by the plan's transport-drop
	// coin.
	DroppedSends int
	// WireBytes is the total encoded bytes of every codec hop taken (zero
	// without a Codec). Realtime charges the hop where the model is formed,
	// not per forwarded copy — scheduling decides fan-out order, and this
	// engine's numbers are smoke-level, not accounting-grade.
	WireBytes int64
}

// Message kinds flowing through actor inboxes.
type kind int

const (
	kLocal kind = iota
	kPartial
	kFlag
	kGlobal
)

type envelope struct {
	kind   kind
	round  int
	params tensor.Vector
}

// rtInstruments holds the run's telemetry handles. Every handle is backed by
// atomics, so the concurrent device and leader goroutines record through one
// shared instance; a nil *rtInstruments makes every method a no-op.
type rtInstruments struct {
	rounds    *telemetry.Counter
	merges    *telemetry.Counter
	accuracy  *telemetry.Gauge
	excluded  *telemetry.Counter
	votes     *telemetry.Histogram
	subquorum *telemetry.Counter
	abandon   *telemetry.Counter
	omit      *telemetry.Counter
	kept      []*telemetry.Counter
	clipped   []*telemetry.Counter
	trimmed   []*telemetry.Counter
}

func newRTInstruments(reg *telemetry.Registry, levels int) *rtInstruments {
	if reg == nil {
		return nil
	}
	ins := &rtInstruments{
		rounds:    reg.Counter(`abdhfl_rounds_total{engine="realtime"}`),
		merges:    reg.Counter("abdhfl_realtime_merged_globals_total"),
		accuracy:  reg.Gauge(`abdhfl_accuracy{engine="realtime"}`),
		excluded:  reg.Counter(`abdhfl_consensus_excluded_total{engine="realtime"}`),
		votes:     reg.Histogram(`abdhfl_consensus_votes{engine="realtime"}`, telemetry.LinearBuckets(0, 1, 17)),
		subquorum: reg.Counter(`abdhfl_subquorum_aggregations_total{engine="realtime"}`),
		abandon:   reg.Counter(`abdhfl_abandoned_collections_total{engine="realtime"}`),
		omit:      reg.Counter(`abdhfl_omitted_uploads_total{engine="realtime"}`),
	}
	for lvl := 0; lvl < levels; lvl++ {
		suffix := fmt.Sprintf(`{engine="realtime",level="%d"}`, lvl)
		ins.kept = append(ins.kept, reg.Counter("abdhfl_filter_kept_total"+suffix))
		ins.clipped = append(ins.clipped, reg.Counter("abdhfl_filter_clipped_total"+suffix))
		ins.trimmed = append(ins.trimmed, reg.Counter("abdhfl_filter_discarded_total"+suffix))
	}
	return ins
}

func (ins *rtInstruments) merged() {
	if ins != nil {
		ins.merges.Inc()
	}
}

func (ins *rtInstruments) subQuorum() {
	if ins != nil {
		ins.subquorum.Inc()
	}
}

func (ins *rtInstruments) abandoned() {
	if ins != nil {
		ins.abandon.Inc()
	}
}

func (ins *rtInstruments) omitted() {
	if ins != nil {
		ins.omit.Inc()
	}
}

// attachAudit gives a leader-owned scratch its own FilterAudit (leaders run
// concurrently, so audits are never shared) and reports whether auditing is on.
func (ins *rtInstruments) attachAudit(s *aggregate.Scratch) bool {
	if ins == nil {
		return false
	}
	s.Audit = &aggregate.FilterAudit{}
	return true
}

// recordAudit adds the scratch's last verdict tallies to the level's counters.
func (ins *rtInstruments) recordAudit(level int, s *aggregate.Scratch) {
	if ins == nil || s.Audit == nil || level >= len(ins.kept) {
		return
	}
	k, c, t := s.Audit.Counts()
	ins.kept[level].Add(int64(k))
	ins.clipped[level].Add(int64(c))
	ins.trimmed[level].Add(int64(t))
}

func (ins *rtInstruments) globalFormed(acc float64) {
	if ins != nil {
		ins.rounds.Inc()
		ins.accuracy.Set(acc)
	}
}

func (ins *rtInstruments) consensusStats(members int, st consensus.Stats) {
	if ins == nil {
		return
	}
	ins.excluded.Add(int64(len(st.Excluded)))
	for _, v := range st.Votes {
		ins.votes.Observe(float64(v))
	}
	// The voting verdict doubles as the top-level filter report: excluded
	// proposals were discarded, the rest kept.
	if len(ins.kept) > 0 {
		ins.kept[0].Add(int64(members - len(st.Excluded)))
		ins.trimmed[0].Add(int64(len(st.Excluded)))
	}
}

// Run executes the protocol with real goroutines and blocks until the last
// global round is formed and all actors have drained.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = 1
	}
	tree := cfg.Tree
	bottom := tree.Bottom()
	sizes := cfg.modelSizes()
	root := rng.New(cfg.Seed)
	initParams := nn.New(root.Derive("init"), sizes...).Params()

	// Inbox channels. Buffers are sized so no send can block forever: each
	// actor receives at most (members * rounds) messages of each kind.
	devices := tree.NumDevices()
	devInbox := make([]chan envelope, devices)
	for i := range devInbox {
		devInbox[i] = make(chan envelope, 4*cfg.Rounds+8)
	}
	clusterInbox := make([][]chan envelope, tree.Depth())
	for l := range clusterInbox {
		clusterInbox[l] = make([]chan envelope, len(tree.Clusters[l]))
		for i, c := range tree.Clusters[l] {
			clusterInbox[l][i] = make(chan envelope, (c.Size()+4)*(cfg.Rounds+2))
		}
	}
	done := make(chan struct{})
	var merges sync.Mutex
	mergeCount := 0
	ins := newRTInstruments(cfg.Telemetry, tree.Depth())
	rt := newRTTracer(cfg.Trace, tree, cfg.Codec, len(initParams))

	// Fault machinery: the plan's queries are all nil-safe, so actors consult
	// it unconditionally. fstats is shared by every goroutine.
	plan := cfg.Faults
	faulty := plan.Enabled()
	backoff := cfg.TimeoutBackoff
	if backoff == 0 {
		backoff = 2
	}
	retries := cfg.TimeoutRetries
	if retries == 0 {
		retries = 3
	}
	// deadlineAfter is attempt's collect deadline with exponential backoff.
	deadlineAfter := func(attempt int) time.Duration {
		return time.Duration(float64(cfg.CollectTimeout) * math.Pow(backoff, float64(attempt)))
	}
	var fstats struct {
		sync.Mutex
		subQuorum, abandoned, omitted, dropped int
	}
	countSubQuorum := func() {
		fstats.Lock()
		fstats.subQuorum++
		fstats.Unlock()
		ins.subQuorum()
	}
	countAbandoned := func() {
		fstats.Lock()
		fstats.abandoned++
		fstats.Unlock()
		ins.abandoned()
	}
	countOmitted := func() {
		fstats.Lock()
		fstats.omitted++
		fstats.Unlock()
		ins.omitted()
	}
	countDropped := func() {
		fstats.Lock()
		fstats.dropped++
		fstats.Unlock()
	}

	// Codec hops: each goroutine owns its scratch; the wire-byte tally and
	// the first transcode error funnel through one mutex (hops are rare —
	// one per formed model — so contention is negligible).
	var cstats struct {
		sync.Mutex
		wireBytes int64
		err       error
	}
	transcode := func(v, ref tensor.Vector, s *codec.Scratch) {
		if cfg.Codec == nil {
			return
		}
		s.Ref = ref
		n, err := codec.Transcode(cfg.Codec, v, s)
		cstats.Lock()
		if err != nil {
			if cstats.err == nil {
				cstats.err = fmt.Errorf("realtime: codec %s: %w", cfg.Codec.Name(), err)
			}
		} else {
			cstats.wireBytes += int64(n)
		}
		cstats.Unlock()
	}

	result := &Result{RoundAccuracy: make([]float64, cfg.Rounds)}
	var wg sync.WaitGroup
	goroutines := 0

	quorumOf := func(size int) int {
		n := int(quorum*float64(size) + 0.999999)
		if n < 1 {
			n = 1
		}
		if n > size {
			n = size
		}
		return n
	}

	// --- Device goroutines.
	leaderOf := make([]chan envelope, devices)
	for i, c := range tree.Clusters[bottom] {
		for _, m := range c.Members {
			leaderOf[m] = clusterInbox[bottom][i]
		}
	}
	for id := 0; id < devices; id++ {
		id := id
		wg.Add(1)
		goroutines++
		go func() {
			defer wg.Done()
			model := nn.NewShaped(sizes...)
			ws := nn.NewWorkspace(model)
			cs := codec.NewScratch()
			cur := initParams.Clone()
			round := 0
			var stashedFlag *envelope
			countMerge := func() {
				merges.Lock()
				mergeCount++
				merges.Unlock()
				ins.merged()
			}
			for round < cfg.Rounds {
				if plan.DeviceCrashed(id, round) {
					// Fail-stop: the goroutine stops responding — no drain, no
					// goodbye. Its leader's quorum/timeout machinery must cope.
					return
				}
				if !plan.DeviceOffline(id, round) {
					// Train the current round.
					var trainStart float64
					if rt != nil {
						trainStart = rt.now()
					}
					model.SetParams(cur)
					nn.SGDWS(model, ws, cfg.ClientData[id], cfg.Local, root.Derive(fmt.Sprintf("sgd-%d-%d", id, round)))
					if cfg.TrainDelay > 0 {
						time.Sleep(cfg.TrainDelay)
					}
					out := model.Params()
					rt.train(id, round, trainStart)
					// Drain the inbox: merge globals that arrived while training
					// (Alg. 2's correction factor), stash flags for the next round.
					drained := false
					for !drained {
						select {
						case env := <-devInbox[id]:
							switch env.kind {
							case kGlobal:
								tensor.Lerp(out, out, env.params, alpha)
								countMerge()
							case kFlag:
								if stashedFlag == nil || env.round > stashedFlag.round {
									env := env
									stashedFlag = &env
								}
							}
						default:
							drained = true
						}
					}
					switch {
					case plan.OmitUpload(id, round):
						// Omission-Byzantine: trained, but the upload is withheld.
						countOmitted()
					case plan.DropSend(fmt.Sprintf("up-%d-%d", id, round)):
						// Transport loss on the upload link.
						countDropped()
					default:
						// Uplink codec hop; the round's start model is the
						// Delta reference both ends hold.
						transcode(out, cur, cs)
						rt.uplink(id, round)
						select {
						case leaderOf[id] <- envelope{kind: kLocal, round: round, params: out}:
						case <-done:
							return
						}
					}
				}
				// Wait for the next flag model (or termination).
				next := round + 1
				if next >= cfg.Rounds {
					return
				}
				if stashedFlag != nil && stashedFlag.round >= next {
					cur = stashedFlag.params.Clone()
					round = stashedFlag.round
					stashedFlag = nil
					continue
				}
				stashedFlag = nil
				waiting := true
				for waiting {
					var env envelope
					select {
					case env = <-devInbox[id]:
					case <-done:
						return
					}
					switch {
					case env.kind == kGlobal:
						// Idle-time global: blend into the next start model.
						tensor.Lerp(cur, cur, env.params, alpha)
						countMerge()
					case env.kind == kFlag && env.round >= next:
						cur = env.params.Clone()
						round = env.round
						waiting = false
					}
				}
			}
		}()
	}

	// --- Cluster leader goroutines (levels bottom..1).
	for l := bottom; l >= 1; l-- {
		for ci, c := range tree.Clusters[l] {
			l, ci, c := l, ci, c
			var parent chan envelope
			parentLevel, parentCi := -1, 0
			if l == 1 {
				parent = clusterInbox[0][0]
			} else {
				p := tree.Parent(l, ci)
				parent = clusterInbox[p.Level][p.Index]
				parentLevel, parentCi = p.Level, p.Index
			}
			var children []chan envelope
			if l == bottom {
				for _, m := range c.Members {
					children = append(children, devInbox[m])
				}
			} else {
				for _, ch := range tree.ChildClusters(l, ci) {
					children = append(children, clusterInbox[l+1][ch.Index])
				}
			}
			wg.Add(1)
			goroutines++
			go func() {
				defer wg.Done()
				collected := map[int][]tensor.Vector{}
				closed := map[int]bool{}
				need := quorumOf(c.Size())
				// Leader-owned aggregation scratch: leaders run concurrently,
				// so the warm buffers must not be shared between goroutines.
				aggScratch := aggregate.NewScratch(cfg.Workers)
				ins.attachAudit(aggScratch)
				rt.attachAudit(aggScratch)
				cs := codec.NewScratch()
				// firstArrival is when each open round's first input landed —
				// the start of its aggregate span.
				firstArrival := map[int]float64{}
				// lastGlobal is this leader's view of the newest global model
				// (updated as globals are forwarded down) — the Delta codec's
				// reference for the partials it forms.
				var lastGlobal tensor.Vector
				// Collect deadlines (faulted runs only): a round whose quorum
				// never fills aggregates sub-quorum at its deadline; an empty
				// round backs off, then is abandoned.
				deadline := map[int]time.Time{}
				attempts := map[int]int{}
				arm := func(r int) {
					if !faulty || cfg.CollectTimeout <= 0 || r >= cfg.Rounds || closed[r] {
						return
					}
					if _, ok := deadline[r]; !ok {
						deadline[r] = time.Now().Add(deadlineAfter(0))
					}
				}
				// aggregateRound closes round r over whatever was collected and
				// forwards; it reports false when the run is shutting down.
				aggregateRound := func(r int) bool {
					closed[r] = true
					delete(deadline, r)
					vecs := collected[r]
					delete(collected, r)
					// Fresh destination per call: the aggregate is retained
					// by downstream envelopes.
					agg := tensor.NewVector(len(vecs[0]))
					if err := cfg.PartialBRA.AggregateInto(agg, aggScratch, vecs); err != nil {
						return true
					}
					ins.recordAudit(l, aggScratch)
					if rt != nil {
						kept, filtered := auditVerdict(aggScratch, len(vecs))
						rt.aggregate(l, ci, r, parentLevel, parentCi, kept, filtered, firstArrival[r], cfg.PartialBRA.Name())
						delete(firstArrival, r)
					}
					// One codec hop per formed partial; the upward send and a
					// flag release ship the same decoded bytes.
					transcode(agg, lastGlobal, cs)
					if plan.DropSend(fmt.Sprintf("partial-%d-%d-%d", l, ci, r)) {
						countDropped()
					} else {
						select {
						case parent <- envelope{kind: kPartial, round: r, params: agg}:
						case <-done:
							return false
						}
					}
					if l == cfg.FlagLevel && r+1 < cfg.Rounds {
						flag := envelope{kind: kFlag, round: r + 1, params: agg}
						for _, ch := range children {
							select {
							case ch <- flag:
							case <-done:
								return false
							}
						}
						arm(r + 1)
					}
					return true
				}
				for {
					var env envelope
					if faulty && len(deadline) > 0 {
						var next time.Time
						for _, dl := range deadline {
							if next.IsZero() || dl.Before(next) {
								next = dl
							}
						}
						select {
						case env = <-clusterInbox[l][ci]:
						case <-done:
							return
						case <-time.After(time.Until(next)):
							now := time.Now()
							for r, dl := range deadline {
								if dl.After(now) {
									continue
								}
								if closed[r] {
									delete(deadline, r)
									continue
								}
								if len(collected[r]) > 0 {
									if len(collected[r]) < need {
										countSubQuorum()
									}
									if !aggregateRound(r) {
										return
									}
								} else if attempts[r]+1 < retries {
									attempts[r]++
									deadline[r] = now.Add(deadlineAfter(attempts[r]))
								} else {
									closed[r] = true
									delete(deadline, r)
									countAbandoned()
								}
							}
							continue
						}
					} else {
						select {
						case env = <-clusterInbox[l][ci]:
						case <-done:
							return
						}
					}
					switch env.kind {
					case kLocal, kPartial:
						if closed[env.round] || plan.LeaderFailed(l, ci, env.round) {
							continue
						}
						if rt != nil && len(collected[env.round]) == 0 {
							firstArrival[env.round] = rt.now()
						}
						collected[env.round] = append(collected[env.round], env.params)
						arm(env.round)
						if len(collected[env.round]) < need {
							continue
						}
						if !aggregateRound(env.round) {
							return
						}
					case kFlag, kGlobal:
						if plan.LeaderFailed(l, ci, env.round) {
							// Failed leader: the subtree below starves too.
							continue
						}
						if env.kind == kGlobal {
							lastGlobal = env.params
						}
						for _, ch := range children {
							select {
							case ch <- env:
							case <-done:
								return
							}
						}
						if env.kind == kFlag {
							// A forwarded flag proves the round is starting below:
							// arm its deadline so total upload loss cannot stall it.
							arm(env.round)
						}
					}
				}
			}()
		}
	}

	// --- Top goroutine.
	evalModel := nn.NewShaped(sizes...)
	evalWS := nn.NewWorkspace(evalModel)
	pool := nn.NewEvalPool(sizes...)
	validator := func(member int, model tensor.Vector) float64 {
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, cfg.ValidationShards[member%len(cfg.ValidationShards)])
	}
	var topChildren []chan envelope
	for _, ch := range tree.ChildClusters(0, 0) {
		topChildren = append(topChildren, clusterInbox[1][ch.Index])
	}
	topCompleted, topAbandoned := 0, 0
	wg.Add(1)
	goroutines++
	go func() {
		defer wg.Done()
		defer close(done)
		collected := map[int][]tensor.Vector{}
		closedRounds := map[int]bool{}
		need := quorumOf(tree.Top().Size())
		aggScratch := aggregate.NewScratch(cfg.Workers)
		ins.attachAudit(aggScratch)
		rt.attachAudit(aggScratch)
		cs := codec.NewScratch()
		firstArrival := map[int]float64{}
		var lastGlobal tensor.Vector
		deadline := map[int]time.Time{}
		attempts := map[int]int{}
		arm := func(r int) {
			if !faulty || cfg.CollectTimeout <= 0 || r >= cfg.Rounds || closedRounds[r] {
				return
			}
			if _, ok := deadline[r]; !ok {
				deadline[r] = time.Now().Add(deadlineAfter(0))
			}
		}
		arm(0)
		// resolved counts rounds closed either way — formed or abandoned — so
		// the run terminates even when faults starve the protocol of rounds.
		resolved := 0
		abandon := func(r int) {
			closedRounds[r] = true
			delete(deadline, r)
			delete(collected, r)
			resolved++
			topAbandoned++
			countAbandoned()
			arm(r + 1)
		}
		formGlobal := func(r int) {
			closedRounds[r] = true
			delete(deadline, r)
			vecs := collected[r]
			delete(collected, r)
			resolved++
			arm(r + 1)
			var global tensor.Vector
			var err error
			kept, filtered := len(vecs), 0
			rule := ""
			proto := cfg.TopCBA
			if proto == nil && cfg.TopVoting != nil {
				proto = *cfg.TopVoting
			}
			if proto != nil {
				cctx := &consensus.Context{
					Members:   len(vecs),
					Validator: validator,
					Rand:      root.Derive(fmt.Sprintf("vote-%d", r)),
					Round:     r,
				}
				var st consensus.Stats
				global, st, err = proto.Agree(cctx, vecs)
				if err == nil {
					ins.consensusStats(len(vecs), st)
					rule = proto.Name()
					kept, filtered = len(vecs)-len(st.Excluded), len(st.Excluded)
				}
			} else {
				global = tensor.NewVector(len(vecs[0]))
				err = cfg.TopBRA.AggregateInto(global, aggScratch, vecs)
				if err == nil {
					ins.recordAudit(0, aggScratch)
					rule = cfg.TopBRA.Name()
					kept, filtered = auditVerdict(aggScratch, len(vecs))
				}
			}
			if err != nil {
				return
			}
			if rt != nil {
				rt.global(r, kept, filtered, firstArrival[r], rule)
				delete(firstArrival, r)
			}
			// Dissemination codec hop against the previous global; everyone
			// below — and the evaluation — sees the decoded model.
			transcode(global, lastGlobal, cs)
			lastGlobal = global
			evalModel.SetParams(global)
			result.RoundAccuracy[r] = nn.AccuracyWS(evalModel, evalWS, cfg.TestData)
			ins.globalFormed(result.RoundAccuracy[r])
			topCompleted++
			gm := envelope{kind: kGlobal, round: r, params: global}
			for _, ch := range topChildren {
				ch <- gm
			}
			if cfg.FlagLevel == 0 && r+1 < cfg.Rounds {
				flag := envelope{kind: kFlag, round: r + 1, params: global}
				for _, ch := range topChildren {
					ch <- flag
				}
			}
		}
		for resolved < cfg.Rounds {
			var env envelope
			if faulty && len(deadline) > 0 {
				var next time.Time
				for _, dl := range deadline {
					if next.IsZero() || dl.Before(next) {
						next = dl
					}
				}
				expired := false
				select {
				case env = <-clusterInbox[0][0]:
				case <-time.After(time.Until(next)):
					expired = true
				}
				if expired {
					now := time.Now()
					for r, dl := range deadline {
						if dl.After(now) || closedRounds[r] {
							continue
						}
						if n := len(collected[r]); n > 0 {
							if n < need {
								countSubQuorum()
							}
							formGlobal(r)
						} else if attempts[r]+1 < retries {
							attempts[r]++
							deadline[r] = now.Add(deadlineAfter(attempts[r]))
						} else {
							abandon(r)
						}
					}
					continue
				}
			} else {
				env = <-clusterInbox[0][0]
			}
			if env.kind != kPartial || closedRounds[env.round] {
				continue
			}
			if rt != nil && len(collected[env.round]) == 0 {
				firstArrival[env.round] = rt.now()
			}
			collected[env.round] = append(collected[env.round], env.params)
			arm(env.round)
			if len(collected[env.round]) < need {
				continue
			}
			formGlobal(env.round)
		}
	}()

	start := time.Now()
	wg.Wait()
	result.WallTime = time.Since(start)
	result.Goroutines = goroutines
	merges.Lock()
	result.Merges = mergeCount
	merges.Unlock()
	result.CompletedRounds = topCompleted
	result.AbandonedRounds = topAbandoned
	fstats.Lock()
	result.SubQuorum = fstats.subQuorum
	result.Omitted = fstats.omitted
	result.DroppedSends = fstats.dropped
	fstats.Unlock()
	cstats.Lock()
	result.WireBytes = cstats.wireBytes
	codecErr := cstats.err
	cstats.Unlock()
	if codecErr != nil {
		return nil, codecErr
	}
	for r := cfg.Rounds - 1; r >= 0; r-- {
		if result.RoundAccuracy[r] > 0 {
			result.FinalAccuracy = result.RoundAccuracy[r]
			break
		}
	}
	return result, nil
}
