package realtime

import (
	"strings"
	"testing"

	"abdhfl/internal/trace"
)

// TestRealtimeSpansRecorded checks the wall-clock tracer on the
// goroutine-per-node engine: every structural span kind shows up, intervals
// are sane, and concurrent recording from hundreds of goroutines is
// race-free (this test runs under -race via make verify-trace). Realtime
// span timing is wall time, so the stream is deliberately NOT golden-tested.
func TestRealtimeSpansRecorded(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 8, 1, 0)
	tr := trace.NewTracer(8, 0)
	cfg.Trace = tr
	res := runWithTimeout(t, cfg)
	if res.FinalAccuracy <= 0 {
		t.Fatal("run produced no accuracy")
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("traced realtime run recorded no spans")
	}
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.End < s.Start {
			t.Fatalf("span %s ends before it starts: %+v", s.Name, s)
		}
		if s.ID == 0 {
			t.Fatalf("span %s has the reserved zero ID", s.Name)
		}
	}
	for _, name := range []string{"train", "msg", "aggregate", "global", "round"} {
		if counts[name] == 0 {
			t.Fatalf("no %q spans recorded (have %v)", name, counts)
		}
	}
	if counts["global"] != counts["round"] {
		t.Fatalf("%d global spans vs %d round spans", counts["global"], counts["round"])
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"name":"global"`) {
		t.Fatal("JSONL export missing global spans")
	}
}
