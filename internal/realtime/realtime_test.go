package realtime

import (
	"testing"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/topology"
)

func buildConfig(t testing.TB, levels, m, top, rounds, flagLevel, byz int) Config {
	t.Helper()
	tree, err := topology.NewECSM(levels, m, top)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	devices := tree.NumDevices()
	full := dataset.Generate(r.Derive("train"), devices*60, dataset.DefaultGen())
	shards := dataset.PartitionIID(r.Derive("part"), full, devices)
	test := dataset.Generate(r.Derive("test"), 400, dataset.DefaultGen())
	valPool := dataset.Generate(r.Derive("val"), 300, dataset.DefaultGen())
	valShards := dataset.PartitionIID(r.Derive("valpart"), valPool, top)
	for id := 0; id < byz; id++ {
		attack.LabelFlipAll{Target: 9}.Poison(r.Derive("poison"), shards[id])
	}
	voting := consensus.Voting{}
	return Config{
		Tree:             tree,
		Rounds:           rounds,
		FlagLevel:        flagLevel,
		Local:            nn.TrainConfig{LearningRate: 0.1, BatchSize: 16, Iterations: 5},
		PartialBRA:       aggregate.NewMultiKrum(0.25),
		TopVoting:        &voting,
		ClientData:       shards,
		TestData:         test,
		ValidationShards: valShards,
		Seed:             5,
	}
}

// runWithTimeout guards against engine deadlocks hanging the test binary.
func runWithTimeout(t *testing.T, cfg Config) *Result {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := Run(cfg)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("realtime run deadlocked")
		return nil
	}
}

func TestRealtimeLearns(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 20, 1, 0)
	res := runWithTimeout(t, cfg)
	if res.FinalAccuracy < 0.45 {
		t.Fatalf("realtime accuracy = %v", res.FinalAccuracy)
	}
	if res.Goroutines < 8+4+2+1 {
		t.Fatalf("goroutines = %d, expected one per device and cluster", res.Goroutines)
	}
	if res.WallTime <= 0 {
		t.Fatal("no wall time")
	}
}

func TestRealtimeFlagLevelZero(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 8, 0, 0)
	res := runWithTimeout(t, cfg)
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("accuracy = %v", res.FinalAccuracy)
	}
}

func TestRealtimeMergesHappen(t *testing.T) {
	// Slow local training down so globals reliably arrive mid-training and
	// the correction-factor path is exercised. Whether a given run merges is
	// inherently scheduling-dependent (race instrumentation skews the
	// compute balance), so allow a few attempts — the property under test is
	// that the merge path WORKS, not that a particular interleaving occurs.
	for attempt := 0; attempt < 4; attempt++ {
		cfg := buildConfig(t, 3, 2, 2, 12, 1, 0)
		cfg.TrainDelay = time.Duration(5*(attempt+1)) * time.Millisecond
		res := runWithTimeout(t, cfg)
		if res.Merges > 0 {
			return
		}
	}
	t.Fatal("no correction-factor merges across 4 attempts")
}

func TestRealtimeUnderPoisoning(t *testing.T) {
	// 25% Type I poisoning on the paper tree shape; protocol must complete
	// and keep learning.
	cfg := buildConfig(t, 3, 4, 4, 12, 1, 16)
	res := runWithTimeout(t, cfg)
	if res.FinalAccuracy < 0.35 {
		t.Fatalf("accuracy under poisoning = %v", res.FinalAccuracy)
	}
}

func TestRealtimeTopBRA(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
	cfg.TopVoting = nil
	cfg.TopBRA = aggregate.Median{}
	res := runWithTimeout(t, cfg)
	if res.FinalAccuracy <= 0 {
		t.Fatal("no accuracy recorded")
	}
}

func TestRealtimeAllRoundsEvaluated(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 7, 1, 0)
	res := runWithTimeout(t, cfg)
	if len(res.RoundAccuracy) != 7 {
		t.Fatalf("round accuracies = %d", len(res.RoundAccuracy))
	}
	for r, acc := range res.RoundAccuracy {
		if acc <= 0 {
			t.Fatalf("round %d has no accuracy", r)
		}
	}
}

func TestRealtimeValidation(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	bad := cfg
	bad.Rounds = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero rounds accepted")
	}
	bad = cfg
	bad.FlagLevel = 5
	if _, err := Run(bad); err == nil {
		t.Fatal("bad flag level accepted")
	}
	bad = cfg
	bad.TopVoting = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("missing top rule accepted")
	}
}

func BenchmarkRealtime8Devices(b *testing.B) {
	cfg := buildConfig(b, 3, 2, 2, 5, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
