package realtime

import (
	"testing"

	"abdhfl/internal/codec"
)

// Realtime runs are not bit-reproducible (goroutine scheduling picks the
// quorum subsets), so codec coverage here is smoke-level: the protocol still
// converges through lossy hops, and wire bytes are tallied.
func TestRealtimeWithCodec(t *testing.T) {
	for _, name := range []string{"identity", "int8", "delta"} {
		c, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := buildConfig(t, 3, 2, 2, 15, 1, 0)
		cfg.Codec = c
		res := runWithTimeout(t, cfg)
		if res.FinalAccuracy < 0.45 {
			t.Fatalf("%s: realtime accuracy = %v under codec", name, res.FinalAccuracy)
		}
		if res.WireBytes == 0 {
			t.Fatalf("%s: no wire bytes recorded", name)
		}
	}
}

func TestRealtimeNilCodecNoWireBytes(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	res := runWithTimeout(t, cfg)
	if res.WireBytes != 0 {
		t.Fatalf("nil codec recorded %d wire bytes", res.WireBytes)
	}
}
