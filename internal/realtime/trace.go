package realtime

import (
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// rtTracer emits causal spans from the goroutine engine. The span shapes and
// structural IDs match internal/pipeline's emission (train -> umsg ->
// aggregate -> pmsg -> ... -> global -> round), but the clock is real wall
// time (milliseconds since Run started) and emitters run concurrently — so
// the recorded stream is race-safe but NOT reproducible between runs, just
// like everything else this engine measures. Golden trace tests therefore pin
// the core and pipeline engines only; realtime coverage is -race smoke.
//
// Seq is left zero on every Record: the tracer's atomic auto-sequence is
// safe under concurrency, and without reproducibility there is nothing for a
// caller-supplied Seq to stabilise.
//
// All methods are nil-receiver safe; a nil *rtTracer (Config.Trace unset)
// keeps the hot paths free of even the clock reads.
type rtTracer struct {
	tr        *trace.Tracer
	start     time.Time
	bottom    int
	bytes     int64
	clusterOf []int // device id -> bottom-level cluster index
	leaderOf  []int // device id -> bottom-level leader device id
}

func newRTTracer(tr *trace.Tracer, tree *topology.Tree, c codec.Codec, dim int) *rtTracer {
	if tr == nil {
		return nil
	}
	bytes := int64(dim)
	if c != nil {
		bytes = int64(c.WireBytes(dim))
	}
	rt := &rtTracer{
		tr:        tr,
		start:     time.Now(),
		bottom:    tree.Bottom(),
		bytes:     bytes,
		clusterOf: make([]int, tree.NumDevices()),
		leaderOf:  make([]int, tree.NumDevices()),
	}
	for ci, cl := range tree.Clusters[tree.Bottom()] {
		for _, m := range cl.Members {
			rt.clusterOf[m] = ci
			rt.leaderOf[m] = cl.Leader
		}
	}
	return rt
}

// attachAudit gives a leader-owned scratch a FilterAudit when tracing wants
// kept/filtered counts and telemetry hasn't already attached one.
func (rt *rtTracer) attachAudit(s *aggregate.Scratch) {
	if rt != nil && s.Audit == nil {
		s.Audit = &aggregate.FilterAudit{}
	}
}

// auditVerdict reads the scratch audit's verdict for the aggregation that
// just ran over n inputs: kept counts contributions in the result (clipped
// ones still contribute), filtered counts discarded ones.
func auditVerdict(s *aggregate.Scratch, n int) (kept, filtered int) {
	if s.Audit == nil || len(s.Audit.Decisions) != n {
		return n, 0
	}
	k, c, t := s.Audit.Counts()
	return k + c, t
}

// now is the engine clock: wall milliseconds since the run began.
func (rt *rtTracer) now() float64 {
	return float64(time.Since(rt.start).Microseconds()) / 1000
}

// train emits a device's completed SGD pass for a round.
func (rt *rtTracer) train(dev, round int, startMS float64) {
	if rt == nil {
		return
	}
	rt.tr.Record(trace.Span{
		ID:      trace.SpanID("train", round, dev),
		Parent:  trace.SpanID("umsg", round, dev),
		Name:    "train",
		Start:   startMS,
		End:     rt.now(),
		Round:   round,
		Level:   rt.bottom,
		Cluster: rt.clusterOf[dev],
		Device:  dev,
		From:    -1,
		To:      -1,
	})
}

// uplink emits the device->leader hop for an upload actually sent. Channel
// sends are effectively instantaneous, so the hop is a point interval at the
// send time.
func (rt *rtTracer) uplink(dev, round int) {
	if rt == nil {
		return
	}
	at := rt.now()
	rt.tr.Record(trace.Span{
		ID:      trace.SpanID("umsg", round, dev),
		Parent:  trace.SpanID("aggregate", round, rt.bottom, rt.clusterOf[dev]),
		Name:    "msg",
		Start:   at,
		End:     at,
		Round:   round,
		Level:   rt.bottom,
		Cluster: rt.clusterOf[dev],
		Device:  dev,
		From:    dev,
		To:      rt.leaderOf[dev],
		Bytes:   rt.bytes,
		Detail:  "uplink",
	})
}

// aggregate emits a leader's collection-close-to-formed span plus the
// partial-model hop up to its consumer. firstMS is when the round's first
// input arrived at this leader. parentLevel -1 means the parent is the top.
func (rt *rtTracer) aggregate(level, ci, round, parentLevel, parentCi, kept, filtered int, firstMS float64, rule string) {
	if rt == nil {
		return
	}
	end := rt.now()
	rt.tr.Record(trace.Span{
		ID:       trace.SpanID("aggregate", round, level, ci),
		Parent:   trace.SpanID("pmsg", round, level, ci),
		Name:     "aggregate",
		Start:    firstMS,
		End:      end,
		Round:    round,
		Level:    level,
		Cluster:  ci,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Kept:     kept,
		Filtered: filtered,
	})
	parent := trace.SpanID("global", round)
	if parentLevel >= 0 {
		parent = trace.SpanID("aggregate", round, parentLevel, parentCi)
	}
	rt.tr.Record(trace.Span{
		ID:      trace.SpanID("pmsg", round, level, ci),
		Parent:  parent,
		Name:    "msg",
		Start:   end,
		End:     end,
		Round:   round,
		Level:   level,
		Cluster: ci,
		Device:  -1,
		From:    -1,
		To:      -1,
		Bytes:   rt.bytes,
		Detail:  "partial",
	})
}

// global emits the round's global-formation span and the enclosing round
// span (realtime has no per-round barrier, so the round span covers first
// partial arrival -> global formed, the only interval the top observes).
func (rt *rtTracer) global(round, kept, filtered int, firstMS float64, rule string) {
	if rt == nil {
		return
	}
	end := rt.now()
	rt.tr.Record(trace.Span{
		ID:       trace.SpanID("global", round),
		Parent:   trace.SpanID("round", round),
		Name:     "global",
		Start:    firstMS,
		End:      end,
		Round:    round,
		Level:    0,
		Cluster:  0,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Bytes:    rt.bytes,
		Kept:     kept,
		Filtered: filtered,
	})
	rt.tr.Record(trace.Span{
		ID:      trace.SpanID("round", round),
		Name:    "round",
		Start:   firstMS,
		End:     end,
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
}
