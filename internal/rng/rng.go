// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the simulator.
//
// All randomness in the repository flows through explicit *rng.RNG values
// seeded from a single experiment seed, so that every experiment replays
// bit-for-bit. The generator is a SplitMix64 core (Steele, Lea, Flood 2014),
// which passes BigCrush for the 64-bit output stream and supports cheap
// derivation of independent sub-streams via Split.
package rng

import "math"

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
	// cached spare Gaussian sample for the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

const (
	gamma = 0x9E3779B97F4A7C15 // golden-ratio increment
	mixA  = 0xBF58476D1CE4E5B9
	mixB  = 0x94D049BB133111EB
)

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	z := r.state
	z = (z ^ (z >> 30)) * mixA
	z = (z ^ (z >> 27)) * mixB
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. The receiver advances by one step.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Derive returns a deterministic sub-generator identified by label. Unlike
// Split it does not advance the receiver, so derivation order does not
// matter: Derive(a) is the same stream regardless of any Derive(b) calls.
func (r *RNG) Derive(label string) *RNG {
	h := r.state
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001B3 // FNV-1a style fold
	}
	// Run the mixed value through one SplitMix finalizer so similar labels
	// land far apart.
	h += gamma
	h = (h ^ (h >> 30)) * mixA
	h = (h ^ (h >> 27)) * mixB
	return &RNG{state: h ^ (h >> 31)}
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine here: the bias for
	// n << 2^64 is far below anything observable in simulation.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// NormFloat64 returns a standard Gaussian sample (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponentially distributed sample with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a sample of the log-normal distribution with the given
// location mu and scale sigma of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns k distinct indices sampled uniformly from [0, n) in random
// order. It panics if k > n.
func (r *RNG) Choice(n, k int) []int {
	if k > n {
		panic("rng: Choice with k > n")
	}
	p := r.Perm(n)
	return p[:k]
}

// DeriveN returns a deterministic sub-generator identified by (label, n) —
// the numeric counterpart of Derive for per-index streams. Like Derive it
// does not advance the receiver, and it allocates no intermediate string, so
// hot loops can derive per-device streams without a fmt.Sprintf per call.
//
// DeriveN(label, n) and Derive(label + strconv(n)) are distinct streams;
// callers must pick one convention per stream family and keep it.
func (r *RNG) DeriveN(label string, n uint64) *RNG {
	h := r.state
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001B3
	}
	// Fold the index byte-wise so all 64 bits participate.
	for i := 0; i < 8; i++ {
		h = (h ^ (n & 0xFF)) * 0x100000001B3
		n >>= 8
	}
	h += gamma
	h = (h ^ (h >> 30)) * mixA
	h = (h ^ (h >> 27)) * mixB
	return &RNG{state: h ^ (h >> 31)}
}

// PermInto fills p (treated as having length n = len(p)) with a random
// permutation of [0, n) using Fisher-Yates, allocating nothing.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ChoiceInto samples k = len(dst) distinct indices uniformly from [0, n)
// into dst using a partial Fisher-Yates over the caller's scratch slice,
// which must have length >= n; scratch contents are overwritten. Neither
// slice is allocated, so per-cluster cohort draws stay allocation-free even
// with hundreds of thousands of clusters.
//
// The first k elements drawn match Choice(n, k) exactly when k == n; for
// k < n the draw is still uniform but the stream consumption differs from
// Choice (k steps instead of n-1), which is why the cohort machinery uses
// ChoiceInto exclusively.
func (r *RNG) ChoiceInto(dst []int, n int, scratch []int) {
	k := len(dst)
	if k > n {
		panic("rng: ChoiceInto with k > n")
	}
	if len(scratch) < n {
		panic("rng: ChoiceInto scratch shorter than n")
	}
	s := scratch[:n]
	for i := range s {
		s[i] = i
	}
	// Partial Fisher-Yates: after i swaps, s[:i] is a uniform i-subset in
	// uniform order.
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		s[i], s[j] = s[j], s[i]
	}
	copy(dst, s[:k])
}
