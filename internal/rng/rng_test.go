package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("consecutive splits produced identical first outputs")
	}
}

func TestDeriveOrderIndependent(t *testing.T) {
	r1 := New(99)
	r2 := New(99)
	// Derivation in different orders must yield the same sub-streams.
	a1 := r1.Derive("alpha").Uint64()
	b1 := r1.Derive("beta").Uint64()
	b2 := r2.Derive("beta").Uint64()
	a2 := r2.Derive("alpha").Uint64()
	if a1 != a2 || b1 != b2 {
		t.Fatal("Derive is not order independent")
	}
	if a1 == b1 {
		t.Fatal("different labels collided")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("gaussian variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential sample negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("lognormal sample non-positive: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceDistinct(t *testing.T) {
	check := func(seed uint64, n, k uint8) bool {
		size := int(n%32) + 1
		kk := int(k) % (size + 1)
		c := New(seed).Choice(size, kk)
		if len(c) != kk {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range c {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64()
	_ = r.Float64()
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestDeriveNDoesNotAdvance(t *testing.T) {
	a := New(99)
	b := New(99)
	_ = a.DeriveN("device", 7)
	_ = a.DeriveN("device", 8)
	if a.Uint64() != b.Uint64() {
		t.Fatal("DeriveN advanced the parent stream")
	}
}

func TestDeriveNDistinctStreams(t *testing.T) {
	r := New(5)
	seen := map[uint64]string{}
	for i := uint64(0); i < 1000; i++ {
		v := r.DeriveN("device", i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("DeriveN collision: index %d equals %s", i, prev)
		}
		seen[v] = "device"
	}
	if r.DeriveN("device", 3).Uint64() == r.DeriveN("cohort", 3).Uint64() {
		t.Fatal("different labels produced the same stream")
	}
	// Deterministic: re-deriving yields the same stream.
	if r.DeriveN("device", 3).Uint64() != r.DeriveN("device", 3).Uint64() {
		t.Fatal("DeriveN not deterministic")
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a := New(11)
	b := New(11)
	want := a.Perm(50)
	got := make([]int, 50)
	b.PermInto(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("PermInto diverges from Perm at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestChoiceIntoUniformAndDistinct(t *testing.T) {
	r := New(17)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	dst := make([]int, k)
	scratch := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r.ChoiceInto(dst, n, scratch)
		seen := map[int]bool{}
		for _, v := range dst {
			if v < 0 || v >= n {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in draw %v", v, dst)
			}
			seen[v] = true
			counts[v]++
		}
	}
	// Each index should appear ~ trials*k/n times; allow 10%.
	want := float64(trials*k) / n
	for i, c := range counts {
		if float64(c) < 0.9*want || float64(c) > 1.1*want {
			t.Fatalf("index %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestChoiceIntoPanics(t *testing.T) {
	r := New(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("k>n", func() { r.ChoiceInto(make([]int, 5), 3, make([]int, 5)) })
	mustPanic("short scratch", func() { r.ChoiceInto(make([]int, 2), 10, make([]int, 4)) })
}
