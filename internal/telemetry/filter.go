package telemetry

// FilterDecision is one aggregation step's filtering verdict: which
// contributors a Byzantine-robust rule (or consensus protocol) kept,
// clipped, or discarded at one (level, cluster, round) of the tree. The
// engines emit one per aggregation through Config.OnFilter; experiments
// join the ids against ground-truth attacker sets to measure per-level
// filter precision and recall.
//
// The id slices are owned by the emitting engine and reused across calls —
// consumers must copy (or fully reduce) them before returning.
type FilterDecision struct {
	// Engine names the emitting engine ("hfl", "vanilla", "gossip",
	// "pipeline", "realtime").
	Engine string
	// Level is the tree level of the aggregating node (0 = top). The flat
	// baselines report everything at level 0.
	Level int
	// Cluster is the aggregating cluster's index within its level.
	Cluster int
	// Round is the engine round during which the aggregation ran.
	Round int
	// Rule is the aggregation rule's display name (e.g. "multi-krum",
	// "cba:voting").
	Rule string
	// Kept lists contributor ids whose updates entered the output at full
	// weight; Clipped lists ids that contributed with reduced weight
	// (norm-bound / centered-clipping); Discarded lists ids excluded
	// outright. At the bottom level ids are device ids; at upper levels
	// they are the leader ids of the contributing child clusters.
	Kept, Clipped, Discarded []int
}
