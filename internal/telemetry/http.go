package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler returns an http.Handler exposing the registry plus the standard
// Go diagnostics:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar (cmdline, memstats)
//	/debug/pprof/  runtime profiles (cpu, heap, goroutine, trace, ...)
//
// Works on a nil registry too — the metric endpoints just serve empty
// output, while the pprof/expvar endpoints stay fully functional.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "abdhfl telemetry\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve binds addr and serves Handler in a background goroutine, returning
// the bound address (useful with a ":0" addr). The listener lives for the
// remainder of the process; the experiment binaries are short-lived, so no
// shutdown plumbing is offered.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// MaybeServe implements the cmd/ binaries' -telemetry-addr flag: with an
// empty addr it returns nil (telemetry off); otherwise it creates a
// registry, serves it on addr, and logs the endpoint to stderr. A bind
// failure is fatal — an explicitly requested endpoint that silently fails
// would defeat the point of asking for one.
func MaybeServe(addr string) *Registry {
	if addr == "" {
		return nil
	}
	reg := New()
	bound, err := reg.Serve(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics (pprof under /debug/pprof/)\n", bound)
	return reg
}
