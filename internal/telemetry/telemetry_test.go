package telemetry

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// goldenRegistry builds the fixed registry behind the Prometheus golden
// file. All observed values are exact binary fractions so the rendered sums
// are platform-independent.
func goldenRegistry() *Registry {
	reg := New()
	reg.Counter("abdhfl_rounds_total").Add(42)
	reg.Counter(`abdhfl_filter_kept_total{level="1"}`).Add(7)
	reg.Counter(`abdhfl_filter_kept_total{level="2"}`).Add(9)
	reg.Gauge(`abdhfl_accuracy{engine="hfl"}`).Set(0.9375)
	h := reg.Histogram("abdhfl_round_seconds", []float64{0.125, 0.5, 1})
	h.Observe(0.0625)
	h.Observe(0.375)
	h.Observe(2)
	hp := reg.Histogram(`abdhfl_phase_seconds{phase="train"}`, []float64{0.25})
	hp.Observe(0.125)
	hp.Observe(0.75)
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus output differs from %s:\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

func TestSnapshot(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	if got := snap.Counters["abdhfl_rounds_total"]; got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if got := snap.Gauges[`abdhfl_accuracy{engine="hfl"}`]; got != 0.9375 {
		t.Errorf("gauge = %v, want 0.9375", got)
	}
	hv, ok := snap.Histograms["abdhfl_round_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 3 || hv.Sum != 2.4375 {
		t.Errorf("histogram count/sum = %d/%v, want 3/2.4375", hv.Count, hv.Sum)
	}
	// Buckets are cumulative and end with +Inf covering every observation.
	last := hv.Buckets[len(hv.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != hv.Count {
		t.Errorf("final bucket = %+v, want le=+Inf count=%d", last, hv.Count)
	}
	for i := 1; i < len(hv.Buckets); i++ {
		if hv.Buckets[i].Count < hv.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d: %+v", i, hv.Buckets)
		}
	}
}

// TestNilSafety pins the "telemetry off" contract: nil registries hand out
// nil handles and every operation on them is a safe no-op.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if snap := reg.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry WritePrometheus = %v, %q", err, buf.String())
	}
}

func TestIdempotentLookup(t *testing.T) {
	reg := New()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter lookup not idempotent")
	}
	if reg.Histogram("h", []float64{1, 2}) != reg.Histogram("h", nil) {
		t.Error("Histogram lookup not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict must panic")
		}
	}()
	reg.Gauge("x")
}

// TestConcurrentRecordSnapshot exercises concurrent writers against
// concurrent exporters; run under -race this is the registry's
// thread-safety proof.
func TestConcurrentRecordSnapshot(t *testing.T) {
	reg := New()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			// Half the writers share series; half register their own, so
			// registration races with both lookup and export.
			names := []string{"shared_total", `own_total{w="a"}`}
			if wID%2 == 0 {
				names[1] = `own_total{w="b"}`
			}
			for i := 0; i < perWriter; i++ {
				reg.Counter(names[i%2]).Inc()
				reg.Gauge("g").Set(float64(i))
				reg.Histogram("h", []float64{10, 100, 1000}).Observe(float64(i % 2000))
			}
		}(wID)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.Snapshot()
			reg.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()

	snap := reg.Snapshot()
	total := snap.Counters["shared_total"] + snap.Counters[`own_total{w="a"}`] + snap.Counters[`own_total{w="b"}`]
	if want := int64(writers * perWriter); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if h := snap.Histograms["h"]; h.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", h.Count, writers*perWriter)
	}
}

// TestUpdateAllocs pins the hot-path contract: once a handle exists,
// recording costs zero allocations.
func TestUpdateAllocs(t *testing.T) {
	reg := New()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", DefSecondsBuckets)
	if n := testing.AllocsPerRun(100, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.3) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}
