package telemetry

import (
	"math"
	"testing"

	"abdhfl/internal/rng"
)

func directStats(xs []float64) StreamSnapshot {
	if len(xs) == 0 {
		return StreamSnapshot{}
	}
	snap := StreamSnapshot{Count: int64(len(xs)), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, v := range xs {
		sum += v
		if v < snap.Min {
			snap.Min = v
		}
		if v > snap.Max {
			snap.Max = v
		}
	}
	snap.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, v := range xs {
			d := v - snap.Mean
			ss += d * d
		}
		snap.Std = math.Sqrt(ss / float64(len(xs)))
	}
	return snap
}

func close64(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestStreamMatchesDirect(t *testing.T) {
	r := rng.New(8)
	xs := make([]float64, 10_000)
	var s Stream
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		s.Observe(xs[i])
	}
	want := directStats(xs)
	got := s.Snapshot()
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("count/min/max mismatch: %+v vs %+v", got, want)
	}
	if !close64(got.Mean, want.Mean) || !close64(got.Std, want.Std) {
		t.Fatalf("mean/std mismatch: %+v vs %+v", got, want)
	}
}

func TestStreamMergeMatchesCombined(t *testing.T) {
	r := rng.New(9)
	var a, b, all Stream
	var xs []float64
	for i := 0; i < 5000; i++ {
		v := r.ExpFloat64() * 7
		xs = append(xs, v)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	got, want := a.Snapshot(), directStats(xs)
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("merge count/min/max mismatch: %+v vs %+v", got, want)
	}
	if !close64(got.Mean, want.Mean) || !close64(got.Std, want.Std) {
		t.Fatalf("merge mean/std mismatch: %+v vs %+v", got, want)
	}
}

func TestStreamEdgeCases(t *testing.T) {
	var nilStream *Stream
	nilStream.Observe(1) // must not panic
	nilStream.Merge(&Stream{})
	if nilStream.Count() != 0 || nilStream.Snapshot() != (StreamSnapshot{}) {
		t.Fatal("nil stream not inert")
	}
	var empty Stream
	if empty.Snapshot() != (StreamSnapshot{}) {
		t.Fatal("empty snapshot not zero")
	}
	var one Stream
	one.Observe(42)
	snap := one.Snapshot()
	if snap.Count != 1 || snap.Mean != 42 || snap.Std != 0 || snap.Min != 42 || snap.Max != 42 {
		t.Fatalf("single-sample snapshot wrong: %+v", snap)
	}
	// Merging into an empty stream copies.
	var dst Stream
	dst.Merge(&one)
	if dst.Snapshot() != snap {
		t.Fatal("merge into empty did not copy")
	}
	// Merging an empty stream is a no-op.
	dst.Merge(&empty)
	if dst.Snapshot() != snap {
		t.Fatal("merging empty changed state")
	}
}
