package telemetry

import "math"

// A Stream is a single-writer streaming aggregate over a sequence of float64
// samples: count, mean, variance (Welford's online algorithm), min, and max
// in O(1) state. It replaces per-device series at scale — a million-device
// run keeps one Stream per (level, quantity) instead of a million gauges —
// and is exactly deterministic: the same sample sequence produces the same
// snapshot bit-for-bit.
//
// Unlike Counter/Gauge/Histogram, a Stream is not concurrency-safe; it is
// meant for the simulator's serial dispatch loop. The zero value is an empty
// stream, ready to use.
type Stream struct {
	count int64
	mean  float64
	m2    float64 // sum of squared deviations from the running mean
	min   float64
	max   float64
}

// Observe folds one sample into the stream.
func (s *Stream) Observe(v float64) {
	if s == nil {
		return
	}
	s.count++
	if s.count == 1 {
		s.mean, s.min, s.max = v, v, v
		s.m2 = 0
		return
	}
	delta := v - s.mean
	s.mean += delta / float64(s.count)
	s.m2 += delta * (v - s.mean)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// Merge folds another stream into the receiver (Chan et al. parallel
// variance combination), leaving other unchanged.
func (s *Stream) Merge(other *Stream) {
	if s == nil || other == nil || other.count == 0 {
		return
	}
	if s.count == 0 {
		*s = *other
		return
	}
	na, nb := float64(s.count), float64(other.count)
	delta := other.mean - s.mean
	total := na + nb
	s.mean += delta * nb / total
	s.m2 += other.m2 + delta*delta*na*nb/total
	s.count += other.count
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of samples observed (0 on a nil stream).
func (s *Stream) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// A StreamSnapshot is the exported summary of a Stream at one instant.
// Min/Max are 0 for an empty stream; Std is the population standard
// deviation (0 for fewer than two samples).
type StreamSnapshot struct {
	Count int64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// Snapshot summarizes the stream's current state.
func (s *Stream) Snapshot() StreamSnapshot {
	if s == nil || s.count == 0 {
		return StreamSnapshot{}
	}
	snap := StreamSnapshot{Count: s.count, Mean: s.mean, Min: s.min, Max: s.max}
	if s.count > 1 {
		snap.Std = math.Sqrt(s.m2 / float64(s.count))
	}
	return snap
}
