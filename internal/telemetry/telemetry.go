// Package telemetry is the repository's observability layer: a small
// registry of counters, gauges, and fixed-bucket histograms designed for
// the engines' hot paths. Updates are single atomic operations — no locks,
// no allocations — so instrumentation can stay enabled inside per-round
// loops without disturbing the zero-allocation discipline of the training
// and aggregation kernels.
//
// Handles are nil-safe: every method on a nil *Counter, *Gauge, or
// *Histogram is a no-op, and looking up a metric on a nil *Registry returns
// a nil handle. Engines therefore instrument unconditionally; passing a nil
// registry disables telemetry without a single branch at the call sites.
//
// Metric names follow the Prometheus exposition convention, with labels
// baked into the name at registration time:
//
//	reg.Counter(`abdhfl_filter_kept_total{level="1"}`)
//
// Series sharing a base name (the part before '{') form one family and are
// exported under a single TYPE header. Since label sets are fixed per call
// site, engines resolve handles once and pay only the atomic update per
// event.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a float64 that can go up and down; it stores the value's IEEE
// bits in a uint64 so Set/Value are single atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// A Histogram counts observations into fixed buckets. Bounds are immutable
// after registration; Observe is one atomic bucket increment plus a CAS
// loop for the running sum, and never allocates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf bucket appended
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bounds are short (tens of entries); linear scan beats binary search
	// for typical sizes and stays branch-predictable for clustered samples.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LinearBuckets returns count ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// ExpBuckets returns count ascending bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefSecondsBuckets is the default bound set for wall-clock phase
// durations, spanning sub-millisecond kernels to multi-second rounds.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metricKind discriminates the union held by one registered series.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric: a full name (labels included) plus
// exactly one live handle.
type series struct {
	name string // full series name, e.g. `abdhfl_rounds_total{engine="hfl"}`
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// family groups the series sharing a base metric name; the Prometheus text
// format requires them contiguous under one TYPE header.
type family struct {
	base   string
	kind   metricKind
	series []*series
}

// A Registry holds named metrics. Lookup methods are idempotent — the first
// call registers, later calls with the same name return the same handle —
// and safe for concurrent use. The zero value is ready; a nil *Registry is
// a valid "telemetry off" registry whose lookups return nil handles.
type Registry struct {
	mu       sync.Mutex
	families []*family          // registration order, for stable export
	byName   map[string]*series // full series name -> series
	byBase   map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// baseName strips a trailing {label} block from a full series name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// lookup finds or creates the series for name with the given kind. It
// panics on a kind conflict: reusing one name for two metric types is a
// programming error no caller can meaningfully handle.
func (r *Registry) lookup(name string, kind metricKind) *series {
	fam := r.byBase[baseName(name)]
	if fam == nil {
		if r.byName == nil {
			r.byName = make(map[string]*series)
			r.byBase = make(map[string]*family)
		}
		fam = &family{base: baseName(name), kind: kind}
		r.byBase[fam.base] = fam
		r.families = append(r.families, fam)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", name, fam.kind, kind))
	}
	s := r.byName[name]
	if s == nil {
		s = &series{name: name}
		r.byName[name] = s
		fam.series = append(fam.series, s)
	}
	return s
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, kindCounter)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls ignore bounds and
// return the existing histogram). Bounds must be strictly ascending; nil
// selects DefSecondsBuckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, kindHistogram)
	if s.h == nil {
		if bounds == nil {
			bounds = DefSecondsBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
		s.h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return s.h
}

// visit calls fn for every family under the lock, in registration order.
// The family slices are append-only, so fn may read them freely.
func (r *Registry) visit(fn func(*family)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fam := range r.families {
		fn(fam)
	}
}
