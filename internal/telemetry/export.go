package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// splitName separates a full series name into its base metric name and the
// inner label list (without braces), e.g.
//
//	`m{a="1",b="2"}` -> ("m", `a="1",b="2"`)
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// promFloat renders a float in the Prometheus exposition format.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel appends one label pair to a series name's label set, yielding a
// full sample name (used to splice `le` into histogram bucket lines).
func withLabel(base, labels, extra string) string {
	if labels == "" {
		return base + "{" + extra + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// suffixed renames a histogram series with a _sum/_count/_bucket suffix on
// its base name, preserving labels.
func suffixed(base, labels, suffix string) string {
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order, series
// within a family in registration order. Histograms export cumulative
// buckets plus _sum and _count, per the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.visit(func(fam *family) {
		pr("# TYPE %s %s\n", fam.base, fam.kind)
		for _, s := range fam.series {
			base, labels := splitName(s.name)
			switch fam.kind {
			case kindCounter:
				pr("%s %d\n", s.name, s.c.Value())
			case kindGauge:
				pr("%s %s\n", s.name, promFloat(s.g.Value()))
			case kindHistogram:
				h := s.h
				cum := int64(0)
				for i, b := range h.bounds {
					cum += h.buckets[i].Load()
					pr("%s %d\n", withLabel(base+"_bucket", labels, `le="`+promFloat(b)+`"`), cum)
				}
				cum += h.buckets[len(h.bounds)].Load()
				pr("%s %d\n", withLabel(base+"_bucket", labels, `le="+Inf"`), cum)
				pr("%s %s\n", suffixed(base, labels, "_sum"), promFloat(h.Sum()))
				pr("%s %d\n", suffixed(base, labels, "_count"), h.Count())
			}
		}
	})
	return err
}

// Bucket is one cumulative histogram bucket in a Snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf marshals as
	// the JSON string "+Inf".
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count int64 `json:"count"`
}

// MarshalJSON renders the +Inf bound as a string, since JSON has no
// infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := promFloat(b.UpperBound)
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// HistogramValue is a histogram's state in a Snapshot.
type HistogramValue struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every registered metric, keyed by
// full series name. Under concurrent writers each individual value is
// atomically read, but the snapshot as a whole is not a consistent cut.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	r.visit(func(fam *family) {
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				if snap.Counters == nil {
					snap.Counters = make(map[string]int64)
				}
				snap.Counters[s.name] = s.c.Value()
			case kindGauge:
				if snap.Gauges == nil {
					snap.Gauges = make(map[string]float64)
				}
				snap.Gauges[s.name] = s.g.Value()
			case kindHistogram:
				if snap.Histograms == nil {
					snap.Histograms = make(map[string]HistogramValue)
				}
				h := s.h
				hv := HistogramValue{Count: h.Count(), Sum: h.Sum()}
				cum := int64(0)
				for i, b := range h.bounds {
					cum += h.buckets[i].Load()
					hv.Buckets = append(hv.Buckets, Bucket{UpperBound: b, Count: cum})
				}
				cum += h.buckets[len(h.bounds)].Load()
				hv.Buckets = append(hv.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
				snap.Histograms[s.name] = hv
			}
		}
	})
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
