package tensor

import "math"

// This file holds the workspace ("WS") forms of the aggregation kernels: the
// caller owns every buffer, nothing is allocated in steady state, and the
// parallel paths follow the deterministic-chunking contract of parallelChunks
// — output is bit-identical for every worker count. Serial fast paths are
// written inline before any closure is constructed so that small shapes stay
// allocation-free (see the MatVec comment).

// CoordinateMedianWS stores the per-coordinate median of vs into dst and
// returns dst. cols is caller-owned scratch holding at least len(vs) values
// per participating worker (workers*len(vs) for full fan-out); the worker
// count is additionally clamped to len(cols)/len(vs). Each coordinate's
// median is computed independently via MedianInPlace on a scratch column, so
// the result is bit-identical to CoordinateMedian for every worker count.
func CoordinateMedianWS(dst Vector, vs []Vector, cols []float64, workers int) Vector {
	n := len(vs)
	if n == 0 {
		panic("tensor: CoordinateMedianWS of empty set")
	}
	assertSameLen(dst, vs[0])
	workers = coordColWorkers(len(dst), n, len(cols), workers)
	if workers <= 1 {
		col := cols[:n]
		for j := range dst {
			for k, v := range vs {
				col[k] = v[j]
			}
			dst[j] = MedianInPlace(col)
		}
		return dst
	}
	parallelChunks(len(dst), coordChunk, workers, func(w, lo, hi int) {
		col := cols[w*n : w*n+n]
		for j := lo; j < hi; j++ {
			for k, v := range vs {
				col[k] = v[j]
			}
			dst[j] = MedianInPlace(col)
		}
	})
	return dst
}

// CoordinateTrimmedMeanWS stores the per-coordinate trimmed mean of vs into
// dst and returns dst, trimming the trim extreme values at each end per
// coordinate. Scratch and determinism contract as for CoordinateMedianWS.
func CoordinateTrimmedMeanWS(dst Vector, vs []Vector, trim int, cols []float64, workers int) Vector {
	n := len(vs)
	if n == 0 {
		panic("tensor: CoordinateTrimmedMeanWS of empty set")
	}
	assertSameLen(dst, vs[0])
	workers = coordColWorkers(len(dst), n, len(cols), workers)
	if workers <= 1 {
		col := cols[:n]
		for j := range dst {
			for k, v := range vs {
				col[k] = v[j]
			}
			dst[j] = TrimmedMeanInPlace(col, trim)
		}
		return dst
	}
	parallelChunks(len(dst), coordChunk, workers, func(w, lo, hi int) {
		col := cols[w*n : w*n+n]
		for j := lo; j < hi; j++ {
			for k, v := range vs {
				col[k] = v[j]
			}
			dst[j] = TrimmedMeanInPlace(col, trim)
		}
	})
	return dst
}

// CoordinateNearMedianMeanWS stores, per coordinate, the mean of the beta
// values of vs closest to that coordinate's median into dst and returns dst
// — the second stage of Bulyan. The closest values are selected and summed
// in ascending order of |value − median| (ties by scan position), replacing
// the per-coordinate sort.Slice closure of the naive formulation. Scratch
// and determinism contract as for CoordinateMedianWS.
func CoordinateNearMedianMeanWS(dst Vector, vs []Vector, beta int, cols []float64, workers int) Vector {
	n := len(vs)
	if n == 0 {
		panic("tensor: CoordinateNearMedianMeanWS of empty set")
	}
	if beta < 1 || beta > n {
		panic("tensor: CoordinateNearMedianMeanWS beta out of range")
	}
	assertSameLen(dst, vs[0])
	workers = coordColWorkers(len(dst), n, len(cols), workers)
	if workers <= 1 {
		nearMedianMeanRange(dst, vs, beta, cols[:n], 0, len(dst))
		return dst
	}
	parallelChunks(len(dst), coordChunk, workers, func(w, lo, hi int) {
		nearMedianMeanRange(dst, vs, beta, cols[w*n:w*n+n], lo, hi)
	})
	return dst
}

func nearMedianMeanRange(dst Vector, vs []Vector, beta int, col []float64, lo, hi int) {
	n := len(vs)
	for j := lo; j < hi; j++ {
		for i, v := range vs {
			col[i] = v[j]
		}
		med := MedianInPlace(col)
		// Partial selection sort by distance to the median: after step t,
		// col[:t+1] holds the t+1 closest values in ascending-distance order.
		s := 0.0
		for t := 0; t < beta; t++ {
			best := t
			bd := math.Abs(col[t] - med)
			for x := t + 1; x < n; x++ {
				if d := math.Abs(col[x] - med); d < bd {
					best, bd = x, d
				}
			}
			col[t], col[best] = col[best], col[t]
			s += col[t]
		}
		dst[j] = s / float64(beta)
	}
}

// coordColWorkers combines the work-size clamp with the scratch-size clamp
// for the column-scratch coordinate kernels.
func coordColWorkers(d, n, colsLen, workers int) int {
	if colsLen < n {
		panic("tensor: coordinate kernel scratch smaller than one column")
	}
	workers = kernelWorkers(d, n, workers)
	if m := colsLen / n; workers > m {
		workers = m
	}
	return workers
}

// MeanWS stores the arithmetic mean of vs into dst and returns dst, fanning
// out across coordinate chunks. The per-coordinate sum runs over updates in
// index order, so the result is bit-identical to Mean for every worker
// count. dst must not alias any element of vs.
func MeanWS(dst Vector, vs []Vector, workers int) Vector {
	if len(vs) == 0 {
		panic("tensor: MeanWS of empty set")
	}
	assertSameLen(dst, vs[0])
	inv := 1 / float64(len(vs))
	workers = kernelWorkers(len(dst), len(vs), workers)
	if workers <= 1 {
		scaledSumRange(dst, vs, nil, inv, 0, len(dst))
		return dst
	}
	parallelChunks(len(dst), coordChunk, workers, func(_, lo, hi int) {
		scaledSumRange(dst, vs, nil, inv, lo, hi)
	})
	return dst
}

// ScaledMeanWS stores (1/len(vs)) * Σ_i scales[i]*vs[i] into dst and returns
// dst. It is the fused "clip then average" kernel: with scales[i] = 1 a term
// contributes vs[i] exactly (1*x == x in IEEE-754), so the result is
// bit-identical to cloning, scaling and averaging. dst must not alias any
// element of vs.
func ScaledMeanWS(dst Vector, vs []Vector, scales []float64, workers int) Vector {
	if len(vs) == 0 {
		panic("tensor: ScaledMeanWS of empty set")
	}
	if len(vs) != len(scales) {
		panic("tensor: ScaledMeanWS scale count mismatch")
	}
	assertSameLen(dst, vs[0])
	inv := 1 / float64(len(vs))
	workers = kernelWorkers(len(dst), len(vs), workers)
	if workers <= 1 {
		scaledSumRange(dst, vs, scales, inv, 0, len(dst))
		return dst
	}
	parallelChunks(len(dst), coordChunk, workers, func(_, lo, hi int) {
		scaledSumRange(dst, vs, scales, inv, lo, hi)
	})
	return dst
}

// scaledSumRange computes dst[j] = inv * Σ_i scales[i]*vs[i][j] for j in
// [lo, hi), with nil scales meaning all ones.
func scaledSumRange(dst Vector, vs []Vector, scales []float64, inv float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := 0.0
		if scales == nil {
			for _, v := range vs {
				s += v[j]
			}
		} else {
			for i, v := range vs {
				s += scales[i] * v[j]
			}
		}
		dst[j] = s * inv
	}
}

// CenteredStepWS applies one centered-clipping step in place:
//
//	v[j] += Σ_i (1/len(vs)) * (scales[i] * (vs[i][j] − v[j]))
//
// with the update sum in index order. It reproduces the exact operation
// sequence of the sub/clip/axpy formulation (scales[i] = 1 contributes the
// raw difference, as 1*x == x), so results match it bit for bit.
func CenteredStepWS(v Vector, vs []Vector, scales []float64, workers int) Vector {
	if len(vs) == 0 {
		panic("tensor: CenteredStepWS of empty set")
	}
	if len(vs) != len(scales) {
		panic("tensor: CenteredStepWS scale count mismatch")
	}
	assertSameLen(v, vs[0])
	invN := 1 / float64(len(vs))
	workers = kernelWorkers(len(v), len(vs), workers)
	if workers <= 1 {
		centeredStepRange(v, vs, scales, invN, 0, len(v))
		return v
	}
	parallelChunks(len(v), coordChunk, workers, func(_, lo, hi int) {
		centeredStepRange(v, vs, scales, invN, lo, hi)
	})
	return v
}

func centeredStepRange(v Vector, vs []Vector, scales []float64, invN float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		vj := v[j]
		step := 0.0
		for i, u := range vs {
			step += invN * (scales[i] * (u[j] - vj))
		}
		v[j] = vj + step
	}
}

// DistancesWS stores the Euclidean distance from `from` to each element of vs
// into dists and returns dists. Each distance is an independent serial
// reduction, so values are bit-identical for every worker count.
func DistancesWS(dists []float64, from Vector, vs []Vector, workers int) []float64 {
	n := len(vs)
	if len(dists) != n {
		panic("tensor: DistancesWS length mismatch")
	}
	workers = kernelWorkers(n, len(from), workers)
	if workers <= 1 {
		for i, v := range vs {
			dists[i] = Distance(from, v)
		}
		return dists
	}
	parallelChunks(n, 1, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dists[i] = Distance(from, vs[i])
		}
	})
	return dists
}

// NormsWS stores the Euclidean norm of each element of vs into norms and
// returns norms. Determinism contract as for DistancesWS.
func NormsWS(norms []float64, vs []Vector, workers int) []float64 {
	n := len(vs)
	if len(norms) != n {
		panic("tensor: NormsWS length mismatch")
	}
	dim := 0
	if n > 0 {
		dim = len(vs[0])
	}
	workers = kernelWorkers(n, dim, workers)
	if workers <= 1 {
		for i, v := range vs {
			norms[i] = Norm2(v)
		}
		return norms
	}
	parallelChunks(n, 1, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = Norm2(vs[i])
		}
	})
	return norms
}

// PairwiseDotsWS fills the flat row-major n×n Gram matrix dst[i*n+j] =
// vs[i]·vs[j] (diagonal included) and returns dst. Rows are computed
// independently — each cell is one serial Dot — so values are bit-identical
// for every worker count.
func PairwiseDotsWS(dst []float64, vs []Vector, workers int) []float64 {
	n := len(vs)
	if len(dst) != n*n {
		panic("tensor: PairwiseDotsWS length mismatch")
	}
	dim := 0
	if n > 0 {
		dim = len(vs[0])
	}
	workers = kernelWorkers(n*(n+1)/2, dim, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			pairwiseDotsRow(dst, vs, n, i)
		}
		return dst
	}
	parallelChunks(n, 1, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pairwiseDotsRow(dst, vs, n, i)
		}
	})
	return dst
}

func pairwiseDotsRow(dst []float64, vs []Vector, n, i int) {
	dst[i*n+i] = Dot(vs[i], vs[i])
	for j := i + 1; j < n; j++ {
		d := Dot(vs[i], vs[j])
		dst[i*n+j] = d
		dst[j*n+i] = d
	}
}

// PairwiseSquaredDistancesWS fills the flat row-major n×n matrix dst with
// squared Euclidean distances via the Gram identity
//
//	‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b
//
// using sqn (length n) as scratch for the squared norms, and returns dst.
// Computing each row costs one Dot per pair instead of a subtract-square
// pass, but cancellation means the values differ from SquaredDistance in the
// last bits and can dip below zero (clamped to 0 here): callers must use
// them only for discrete selection (nearest-neighbour sums, rankings), never
// arithmetic that feeds model parameters. Values are bit-identical for every
// worker count.
func PairwiseSquaredDistancesWS(dst, sqn []float64, vs []Vector, workers int) []float64 {
	n := len(vs)
	if len(dst) != n*n {
		panic("tensor: PairwiseSquaredDistancesWS length mismatch")
	}
	if len(sqn) != n {
		panic("tensor: PairwiseSquaredDistancesWS sqn length mismatch")
	}
	dim := 0
	if n > 0 {
		dim = len(vs[0])
	}
	for i, v := range vs {
		sqn[i] = Dot(v, v)
	}
	workers = kernelWorkers(n*(n+1)/2, dim, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			pairwiseSqDistRow(dst, sqn, vs, n, i)
		}
		return dst
	}
	parallelChunks(n, 1, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pairwiseSqDistRow(dst, sqn, vs, n, i)
		}
	})
	return dst
}

func pairwiseSqDistRow(dst, sqn []float64, vs []Vector, n, i int) {
	dst[i*n+i] = 0
	for j := i + 1; j < n; j++ {
		d := sqn[i] + sqn[j] - 2*Dot(vs[i], vs[j])
		if d < 0 {
			d = 0
		}
		dst[i*n+j] = d
		dst[j*n+i] = d
	}
}

// GeometricMedianWS computes the geometric median of vs by Weiszfeld's
// iteration into dst with caller-owned buffers: next has the length of dst
// and dists has len(vs). The distance pass fans out across updates, the
// weighted accumulation across coordinate chunks with the update loop
// innermost in index order — both reproduce GeometricMedian's serial
// operation sequence exactly, so results are bit-identical to it for every
// worker count.
func GeometricMedianWS(dst Vector, vs []Vector, tol float64, maxIter int, next Vector, dists []float64, workers int) Vector {
	n := len(vs)
	if n == 0 {
		panic("tensor: GeometricMedianWS of empty set")
	}
	assertSameLen(dst, vs[0])
	assertSameLen(next, dst)
	if len(dists) != n {
		panic("tensor: GeometricMedianWS dists length mismatch")
	}
	MeanWS(dst, vs, workers)
	w := kernelWorkers(len(dst), n, workers)
	for iter := 0; iter < maxIter; iter++ {
		DistancesWS(dists, dst, vs, workers)
		wsum := 0.0
		for i, d := range dists {
			if d < 1e-12 {
				// Iterate sits on a sample point; Weiszfeld's weight would
				// blow up. Nudging by epsilon keeps the iteration stable.
				d = 1e-12
			}
			dists[i] = 1 / d
			wsum += dists[i]
		}
		inv := 1 / wsum
		if w <= 1 {
			scaledSumRange(next, vs, dists, inv, 0, len(next))
		} else {
			parallelChunks(len(next), coordChunk, w, func(_, lo, hi int) {
				scaledSumRange(next, vs, dists, inv, lo, hi)
			})
		}
		moved := Distance(dst, next)
		copy(dst, next)
		if moved < tol {
			break
		}
	}
	return dst
}
