package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// coordChunk is the fixed number of coordinates a worker claims at a time in
// the coordinate-parallel kernels. The chunk size is independent of the
// worker count and every coordinate is computed from scratch-local state, so
// results are bit-identical for every worker count: which goroutine handles
// a chunk never changes what is written.
const coordChunk = 1024

// resolveWorkers maps the user-facing Workers knob (<=0 means "use every
// core") to a concrete goroutine count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// kernelWorkers clamps the requested worker count for a kernel doing
// items*perItem scalar operations: below parallelThreshold the goroutine
// fan-out costs more than it saves, so the kernel stays serial.
func kernelWorkers(items, perItem, workers int) int {
	if items*perItem < parallelThreshold {
		return 1
	}
	return resolveWorkers(workers)
}

// parallelChunks splits [0, n) into fixed-size chunks and fans fn out across
// workers goroutines; each invocation receives the claiming worker's index w
// (for per-worker scratch) and a half-open range [lo, hi). Chunks are claimed
// off an atomic counter, so a given range may run on any worker: callers must
// write only to chunk-local destinations and keep per-chunk results
// independent of w, which makes output bit-identical for every worker count.
//
// The fn closure escapes to the heap; callers on an allocation-free path must
// run their serial case inline before constructing the closure (see MatVec).
func parallelChunks(n, chunk, workers int, fn func(w, lo, hi int)) {
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
