package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores x at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// parallelThreshold is the number of scalar multiplications below which
// MatVec and friends stay single-threaded; goroutine fan-out only pays for
// itself on large shapes.
const parallelThreshold = 1 << 16

// parallelRows runs fn(i) for every row index in [0, rows), splitting the
// range across GOMAXPROCS goroutines when work is large enough.
func parallelRows(rows, workPerRow int, fn func(i int)) {
	if rows*workPerRow < parallelThreshold {
		for i := 0; i < rows; i++ {
			fn(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MatVec stores m*x into dst and returns dst. dst must not alias x.
//
// The small-shape path is written inline rather than through parallelRows: a
// closure handed to parallelRows escapes (it may be captured by goroutines)
// and would cost one heap allocation per call, which defeats the
// allocation-free workspace contract of internal/nn.
func MatVec(dst Vector, m *Matrix, x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic("tensor: MatVec dst length mismatch")
	}
	if m.Rows*m.Cols < parallelThreshold {
		for i := 0; i < m.Rows; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			s := 0.0
			for j, r := range row {
				s += r * x[j]
			}
			dst[i] = s
		}
		return dst
	}
	parallelRows(m.Rows, m.Cols, func(i int) {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, r := range row {
			s += r * x[j]
		}
		dst[i] = s
	})
	return dst
}

// MatTVec stores mᵀ*x into dst and returns dst (dst has length Cols).
func MatTVec(dst Vector, m *Matrix, x Vector) Vector {
	if len(x) != m.Rows {
		panic("tensor: MatTVec shape mismatch")
	}
	if len(dst) != m.Cols {
		panic("tensor: MatTVec dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, r := range row {
			dst[j] += r * xi
		}
	}
	return dst
}

// AddOuter accumulates the outer product s * x yᵀ into m: m[i][j] += s*x[i]*y[j].
// It is the gradient accumulation kernel for dense layers.
func AddOuter(m *Matrix, s float64, x, y Vector) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("tensor: AddOuter shape mismatch")
	}
	if m.Rows*m.Cols < parallelThreshold {
		for i := 0; i < m.Rows; i++ {
			sx := s * x[i]
			if sx == 0 {
				continue
			}
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, yj := range y {
				row[j] += sx * yj
			}
		}
		return
	}
	parallelRows(m.Rows, m.Cols, func(i int) {
		sx := s * x[i]
		if sx == 0 {
			return
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += sx * yj
		}
	})
}

// MatMul returns a*b as a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	parallelRows(a.Rows, a.Cols*b.Cols, func(i int) {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	return out
}
