// Package tensor implements the dense linear-algebra kernels used by the
// neural-network substrate and the robust-aggregation rules: float64 vectors
// and row-major matrices with the handful of BLAS-1/2 operations federated
// averaging and SGD need, plus pairwise-distance helpers for Krum-style
// aggregators. Matrix products can split work across goroutines for large
// shapes.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. Functions in this package treat vectors
// of differing lengths as a programming error and panic, mirroring the Go
// runtime's bounds checks: silently truncating parameter vectors would
// corrupt model aggregation.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

func assertSameLen(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a), len(b)))
	}
}

// Add stores a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b Vector) Vector {
	assertSameLen(a, b)
	assertSameLen(dst, a)
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b Vector) Vector {
	assertSameLen(a, b)
	assertSameLen(dst, a)
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst. dst may alias a.
func Scale(dst Vector, s float64, a Vector) Vector {
	assertSameLen(dst, a)
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// Axpy computes dst += s*a in place and returns dst.
func Axpy(dst Vector, s float64, a Vector) Vector {
	assertSameLen(dst, a)
	for i := range a {
		dst[i] += s * a[i]
	}
	return dst
}

// Lerp stores (1-t)*a + t*b into dst and returns dst. It is the linear
// local-global model combiner of ABD-HFL Eq. (1) with t as the correction
// factor applied to the global model.
func Lerp(dst, a, b Vector, t float64) Vector {
	assertSameLen(a, b)
	assertSameLen(dst, a)
	for i := range a {
		dst[i] = (1-t)*a[i] + t*b[i]
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	assertSameLen(a, b)
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// SquaredDistance returns ||a-b||^2 without allocating.
func SquaredDistance(a, b Vector) float64 {
	assertSameLen(a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance ||a-b||.
func Distance(a, b Vector) float64 { return math.Sqrt(SquaredDistance(a, b)) }

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either vector is zero.
func CosineSimilarity(a, b Vector) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Mean stores the arithmetic mean of vs into dst and returns dst. It panics
// if vs is empty.
func Mean(dst Vector, vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: Mean of empty set")
	}
	assertSameLen(dst, vs[0])
	for i := range dst {
		dst[i] = 0
	}
	for _, v := range vs {
		Axpy(dst, 1, v)
	}
	return Scale(dst, 1/float64(len(vs)), dst)
}

// WeightedMean stores sum(w_i*v_i)/sum(w_i) into dst and returns dst. It
// panics if vs is empty, lengths differ, or the weights sum to zero.
func WeightedMean(dst Vector, vs []Vector, ws []float64) Vector {
	if len(vs) == 0 {
		panic("tensor: WeightedMean of empty set")
	}
	if len(vs) != len(ws) {
		panic("tensor: WeightedMean weight count mismatch")
	}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total == 0 {
		panic("tensor: WeightedMean weights sum to zero")
	}
	assertSameLen(dst, vs[0])
	for i := range dst {
		dst[i] = 0
	}
	for k, v := range vs {
		Axpy(dst, ws[k], v)
	}
	return Scale(dst, 1/total, dst)
}

// ArgMax returns the index of the largest element of v (first on ties). It
// panics on an empty vector.
func ArgMax(v Vector) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clip limits the Euclidean norm of v in place to at most c and returns v.
// It is the clipping primitive of Centered Clipping aggregation.
func Clip(v Vector, c float64) Vector {
	n := Norm2(v)
	if n > c && n > 0 {
		Scale(v, c/n, v)
	}
	return v
}

// Fill sets every element of v to x and returns v.
func Fill(v Vector, x float64) Vector {
	for i := range v {
		v[i] = x
	}
	return v
}

// AllFinite reports whether every element of v is a finite number.
func AllFinite(v Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// PairwiseSquaredDistances returns the n×n symmetric matrix of squared
// Euclidean distances between the given vectors. It is the O(n^2 d) kernel
// underlying Krum and clustering aggregators; for large populations the rows
// are computed across goroutines.
func PairwiseSquaredDistances(vs []Vector) [][]float64 {
	n := len(vs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	dim := 0
	if n > 0 {
		dim = len(vs[0])
	}
	fill := func(i int) {
		for j := i + 1; j < n; j++ {
			dist := SquaredDistance(vs[i], vs[j])
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	// Work per row i is (n-1-i)*dim; parallelise only when the total pays
	// for the goroutine fan-out. Rows write disjoint cells, so no locking.
	if n*n*dim/2 < parallelPairwiseThreshold {
		for i := 0; i < n; i++ {
			fill(i)
		}
		return d
	}
	parallelRows(n, n*dim/2, fill)
	return d
}

// parallelPairwiseThreshold is the scalar-op count above which the pairwise
// kernel fans out across goroutines.
const parallelPairwiseThreshold = 1 << 20
