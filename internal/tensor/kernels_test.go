package tensor

import (
	"math"
	"testing"

	"abdhfl/internal/rng"
)

func bitsEq(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// kernelPopulation builds update sets large enough to cross the parallel
// threshold (d*n >= parallelThreshold) so the fan-out paths actually run.
func kernelPopulation(seed uint64, n, d int) []Vector {
	r := rng.New(seed)
	vs := make([]Vector, n)
	for i := range vs {
		vs[i] = randVec(r, d)
	}
	return vs
}

// TestCoordinateKernelsBitIdenticalToSerial pins the tentpole contract: the
// WS kernels must produce bit-identical output for every worker count, and
// match the legacy sort-based serial implementations exactly.
func TestCoordinateKernelsBitIdenticalToSerial(t *testing.T) {
	const n, d = 12, 8000 // n*d > parallelThreshold: parallel path engaged
	vs := kernelPopulation(3, n, d)
	workerCounts := []int{1, 2, 3, 8}

	legacyMed := CoordinateMedian(NewVector(d), vs)
	legacyTrim := CoordinateTrimmedMean(NewVector(d), vs, 2)
	legacyGeo := GeometricMedian(NewVector(d), vs, 1e-8, 50)
	legacyMean := Mean(NewVector(d), vs)

	for _, w := range workerCounts {
		cols := make([]float64, resolveWorkers(w)*n)
		if got := CoordinateMedianWS(NewVector(d), vs, cols, w); !bitsEq(got, legacyMed) {
			t.Errorf("CoordinateMedianWS workers=%d differs from CoordinateMedian", w)
		}
		if got := CoordinateTrimmedMeanWS(NewVector(d), vs, 2, cols, w); !bitsEq(got, legacyTrim) {
			t.Errorf("CoordinateTrimmedMeanWS workers=%d differs from CoordinateTrimmedMean", w)
		}
		next, dists := NewVector(d), make([]float64, n)
		if got := GeometricMedianWS(NewVector(d), vs, 1e-8, 50, next, dists, w); !bitsEq(got, legacyGeo) {
			t.Errorf("GeometricMedianWS workers=%d differs from GeometricMedian", w)
		}
		if got := MeanWS(NewVector(d), vs, w); !bitsEq(got, legacyMean) {
			t.Errorf("MeanWS workers=%d differs from Mean", w)
		}
	}
}

func TestScaledMeanWSMatchesClipAverage(t *testing.T) {
	const n, d = 10, 8000
	vs := kernelPopulation(5, n, d)
	scales := make([]float64, n)
	for i := range scales {
		if i%2 == 0 {
			scales[i] = 0.5 / float64(i+1)
		} else {
			scales[i] = 1 // must contribute vs[i] exactly
		}
	}
	// Legacy formulation: clone, scale, average.
	clipped := make([]Vector, n)
	for i, v := range vs {
		c := v.Clone()
		if scales[i] != 1 {
			Scale(c, scales[i], c)
		}
		clipped[i] = c
	}
	want := Mean(NewVector(d), clipped)
	for _, w := range []int{1, 2, 8} {
		if got := ScaledMeanWS(NewVector(d), vs, scales, w); !bitsEq(got, want) {
			t.Errorf("ScaledMeanWS workers=%d differs from clone/scale/mean", w)
		}
	}
}

func TestCenteredStepWSMatchesSubClipAxpy(t *testing.T) {
	const n, d = 9, 8000
	vs := kernelPopulation(9, n, d)
	start := randVec(rng.New(21), d)
	scales := make([]float64, n)
	for i := range scales {
		if i%3 == 0 {
			scales[i] = 0.25
		} else {
			scales[i] = 1
		}
	}
	// Legacy formulation: step = sum of (1/n)*scale*(u-v), then v += step.
	want := start.Clone()
	step := NewVector(d)
	diff := NewVector(d)
	for i, u := range vs {
		Sub(diff, u, want)
		if scales[i] != 1 {
			Scale(diff, scales[i], diff)
		}
		Axpy(step, 1/float64(n), diff)
	}
	Add(want, want, step)
	for _, w := range []int{1, 2, 8} {
		got := start.Clone()
		CenteredStepWS(got, vs, scales, w)
		if !bitsEq(got, want) {
			t.Errorf("CenteredStepWS workers=%d differs from sub/clip/axpy", w)
		}
	}
}

func TestDistancesAndNormsWS(t *testing.T) {
	const n, d = 16, 6000
	vs := kernelPopulation(31, n, d)
	from := randVec(rng.New(32), d)
	wantD := make([]float64, n)
	wantN := make([]float64, n)
	for i, v := range vs {
		wantD[i] = Distance(from, v)
		wantN[i] = Norm2(v)
	}
	for _, w := range []int{1, 3, 8} {
		gotD := DistancesWS(make([]float64, n), from, vs, w)
		gotN := NormsWS(make([]float64, n), vs, w)
		for i := range vs {
			if math.Float64bits(gotD[i]) != math.Float64bits(wantD[i]) {
				t.Errorf("DistancesWS workers=%d at %d: %v != %v", w, i, gotD[i], wantD[i])
			}
			if math.Float64bits(gotN[i]) != math.Float64bits(wantN[i]) {
				t.Errorf("NormsWS workers=%d at %d: %v != %v", w, i, gotN[i], wantN[i])
			}
		}
	}
}

func TestPairwiseSquaredDistancesWS(t *testing.T) {
	const n, d = 14, 6000
	vs := kernelPopulation(41, n, d)
	direct := PairwiseSquaredDistances(vs)
	var ref []float64
	for _, w := range []int{1, 2, 8} {
		flat := PairwiseSquaredDistancesWS(make([]float64, n*n), make([]float64, n), vs, w)
		if ref == nil {
			ref = flat
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g, want := flat[i*n+j], direct[i][j]
				// Gram-trick values agree with the direct form only up to
				// cancellation error; the contract is closeness + symmetry +
				// worker-count bit-identity, not bit-equality with the
				// subtract-square form.
				tol := 1e-9 * (1 + want)
				if math.Abs(g-want) > tol {
					t.Errorf("workers=%d (%d,%d): %v vs direct %v", w, i, j, g, want)
				}
				if g < 0 {
					t.Errorf("workers=%d (%d,%d): negative squared distance %v", w, i, j, g)
				}
				if math.Float64bits(g) != math.Float64bits(flat[j*n+i]) {
					t.Errorf("workers=%d (%d,%d): asymmetric", w, i, j)
				}
				if math.Float64bits(g) != math.Float64bits(ref[i*n+j]) {
					t.Errorf("workers=%d (%d,%d): differs across worker counts", w, i, j)
				}
			}
		}
	}
}

func TestPairwiseDotsWS(t *testing.T) {
	const n, d = 12, 6000
	vs := kernelPopulation(43, n, d)
	for _, w := range []int{1, 2, 8} {
		flat := PairwiseDotsWS(make([]float64, n*n), vs, w)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := Dot(vs[i], vs[j])
				if math.Float64bits(flat[i*n+j]) != math.Float64bits(want) {
					t.Errorf("workers=%d (%d,%d): %v != Dot %v", w, i, j, flat[i*n+j], want)
				}
			}
		}
	}
}

// TestSelectKernelAllocFree asserts the serial paths of the WS kernels stay
// allocation-free once scratch is provided (small shapes stay below the
// parallel threshold, mirroring internal/nn/alloc_test.go).
func TestSelectKernelAllocFree(t *testing.T) {
	const n, d = 8, 64
	vs := kernelPopulation(51, n, d)
	dst := NewVector(d)
	cols := make([]float64, n)
	next, dists := NewVector(d), make([]float64, n)
	sq := make([]float64, n*n)
	sqn := make([]float64, n)
	allocs := testing.AllocsPerRun(10, func() {
		CoordinateMedianWS(dst, vs, cols, 1)
		CoordinateTrimmedMeanWS(dst, vs, 2, cols, 1)
		GeometricMedianWS(dst, vs, 1e-6, 10, next, dists, 1)
		MeanWS(dst, vs, 1)
		PairwiseSquaredDistancesWS(sq, sqn, vs, 1)
		PairwiseDotsWS(sq, vs, 1)
		DistancesWS(dists, next, vs, 1)
		NormsWS(dists, vs, 1)
	})
	if allocs != 0 {
		t.Fatalf("serial WS kernels allocated %v times per run", allocs)
	}
}
