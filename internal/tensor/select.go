package tensor

import "slices"

// selectInsertionThreshold is the segment length at or below which SelectKth
// finishes with an insertion sort instead of partitioning further.
const selectInsertionThreshold = 12

// SelectKth partially sorts xs in place so that xs[k] holds its k-th order
// statistic (0-based): afterwards every element of xs[:k] is <= xs[k] and
// every element of xs[k+1:] is >= xs[k]. It runs in expected O(n) via
// quickselect with a median-of-three pivot and is fully deterministic for a
// given input. xs must not contain NaNs. It panics if k is out of range.
func SelectKth(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		panic("tensor: SelectKth index out of range")
	}
	lo, hi := 0, len(xs)-1
	for hi-lo >= selectInsertionThreshold {
		medianOfThreeToLo(xs, lo, hi)
		// Hoare partition around the pivot value now at xs[lo]: on exit every
		// element of xs[lo:j+1] is <= every element of xs[j+1:hi+1], with
		// lo <= j < hi, so the search range always shrinks.
		p := xs[lo]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= p {
					break
				}
			}
			for {
				j--
				if xs[j] <= p {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	insertionSort(xs[lo : hi+1])
	return xs[k]
}

// medianOfThreeToLo moves the median of xs[lo], xs[mid], xs[hi] into xs[lo].
func medianOfThreeToLo(xs []float64, lo, hi int) {
	mid := lo + (hi-lo)/2
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	xs[lo], xs[mid] = xs[mid], xs[lo]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// MedianInPlace returns the median of xs, permuting xs in the process. The
// returned value is bit-identical to Median: the middle order statistic for
// odd counts, the mean of the two middle order statistics for even counts.
// It panics on an empty slice.
func MedianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("tensor: MedianInPlace of empty slice")
	}
	hi := SelectKth(xs, n/2)
	if n%2 == 1 {
		return hi
	}
	// SelectKth left the n/2 smallest values in xs[:n/2]; the lower middle is
	// their maximum.
	lo := xs[0]
	for _, x := range xs[1 : n/2] {
		if x > lo {
			lo = x
		}
	}
	return (lo + hi) / 2
}

// TrimmedMeanInPlace returns the mean of xs after discarding the trim
// smallest and trim largest values, permuting xs in the process. The middle
// values are summed in ascending order, so the result is bit-identical to
// TrimmedMean. It panics if 2*trim >= len(xs).
func TrimmedMeanInPlace(xs []float64, trim int) float64 {
	n := len(xs)
	if trim < 0 || 2*trim >= n {
		panic("tensor: TrimmedMeanInPlace trim out of range")
	}
	if trim > 0 {
		// Split off the trim smallest, then the trim largest of the rest.
		SelectKth(xs, trim-1)
		SelectKth(xs[trim:], n-2*trim-1)
	}
	mid := xs[trim : n-trim]
	slices.Sort(mid)
	s := 0.0
	for _, x := range mid {
		s += x
	}
	return s / float64(n-2*trim)
}
