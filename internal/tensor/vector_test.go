package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func randVec(r *rng.RNG, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestAddSubScale(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	dst := NewVector(3)
	Add(dst, a, b)
	if !vecAlmostEq(dst, Vector{5, 7, 9}, 0) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if !vecAlmostEq(dst, Vector{3, 3, 3}, 0) {
		t.Fatalf("Sub = %v", dst)
	}
	Scale(dst, 2, a)
	if !vecAlmostEq(dst, Vector{2, 4, 6}, 0) {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestAddAliasing(t *testing.T) {
	a := Vector{1, 2}
	Add(a, a, a)
	if !vecAlmostEq(a, Vector{2, 4}, 0) {
		t.Fatalf("aliased Add = %v", a)
	}
}

func TestAxpy(t *testing.T) {
	dst := Vector{1, 1, 1}
	Axpy(dst, 3, Vector{1, 2, 3})
	if !vecAlmostEq(dst, Vector{4, 7, 10}, 0) {
		t.Fatalf("Axpy = %v", dst)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{3, 8}
	dst := NewVector(2)
	if Lerp(dst, a, b, 0); !vecAlmostEq(dst, a, 1e-15) {
		t.Fatalf("Lerp t=0 = %v", dst)
	}
	if Lerp(dst, a, b, 1); !vecAlmostEq(dst, b, 1e-15) {
		t.Fatalf("Lerp t=1 = %v", dst)
	}
	if Lerp(dst, a, b, 0.5); !vecAlmostEq(dst, Vector{2, 5}, 1e-15) {
		t.Fatalf("Lerp t=0.5 = %v", dst)
	}
}

func TestDotNorm(t *testing.T) {
	a := Vector{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
}

func TestDistance(t *testing.T) {
	if d := Distance(Vector{0, 0}, Vector{3, 4}); d != 5 {
		t.Fatalf("Distance = %v", d)
	}
	if d := SquaredDistance(Vector{1, 1}, Vector{1, 1}); d != 0 {
		t.Fatalf("SquaredDistance = %v", d)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity(Vector{1, 0}, Vector{1, 0}); !almostEq(c, 1, 1e-12) {
		t.Fatalf("parallel cos = %v", c)
	}
	if c := CosineSimilarity(Vector{1, 0}, Vector{0, 1}); !almostEq(c, 0, 1e-12) {
		t.Fatalf("orthogonal cos = %v", c)
	}
	if c := CosineSimilarity(Vector{1, 0}, Vector{-1, 0}); !almostEq(c, -1, 1e-12) {
		t.Fatalf("antiparallel cos = %v", c)
	}
	if c := CosineSimilarity(Vector{0, 0}, Vector{1, 0}); c != 0 {
		t.Fatalf("zero-vector cos = %v", c)
	}
}

func TestMean(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}, {5, 6}}
	dst := NewVector(2)
	Mean(dst, vs)
	if !vecAlmostEq(dst, Vector{3, 4}, 1e-12) {
		t.Fatalf("Mean = %v", dst)
	}
}

func TestWeightedMean(t *testing.T) {
	vs := []Vector{{0, 0}, {10, 10}}
	dst := NewVector(2)
	WeightedMean(dst, vs, []float64{1, 3})
	if !vecAlmostEq(dst, Vector{7.5, 7.5}, 1e-12) {
		t.Fatalf("WeightedMean = %v", dst)
	}
}

func TestWeightedMeanEqualWeightsMatchesMean(t *testing.T) {
	r := rng.New(1)
	check := func(seed uint64) bool {
		rr := rng.New(seed ^ r.Uint64())
		vs := []Vector{randVec(rr, 5), randVec(rr, 5), randVec(rr, 5)}
		m := Mean(NewVector(5), vs)
		w := WeightedMean(NewVector(5), vs, []float64{2, 2, 2})
		return vecAlmostEq(m, w, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax(Vector{1, 5, 3}); i != 1 {
		t.Fatalf("ArgMax = %d", i)
	}
	if i := ArgMax(Vector{7, 7, 7}); i != 0 {
		t.Fatalf("ArgMax ties = %d", i)
	}
}

func TestClip(t *testing.T) {
	v := Vector{3, 4}
	Clip(v, 2.5)
	if !almostEq(Norm2(v), 2.5, 1e-12) {
		t.Fatalf("clipped norm = %v", Norm2(v))
	}
	u := Vector{0.3, 0.4}
	before := u.Clone()
	Clip(u, 2.5)
	if !vecAlmostEq(u, before, 0) {
		t.Fatal("Clip modified a vector under the threshold")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite(Vector{1, 2, 3}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite(Vector{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite(Vector{1, math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestPairwiseSquaredDistances(t *testing.T) {
	vs := []Vector{{0, 0}, {3, 4}, {0, 1}}
	d := PairwiseSquaredDistances(vs)
	if d[0][1] != 25 || d[1][0] != 25 {
		t.Fatalf("d01 = %v", d[0][1])
	}
	if d[0][2] != 1 {
		t.Fatalf("d02 = %v", d[0][2])
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Add(NewVector(2), Vector{1, 2}, Vector{1, 2, 3})
}

func TestTriangleInequalityProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		a, b, c := randVec(r, 8), randVec(r, 8), randVec(r, 8)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2, 3}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func BenchmarkDot1024(b *testing.B) {
	r := rng.New(1)
	x := randVec(r, 1024)
	y := randVec(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkPairwise32x1024(b *testing.B) {
	r := rng.New(1)
	vs := make([]Vector, 32)
	for i := range vs {
		vs[i] = randVec(r, 1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PairwiseSquaredDistances(vs)
	}
}

func TestPairwiseParallelMatchesSerial(t *testing.T) {
	// A population large enough to cross the parallel threshold must produce
	// exactly the same matrix as the small/serial path computes.
	r := rng.New(31)
	const n, dim = 64, 1024 // 64*64*1024/2 = 2M ops > threshold
	vs := make([]Vector, n)
	for i := range vs {
		vs[i] = randVec(r, dim)
	}
	got := PairwiseSquaredDistances(vs)
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			want := SquaredDistance(vs[i], vs[j])
			if got[i][j] != want {
				t.Fatalf("d[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
			if got[i][j] != got[j][i] {
				t.Fatal("matrix not symmetric")
			}
		}
	}
}
