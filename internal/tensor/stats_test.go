package tensor

import (
	"sort"
	"testing"
	"testing/quick"

	"abdhfl/internal/rng"
)

func TestMedianOdd(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median = %v", m)
	}
}

func TestMedianEven(t *testing.T) {
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("Median = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestMedianBetweenMinMaxProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(20) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		m := Median(xs)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return m >= s[0] && m <= s[n-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedMean(t *testing.T) {
	// Extremes 0 and 100 are trimmed; mean of {2,3,4} = 3.
	if m := TrimmedMean([]float64{100, 2, 3, 4, 0}, 1); m != 3 {
		t.Fatalf("TrimmedMean = %v", m)
	}
}

func TestTrimmedMeanZeroTrimIsMean(t *testing.T) {
	if m := TrimmedMean([]float64{1, 2, 3}, 0); m != 2 {
		t.Fatalf("TrimmedMean trim=0 = %v", m)
	}
}

func TestTrimmedMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrimmedMean([]float64{1, 2}, 1)
}

func TestMeanStddev(t *testing.T) {
	mean, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if !almostEq(sd, 2, 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestMeanStddevEdge(t *testing.T) {
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStddev not zero")
	}
	if m, s := MeanStddev([]float64{7}); m != 7 || s != 0 {
		t.Fatal("single-sample MeanStddev wrong")
	}
}

func TestCoordinateMedianResistsOutlier(t *testing.T) {
	vs := []Vector{{1, 1}, {2, 2}, {1000, -1000}}
	dst := CoordinateMedian(NewVector(2), vs)
	if !vecAlmostEq(dst, Vector{2, 1}, 1e-12) {
		t.Fatalf("CoordinateMedian = %v", dst)
	}
}

func TestCoordinateTrimmedMean(t *testing.T) {
	vs := []Vector{{0}, {1}, {2}, {3}, {1000}}
	dst := CoordinateTrimmedMean(NewVector(1), vs, 1)
	if !vecAlmostEq(dst, Vector{2}, 1e-12) {
		t.Fatalf("CoordinateTrimmedMean = %v", dst)
	}
}

func TestGeometricMedianSinglePoint(t *testing.T) {
	vs := []Vector{{5, 5}}
	dst := GeometricMedian(NewVector(2), vs, 1e-9, 100)
	if !vecAlmostEq(dst, Vector{5, 5}, 1e-6) {
		t.Fatalf("GeometricMedian = %v", dst)
	}
}

func TestGeometricMedianSymmetric(t *testing.T) {
	// For a symmetric configuration the geometric median is the centroid.
	vs := []Vector{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	dst := GeometricMedian(NewVector(2), vs, 1e-10, 500)
	if !vecAlmostEq(dst, Vector{0, 0}, 1e-6) {
		t.Fatalf("GeometricMedian = %v", dst)
	}
}

func TestGeometricMedianOutlierResistance(t *testing.T) {
	// 4 points near origin, 1 far outlier: the geometric median must stay
	// near the cluster while the mean is dragged away.
	vs := []Vector{{0, 0}, {0.1, 0}, {0, 0.1}, {-0.1, 0}, {1000, 1000}}
	gm := GeometricMedian(NewVector(2), vs, 1e-9, 500)
	mean := Mean(NewVector(2), vs)
	if Norm2(gm) > 1 {
		t.Fatalf("geometric median dragged by outlier: %v", gm)
	}
	if Norm2(mean) < 100 {
		t.Fatalf("sanity: mean should be dragged, got %v", mean)
	}
}

func TestGeometricMedianMinimizesSumDistancesProperty(t *testing.T) {
	// The geometric median must achieve a lower (or equal) sum of distances
	// than the coordinate mean and any input point.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 3
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = randVec(r, 4)
		}
		gm := GeometricMedian(NewVector(4), vs, 1e-10, 1000)
		sum := func(p Vector) float64 {
			s := 0.0
			for _, v := range vs {
				s += Distance(p, v)
			}
			return s
		}
		sgm := sum(gm)
		if sgm > sum(Mean(NewVector(4), vs))+1e-6 {
			return false
		}
		for _, v := range vs {
			if sgm > sum(v)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCoordinateMedian16x4096(b *testing.B) {
	r := rng.New(1)
	vs := make([]Vector, 16)
	for i := range vs {
		vs[i] = randVec(r, 4096)
	}
	dst := NewVector(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoordinateMedian(dst, vs)
	}
}

func BenchmarkGeometricMedian16x1024(b *testing.B) {
	r := rng.New(1)
	vs := make([]Vector, 16)
	for i := range vs {
		vs[i] = randVec(r, 1024)
	}
	dst := NewVector(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GeometricMedian(dst, vs, 1e-6, 50)
	}
}
