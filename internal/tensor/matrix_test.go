package tensor

import (
	"testing"

	"abdhfl/internal/rng"
)

func TestMatVecSmall(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(2)
	MatVec(dst, m, Vector{1, 1, 1})
	if !vecAlmostEq(dst, Vector{6, 15}, 1e-12) {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestMatTVecSmall(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(3)
	MatTVec(dst, m, Vector{1, 2})
	if !vecAlmostEq(dst, Vector{9, 12, 15}, 1e-12) {
		t.Fatalf("MatTVec = %v", dst)
	}
}

func TestMatVecLargeMatchesSerial(t *testing.T) {
	// Exercise the goroutine-parallel path and compare against a serial
	// reference computation.
	r := rng.New(4)
	const rows, cols = 300, 400
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	x := randVec(r, cols)
	got := MatVec(NewVector(rows), m, x)
	want := NewVector(rows)
	for i := 0; i < rows; i++ {
		s := 0.0
		for j := 0; j < cols; j++ {
			s += m.At(i, j) * x[j]
		}
		want[i] = s
	}
	if !vecAlmostEq(got, want, 1e-9) {
		t.Fatal("parallel MatVec differs from serial reference")
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	AddOuter(m, 2, Vector{1, 3}, Vector{5, 7})
	want := []float64{10, 14, 30, 42}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter data = %v, want %v", m.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(9)
	a := NewMatrix(5, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	p := MatMul(a, id)
	if !vecAlmostEq(Vector(p.Data), Vector(a.Data), 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	p := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if p.Data[i] != w {
			t.Fatalf("MatMul = %v", p.Data)
		}
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row does not alias matrix storage")
	}
}

func TestMatrixCloneAndZero(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 7)
	c := m.Clone()
	m.Zero()
	if c.At(0, 0) != 7 {
		t.Fatal("Clone affected by Zero on original")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMatVecShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatVec(NewVector(2), NewMatrix(2, 3), Vector{1, 2})
}

func BenchmarkMatVec256x256(b *testing.B) {
	r := rng.New(1)
	m := NewMatrix(256, 256)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	x := randVec(r, 256)
	dst := NewVector(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, m, x)
	}
}
