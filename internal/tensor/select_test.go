package tensor

import (
	"math"
	"sort"
	"testing"

	"abdhfl/internal/rng"
)

func TestSelectKthMatchesSort(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 2, 3, 5, 12, 13, 50, 257, 1000} {
		for trial := 0; trial < 20; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				switch trial % 3 {
				case 0:
					xs[i] = r.NormFloat64()
				case 1:
					xs[i] = float64(r.Intn(5)) // heavy duplicates
				default:
					xs[i] = float64(i) // already sorted
				}
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			k := r.Intn(n)
			work := append([]float64(nil), xs...)
			got := SelectKth(work, k)
			if got != sorted[k] {
				t.Fatalf("n=%d k=%d: SelectKth=%v want %v", n, k, got, sorted[k])
			}
			// Partition property: left <= xs[k] <= right.
			for i := 0; i < k; i++ {
				if work[i] > work[k] {
					t.Fatalf("n=%d k=%d: work[%d]=%v > work[k]=%v", n, k, i, work[i], work[k])
				}
			}
			for i := k + 1; i < n; i++ {
				if work[i] < work[k] {
					t.Fatalf("n=%d k=%d: work[%d]=%v < work[k]=%v", n, k, i, work[i], work[k])
				}
			}
			// Same multiset after permutation.
			sort.Float64s(work)
			for i := range work {
				if work[i] != sorted[i] {
					t.Fatalf("n=%d: multiset changed at %d", n, i)
				}
			}
		}
	}
}

func TestSelectKthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectKth([]float64{1, 2}, 2)
}

// TestMedianInPlaceBitIdentical pins the tentpole determinism contract: the
// selection-based median must be bit-identical to the sort-based Median for
// odd and even counts, including duplicate-heavy inputs.
func TestMedianInPlaceBitIdentical(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 99, 100, 513} {
		for trial := 0; trial < 30; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				if trial%2 == 0 {
					xs[i] = r.NormFloat64() * 1e3
				} else {
					xs[i] = float64(r.Intn(4)) - 1.5
				}
			}
			want := Median(xs)
			got := MedianInPlace(append([]float64(nil), xs...))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: MedianInPlace=%v Median=%v", n, got, want)
			}
		}
	}
}

// TestTrimmedMeanInPlaceBitIdentical pins the ascending-sum contract of the
// selection-based trimmed mean against the sort-based reference.
func TestTrimmedMeanInPlaceBitIdentical(t *testing.T) {
	r := rng.New(13)
	for _, n := range []int{1, 3, 4, 5, 10, 16, 101} {
		for trim := 0; 2*trim < n; trim++ {
			for trial := 0; trial < 10; trial++ {
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = r.NormFloat64()
				}
				want := TrimmedMean(xs, trim)
				got := TrimmedMeanInPlace(append([]float64(nil), xs...), trim)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d trim=%d: TrimmedMeanInPlace=%v TrimmedMean=%v", n, trim, got, want)
				}
			}
		}
	}
}
