package tensor

import (
	"math"
	"sort"
)

// Median returns the coordinate median of a copy of xs (the input is not
// modified). For an even count it returns the mean of the two middle values.
// It panics on an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("tensor: Median of empty slice")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// TrimmedMean returns the mean of xs after removing the trim smallest and
// trim largest values. It panics if 2*trim >= len(xs).
func TrimmedMean(xs []float64, trim int) float64 {
	n := len(xs)
	if trim < 0 || 2*trim >= n {
		panic("tensor: TrimmedMean trim out of range")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	s := 0.0
	for _, x := range c[trim : n-trim] {
		s += x
	}
	return s / float64(n-2*trim)
}

// MeanStddev returns the sample mean and (population) standard deviation of
// xs. The stddev of fewer than two samples is 0.
func MeanStddev(xs []float64) (mean, stddev float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return mean, math.Sqrt(varsum / n)
}

// CoordinateMedian stores the per-coordinate median of vs into dst and
// returns dst. It is the Median aggregation rule of Yin et al.
func CoordinateMedian(dst Vector, vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: CoordinateMedian of empty set")
	}
	assertSameLen(dst, vs[0])
	col := make([]float64, len(vs))
	for j := range dst {
		for k, v := range vs {
			col[k] = v[j]
		}
		dst[j] = Median(col)
	}
	return dst
}

// CoordinateTrimmedMean stores the per-coordinate trimmed mean of vs into
// dst, trimming the trim extreme values at each end per coordinate.
func CoordinateTrimmedMean(dst Vector, vs []Vector, trim int) Vector {
	if len(vs) == 0 {
		panic("tensor: CoordinateTrimmedMean of empty set")
	}
	assertSameLen(dst, vs[0])
	col := make([]float64, len(vs))
	for j := range dst {
		for k, v := range vs {
			col[k] = v[j]
		}
		dst[j] = TrimmedMean(col, trim)
	}
	return dst
}

// GeometricMedian computes the geometric median of vs by Weiszfeld's
// iteration, stopping when the iterate moves less than tol or after maxIter
// iterations. The result is stored in dst.
func GeometricMedian(dst Vector, vs []Vector, tol float64, maxIter int) Vector {
	if len(vs) == 0 {
		panic("tensor: GeometricMedian of empty set")
	}
	assertSameLen(dst, vs[0])
	// Start from the coordinate mean.
	Mean(dst, vs)
	next := NewVector(len(dst))
	for iter := 0; iter < maxIter; iter++ {
		Fill(next, 0)
		wsum := 0.0
		for _, v := range vs {
			d := Distance(dst, v)
			if d < 1e-12 {
				// Iterate sits on a sample point; Weiszfeld's weight would
				// blow up. The sample itself is a valid geometric median
				// candidate when it dominates; nudging by epsilon keeps the
				// iteration stable.
				d = 1e-12
			}
			w := 1 / d
			Axpy(next, w, v)
			wsum += w
		}
		Scale(next, 1/wsum, next)
		moved := Distance(dst, next)
		copy(dst, next)
		if moved < tol {
			break
		}
	}
	return dst
}
