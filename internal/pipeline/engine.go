package pipeline

import (
	"fmt"
	"math"
	"sort"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/fault"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// Message payloads exchanged between actors.
type (
	msgLocal struct { // device -> bottom cluster leader
		round  int
		params tensor.Vector
		dev    int
	}
	msgPartial struct { // cluster leader -> parent leader / top
		round  int
		params tensor.Vector
		child  int // sender's cluster index at its level
	}
	msgFlag struct { // flag-level cluster -> descendants
		round   int // the round this flag model STARTS (paper's r+1)
		params  tensor.Vector
		relSize float64
	}
	msgGlobal struct { // top -> everyone
		round    int
		params   tensor.Vector
		formedAt simnet.Time
	}
)

// TraceRound implements trace.RoundCarrier so simulator traces stamp message
// events with their protocol round.
func (m msgLocal) TraceRound() int   { return m.round }
func (m msgPartial) TraceRound() int { return m.round }
func (m msgFlag) TraceRound() int    { return m.round }
func (m msgGlobal) TraceRound() int  { return m.round }

// engine wires the actors together and accumulates statistics.
type engine struct {
	cfg   Config
	tree  *topology.Tree
	sim   *simnet.Sim
	root  *rng.RNG
	sizes []int

	deviceLeader []simnet.NodeID // device id -> bottom cluster actor id
	clusterNode  [][]simnet.NodeID

	// Per-bottom-cluster timing observations, keyed by round.
	firstArrival  []map[int]simnet.Time
	flagArrival   []map[int]simnet.Time
	globalArrival []map[int]simnet.Time
	// Top observations.
	firstPartial map[int]simnet.Time
	globalReady  map[int]simnet.Time

	result    *Result
	evalModel *nn.Model
	evalPool  *nn.EvalPool
	workers   int
	// aggScratch is shared by every cluster- and top-level aggregation: the
	// simulation is single-threaded (discrete events run one at a time), so
	// one warm scratch serves all actors without contention. Destination
	// vectors stay fresh per aggregation because message envelopes retain
	// them.
	aggScratch *aggregate.Scratch
	// ins/fe are the run's telemetry handles and filter-audit emitter; both
	// are nil (and every call a no-op) when Config.Telemetry and OnFilter are
	// unset. The single-threaded event loop lets one emitter serve all actors.
	ins      *instruments
	fe       *filterEmitter
	quorumOf func(size int) int
	alpha    AlphaPolicy
	done     bool
	// plan is the run's fault plan (nil-safe: every query on a nil plan
	// reports "no fault"). faulty gates the extra liveness machinery —
	// flag-armed deadlines — that only faulted runs need.
	plan    *fault.Plan
	faulty  bool
	backoff float64
	retries int
	// cs is the engine's codec scratch (single-threaded event loop, so one
	// serves every actor); lastRef is the last formed — and decoded — global
	// model, the Delta reference every non-device hop uses. codecErr latches
	// the first transcode failure; the run is failed with it after the drain
	// (actor callbacks have no error return path).
	cs       *codec.Scratch
	lastRef  tensor.Vector
	codecErr error
	// tr is the optional causal span tracer (nil disables emission
	// entirely — every trace* helper returns immediately). deviceCluster
	// maps device id -> bottom cluster index and roundStart records each
	// round's earliest device training start, both only for span attrs.
	tr            *trace.Tracer
	deviceCluster []int
	roundStart    map[int]simnet.Time
}

// Hop indices of the per-hop wire-byte counters.
const (
	hopUplink = iota // device -> bottom cluster leader
	hopPartial       // cluster leader -> parent / top
	hopFlag          // flag-model dissemination downwards
	hopGlobal        // global-model dissemination downwards
	numHops
)

var hopNames = [numHops]string{"uplink", "partial", "flag", "global"}

// transcodeHop passes a freshly formed model vector through the configured
// codec (encode→decode in place) with ref as the Delta reference both
// endpoints hold. Forwarded copies of the same vector re-ship the same bytes
// and must NOT call this again — charge them with volume only.
func (e *engine) transcodeHop(v, ref tensor.Vector) {
	if e.cfg.Codec == nil {
		return
	}
	e.cs.Ref = ref
	if _, err := codec.Transcode(e.cfg.Codec, v, e.cs); err != nil && e.codecErr == nil {
		e.codecErr = fmt.Errorf("pipeline: codec %s: %w", e.cfg.Codec.Name(), err)
	}
}

// volume returns the link charge for one model transfer — wire bytes under a
// codec, the raw element count without one — and accounts it per hop.
func (e *engine) volume(hop, dim int) int64 {
	if e.cfg.Codec == nil {
		return int64(dim)
	}
	n := int64(e.cfg.Codec.WireBytes(dim))
	e.result.WireBytes += n
	e.ins.wireHop(hop, n)
	return n
}

// subQuorum records one degraded aggregation (timeout closed a round below
// quorum).
func (e *engine) subQuorum() {
	e.result.SubQuorum++
	e.ins.subQuorum()
}

// abandoned records one collection given up with zero inputs.
func (e *engine) abandoned() {
	e.result.Abandoned++
	e.ins.abandoned()
}

func (e *engine) nodeOfCluster(l, i int) simnet.NodeID { return e.clusterNode[l][i] }

// trainDuration returns the virtual training time of device id for round r.
func (e *engine) trainDuration(id, round int) simnet.Time {
	t := e.cfg.Timing.TrainBase
	if j := e.cfg.Timing.TrainJitter; j > 0 {
		t *= 1 + j*e.root.Derive(fmt.Sprintf("tdur-%d-%d", id, round)).Float64()
	}
	return simnet.Time(t)
}

// aggDuration returns the virtual aggregation time of a cluster at level l
// for round r (the paper's τ'); the top level adds GlobalExtra.
func (e *engine) aggDuration(l, i, round int) simnet.Time {
	t := e.cfg.Timing.AggBase
	if j := e.cfg.Timing.AggJitter; j > 0 {
		t *= 1 + j*e.root.Derive(fmt.Sprintf("adur-%d-%d-%d", l, i, round)).Float64()
	}
	if l == 0 {
		t += e.cfg.Timing.GlobalExtra
	}
	return simnet.Time(t)
}

// deviceActor trains locally, uploads, and merges stale globals (Alg. 2).
type deviceActor struct {
	e           *engine
	id          int
	relSize     float64
	training    bool
	curRound    int
	trainStart  simnet.Time
	stashedFlag *msgFlag
	pending     []msgGlobal
	seenGlobal  map[int]bool
	model       *nn.Model
	ws          *nn.Workspace
}

func (d *deviceActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case msgFlag:
		if m.round >= d.e.cfg.Rounds || d.e.plan.DeviceDown(d.id, m.round) {
			return
		}
		if d.training {
			if d.stashedFlag == nil || m.round > d.stashedFlag.round {
				mm := m
				d.stashedFlag = &mm
			}
			return
		}
		if m.round > d.curRound {
			d.start(ctx, m.round, m.params, m.relSize)
		}
	case msgGlobal:
		// Stale global: merged into the in-progress local model at training
		// completion (Alg. 2 line 16-18). A down device processes nothing, and
		// a duplicated delivery must not be merged twice — Eq. (1)'s merge is
		// once per formed global.
		if d.e.plan.DeviceDown(d.id, m.round) || d.seenGlobal[m.round] {
			return
		}
		d.seenGlobal[m.round] = true
		d.pending = append(d.pending, m)
	}
}

func (d *deviceActor) start(ctx *simnet.Context, round int, params tensor.Vector, relSize float64) {
	if d.e.plan.DeviceDown(d.id, round) {
		// Crash (fail-stop) or churn interval: the round is skipped. Churned
		// devices resume at the next flag model after their interval ends.
		return
	}
	d.training = true
	d.curRound = round
	d.relSize = relSize
	if d.e.tr != nil {
		d.trainStart = ctx.Now()
		if _, ok := d.e.roundStart[round]; !ok {
			d.e.roundStart[round] = ctx.Now()
		}
	}
	startParams := params.Clone()
	dur := d.e.trainDuration(d.id, round)
	ctx.After(dur, func(ctx *simnet.Context) { d.finish(ctx, round, startParams) })
}

func (d *deviceActor) finish(ctx *simnet.Context, round int, startParams tensor.Vector) {
	e := d.e
	d.model.SetParams(startParams)
	// The SGD stream is derived exactly as in the synchronous core engine
	// (root -> "round-R" -> "device-D"), so a zero-latency, zero-fault
	// pipeline run is bit-identical to core.RunHFL on the same seed.
	r := e.root.Derive(fmt.Sprintf("round-%d", round)).Derive(fmt.Sprintf("device-%d", d.id))
	nn.SGDWS(d.model, d.ws, e.cfg.ClientData[d.id], e.cfg.Local, r)
	// The update is sent as a message and retained by collectors, so it must
	// be a fresh vector (no buffer reuse here, unlike the round engine).
	out := d.model.Params()
	// Correction-factor merges for globals that arrived during training.
	for _, g := range d.pending {
		if e.cfg.FlagLevel == 0 && g.round < round {
			// With ℓF = 0 the flag model IS the global model, so a global
			// formed before this round's flag is already this round's start
			// parameters; merging it again would just drag the trained model
			// back toward its own starting point.
			continue
		}
		staleness := float64(ctx.Now() - g.formedAt)
		alpha := e.alpha.Alpha(staleness, d.relSize)
		tensor.Lerp(out, out, g.params, alpha)
		e.result.MergedGlobals++
		e.ins.mergedGlobal(staleness)
	}
	d.pending = d.pending[:0]
	d.training = false
	e.traceTrain(d.id, round, d.trainStart, ctx.Now())
	if e.plan.OmitUpload(d.id, round) {
		// Omission-Byzantine: train, receive, but silently withhold the
		// upload. The leader's quorum/timeout machinery must absorb it.
		e.result.Omitted++
		e.ins.omitted()
	} else {
		// Uplink codec hop: the round's start parameters are the Delta
		// reference (the leader disseminated them, so both ends hold them).
		e.transcodeHop(out, startParams)
		ctx.SendVolume(e.deviceLeader[d.id], msgLocal{round: round, params: out, dev: d.id}, e.volume(hopUplink, len(out)))
	}
	if d.stashedFlag != nil {
		f := *d.stashedFlag
		d.stashedFlag = nil
		if f.round > round {
			d.start(ctx, f.round, f.params, f.relSize)
		}
	}
}

// clusterActor is the leader A_{l,i} of an intermediate (or bottom) cluster:
// collect a quorum, aggregate, forward upwards; at the flag level it also
// releases the flag model downwards (Alg. 3-5).
type clusterActor struct {
	e         *engine
	cluster   *topology.Cluster
	parent    simnet.NodeID
	children  []simnet.NodeID // child cluster actors, or member devices at the bottom
	collected map[int][]tensor.Vector
	// collectedIDs tracks, in lockstep with collected, each input's
	// contributor id (device id at the bottom, child-cluster leader id
	// above) so filter audits can name who was kept or discarded. Only
	// maintained when the engine has a filter emitter.
	collectedIDs map[int][]int
	// seen deduplicates contributions per round: the fault layer can
	// duplicate messages, and a duplicated upload must never count twice
	// toward the quorum.
	seen   map[int]map[int]bool
	closed map[int]bool
	// armed tracks rounds whose collect deadline is already scheduled.
	armed    map[int]bool
	isBottom bool
}

// failed reports whether this cluster's leader is fault-planned down for
// round: it then neither collects nor forwards anything.
func (a *clusterActor) failed(round int) bool {
	return a.e.plan.LeaderFailed(a.cluster.Level, a.cluster.Index, round)
}

func (a *clusterActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	e := a.e
	switch m := msg.Payload.(type) {
	case msgLocal:
		if a.failed(m.round) {
			return
		}
		a.receive(ctx, m.round, m.params, m.dev, msg.SentAt, -1)
	case msgPartial:
		if a.failed(m.round) {
			return
		}
		a.receive(ctx, m.round, m.params, e.tree.Clusters[a.cluster.Level+1][m.child].Leader, msg.SentAt, m.child)
	case msgFlag:
		if a.failed(m.round) {
			return
		}
		// Cascade the flag model downwards (Alg. 5).
		if a.isBottom {
			bi := a.cluster.Index
			if _, ok := e.flagArrival[bi][m.round]; !ok {
				e.flagArrival[bi][m.round] = ctx.Now()
			}
		}
		for _, ch := range a.children {
			ctx.SendVolume(ch, m, e.volume(hopFlag, len(m.params)))
		}
		// A forwarded flag is proof that round m.round is starting below:
		// under faults, arm the collect deadline now so the round cannot
		// stall even if every upload is lost.
		a.armCollect(ctx, m.round, 0)
	case msgGlobal:
		if a.failed(m.round) {
			return
		}
		if a.isBottom {
			bi := a.cluster.Index
			if _, ok := e.globalArrival[bi][m.round]; !ok {
				e.globalArrival[bi][m.round] = ctx.Now()
			}
		}
		for _, ch := range a.children {
			ctx.SendVolume(ch, m, e.volume(hopGlobal, len(m.params)))
		}
	}
}

// armCollect schedules attempt's collect deadline for round (faulted runs
// only; fault-free runs keep the seed's first-arrival arming). Every empty
// expiry re-arms with the deadline multiplied by the backoff until the
// retry budget is spent, after which the round is abandoned.
func (a *clusterActor) armCollect(ctx *simnet.Context, round, attempt int) {
	e := a.e
	if !e.faulty || e.cfg.CollectTimeout <= 0 || round >= e.cfg.Rounds {
		return
	}
	if attempt == 0 {
		if a.armed[round] || a.closed[round] {
			return
		}
		a.armed[round] = true
	}
	d := e.cfg.CollectTimeout * math.Pow(e.backoff, float64(attempt))
	ctx.After(simnet.Time(d), func(ctx *simnet.Context) { a.collectDeadline(ctx, round, attempt) })
}

// collectDeadline is the timeout branch of Algorithm 4 with backoff: a
// deadline firing with a non-empty sub-quorum set aggregates it (degraded
// operation); an empty one re-arms, then abandons.
func (a *clusterActor) collectDeadline(ctx *simnet.Context, round, attempt int) {
	e := a.e
	if a.closed[round] {
		return
	}
	if n := len(a.collected[round]); n > 0 {
		if n < e.quorumOf(a.cluster.Size()) {
			e.subQuorum()
		}
		a.aggregateRound(ctx, round)
		return
	}
	if attempt+1 < e.retries {
		a.armCollect(ctx, round, attempt+1)
		return
	}
	a.closed[round] = true
	e.abandoned()
}

// receive counts one contribution: a device upload (child < 0, from is the
// device id) or a child cluster's partial (child is its index at the level
// below). sentAt is the hop's send time, kept only for span emission.
func (a *clusterActor) receive(ctx *simnet.Context, round int, params tensor.Vector, from int, sentAt simnet.Time, child int) {
	e := a.e
	if a.closed[round] || round >= e.cfg.Rounds {
		return
	}
	if a.seen[round][from] {
		return // duplicate delivery of an already-counted contribution
	}
	if a.seen[round] == nil {
		a.seen[round] = map[int]bool{}
	}
	a.seen[round][from] = true
	if child < 0 {
		e.traceUplink(from, round, a.cluster.Level, a.cluster.Index, sentAt, ctx.Now(), len(params))
	} else {
		e.tracePartial(a.cluster.Level+1, child, round, a.cluster.Level, a.cluster.Index, sentAt, ctx.Now(), len(params))
	}
	if a.isBottom {
		bi := a.cluster.Index
		if _, ok := e.firstArrival[bi][round]; !ok {
			e.firstArrival[bi][round] = ctx.Now()
		}
	}
	first := len(a.collected[round]) == 0
	a.collected[round] = append(a.collected[round], params)
	if e.fe != nil {
		a.collectedIDs[round] = append(a.collectedIDs[round], from)
	}
	if first && e.cfg.CollectTimeout > 0 && !e.faulty {
		// Algorithm 4's "until M >= φ*C or Timeout": arm the semi-synchronous
		// deadline at the first arrival for this round. (Faulted runs arm at
		// flag forwarding instead, see armCollect.)
		ctx.After(simnet.Time(e.cfg.CollectTimeout), func(ctx *simnet.Context) {
			if !a.closed[round] && len(a.collected[round]) > 0 {
				if len(a.collected[round]) < e.quorumOf(a.cluster.Size()) {
					e.subQuorum()
				}
				a.aggregateRound(ctx, round)
			}
		})
	}
	if first {
		a.armCollect(ctx, round, 0)
	}
	if len(a.collected[round]) < e.quorumOf(a.cluster.Size()) {
		return
	}
	a.aggregateRound(ctx, round)
}

// aggregateRound closes the round's collection and aggregates whatever
// arrived (quorum reached or timeout fired).
func (a *clusterActor) aggregateRound(ctx *simnet.Context, round int) {
	e := a.e
	a.closed[round] = true
	vecs := a.collected[round]
	ids := a.collectedIDs[round]
	delete(a.collected, round)
	delete(a.collectedIDs, round)
	delete(a.seen, round)
	closeAt := ctx.Now()
	dur := e.aggDuration(a.cluster.Level, a.cluster.Index, round)
	ctx.After(dur, func(ctx *simnet.Context) {
		if a.failed(round) {
			return
		}
		agg := tensor.NewVector(len(vecs[0]))
		if err := e.cfg.PartialBRA.AggregateInto(agg, e.aggScratch, vecs); err != nil {
			// A malformed quorum at runtime: drop the round for this cluster.
			return
		}
		e.traceAggregate(a.cluster.Level, a.cluster.Index, round, len(vecs), closeAt, ctx.Now(), e.cfg.PartialBRA.Name())
		e.fe.emitAudit(a.cluster.Level, a.cluster.Index, round, ids)
		// One codec hop per formed partial: the upward send and the flag
		// release below ship the same encoded bytes.
		e.transcodeHop(agg, e.lastRef)
		ctx.SendVolume(a.parent, msgPartial{round: round, params: agg, child: a.cluster.Index}, e.volume(hopPartial, len(agg)))
		if a.cluster.Level == e.cfg.FlagLevel {
			flag := msgFlag{round: round + 1, params: agg, relSize: a.relSize()}
			for _, ch := range a.children {
				ctx.SendVolume(ch, flag, e.volume(hopFlag, len(agg)))
			}
			a.armCollect(ctx, round+1, 0)
		}
	})
}

// relSize is the fraction of all devices under this cluster.
func (a *clusterActor) relSize() float64 {
	leaves := len(a.e.tree.LeafDescendants(a.cluster.Level, a.cluster.Index))
	return float64(leaves) / float64(a.e.tree.NumDevices())
}

// topActor forms the global model (Alg. 6) and disseminates it.
type topActor struct {
	e         *engine
	collected map[int][]tensor.Vector
	// collectedIDs tracks each partial's contributor (its level-1 cluster
	// leader id), in lockstep with collected; see clusterActor.collectedIDs.
	collectedIDs map[int][]int
	// seen deduplicates per-round contributions by level-1 cluster index
	// (the fault layer can duplicate partials in flight).
	seen      map[int]map[int]bool
	closed    map[int]bool
	armed     map[int]bool
	children  []simnet.NodeID
	completed int
}

func (t *topActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	m, ok := msg.Payload.(msgPartial)
	if !ok {
		return
	}
	e := t.e
	if t.closed[m.round] || m.round >= e.cfg.Rounds {
		return
	}
	if t.seen[m.round][m.child] {
		return
	}
	if t.seen[m.round] == nil {
		t.seen[m.round] = map[int]bool{}
	}
	t.seen[m.round][m.child] = true
	if _, seen := e.firstPartial[m.round]; !seen {
		e.firstPartial[m.round] = ctx.Now()
	}
	e.tracePartial(1, m.child, m.round, -1, 0, msg.SentAt, ctx.Now(), len(m.params))
	t.collected[m.round] = append(t.collected[m.round], m.params)
	if e.fe != nil {
		t.collectedIDs[m.round] = append(t.collectedIDs[m.round], e.tree.Clusters[1][m.child].Leader)
	}
	t.armCollect(ctx, m.round, 0)
	if len(t.collected[m.round]) < e.quorumOf(e.tree.Top().Size()) {
		return
	}
	t.closeRound(ctx, m.round)
}

// closeRound seals the round's collection and schedules global aggregation
// over whatever was collected.
func (t *topActor) closeRound(ctx *simnet.Context, round int) {
	e := t.e
	t.closed[round] = true
	vecs := t.collected[round]
	ids := t.collectedIDs[round]
	delete(t.collected, round)
	delete(t.collectedIDs, round)
	delete(t.seen, round)
	dur := e.aggDuration(0, 0, round)
	ctx.After(dur, func(ctx *simnet.Context) { t.formGlobal(ctx, round, vecs, ids) })
}

// armCollect mirrors clusterActor.armCollect for the top level: under
// faults, the global round's deadline is armed as soon as the previous
// global forms (or at the first partial's arrival), backs off while empty,
// and finally abandons the round so the run drains instead of hanging.
func (t *topActor) armCollect(ctx *simnet.Context, round, attempt int) {
	e := t.e
	if !e.faulty || e.cfg.CollectTimeout <= 0 || round >= e.cfg.Rounds {
		return
	}
	if attempt == 0 {
		if t.armed[round] || t.closed[round] {
			return
		}
		t.armed[round] = true
	}
	d := e.cfg.CollectTimeout * math.Pow(e.backoff, float64(attempt))
	ctx.After(simnet.Time(d), func(ctx *simnet.Context) {
		if t.closed[round] {
			return
		}
		if n := len(t.collected[round]); n > 0 {
			if n < e.quorumOf(e.tree.Top().Size()) {
				e.subQuorum()
			}
			t.closeRound(ctx, round)
			return
		}
		if attempt+1 < e.retries {
			t.armCollect(ctx, round, attempt+1)
			return
		}
		t.closed[round] = true
		e.abandoned()
	})
}

func (t *topActor) formGlobal(ctx *simnet.Context, round int, vecs []tensor.Vector, ids []int) {
	e := t.e
	var global tensor.Vector
	var err error
	kept, filtered := len(vecs), 0
	rule := ""
	proto := e.cfg.TopCBA
	if proto == nil && e.cfg.TopVoting != nil {
		proto = *e.cfg.TopVoting
	}
	if proto != nil {
		cctx := &consensus.Context{
			Members:   len(vecs),
			Validator: e.shardValidator(),
			Rand:      e.root.Derive(fmt.Sprintf("vote-%d", round)),
			Workers:   e.workers,
			Round:     round,
		}
		var st consensus.Stats
		global, st, err = proto.Agree(cctx, vecs)
		if err == nil {
			rule = proto.Name()
			kept, filtered = len(vecs)-len(st.Excluded), len(st.Excluded)
			e.fe.emitConsensus(0, 0, round, ids, proto.Name(), st)
		}
	} else {
		global = tensor.NewVector(len(vecs[0]))
		err = e.cfg.TopBRA.AggregateInto(global, e.aggScratch, vecs)
		if err == nil {
			rule = e.cfg.TopBRA.Name()
			kept, filtered = e.auditCounts(len(vecs))
			e.fe.emitAudit(0, 0, round, ids)
		}
	}
	if err != nil {
		return
	}
	e.ins.globalFormed()
	e.globalReady[round] = ctx.Now()
	e.traceGlobal(round, kept, filtered, ctx.Now(), rule, len(global))
	// Dissemination codec hop: encoded against the previous global, then the
	// decoded result becomes the reference for everything formed after it.
	e.transcodeHop(global, e.lastRef)
	e.lastRef = global
	e.result.FinalParams = global
	e.evaluate(round, ctx.Now(), global)
	gm := msgGlobal{round: round, params: global, formedAt: ctx.Now()}
	for _, ch := range t.children {
		ctx.SendVolume(ch, gm, e.volume(hopGlobal, len(global)))
	}
	if e.cfg.FlagLevel == 0 {
		flag := msgFlag{round: round + 1, params: global, relSize: 1}
		for _, ch := range t.children {
			ctx.SendVolume(ch, flag, e.volume(hopFlag, len(global)))
		}
	}
	t.completed++
	// A formed global proves round+1 is about to start below: arm its
	// top-level deadline now so a fully-starved next round still resolves.
	t.armCollect(ctx, round+1, 0)
	if t.completed >= e.cfg.Rounds {
		e.done = true
		e.result.Duration = ctx.Now()
	}
}

func (e *engine) shardValidator() consensus.Validator {
	shards := e.cfg.ValidationShards
	pool := e.evalPool
	return func(member int, model tensor.Vector) float64 {
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, shards[member%len(shards)])
	}
}

func (e *engine) evaluate(round int, now simnet.Time, global tensor.Vector) {
	every := e.cfg.EvalEvery
	if every <= 0 {
		every = 1
	}
	if (round+1)%every != 0 && round != e.cfg.Rounds-1 {
		return
	}
	e.evalModel.SetParams(global)
	acc := nn.AccuracyWorkers(e.evalModel, e.cfg.TestData, e.workers)
	e.ins.evalDone(acc)
	e.result.Curve = append(e.result.Curve, RoundAccuracy{Round: round + 1, Time: now, Accuracy: acc})
}

// Run executes the asynchronous pipeline workflow and returns accuracy and
// timing results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == nil {
		cfg.Alpha = AdaptiveAlpha{}
	}
	if cfg.Latency == nil {
		cfg.Latency = simnet.Fixed(1)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	root := rng.New(cfg.Seed)
	tree := cfg.Tree
	sim := simnet.New(cfg.Latency, root.Derive("net"))
	sim.Bandwidth = cfg.Bandwidth
	if cfg.Faults.Enabled() {
		sim.Fault = cfg.Faults
	}
	sizes := cfg.modelSizes()
	e := &engine{
		cfg:        cfg,
		tree:       tree,
		sim:        sim,
		root:       root,
		sizes:      sizes,
		result:     &Result{},
		alpha:      cfg.Alpha,
		evalModel:  nn.NewShaped(sizes...),
		evalPool:   nn.NewEvalPool(sizes...),
		workers:    cfg.Workers,
		aggScratch: aggregate.NewScratch(cfg.Workers),
	}
	e.plan = cfg.Faults
	e.faulty = cfg.Faults.Enabled()
	e.backoff = cfg.TimeoutBackoff
	if e.backoff == 0 {
		e.backoff = 2
	}
	e.retries = cfg.TimeoutRetries
	if e.retries == 0 {
		e.retries = 3
	}
	e.ins = newInstruments(cfg.Telemetry, tree.Depth())
	e.fe = newFilterEmitter(e.ins, cfg.OnFilter)
	e.fe.attach(e.aggScratch)
	e.tr = cfg.Trace
	e.roundStart = map[int]simnet.Time{}
	if e.tr != nil && e.aggScratch.Audit == nil {
		// Spans carry kept/filtered counts; audit recording observes the
		// rules without changing what they compute.
		e.aggScratch.Audit = new(aggregate.FilterAudit)
	}
	if cfg.Flight != nil {
		sim.Trace = cfg.Flight.Hook()
	}
	e.cs = codec.NewScratch()
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = 1
	}
	e.quorumOf = func(size int) int {
		n := int(math.Ceil(quorum * float64(size)))
		if n < 1 {
			n = 1
		}
		if n > size {
			n = size
		}
		return n
	}

	// --- Node id allocation.
	devices := tree.NumDevices()
	e.clusterNode = make([][]simnet.NodeID, tree.Depth())
	next := simnet.NodeID(devices)
	for l := range tree.Clusters {
		e.clusterNode[l] = make([]simnet.NodeID, len(tree.Clusters[l]))
		for i := range tree.Clusters[l] {
			e.clusterNode[l][i] = next
			next++
		}
	}
	e.deviceLeader = make([]simnet.NodeID, devices)
	e.deviceCluster = make([]int, devices)
	bottom := tree.Bottom()
	for i, c := range tree.Clusters[bottom] {
		for _, m := range c.Members {
			e.deviceLeader[m] = e.clusterNode[bottom][i]
			e.deviceCluster[m] = i
		}
	}
	nBottom := len(tree.Clusters[bottom])
	e.firstArrival = make([]map[int]simnet.Time, nBottom)
	e.flagArrival = make([]map[int]simnet.Time, nBottom)
	e.globalArrival = make([]map[int]simnet.Time, nBottom)
	for i := 0; i < nBottom; i++ {
		e.firstArrival[i] = map[int]simnet.Time{}
		e.flagArrival[i] = map[int]simnet.Time{}
		e.globalArrival[i] = map[int]simnet.Time{}
	}
	e.firstPartial = map[int]simnet.Time{}
	e.globalReady = map[int]simnet.Time{}

	// --- Register actors.
	init := nn.New(root.Derive("init"), e.sizes...).Params()
	// Everyone bootstraps from the initial model, so it is the first Delta
	// reference; each formed global replaces it.
	e.lastRef = init
	e.ins.codecInfo(cfg.Codec, len(init))
	devActors := make([]*deviceActor, devices)
	for id := 0; id < devices; id++ {
		m := nn.NewShaped(e.sizes...)
		devActors[id] = &deviceActor{e: e, id: id, curRound: -1, model: m, ws: nn.NewWorkspace(m), seenGlobal: map[int]bool{}}
		if !cfg.Crashed[id] {
			// Crashed devices stay unregistered: the simulator drops their
			// traffic, exactly like a crash-stop node.
			sim.Register(simnet.NodeID(id), devActors[id])
		}
	}
	var topA *topActor
	for l := 0; l < tree.Depth(); l++ {
		for i, c := range tree.Clusters[l] {
			if l == 0 {
				topA = &topActor{
					e:            e,
					collected:    map[int][]tensor.Vector{},
					collectedIDs: map[int][]int{},
					seen:         map[int]map[int]bool{},
					closed:       map[int]bool{},
					armed:        map[int]bool{},
				}
				for _, ch := range tree.ChildClusters(0, 0) {
					topA.children = append(topA.children, e.nodeOfCluster(1, ch.Index))
				}
				sim.Register(e.clusterNode[0][0], topA)
				continue
			}
			a := &clusterActor{
				e:            e,
				cluster:      c,
				collected:    map[int][]tensor.Vector{},
				collectedIDs: map[int][]int{},
				seen:         map[int]map[int]bool{},
				closed:       map[int]bool{},
				armed:        map[int]bool{},
				isBottom:     l == bottom,
			}
			if l == 1 {
				a.parent = e.clusterNode[0][0]
			} else {
				p := tree.Parent(l, i)
				a.parent = e.nodeOfCluster(p.Level, p.Index)
			}
			if l == bottom {
				for _, m := range c.Members {
					a.children = append(a.children, simnet.NodeID(m))
				}
			} else {
				for _, ch := range tree.ChildClusters(l, i) {
					a.children = append(a.children, e.nodeOfCluster(l+1, ch.Index))
				}
			}
			sim.Register(e.clusterNode[l][i], a)
		}
	}

	// --- Bootstrap: every live device receives the initial model as the
	// round-0 flag at t=0. Crashed devices never start (failure injection);
	// a quorum φ < 1 lets their clusters proceed without them.
	for id := 0; id < devices; id++ {
		if cfg.Crashed[id] {
			continue
		}
		id := id
		sim.ScheduleAt(0, simnet.NodeID(id), func(ctx *simnet.Context) {
			devActors[id].start(ctx, 0, init, 1)
		})
	}
	if e.faulty && cfg.CollectTimeout > 0 {
		// Bootstrap the top's round-0 deadline: with every round-0 partial
		// lost, no arrival would ever arm it.
		sim.ScheduleAt(0, e.clusterNode[0][0], func(ctx *simnet.Context) {
			topA.armCollect(ctx, 0, 0)
		})
	}
	if _, err := sim.Run(0); err != nil {
		return nil, err
	}
	if e.codecErr != nil {
		return nil, e.codecErr
	}
	e.result.CompletedRounds = topA.completed
	if !e.done {
		if !e.faulty {
			return nil, fmt.Errorf("pipeline: simulation drained after %d/%d rounds", topA.completed, cfg.Rounds)
		}
		// Degraded operation under injected faults: the plan starved the
		// protocol of its remaining rounds. The run still terminated (no
		// deadlock) and everything completed so far is reported.
		e.result.Duration = sim.Now()
	}
	e.result.Network = sim.Stats()
	e.ins.network(e.result.Network)
	e.computeTimings()
	if n := len(e.result.Curve); n > 0 {
		e.result.FinalAccuracy = e.result.Curve[n-1].Accuracy
	}
	return e.result, nil
}

// computeTimings derives the per-round σ_w, σ_p, σ_g, σ and ν series from
// the recorded observation points, averaged across bottom clusters.
func (e *engine) computeTimings() {
	nBottom := len(e.firstArrival)
	var nuSum float64
	var nuCount int
	for round := 0; round < e.cfg.Rounds-1; round++ {
		var sw, sp, sg, sigma float64
		count := 0
		ready, okReady := e.globalReady[round]
		first, okFirst := e.firstPartial[round]
		if !okReady || !okFirst {
			continue
		}
		sgTop := float64(ready - first)
		for b := 0; b < nBottom; b++ {
			fa, ok1 := e.firstArrival[b][round]
			fl, ok2 := e.flagArrival[b][round+1]
			ga, ok3 := e.globalArrival[b][round]
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			total := float64(ga - fa)
			wait := float64(fl - fa)
			if total <= 0 {
				continue
			}
			if wait > total {
				wait = total
			}
			// The paper's decomposition σ = σ_w + σ_p + σ_g assumes disjoint
			// phases; across clusters the phases can overlap slightly (the
			// top may start collecting before the last flag lands), so the
			// measured top-side σ_g is clipped to the non-waiting residual.
			sgEff := math.Min(sgTop, total-wait)
			p := total - wait - sgEff
			sw += wait
			sp += p
			sg += sgEff
			sigma += total
			count++
		}
		if count == 0 {
			continue
		}
		t := RoundTiming{
			Round:  round,
			SigmaW: sw / float64(count),
			SigmaP: sp / float64(count),
			SigmaG: sg / float64(count),
			Sigma:  sigma / float64(count),
		}
		if t.Sigma > 0 {
			t.Nu = (t.SigmaP + t.SigmaG) / t.Sigma
		}
		e.result.Timings = append(e.result.Timings, t)
		e.ins.roundTiming(t)
		nuSum += t.Nu
		nuCount++
	}
	sort.Slice(e.result.Timings, func(i, j int) bool { return e.result.Timings[i].Round < e.result.Timings[j].Round })
	if nuCount > 0 {
		e.result.MeanNu = nuSum / float64(nuCount)
		e.ins.setMeanNu(e.result.MeanNu)
	}
}
